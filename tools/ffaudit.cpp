// ffaudit — plan, run, distribute and merge FuzzyFlow audits.
//
// The distribution workflow (docs/ARCHITECTURE.md "Sharded execution"):
//
//   ffaudit plan  --workload gemm --shards 4 --out-dir plan/
//       partitions the audit's (instance, trial) unit space into 4
//       contiguous shards and writes one manifest JSON per shard;
//   ffaudit run-shard --manifest plan/shard-2.json --records-dir records/
//       executes one shard (any machine that can rebuild the job), streaming
//       checkpointed records; killed runs resume from the last checkpoint;
//   ffaudit merge --records-dir records/ --out report.json
//       validates coverage and reconstructs the exact single-process report
//       — byte-identical to `ffaudit run` at any shard/worker count;
//   ffaudit run   --workload gemm --out report.json
//       the single-process reference (same canonical report document);
//   ffaudit replay testcase.json
//       re-runs a reproducer artifact through the differential tester.
//
// The fault-tolerant workflow (docs/ARCHITECTURE.md "Coordinator"):
//
//   ffaudit serve --workload gemm --records-dir records/ --spawn-workers 4
//       plans the shards, leases them to workers over a unix socket (or TCP
//       with --listen host:port), re-issues crashed/expired leases, hedges
//       stragglers, and folds completions into the same canonical report as
//       `ffaudit run`;
//   ffaudit worker --socket records/coord.sock      (or --connect host:port)
//       one worker: lease, execute, report, repeat until the audit is done;
//   ffaudit fsck --records-dir records/
//       verifies record-stream integrity (per-line CRCs, stream trailer)
//       and, with --repair, truncates corrupt files to their last
//       verifiable prefix so run-shard/serve can resume them.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "coord/coordinator.h"
#include "coord/fault.h"
#include "coord/worker.h"
#include "core/report.h"
#include "core/testcase_io.h"
#include "feedback/corpus.h"
#include "shard/manifest.h"
#include "shard/merger.h"
#include "shard/records.h"
#include "shard/runner.h"
#include "workloads/npbench.h"

using namespace ff;

namespace {

// Exit codes: scripts (scripts/coord_chaos.py, CI) branch on these, so
// each failure class gets a stable, distinct value (see usage()).
constexpr int kExitOk = 0;           ///< Success.
constexpr int kExitInternal = 1;     ///< Unexpected error (bug or environment).
constexpr int kExitUsage = 2;        ///< Bad command line.
constexpr int kExitInterrupted = 3;  ///< run-shard stopped early; resumable.
constexpr int kExitJob = 4;          ///< Job construction failed (bad workload/passes/SDFG).
constexpr int kExitExecution = 5;    ///< The audit/shard itself failed to execute.
constexpr int kExitMerge = 6;        ///< Merge/coverage validation failed.
constexpr int kExitParse = 7;        ///< Malformed input file (manifest/records/testcase).
constexpr int kExitCoordinator = 8;  ///< Coordinator/worker gave up.
/// Audit completed, but only by quarantining poison units (serve).
constexpr int kExitQuarantined = 9;

int usage(const char* detail = nullptr) {
    if (detail) std::fprintf(stderr, "ffaudit: %s\n\n", detail);
    std::fprintf(stderr,
                 "usage: ffaudit <command> [options]\n"
                 "\n"
                 "commands:\n"
                 "  plan       partition an audit into shard manifests\n"
                 "  run-shard  execute one shard manifest (checkpointed, resumable)\n"
                 "  merge      merge complete shard record files into the canonical report\n"
                 "  run        single-process audit emitting the same canonical report\n"
                 "  serve      coordinate a fault-tolerant audit (unix socket or TCP)\n"
                 "  worker     execute leases from a `ffaudit serve` coordinator\n"
                 "  fsck       verify record-file integrity; --repair salvages a prefix\n"
                 "  replay     re-run a reproducer test case JSON\n"
                 "\n"
                 "job options (plan, run):\n"
                 "  --workload <name>        npbench kernel (see --list-workloads)\n"
                 "  --sdfg <file>            serialized SDFG instead of a named workload\n"
                 "  --passes <set>           table2 | correct | tiling   [table2]\n"
                 "  --seed <n>               sampler seed               [0x5eed]\n"
                 "  --trials <n>             trials per instance        [100]\n"
                 "  --size-max <n>           sampler size bound         [16]\n"
                 "  --threshold <x>          comparison threshold       [1e-5]\n"
                 "  --max-transitions <n>    interpreter budget         [default]\n"
                 "  --max-points <n>         map-point fuel per trial   [unlimited]\n"
                 "  --max-alloc-bytes <n>    allocation budget per trial [unlimited]\n"
                 "  --no-mincut              skip the minimum input-flow cut\n"
                 "  --coverage               instrument def-use coverage (report counters)\n"
                 "  --feedback               coverage-guided trial generation (implies\n"
                 "                           --coverage; part of the job key)\n"
                 "  --generation-size <n>    trials per feedback generation [25]\n"
                 "  --default <sym>=<val>    default symbol binding (repeatable)\n"
                 "\n"
                 "plan:      --shards <n> --out-dir <dir> [--checkpoint-interval <n>]\n"
                 "run-shard: --manifest <file> --records-dir <dir> [--records <file>]\n"
                 "           [--threads <n>] [--trial-chunk <n>] [--no-resume]\n"
                 "           [--interrupt-after-units <n>]\n"
                 "merge:     --records-dir <dir> | --records <file>... \n"
                 "           [--artifact-dir <dir>] [--out <file>] [--threads <n>]\n"
                 "           [--corpus-out <file>]\n"
                 "run:       [--threads <n>] [--artifact-dir <dir>] [--out <file>]\n"
                 "           [--corpus-out <file>]\n"
                 "serve:     --records-dir <dir> [--socket <path> | --listen <host:port>]\n"
                 "           [--spawn-workers <n>] [--worker-threads <n>] [--out <file>]\n"
                 "           [--shards <n>] [--artifact-dir <dir>] [--checkpoint-interval <n>]\n"
                 "           [--lease-ms <x>] [--heartbeat-ms <x>] [--max-failures <n>]\n"
                 "           [--backoff-base-ms <x>] [--backoff-max-ms <x>]\n"
                 "           [--straggler-factor <x>] [--linger-ms <x>]\n"
                 "           [--max-respawns <n>] [--worker-fault <k>=<spec>] [--quiet]\n"
                 "           [--worker-watchdog-ms <x>] [--worker-rlimit-as <bytes>]\n"
                 "           [--quarantine-max-points <n>] [--quarantine-max-alloc-bytes <n>]\n"
                 "           [--session-grace-ms <x>] [--worker-reply-timeout-ms <x>]\n"
                 "           [--net-fault <spec>]  (deterministic frame-proxy chaos:\n"
                 "             drop-frame-every-n=N | delay-frame-ms=N | duplicate-frame=N |\n"
                 "             corrupt-frame-byte=N | partition-after-units=N | heal-ms=N)\n"
                 "worker:    --socket <path> | --connect <host:port> [--id <name>]\n"
                 "           [--threads <n>] [--trial-chunk <n>] [--fault <spec>]\n"
                 "           [--watchdog-ms <x>] [--rlimit-as <bytes>]\n"
                 "           [--connect-attempts <n>] [--reply-timeout-ms <x>] [--quiet]\n"
                 "           fault <spec>: kill-after-units=N | abandon-after-units=N |\n"
                 "                         spin-after-units=N | hog-memory-after-units=N |\n"
                 "                         disconnect-after-units=N | delay-lease-ms=N |\n"
                 "                         drop-heartbeats (comma-joined)\n"
                 "fsck:      --records <file>... | --records-dir <dir> [--repair]\n"
                 "replay:    <testcase.json>\n"
                 "\n"
                 "exit codes:\n"
                 "  0  success (replay: reproduced)\n"
                 "  1  internal/unexpected error (replay: did not reproduce)\n"
                 "  2  usage error\n"
                 "  3  shard interrupted before completion (rerun to resume)\n"
                 "  4  job construction failed (unknown workload/pass set, bad SDFG)\n"
                 "  5  audit execution failed\n"
                 "  6  merge, coverage or record-integrity validation failed\n"
                 "     (also: fsck found corruption)\n"
                 "  7  malformed input file (manifest, record stream, test case)\n"
                 "  8  coordinator gave up (shard permanently failed, determinism\n"
                 "     violation) or worker lost the coordinator\n"
                 "  9  audit completed but poison units were quarantined (serve)\n");
    return kExitUsage;
}

/// Value of a --flag; advances `i`.  Throws common::Error when missing.
std::string flag_value(const std::vector<std::string>& args, std::size_t& i) {
    if (i + 1 >= args.size()) throw common::Error("missing value for " + args[i]);
    return args[++i];
}

std::int64_t int_value(const std::vector<std::string>& args, std::size_t& i) {
    const std::string v = flag_value(args, i);
    return std::stoll(v, nullptr, 0);
}

/// Parses one job option; returns false when `args[i]` is not a job flag.
bool parse_job_flag(shard::JobSpec& job, const std::vector<std::string>& args, std::size_t& i) {
    const std::string& a = args[i];
    if (a == "--workload") job.workload = flag_value(args, i);
    else if (a == "--sdfg") job.sdfg_path = flag_value(args, i);
    else if (a == "--passes") job.passes = flag_value(args, i);
    else if (a == "--seed") job.seed = static_cast<std::uint64_t>(int_value(args, i));
    else if (a == "--trials") job.max_trials = static_cast<int>(int_value(args, i));
    else if (a == "--size-max") job.size_max = int_value(args, i);
    else if (a == "--threshold") job.threshold = std::stod(flag_value(args, i));
    else if (a == "--max-transitions") job.max_state_transitions = int_value(args, i);
    else if (a == "--max-points") job.max_points = int_value(args, i);
    else if (a == "--max-alloc-bytes") job.max_alloc_bytes = int_value(args, i);
    else if (a == "--no-mincut") job.use_mincut = false;
    else if (a == "--coverage") job.coverage = true;
    else if (a == "--feedback") job.feedback = job.coverage = true;
    else if (a == "--generation-size") job.generation_size = static_cast<int>(int_value(args, i));
    else if (a == "--default") {
        const std::string kv = flag_value(args, i);
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos) throw common::Error("--default expects <sym>=<val>: " + kv);
        job.defaults[kv.substr(0, eq)] = std::stoll(kv.substr(eq + 1));
    } else {
        return false;
    }
    return true;
}

/// Fills workload-derived defaults a self-contained manifest needs.
void finalize_job(shard::JobSpec& job) {
    if (job.workload.empty() && job.sdfg_path.empty())
        throw common::Error("a job needs --workload or --sdfg");
    if (!job.workload.empty() && job.defaults.empty()) job.defaults = workloads::npbench_defaults();
}

void write_text_file(const std::string& path, const std::string& text) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw common::Error("cannot write " + path);
    out << text;
    out.close();
    if (out.fail()) throw common::Error("short write to " + path);
}

/// Emits the canonical report document to `out_path` ("" = stdout) and the
/// audit table to stdout.
void emit_report(std::vector<core::FuzzReport> reports, const std::string& out_path) {
    const common::Json doc = shard::canonical_report_document(std::move(reports));
    const std::string text = doc.dump(2) + "\n";
    if (out_path.empty()) {
        std::fputs(text.c_str(), stdout);
    } else {
        write_text_file(out_path, text);
        std::printf("report: %s\n", out_path.c_str());
    }
    std::printf("%s", doc.at("table").as_string().c_str());
}

std::string records_path_for(const std::string& dir, int shard_index) {
    return dir + "/records-" + std::to_string(shard_index) + ".jsonl";
}

int cmd_plan(const std::vector<std::string>& args) {
    shard::JobSpec job;
    int shards = 0;
    int checkpoint_interval = 64;
    std::string out_dir;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (parse_job_flag(job, args, i)) continue;
        if (args[i] == "--shards") shards = static_cast<int>(int_value(args, i));
        else if (args[i] == "--checkpoint-interval")
            checkpoint_interval = static_cast<int>(int_value(args, i));
        else if (args[i] == "--out-dir") out_dir = flag_value(args, i);
        else if (args[i] == "--list-workloads") {
            for (const auto& name : workloads::npbench_kernel_names())
                std::printf("%s\n", name.c_str());
            return 0;
        } else return usage(("unknown plan option " + args[i]).c_str());
    }
    if (shards < 1) return usage("plan needs --shards >= 1");
    if (out_dir.empty()) return usage("plan needs --out-dir");
    finalize_job(job);

    const ir::SDFG program = shard::load_job_program(job);
    const auto manifests = shard::plan_shards(job, program, shards, checkpoint_interval);
    std::filesystem::create_directories(out_dir);
    for (const auto& m : manifests)
        write_text_file(out_dir + "/shard-" + std::to_string(m.shard_index) + ".json",
                        m.to_json().dump(2) + "\n");
    std::printf("planned %zu shard(s) over %lld units (%lld instances x %d trials) in %s\n",
                manifests.size(), static_cast<long long>(manifests.back().unit_end),
                static_cast<long long>(manifests.front().instance_count), job.max_trials,
                out_dir.c_str());
    return 0;
}

int cmd_run_shard(const std::vector<std::string>& args) {
    std::string manifest_path, records_path, records_dir;
    shard::RunShardOptions options;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--manifest") manifest_path = flag_value(args, i);
        else if (args[i] == "--records") records_path = flag_value(args, i);
        else if (args[i] == "--records-dir") records_dir = flag_value(args, i);
        else if (args[i] == "--threads") options.num_threads = static_cast<int>(int_value(args, i));
        else if (args[i] == "--trial-chunk")
            options.trial_chunk = static_cast<int>(int_value(args, i));
        else if (args[i] == "--no-resume") options.resume = false;
        else if (args[i] == "--interrupt-after-units")
            options.interrupt_after_units = int_value(args, i);
        else return usage(("unknown run-shard option " + args[i]).c_str());
    }
    if (manifest_path.empty()) return usage("run-shard needs --manifest");
    if (records_path.empty() && records_dir.empty())
        return usage("run-shard needs --records or --records-dir");

    const shard::ShardManifest manifest = shard::load_manifest_file(manifest_path);
    if (records_path.empty()) {
        std::filesystem::create_directories(records_dir);
        records_path = records_path_for(records_dir, manifest.shard_index);
    }

    const shard::RunShardResult result = shard::run_shard(manifest, records_path, options);
    std::printf("shard %d/%d: %s %lld unit(s) of [%lld, %lld) -> %s%s\n", manifest.shard_index,
                manifest.shard_count, result.resumed_from > manifest.unit_begin ? "resumed," : "ran",
                static_cast<long long>(result.units_run),
                static_cast<long long>(manifest.unit_begin),
                static_cast<long long>(manifest.unit_end), records_path.c_str(),
                result.completed ? "" : " (INTERRUPTED — rerun to resume)");
    return result.completed ? kExitOk : kExitInterrupted;
}

int cmd_merge(const std::vector<std::string>& args) {
    std::vector<std::string> record_paths;
    std::string records_dir, out_path, corpus_path;
    shard::MergeOptions options;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--records") record_paths.push_back(flag_value(args, i));
        else if (args[i] == "--records-dir") records_dir = flag_value(args, i);
        else if (args[i] == "--artifact-dir") options.artifact_dir = flag_value(args, i);
        else if (args[i] == "--out") out_path = flag_value(args, i);
        else if (args[i] == "--corpus-out") corpus_path = flag_value(args, i);
        else if (args[i] == "--threads") options.num_threads = static_cast<int>(int_value(args, i));
        else return usage(("unknown merge option " + args[i]).c_str());
    }
    if (!records_dir.empty()) {
        for (const auto& entry : std::filesystem::directory_iterator(records_dir)) {
            const std::string name = entry.path().filename().string();
            if (name.rfind("records-", 0) == 0 && name.size() > 6 &&
                name.substr(name.size() - 6) == ".jsonl")
                record_paths.push_back(entry.path().string());
        }
    }
    if (record_paths.empty()) return usage("merge needs --records or a non-empty --records-dir");
    if (!options.artifact_dir.empty()) std::filesystem::create_directories(options.artifact_dir);

    shard::MergeResult merged = shard::merge_shards(record_paths, options);
    std::printf("merged %zu shard file(s), %lld record(s), %zu instance(s)\n", merged.shard_files,
                static_cast<long long>(merged.records), merged.reports.size());
    if (!corpus_path.empty()) {
        if (!merged.job.feedback)
            return usage("--corpus-out needs a job planned with --feedback");
        feedback::write_corpus_file(corpus_path, merged.job.to_json(), merged.corpus);
        std::printf("corpus: %s (%zu entr%s)\n", corpus_path.c_str(), merged.corpus.size(),
                    merged.corpus.size() == 1 ? "y" : "ies");
    }
    emit_report(std::move(merged.reports), out_path);
    return 0;
}

int cmd_run(const std::vector<std::string>& args) {
    shard::JobSpec job;
    std::string out_path, corpus_path;
    int threads = 0;
    std::string artifact_dir;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (parse_job_flag(job, args, i)) continue;
        if (args[i] == "--threads") threads = static_cast<int>(int_value(args, i));
        else if (args[i] == "--artifact-dir") artifact_dir = flag_value(args, i);
        else if (args[i] == "--out") out_path = flag_value(args, i);
        else if (args[i] == "--corpus-out") corpus_path = flag_value(args, i);
        else return usage(("unknown run option " + args[i]).c_str());
    }
    finalize_job(job);
    if (!corpus_path.empty() && !job.feedback)
        return usage("--corpus-out needs --feedback");
    if (!artifact_dir.empty()) std::filesystem::create_directories(artifact_dir);

    core::FuzzConfig config = shard::job_fuzz_config(job);
    config.num_threads = threads;
    config.artifact_dir = artifact_dir;
    const ir::SDFG program = shard::load_job_program(job);
    auto passes = shard::job_passes(job);
    core::Fuzzer fuzzer(config);
    std::vector<core::FuzzReport> reports;
    std::vector<feedback::CorpusEntry> corpus;
    try {
        // The prepare/run_range/finalize split (rather than audit()) keeps
        // the PreparedAudit alive so the derived corpus can be read out.
        core::PreparedAudit audit = fuzzer.prepare(program, passes);
        audit.run_range(0, audit.unit_count());
        reports = audit.finalize();
        if (job.feedback) corpus = audit.corpus();
    } catch (const common::Error& e) {
        std::fprintf(stderr, "ffaudit run: %s\n", e.what());
        return kExitExecution;
    }
    std::printf("audited %zu instance(s)\n", reports.size());
    if (!corpus_path.empty()) {
        feedback::write_corpus_file(corpus_path, job.to_json(), corpus);
        std::printf("corpus: %s (%zu entr%s)\n", corpus_path.c_str(), corpus.size(),
                    corpus.size() == 1 ? "y" : "ies");
    }
    emit_report(std::move(reports), out_path);
    return 0;
}

int cmd_serve(const std::vector<std::string>& args) {
    coord::CoordConfig config;
    config.verbose = true;
    std::string out_path;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (parse_job_flag(config.job, args, i)) continue;
        if (args[i] == "--shards") config.shard_count = static_cast<int>(int_value(args, i));
        else if (args[i] == "--checkpoint-interval")
            config.checkpoint_interval = static_cast<int>(int_value(args, i));
        else if (args[i] == "--socket") config.socket_path = flag_value(args, i);
        else if (args[i] == "--records-dir") config.records_dir = flag_value(args, i);
        else if (args[i] == "--artifact-dir") config.artifact_dir = flag_value(args, i);
        else if (args[i] == "--out") out_path = flag_value(args, i);
        else if (args[i] == "--threads")
            config.prepare_threads = static_cast<int>(int_value(args, i));
        else if (args[i] == "--spawn-workers")
            config.spawn_workers = static_cast<int>(int_value(args, i));
        else if (args[i] == "--worker-threads")
            config.worker_threads = static_cast<int>(int_value(args, i));
        else if (args[i] == "--max-respawns")
            config.max_respawns = static_cast<int>(int_value(args, i));
        else if (args[i] == "--lease-ms") config.lease.lease_ms = std::stod(flag_value(args, i));
        else if (args[i] == "--heartbeat-ms")
            config.lease.heartbeat_ms = std::stod(flag_value(args, i));
        else if (args[i] == "--max-failures")
            config.lease.max_failures = static_cast<int>(int_value(args, i));
        else if (args[i] == "--backoff-base-ms")
            config.lease.backoff.base_ms = std::stod(flag_value(args, i));
        else if (args[i] == "--backoff-max-ms")
            config.lease.backoff.max_ms = std::stod(flag_value(args, i));
        else if (args[i] == "--straggler-factor")
            config.lease.straggler_factor = std::stod(flag_value(args, i));
        else if (args[i] == "--linger-ms") config.linger_ms = std::stod(flag_value(args, i));
        else if (args[i] == "--worker-watchdog-ms")
            config.worker_watchdog_ms = std::stod(flag_value(args, i));
        else if (args[i] == "--worker-rlimit-as") config.worker_rlimit_as = int_value(args, i);
        else if (args[i] == "--quarantine-max-points")
            config.quarantine_max_points = int_value(args, i);
        else if (args[i] == "--quarantine-max-alloc-bytes")
            config.quarantine_max_alloc_bytes = int_value(args, i);
        else if (args[i] == "--listen") config.listen_address = flag_value(args, i);
        else if (args[i] == "--session-grace-ms")
            config.session_grace_ms = std::stod(flag_value(args, i));
        else if (args[i] == "--worker-reply-timeout-ms")
            config.worker_reply_timeout_ms = std::stod(flag_value(args, i));
        else if (args[i] == "--net-fault") {
            config.net_fault = flag_value(args, i);
            try {
                coord::NetFaultPlan::parse(config.net_fault);  // validate up front
            } catch (const common::Error& e) {
                return usage(e.what());
            }
        }
        else if (args[i] == "--quiet") config.verbose = false;
        else if (args[i] == "--worker-fault") {
            const std::string kv = flag_value(args, i);
            const std::size_t eq = kv.find('=');
            if (eq == std::string::npos)
                return usage(("--worker-fault expects <k>=<spec>: " + kv).c_str());
            const int index = static_cast<int>(std::stoll(kv.substr(0, eq)));
            try {
                coord::FaultPlan::parse(kv.substr(eq + 1));  // validate up front
            } catch (const common::Error& e) {
                return usage(e.what());
            }
            config.worker_faults[index] = kv.substr(eq + 1);
        } else return usage(("unknown serve option " + args[i]).c_str());
    }
    if (config.records_dir.empty()) return usage("serve needs --records-dir");
    if (config.socket_path.empty()) config.socket_path = config.records_dir + "/coord.sock";
    try {
        finalize_job(config.job);
        shard::load_job_program(config.job);  // fail early with the job exit code
        shard::job_passes(config.job);
    } catch (const common::Error& e) {
        std::fprintf(stderr, "ffaudit serve: %s\n", e.what());
        return kExitJob;
    }
    if (!config.artifact_dir.empty()) std::filesystem::create_directories(config.artifact_dir);

    coord::ServeResult result = coord::serve(config);
    const coord::CoordStats& s = result.stats;
    std::printf("served %d shard(s): %lld lease(s), %lld expiration(s), %lld requeue(s), "
                "%lld hedge(s), %lld duplicate completion(s) (%d byte-verified), "
                "%d worker(s) seen, %d lost, %d spawned, %zu quarantined unit(s), "
                "%d split shard(s), %d session(s) parked, %d resumed, %d grace-expired\n",
                s.shards_merged, static_cast<long long>(s.queue.granted),
                static_cast<long long>(s.queue.expirations),
                static_cast<long long>(s.queue.requeues),
                static_cast<long long>(s.queue.hedges),
                static_cast<long long>(s.queue.duplicate_completions),
                s.duplicate_files_verified, s.workers_seen, s.workers_lost, s.workers_spawned,
                s.quarantined_units.size(), s.shards_split, s.sessions_parked,
                s.sessions_resumed, s.sessions_expired);
    if (!config.net_fault.empty()) {
        std::printf("net faults: %lld frame(s) forwarded, %lld dropped, %lld duplicated, "
                    "%lld corrupted, %d partition(s)\n",
                    static_cast<long long>(s.net.frames_forwarded),
                    static_cast<long long>(s.net.frames_dropped),
                    static_cast<long long>(s.net.frames_duplicated),
                    static_cast<long long>(s.net.frames_corrupted), s.net.partitions);
    }
    if (!s.quarantined_units.empty()) {
        std::string units;
        for (std::int64_t unit : s.quarantined_units) {
            if (!units.empty()) units += ", ";
            units += std::to_string(unit);
        }
        std::printf("quarantined units: %s\n", units.c_str());
    }
    emit_report(std::move(result.reports), out_path);
    return s.quarantined_units.empty() ? kExitOk : kExitQuarantined;
}

int cmd_worker(const std::vector<std::string>& args) {
    coord::WorkerConfig config;
    config.verbose = true;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--socket") config.socket_path = flag_value(args, i);
        else if (args[i] == "--connect") config.connect_address = flag_value(args, i);
        else if (args[i] == "--id") config.worker_id = flag_value(args, i);
        else if (args[i] == "--threads") config.num_threads = static_cast<int>(int_value(args, i));
        else if (args[i] == "--trial-chunk")
            config.trial_chunk = static_cast<int>(int_value(args, i));
        else if (args[i] == "--fault") {
            try {
                config.fault = coord::FaultPlan::parse(flag_value(args, i));
            } catch (const common::Error& e) {
                return usage(e.what());
            }
        }
        else if (args[i] == "--connect-attempts")
            config.max_connect_attempts = static_cast<int>(int_value(args, i));
        else if (args[i] == "--reply-timeout-ms")
            config.reply_timeout_ms = std::stod(flag_value(args, i));
        else if (args[i] == "--watchdog-ms") config.watchdog_ms = std::stod(flag_value(args, i));
        else if (args[i] == "--rlimit-as") config.rlimit_as_bytes = int_value(args, i);
        else if (args[i] == "--quiet") config.verbose = false;
        else return usage(("unknown worker option " + args[i]).c_str());
    }
    if (config.socket_path.empty() && config.connect_address.empty())
        return usage("worker needs --socket or --connect");

    coord::WorkerStats stats = coord::run_worker(config);
    std::printf("worker done: %d shard(s) completed, %d failed, %d salvage(s), "
                "%lld unit(s)%s\n",
                stats.shards_completed, stats.shards_failed, stats.salvages,
                static_cast<long long>(stats.units_run),
                stats.abandoned ? " (abandoned by fault plan)" : "");
    return kExitOk;
}

/// `ffaudit fsck`: verify record streams, report corruption with file and
/// line, optionally truncate back to the last verifiable prefix.  Exit 0
/// when every file is healthy (complete or cleanly in progress); exit 6
/// when any corruption — bit flip, torn tail, dropped line, missing
/// header — was found, whether or not --repair salvaged it.
int cmd_fsck(const std::vector<std::string>& args) {
    std::vector<std::string> paths;
    std::string records_dir;
    bool repair = false;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--records") paths.push_back(flag_value(args, i));
        else if (args[i] == "--records-dir") records_dir = flag_value(args, i);
        else if (args[i] == "--repair") repair = true;
        else return usage(("unknown fsck option " + args[i]).c_str());
    }
    if (!records_dir.empty()) {
        for (const auto& entry : std::filesystem::directory_iterator(records_dir)) {
            if (entry.path().extension() == ".jsonl") paths.push_back(entry.path().string());
        }
    }
    if (paths.empty()) return usage("fsck needs --records or a non-empty --records-dir");
    std::sort(paths.begin(), paths.end());  // deterministic report order

    int corrupt_files = 0;
    for (const std::string& path : paths) {
        shard::RecordScan scan;
        try {
            scan = shard::scan_record_file(path);
        } catch (const common::Error& e) {
            std::printf("fsck: %s: UNREADABLE: %s\n", path.c_str(), e.what());
            ++corrupt_files;
            continue;
        }
        if (scan.clean()) {
            if (scan.file.complete()) {
                std::printf("fsck: %s: ok — %zu record(s), sealed by trailer\n", path.c_str(),
                            scan.file.records.size());
            } else {
                std::printf("fsck: %s: ok — in progress (checkpoint %lld of %lld)\n",
                            path.c_str(), static_cast<long long>(scan.file.checkpoint),
                            static_cast<long long>(scan.file.manifest.unit_end));
            }
            continue;
        }
        ++corrupt_files;
        if (scan.error_kind == shard::ScanErrorKind::Integrity) {
            std::printf("fsck: %s: CORRUPT (integrity), line %d: %s\n", path.c_str(),
                        scan.error_line, scan.error.c_str());
        } else if (scan.error_kind == shard::ScanErrorKind::Parse) {
            std::printf("fsck: %s: CORRUPT (structure), line %d: %s\n", path.c_str(),
                        scan.error_line, scan.error.c_str());
        } else if (!scan.have_header) {
            std::printf("fsck: %s: CORRUPT, line 1: no parseable header line\n", path.c_str());
        } else {
            std::printf("fsck: %s: torn tail, line %d (mid-write kill; durable prefix ends at "
                        "offset %lld)\n",
                        path.c_str(), scan.torn_line,
                        static_cast<long long>(scan.file.resume_offset));
        }
        if (repair) {
            const std::int64_t removed = shard::repair_record_file(path, scan);
            std::printf("fsck: %s: repaired — truncated %lld byte(s); resumable at checkpoint "
                        "%lld\n",
                        path.c_str(), static_cast<long long>(removed),
                        static_cast<long long>(scan.have_header ? scan.file.checkpoint : 0));
        }
    }
    std::printf("fsck: %zu file(s), %d corrupt\n", paths.size(), corrupt_files);
    return corrupt_files > 0 ? kExitMerge : kExitOk;
}

int cmd_replay(const std::vector<std::string>& args) {
    if (args.size() != 1 || args[0].rfind("--", 0) == 0)
        return usage("replay expects exactly one <testcase.json>");
    const core::LoadedTestCase tc = core::load_testcase_file(args[0]);
    std::printf("transformation: %s\n", tc.transformation.c_str());
    std::printf("recorded verdict: %s (%s)\n", tc.verdict.c_str(), tc.detail.c_str());
    const core::ReplayResult replay = core::replay_testcase(tc);
    std::printf("replayed verdict: %s\n", core::verdict_name(replay.outcome.verdict));
    if (!replay.outcome.detail.empty()) std::printf("  %s\n", replay.outcome.detail.c_str());
    std::printf("%s\n", replay.reproduced ? "REPRODUCED" : "DID NOT REPRODUCE");
    return replay.reproduced ? 0 : 1;
}

}  // namespace

namespace {

/// The exit code an uncaught common::Error maps to, per command: the
/// dominant failure class of each command's main phase.  Malformed input
/// files override to kExitParse via the exception type, and commands remap
/// their secondary phases inline (e.g. `run` returns kExitExecution for an
/// audit failure but kExitJob for a bad job).
int default_error_code(const std::string& command) {
    if (command == "plan" || command == "run") return kExitJob;
    if (command == "run-shard") return kExitExecution;
    if (command == "merge" || command == "fsck") return kExitMerge;
    if (command == "serve" || command == "worker") return kExitCoordinator;
    return kExitInternal;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    try {
        if (command == "plan") return cmd_plan(args);
        if (command == "run-shard") return cmd_run_shard(args);
        if (command == "merge") return cmd_merge(args);
        if (command == "run") return cmd_run(args);
        if (command == "serve") return cmd_serve(args);
        if (command == "worker") return cmd_worker(args);
        if (command == "fsck") return cmd_fsck(args);
        if (command == "replay") return cmd_replay(args);
        if (command == "--help" || command == "-h" || command == "help") {
            usage();  // asked for, so not an error
            return kExitOk;
        }
        return usage(("unknown command " + command).c_str());
    } catch (const common::ParseError& e) {
        std::fprintf(stderr, "ffaudit %s: %s\n", command.c_str(), e.what());
        return kExitParse;
    } catch (const common::Error& e) {
        std::fprintf(stderr, "ffaudit %s: %s\n", command.c_str(), e.what());
        return default_error_code(command);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "ffaudit %s: %s\n", command.c_str(), e.what());
        return kExitInternal;
    }
}
