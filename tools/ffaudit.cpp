// ffaudit — plan, run, distribute and merge FuzzyFlow audits.
//
// The distribution workflow (docs/ARCHITECTURE.md "Sharded execution"):
//
//   ffaudit plan  --workload gemm --shards 4 --out-dir plan/
//       partitions the audit's (instance, trial) unit space into 4
//       contiguous shards and writes one manifest JSON per shard;
//   ffaudit run-shard --manifest plan/shard-2.json --records-dir records/
//       executes one shard (any machine that can rebuild the job), streaming
//       checkpointed records; killed runs resume from the last checkpoint;
//   ffaudit merge --records-dir records/ --out report.json
//       validates coverage and reconstructs the exact single-process report
//       — byte-identical to `ffaudit run` at any shard/worker count;
//   ffaudit run   --workload gemm --out report.json
//       the single-process reference (same canonical report document);
//   ffaudit replay testcase.json
//       re-runs a reproducer artifact through the differential tester.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/report.h"
#include "core/testcase_io.h"
#include "shard/manifest.h"
#include "shard/merger.h"
#include "shard/records.h"
#include "shard/runner.h"
#include "workloads/npbench.h"

using namespace ff;

namespace {

int usage(const char* detail = nullptr) {
    if (detail) std::fprintf(stderr, "ffaudit: %s\n\n", detail);
    std::fprintf(stderr,
                 "usage: ffaudit <command> [options]\n"
                 "\n"
                 "commands:\n"
                 "  plan       partition an audit into shard manifests\n"
                 "  run-shard  execute one shard manifest (checkpointed, resumable)\n"
                 "  merge      merge complete shard record files into the canonical report\n"
                 "  run        single-process audit emitting the same canonical report\n"
                 "  replay     re-run a reproducer test case JSON\n"
                 "\n"
                 "job options (plan, run):\n"
                 "  --workload <name>        npbench kernel (see --list-workloads)\n"
                 "  --sdfg <file>            serialized SDFG instead of a named workload\n"
                 "  --passes <set>           table2 | correct | tiling   [table2]\n"
                 "  --seed <n>               sampler seed               [0x5eed]\n"
                 "  --trials <n>             trials per instance        [100]\n"
                 "  --size-max <n>           sampler size bound         [16]\n"
                 "  --threshold <x>          comparison threshold       [1e-5]\n"
                 "  --max-transitions <n>    interpreter budget         [default]\n"
                 "  --no-mincut              skip the minimum input-flow cut\n"
                 "  --default <sym>=<val>    default symbol binding (repeatable)\n"
                 "\n"
                 "plan:      --shards <n> --out-dir <dir> [--checkpoint-interval <n>]\n"
                 "run-shard: --manifest <file> --records-dir <dir> [--records <file>]\n"
                 "           [--threads <n>] [--trial-chunk <n>] [--no-resume]\n"
                 "           [--interrupt-after-units <n>]\n"
                 "merge:     --records-dir <dir> | --records <file>... \n"
                 "           [--artifact-dir <dir>] [--out <file>] [--threads <n>]\n"
                 "run:       [--threads <n>] [--artifact-dir <dir>] [--out <file>]\n"
                 "replay:    <testcase.json>\n");
    return 2;
}

/// Value of a --flag; advances `i`.  Throws common::Error when missing.
std::string flag_value(const std::vector<std::string>& args, std::size_t& i) {
    if (i + 1 >= args.size()) throw common::Error("missing value for " + args[i]);
    return args[++i];
}

std::int64_t int_value(const std::vector<std::string>& args, std::size_t& i) {
    const std::string v = flag_value(args, i);
    return std::stoll(v, nullptr, 0);
}

/// Parses one job option; returns false when `args[i]` is not a job flag.
bool parse_job_flag(shard::JobSpec& job, const std::vector<std::string>& args, std::size_t& i) {
    const std::string& a = args[i];
    if (a == "--workload") job.workload = flag_value(args, i);
    else if (a == "--sdfg") job.sdfg_path = flag_value(args, i);
    else if (a == "--passes") job.passes = flag_value(args, i);
    else if (a == "--seed") job.seed = static_cast<std::uint64_t>(int_value(args, i));
    else if (a == "--trials") job.max_trials = static_cast<int>(int_value(args, i));
    else if (a == "--size-max") job.size_max = int_value(args, i);
    else if (a == "--threshold") job.threshold = std::stod(flag_value(args, i));
    else if (a == "--max-transitions") job.max_state_transitions = int_value(args, i);
    else if (a == "--no-mincut") job.use_mincut = false;
    else if (a == "--default") {
        const std::string kv = flag_value(args, i);
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos) throw common::Error("--default expects <sym>=<val>: " + kv);
        job.defaults[kv.substr(0, eq)] = std::stoll(kv.substr(eq + 1));
    } else {
        return false;
    }
    return true;
}

/// Fills workload-derived defaults a self-contained manifest needs.
void finalize_job(shard::JobSpec& job) {
    if (job.workload.empty() && job.sdfg_path.empty())
        throw common::Error("a job needs --workload or --sdfg");
    if (!job.workload.empty() && job.defaults.empty()) job.defaults = workloads::npbench_defaults();
}

void write_text_file(const std::string& path, const std::string& text) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw common::Error("cannot write " + path);
    out << text;
    out.close();
    if (out.fail()) throw common::Error("short write to " + path);
}

/// Emits the canonical report document to `out_path` ("" = stdout) and the
/// audit table to stdout.
void emit_report(std::vector<core::FuzzReport> reports, const std::string& out_path) {
    const common::Json doc = shard::canonical_report_document(std::move(reports));
    const std::string text = doc.dump(2) + "\n";
    if (out_path.empty()) {
        std::fputs(text.c_str(), stdout);
    } else {
        write_text_file(out_path, text);
        std::printf("report: %s\n", out_path.c_str());
    }
    std::printf("%s", doc.at("table").as_string().c_str());
}

std::string records_path_for(const std::string& dir, int shard_index) {
    return dir + "/records-" + std::to_string(shard_index) + ".jsonl";
}

int cmd_plan(const std::vector<std::string>& args) {
    shard::JobSpec job;
    int shards = 0;
    int checkpoint_interval = 64;
    std::string out_dir;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (parse_job_flag(job, args, i)) continue;
        if (args[i] == "--shards") shards = static_cast<int>(int_value(args, i));
        else if (args[i] == "--checkpoint-interval")
            checkpoint_interval = static_cast<int>(int_value(args, i));
        else if (args[i] == "--out-dir") out_dir = flag_value(args, i);
        else if (args[i] == "--list-workloads") {
            for (const auto& name : workloads::npbench_kernel_names())
                std::printf("%s\n", name.c_str());
            return 0;
        } else return usage(("unknown plan option " + args[i]).c_str());
    }
    if (shards < 1) return usage("plan needs --shards >= 1");
    if (out_dir.empty()) return usage("plan needs --out-dir");
    finalize_job(job);

    const ir::SDFG program = shard::load_job_program(job);
    const auto manifests = shard::plan_shards(job, program, shards, checkpoint_interval);
    std::filesystem::create_directories(out_dir);
    for (const auto& m : manifests)
        write_text_file(out_dir + "/shard-" + std::to_string(m.shard_index) + ".json",
                        m.to_json().dump(2) + "\n");
    std::printf("planned %zu shard(s) over %lld units (%lld instances x %d trials) in %s\n",
                manifests.size(), static_cast<long long>(manifests.back().unit_end),
                static_cast<long long>(manifests.front().instance_count), job.max_trials,
                out_dir.c_str());
    return 0;
}

int cmd_run_shard(const std::vector<std::string>& args) {
    std::string manifest_path, records_path, records_dir;
    shard::RunShardOptions options;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--manifest") manifest_path = flag_value(args, i);
        else if (args[i] == "--records") records_path = flag_value(args, i);
        else if (args[i] == "--records-dir") records_dir = flag_value(args, i);
        else if (args[i] == "--threads") options.num_threads = static_cast<int>(int_value(args, i));
        else if (args[i] == "--trial-chunk")
            options.trial_chunk = static_cast<int>(int_value(args, i));
        else if (args[i] == "--no-resume") options.resume = false;
        else if (args[i] == "--interrupt-after-units")
            options.interrupt_after_units = int_value(args, i);
        else return usage(("unknown run-shard option " + args[i]).c_str());
    }
    if (manifest_path.empty()) return usage("run-shard needs --manifest");
    if (records_path.empty() && records_dir.empty())
        return usage("run-shard needs --records or --records-dir");

    const shard::ShardManifest manifest =
        shard::ShardManifest::from_json(common::Json::parse_file(manifest_path));
    if (records_path.empty()) {
        std::filesystem::create_directories(records_dir);
        records_path = records_path_for(records_dir, manifest.shard_index);
    }

    const shard::RunShardResult result = shard::run_shard(manifest, records_path, options);
    std::printf("shard %d/%d: %s %lld unit(s) of [%lld, %lld) -> %s%s\n", manifest.shard_index,
                manifest.shard_count, result.resumed_from > manifest.unit_begin ? "resumed," : "ran",
                static_cast<long long>(result.units_run),
                static_cast<long long>(manifest.unit_begin),
                static_cast<long long>(manifest.unit_end), records_path.c_str(),
                result.completed ? "" : " (INTERRUPTED — rerun to resume)");
    return result.completed ? 0 : 3;
}

int cmd_merge(const std::vector<std::string>& args) {
    std::vector<std::string> record_paths;
    std::string records_dir, out_path;
    shard::MergeOptions options;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--records") record_paths.push_back(flag_value(args, i));
        else if (args[i] == "--records-dir") records_dir = flag_value(args, i);
        else if (args[i] == "--artifact-dir") options.artifact_dir = flag_value(args, i);
        else if (args[i] == "--out") out_path = flag_value(args, i);
        else if (args[i] == "--threads") options.num_threads = static_cast<int>(int_value(args, i));
        else return usage(("unknown merge option " + args[i]).c_str());
    }
    if (!records_dir.empty()) {
        for (const auto& entry : std::filesystem::directory_iterator(records_dir)) {
            const std::string name = entry.path().filename().string();
            if (name.rfind("records-", 0) == 0 && name.size() > 6 &&
                name.substr(name.size() - 6) == ".jsonl")
                record_paths.push_back(entry.path().string());
        }
    }
    if (record_paths.empty()) return usage("merge needs --records or a non-empty --records-dir");
    if (!options.artifact_dir.empty()) std::filesystem::create_directories(options.artifact_dir);

    shard::MergeResult merged = shard::merge_shards(record_paths, options);
    std::printf("merged %zu shard file(s), %lld record(s), %zu instance(s)\n", merged.shard_files,
                static_cast<long long>(merged.records), merged.reports.size());
    emit_report(std::move(merged.reports), out_path);
    return 0;
}

int cmd_run(const std::vector<std::string>& args) {
    shard::JobSpec job;
    std::string out_path;
    int threads = 0;
    std::string artifact_dir;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (parse_job_flag(job, args, i)) continue;
        if (args[i] == "--threads") threads = static_cast<int>(int_value(args, i));
        else if (args[i] == "--artifact-dir") artifact_dir = flag_value(args, i);
        else if (args[i] == "--out") out_path = flag_value(args, i);
        else return usage(("unknown run option " + args[i]).c_str());
    }
    finalize_job(job);
    if (!artifact_dir.empty()) std::filesystem::create_directories(artifact_dir);

    core::FuzzConfig config = shard::job_fuzz_config(job);
    config.num_threads = threads;
    config.artifact_dir = artifact_dir;
    core::Fuzzer fuzzer(config);
    std::vector<core::FuzzReport> reports =
        fuzzer.audit(shard::load_job_program(job), shard::job_passes(job));
    std::printf("audited %zu instance(s)\n", reports.size());
    emit_report(std::move(reports), out_path);
    return 0;
}

int cmd_replay(const std::vector<std::string>& args) {
    if (args.size() != 1 || args[0].rfind("--", 0) == 0)
        return usage("replay expects exactly one <testcase.json>");
    const core::LoadedTestCase tc = core::load_testcase_file(args[0]);
    std::printf("transformation: %s\n", tc.transformation.c_str());
    std::printf("recorded verdict: %s (%s)\n", tc.verdict.c_str(), tc.detail.c_str());
    const core::ReplayResult replay = core::replay_testcase(tc);
    std::printf("replayed verdict: %s\n", core::verdict_name(replay.outcome.verdict));
    if (!replay.outcome.detail.empty()) std::printf("  %s\n", replay.outcome.detail.c_str());
    std::printf("%s\n", replay.reproduced ? "REPRODUCED" : "DID NOT REPRODUCE");
    return replay.reproduced ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    try {
        if (command == "plan") return cmd_plan(args);
        if (command == "run-shard") return cmd_run_shard(args);
        if (command == "merge") return cmd_merge(args);
        if (command == "run") return cmd_run(args);
        if (command == "replay") return cmd_replay(args);
        if (command == "--help" || command == "-h" || command == "help") return usage();
        return usage(("unknown command " + command).c_str());
    } catch (const std::exception& e) {
        std::fprintf(stderr, "ffaudit %s: %s\n", command.c_str(), e.what());
        return 1;
    }
}
