#include <gtest/gtest.h>

#include <algorithm>

#include "graph/digraph.h"
#include "graph/maxflow.h"

namespace ff::graph {
namespace {

using G = DiGraph<int, int>;

TEST(DiGraph, BasicTopology) {
    G g;
    const NodeId a = g.add_node(1);
    const NodeId b = g.add_node(2);
    const NodeId c = g.add_node(3);
    g.add_edge(a, b, 10);
    g.add_edge(b, c, 20);
    g.add_edge(a, c, 30);

    EXPECT_EQ(g.node_count(), 3u);
    EXPECT_EQ(g.edge_count(), 3u);
    EXPECT_EQ(g.out_degree(a), 2u);
    EXPECT_EQ(g.in_degree(c), 2u);

    const auto topo = g.topological_order();
    ASSERT_TRUE(topo.has_value());
    auto pos = [&](NodeId n) {
        return std::find(topo->begin(), topo->end(), n) - topo->begin();
    };
    EXPECT_LT(pos(a), pos(b));
    EXPECT_LT(pos(b), pos(c));
}

TEST(DiGraph, CycleDetection) {
    G g;
    const NodeId a = g.add_node(0);
    const NodeId b = g.add_node(0);
    g.add_edge(a, b, 0);
    g.add_edge(b, a, 0);
    EXPECT_FALSE(g.topological_order().has_value());
}

TEST(DiGraph, RemovalTombstonesPreserveIds) {
    G g;
    const NodeId a = g.add_node(0);
    const NodeId b = g.add_node(1);
    const NodeId c = g.add_node(2);
    g.add_edge(a, b, 0);
    const EdgeId bc = g.add_edge(b, c, 0);
    g.remove_node(b);
    EXPECT_FALSE(g.contains_node(b));
    EXPECT_FALSE(g.contains_edge(bc));
    EXPECT_TRUE(g.contains_node(a));
    EXPECT_TRUE(g.contains_node(c));
    EXPECT_EQ(g.node(c), 2);  // id stable across removal of others
    EXPECT_EQ(g.out_degree(a), 0u);
    EXPECT_EQ(g.in_degree(c), 0u);
}

TEST(DiGraph, ParallelEdges) {
    G g;
    const NodeId a = g.add_node(0);
    const NodeId b = g.add_node(0);
    g.add_edge(a, b, 1);
    g.add_edge(a, b, 2);
    EXPECT_EQ(g.out_degree(a), 2u);
}

TEST(DiGraph, Reachability) {
    // a -> b -> c,  d isolated.
    G g;
    const NodeId a = g.add_node(0);
    const NodeId b = g.add_node(0);
    const NodeId c = g.add_node(0);
    const NodeId d = g.add_node(0);
    g.add_edge(a, b, 0);
    g.add_edge(b, c, 0);

    EXPECT_EQ(g.reachable_from(a), (std::set<NodeId>{a, b, c}));
    EXPECT_EQ(g.reaching(c), (std::set<NodeId>{a, b, c}));
    EXPECT_EQ(g.reachable_from(d), (std::set<NodeId>{d}));
    EXPECT_EQ(g.bfs_from({a, d}, true), (std::set<NodeId>{a, b, c, d}));
}

TEST(MaxFlow, SingleEdge) {
    const auto r = max_flow(2, {{0, 1, 7}}, 0, 1);
    EXPECT_EQ(r.max_flow, 7);
    EXPECT_EQ(r.source_side, (std::set<int>{0}));
    ASSERT_EQ(r.cut_edges.size(), 1u);
    EXPECT_EQ(r.cut_edges[0], 0u);
}

TEST(MaxFlow, ClassicDiamond) {
    //      1
    //    /   \
    //  0       3      caps: 0-1:3, 0-2:2, 1-3:2, 2-3:3, 1-2:1
    //    \   /
    //      2
    const std::vector<FlowEdge> edges = {{0, 1, 3}, {0, 2, 2}, {1, 3, 2}, {2, 3, 3}, {1, 2, 1}};
    const auto r = max_flow(4, edges, 0, 3);
    EXPECT_EQ(r.max_flow, 5);
}

TEST(MaxFlow, DisconnectedSink) {
    const auto r = max_flow(3, {{0, 1, 5}}, 0, 2);
    EXPECT_EQ(r.max_flow, 0);
    EXPECT_TRUE(r.source_side.count(0));
    EXPECT_TRUE(r.source_side.count(1));
    EXPECT_FALSE(r.source_side.count(2));
}

TEST(MaxFlow, InfiniteCapacityNeverCut) {
    // 0 -inf-> 1 -4-> 2: cut must land on the finite edge.
    const std::vector<FlowEdge> edges = {{0, 1, kInfiniteCapacity}, {1, 2, 4}};
    const auto r = max_flow(3, edges, 0, 2);
    EXPECT_EQ(r.max_flow, 4);
    ASSERT_EQ(r.cut_edges.size(), 1u);
    EXPECT_EQ(r.cut_edges[0], 1u);
}

TEST(MaxFlow, ParallelEdgeCapacitiesAdd) {
    const std::vector<FlowEdge> edges = {{0, 1, 2}, {0, 1, 3}};
    EXPECT_EQ(max_flow(2, edges, 0, 1).max_flow, 5);
}

TEST(MaxFlow, RecomputationBeatsLargeInput) {
    // The Fig. 5 shape in miniature: producer P feeds big tensor edge to T;
    // P's own inputs are small.  Min cut prefers paying for the inputs.
    //   S=0, A=1, B=2, P=3, T=4
    const std::vector<FlowEdge> edges = {
        {0, 1, 10}, {0, 2, 10},                                 // S->A, S->B (input sizes)
        {1, 3, kInfiniteCapacity}, {2, 3, kInfiniteCapacity},   // data-node out-edges
        {3, 4, 100},                                            // producer -> T (big tensor)
    };
    const auto r = max_flow(5, edges, 0, 4);
    EXPECT_EQ(r.max_flow, 20);
    // A, B and P all fall on the sink side: they join the cutout.
    EXPECT_FALSE(r.source_side.count(1));
    EXPECT_FALSE(r.source_side.count(2));
    EXPECT_FALSE(r.source_side.count(3));
}

/// Property: max flow equals min cut capacity on random-ish layered graphs.
class MaxFlowProperty : public ::testing::TestWithParam<int> {};

TEST_P(MaxFlowProperty, FlowEqualsCutCapacity) {
    const int seed = GetParam();
    // Deterministic pseudo-random layered graph: 2 layers of 3 nodes.
    std::vector<FlowEdge> edges;
    std::uint32_t v = static_cast<std::uint32_t>(seed);
    auto next = [&]() -> std::int64_t {
        v = v * 1103515245u + 12345u;
        return static_cast<std::int64_t>(v & 0x7fffffffu);
    };
    const int s = 0, t = 7;
    for (int a = 1; a <= 3; ++a) edges.push_back({s, a, next() % 20 + 1});
    for (int a = 1; a <= 3; ++a)
        for (int b = 4; b <= 6; ++b)
            if (next() % 3) edges.push_back({a, b, next() % 20 + 1});
    for (int b = 4; b <= 6; ++b) edges.push_back({b, t, next() % 20 + 1});

    const auto r = max_flow(8, edges, s, t);
    std::int64_t cut_capacity = 0;
    for (std::size_t idx : r.cut_edges) cut_capacity += edges[idx].capacity;
    EXPECT_EQ(r.max_flow, cut_capacity);  // max-flow min-cut theorem
    EXPECT_TRUE(r.source_side.count(s));
    EXPECT_FALSE(r.source_side.count(t));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxFlowProperty, ::testing::Range(1, 21));

}  // namespace
}  // namespace ff::graph
