// The ffaudit command-line contract: exit codes are part of the interface
// (orchestration scripts and the CI chaos job branch on them), so each
// class is pinned by driving the real binary as a subprocess.  The binary's
// path arrives via the FFAUDIT_PATH compile definition (CMakeLists.txt).
//
//   0  success (including a replay that reproduces)
//   2  usage errors (bad flags, bad fault specs)
//   3  an interrupted, resumable shard
//   4  job construction failures
//   5  shard execution failures
//   6  merge/validation failures, incl. record-integrity violations and
//      `fsck` having found corruption (clean fsck = 0)
//   7  malformed input files (parse errors)
//   8  coordinator/worker gave up
//   9  audit completed but poison units were quarantined (serve)
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <sys/wait.h>

namespace ff {
namespace {

namespace fs = std::filesystem;

/// Fresh empty scratch directory under the gtest temp root.
std::string scratch_dir(const std::string& name) {
    const std::string path = ::testing::TempDir() + "ff_cli_" + name;
    fs::remove_all(path);
    fs::create_directories(path);
    return path;
}

struct CliResult {
    int code = -1;     ///< Exit code, or -1 when the process died on a signal.
    std::string out;   ///< Combined stdout + stderr.
};

/// Runs `ffaudit <args>` and captures its exit code and output.
CliResult run_cli(const std::string& args) {
    static int counter = 0;
    const std::string capture =
        ::testing::TempDir() + "ff_cli_capture_" + std::to_string(counter++) + ".txt";
    const std::string cmd = std::string(FFAUDIT_PATH) + " " + args + " > " + capture + " 2>&1";
    const int status = std::system(cmd.c_str());
    CliResult result;
    if (WIFEXITED(status)) result.code = WEXITSTATUS(status);
    std::ifstream in(capture, std::ios::binary);
    result.out.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    fs::remove(capture);
    return result;
}

/// The job flags every test reuses — small enough to run in milliseconds.
const char kJob[] = "--workload gemm --passes table2 --trials 4 --size-max 5 "
                    "--max-transitions 2000";

TEST(CliUsage, BadInvocationsExitTwo) {
    EXPECT_EQ(run_cli("").code, 2);
    EXPECT_EQ(run_cli("frobnicate").code, 2);
    EXPECT_EQ(run_cli("plan --workload gemm").code, 2);  // missing --shards/--out-dir
    EXPECT_EQ(run_cli("run-shard").code, 2);             // missing --manifest
    EXPECT_EQ(run_cli("worker").code, 2);                // missing --socket
    EXPECT_EQ(run_cli("worker --socket /tmp/x.sock --fault explode").code, 2);
    EXPECT_EQ(run_cli("serve --records-dir /tmp/r --worker-fault 0=bogus").code, 2);

    const CliResult help = run_cli("--help");
    EXPECT_EQ(help.code, 0);
    EXPECT_NE(help.out.find("exit codes:"), std::string::npos)
        << "--help must document the exit-code contract";
}

TEST(CliJobErrors, UnknownWorkloadExitsFour) {
    const CliResult r = run_cli("run --workload no_such_kernel");
    EXPECT_EQ(r.code, 4);
    EXPECT_NE(r.out.find("no_such_kernel"), std::string::npos) << r.out;
}

TEST(CliParseErrors, MalformedManifestExitsSeven) {
    const std::string dir = scratch_dir("bad_manifest");
    std::ofstream(dir + "/shard-0.json") << "{\"job\": nope}";
    const CliResult r = run_cli("run-shard --manifest " + dir + "/shard-0.json --records-dir " +
                                dir);
    EXPECT_EQ(r.code, 7);
    EXPECT_NE(r.out.find("shard-0.json"), std::string::npos) << r.out;
}

TEST(CliShardLifecycle, PlanInterruptResumeMergeExitCodes) {
    const std::string dir = scratch_dir("lifecycle");
    const std::string plan_dir = dir + "/plan";
    const std::string records_dir = dir + "/records";

    EXPECT_EQ(run_cli(std::string("plan ") + kJob + " --shards 2 --out-dir " + plan_dir +
                      " --checkpoint-interval 2")
                  .code,
              0);
    ASSERT_TRUE(fs::exists(plan_dir + "/shard-0.json"));

    // An interrupted shard is a distinct, resumable condition: exit 3.
    const std::string run_shard =
        "run-shard --manifest " + plan_dir + "/shard-0.json --records-dir " + records_dir;
    EXPECT_EQ(run_cli(run_shard + " --interrupt-after-units 2").code, 3);

    // Merging while a shard is incomplete is a validation failure: exit 6.
    EXPECT_EQ(run_cli("merge --records-dir " + records_dir).code, 6);

    // A garbage record stream is a parse failure: exit 7.
    std::ofstream(records_dir + "/records-9.jsonl") << "{\"type\":\"record\",\"unit\":0}\n";
    EXPECT_EQ(run_cli("merge --records " + records_dir + "/records-9.jsonl").code, 7);

    // Resuming to completion clears the way: both shards, then the merge.
    fs::remove(records_dir + "/records-9.jsonl");
    EXPECT_EQ(run_cli(run_shard).code, 0);
    EXPECT_EQ(run_cli("run-shard --manifest " + plan_dir + "/shard-1.json --records-dir " +
                      records_dir)
                  .code,
              0);
    EXPECT_EQ(run_cli("merge --records-dir " + records_dir + " --out " + dir + "/report.json")
                  .code,
              0);
    EXPECT_TRUE(fs::exists(dir + "/report.json"));
}

TEST(CliFsck, CleanExitsZeroAndCorruptionExitsSix) {
    const std::string dir = scratch_dir("fsck");
    const std::string plan_dir = dir + "/plan";
    const std::string records_dir = dir + "/records";
    ASSERT_EQ(run_cli(std::string("plan ") + kJob + " --shards 1 --out-dir " + plan_dir +
                      " --checkpoint-interval 2")
                  .code,
              0);
    ASSERT_EQ(run_cli("run-shard --manifest " + plan_dir + "/shard-0.json --records-dir " +
                      records_dir)
                  .code,
              0);
    const std::string victim = records_dir + "/records-0.jsonl";

    // A healthy record set: exit 0.
    EXPECT_EQ(run_cli("fsck --records-dir " + records_dir).code, 0);
    EXPECT_EQ(run_cli("fsck --records " + victim).code, 0);

    // One flipped byte: corruption found = exit 6, naming file and line.
    std::string bytes;
    {
        std::ifstream in(victim, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    }
    std::size_t at = bytes.size() / 2;
    while (bytes[at] == '\n') ++at;
    bytes[at] = static_cast<char>(bytes[at] ^ 0x04);
    std::ofstream(victim, std::ios::binary | std::ios::trunc) << bytes;

    const CliResult corrupt = run_cli("fsck --records-dir " + records_dir);
    EXPECT_EQ(corrupt.code, 6) << corrupt.out;
    EXPECT_NE(corrupt.out.find("records-0.jsonl"), std::string::npos) << corrupt.out;
    EXPECT_NE(corrupt.out.find("line"), std::string::npos) << corrupt.out;

    // --repair still reports the corruption it found (6)...
    EXPECT_EQ(run_cli("fsck --records " + victim + " --repair").code, 6);
    // ...but the surviving prefix verifies clean afterwards.
    EXPECT_EQ(run_cli("fsck --records " + victim).code, 0);

    // No inputs at all is a usage error, not a vacuous pass.
    EXPECT_EQ(run_cli("fsck").code, 2);
}

TEST(CliCoordinator, QuarantinedPoisonUnitsExitNine) {
    // A spawned worker that spins forever after its first durable checkpoint
    // (heartbeats keep flowing — only the wall-clock watchdog catches it) is
    // killed with exit 113; at --max-failures 1 its shard is quarantined:
    // the audit still completes and writes a report, but serve exits 9 so
    // orchestration can tell a clean audit from one with poisoned units.
    const std::string dir = scratch_dir("quarantine");
    const CliResult r = run_cli(std::string("serve ") + kJob +
                                " --shards 2 --checkpoint-interval 2 --socket " + dir +
                                "/coord.sock --records-dir " + dir + "/records" +
                                " --spawn-workers 1 --worker-fault 0=spin-after-units=1" +
                                " --worker-watchdog-ms 300 --max-failures 1" +
                                " --lease-ms 4000 --heartbeat-ms 300 --out " + dir +
                                "/report.json --quiet");
    EXPECT_EQ(r.code, 9) << r.out;
    EXPECT_NE(r.out.find("quarantined units:"), std::string::npos) << r.out;
    EXPECT_TRUE(fs::exists(dir + "/report.json")) << r.out;
}

TEST(CliCoordinator, UnreachableCoordinatorExitsEight) {
    const std::string dir = scratch_dir("unreachable");
    const CliResult r = run_cli("worker --socket " + dir + "/nobody.sock --connect-attempts 2 "
                                "--quiet");
    EXPECT_EQ(r.code, 8);
    EXPECT_NE(r.out.find("unreachable"), std::string::npos) << r.out;
}

}  // namespace
}  // namespace ff
