// Sharded audits (src/shard): wire-format losslessness, the deterministic
// planner, checkpoint/resume semantics, merge validation, and the
// end-to-end acceptance bar — for a fixed (workload, seed, trial budget),
// merging shard record files at ANY shard count (including a shard that
// was interrupted mid-chunk and resumed) reconstructs a report document and
// reproducer artifacts byte-identical to the single-process Fuzzer::audit
// (docs/ARCHITECTURE.md "Sharded execution").
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "common/checksum.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/report.h"
#include "core/testcase_io.h"
#include "helpers.h"
#include "ir/serialize.h"
#include "shard/manifest.h"
#include "shard/merger.h"
#include "shard/records.h"
#include "shard/runner.h"
#include "workloads/npbench.h"

namespace ff {
namespace {

namespace fs = std::filesystem;

/// Fresh empty scratch directory under the gtest temp root.
std::string scratch_dir(const std::string& name) {
    const std::string path = ::testing::TempDir() + "ff_shard_" + name;
    fs::remove_all(path);
    fs::create_directories(path);
    return path;
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

/// filename -> bytes of every regular file in `dir`.
std::map<std::string, std::string> dir_contents(const std::string& dir) {
    std::map<std::string, std::string> out;
    if (!fs::exists(dir)) return out;
    for (const auto& entry : fs::directory_iterator(dir))
        if (entry.is_regular_file())
            out[entry.path().filename().string()] = read_file(entry.path().string());
    return out;
}

// --- Wire-format round trips --------------------------------------------------

interp::Context random_context(common::Rng& rng) {
    interp::Context ctx;
    const int nsym = static_cast<int>(rng() % 4);
    for (int s = 0; s < nsym; ++s)
        ctx.symbols["sym" + std::to_string(s)] = static_cast<std::int64_t>(rng()) % 1000;
    const int nbuf = static_cast<int>(rng() % 3) + 1;
    for (int b = 0; b < nbuf; ++b) {
        const ir::DType dtype =
            std::vector<ir::DType>{ir::DType::F64, ir::DType::F32, ir::DType::I64,
                                   ir::DType::I32}[rng() % 4];
        const std::int64_t rank = 1 + static_cast<std::int64_t>(rng() % 2);
        std::vector<std::int64_t> shape;
        for (std::int64_t r = 0; r < rank; ++r)
            shape.push_back(1 + static_cast<std::int64_t>(rng() % 4));
        interp::Buffer buf(dtype, std::move(shape));
        for (std::int64_t i = 0; i < buf.size(); ++i) {
            if (ir::dtype_is_float(dtype)) {
                // Exercise values that break naive float printing: huge,
                // tiny, negative zero, long mantissas.
                const double picks[] = {1.0 / 3.0, -0.0, 1e300, 5e-324, -123456.789012345,
                                        static_cast<double>(rng()) / 7.0};
                buf.store(i, interp::Value::from_double(picks[rng() % 6]));
            } else {
                buf.store(i, interp::Value::from_int(static_cast<std::int64_t>(rng())));
            }
        }
        ctx.buffers.emplace("buf" + std::to_string(b), std::move(buf));
    }
    return ctx;
}

core::TrialRecord random_record(common::Rng& rng) {
    core::TrialRecord rec;
    switch (rng() % 4) {
        case 0: rec.kind = core::TrialRecord::Kind::NotRun; break;
        case 1: rec.kind = core::TrialRecord::Kind::Uninteresting; break;
        case 2: rec.kind = core::TrialRecord::Kind::Pass; break;
        default: {
            rec.kind = core::TrialRecord::Kind::Failed;
            const core::Verdict verdicts[] = {core::Verdict::SemanticsChanged,
                                              core::Verdict::TransformedCrash,
                                              core::Verdict::TransformedHang,
                                              core::Verdict::InvalidCode};
            rec.verdict = verdicts[rng() % 4];
            rec.detail = "mismatch at [\"x\"][3]: 1.0000000000000002 != 1\nline2 \\ \"quoted\"";
            rec.inputs = std::make_unique<interp::Context>(random_context(rng));
            break;
        }
    }
    return rec;
}

TEST(ShardWire, TrialRecordJsonRoundTripProperty) {
    common::Rng rng(0xC0FFEE);
    for (int iter = 0; iter < 200; ++iter) {
        const core::TrialRecord rec = random_record(rng);
        const common::Json j = core::trial_record_to_json(rec);
        const core::TrialRecord back = core::trial_record_from_json(j);
        // Lossless: re-serializing the deserialized record reproduces the
        // exact wire bytes (the property the byte-identical merge rides on).
        EXPECT_EQ(core::trial_record_to_json(back).dump(), j.dump()) << "iteration " << iter;
        EXPECT_EQ(back.kind, rec.kind);
        if (rec.kind == core::TrialRecord::Kind::Failed) {
            EXPECT_EQ(back.verdict, rec.verdict);
            EXPECT_EQ(back.detail, rec.detail);
            ASSERT_NE(back.inputs, nullptr);
            EXPECT_EQ(core::context_to_json(*back.inputs).dump(),
                      core::context_to_json(*rec.inputs).dump());
        }
    }
}

TEST(ShardWire, FuzzReportJsonRoundTrip) {
    core::FuzzReport r;
    r.transformation = "MapTiling";
    r.match_description = "map 3 in state main";
    r.verdict = core::Verdict::TransformedHang;
    r.trials = 17;
    r.uninteresting = 4;
    r.threads = 8;
    r.seconds = 1.25;
    r.trials_per_second = 13.6;
    r.detail = "transition budget exceeded";
    r.artifact_path = "/tmp/artifacts/testcase_0123456789abcdef.json";
    r.artifact_error = "cannot open /ro/x.json: Permission denied";
    r.cutout_nodes = 12;
    r.program_nodes = 345;
    r.input_volume = 64;
    r.input_volume_before_mincut = 128;
    r.mincut_improved = true;
    r.whole_program_cutout = false;

    const core::FuzzReport back = core::fuzz_report_from_json(core::fuzz_report_to_json(r));
    EXPECT_EQ(core::fuzz_report_to_json(back).dump(), core::fuzz_report_to_json(r).dump());
    EXPECT_EQ(back.verdict, r.verdict);
    EXPECT_EQ(back.trials, r.trials);
    EXPECT_EQ(back.artifact_error, r.artifact_error);
    EXPECT_DOUBLE_EQ(back.seconds, r.seconds);
}

TEST(ShardWire, FailedRecordWithoutInputsIsRejected) {
    // A failing record's inputs feed the merge-time artifact save; wire
    // data without them is malformed and must fail deserialization instead
    // of crashing the merger later.
    const common::Json j = common::Json::parse(
        R"({"kind":"failed","verdict":"semantics-changed","detail":"d"})");
    EXPECT_THROW(core::trial_record_from_json(j), common::Error);
}

TEST(ShardWire, VerdictNamesRoundTrip) {
    for (core::Verdict v :
         {core::Verdict::Pass, core::Verdict::SemanticsChanged, core::Verdict::TransformedCrash,
          core::Verdict::TransformedHang, core::Verdict::InvalidCode,
          core::Verdict::Uninteresting})
        EXPECT_EQ(core::verdict_from_name(core::verdict_name(v)), v);
    EXPECT_THROW(core::verdict_from_name("bogus"), common::Error);
}

// --- Planner ------------------------------------------------------------------

shard::JobSpec gemm_job(int trials = 8) {
    shard::JobSpec job;
    job.workload = "gemm";
    job.passes = "table2";
    job.max_trials = trials;
    job.size_max = 5;
    job.max_state_transitions = 2000;
    job.defaults = workloads::npbench_defaults();
    return job;
}

TEST(ShardPlanner, TilesBalancesAndIsDeterministic) {
    const shard::JobSpec job = gemm_job(10);
    const ir::SDFG program = shard::load_job_program(job);
    for (int count : {1, 2, 3, 4, 7, 9, 16}) {
        const auto shards = shard::plan_shards(job, program, count, /*checkpoint_interval=*/5);
        ASSERT_EQ(shards.size(), static_cast<std::size_t>(count));
        EXPECT_EQ(shards.front().unit_begin, 0);
        const std::int64_t units = shards.front().instance_count * 10;
        EXPECT_GT(units, 0);
        std::int64_t next = 0;
        std::int64_t smallest = units, largest = 0;
        for (int i = 0; i < count; ++i) {
            EXPECT_EQ(shards[i].shard_index, i);
            EXPECT_EQ(shards[i].shard_count, count);
            EXPECT_EQ(shards[i].unit_begin, next) << "contiguous partition";
            next = shards[i].unit_end;
            const std::int64_t size = shards[i].unit_end - shards[i].unit_begin;
            smallest = std::min(smallest, size);
            largest = std::max(largest, size);
        }
        EXPECT_EQ(next, units) << "exact coverage";
        EXPECT_LE(largest - smallest, 1) << "balanced to within one unit";

        const auto again = shard::plan_shards(job, program, count, 5);
        for (int i = 0; i < count; ++i)
            EXPECT_EQ(again[i].to_json().dump(), shards[i].to_json().dump()) << "deterministic";
    }
    EXPECT_THROW(shard::plan_shards(job, program, 0, 5), common::Error);
}

TEST(ShardPlanner, ManifestJsonRoundTrip) {
    const shard::JobSpec job = gemm_job();
    const ir::SDFG program = shard::load_job_program(job);
    for (const auto& m : shard::plan_shards(job, program, 3, 7)) {
        const shard::ShardManifest back = shard::ShardManifest::from_json(m.to_json());
        EXPECT_EQ(back.to_json().dump(), m.to_json().dump());
    }
}

// --- Record streams: checkpoints, torn tails, resume --------------------------

shard::ShardManifest tiny_manifest(std::int64_t begin, std::int64_t end) {
    shard::ShardManifest m;
    m.job = gemm_job();
    m.unit_begin = begin;
    m.unit_end = end;
    m.instance_count = 9;  // gemm/table2; only range checks read this here
    m.checkpoint_interval = 4;
    return m;
}

TEST(ShardRecords, WriterReaderRoundTripWithTornTail) {
    const std::string dir = scratch_dir("records_torn");
    const std::string path = dir + "/records-0.jsonl";
    const shard::ShardManifest manifest = tiny_manifest(10, 30);
    common::Rng rng(7);

    auto writer = shard::RecordWriter::create(path, manifest);
    std::vector<std::string> wire;
    for (std::int64_t u = 10; u < 18; ++u) {
        core::TrialRecord rec = random_record(rng);
        wire.push_back(core::trial_record_to_json(rec).dump());
        writer.write_record(u, rec);
    }
    writer.checkpoint(18);
    // An interrupted chunk: two records and a torn final line, no checkpoint.
    writer.write_record(18, core::TrialRecord{});
    writer.write_record(19, core::TrialRecord{});
    writer.append_raw("{\"type\":\"record\",\"unit\":2");

    const shard::ShardRecordFile file = shard::read_record_file(path);
    EXPECT_EQ(file.manifest.to_json().dump(), manifest.to_json().dump());
    EXPECT_EQ(file.checkpoint, 18);
    EXPECT_FALSE(file.complete());
    ASSERT_EQ(file.records.size(), 8u) << "post-checkpoint records dropped";
    for (std::size_t i = 0; i < file.records.size(); ++i) {
        EXPECT_EQ(file.records[i].first, 10 + static_cast<std::int64_t>(i));
        EXPECT_EQ(core::trial_record_to_json(file.records[i].second).dump(), wire[i]);
    }

    // Resume truncates the interrupted chunk and completes the range; the
    // final checkpoint seals the stream with its trailer.
    auto resumed = shard::RecordWriter::resume(path, file.resume_offset, manifest.unit_end,
                                               file.checkpoint - manifest.unit_begin);
    for (std::int64_t u = 18; u < 30; ++u) resumed.write_record(u, core::TrialRecord{});
    resumed.checkpoint(30);
    const shard::ShardRecordFile done = shard::read_record_file(path);
    EXPECT_TRUE(done.has_trailer);
    EXPECT_TRUE(done.complete());
    EXPECT_EQ(done.records.size(), 20u);
}

TEST(ShardRecords, FirstCheckpointPublishesAtomically) {
    const std::string dir = scratch_dir("records_publish");
    const std::string path = dir + "/records-0.jsonl";
    auto writer = shard::RecordWriter::create(path, tiny_manifest(0, 8));
    writer.write_record(0, core::TrialRecord{});
    writer.write_record(1, core::TrialRecord{});
    // Until the first checkpoint the stream lives at `<path>.tmp`: a reader
    // can never observe a record file without a durable checkpoint.
    EXPECT_FALSE(fs::exists(path));
    EXPECT_TRUE(fs::exists(path + ".tmp"));

    writer.checkpoint(2);
    EXPECT_TRUE(fs::exists(path));
    EXPECT_FALSE(fs::exists(path + ".tmp"));
    EXPECT_EQ(shard::read_record_file(path).checkpoint, 2);

    // Later checkpoints append in place; no .tmp reappears.
    writer.write_record(2, core::TrialRecord{});
    writer.checkpoint(3);
    EXPECT_FALSE(fs::exists(path + ".tmp"));
    EXPECT_EQ(shard::read_record_file(path).checkpoint, 3);
}

/// Runs `fn`, requires it to throw FileParseError, and requires every
/// string in `needles` to appear in the message — the "which file, which
/// line, what was expected" contract of the parse diagnostics.
template <typename Fn>
void expect_file_parse_error(Fn fn, const std::vector<std::string>& needles) {
    try {
        fn();
        FAIL() << "expected a FileParseError";
    } catch (const common::FileParseError& e) {
        const std::string msg = e.what();
        for (const std::string& needle : needles)
            EXPECT_NE(msg.find(needle), std::string::npos)
                << "message '" << msg << "' lacks '" << needle << "'";
    }
}

/// Like expect_file_parse_error, for common::IntegrityError — the
/// checksum/digest/trailer violations that must NOT read as mere parse
/// noise (they map to a distinct exit code in ffaudit).
template <typename Fn>
void expect_integrity_error(Fn fn, const std::vector<std::string>& needles) {
    try {
        fn();
        FAIL() << "expected an IntegrityError";
    } catch (const common::IntegrityError& e) {
        const std::string msg = e.what();
        for (const std::string& needle : needles)
            EXPECT_NE(msg.find(needle), std::string::npos)
                << "message '" << msg << "' lacks '" << needle << "'";
    }
}

/// Splices a valid per-line CRC32C into a hand-crafted compact JSON line
/// (must end with '}'), matching the writer's wire format.  Lets the
/// corruption tests get PAST the checksum gate to exercise the semantic
/// validation behind it (unit order, checkpoint coverage).
std::string checksummed(std::string line) {
    const std::uint32_t crc = common::crc32c(line);
    line.insert(line.size() - 1, ",\"crc\":\"" + common::crc32c_hex(crc) + "\"");
    return line + "\n";
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    return bytes;
}

void spew(const std::string& path, const std::string& bytes) {
    std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;
}

TEST(ShardRecords, ReaderRejectsCorruptStreamsNamingFileAndLine) {
    const std::string dir = scratch_dir("records_corrupt");
    const shard::ShardManifest manifest = tiny_manifest(0, 8);

    {  // no header
        const std::string path = dir + "/no_header.jsonl";
        std::ofstream(path) << "{\"type\":\"record\",\"unit\":0,\"rec\":{\"kind\":\"pass\"}}\n";
        expect_file_parse_error([&] { shard::read_record_file(path); },
                                {path, "line 1", "header"});
    }
    {  // out-of-order record appended to a published stream
        const std::string path = dir + "/out_of_order.jsonl";
        auto writer = shard::RecordWriter::create(path, manifest);
        writer.write_record(0, core::TrialRecord{});
        writer.write_record(1, core::TrialRecord{});
        writer.checkpoint(2);
        writer.append_raw(checksummed("{\"rec\":{\"kind\":\"pass\"},\"type\":\"record\",\"unit\":5}"));
        // Lines: header, two records, checkpoint, then the corrupt one.
        expect_file_parse_error([&] { shard::read_record_file(path); },
                                {path, "line 5", "unit 5", "unit 2 was expected"});
    }
    {  // checkpoint claiming units its records do not cover
        const std::string path = dir + "/bad_checkpoint.jsonl";
        auto writer = shard::RecordWriter::create(path, manifest);
        writer.write_record(0, core::TrialRecord{});
        writer.checkpoint(1);
        writer.append_raw(checksummed("{\"completed\":5,\"type\":\"checkpoint\"}"));
        expect_file_parse_error([&] { shard::read_record_file(path); },
                                {path, "line 4", "claims 5 units", "records cover 1"});
    }
    {  // malformed JSON mid-file (only a torn *final* line is forgiven)
        const std::string path = dir + "/mid_file_garbage.jsonl";
        auto writer = shard::RecordWriter::create(path, manifest);
        writer.write_record(0, core::TrialRecord{});
        writer.checkpoint(1);
        // Checksum-valid bytes whose JSON is torn: parse diagnostics still
        // fire behind the integrity gate.
        writer.append_raw(checksummed("{\"type\":\"rec}") +
                          checksummed("{\"completed\":1,\"type\":\"checkpoint\"}"));
        expect_file_parse_error([&] { shard::read_record_file(path); },
                                {path, "line 4", "column"});
    }
    EXPECT_THROW(shard::read_record_file(dir + "/missing.jsonl"), common::Error);
}

TEST(ShardRecords, IntegrityViolationsThrowNamingFileAndLine) {
    const std::string dir = scratch_dir("records_integrity");

    {  // a flipped bit anywhere in a line fails its checksum
        const std::string path = dir + "/bit_flip.jsonl";
        auto writer = shard::RecordWriter::create(path, tiny_manifest(0, 2));
        writer.write_record(0, core::TrialRecord{});
        writer.write_record(1, core::TrialRecord{});
        writer.checkpoint(2);  // final checkpoint: seals with the trailer
        std::string text = slurp(path);
        const std::size_t at = text.find("\"unit\":1");
        ASSERT_NE(at, std::string::npos);
        text[at + 7] = '2';  // record line keeps valid JSON, wrong bytes
        spew(path, text);
        expect_integrity_error([&] { shard::read_record_file(path); },
                               {path, "line 3", "checksum mismatch"});
    }
    {  // a line stripped of its checksum field is equally loud
        const std::string path = dir + "/missing_crc.jsonl";
        auto writer = shard::RecordWriter::create(path, tiny_manifest(0, 2));
        writer.write_record(0, core::TrialRecord{});
        writer.checkpoint(1);
        writer.append_raw("{\"rec\":{\"kind\":\"pass\"},\"type\":\"record\",\"unit\":1}\n");
        expect_integrity_error([&] { shard::read_record_file(path); },
                               {path, "line 4", "missing its checksum"});
    }
    {  // a dropped WHOLE line (checksum-valid stream) fails the trailer digest
        const std::string path = dir + "/dropped_line.jsonl";
        auto writer = shard::RecordWriter::create(path, tiny_manifest(0, 4));
        writer.write_record(0, core::TrialRecord{});
        writer.write_record(1, core::TrialRecord{});
        writer.checkpoint(2);
        writer.write_record(2, core::TrialRecord{});
        writer.write_record(3, core::TrialRecord{});
        writer.checkpoint(4);
        std::string text = slurp(path);
        const std::size_t at = text.find("{\"completed\":2");  // mid-stream checkpoint
        ASSERT_NE(at, std::string::npos);
        text.erase(at, text.find('\n', at) - at + 1);  // semantically invisible drop
        spew(path, text);
        expect_integrity_error([&] { shard::read_record_file(path); },
                               {path, "line 7", "digest mismatch"});
    }
    {  // bytes appended after the sealing trailer
        const std::string path = dir + "/after_trailer.jsonl";
        auto writer = shard::RecordWriter::create(path, tiny_manifest(0, 1));
        writer.write_record(0, core::TrialRecord{});
        writer.checkpoint(1);
        writer.append_raw(checksummed("{\"completed\":1,\"type\":\"checkpoint\"}"));
        expect_integrity_error([&] { shard::read_record_file(path); },
                               {path, "line 5", "after the stream trailer"});
    }
}

TEST(ShardRecords, ScanClassifiesAndRepairRestoresResumableStream) {
    const std::string dir = scratch_dir("records_fsck");
    const shard::ShardManifest manifest = tiny_manifest(0, 8);
    const std::string path = dir + "/records-0.jsonl";
    {
        auto writer = shard::RecordWriter::create(path, manifest);
        writer.write_record(0, core::TrialRecord{});
        writer.write_record(1, core::TrialRecord{});
        writer.checkpoint(2);
        writer.write_record(2, core::TrialRecord{});
        writer.write_record(3, core::TrialRecord{});
        writer.checkpoint(4);
    }
    const std::string pristine = slurp(path);

    {  // healthy, mid-run: clean, not complete, nothing to repair
        const shard::RecordScan scan = shard::scan_record_file(path);
        EXPECT_TRUE(scan.clean());
        EXPECT_FALSE(scan.file.complete());
        EXPECT_EQ(scan.file.checkpoint, 4);
    }
    {  // torn tail: classified, tolerated by the reader, trimmed by repair
        spew(path, pristine + "{\"rec\":{\"kind\":\"pa");
        const shard::RecordScan scan = shard::scan_record_file(path);
        EXPECT_FALSE(scan.clean());
        EXPECT_TRUE(scan.torn_tail);
        EXPECT_EQ(scan.torn_line, 8);
        EXPECT_EQ(scan.error_kind, shard::ScanErrorKind::None);
        EXPECT_EQ(shard::read_record_file(path).checkpoint, 4) << "reader tolerates the tear";
        shard::repair_record_file(path, scan);
        EXPECT_EQ(slurp(path), pristine) << "repair trimmed exactly the tear";
        EXPECT_TRUE(shard::scan_record_file(path).clean());
    }
    {  // bit flip in the second chunk: repair truncates back to checkpoint 2
        std::string text = pristine;
        const std::size_t at = text.find("\"unit\":3");
        ASSERT_NE(at, std::string::npos);
        text[at + 7] = '7';
        spew(path, text);
        const shard::RecordScan scan = shard::scan_record_file(path);
        EXPECT_FALSE(scan.clean());
        EXPECT_EQ(scan.error_kind, shard::ScanErrorKind::Integrity);
        EXPECT_EQ(scan.error_line, 6);
        const std::int64_t removed = shard::repair_record_file(path, scan);
        EXPECT_GT(removed, 0);
        const shard::RecordScan again = shard::scan_record_file(path);
        EXPECT_TRUE(again.clean());
        EXPECT_EQ(again.file.checkpoint, 2) << "verifiable prefix ends at the 1st checkpoint";

        // The repaired stream is a first-class resume point: finishing it
        // yields a complete, trailer-sealed, fully verified file.
        auto resumed = shard::RecordWriter::resume(
            path, again.file.resume_offset, manifest.unit_end,
            again.file.checkpoint - manifest.unit_begin);
        for (std::int64_t u = 2; u < 8; ++u) resumed.write_record(u, core::TrialRecord{});
        resumed.checkpoint(8);
        EXPECT_TRUE(shard::read_record_file(path).complete());
    }
    {  // no surviving header: repair empties the file for a fresh start
        spew(path, "{\"type\":\"hea");
        const shard::RecordScan scan = shard::scan_record_file(path);
        EXPECT_FALSE(scan.have_header);
        shard::repair_record_file(path, scan);
        EXPECT_EQ(slurp(path), "");
    }
}

TEST(ShardPlanner, ManifestFileErrorsNameFileLineAndField) {
    const std::string dir = scratch_dir("manifest_errors");
    {  // JSON syntax error: file + line + column
        const std::string path = dir + "/syntax.json";
        std::ofstream(path) << "{\n  \"job\": {,}\n}\n";
        expect_file_parse_error([&] { shard::load_manifest_file(path); }, {path, "line 2"});
    }
    {  // well-formed JSON missing a field: file + field name
        const std::string path = dir + "/missing_field.json";
        common::Json j = tiny_manifest(0, 8).to_json();
        j.as_object().erase("unit_end");
        std::ofstream(path) << j.dump();
        expect_file_parse_error([&] { shard::load_manifest_file(path); }, {path, "unit_end"});
    }
}

// --- End-to-end: shard counts, interruption, merge validation -----------------

/// The single-process reference: same canonical document `ffaudit run`
/// emits.
common::Json reference_document(const shard::JobSpec& job, const std::string& artifact_dir,
                                int threads) {
    core::FuzzConfig config = shard::job_fuzz_config(job);
    config.num_threads = threads;
    config.artifact_dir = artifact_dir;
    core::Fuzzer fuzzer(config);
    std::vector<core::FuzzReport> reports =
        fuzzer.audit(shard::load_job_program(job), shard::job_passes(job));
    return shard::canonical_report_document(std::move(reports));
}

/// Plans `count` shards, runs each to a record file (heterogeneous worker
/// counts on purpose), merges, returns the canonical document.
common::Json sharded_document(const shard::JobSpec& job, int count, const std::string& dir,
                              const std::string& artifact_dir, int checkpoint_interval,
                              bool interrupt_one = false) {
    const ir::SDFG program = shard::load_job_program(job);
    const auto manifests = shard::plan_shards(job, program, count, checkpoint_interval);
    std::vector<std::string> paths;
    for (const auto& m : manifests) {
        const std::string path = dir + "/records-" + std::to_string(m.shard_index) + ".jsonl";
        shard::RunShardOptions options;
        options.num_threads = 1 + m.shard_index % 3;
        options.trial_chunk = 1 + m.shard_index % 4;
        if (interrupt_one && m.shard_index == count / 2 && m.unit_end - m.unit_begin > 2) {
            shard::RunShardOptions interrupting = options;
            interrupting.interrupt_after_units = (m.unit_end - m.unit_begin) / 2;
            const auto first = shard::run_shard(m, path, interrupting);
            EXPECT_FALSE(first.completed);
            const auto second = shard::run_shard(m, path, options);  // resume
            EXPECT_TRUE(second.completed);
            EXPECT_GT(second.resumed_from, m.unit_begin) << "resume skipped completed chunks";
        } else {
            const auto result = shard::run_shard(m, path, options);
            EXPECT_TRUE(result.completed);
        }
        paths.push_back(path);
    }
    shard::MergeOptions merge_options;
    merge_options.artifact_dir = artifact_dir;
    shard::MergeResult merged = shard::merge_shards(paths, merge_options);
    EXPECT_EQ(merged.shard_files, static_cast<std::size_t>(count));
    return shard::canonical_report_document(std::move(merged.reports));
}

TEST(ShardEndToEnd, MergeByteIdenticalAcrossShardCounts) {
    const shard::JobSpec job = gemm_job();
    const std::string root = scratch_dir("e2e");
    const std::string ref_art = root + "/art_ref";
    fs::create_directories(ref_art);
    const common::Json reference = reference_document(job, ref_art, 1);
    const std::string ref_dump = reference.dump(2);

    // The reference audit must exercise the interesting paths: failures
    // (so artifacts exist) and a non-runnable instance (apply failed).
    const auto contents = dir_contents(ref_art);
    EXPECT_FALSE(contents.empty()) << "no reproducer artifacts — job too tame for this test";
    EXPECT_NE(ref_dump.find("invalid-code"), std::string::npos);

    for (int count : {1, 2, 4, 8}) {
        const std::string dir = root + "/shards" + std::to_string(count);
        const std::string art = root + "/art" + std::to_string(count);
        fs::create_directories(dir);
        fs::create_directories(art);
        const common::Json doc =
            sharded_document(job, count, dir, art, /*checkpoint_interval=*/5,
                             /*interrupt_one=*/count == 4);
        EXPECT_EQ(doc.dump(2), ref_dump) << "shard count " << count;
        EXPECT_EQ(dir_contents(art), contents) << "artifact bytes, shard count " << count;
    }
}

TEST(ShardEndToEnd, SdfgFileJobMergesLosslessly) {
    const std::string root = scratch_dir("sdfg_job");
    const std::string sdfg_path = root + "/chain.json";
    std::ofstream(sdfg_path) << ir::to_json(ff::testing::make_chain_sdfg()).dump(2);

    shard::JobSpec job;
    job.sdfg_path = sdfg_path;
    job.passes = "tiling";
    job.max_trials = 12;
    job.size_max = 6;
    job.defaults = {{"N", 8}};

    const common::Json reference = reference_document(job, "", 2);
    fs::create_directories(root + "/rec");
    const common::Json doc = sharded_document(job, 3, root + "/rec", "", 4);
    EXPECT_EQ(doc.dump(2), reference.dump(2));
}

TEST(ShardEndToEnd, MergeValidatesCoverageOverlapAndCompleteness) {
    const shard::JobSpec job = gemm_job(4);
    const std::string root = scratch_dir("merge_validation");
    const ir::SDFG program = shard::load_job_program(job);
    const auto manifests = shard::plan_shards(job, program, 3, 4);
    std::vector<std::string> paths;
    for (const auto& m : manifests) {
        paths.push_back(root + "/records-" + std::to_string(m.shard_index) + ".jsonl");
        shard::run_shard(m, paths.back(), {});
    }

    EXPECT_NO_THROW(shard::merge_shards(paths, {}));
    // Arrival order is irrelevant.
    EXPECT_NO_THROW(shard::merge_shards({paths[2], paths[0], paths[1]}, {}));
    // A missing shard is a coverage gap.
    EXPECT_THROW(shard::merge_shards({paths[0], paths[2]}, {}), common::Error);
    // The same shard twice is an overlap.
    EXPECT_THROW(shard::merge_shards({paths[0], paths[1], paths[2], paths[1]}, {}),
                 common::Error);
    // An interrupted, never-resumed shard refuses to merge.
    const std::string interrupted = root + "/records-interrupted.jsonl";
    shard::RunShardOptions interrupt;
    interrupt.interrupt_after_units = 1;
    shard::run_shard(manifests[1], interrupted, interrupt);
    EXPECT_THROW(shard::merge_shards({paths[0], interrupted, paths[2]}, {}), common::Error);
    // Shards of a different job (different seed) refuse to mix.
    shard::JobSpec other = job;
    other.seed = 999;
    const auto other_manifests = shard::plan_shards(other, program, 3, 4);
    const std::string other_path = root + "/records-other.jsonl";
    shard::run_shard(other_manifests[1], other_path, {});
    EXPECT_THROW(shard::merge_shards({paths[0], other_path, paths[2]}, {}), common::Error);
}

TEST(ShardEndToEnd, ResumeStartsFreshOverUnparseableFileButRefusesForeignShard) {
    const shard::JobSpec job = gemm_job(4);
    const ir::SDFG program = shard::load_job_program(job);
    const auto manifests = shard::plan_shards(job, program, 2, 4);
    const std::string root = scratch_dir("resume_edge");

    // A previous run died inside the header write: nothing is resumable,
    // and every record is recomputable, so the runner starts fresh.
    const std::string torn = root + "/records-0.jsonl";
    std::ofstream(torn) << "{\"type\":\"hea";
    const auto result = shard::run_shard(manifests[0], torn, {});
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(shard::read_record_file(torn).complete());

    // A parseable file from a different shard means a mispointed
    // --records path: refuse instead of overwriting it.
    EXPECT_THROW(shard::run_shard(manifests[1], torn, {}), common::Error);
}

TEST(ShardEndToEnd, RunShardRejectsManifestDrift) {
    const shard::JobSpec job = gemm_job(4);
    const ir::SDFG program = shard::load_job_program(job);
    auto manifests = shard::plan_shards(job, program, 2, 4);
    const std::string root = scratch_dir("drift");
    manifests[0].instance_count += 1;  // planner/runner disagreement
    EXPECT_THROW(shard::run_shard(manifests[0], root + "/r.jsonl", {}), common::Error);
}

// --- Satellite: artifact write failures surface in report + table -------------

TEST(ArtifactErrors, SurfacedInReportAndAuditTable) {
    const shard::JobSpec job = gemm_job(6);
    core::FuzzConfig config = shard::job_fuzz_config(job);
    // Parent directory does not exist, so every artifact write fails.
    config.artifact_dir = scratch_dir("art_err") + "/missing_subdir/deeper";
    core::Fuzzer fuzzer(config);
    const std::vector<core::FuzzReport> reports =
        fuzzer.audit(shard::load_job_program(job), shard::job_passes(job));

    int errors = 0;
    for (const auto& r : reports) {
        if (r.failed() && r.verdict != core::Verdict::InvalidCode) {
            // InvalidCode from a failed apply has no failing trial inputs,
            // hence no artifact attempt; every other failure attempted one.
            EXPECT_TRUE(r.artifact_path.empty());
        }
        if (!r.artifact_error.empty()) {
            ++errors;
            EXPECT_TRUE(r.artifact_path.empty()) << "path and error are mutually exclusive";
        }
    }
    ASSERT_GT(errors, 0) << "job produced no artifact attempts — test needs a failing instance";

    const auto summaries = core::summarize_audit(reports);
    int table_errors = 0;
    for (const auto& s : summaries) table_errors += s.artifact_errors;
    EXPECT_EQ(table_errors, errors);
    const std::string table = core::audit_table(summaries);
    EXPECT_NE(table.find("Artifact errors"), std::string::npos);
    // Each failing transformation's row carries its own error count (the
    // audit-wide total is split per row, so searching for it would only
    // ever match stray timing digits).
    for (const auto& s : summaries) {
        if (s.artifact_errors == 0) continue;
        std::istringstream lines(table);
        std::string line;
        bool found = false;
        while (std::getline(lines, line)) {
            if (line.find(s.transformation) != std::string::npos &&
                line.find(std::to_string(s.artifact_errors)) != std::string::npos)
                found = true;
        }
        EXPECT_TRUE(found) << "no table row shows " << s.artifact_errors
                           << " artifact error(s) for " << s.transformation;
    }
}

}  // namespace
}  // namespace ff
