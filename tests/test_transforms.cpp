#include <gtest/gtest.h>

#include "common/error.h"

#include "helpers.h"
#include "interp/interpreter.h"
#include "transforms/buffer_tiling.h"
#include "transforms/gpu_kernel_extraction.h"
#include "transforms/loop_unrolling.h"
#include "transforms/map_expansion.h"
#include "transforms/map_fusion.h"
#include "transforms/map_reduce_fusion.h"
#include "transforms/map_tiling.h"
#include "transforms/registry.h"
#include "transforms/state_assign_elimination.h"
#include "transforms/symbol_alias_promotion.h"
#include "transforms/tasklet_fusion.h"
#include "transforms/vectorization.h"
#include "transforms/write_elimination.h"
#include "workloads/matchain.h"
#include "workloads/npbench.h"

namespace ff::xform {
namespace {

using ff::testing::make_buffer;
using ff::testing::make_chain_sdfg;
using ff::testing::make_scale_sdfg;
using ff::testing::run_ok;
using ff::testing::to_vector;

interp::Context scale_inputs(int n) {
    interp::Context ctx;
    ctx.symbols["N"] = n;
    interp::Buffer x(ir::DType::F64, {n});
    for (int i = 0; i < n; ++i) x.store(i, interp::Value::from_double(0.5 * i - 1));
    ctx.buffers.emplace("x", std::move(x));
    return ctx;
}

TEST(CodeRewriting, RenameIdentifier) {
    EXPECT_EQ(rename_identifier("o = a + ab + a", "a", "z"), "o = z + ab + z");
    EXPECT_EQ(rename_identifier("o = max(a, b)", "max", "z"), "o = max(a, b)");  // call kept
    EXPECT_EQ(rename_identifier("o = a * 1e5", "e5", "z"), "o = a * 1e5");  // literal kept
    EXPECT_EQ(rename_identifier("a = a", "a", "b"), "b = b");
}

TEST(CodeRewriting, VectorizeTaskletCode) {
    const std::string v = vectorize_tasklet_code("o = a * s", 2, {"o", "a"});
    EXPECT_EQ(v, "o[0] = a[0] * s; o[1] = a[1] * s");
}

TEST(MapTilingTest, CorrectPreservesScale) {
    for (int n : {5, 8, 16, 17}) {  // both multiples and remainders of tile 8
        ir::SDFG p = make_scale_sdfg();
        const auto before = run_ok(p, scale_inputs(n));
        MapTiling tiling(8, MapTiling::Variant::Correct);
        const auto matches = tiling.find_matches(p);
        ASSERT_EQ(matches.size(), 1u);
        tiling.apply(p, matches[0]);
        EXPECT_NO_THROW(p.validate());
        const auto after = run_ok(p, scale_inputs(n));
        EXPECT_TRUE(before.buffers.at("y").bitwise_equal(after.buffers.at("y"))) << "N=" << n;
    }
}

TEST(MapTilingTest, NoRemainderVariantCrashesOnNonMultiples) {
    ir::SDFG p = make_scale_sdfg();
    MapTiling tiling(8, MapTiling::Variant::NoRemainder);
    tiling.apply(p, tiling.find_matches(p)[0]);
    interp::Interpreter interp;
    // Multiple of the tile: fine.
    auto ok_ctx = scale_inputs(16);
    EXPECT_TRUE(interp.run(p, ok_ctx).ok());
    // Non-multiple: out of bounds.
    auto bad_ctx = scale_inputs(13);
    EXPECT_EQ(interp.run(p, bad_ctx).status, interp::ExecStatus::Crash);
}

TEST(MapTilingTest, OffByOneCorruptsAccumulation) {
    // On the matrix chain's mm2 (accumulating k-loop inside), re-executed
    // iterations double-add: Fig. 2's bug.
    ir::SDFG p = workloads::build_matrix_chain();
    MapTiling buggy(4, MapTiling::Variant::OffByOne);
    const auto matches = buggy.find_matches(p);
    const Match* mm2 = nullptr;
    for (const auto& m : matches)
        if (m.description.find("mm2") != std::string::npos &&
            m.description.find("_k") == std::string::npos)
            mm2 = &m;
    ASSERT_NE(mm2, nullptr);

    auto inputs = [] {
        interp::Context ctx;
        ctx.symbols["N"] = 6;
        for (const char* name : {"A", "B", "C", "D"}) {
            interp::Buffer b(ir::DType::F64, {6, 6});
            for (int i = 0; i < 36; ++i)
                b.store(i, interp::Value::from_double(((i * 7) % 5) - 2.0));
            ctx.buffers.emplace(name, std::move(b));
        }
        return ctx;
    };
    const auto before = run_ok(p, inputs());
    ir::SDFG q = p;
    buggy.apply(q, *mm2);
    const auto after = run_ok(q, inputs());
    EXPECT_TRUE(interp::compare_buffers(before.buffers.at("R"), after.buffers.at("R"), 1e-5)
                    .has_value());
}

TEST(VectorizationTest, DivisibleSizesPreserved) {
    ir::SDFG p = make_scale_sdfg();
    Vectorization vec(4);
    const auto matches = vec.find_matches(p);
    ASSERT_EQ(matches.size(), 1u);
    vec.apply(p, matches[0]);
    EXPECT_NO_THROW(p.validate());
    const auto before = run_ok(make_scale_sdfg(), scale_inputs(8));
    const auto after = run_ok(p, scale_inputs(8));
    EXPECT_TRUE(before.buffers.at("y").bitwise_equal(after.buffers.at("y")));
}

TEST(VectorizationTest, NonDivisibleSizeCrashes) {
    // The Table 2 `"` class: correctness depends on the input size.
    ir::SDFG p = make_scale_sdfg();
    Vectorization vec(4);
    vec.apply(p, vec.find_matches(p)[0]);
    interp::Interpreter interp;
    auto ctx = scale_inputs(10);
    EXPECT_EQ(interp.run(p, ctx).status, interp::ExecStatus::Crash);
}

TEST(VectorizationTest, ScalarBroadcastInputSkipsLanes) {
    // The MHA scale pattern: tensor input lane-indexed, scalar broadcast.
    ir::SDFG p("scale2");
    p.add_symbol("N");
    p.add_array("x", ir::DType::F64, {sym::symb("N")});
    p.add_scalar("s", ir::DType::F64);
    p.add_array("y", ir::DType::F64, {sym::symb("N")});
    ir::State& st = p.state(p.add_state("main", true));
    workloads::ew_binary(p, st, st.add_access("x"), st.add_access("s"), "y", "o = a * b");
    Vectorization vec(4);
    const auto matches = vec.find_matches(p);
    ASSERT_EQ(matches.size(), 1u);
    vec.apply(p, matches[0]);
    EXPECT_NO_THROW(p.validate());

    interp::Context ctx;
    ctx.symbols["N"] = 4;
    ctx.buffers.emplace("x", make_buffer({1, 2, 3, 4}));
    interp::Buffer s(ir::DType::F64, {});
    s.store(0, interp::Value::from_double(3));
    ctx.buffers.emplace("s", std::move(s));
    const auto r = run_ok(p, ctx);
    EXPECT_EQ(to_vector(r.buffers.at("y")), (std::vector<double>{3, 6, 9, 12}));
}

TEST(TaskletFusionTest, CorrectFusesIsolatedTemporary) {
    ir::SDFG p = workloads::build_npbench_kernel("scalar_pipeline");
    TaskletFusion correct(TaskletFusion::Variant::Correct);
    TaskletFusion buggy(TaskletFusion::Variant::IgnoreDownstreamReads);
    // The bug variant matches strictly more instances (it skips the
    // downstream-read check on t1).
    EXPECT_GT(buggy.find_matches(p).size(), correct.find_matches(p).size());
}

TEST(TaskletFusionTest, BugRemovesWriteReadLater) {
    ir::SDFG p = workloads::build_npbench_kernel("scalar_pipeline");
    TaskletFusion buggy(TaskletFusion::Variant::IgnoreDownstreamReads);
    const auto matches = buggy.find_matches(p);
    const Match* on_t1 = nullptr;
    for (const auto& m : matches)
        if (m.description.find("'t1'") != std::string::npos) on_t1 = &m;
    ASSERT_NE(on_t1, nullptr);

    auto inputs = [] {
        interp::Context ctx;
        ctx.symbols["N"] = 3;
        interp::Buffer alpha(ir::DType::F64, {});
        alpha.store(0, interp::Value::from_double(2));
        ctx.buffers.emplace("alpha", std::move(alpha));
        ctx.buffers.emplace("x", make_buffer({1, 2, 3}));
        return ctx;
    };
    const auto before = run_ok(p, inputs());
    ir::SDFG q = p;
    buggy.apply(q, *on_t1);
    EXPECT_NO_THROW(q.validate());
    const auto after = run_ok(q, inputs());
    // y2 depends on the eliminated t1 write: changed.
    EXPECT_TRUE(interp::compare_buffers(before.buffers.at("y2"), after.buffers.at("y2"), 1e-5)
                    .has_value());
    // y does not: unchanged.
    EXPECT_FALSE(interp::compare_buffers(before.buffers.at("y"), after.buffers.at("y"), 1e-5)
                     .has_value());
}

TEST(WriteEliminationTest, CorrectRedirectsReaders) {
    ir::SDFG p = workloads::build_npbench_kernel("copy_pipeline");
    WriteElimination correct(WriteElimination::Variant::Correct);
    const auto matches = correct.find_matches(p);
    ASSERT_GE(matches.size(), 1u);
    auto inputs = [] {
        interp::Context ctx;
        ctx.symbols["N"] = 4;
        ctx.buffers.emplace("src", make_buffer({1, 2, 3, 4}));
        return ctx;
    };
    const auto before = run_ok(p, inputs());
    correct.apply(p, matches[0]);
    EXPECT_NO_THROW(p.validate());
    const auto after = run_ok(p, inputs());
    EXPECT_TRUE(before.buffers.at("dst").bitwise_equal(after.buffers.at("dst")));
}

TEST(MapExpansionTest, CorrectSplitsAndPreserves) {
    ir::SDFG p("mm");
    p.add_symbol("N");
    p.add_array("x", ir::DType::F64, {sym::symb("N"), sym::symb("N")});
    p.add_array("y", ir::DType::F64, {sym::symb("N"), sym::symb("N")});
    {
        ir::State& st = p.state(p.add_state("main", true));
        workloads::ew_unary(p, st, st.add_access("x"), "y", "o = i + 1.0");
    }
    MapExpansion correct(MapExpansion::Variant::Correct);
    const auto matches = correct.find_matches(p);
    ASSERT_EQ(matches.size(), 1u);

    auto inputs = [] {
        interp::Context ctx;
        ctx.symbols["N"] = 3;
        interp::Buffer x(ir::DType::F64, {3, 3});
        for (int i = 0; i < 9; ++i) x.store(i, interp::Value::from_double(i));
        ctx.buffers.emplace("x", std::move(x));
        return ctx;
    };
    const auto before = run_ok(p, inputs());
    ir::SDFG q = p;
    correct.apply(q, matches[0]);
    EXPECT_NO_THROW(q.validate());
    const auto after = run_ok(q, inputs());
    EXPECT_TRUE(before.buffers.at("y").bitwise_equal(after.buffers.at("y")));

    // The buggy variant produces a graph validation rejects.
    ir::SDFG r = p;
    MapExpansion buggy(MapExpansion::Variant::DanglingExit);
    buggy.apply(r, buggy.find_matches(r)[0]);
    EXPECT_THROW(r.validate(), common::ValidationError);
}

TEST(MapReduceFusionTest, CorrectMatchesReduction) {
    ir::SDFG p = workloads::build_npbench_kernel("l2norm");
    MapReduceFusion correct(MapReduceFusion::Variant::Correct);
    const auto matches = correct.find_matches(p);
    ASSERT_EQ(matches.size(), 1u);

    auto inputs = [] {
        interp::Context ctx;
        ctx.symbols["N"] = 4;
        ctx.buffers.emplace("x", make_buffer({1, -2, 3, -4}));
        return ctx;
    };
    const auto before = run_ok(p, inputs());
    ir::SDFG q = p;
    correct.apply(q, matches[0]);
    EXPECT_NO_THROW(q.validate());
    const auto after = run_ok(q, inputs());
    EXPECT_NEAR(after.buffers.at("norm2").load_double(0), 30.0, 1e-12);
    EXPECT_NEAR(before.buffers.at("norm2").load_double(0),
                after.buffers.at("norm2").load_double(0), 1e-12);

    // Buggy variant leaves a stale access node on a deleted container.
    ir::SDFG r = p;
    MapReduceFusion buggy(MapReduceFusion::Variant::StaleAccessNode);
    buggy.apply(r, buggy.find_matches(r)[0]);
    EXPECT_THROW(r.validate(), common::ValidationError);
}

TEST(BufferTilingTest, CorrectPreservesChain) {
    for (int n : {7, 8, 16, 19}) {
        ir::SDFG p = make_chain_sdfg("o = i * i", "o = i + 2.0");
        BufferTiling correct(4, BufferTiling::Variant::Correct);
        const auto matches = correct.find_matches(p);
        ASSERT_EQ(matches.size(), 1u) << "N=" << n;
        auto inputs = [n] {
            interp::Context ctx;
            ctx.symbols["N"] = n;
            interp::Buffer x(ir::DType::F64, {n});
            for (int i = 0; i < n; ++i) x.store(i, interp::Value::from_double(i - 2.5));
            ctx.buffers.emplace("x", std::move(x));
            return ctx;
        };
        const auto before = run_ok(p, inputs());
        correct.apply(p, matches[0]);
        EXPECT_NO_THROW(p.validate());
        const auto after = run_ok(p, inputs());
        EXPECT_TRUE(before.buffers.at("y").bitwise_equal(after.buffers.at("y"))) << "N=" << n;
        // The intermediate container was replaced by a tile-sized buffer.
        EXPECT_FALSE(p.has_container("T"));
    }
}

TEST(BufferTilingTest, ReversedOffsetChangesSemantics) {
    ir::SDFG p = make_chain_sdfg("o = i * i", "o = i + 2.0");
    BufferTiling buggy(4, BufferTiling::Variant::ReversedOffset);
    buggy.apply(p, buggy.find_matches(p)[0]);
    EXPECT_NO_THROW(p.validate());
    interp::Context ctx;
    ctx.symbols["N"] = 8;
    ctx.buffers.emplace("x", make_buffer({1, 2, 3, 4, 5, 6, 7, 8}));
    const auto after = run_ok(p, ctx);
    // y[0] should be 1*1+2=3; reversed tile gives x[3]^2+2 = 18.
    EXPECT_DOUBLE_EQ(after.buffers.at("y").load_double(0), 18.0);
}

TEST(LoopUnrollingTest, CorrectHandlesNegativeSteps) {
    ir::SDFG p = workloads::build_npbench_kernel("unroll_candidates");
    LoopUnrolling correct(LoopUnrolling::Variant::Correct);
    const auto matches = correct.find_matches(p);
    ASSERT_EQ(matches.size(), 2u);  // ascending + descending

    auto inputs = [] {
        interp::Context ctx;
        ctx.symbols["N"] = 2;
        interp::Buffer x(ir::DType::F64, {8, 2});
        for (int i = 0; i < 16; ++i) x.store(i, interp::Value::from_double(i));
        ctx.buffers.emplace("x", std::move(x));
        return ctx;
    };
    const auto before = run_ok(p, inputs());
    for (const auto& m : matches) {
        // Re-find after each apply: node ids change.
        const auto fresh = correct.find_matches(p);
        ASSERT_FALSE(fresh.empty());
        (void)m;
        correct.apply(p, fresh[0]);
    }
    EXPECT_NO_THROW(p.validate());
    const auto after = run_ok(p, inputs());
    EXPECT_TRUE(before.buffers.at("y").bitwise_equal(after.buffers.at("y")));
}

TEST(LoopUnrollingTest, BugDropsIterationsOnDescendingLoops) {
    ir::SDFG p = workloads::build_npbench_kernel("unroll_candidates");
    LoopUnrolling buggy(LoopUnrolling::Variant::PositiveStepFormula);
    const auto matches = buggy.find_matches(p);
    const Match* descending = nullptr;
    const Match* ascending = nullptr;
    for (const auto& m : matches) {
        if (m.description.find("countdown") != std::string::npos) descending = &m;
        else ascending = &m;
    }
    ASSERT_NE(descending, nullptr);
    ASSERT_NE(ascending, nullptr);

    auto inputs = [] {
        interp::Context ctx;
        ctx.symbols["N"] = 2;
        interp::Buffer x(ir::DType::F64, {8, 2});
        for (int i = 0; i < 16; ++i) x.store(i, interp::Value::from_double(1.0));
        ctx.buffers.emplace("x", std::move(x));
        return ctx;
    };
    const auto before = run_ok(p, inputs());
    // Ascending loop: the buggy formula is still correct.
    {
        ir::SDFG q = p;
        buggy.apply(q, *ascending);
        const auto after = run_ok(q, inputs());
        EXPECT_TRUE(before.buffers.at("y").bitwise_equal(after.buffers.at("y")));
    }
    // Descending loop: only 2 of 4 instances created.
    {
        ir::SDFG q = p;
        buggy.apply(q, *descending);
        const auto after = run_ok(q, inputs());
        EXPECT_TRUE(interp::compare_buffers(before.buffers.at("y"), after.buffers.at("y"), 1e-5)
                        .has_value());
    }
}

TEST(StateAssignEliminationTest, CorrectOnlyRemovesGloballyDead) {
    ir::SDFG p = workloads::build_npbench_kernel("alias_stages");
    StateAssignElimination correct(StateAssignElimination::Variant::Correct);
    const auto matches = correct.find_matches(p);
    ASSERT_EQ(matches.size(), 1u);  // only 'dead'
    EXPECT_NE(matches[0].description.find("dead"), std::string::npos);
    correct.apply(p, matches[0]);
    EXPECT_NO_THROW(p.validate());
}

TEST(StateAssignEliminationTest, BugRemovesLoopCounterUpdate) {
    ir::SDFG p = workloads::build_npbench_kernel("jacobi_1d");
    StateAssignElimination buggy(StateAssignElimination::Variant::NextStateOnly);
    const auto matches = buggy.find_matches(p);
    // `t` is not used in any state's memlets: both its initialization and
    // its increment look dead to the buggy next-state-only check.
    ASSERT_GE(matches.size(), 2u);
    interp::ExecConfig cfg;
    cfg.max_state_transitions = 64;
    for (const auto& m : matches) {
        ir::SDFG q = p;
        buggy.apply(q, m);
        interp::Interpreter interp(cfg);
        interp::Context ctx;
        ctx.symbols = {{"N", 4}, {"TSTEPS", 2}};
        ctx.buffers.emplace("A", make_buffer({1, 2, 3, 4}));
        // Removing the init crashes on the unbound symbol; removing the
        // increment hangs.  Either way the program no longer terminates OK.
        EXPECT_NE(interp.run(q, ctx).status, interp::ExecStatus::Ok) << m.description;
    }
}

TEST(SymbolAliasPromotionTest, CorrectSubstitutesEverywhere) {
    ir::SDFG p = workloads::build_npbench_kernel("alias_stages");
    SymbolAliasPromotion correct(SymbolAliasPromotion::Variant::Correct);
    const auto matches = correct.find_matches(p);
    ASSERT_EQ(matches.size(), 1u);
    auto inputs = [] {
        interp::Context ctx;
        ctx.symbols["N"] = 3;
        ctx.buffers.emplace("x", make_buffer({1, 2, 3}));
        return ctx;
    };
    const auto before = run_ok(p, inputs());
    correct.apply(p, matches[0]);
    EXPECT_NO_THROW(p.validate());
    EXPECT_FALSE(p.has_symbol("M2"));
    const auto after = run_ok(p, inputs());
    EXPECT_TRUE(before.buffers.at("y").bitwise_equal(after.buffers.at("y")));
}

TEST(SymbolAliasPromotionTest, BugLeavesDanglingUses) {
    ir::SDFG p = workloads::build_npbench_kernel("alias_stages");
    SymbolAliasPromotion buggy(SymbolAliasPromotion::Variant::InterstateOnly);
    buggy.apply(p, buggy.find_matches(p)[0]);
    // The map range still uses M2, which no longer exists and is never
    // assigned: runtime failure.
    interp::Interpreter interp;
    interp::Context ctx;
    ctx.symbols["N"] = 3;
    ctx.buffers.emplace("x", make_buffer({1, 2, 3}));
    EXPECT_EQ(interp.run(p, ctx).status, interp::ExecStatus::Crash);
}

TEST(MapFusionTest, FusesChainAndPreserves) {
    ir::SDFG p = make_chain_sdfg("o = i * 2.0", "o = i + 1.0");
    MapFusion fusion;
    const auto matches = fusion.find_matches(p);
    ASSERT_EQ(matches.size(), 1u);
    auto inputs = [] {
        interp::Context ctx;
        ctx.symbols["N"] = 5;
        ctx.buffers.emplace("x", make_buffer({1, 2, 3, 4, 5}));
        return ctx;
    };
    const auto before = run_ok(p, inputs());
    fusion.apply(p, matches[0]);
    EXPECT_NO_THROW(p.validate());
    const auto after = run_ok(p, inputs());
    EXPECT_TRUE(before.buffers.at("y").bitwise_equal(after.buffers.at("y")));
    // Only one map remains.
    int entries = 0;
    const ir::State& st = p.state(p.start_state());
    for (ir::NodeId n : st.graph().nodes())
        entries += st.graph().node(n).kind == ir::NodeKind::MapEntry ? 1 : 0;
    EXPECT_EQ(entries, 1);
}

TEST(GpuExtractionTest, CorrectStagesOutputs) {
    ir::SDFG p = make_scale_sdfg();
    GpuKernelExtraction correct(GpuKernelExtraction::Variant::Correct);
    const auto matches = correct.find_matches(p);
    ASSERT_EQ(matches.size(), 1u);
    const auto before = run_ok(p, scale_inputs(6));
    ir::SDFG q = p;
    correct.apply(q, matches[0]);
    EXPECT_NO_THROW(q.validate());
    const auto after = run_ok(q, scale_inputs(6));
    EXPECT_TRUE(before.buffers.at("y").bitwise_equal(after.buffers.at("y")));
}

TEST(GpuExtractionTest, BugLeaksGarbageOnPartialWrites) {
    // Map writes only y[0 : N/2-1]; whole-container copy-back corrupts the
    // rest (Fig. 7).
    ir::SDFG p("partial");
    p.add_symbol("N");
    const sym::ExprPtr n = sym::symb("N");
    p.add_array("x", ir::DType::F64, {n});
    p.add_array("y", ir::DType::F64, {n});
    {
        ir::State& st = p.state(p.add_state("main", true));
        const sym::ExprPtr i = sym::symb("i");
        auto [entry, exit] = st.add_map("half", {"i"},
                                        {ir::Range::span(sym::cst(0), sym::floordiv(n, sym::cst(2)) - 1)});
        const ir::NodeId t = st.add_tasklet("half", "o = a * 2.0");
        const ir::NodeId xin = st.add_access("x");
        const ir::NodeId yout = st.add_access("y");
        const ir::Subset half{{ir::Range::span(sym::cst(0), sym::floordiv(n, sym::cst(2)) - 1)}};
        st.add_edge(xin, "", entry, "", ir::Memlet("x", half));
        st.add_edge(entry, "", t, "a", ir::Memlet("x", ir::Subset{{ir::Range::index(i)}}));
        st.add_edge(t, "o", exit, "", ir::Memlet("y", ir::Subset{{ir::Range::index(i)}}));
        st.add_edge(exit, "", yout, "", ir::Memlet("y", half));
    }
    auto inputs = [] {
        interp::Context ctx;
        ctx.symbols["N"] = 6;
        ctx.buffers.emplace("x", make_buffer({1, 2, 3, 4, 5, 6}));
        return ctx;
    };
    const auto before = run_ok(p, inputs());
    EXPECT_EQ(to_vector(before.buffers.at("y")), (std::vector<double>{2, 4, 6, 0, 0, 0}));

    // Correct variant: still fine.
    {
        ir::SDFG q = p;
        GpuKernelExtraction correct(GpuKernelExtraction::Variant::Correct);
        correct.apply(q, correct.find_matches(q)[0]);
        const auto after = run_ok(q, inputs());
        EXPECT_TRUE(before.buffers.at("y").bitwise_equal(after.buffers.at("y")));
    }
    // Bug variant: garbage lands in y[3..5].
    {
        ir::SDFG q = p;
        GpuKernelExtraction buggy(GpuKernelExtraction::Variant::NoOutputCopyIn);
        buggy.apply(q, buggy.find_matches(q)[0]);
        EXPECT_NO_THROW(q.validate());
        const auto after = run_ok(q, inputs());
        const auto y = to_vector(after.buffers.at("y"));
        EXPECT_DOUBLE_EQ(y[0], 2);
        EXPECT_GE(y[3], 1.0e6);  // deterministic garbage
    }
}

TEST(Registry, BuiltinSetMatchesTable2Inventory) {
    const auto buggy = builtin_transformations({.table2_bugs = true});
    const auto clean = builtin_transformations({.table2_bugs = false});
    ASSERT_EQ(buggy.size(), clean.size());
    int planted = 0;
    for (const auto& t : buggy)
        if (t->name().find("[bug:") != std::string::npos) ++planted;
    // Six passes ship bug variants; Vectorization is input-dependent by
    // construction (no [bug:] tag).
    EXPECT_EQ(planted, 6);
    for (const auto& t : clean) EXPECT_EQ(t->name().find("[bug:"), std::string::npos);
    EXPECT_EQ(cloudsc_transformations(true).size(), 3u);
}

}  // namespace
}  // namespace ff::xform
