#include <gtest/gtest.h>

#include "common/error.h"
#include "helpers.h"
#include "ir/sdfg.h"
#include "ir/serialize.h"
#include "symbolic/parser.h"
#include "workloads/builders.h"

namespace ff::ir {
namespace {

using common::ValidationError;

TEST(Subset, VolumeAndConcretize) {
    const sym::ExprPtr n = sym::symb("N");
    Subset s{{Range::full(n), Range::span(sym::cst(2), sym::cst(5))}};
    EXPECT_EQ(s.volume()->evaluate({{"N", 7}}), 7 * 4);
    const auto conc = s.concretize({{"N", 7}});
    EXPECT_EQ(conc[0], (ConcreteRange{0, 6, 1}));
    EXPECT_EQ(conc[1], (ConcreteRange{2, 5, 1}));
}

TEST(Subset, ConcreteRangeSizeWithNegativeStep) {
    EXPECT_EQ(concrete_range_size({4, 1, -1}), 4);
    EXPECT_EQ(concrete_range_size({1, 4, -1}), 0);
    EXPECT_EQ(concrete_range_size({0, 9, 2}), 5);
    EXPECT_EQ(concrete_range_size({3, 3, 1}), 1);
    EXPECT_EQ(concrete_range_size({5, 2, 1}), 0);
    EXPECT_THROW((void)concrete_range_size(ConcreteRange{0, 1, 0}), common::Error);
}

TEST(Subset, OverlapIsPerDimension) {
    // [0..3] x [0..3]  vs  [5..9] x [0..3]: disjoint in dim 0.
    EXPECT_FALSE(concrete_subsets_overlap({{0, 3, 1}, {0, 3, 1}}, {{5, 9, 1}, {0, 3, 1}}));
    EXPECT_TRUE(concrete_subsets_overlap({{0, 3, 1}, {0, 3, 1}}, {{3, 9, 1}, {2, 2, 1}}));
    // Stride-blind (conservative): even/odd interleave reports overlap.
    EXPECT_TRUE(concrete_subsets_overlap({{0, 8, 2}}, {{1, 9, 2}}));
    // Rank confusion: conservative true.
    EXPECT_TRUE(concrete_subsets_overlap({{0, 1, 1}}, {{0, 1, 1}, {0, 1, 1}}));
}

TEST(Subset, BoundingUnion) {
    const Subset a{{Range::span(sym::cst(0), sym::cst(3))}};
    const Subset b{{Range::span(sym::cst(2), sym::cst(9))}};
    const Subset u = Subset::bounding_union(a, b);
    const auto conc = u.concretize({});
    EXPECT_EQ(conc[0], (ConcreteRange{0, 9, 1}));
}

TEST(DataDesc, TotalSizeAndBytes) {
    DataDesc d;
    d.name = "A";
    d.dtype = DType::F32;
    d.shape = {sym::symb("N"), sym::symb("N")};
    EXPECT_EQ(d.total_size()->evaluate({{"N", 4}}), 16);
    EXPECT_EQ(d.total_bytes()->evaluate({{"N", 4}}), 64);
    EXPECT_EQ(d.concrete_shape({{"N", 3}}), (std::vector<std::int64_t>{3, 3}));
}

TEST(State, ScopeStructure) {
    SDFG sdfg("scopes");
    sdfg.add_symbol("N");
    sdfg.add_array("x", DType::F64, {sym::symb("N")});
    State& st = sdfg.state(sdfg.add_state("main", true));
    auto [outer_e, outer_x] = st.add_map("outer", {"i"}, {Range::full(sym::symb("N"))});
    auto [inner_e, inner_x] = st.add_map("inner", {"j"}, {Range::full(sym::symb("N"))});
    const NodeId t = st.add_tasklet("body", "o = 1.0");
    st.add_edge(outer_e, "", inner_e, "", Memlet("x", Subset{{Range::full(sym::symb("N"))}}));
    st.add_edge(inner_e, "", t, "", Memlet("x", Subset{{Range::index(sym::symb("j"))}}));
    st.add_edge(t, "o", inner_x, "", Memlet("x", Subset{{Range::index(sym::symb("j"))}}));
    st.add_edge(inner_x, "", outer_x, "", Memlet("x", Subset{{Range::full(sym::symb("N"))}}));

    EXPECT_EQ(st.map_exit_of(outer_e), outer_x);
    EXPECT_EQ(st.map_entry_of(inner_x), inner_e);
    EXPECT_EQ(st.scope_nodes(outer_e), (std::set<NodeId>{inner_e, t, inner_x}));
    EXPECT_EQ(st.scope_nodes(inner_e), (std::set<NodeId>{t}));
    EXPECT_EQ(st.parent_scope_of(t), inner_e);
    EXPECT_EQ(st.parent_scope_of(inner_e), outer_e);
    EXPECT_EQ(st.parent_scope_of(outer_e), graph::kInvalidNode);
}

TEST(Sdfg, ContainerManagement) {
    SDFG sdfg("c");
    sdfg.add_symbol("N");
    sdfg.add_array("A", DType::F64, {sym::symb("N")});
    EXPECT_TRUE(sdfg.has_container("A"));
    EXPECT_THROW(sdfg.add_array("A", DType::F64, {}), ValidationError);
    EXPECT_THROW(sdfg.container("nope"), ValidationError);
    EXPECT_EQ(sdfg.fresh_container_name("A"), "A_0");
    EXPECT_EQ(sdfg.fresh_container_name("B"), "B");
}

TEST(Sdfg, UsedFreeSymbolsExcludesMapParams) {
    const ir::SDFG sdfg = ff::testing::make_scale_sdfg();
    const auto used = sdfg.used_free_symbols();
    EXPECT_TRUE(used.count("N"));
    EXPECT_FALSE(used.count("ei"));  // map parameter, bound
}

TEST(Validation, AcceptsWellFormed) {
    EXPECT_NO_THROW(ff::testing::make_scale_sdfg().validate());
    EXPECT_NO_THROW(ff::testing::make_chain_sdfg().validate());
}

TEST(Validation, RejectsUnknownContainer) {
    SDFG sdfg("bad");
    State& st = sdfg.state(sdfg.add_state("main", true));
    st.add_access("ghost");
    EXPECT_THROW(sdfg.validate(), ValidationError);
}

TEST(Validation, RejectsUnknownMemletSymbol) {
    SDFG sdfg("bad");
    sdfg.add_symbol("N");
    sdfg.add_array("x", DType::F64, {sym::symb("N")});
    State& st = sdfg.state(sdfg.add_state("main", true));
    const NodeId a = st.add_access("x");
    const NodeId t = st.add_tasklet("t", "o = i");
    st.add_edge(a, "", t, "i", Memlet("x", Subset{{Range::index(sym::symb("mystery"))}}));
    st.add_edge(t, "o", st.add_access("x"), "", Memlet("x", Subset{{Range::index(sym::cst(0))}}));
    EXPECT_THROW(sdfg.validate(), ValidationError);
}

TEST(Validation, RejectsUnconnectedTaskletInput) {
    SDFG sdfg("bad");
    sdfg.add_symbol("N");
    sdfg.add_array("x", DType::F64, {sym::symb("N")});
    State& st = sdfg.state(sdfg.add_state("main", true));
    const NodeId t = st.add_tasklet("t", "o = a + b");
    const NodeId a = st.add_access("x");
    st.add_edge(a, "", t, "a", Memlet("x", Subset{{Range::index(sym::cst(0))}}));
    st.add_edge(t, "o", st.add_access("x"), "", Memlet("x", Subset{{Range::index(sym::cst(0))}}));
    EXPECT_THROW(sdfg.validate(), ValidationError);  // 'b' unconnected
}

TEST(Validation, RejectsShapeWithUnknownSymbol) {
    SDFG sdfg("bad");
    sdfg.add_array("x", DType::F64, {sym::symb("M")});  // M not declared
    sdfg.add_state("main", true);
    EXPECT_THROW(sdfg.validate(), ValidationError);
}

TEST(Validation, RejectsDimensionalityMismatch) {
    SDFG sdfg("bad");
    sdfg.add_symbol("N");
    sdfg.add_array("x", DType::F64, {sym::symb("N"), sym::symb("N")});
    State& st = sdfg.state(sdfg.add_state("main", true));
    const NodeId a = st.add_access("x");
    const NodeId t = st.add_tasklet("t", "o = i");
    st.add_edge(a, "", t, "i", Memlet("x", Subset{{Range::index(sym::cst(0))}}));  // 1-D on 2-D
    st.add_edge(t, "o", st.add_access("x"), "",
                Memlet("x", Subset{{Range::index(sym::cst(0)), Range::index(sym::cst(0))}}));
    EXPECT_THROW(sdfg.validate(), ValidationError);
}

TEST(Serialize, ScaleRoundTrip) {
    const SDFG original = ff::testing::make_scale_sdfg();
    const SDFG restored = sdfg_from_json(to_json(original));
    EXPECT_NO_THROW(restored.validate());

    // Executing both yields identical results.
    interp::Context ctx;
    ctx.symbols["N"] = 5;
    ctx.buffers.emplace("x", ff::testing::make_buffer({1, 2, 3, 4, 5}));
    const auto r1 = ff::testing::run_ok(original, ctx);
    const auto r2 = ff::testing::run_ok(restored, ctx);
    EXPECT_TRUE(r1.buffers.at("y").bitwise_equal(r2.buffers.at("y")));
}

TEST(Serialize, InterstateRoundTrip) {
    SDFG sdfg("loop");
    sdfg.add_symbol("t");
    sdfg.add_symbol("T");
    sdfg.add_symbol("N");
    sdfg.add_array("x", DType::F64, {sym::symb("N")});
    const StateId s1 = sdfg.add_state("a", true);
    const StateId s2 = sdfg.add_state("b");
    InterstateEdge e;
    e.condition = sym::parse_bool("t < T and t >= 0");
    e.assignments.emplace_back("t", sym::parse_expr("t + 1"));
    sdfg.add_interstate_edge(s1, s2, e);

    const SDFG restored = sdfg_from_json(to_json(sdfg));
    ASSERT_EQ(restored.cfg().edges().size(), 1u);
    const auto& edge = restored.cfg().edge(restored.cfg().edges()[0]).data;
    EXPECT_TRUE(edge.condition->equals(*e.condition));
    ASSERT_EQ(edge.assignments.size(), 1u);
    EXPECT_EQ(edge.assignments[0].first, "t");
}

TEST(Serialize, PreservesKindsAndAttrs) {
    SDFG sdfg("kinds");
    sdfg.add_symbol("N");
    sdfg.add_array("x", DType::F32, {sym::symb("N")}, true, Storage::Device);
    State& st = sdfg.state(sdfg.add_state("main", true));
    const NodeId lib = st.add_library(LibraryKind::Softmax, "sm");
    const NodeId comm = st.add_comm(CommKind::Broadcast, 2, "bc");
    auto [me, mx] = st.add_map("m", {"i"}, {Range::full(sym::symb("N"))}, Schedule::GPU);
    st.graph().node(me).attrs["tiled"] = "8";
    (void)lib;
    (void)comm;
    (void)mx;

    const SDFG restored = sdfg_from_json(to_json(sdfg));
    const State& rst = restored.state(restored.start_state());
    int libs = 0, comms = 0, gpu_maps = 0;
    for (NodeId n : rst.graph().nodes()) {
        const auto& node = rst.graph().node(n);
        if (node.kind == NodeKind::Library && node.lib == LibraryKind::Softmax) ++libs;
        if (node.kind == NodeKind::Comm && node.comm == CommKind::Broadcast &&
            node.comm_root == 2)
            ++comms;
        if (node.kind == NodeKind::MapEntry && node.schedule == Schedule::GPU &&
            node.attrs.count("tiled"))
            ++gpu_maps;
    }
    EXPECT_EQ(libs, 1);
    EXPECT_EQ(comms, 1);
    EXPECT_EQ(gpu_maps, 1);
    EXPECT_EQ(restored.container("x").storage, Storage::Device);
    EXPECT_TRUE(restored.container("x").transient);
    EXPECT_EQ(restored.container("x").dtype, DType::F32);
}

}  // namespace
}  // namespace ff::ir
