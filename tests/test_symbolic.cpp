#include <gtest/gtest.h>

#include "common/error.h"
#include "symbolic/expr.h"
#include "symbolic/parser.h"

namespace ff::sym {
namespace {

TEST(SymbolicExpr, ConstantFolding) {
    EXPECT_EQ((cst(2) + cst(3))->constant_value(), 5);
    EXPECT_EQ((cst(2) * cst(3))->constant_value(), 6);
    EXPECT_EQ((cst(7) - cst(10))->constant_value(), -3);
    EXPECT_EQ(floordiv(cst(7), cst(2))->constant_value(), 3);
    EXPECT_EQ(mod(cst(7), cst(2))->constant_value(), 1);
    EXPECT_EQ(min(cst(4), cst(9))->constant_value(), 4);
    EXPECT_EQ(max(cst(4), cst(9))->constant_value(), 9);
}

TEST(SymbolicExpr, FloorDivisionSemantics) {
    // Floor, not truncation (agrees with Python / SymPy).
    EXPECT_EQ(floordiv_i64(-7, 2), -4);
    EXPECT_EQ(floordiv_i64(7, -2), -4);
    EXPECT_EQ(floordiv_i64(-7, -2), 3);
    EXPECT_EQ(floormod_i64(-7, 2), 1);
    EXPECT_EQ(floormod_i64(7, -2), -1);
    EXPECT_THROW(floordiv_i64(1, 0), common::Error);
}

TEST(SymbolicExpr, IdentityElements) {
    const ExprPtr n = symb("N");
    EXPECT_TRUE((n + 0)->equals(*n));
    EXPECT_TRUE((n * 1)->equals(*n));
    EXPECT_TRUE((n * 0)->is_constant());
    EXPECT_EQ((n * 0)->constant_value(), 0);
    EXPECT_TRUE((n - 0)->equals(*n));
    EXPECT_TRUE(floordiv(n, cst(1))->equals(*n));
    EXPECT_EQ(mod(n, cst(1))->constant_value(), 0);
    EXPECT_TRUE((n - n)->is_constant());
    EXPECT_TRUE(min(n, n)->equals(*n));
}

TEST(SymbolicExpr, ChainedConstantFolding) {
    const ExprPtr n = symb("N");
    // (N - 1) + 1 simplifies back to N — relied upon by container
    // minimization (bbox.end + 1 == original extent).
    EXPECT_TRUE(((n - 1) + 1)->equals(*n));
    EXPECT_TRUE(((n + 2) + 3)->equals(*(n + 5)));
    EXPECT_TRUE(((n + 5) - 2)->equals(*(n + 3)));
}

TEST(SymbolicExpr, Evaluate) {
    const ExprPtr e = symb("N") * symb("N") + 4;
    EXPECT_EQ(e->evaluate({{"N", 5}}), 29);
    EXPECT_THROW(e->evaluate({}), common::UnboundSymbolError);
}

TEST(SymbolicExpr, EvaluateMinMax) {
    const ExprPtr e = min(symb("a") + 1, symb("b"));
    EXPECT_EQ(e->evaluate({{"a", 3}, {"b", 10}}), 4);
    EXPECT_EQ(e->evaluate({{"a", 30}, {"b", 10}}), 10);
}

TEST(SymbolicExpr, Substitute) {
    const ExprPtr e = symb("i") + symb("N");
    const ExprPtr s = e->substitute({{"i", cst(3)}});
    EXPECT_EQ(s->evaluate({{"N", 7}}), 10);
    // Simultaneous substitution: swap a and b.
    const ExprPtr swap = (symb("a") - symb("b"))
                             ->substitute({{"a", symb("b")}, {"b", symb("a")}});
    EXPECT_EQ(swap->evaluate({{"a", 1}, {"b", 9}}), 8);
}

TEST(SymbolicExpr, FreeSymbols) {
    const ExprPtr e = min(symb("N"), symb("M")) * symb("N") + 2;
    const auto syms = e->free_symbols();
    EXPECT_EQ(syms.size(), 2u);
    EXPECT_TRUE(syms.count("N"));
    EXPECT_TRUE(syms.count("M"));
}

TEST(SymbolicExpr, ToStringRoundTrip) {
    const ExprPtr exprs[] = {
        symb("N") * symb("N") + 4,
        (symb("N") - 1) * cst(3),
        min(symb("i") + 7, symb("N") - 1),
        floordiv(symb("N"), cst(2)) - symb("M"),
        mod(symb("i"), symb("N")),
    };
    const Bindings bindings{{"N", 13}, {"M", 4}, {"i", 29}};
    for (const auto& e : exprs) {
        const ExprPtr reparsed = parse_expr(e->to_string());
        EXPECT_EQ(e->evaluate(bindings), reparsed->evaluate(bindings)) << e->to_string();
    }
}

TEST(SymbolicParser, Precedence) {
    EXPECT_EQ(parse_expr("2 + 3 * 4")->constant_value(), 14);
    EXPECT_EQ(parse_expr("(2 + 3) * 4")->constant_value(), 20);
    EXPECT_EQ(parse_expr("10 - 4 - 3")->constant_value(), 3);   // left assoc
    EXPECT_EQ(parse_expr("20 / 2 / 5")->constant_value(), 2);   // left assoc
    EXPECT_EQ(parse_expr("-3 + 5")->constant_value(), 2);
    EXPECT_EQ(parse_expr("2 * -3")->constant_value(), -6);
}

TEST(SymbolicParser, MinMaxCalls) {
    EXPECT_EQ(parse_expr("min(3, max(5, 1))")->constant_value(), 3);
    EXPECT_EQ(parse_expr("max(N, 0)")->evaluate({{"N", -5}}), 0);
}

TEST(SymbolicParser, Errors) {
    EXPECT_THROW(parse_expr(""), common::ParseError);
    EXPECT_THROW(parse_expr("1 +"), common::ParseError);
    EXPECT_THROW(parse_expr("foo(1)"), common::ParseError);
    EXPECT_THROW(parse_expr("(1"), common::ParseError);
    EXPECT_THROW(parse_expr("1 2"), common::ParseError);
}

TEST(SymbolicBool, CompareAndLogic) {
    const BoolExprPtr c = parse_bool("i < N and not (j >= M or i == 0)");
    EXPECT_TRUE(c->evaluate({{"i", 1}, {"j", 2}, {"N", 5}, {"M", 10}}));
    EXPECT_FALSE(c->evaluate({{"i", 0}, {"j", 2}, {"N", 5}, {"M", 10}}));
    EXPECT_FALSE(c->evaluate({{"i", 1}, {"j", 20}, {"N", 5}, {"M", 10}}));
    EXPECT_FALSE(c->evaluate({{"i", 7}, {"j", 2}, {"N", 5}, {"M", 10}}));
}

TEST(SymbolicBool, ConstantFolding) {
    EXPECT_EQ(parse_bool("1 < 2")->kind(), BoolExpr::Kind::Constant);
    EXPECT_TRUE(parse_bool("1 < 2")->constant_value());
    EXPECT_FALSE(parse_bool("2 <= 1")->constant_value());
    // Short-circuit simplification with constants.
    EXPECT_TRUE(parse_bool("true or i < 0")->constant_value());
    EXPECT_FALSE(parse_bool("false and i < 0")->constant_value());
}

TEST(SymbolicBool, ParenthesizedArithmeticVsBool) {
    // '(' can open either a boolean group or an arithmetic subexpression.
    EXPECT_TRUE(parse_bool("(i + 1) < 3")->evaluate({{"i", 1}}));
    EXPECT_TRUE(parse_bool("(i < 3) and (2 < 4)")->evaluate({{"i", 1}}));
}

TEST(SymbolicBool, SubstituteAndRoundTrip) {
    const BoolExprPtr c = parse_bool("i < N");
    const BoolExprPtr s = c->substitute({{"N", cst(3)}});
    EXPECT_TRUE(s->evaluate({{"i", 2}}));
    EXPECT_FALSE(s->evaluate({{"i", 3}}));
    const BoolExprPtr reparsed = parse_bool(c->to_string());
    EXPECT_TRUE(reparsed->equals(*c));
}

/// Property sweep: floor-div/mod invariant a == b*(a/b) + a%b.
class FloorDivProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FloorDivProperty, DivModInvariant) {
    const auto [a, b] = GetParam();
    ASSERT_NE(b, 0);
    EXPECT_EQ(static_cast<std::int64_t>(a),
              static_cast<std::int64_t>(b) * floordiv_i64(a, b) + floormod_i64(a, b));
    // Modulo takes the sign of the divisor.
    const std::int64_t m = floormod_i64(a, b);
    if (b > 0) EXPECT_TRUE(m >= 0 && m < b);
    else EXPECT_TRUE(m <= 0 && m > b);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FloorDivProperty,
                         ::testing::Values(std::pair{7, 2}, std::pair{-7, 2}, std::pair{7, -2},
                                           std::pair{-7, -2}, std::pair{0, 3}, std::pair{5, 5},
                                           std::pair{-12, 5}, std::pair{12, -5},
                                           std::pair{1, 7}, std::pair{-1, 7}));

}  // namespace
}  // namespace ff::sym
