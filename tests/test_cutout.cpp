#include <gtest/gtest.h>

#include "common/error.h"

#include "core/cutout.h"
#include "core/changeset.h"
#include "core/side_effects.h"
#include "helpers.h"
#include "transforms/map_tiling.h"
#include "transforms/vectorization.h"
#include "workloads/matchain.h"
#include "workloads/mha.h"
#include "workloads/npbench.h"

namespace ff::core {
namespace {

using ff::testing::make_buffer;
using ff::testing::make_chain_sdfg;
using ff::testing::run_ok;

/// Change set for the map labelled `label` in a single-state program.
xform::ChangeSet delta_for_map(const ir::SDFG& p, const std::string& label) {
    xform::ChangeSet delta;
    for (ir::StateId sid : p.states()) {
        const ir::State& st = p.state(sid);
        for (ir::NodeId n : st.graph().nodes()) {
            const auto& node = st.graph().node(n);
            if (node.kind == ir::NodeKind::MapEntry && node.label == label) delta.add(sid, n);
        }
    }
    return delta;
}

TEST(Cutout, ChainSecondMap) {
    const ir::SDFG p = make_chain_sdfg("o = i + 1.0", "o = i * 3.0");
    CutoutOptions opts;
    opts.defaults = {{"N", 8}};
    // Find the second map (producing y).
    xform::ChangeSet delta;
    const ir::StateId sid = p.start_state();
    for (ir::NodeId n : p.state(sid).graph().nodes()) {
        const auto& node = p.state(sid).graph().node(n);
        if (node.kind == ir::NodeKind::MapEntry && node.label == "ew_y") delta.add(sid, n);
    }
    ASSERT_EQ(delta.nodes.size(), 1u);

    const Cutout cutout = extract_cutout(p, delta, opts);
    EXPECT_FALSE(cutout.whole_program);
    EXPECT_NO_THROW(cutout.program.validate());

    // Input configuration: T (written upstream, read here).  x is not even
    // part of the cutout.
    EXPECT_EQ(cutout.input_config, (std::set<std::string>{"T"}));
    EXPECT_EQ(cutout.system_state, (std::set<std::string>{"y"}));
    EXPECT_TRUE(cutout.program.has_container("T"));
    EXPECT_TRUE(cutout.program.has_container("y"));
    EXPECT_FALSE(cutout.program.has_container("x"));
    // Exposed as fuzzable inputs / compared outputs.
    EXPECT_FALSE(cutout.program.container("T").transient);
    EXPECT_FALSE(cutout.program.container("y").transient);

    // The cutout is a runnable stand-alone program.
    interp::Context ctx;
    ctx.symbols["N"] = 4;
    ctx.buffers.emplace("T", make_buffer({1, 2, 3, 4}));
    const auto r = run_ok(cutout.program, ctx);
    EXPECT_EQ(ff::testing::to_vector(r.buffers.at("y")), (std::vector<double>{3, 6, 9, 12}));
}

TEST(Cutout, SystemStateIncludesTransientReadDownstream) {
    // Cutout around the FIRST map of the chain: T is transient but read by
    // the second map, so it must be in the system state (Sec. 3.1).
    const ir::SDFG p = make_chain_sdfg();
    CutoutOptions opts;
    opts.defaults = {{"N", 8}};
    const Cutout cutout = extract_cutout(p, delta_for_map(p, "ew_T"), opts);
    EXPECT_TRUE(cutout.system_state.count("T"));
    EXPECT_EQ(cutout.input_config, (std::set<std::string>{"x"}));
}

TEST(Cutout, MatrixChainMm2MatchesPaperExample) {
    // Fig. 2/3: the cutout around mm2 has inputs {U, C, V(init)} and system
    // state {V}.
    const ir::SDFG p = workloads::build_matrix_chain();
    CutoutOptions opts;
    opts.defaults = {{"N", 6}};
    const Cutout cutout = extract_cutout(p, delta_for_map(p, "mm2"), opts);
    EXPECT_FALSE(cutout.whole_program);
    EXPECT_TRUE(cutout.input_config.count("U"));  // written by mm1 upstream
    EXPECT_TRUE(cutout.input_config.count("C"));  // external
    EXPECT_EQ(cutout.system_state, (std::set<std::string>{"V"}));
    EXPECT_FALSE(cutout.program.has_container("A"));
    EXPECT_FALSE(cutout.program.has_container("R"));
    // Much smaller than the program (c << p).
    EXPECT_LT(cutout.program.state(cutout.program.start_state()).graph().node_count(),
              p.state(p.start_state()).graph().node_count() / 2);
}

TEST(Cutout, ControlFlowChangePromotesToWholeProgram) {
    const ir::SDFG p = workloads::build_npbench_kernel("alias_stages");
    xform::ChangeSet delta;
    delta.control_flow_states.insert(p.start_state());
    const Cutout cutout = extract_cutout(p, delta, {});
    EXPECT_TRUE(cutout.whole_program);
    EXPECT_EQ(cutout.program.states().size(), p.states().size());
    // Non-transient classification.
    EXPECT_TRUE(cutout.input_config.count("x"));
    EXPECT_TRUE(cutout.system_state.count("y"));
}

TEST(Cutout, ContainerMinimization) {
    // Map reads x[0:3] of a size-N container: the cutout only needs 4
    // elements (Sec. 3, step 3).
    ir::SDFG p("mini");
    p.add_symbol("N");
    p.add_array("x", ir::DType::F64, {sym::symb("N")});
    p.add_array("y", ir::DType::F64, {sym::cst(4)});
    {
        ir::State& st = p.state(p.add_state("main", true));
        const sym::ExprPtr i = sym::symb("i");
        auto [entry, exit] = st.add_map("head", {"i"},
                                        {ir::Range::span(sym::cst(0), sym::cst(3))});
        const ir::NodeId t = st.add_tasklet("head", "o = a");
        const ir::NodeId xin = st.add_access("x");
        const ir::NodeId yout = st.add_access("y");
        const ir::Subset head{{ir::Range::span(sym::cst(0), sym::cst(3))}};
        st.add_edge(xin, "", entry, "", ir::Memlet("x", head));
        st.add_edge(entry, "", t, "a", ir::Memlet("x", ir::Subset{{ir::Range::index(i)}}));
        st.add_edge(t, "o", exit, "", ir::Memlet("y", ir::Subset{{ir::Range::index(i)}}));
        st.add_edge(exit, "", yout, "", ir::Memlet("y", head));
    }
    xform::ChangeSet delta = delta_for_map(p, "head");
    CutoutOptions opts;
    opts.defaults = {{"N", 100}};
    const Cutout minimized = extract_cutout(p, delta, opts);
    EXPECT_EQ(minimized.program.container("x").total_size()->evaluate({}), 4);
    opts.minimize_containers = false;
    const Cutout unminimized = extract_cutout(p, delta, opts);
    EXPECT_EQ(unminimized.program.container("x").total_size()->evaluate({{"N", 100}}), 100);
}

TEST(Cutout, RemapMatchCarriesPatternNodes) {
    ir::SDFG p = ff::testing::make_scale_sdfg();
    xform::Vectorization vec(4);
    const auto matches = vec.find_matches(p);
    ASSERT_EQ(matches.size(), 1u);
    const xform::ChangeSet delta = vec.affected_nodes(p, matches[0]);
    const Cutout cutout = extract_cutout(p, delta, {});
    const xform::Match remapped = cutout.remap_match(matches[0]);
    // Applying through the remapped match works on the cutout copy.
    ir::SDFG transformed = cutout.program;
    EXPECT_NO_THROW(vec.apply(transformed, remapped));
    EXPECT_NO_THROW(transformed.validate());
}

TEST(SideEffects, OverlapRespectsSubranges) {
    // Writes to x[0:3]; a downstream read of x[8:9] does NOT put x in the
    // system state (disjoint sub-regions, Table 1 "Sub-region" column).
    ir::SDFG p("ranges");
    p.add_symbol("N");
    p.add_array("x", ir::DType::F64, {sym::symb("N")}, /*transient=*/true);
    p.add_array("src", ir::DType::F64, {sym::cst(4)});
    p.add_array("lo", ir::DType::F64, {sym::cst(4)});
    p.add_array("hi", ir::DType::F64, {sym::cst(2)});
    ir::State& st = p.state(p.add_state("main", true));
    const sym::ExprPtr i = sym::symb("i");
    // Writer map: x[0:3] = src[i].
    auto [we, wx] = st.add_map("writer", {"i"}, {ir::Range::span(sym::cst(0), sym::cst(3))});
    const ir::NodeId wt = st.add_tasklet("writer", "o = a");
    const ir::NodeId src = st.add_access("src");
    const ir::NodeId xmid = st.add_access("x");
    st.add_edge(src, "", we, "", ir::Memlet("src", ir::Subset{{ir::Range::span(sym::cst(0), sym::cst(3))}}));
    st.add_edge(we, "", wt, "a", ir::Memlet("src", ir::Subset{{ir::Range::index(i)}}));
    st.add_edge(wt, "o", wx, "", ir::Memlet("x", ir::Subset{{ir::Range::index(i)}}));
    st.add_edge(wx, "", xmid, "", ir::Memlet("x", ir::Subset{{ir::Range::span(sym::cst(0), sym::cst(3))}}));
    // Reader of the disjoint tail: lo? reads x[8:9].
    auto [re, rx] = st.add_map("tail_reader", {"i"}, {ir::Range::span(sym::cst(0), sym::cst(1))});
    const ir::NodeId rt = st.add_tasklet("tail_reader", "o = a");
    const ir::NodeId hi = st.add_access("hi");
    st.add_edge(xmid, "", re, "", ir::Memlet("x", ir::Subset{{ir::Range::span(sym::cst(8), sym::cst(9))}}));
    st.add_edge(re, "", rt, "a", ir::Memlet("x", ir::Subset{{ir::Range::index(i + 8)}}));
    st.add_edge(rt, "o", rx, "", ir::Memlet("hi", ir::Subset{{ir::Range::index(i)}}));
    st.add_edge(rx, "", hi, "", ir::Memlet("hi", ir::Subset{{ir::Range::span(sym::cst(0), sym::cst(1))}}));

    const std::set<ir::NodeId> closure{we, wt, wx};
    const std::set<ir::NodeId> boundary{src, xmid};
    const SideEffects fx =
        analyze_side_effects(p, p.start_state(), closure, boundary, {{"N", 16}});
    EXPECT_FALSE(fx.system_state.count("x"));  // disjoint read: no side effect
    EXPECT_TRUE(fx.input_config.count("src"));
}

TEST(SideEffects, ExternalWritesAlwaysSystemState) {
    const ir::SDFG p = ff::testing::make_scale_sdfg();
    const ir::State& st = p.state(p.start_state());
    std::set<ir::NodeId> closure, boundary;
    for (ir::NodeId n : st.graph().nodes()) {
        const auto& node = st.graph().node(n);
        if (node.kind == ir::NodeKind::Access) boundary.insert(n);
        else closure.insert(n);
    }
    const SideEffects fx = analyze_side_effects(p, p.start_state(), closure, boundary,
                                                {{"N", 8}});
    EXPECT_TRUE(fx.system_state.count("y"));   // non-transient write
    EXPECT_TRUE(fx.input_config.count("x"));   // non-transient read
}

TEST(BlackBoxDiff, FindsTilingChange) {
    // Black-box change isolation (Sec. 3, step 2): diff G_p vs G_T(p).
    ir::SDFG before = ff::testing::make_scale_sdfg();
    ir::SDFG after = before;
    xform::MapTiling tiling(4);
    tiling.apply(after, tiling.find_matches(after)[0]);
    const xform::ChangeSet delta = diff_changeset(before, after);
    ASSERT_FALSE(delta.nodes.empty());
    bool found_map = false;
    for (const auto& ref : delta.nodes)
        found_map |= before.state(ref.state).graph().node(ref.node).kind ==
                     ir::NodeKind::MapEntry;
    EXPECT_TRUE(found_map);
    EXPECT_TRUE(delta.control_flow_states.empty());
}

TEST(BlackBoxDiff, IdenticalProgramsYieldEmptyDelta) {
    const ir::SDFG p = ff::testing::make_scale_sdfg();
    const xform::ChangeSet delta = diff_changeset(p, p);
    EXPECT_TRUE(delta.nodes.empty());
    EXPECT_TRUE(delta.control_flow_states.empty());
}

TEST(BlackBoxDiff, InterstateChangeFlagsControlFlow) {
    ir::SDFG before = workloads::build_npbench_kernel("alias_stages");
    ir::SDFG after = before;
    after.cfg().edge(after.cfg().edges()[0]).data.assignments.clear();
    const xform::ChangeSet delta = diff_changeset(before, after);
    EXPECT_FALSE(delta.control_flow_states.empty());
}

}  // namespace
}  // namespace ff::core
