// The feedback subsystem (src/feedback + core/guided): coverage bitmap and
// hex wire form, corpus files and their integrity checks, sampler-config
// validation, and the clause-10 determinism bar — feedback-enabled reports
// and corpora are byte-identical across execution tiers, worker-thread
// counts, and shard counts (including an interrupted-and-resumed shard).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "core/fuzzer.h"
#include "core/report.h"
#include "core/sampler.h"
#include "core/testcase_io.h"
#include "feedback/corpus.h"
#include "feedback/coverage.h"
#include "helpers.h"
#include "shard/manifest.h"
#include "shard/merger.h"
#include "shard/runner.h"
#include "workloads/npbench.h"

namespace ff {
namespace {

namespace fs = std::filesystem;

std::string scratch_dir(const std::string& name) {
    const std::string path = ::testing::TempDir() + "ff_feedback_" + name;
    fs::remove_all(path);
    fs::create_directories(path);
    return path;
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

// --- Sampler-config validation ------------------------------------------------

TEST(FeedbackSampler, RejectsEmptyIntervalsAtConstruction) {
    core::SamplerConfig bad_float;
    bad_float.float_lo = 1.0;
    bad_float.float_hi = -1.0;
    EXPECT_THROW(core::InputSampler{bad_float}, common::ValidationError);

    core::SamplerConfig bad_int;
    bad_int.int_lo = 8;
    bad_int.int_hi = -8;
    EXPECT_THROW(core::InputSampler{bad_int}, common::ValidationError);

    core::SamplerConfig bad_size;
    bad_size.size_max = 0;
    EXPECT_THROW(core::InputSampler{bad_size}, common::ValidationError);

    // Degenerate one-point intervals are valid.
    core::SamplerConfig point;
    point.float_lo = point.float_hi = 0.5;
    point.int_lo = point.int_hi = 3;
    point.size_max = 1;
    EXPECT_NO_THROW(core::InputSampler{point});
}

// --- Coverage map + hex wire form ---------------------------------------------

TEST(FeedbackCoverage, MapMarkAbsorbAndHexRoundTripProperty) {
    common::Rng rng(0xFEEDBAC);
    for (int iter = 0; iter < 50; ++iter) {
        const std::uint32_t bits = 1 + static_cast<std::uint32_t>(rng() % 200);
        feedback::CoverageMap map;
        map.reset(bits);
        std::int64_t expected = 0;
        for (int m = 0; m < 40; ++m) {
            const std::uint32_t id = static_cast<std::uint32_t>(rng() % bits);
            if (!map.test(id)) ++expected;
            map.mark(id);
            EXPECT_TRUE(map.test(id));
        }
        EXPECT_EQ(map.count(), expected);

        const std::vector<std::uint64_t> words = map.trimmed_words();
        EXPECT_EQ(feedback::cov_popcount(words), expected);
        const std::string hex = feedback::cov_words_to_hex(words);
        EXPECT_EQ(feedback::cov_words_from_hex(hex), words) << "iteration " << iter;

        // Absorbing a map into itself never grows it; absorbing into an
        // empty map grows iff any bit is set.
        feedback::CoverageMap cum;
        cum.reset(bits);
        EXPECT_EQ(cum.absorb(words), expected > 0);
        EXPECT_FALSE(cum.absorb(words));
        EXPECT_EQ(cum.count(), expected);
    }
    EXPECT_THROW(feedback::cov_words_from_hex("xyz"), common::ParseError);
}

TEST(FeedbackCoverage, AtlasIsDeterministicAndClassesPartitionPoints) {
    const ir::SDFG gemm = workloads::build_npbench_kernel("gemm");
    const feedback::CovAtlas a = feedback::CovAtlas::build(gemm);
    const feedback::CovAtlas b = feedback::CovAtlas::build(gemm);
    EXPECT_GT(a.pair_count(), 0u);
    EXPECT_EQ(a.pair_count(), b.pair_count());

    EXPECT_EQ(feedback::region_class(0), 0);
    EXPECT_EQ(feedback::region_class(-3), 0);
    EXPECT_EQ(feedback::region_class(1), 1);
    EXPECT_EQ(feedback::region_class(2), 2);
    EXPECT_EQ(feedback::region_class(16), 2);
    EXPECT_EQ(feedback::region_class(17), 3);
    EXPECT_EQ(feedback::region_class(1 << 20), 3);
}

// --- Corpus entries and files -------------------------------------------------

std::vector<feedback::CorpusEntry> sample_entries() {
    std::vector<feedback::CorpusEntry> entries;
    for (int i = 0; i < 6; ++i) {
        feedback::CorpusEntry e;
        e.instance = i / 3;
        e.trial = (i % 3) * 7;
        e.cov_hex = feedback::cov_words_to_hex({0x10ull << i, 0x3});
        common::Json inputs = common::Json::object();
        common::Json symbols = common::Json::object();
        symbols["N"] = 4 + i;
        inputs["symbols"] = std::move(symbols);
        inputs["buffers"] = common::Json::object();
        e.inputs = std::move(inputs);
        entries.push_back(std::move(e));
    }
    return entries;
}

TEST(FeedbackCorpus, MergeIsCanonicalAndIdempotent) {
    const std::vector<feedback::CorpusEntry> entries = sample_entries();
    // Shuffled + duplicated input collapses to the canonical order.
    std::vector<feedback::CorpusEntry> noisy;
    for (int rep = 0; rep < 2; ++rep)
        for (std::size_t i = entries.size(); i-- > 0;) noisy.push_back(entries[i]);
    const auto merged = feedback::merge_corpus_entries(noisy);
    ASSERT_EQ(merged.size(), entries.size());
    for (std::size_t i = 0; i < merged.size(); ++i) {
        EXPECT_EQ(merged[i].instance, entries[i].instance);
        EXPECT_EQ(merged[i].trial, entries[i].trial);
        EXPECT_EQ(merged[i].cov_hex, entries[i].cov_hex);
    }
    const auto again = feedback::merge_corpus_entries(merged);
    ASSERT_EQ(again.size(), merged.size());

    // The rolling digest is order-sensitive (it parameterizes generation
    // scheduling) but deterministic.
    std::uint32_t d1 = 0, d2 = 0;
    for (const auto& e : merged) d1 = feedback::corpus_digest_fold(d1, e);
    for (const auto& e : merged) d2 = feedback::corpus_digest_fold(d2, e);
    EXPECT_EQ(d1, d2);
    EXPECT_NE(d1, 0u);
}

TEST(FeedbackCorpus, FileRoundTripAndCorruptionRejected) {
    const std::string dir = scratch_dir("corpus_file");
    const std::string path = dir + "/corpus.jsonl";
    common::Json job = common::Json::object();
    job["workload"] = std::string("gemm");
    const std::vector<feedback::CorpusEntry> entries = sample_entries();
    feedback::write_corpus_file(path, job, entries);

    const feedback::CorpusFile file = feedback::read_corpus_file(path);
    ASSERT_EQ(file.entries.size(), entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        EXPECT_EQ(file.entries[i].trial, entries[i].trial);
        EXPECT_EQ(file.entries[i].cov_hex, entries[i].cov_hex);
        EXPECT_EQ(file.entries[i].inputs.dump(), entries[i].inputs.dump());
    }

    // Writing the parsed entries again reproduces the exact bytes.
    const std::string bytes = read_file(path);
    feedback::write_corpus_file(path + ".again", job, file.entries);
    EXPECT_EQ(read_file(path + ".again"), bytes);

    // A single flipped byte anywhere in an entry line is rejected.
    std::string corrupt = bytes;
    const std::size_t pos = corrupt.find("\"cov\"");
    ASSERT_NE(pos, std::string::npos);
    corrupt[pos + 1] ^= 0x01;
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << corrupt;
    }
    EXPECT_THROW(feedback::read_corpus_file(path), common::Error);

    // Truncation (lost trailer) is rejected too.
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << bytes.substr(0, bytes.size() - 2);
    }
    EXPECT_THROW(feedback::read_corpus_file(path), common::Error);
}

// --- Report plumbing ----------------------------------------------------------

core::FuzzConfig tiling_config(int trials, bool feedback, bool coverage = false) {
    core::FuzzConfig config;
    config.max_trials = trials;
    config.sampler.size_max = 5;
    config.cutout.defaults = workloads::npbench_defaults();
    config.diff.exec.max_state_transitions = 2000;
    config.feedback = feedback;
    config.coverage = coverage;
    config.generation_size = 4;
    return config;
}

std::vector<xform::TransformationPtr> tiling_passes() {
    shard::JobSpec job;
    job.workload = "gemm";
    job.passes = "tiling";
    return shard::job_passes(job);
}

TEST(FeedbackReport, CoverageCountersFlowIntoReportsAndSummary) {
    const ir::SDFG gemm = workloads::build_npbench_kernel("gemm");

    core::Fuzzer off(tiling_config(6, /*feedback=*/false));
    const auto plain = off.audit(gemm, tiling_passes());
    ASSERT_FALSE(plain.empty());
    for (const auto& r : plain) {
        EXPECT_EQ(r.pairs_total, 0);
        EXPECT_EQ(r.pairs_hit, 0);
        EXPECT_EQ(r.corpus_size, 0);
        // Feedback-off reports keep their historical wire bytes: no
        // coverage keys at all.
        EXPECT_FALSE(core::fuzz_report_to_json(r).contains("pairs_total"));
    }

    // Coverage-only: counters but no corpus.
    core::Fuzzer cov(tiling_config(6, /*feedback=*/false, /*coverage=*/true));
    const auto instrumented = cov.audit(gemm, tiling_passes());
    std::int64_t hit = 0;
    for (const auto& r : instrumented) {
        EXPECT_GT(r.pairs_total, 0);
        EXPECT_LE(r.pairs_hit, r.pairs_total);
        EXPECT_EQ(r.corpus_size, 0);
        hit += r.pairs_hit;
        EXPECT_TRUE(core::fuzz_report_to_json(r).contains("pairs_total"));
    }
    EXPECT_GT(hit, 0);

    // Feedback: corpus entries appear, and the audit table shows the
    // coverage columns.
    core::Fuzzer fb(tiling_config(6, /*feedback=*/true));
    const auto guided = fb.audit(gemm, tiling_passes());
    std::int64_t corpus = 0;
    for (const auto& r : guided) corpus += r.corpus_size;
    EXPECT_GT(corpus, 0);
    const std::string table = core::audit_table(core::summarize_audit(guided));
    EXPECT_NE(table.find("Pairs hit"), std::string::npos);
    EXPECT_NE(table.find("Corpus"), std::string::npos);
    EXPECT_NE(table.find("/"), std::string::npos) << "hit/total cell";
}

// --- Determinism: tiers, threads, shards --------------------------------------

/// Canonical (report document, corpus dump) of one in-process feedback
/// audit under the given execution tier and worker count.
std::pair<std::string, std::string> guided_fingerprint(bool compiled, bool specialize,
                                                       bool batch, int threads) {
    core::FuzzConfig config = tiling_config(8, /*feedback=*/true);
    config.num_threads = threads;
    config.trial_chunk = 1 + threads % 3;
    config.diff.exec.use_compiled_tasklets = compiled;
    config.diff.exec.specialize = specialize;
    config.diff.exec.batch_segments = batch;
    core::Fuzzer fuzzer(config);
    const ir::SDFG gemm = workloads::build_npbench_kernel("gemm");
    core::PreparedAudit audit = fuzzer.prepare(gemm, tiling_passes());
    audit.run_range(0, audit.unit_count());
    std::vector<core::FuzzReport> reports = audit.finalize();
    std::string corpus;
    for (const auto& e : audit.corpus())
        corpus += feedback::corpus_entry_to_json(e).dump() + "\n";
    return {shard::canonical_report_document(std::move(reports)).dump(2), corpus};
}

TEST(FeedbackDeterminism, ReportsAndCorporaInvariantAcrossTiersAndThreads) {
    // Reference AST engine, single worker.
    const auto reference = guided_fingerprint(false, false, false, 1);
    EXPECT_NE(reference.second, "") << "corpus empty — job too tame for this test";
    // Generic compiled, per-point specialized, and batched tiers; worker
    // counts 1 and 8 (the acceptance bar's thread set).
    const std::tuple<bool, bool, bool> tiers[] = {
        {true, false, false}, {true, true, false}, {true, true, true}};
    for (const auto& [compiled, specialize, batch] : tiers) {
        for (int threads : {1, 8}) {
            const auto got = guided_fingerprint(compiled, specialize, batch, threads);
            EXPECT_EQ(got.first, reference.first)
                << "compiled=" << compiled << " specialize=" << specialize
                << " batch=" << batch << " threads=" << threads;
            EXPECT_EQ(got.second, reference.second)
                << "compiled=" << compiled << " specialize=" << specialize
                << " batch=" << batch << " threads=" << threads;
        }
    }
}

shard::JobSpec feedback_job(int trials = 8) {
    shard::JobSpec job;
    job.workload = "gemm";
    job.passes = "tiling";
    job.max_trials = trials;
    job.size_max = 5;
    job.max_state_transitions = 2000;
    job.feedback = job.coverage = true;
    job.generation_size = 4;
    job.defaults = workloads::npbench_defaults();
    return job;
}

TEST(FeedbackDeterminism, ShardMergedCorpusMatchesSingleProcessByteForByte) {
    const shard::JobSpec job = feedback_job();
    const std::string root = scratch_dir("shards");

    // Single-process reference: report document + corpus file bytes.
    core::FuzzConfig config = shard::job_fuzz_config(job);
    core::Fuzzer fuzzer(config);
    core::PreparedAudit reference = fuzzer.prepare(shard::load_job_program(job),
                                                   shard::job_passes(job));
    reference.run_range(0, reference.unit_count());
    const std::string ref_doc =
        shard::canonical_report_document(reference.finalize()).dump(2);
    const std::string ref_corpus_path = root + "/corpus-ref.jsonl";
    feedback::write_corpus_file(ref_corpus_path, job.to_json(), reference.corpus());
    const std::string ref_corpus = read_file(ref_corpus_path);
    EXPECT_NE(ref_corpus.find("\"cov\""), std::string::npos) << "corpus has entries";

    const ir::SDFG program = shard::load_job_program(job);
    for (int count : {1, 2, 4, 8}) {
        const std::string dir = root + "/n" + std::to_string(count);
        fs::create_directories(dir);
        const auto manifests = shard::plan_shards(job, program, count, /*checkpoint=*/3);
        std::vector<std::string> paths;
        for (const auto& m : manifests) {
            const std::string path = dir + "/records-" + std::to_string(m.shard_index) + ".jsonl";
            shard::RunShardOptions options;
            options.num_threads = 1 + m.shard_index % 2;
            if (count == 4 && m.shard_index == 2 && m.unit_end - m.unit_begin > 2) {
                // Interrupt one shard mid-run and resume it.
                shard::RunShardOptions interrupting = options;
                interrupting.interrupt_after_units = (m.unit_end - m.unit_begin) / 2;
                EXPECT_FALSE(shard::run_shard(m, path, interrupting).completed);
                EXPECT_TRUE(shard::run_shard(m, path, options).completed);
            } else {
                EXPECT_TRUE(shard::run_shard(m, path, options).completed);
            }
            paths.push_back(path);
        }
        shard::MergeResult merged = shard::merge_shards(paths);
        EXPECT_EQ(shard::canonical_report_document(std::move(merged.reports)).dump(2), ref_doc)
            << count << " shard(s)";
        const std::string corpus_path = dir + "/corpus.jsonl";
        feedback::write_corpus_file(corpus_path, merged.job.to_json(), merged.corpus);
        EXPECT_EQ(read_file(corpus_path), ref_corpus) << count << " shard(s)";
    }
}

TEST(FeedbackDeterminism, JobSpecKeyAndManifestCoverFeedbackKnobs) {
    shard::JobSpec plain;
    plain.workload = "gemm";
    shard::JobSpec guided = plain;
    guided.feedback = guided.coverage = true;
    guided.generation_size = 10;
    EXPECT_NE(plain.key(), guided.key()) << "feedback changes trial inputs, so it is job identity";
    // Feedback-off specs keep their historical wire bytes.
    EXPECT_FALSE(plain.to_json().contains("feedback"));
    EXPECT_FALSE(plain.to_json().contains("coverage"));

    const shard::JobSpec back = shard::JobSpec::from_json(guided.to_json());
    EXPECT_TRUE(back.feedback);
    EXPECT_TRUE(back.coverage);
    EXPECT_EQ(back.generation_size, 10);
    EXPECT_EQ(back.key(), guided.key());
}

// --- Guidance actually guides -------------------------------------------------

TEST(FeedbackGuidance, GuidedCoverageDominatesUnguidedAtEqualBudget) {
    // A budget/size-space combination the uniform sampler cannot saturate:
    // boundary region classes (empty / one-point / large extents) are rare
    // under uniform size draws but targeted by the mutator.  Everything is
    // deterministic, so this is a fixed inequality, not a flaky stochastic
    // bound.
    const ir::SDFG gemm = workloads::build_npbench_kernel("gemm");
    auto run = [&](bool feedback) {
        core::FuzzConfig config = tiling_config(30, feedback, /*coverage=*/true);
        config.sampler.size_max = 96;
        config.generation_size = 10;
        core::Fuzzer fuzzer(config);
        std::int64_t hit = 0;
        for (const auto& r : fuzzer.audit(gemm, tiling_passes())) hit += r.pairs_hit;
        return hit;
    };
    const std::int64_t unguided = run(false);
    const std::int64_t guided = run(true);
    EXPECT_GT(unguided, 0);
    EXPECT_GT(guided, unguided) << "guided run must reach strictly more def-use pairs";
}

}  // namespace
}  // namespace ff
