// Shared fixtures and mini-program builders for the test suite.
#pragma once

#include <gtest/gtest.h>

#include "interp/interpreter.h"
#include "ir/sdfg.h"
#include "workloads/builders.h"

namespace ff::testing {

/// y[i] = x[i] * 2 over a 1-D array of symbolic size N.
inline ir::SDFG make_scale_sdfg(const std::string& code = "o = i * 2.0") {
    ir::SDFG sdfg("scale");
    sdfg.add_symbol("N");
    const sym::ExprPtr n = sym::symb("N");
    sdfg.add_array("x", ir::DType::F64, {n}, /*transient=*/false);
    sdfg.add_array("y", ir::DType::F64, {n}, /*transient=*/false);
    ir::State& st = sdfg.state(sdfg.add_state("main", true));
    workloads::ew_unary(sdfg, st, st.add_access("x"), "y", code);
    return sdfg;
}

/// Chain x -> T (transient) -> y with two elementwise maps.
inline ir::SDFG make_chain_sdfg(const std::string& code1 = "o = i + 1.0",
                                const std::string& code2 = "o = i * 3.0") {
    ir::SDFG sdfg("chain");
    sdfg.add_symbol("N");
    const sym::ExprPtr n = sym::symb("N");
    sdfg.add_array("x", ir::DType::F64, {n}, /*transient=*/false);
    sdfg.add_array("T", ir::DType::F64, {n}, /*transient=*/true);
    sdfg.add_array("y", ir::DType::F64, {n}, /*transient=*/false);
    ir::State& st = sdfg.state(sdfg.add_state("main", true));
    const ir::NodeId t = workloads::ew_unary(sdfg, st, st.add_access("x"), "T", code1);
    workloads::ew_unary(sdfg, st, t, "y", code2);
    return sdfg;
}

/// Executes and requires success; returns the context.
inline interp::Context run_ok(const ir::SDFG& sdfg, interp::Context ctx) {
    interp::Interpreter interp;
    const interp::ExecResult result = interp.run(sdfg, ctx);
    EXPECT_TRUE(result.ok()) << result.message;
    return ctx;
}

/// 1-D f64 buffer from values.
inline interp::Buffer make_buffer(std::vector<double> values) {
    interp::Buffer buf(ir::DType::F64, {static_cast<std::int64_t>(values.size())});
    for (std::size_t i = 0; i < values.size(); ++i)
        buf.store(static_cast<std::int64_t>(i), interp::Value::from_double(values[i]));
    return buf;
}

inline std::vector<double> to_vector(const interp::Buffer& buf) {
    std::vector<double> out;
    for (std::int64_t i = 0; i < buf.size(); ++i) out.push_back(buf.load_double(i));
    return out;
}

}  // namespace ff::testing
