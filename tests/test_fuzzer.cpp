#include <gtest/gtest.h>

#include "common/error.h"

#include <cstdio>
#include <set>

#include "core/constraints.h"
#include "core/diff_test.h"
#include "core/fuzzer.h"
#include "core/report.h"
#include "core/sampler.h"
#include "core/testcase_io.h"
#include "helpers.h"
#include "transforms/map_tiling.h"
#include "transforms/registry.h"
#include "transforms/vectorization.h"
#include "workloads/matchain.h"
#include "workloads/npbench.h"

namespace ff::core {
namespace {

using ff::testing::make_scale_sdfg;

FuzzConfig quick_config(std::int64_t default_n = 8) {
    FuzzConfig config;
    config.max_trials = 20;
    config.sampler.size_max = 8;
    config.cutout.defaults = {{"N", default_n}};
    return config;
}

TEST(Constraints, SizeAndIndexClassification) {
    const ir::SDFG cutout = make_scale_sdfg();
    const Constraints c = derive_constraints(cutout, cutout);
    EXPECT_TRUE(c.free_symbols.count("N"));
    EXPECT_TRUE(c.size_symbols.count("N"));  // used in shapes
}

TEST(Constraints, LoopDetection) {
    // durbin_lite loops `iter` from 0 with a constant bound (iter < 4).
    const ir::SDFG p = workloads::build_npbench_kernel("durbin_lite");
    const auto loops = detect_loop_ranges(p);
    ASSERT_TRUE(loops.count("iter"));
    EXPECT_EQ(loops.at("iter").lo, 0);
    EXPECT_EQ(loops.at("iter").hi, 4);
    // floyd_warshall's bound (k < N - 1) is symbolic: best-effort detection
    // skips it, and the index-bound constraint takes over instead.
    EXPECT_FALSE(detect_loop_ranges(workloads::build_npbench_kernel("floyd_warshall"))
                     .count("k"));
}

TEST(Constraints, InterstateAssignedSymbolsNotSampled) {
    const ir::SDFG p = workloads::build_npbench_kernel("alias_stages");
    const Constraints c = derive_constraints(p, p);
    EXPECT_TRUE(c.free_symbols.count("N"));
    EXPECT_FALSE(c.free_symbols.count("M2"));   // produced by the program
    EXPECT_FALSE(c.free_symbols.count("dead"));
}

TEST(Sampler, DeterministicPerTrial) {
    const ir::SDFG cutout = make_scale_sdfg();
    const Constraints c = derive_constraints(cutout, cutout);
    const InputSampler sampler(SamplerConfig{});
    const auto a = sampler.sample(cutout, {"x"}, c, 7);
    const auto b = sampler.sample(cutout, {"x"}, c, 7);
    const auto other = sampler.sample(cutout, {"x"}, c, 8);
    EXPECT_EQ(a.symbols, b.symbols);
    EXPECT_TRUE(a.buffers.at("x").bitwise_equal(b.buffers.at("x")));
    EXPECT_FALSE(a.symbols == other.symbols &&
                 a.buffers.at("x").bitwise_equal(other.buffers.at("x")));
}

TEST(Sampler, GrayBoxRespectsSizeConstraints) {
    const ir::SDFG cutout = make_scale_sdfg();
    const Constraints c = derive_constraints(cutout, cutout);
    SamplerConfig cfg;
    cfg.size_max = 5;
    const InputSampler sampler(cfg);
    for (std::uint64_t trial = 0; trial < 50; ++trial) {
        const auto ctx = sampler.sample(cutout, {"x"}, c, trial);
        const std::int64_t n = ctx.symbols.at("N");
        EXPECT_GE(n, 1);
        EXPECT_LE(n, 5);
        EXPECT_EQ(ctx.buffers.at("x").size(), n);
    }
}

TEST(Sampler, UniformModeProducesInvalidSizes) {
    // The paper's motivation for gray-box sampling: uniform draws produce
    // many uninteresting crashes (sizes <= 0).
    const ir::SDFG cutout = make_scale_sdfg();
    const Constraints c = derive_constraints(cutout, cutout);
    SamplerConfig cfg;
    cfg.gray_box = false;
    const InputSampler sampler(cfg);
    int invalid = 0;
    for (std::uint64_t trial = 0; trial < 40; ++trial) {
        try {
            const auto ctx = sampler.sample(cutout, {"x"}, c, trial);
            if (ctx.symbols.at("N") <= 0) ++invalid;
        } catch (const std::exception&) {
            ++invalid;  // negative shape rejected at buffer construction
        }
    }
    EXPECT_GT(invalid, 5);
}

TEST(DiffTester, PassesOnIdenticalPrograms) {
    const ir::SDFG p = make_scale_sdfg();
    DifferentialTester tester(p, p, {"y"});
    interp::Context inputs;
    inputs.symbols["N"] = 4;
    inputs.buffers.emplace("x", ff::testing::make_buffer({1, 2, 3, 4}));
    EXPECT_EQ(tester.run_trial(inputs).verdict, Verdict::Pass);
}

TEST(DiffTester, DetectsSemanticChange) {
    const ir::SDFG p = make_scale_sdfg("o = i * 2.0");
    const ir::SDFG q = make_scale_sdfg("o = i * 2.0 + 0.001");
    DifferentialTester tester(p, q, {"y"});
    interp::Context inputs;
    inputs.symbols["N"] = 4;
    inputs.buffers.emplace("x", ff::testing::make_buffer({1, 2, 3, 4}));
    const auto outcome = tester.run_trial(inputs);
    EXPECT_EQ(outcome.verdict, Verdict::SemanticsChanged);
    EXPECT_NE(outcome.detail.find("y"), std::string::npos);
}

TEST(DiffTester, ThresholdToleratesNoise) {
    const ir::SDFG p = make_scale_sdfg("o = i * 2.0");
    const ir::SDFG q = make_scale_sdfg("o = i * 2.0 + 1e-12");
    DiffConfig cfg;
    cfg.threshold = 1e-5;  // paper default
    DifferentialTester tolerant(p, q, {"y"}, cfg);
    interp::Context inputs;
    inputs.symbols["N"] = 2;
    inputs.buffers.emplace("x", ff::testing::make_buffer({1, 2}));
    EXPECT_EQ(tolerant.run_trial(inputs).verdict, Verdict::Pass);
    cfg.threshold = 0.0;  // bitwise
    DifferentialTester strict(p, q, {"y"}, cfg);
    EXPECT_EQ(strict.run_trial(inputs).verdict, Verdict::SemanticsChanged);
}

TEST(DiffTester, InvalidTransformedProgram) {
    const ir::SDFG p = make_scale_sdfg();
    ir::SDFG q = p;
    q.state(q.start_state()).add_access("ghost");  // invalid graph
    DifferentialTester tester(p, q, {"y"});
    EXPECT_FALSE(tester.transformed_valid());
    interp::Context inputs;
    inputs.symbols["N"] = 2;
    inputs.buffers.emplace("x", ff::testing::make_buffer({1, 2}));
    EXPECT_EQ(tester.run_trial(inputs).verdict, Verdict::InvalidCode);
}

TEST(DiffTester, VerdictNamesRoundTripExhaustively) {
    // Iterate the enum by value, not by a hand-written list: adding a
    // verdict without extending verdict_name/verdict_from_name (or without
    // bumping kVerdictCount) must fail here, not in a shard merge at 3 a.m.
    std::set<std::string> names;
    for (int i = 0; i < kVerdictCount; ++i) {
        const Verdict v = static_cast<Verdict>(i);
        const std::string name = verdict_name(v);
        ASSERT_FALSE(name.empty());
        EXPECT_NE(name, "?") << "verdict_name missing case for value " << i;
        EXPECT_TRUE(names.insert(name).second) << "duplicate verdict name: " << name;
        EXPECT_EQ(verdict_from_name(name), v) << name;
    }
    EXPECT_EQ(names.count("resource-exhausted"), 1u);
    EXPECT_THROW(verdict_from_name("no-such-verdict"), common::Error);
    EXPECT_THROW(verdict_from_name(""), common::Error);
}

TEST(DiffTester, ResourceBudgetIsDeterministicAndBlamesTransformed) {
    // The "transformed" side computes the same function through two maps
    // (y = (x + 1) * 3 via a transient), so it spends 2N point fuel where
    // the original (y = 3x + 3) spends N: a budget between the two costs
    // yields ResourceExhausted, and re-running the identical trial yields
    // the identical outcome — budget exhaustion is a pure function of
    // (program, inputs, budget).
    const ir::SDFG p = make_scale_sdfg("o = i * 3.0 + 3.0");
    const ir::SDFG q = ff::testing::make_chain_sdfg("o = i + 1.0", "o = i * 3.0");

    interp::Context inputs;
    inputs.symbols["N"] = 8;
    inputs.buffers.emplace("x", ff::testing::make_buffer({1, 2, 3, 4, 5, 6, 7, 8}));
    // Pre-create the output (as the sampler does for every non-transient
    // container) so the only budget-charged allocation is the chain's T.
    inputs.buffers.emplace("y", ff::testing::make_buffer(std::vector<double>(8, 0.0)));

    DiffConfig cfg;
    cfg.exec.max_points = 9;  // original spends 8, the two-map chain 16
    DifferentialTester tester(p, q, {"y"}, cfg);
    const TrialOutcome first = tester.run_trial(inputs);
    EXPECT_EQ(first.verdict, Verdict::ResourceExhausted) << first.detail;
    // Cost counters are captured only for sides that completed Ok.
    EXPECT_EQ(first.original_points, 8);
    EXPECT_EQ(first.transformed_points, 0);
    EXPECT_EQ(first.transformed_instructions, 0);
    const TrialOutcome again = tester.run_trial(inputs);
    EXPECT_EQ(again.verdict, first.verdict);
    EXPECT_EQ(again.detail, first.detail);

    // The allocation budget trips on the chain's transient (8 f64 = 64
    // bytes) while the transient-free original allocates nothing.
    DiffConfig lowmem;
    lowmem.exec.max_alloc_bytes = 32;
    DifferentialTester cramped(p, q, {"y"}, lowmem);
    EXPECT_EQ(cramped.run_trial(inputs).verdict, Verdict::ResourceExhausted);

    // The original side exhausting the budget is the input's fault, exactly
    // like an original-side crash: resampled, never reported.
    DiffConfig tight;
    tight.exec.max_points = 4;
    DifferentialTester strict(p, q, {"y"}, tight);
    EXPECT_EQ(strict.run_trial(inputs).verdict, Verdict::Uninteresting);
}

TEST(DiffTester, OriginalCrashIsUninteresting) {
    const ir::SDFG p = make_scale_sdfg();
    DifferentialTester tester(p, p, {"y"});
    interp::Context inputs;  // N unbound: original crashes
    EXPECT_EQ(tester.run_trial(inputs).verdict, Verdict::Uninteresting);
}

TEST(Fuzzer, CorrectTilingPasses) {
    const ir::SDFG p = make_scale_sdfg();
    xform::MapTiling tiling(4, xform::MapTiling::Variant::Correct);
    Fuzzer fuzzer(quick_config());
    const auto matches = tiling.find_matches(p);
    ASSERT_EQ(matches.size(), 1u);
    const FuzzReport report = fuzzer.test_instance(p, tiling, matches[0]);
    EXPECT_EQ(report.verdict, Verdict::Pass) << report.detail;
    EXPECT_EQ(report.trials, fuzzer.config().max_trials);
}

TEST(Fuzzer, NoRemainderTilingCaughtAsInputDependent) {
    const ir::SDFG p = make_scale_sdfg();
    xform::MapTiling buggy(4, xform::MapTiling::Variant::NoRemainder);
    Fuzzer fuzzer(quick_config());
    const FuzzReport report = fuzzer.test_instance(p, buggy, buggy.find_matches(p)[0]);
    EXPECT_EQ(report.verdict, Verdict::TransformedCrash) << report.detail;
    // Needs more than one trial only when the first sampled N is a multiple
    // of 4 — either way, strictly fewer trials than the budget.
    EXPECT_LE(report.trials, fuzzer.config().max_trials);
    EXPECT_TRUE(report.failed());
}

TEST(Fuzzer, Fig2TilingBugFoundOnMatrixChain) {
    const ir::SDFG p = workloads::build_matrix_chain();
    xform::MapTiling buggy(4, xform::MapTiling::Variant::OffByOne);
    FuzzConfig config = quick_config(6);
    config.sampler.size_max = 6;
    Fuzzer fuzzer(config);
    const auto matches = buggy.find_matches(p);
    const xform::Match* mm2 = nullptr;
    for (const auto& m : matches)
        if (m.description.find("'mm2'") != std::string::npos) mm2 = &m;
    ASSERT_NE(mm2, nullptr);
    const FuzzReport report = fuzzer.test_instance(p, buggy, *mm2);
    EXPECT_EQ(report.verdict, Verdict::SemanticsChanged) << report.detail;
    // The cutout around mm2 is much smaller than the whole chain.
    EXPECT_LT(report.cutout_nodes, report.program_nodes / 2);
}

TEST(Fuzzer, WholeProgramBaselineFindsSameBugSlower) {
    const ir::SDFG p = workloads::build_matrix_chain();
    xform::MapTiling buggy(4, xform::MapTiling::Variant::OffByOne);
    const auto matches = buggy.find_matches(p);
    const xform::Match* mm2 = nullptr;
    for (const auto& m : matches)
        if (m.description.find("'mm2'") != std::string::npos) mm2 = &m;
    ASSERT_NE(mm2, nullptr);

    FuzzConfig config = quick_config(6);
    config.sampler.size_max = 6;
    config.whole_program = true;
    Fuzzer baseline(config);
    const FuzzReport report = baseline.test_instance(p, buggy, *mm2);
    EXPECT_EQ(report.verdict, Verdict::SemanticsChanged) << report.detail;
    EXPECT_TRUE(report.whole_program_cutout);
    EXPECT_EQ(report.cutout_nodes, report.program_nodes);
}

TEST(Fuzzer, ArtifactRoundTripReproducesFailure) {
    const ir::SDFG p = make_scale_sdfg();
    xform::MapTiling buggy(4, xform::MapTiling::Variant::NoRemainder);
    FuzzConfig config = quick_config();
    config.artifact_dir = ::testing::TempDir();
    Fuzzer fuzzer(config);
    const FuzzReport report = fuzzer.test_instance(p, buggy, buggy.find_matches(p)[0]);
    ASSERT_TRUE(report.failed());
    ASSERT_FALSE(report.artifact_path.empty());

    // Load the reproducer and re-run the failing trial.
    std::FILE* f = std::fopen(report.artifact_path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string text;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, got);
    std::fclose(f);
    const LoadedTestCase tc = testcase_from_json(common::Json::parse(text));
    EXPECT_EQ(tc.verdict, std::string(verdict_name(report.verdict)));

    DifferentialTester tester(tc.original, tc.transformed, tc.system_state);
    const auto outcome = tester.run_trial(tc.inputs);
    EXPECT_EQ(outcome.verdict, report.verdict);
}

TEST(Report, AuditSummaryAggregates) {
    FuzzReport a;
    a.transformation = "X";
    a.verdict = Verdict::Pass;
    FuzzReport b = a;
    b.verdict = Verdict::SemanticsChanged;
    FuzzReport c;
    c.transformation = "Y";
    c.verdict = Verdict::InvalidCode;
    const auto summaries = summarize_audit({a, b, c});
    ASSERT_EQ(summaries.size(), 2u);
    EXPECT_EQ(summaries[0].transformation, "X");
    EXPECT_EQ(summaries[0].instances, 2);
    EXPECT_EQ(summaries[0].failures, 1);
    EXPECT_EQ(summaries[1].failures, 1);
    const std::string table = audit_table(summaries);
    EXPECT_NE(table.find("semantics-changed"), std::string::npos);
    EXPECT_NE(table.find("invalid-code"), std::string::npos);
}

}  // namespace
}  // namespace ff::core
