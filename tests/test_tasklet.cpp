#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "interp/tasklet_lang.h"

namespace ff::interp {
namespace {

Value run_scalar(const std::string& code, ConnectorEnv env, const std::string& out = "o") {
    const auto prog = TaskletProgram::parse(code);
    prog->execute(env);
    return env.at(out).at(0);
}

ConnectorEnv env1(const std::string& name, double v) {
    return ConnectorEnv{{name, {Value::from_double(v)}}};
}

TEST(Tasklet, Arithmetic) {
    EXPECT_DOUBLE_EQ(run_scalar("o = a * 2.0 + 1.0", env1("a", 3)).as_double(), 7.0);
    EXPECT_DOUBLE_EQ(run_scalar("o = a - 10.0", env1("a", 3)).as_double(), -7.0);
    EXPECT_DOUBLE_EQ(run_scalar("o = -a", env1("a", 3)).as_double(), -3.0);
    EXPECT_DOUBLE_EQ(run_scalar("o = a / 4.0", env1("a", 3)).as_double(), 0.75);
}

TEST(Tasklet, IntegerSemantics) {
    // int / int is floor division; int + int stays integer.
    ConnectorEnv env{{"a", {Value::from_int(-7)}}};
    const Value v = run_scalar("o = a / 2", env);
    EXPECT_FALSE(v.is_float);
    EXPECT_EQ(v.i, -4);
    const Value m = run_scalar("o = a % 3", env);
    EXPECT_EQ(m.i, 2);
}

TEST(Tasklet, MixedPromotesToDouble) {
    ConnectorEnv env{{"a", {Value::from_int(3)}}};
    const Value v = run_scalar("o = a / 2.0", env);
    EXPECT_TRUE(v.is_float);
    EXPECT_DOUBLE_EQ(v.f, 1.5);
}

TEST(Tasklet, ComparisonAndTernary) {
    EXPECT_DOUBLE_EQ(run_scalar("o = a > 0 ? a : 0", env1("a", 5)).as_double(), 5.0);
    EXPECT_DOUBLE_EQ(run_scalar("o = a > 0 ? a : 0", env1("a", -5)).as_double(), 0.0);
    EXPECT_EQ(run_scalar("o = a <= 3.0", env1("a", 3)).as_int(), 1);
    EXPECT_EQ(run_scalar("o = a != 3.0", env1("a", 3)).as_int(), 0);
}

TEST(Tasklet, LogicalShortCircuit) {
    // Division by zero in the unevaluated branch must not fire.
    ConnectorEnv env{{"a", {Value::from_double(0)}}};
    EXPECT_EQ(run_scalar("o = a != 0.0 && 1.0 / a > 0.0", env).as_int(), 0);
    EXPECT_EQ(run_scalar("o = a == 0.0 || 1.0 / a > 0.0", env).as_int(), 1);
}

TEST(Tasklet, Functions) {
    EXPECT_DOUBLE_EQ(run_scalar("o = min(a, 2.0)", env1("a", 5)).as_double(), 2.0);
    EXPECT_DOUBLE_EQ(run_scalar("o = max(a, 2.0)", env1("a", 5)).as_double(), 5.0);
    EXPECT_DOUBLE_EQ(run_scalar("o = abs(a)", env1("a", -3)).as_double(), 3.0);
    EXPECT_DOUBLE_EQ(run_scalar("o = sqrt(a)", env1("a", 16)).as_double(), 4.0);
    EXPECT_DOUBLE_EQ(run_scalar("o = exp(a)", env1("a", 0)).as_double(), 1.0);
    EXPECT_DOUBLE_EQ(run_scalar("o = pow(a, 3.0)", env1("a", 2)).as_double(), 8.0);
    EXPECT_DOUBLE_EQ(run_scalar("o = floor(a)", env1("a", 2.7)).as_double(), 2.0);
    EXPECT_DOUBLE_EQ(run_scalar("o = ceil(a)", env1("a", 2.1)).as_double(), 3.0);
    EXPECT_DOUBLE_EQ(run_scalar("o = select(a > 1.0, 10.0, 20.0)", env1("a", 2)).as_double(),
                     10.0);
    EXPECT_NEAR(run_scalar("o = tanh(a)", env1("a", 0.5)).as_double(), std::tanh(0.5), 1e-15);
}

TEST(Tasklet, MultiStatementAndLocals) {
    // `t` is assigned before use: a local, not an input connector.
    const auto prog = TaskletProgram::parse("t = a * 2.0; o = t + a");
    EXPECT_EQ(prog->reads().size(), 1u);
    EXPECT_TRUE(prog->reads().count("a"));
    EXPECT_TRUE(prog->writes().count("t"));
    EXPECT_TRUE(prog->writes().count("o"));
    ConnectorEnv env = env1("a", 3);
    prog->execute(env);
    EXPECT_DOUBLE_EQ(env.at("o").at(0).as_double(), 9.0);
}

TEST(Tasklet, VectorLanes) {
    const auto prog = TaskletProgram::parse("o[0] = a[0] * s; o[1] = a[1] * s");
    EXPECT_EQ(prog->reads().at("a"), 2);
    EXPECT_EQ(prog->reads().at("s"), 1);
    EXPECT_EQ(prog->writes().at("o"), 2);
    ConnectorEnv env{{"a", {Value::from_double(1), Value::from_double(2)}},
                     {"s", {Value::from_double(10)}}};
    prog->execute(env);
    EXPECT_DOUBLE_EQ(env.at("o").at(0).as_double(), 10.0);
    EXPECT_DOUBLE_EQ(env.at("o").at(1).as_double(), 20.0);
}

TEST(Tasklet, ReadAfterOwnWrite) {
    ConnectorEnv env = env1("a", 4);
    const auto prog = TaskletProgram::parse("o = a; o = o * o");
    prog->execute(env);
    EXPECT_DOUBLE_EQ(env.at("o").at(0).as_double(), 16.0);
}

TEST(Tasklet, MissingInputThrows) {
    const auto prog = TaskletProgram::parse("o = a + b");
    ConnectorEnv env = env1("a", 1);
    EXPECT_THROW(prog->execute(env), common::Error);
}

TEST(Tasklet, ParseErrors) {
    EXPECT_THROW(TaskletProgram::parse(""), common::ParseError);
    EXPECT_THROW(TaskletProgram::parse("o ="), common::ParseError);
    EXPECT_THROW(TaskletProgram::parse("= a"), common::ParseError);
    EXPECT_THROW(TaskletProgram::parse("o = frobnicate(a)"), common::ParseError);
    EXPECT_THROW(TaskletProgram::parse("o = a +* b"), common::ParseError);
    EXPECT_THROW(TaskletProgram::parse("o = a[b]"), common::ParseError);  // non-const lane
}

TEST(Tasklet, ScientificNotation) {
    EXPECT_DOUBLE_EQ(run_scalar("o = a * 1e-5", env1("a", 2)).as_double(), 2e-5);
    EXPECT_DOUBLE_EQ(run_scalar("o = a + 1.5e2", env1("a", 0)).as_double(), 150.0);
}

/// Parameterized sweep: relu behaves like max(0, x) across signs.
class ReluProperty : public ::testing::TestWithParam<double> {};

TEST_P(ReluProperty, TernaryMatchesMax) {
    const double x = GetParam();
    const double relu = run_scalar("o = a > 0 ? a : 0", env1("a", x)).as_double();
    const double via_max = run_scalar("o = max(a, 0.0)", env1("a", x)).as_double();
    EXPECT_DOUBLE_EQ(relu, via_max);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReluProperty,
                         ::testing::Values(-10.0, -0.5, 0.0, 0.25, 3.0, 1e9, -1e9));

}  // namespace
}  // namespace ff::interp
