#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "interp/tasklet_lang.h"

namespace ff::interp {
namespace {

Value run_scalar(const std::string& code, ConnectorEnv env, const std::string& out = "o") {
    const auto prog = TaskletProgram::parse(code);
    prog->execute(env);
    return env.at(out).at(0);
}

ConnectorEnv env1(const std::string& name, double v) {
    return ConnectorEnv{{name, {Value::from_double(v)}}};
}

TEST(Tasklet, Arithmetic) {
    EXPECT_DOUBLE_EQ(run_scalar("o = a * 2.0 + 1.0", env1("a", 3)).as_double(), 7.0);
    EXPECT_DOUBLE_EQ(run_scalar("o = a - 10.0", env1("a", 3)).as_double(), -7.0);
    EXPECT_DOUBLE_EQ(run_scalar("o = -a", env1("a", 3)).as_double(), -3.0);
    EXPECT_DOUBLE_EQ(run_scalar("o = a / 4.0", env1("a", 3)).as_double(), 0.75);
}

TEST(Tasklet, IntegerSemantics) {
    // int / int is floor division; int + int stays integer.
    ConnectorEnv env{{"a", {Value::from_int(-7)}}};
    const Value v = run_scalar("o = a / 2", env);
    EXPECT_FALSE(v.is_float);
    EXPECT_EQ(v.i, -4);
    const Value m = run_scalar("o = a % 3", env);
    EXPECT_EQ(m.i, 2);
}

TEST(Tasklet, MixedPromotesToDouble) {
    ConnectorEnv env{{"a", {Value::from_int(3)}}};
    const Value v = run_scalar("o = a / 2.0", env);
    EXPECT_TRUE(v.is_float);
    EXPECT_DOUBLE_EQ(v.f, 1.5);
}

TEST(Tasklet, ComparisonAndTernary) {
    EXPECT_DOUBLE_EQ(run_scalar("o = a > 0 ? a : 0", env1("a", 5)).as_double(), 5.0);
    EXPECT_DOUBLE_EQ(run_scalar("o = a > 0 ? a : 0", env1("a", -5)).as_double(), 0.0);
    EXPECT_EQ(run_scalar("o = a <= 3.0", env1("a", 3)).as_int(), 1);
    EXPECT_EQ(run_scalar("o = a != 3.0", env1("a", 3)).as_int(), 0);
}

TEST(Tasklet, LogicalShortCircuit) {
    // Division by zero in the unevaluated branch must not fire.
    ConnectorEnv env{{"a", {Value::from_double(0)}}};
    EXPECT_EQ(run_scalar("o = a != 0.0 && 1.0 / a > 0.0", env).as_int(), 0);
    EXPECT_EQ(run_scalar("o = a == 0.0 || 1.0 / a > 0.0", env).as_int(), 1);
}

TEST(Tasklet, Functions) {
    EXPECT_DOUBLE_EQ(run_scalar("o = min(a, 2.0)", env1("a", 5)).as_double(), 2.0);
    EXPECT_DOUBLE_EQ(run_scalar("o = max(a, 2.0)", env1("a", 5)).as_double(), 5.0);
    EXPECT_DOUBLE_EQ(run_scalar("o = abs(a)", env1("a", -3)).as_double(), 3.0);
    EXPECT_DOUBLE_EQ(run_scalar("o = sqrt(a)", env1("a", 16)).as_double(), 4.0);
    EXPECT_DOUBLE_EQ(run_scalar("o = exp(a)", env1("a", 0)).as_double(), 1.0);
    EXPECT_DOUBLE_EQ(run_scalar("o = pow(a, 3.0)", env1("a", 2)).as_double(), 8.0);
    EXPECT_DOUBLE_EQ(run_scalar("o = floor(a)", env1("a", 2.7)).as_double(), 2.0);
    EXPECT_DOUBLE_EQ(run_scalar("o = ceil(a)", env1("a", 2.1)).as_double(), 3.0);
    EXPECT_DOUBLE_EQ(run_scalar("o = select(a > 1.0, 10.0, 20.0)", env1("a", 2)).as_double(),
                     10.0);
    EXPECT_NEAR(run_scalar("o = tanh(a)", env1("a", 0.5)).as_double(), std::tanh(0.5), 1e-15);
}

TEST(Tasklet, MultiStatementAndLocals) {
    // `t` is assigned before use: a local, not an input connector.
    const auto prog = TaskletProgram::parse("t = a * 2.0; o = t + a");
    EXPECT_EQ(prog->reads().size(), 1u);
    EXPECT_TRUE(prog->reads().count("a"));
    EXPECT_TRUE(prog->writes().count("t"));
    EXPECT_TRUE(prog->writes().count("o"));
    ConnectorEnv env = env1("a", 3);
    prog->execute(env);
    EXPECT_DOUBLE_EQ(env.at("o").at(0).as_double(), 9.0);
}

TEST(Tasklet, VectorLanes) {
    const auto prog = TaskletProgram::parse("o[0] = a[0] * s; o[1] = a[1] * s");
    EXPECT_EQ(prog->reads().at("a"), 2);
    EXPECT_EQ(prog->reads().at("s"), 1);
    EXPECT_EQ(prog->writes().at("o"), 2);
    ConnectorEnv env{{"a", {Value::from_double(1), Value::from_double(2)}},
                     {"s", {Value::from_double(10)}}};
    prog->execute(env);
    EXPECT_DOUBLE_EQ(env.at("o").at(0).as_double(), 10.0);
    EXPECT_DOUBLE_EQ(env.at("o").at(1).as_double(), 20.0);
}

TEST(Tasklet, ReadAfterOwnWrite) {
    ConnectorEnv env = env1("a", 4);
    const auto prog = TaskletProgram::parse("o = a; o = o * o");
    prog->execute(env);
    EXPECT_DOUBLE_EQ(env.at("o").at(0).as_double(), 16.0);
}

TEST(Tasklet, MissingInputThrows) {
    const auto prog = TaskletProgram::parse("o = a + b");
    ConnectorEnv env = env1("a", 1);
    EXPECT_THROW(prog->execute(env), common::Error);
}

TEST(Tasklet, ParseErrors) {
    EXPECT_THROW(TaskletProgram::parse(""), common::ParseError);
    EXPECT_THROW(TaskletProgram::parse("o ="), common::ParseError);
    EXPECT_THROW(TaskletProgram::parse("= a"), common::ParseError);
    EXPECT_THROW(TaskletProgram::parse("o = frobnicate(a)"), common::ParseError);
    EXPECT_THROW(TaskletProgram::parse("o = a +* b"), common::ParseError);
    EXPECT_THROW(TaskletProgram::parse("o = a[b]"), common::ParseError);  // non-const lane
}

TEST(Tasklet, ScientificNotation) {
    EXPECT_DOUBLE_EQ(run_scalar("o = a * 1e-5", env1("a", 2)).as_double(), 2e-5);
    EXPECT_DOUBLE_EQ(run_scalar("o = a + 1.5e2", env1("a", 0)).as_double(), 150.0);
}

/// Parameterized sweep: relu behaves like max(0, x) across signs.
class ReluProperty : public ::testing::TestWithParam<double> {};

TEST_P(ReluProperty, TernaryMatchesMax) {
    const double x = GetParam();
    const double relu = run_scalar("o = a > 0 ? a : 0", env1("a", x)).as_double();
    const double via_max = run_scalar("o = max(a, 0.0)", env1("a", x)).as_double();
    EXPECT_DOUBLE_EQ(relu, via_max);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReluProperty,
                         ::testing::Values(-10.0, -0.5, 0.0, 0.25, 3.0, 1e9, -1e9));

// --- Compiled engine (bytecode VM) -----------------------------------------

Value run_compiled(const std::string& code, ConnectorEnv env, const std::string& out = "o") {
    const auto prog = TaskletProgram::parse(code);
    prog->execute_compiled(env);
    return env.at(out).at(0);
}

TEST(TaskletCompiled, MatchesHandPickedCases) {
    EXPECT_DOUBLE_EQ(run_compiled("o = a * 2.0 + 1.0", env1("a", 3)).as_double(), 7.0);
    EXPECT_DOUBLE_EQ(run_compiled("o = a > 0 ? a : 0", env1("a", -5)).as_double(), 0.0);
    EXPECT_DOUBLE_EQ(run_compiled("t = a * 2.0; o = t + a", env1("a", 3)).as_double(), 9.0);
    // Integer floor semantics survive compilation.
    ConnectorEnv env{{"a", {Value::from_int(-7)}}};
    const Value v = run_compiled("o = a / 2", env);
    EXPECT_FALSE(v.is_float);
    EXPECT_EQ(v.i, -4);
}

TEST(TaskletCompiled, ShortCircuitViaJumps) {
    ConnectorEnv env{{"a", {Value::from_double(0)}}};
    EXPECT_EQ(run_compiled("o = a != 0.0 && 1.0 / a > 0.0", env).as_int(), 0);
    EXPECT_EQ(run_compiled("o = a == 0.0 || 1.0 / a > 0.0", env).as_int(), 1);
    // An int division by zero in the untaken branch must not fire.
    ConnectorEnv kenv{{"k", {Value::from_int(0)}}};
    EXPECT_EQ(run_compiled("o = k != 0 && 5 / k > 0", kenv).as_int(), 0);
}

TEST(TaskletCompiled, ConstantFoldingPreservesCrashes) {
    // 5 / 0 (int) throws at runtime in the reference engine; folding must
    // not turn it into a compile-time error or a silent value.
    const auto prog = TaskletProgram::parse("o = a + 5 / 0");
    ConnectorEnv env = env1("a", 1);
    EXPECT_THROW(prog->execute(env), common::Error);
    ConnectorEnv env2 = env1("a", 1);
    EXPECT_THROW(prog->execute_compiled(env2), common::Error);
}

TEST(TaskletCompiled, UnboundLocalLaneTraps) {
    // t[1] is never assigned and t is not an input: both engines throw the
    // same unbound-connector error.
    const auto prog = TaskletProgram::parse("t[0] = a; o = t[1]");
    ConnectorEnv env1_ = env1("a", 1);
    EXPECT_THROW(prog->execute(env1_), common::Error);
    ConnectorEnv env2 = env1("a", 1);
    EXPECT_THROW(prog->execute_compiled(env2), common::Error);
    EXPECT_EQ(prog->trap_connectors().size(), 1u);
    EXPECT_EQ(prog->trap_connectors()[0], "t");
}

TEST(TaskletCompiled, MissingInputThrows) {
    const auto prog = TaskletProgram::parse("o = a + b");
    ConnectorEnv env = env1("a", 1);
    EXPECT_THROW(prog->execute_compiled(env), common::Error);
}

// --- Differential property test: bytecode VM vs reference AST evaluator ----
//
// Randomly generated programs over mixed int/float connectors must agree
// between the two engines on every output lane — including int/float
// promotion, floor division/modulo edge cases, NaNs and crashes.

struct ProgramGen {
    common::Rng rng;
    std::vector<std::string> readable;  // expressions valid as loads

    explicit ProgramGen(std::uint64_t seed) : rng(seed) {}

    std::string constant() {
        switch (rng.uniform_int(0, 5)) {
            case 0: return std::to_string(rng.uniform_int(0, 7));          // small int
            case 1: return std::to_string(rng.uniform_int(0, 2));          // 0/1/2: div/mod edges
            case 2: return "2.0";
            case 3: return "0.5";
            case 4: return "0.0";
            default: return std::to_string(rng.uniform_int(1, 9)) + ".25";
        }
    }

    std::string leaf() {
        if (!readable.empty() && rng.chance(0.6))
            return readable[static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(readable.size()) - 1))];
        return constant();
    }

    std::string expr(int depth) {
        if (depth <= 0 || rng.chance(0.25)) return leaf();
        switch (rng.uniform_int(0, 11)) {
            case 0: return "(" + expr(depth - 1) + " + " + expr(depth - 1) + ")";
            case 1: return "(" + expr(depth - 1) + " - " + expr(depth - 1) + ")";
            case 2: return "(" + expr(depth - 1) + " * " + expr(depth - 1) + ")";
            case 3: return "(" + expr(depth - 1) + " / " + expr(depth - 1) + ")";
            case 4: return "(" + expr(depth - 1) + " % " + expr(depth - 1) + ")";
            case 5: return "(-" + leaf() + ")";
            case 6: return "(" + expr(depth - 1) + " < " + expr(depth - 1) + ")";
            case 7: return "(" + expr(depth - 1) + " ? " + expr(depth - 1) + " : " +
                           expr(depth - 1) + ")";
            case 8: return "(" + expr(depth - 1) + " && " + expr(depth - 1) + ")";
            case 9: return "min(" + expr(depth - 1) + ", " + expr(depth - 1) + ")";
            case 10: return "abs(" + expr(depth - 1) + ")";
            default: return "floor(" + expr(depth - 1) + ")";
        }
    }

    /// Returns tasklet code; fills `env` with the input connectors.
    std::string generate(ConnectorEnv& env) {
        readable = {"a", "b", "k", "m", "v[0]", "v[1]"};
        env["a"] = {Value::from_double(rng.uniform_double(-4, 4))};
        env["b"] = {rng.chance(0.2) ? Value::from_double(0.0)
                                    : Value::from_double(rng.uniform_double(-4, 4))};
        env["k"] = {Value::from_int(rng.uniform_int(-5, 5))};
        env["m"] = {rng.chance(0.3) ? Value::from_int(0) : Value::from_int(rng.uniform_int(-3, 3))};
        env["v"] = {Value::from_double(rng.uniform_double(-2, 2)),
                    Value::from_double(rng.uniform_double(-2, 2))};

        std::string code;
        const int stmts = static_cast<int>(rng.uniform_int(1, 3));
        for (int s = 0; s < stmts; ++s) {
            const std::string local = "t" + std::to_string(s);
            code += local + " = " + expr(3) + "; ";
            readable.push_back(local);
        }
        code += "o = " + expr(3);
        if (rng.chance(0.3)) code += "; w[0] = " + expr(2) + "; w[1] = " + expr(2);
        return code;
    }
};

bool values_equal(const Value& x, const Value& y) {
    if (x.is_float != y.is_float) return false;
    if (x.is_float) {
        if (std::isnan(x.f) && std::isnan(y.f)) return true;
        return std::memcmp(&x.f, &y.f, sizeof(double)) == 0;
    }
    return x.i == y.i;
}

TEST(TaskletDifferential, RandomProgramsAgreeAcrossEngines) {
    int crashes = 0;
    for (std::uint64_t seed = 0; seed < 400; ++seed) {
        ProgramGen gen(0xFACADE + seed);
        ConnectorEnv inputs;
        const std::string code = gen.generate(inputs);
        SCOPED_TRACE("seed=" + std::to_string(seed) + " code: " + code);

        const auto prog = TaskletProgram::parse(code);

        ConnectorEnv ref_env = inputs;
        ConnectorEnv vm_env = inputs;
        bool ref_threw = false, vm_threw = false;
        std::string ref_msg, vm_msg;
        try {
            prog->execute(ref_env);
        } catch (const common::Error& e) {
            ref_threw = true;
            ref_msg = e.what();
        }
        try {
            prog->execute_compiled(vm_env);
        } catch (const common::Error& e) {
            vm_threw = true;
            vm_msg = e.what();
        }

        ASSERT_EQ(ref_threw, vm_threw) << "ref: " << ref_msg << " vm: " << vm_msg;
        if (ref_threw) {
            ++crashes;
            EXPECT_EQ(ref_msg, vm_msg);
            continue;
        }
        for (const auto& [name, width] : prog->writes()) {
            ASSERT_TRUE(vm_env.count(name)) << "missing output " << name;
            const auto& rv = ref_env.at(name);
            const auto& vv = vm_env.at(name);
            ASSERT_GE(vv.size(), static_cast<std::size_t>(width));
            for (int lane = 0; lane < width; ++lane)
                EXPECT_TRUE(values_equal(rv[static_cast<std::size_t>(lane)],
                                         vv[static_cast<std::size_t>(lane)]))
                    << name << "[" << lane << "]: ref=" << rv[static_cast<std::size_t>(lane)]
                           .as_double()
                    << " vm=" << vv[static_cast<std::size_t>(lane)].as_double();
        }
    }
    // The generator intentionally produces some int-div-by-zero crashes;
    // they must not dominate (the value-comparison path is the point).
    EXPECT_LT(crashes, 200);
}

}  // namespace
}  // namespace ff::interp
