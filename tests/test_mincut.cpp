#include <gtest/gtest.h>

#include "common/error.h"

#include "core/mincut.h"
#include "helpers.h"
#include "transforms/vectorization.h"
#include "workloads/mha.h"

namespace ff::core {
namespace {

/// Extract the vectorization cutout of the MHA scaling loop nest and run
/// the minimum input-flow cut on it.
struct MhaFixture {
    ir::SDFG program = workloads::build_mha_scale();
    xform::Vectorization vec{4};
    xform::Match match;
    xform::ChangeSet delta;
    CutoutOptions opts;

    MhaFixture() {
        const auto matches = vec.find_matches(program);
        // The scaling loop nest is the only vectorizable map.
        EXPECT_EQ(matches.size(), 1u);
        match = matches.at(0);
        delta = vec.affected_nodes(program, match);
        opts.defaults = workloads::mha_defaults(/*sm=*/32);
    }
};

TEST(MinCut, MhaReproducesFig5Reduction) {
    MhaFixture fx;
    const Cutout initial = extract_cutout(fx.program, fx.delta, fx.opts);
    // Initial input configuration: tmp (B*H*SM^2) + scale (1).
    EXPECT_TRUE(initial.input_config.count("tmp"));
    EXPECT_TRUE(initial.input_config.count("scale"));
    const std::int64_t before = initial.concrete_input_volume(fx.opts.defaults);

    const MinCutResult result =
        minimize_input_configuration(fx.program, fx.delta, initial, fx.opts);
    ASSERT_TRUE(result.improved);
    EXPECT_GT(result.nodes_added, 0u);
    // The expanded cutout recomputes tmp from A and Bmat.
    EXPECT_TRUE(result.cutout.input_config.count("A"));
    EXPECT_TRUE(result.cutout.input_config.count("Bmat"));
    EXPECT_FALSE(result.cutout.input_config.count("tmp"));
    EXPECT_TRUE(result.cutout.input_config.count("scale"));

    // Paper: "this reduces the input configuration by 75%" (P = SM/8).
    const double reduction =
        1.0 - static_cast<double>(result.volume_after) / static_cast<double>(before);
    EXPECT_NEAR(reduction, 0.75, 0.01);

    // The scaled tensor stays the system state.
    EXPECT_TRUE(result.cutout.system_state.count("tmp"));
    EXPECT_NO_THROW(result.cutout.program.validate());
}

TEST(MinCut, ExpandedCutoutStillTestsTheTransformation) {
    MhaFixture fx;
    const Cutout initial = extract_cutout(fx.program, fx.delta, fx.opts);
    const MinCutResult result =
        minimize_input_configuration(fx.program, fx.delta, initial, fx.opts);
    ASSERT_TRUE(result.improved);
    // The vectorization match still remaps into the expanded cutout.
    const xform::Match remapped = result.cutout.remap_match(fx.match);
    ir::SDFG transformed = result.cutout.program;
    EXPECT_NO_THROW(fx.vec.apply(transformed, remapped));
    EXPECT_NO_THROW(transformed.validate());
}

TEST(MinCut, NoImprovementWhenInputsAreExternal) {
    // Cutout inputs that are program inputs cannot be recomputed: the cut
    // keeps the original cutout.
    const ir::SDFG p = ff::testing::make_scale_sdfg();
    xform::Vectorization vec(4);
    const auto matches = vec.find_matches(p);
    ASSERT_EQ(matches.size(), 1u);
    const xform::ChangeSet delta = vec.affected_nodes(p, matches[0]);
    CutoutOptions opts;
    opts.defaults = {{"N", 16}};
    const Cutout initial = extract_cutout(p, delta, opts);
    const MinCutResult result = minimize_input_configuration(p, delta, initial, opts);
    EXPECT_FALSE(result.improved);
    EXPECT_EQ(result.volume_after, result.volume_before);
}

TEST(MinCut, WholeProgramCutoutIsLeftAlone) {
    const ir::SDFG p = ff::testing::make_scale_sdfg();
    Cutout whole = whole_program_cutout(p);
    xform::ChangeSet delta;
    CutoutOptions opts;
    opts.defaults = {{"N", 16}};
    const MinCutResult result = minimize_input_configuration(p, delta, whole, opts);
    EXPECT_FALSE(result.improved);
}

}  // namespace
}  // namespace ff::core
