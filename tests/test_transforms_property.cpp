// Property tests: every correct-mode transformation preserves semantics on
// every kernel of the suite where it matches, across input sizes — the
// ground truth that makes the differential verdicts in the audits
// meaningful (a "failure" is the transformation's fault, not the fuzzer's).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "common/error.h"

#include "common/rng.h"
#include "helpers.h"
#include "interp/interpreter.h"
#include "transforms/registry.h"
#include "transforms/vectorization.h"
#include "workloads/npbench.h"

namespace ff::xform {
namespace {

interp::Context random_inputs(const ir::SDFG& sdfg, const sym::Bindings& bindings,
                              std::uint64_t seed) {
    interp::Context ctx;
    ctx.symbols = bindings;
    common::Rng rng(seed);
    for (const auto& [name, desc] : sdfg.containers()) {
        if (desc.transient) continue;
        interp::Buffer buf(desc.dtype, desc.concrete_shape(bindings));
        for (std::int64_t i = 0; i < buf.size(); ++i) {
            if (ir::dtype_is_float(desc.dtype))
                buf.store(i, interp::Value::from_double(rng.uniform_double(-1, 1)));
            else
                buf.store(i, interp::Value::from_int(rng.uniform_int(-4, 4)));
        }
        ctx.buffers.emplace(name, std::move(buf));
    }
    return ctx;
}

/// Non-transient containers must be unchanged (within fp threshold) between
/// the original and transformed run.
void expect_equivalent(const ir::SDFG& p, const ir::SDFG& q, const sym::Bindings& bindings,
                       const std::string& label) {
    interp::Interpreter ip, iq;
    auto cp = random_inputs(p, bindings, 1234);
    auto cq = cp;
    const auto rp = ip.run(p, cp);
    const auto rq = iq.run(q, cq);
    ASSERT_TRUE(rp.ok()) << label << " original: " << rp.message;
    ASSERT_TRUE(rq.ok()) << label << " transformed: " << rq.message;
    for (const auto& [name, desc] : p.containers()) {
        if (desc.transient) continue;
        if (!cp.buffers.count(name) || !cq.buffers.count(name)) continue;
        const auto mismatch =
            interp::compare_buffers(cp.buffers.at(name), cq.buffers.at(name), 1e-9);
        EXPECT_FALSE(mismatch.has_value())
            << label << ": '" << name << "' differs at " << (mismatch ? mismatch->flat_index : 0);
    }

    // Budget purity (docs/ARCHITECTURE.md determinism contract): re-running
    // each side under a point budget of exactly its own measured fuel must
    // still succeed, land bitwise-identical state, and burn identical
    // counters.  This is what lets budgets be part of the job key — an
    // enabled budget below the limit is unobservable, and exhaustion (one
    // point less would trip it) is a pure function of (program, inputs,
    // budget) across every execution tier the interpreter picks.
    interp::ExecConfig budget;
    budget.max_points = std::max<std::int64_t>({rp.points, rq.points, 1});
    budget.max_alloc_bytes = 1ll << 30;
    interp::Interpreter bp(budget), bq(budget);
    auto cbp = random_inputs(p, bindings, 1234);
    auto cbq = cbp;
    const auto rbp = bp.run(p, cbp);
    const auto rbq = bq.run(q, cbq);
    ASSERT_TRUE(rbp.ok()) << label << " budgeted original: " << rbp.message;
    ASSERT_TRUE(rbq.ok()) << label << " budgeted transformed: " << rbq.message;
    EXPECT_EQ(rbp.points, rp.points) << label;
    EXPECT_EQ(rbq.points, rq.points) << label;
    EXPECT_EQ(rbp.instructions, rp.instructions) << label;
    EXPECT_EQ(rbq.instructions, rq.instructions) << label;
    for (const auto& [name, desc] : p.containers()) {
        if (desc.transient) continue;
        if (!cp.buffers.count(name) || !cbp.buffers.count(name)) continue;
        EXPECT_TRUE(cbp.buffers.at(name).bitwise_equal(cp.buffers.at(name)))
            << label << ": budgeted original perturbed '" << name << "'";
        EXPECT_TRUE(cbq.buffers.at(name).bitwise_equal(cq.buffers.at(name)))
            << label << ": budgeted transformed perturbed '" << name << "'";
    }
}

class CorrectPassProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(CorrectPassProperty, PreservesSemanticsOnAllMatches) {
    const std::string kernel = GetParam();
    const sym::Bindings bindings = workloads::npbench_defaults();
    const auto passes = builtin_transformations({.table2_bugs = false});
    for (const auto& pass : passes) {
        if (pass->name() == "Vectorization") continue;  // input-dependent by design
        const ir::SDFG original = workloads::build_npbench_kernel(kernel);
        const auto matches = pass->find_matches(original);
        // Apply each match to a fresh copy: matches are positional and may
        // invalidate one another.
        for (std::size_t i = 0; i < matches.size(); ++i) {
            ir::SDFG transformed = original;
            ASSERT_NO_THROW(pass->apply(transformed, matches[i]))
                << kernel << " / " << pass->name();
            ASSERT_NO_THROW(transformed.validate()) << kernel << " / " << pass->name();
            expect_equivalent(original, transformed, bindings,
                              kernel + " / " + pass->name() + " #" + std::to_string(i));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Suite, CorrectPassProperty,
                         ::testing::Values("gemm", "atax", "mvt", "gesummv", "syrk",
                                           "jacobi_1d", "jacobi_2d", "hdiff", "l2norm",
                                           "go_fast", "compute", "scalar_pipeline", "ew_chain",
                                           "copy_pipeline", "alias_stages", "arc_distance",
                                           "unroll_candidates", "conv1d", "vadv_lite"));

/// Vectorization preserves semantics exactly on divisible sizes.
class VectorizationDivisibleProperty : public ::testing::TestWithParam<int> {};

TEST_P(VectorizationDivisibleProperty, ExactOnMultiplesOfWidth) {
    const int n = GetParam();
    ASSERT_EQ(n % 4, 0);
    const ir::SDFG original = ff::testing::make_scale_sdfg("o = i * 0.5 + 1.0");
    ir::SDFG transformed = original;
    Vectorization vec(4);
    const auto matches = vec.find_matches(transformed);
    ASSERT_EQ(matches.size(), 1u);
    vec.apply(transformed, matches[0]);
    expect_equivalent(original, transformed, {{"N", n}}, "vectorize N=" + std::to_string(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, VectorizationDivisibleProperty,
                         ::testing::Values(4, 8, 12, 16, 32));

}  // namespace
}  // namespace ff::xform
