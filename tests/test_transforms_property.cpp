// Property tests: every correct-mode transformation preserves semantics on
// every kernel of the suite where it matches, across input sizes — the
// ground truth that makes the differential verdicts in the audits
// meaningful (a "failure" is the transformation's fault, not the fuzzer's).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "common/error.h"

#include "common/rng.h"
#include "helpers.h"
#include "interp/interpreter.h"
#include "transforms/registry.h"
#include "transforms/vectorization.h"
#include "workloads/npbench.h"

namespace ff::xform {
namespace {

interp::Context random_inputs(const ir::SDFG& sdfg, const sym::Bindings& bindings,
                              std::uint64_t seed) {
    interp::Context ctx;
    ctx.symbols = bindings;
    common::Rng rng(seed);
    for (const auto& [name, desc] : sdfg.containers()) {
        if (desc.transient) continue;
        interp::Buffer buf(desc.dtype, desc.concrete_shape(bindings));
        for (std::int64_t i = 0; i < buf.size(); ++i) {
            if (ir::dtype_is_float(desc.dtype))
                buf.store(i, interp::Value::from_double(rng.uniform_double(-1, 1)));
            else
                buf.store(i, interp::Value::from_int(rng.uniform_int(-4, 4)));
        }
        ctx.buffers.emplace(name, std::move(buf));
    }
    return ctx;
}

/// Runs `sdfg` under every execution tier — reference AST engine, generic
/// compiled VM, specialized per-point kernels, batched segment kernels — and
/// requires identical observable behavior: same status and message, equal
/// cost counters for Ok runs, the same set of live buffers, and bitwise-
/// identical contents for every one of them (transients included).  This is
/// the tier half of the determinism contract the differential reports rest
/// on.  Returns the batched (default-config) run.
struct TierRun {
    interp::ExecResult res;
    interp::Context ctx;
};

TierRun run_all_tiers(const ir::SDFG& sdfg, const sym::Bindings& bindings, std::uint64_t seed,
                      const std::string& label) {
    struct Tier {
        const char* name;
        bool compiled, specialize, batch;
    };
    constexpr Tier kTiers[] = {
        {"reference", false, false, false},
        {"generic-compiled", true, false, false},
        {"specialized-per-point", true, true, false},
        {"batched-segments", true, true, true},
    };
    TierRun baseline;
    TierRun last;
    for (const Tier& t : kTiers) {
        interp::ExecConfig cfg;
        cfg.use_compiled_tasklets = t.compiled;
        cfg.specialize = t.specialize;
        cfg.batch_segments = t.batch;
        interp::Interpreter interp(cfg);
        TierRun run;
        run.ctx = random_inputs(sdfg, bindings, seed);
        run.res = interp.run(sdfg, run.ctx);
        if (&t == &kTiers[0]) {
            baseline = run;
        } else {
            EXPECT_EQ(run.res.status, baseline.res.status) << label << " tier " << t.name;
            EXPECT_EQ(run.res.message, baseline.res.message) << label << " tier " << t.name;
            if (run.res.ok() && baseline.res.ok()) {
                EXPECT_EQ(run.res.points, baseline.res.points) << label << " tier " << t.name;
                EXPECT_EQ(run.res.instructions, baseline.res.instructions)
                    << label << " tier " << t.name;
            }
            EXPECT_EQ(run.ctx.buffers.size(), baseline.ctx.buffers.size())
                << label << " tier " << t.name;
            for (const auto& [name, buf] : run.ctx.buffers) {
                const auto it = baseline.ctx.buffers.find(name);
                if (it == baseline.ctx.buffers.end()) {
                    ADD_FAILURE() << label << " tier " << t.name << ": extra buffer '" << name
                                  << "'";
                    continue;
                }
                EXPECT_TRUE(buf.bitwise_equal(it->second))
                    << label << " tier " << t.name << ": '" << name
                    << "' diverged from the reference engine";
            }
        }
        last = std::move(run);
    }
    return last;
}

/// Non-transient containers must be unchanged (within fp threshold) between
/// the original and transformed run.  Both sides first pass the full
/// execution-tier sweep (run_all_tiers), so the comparison below holds for
/// every tier at once.
/// `threshold` is the p-vs-q float tolerance: 1e-9 suits f64 storage; the
/// f32-bearing dtype schemes pass 1e-4 because passes that reassociate a
/// reduction (MapReduceFusion) legitimately shift f32-rounded partial sums
/// by a few float ulps.  Tier-vs-tier comparison stays bitwise regardless.
void expect_equivalent(const ir::SDFG& p, const ir::SDFG& q, const sym::Bindings& bindings,
                       const std::string& label, double threshold = 1e-9) {
    TierRun tp = run_all_tiers(p, bindings, 1234, label + " original");
    TierRun tq = run_all_tiers(q, bindings, 1234, label + " transformed");
    const auto& rp = tp.res;
    const auto& rq = tq.res;
    auto& cp = tp.ctx;
    auto& cq = tq.ctx;
    ASSERT_TRUE(rp.ok()) << label << " original: " << rp.message;
    ASSERT_TRUE(rq.ok()) << label << " transformed: " << rq.message;
    for (const auto& [name, desc] : p.containers()) {
        if (desc.transient) continue;
        if (!cp.buffers.count(name) || !cq.buffers.count(name)) continue;
        const auto mismatch =
            interp::compare_buffers(cp.buffers.at(name), cq.buffers.at(name), threshold);
        EXPECT_FALSE(mismatch.has_value())
            << label << ": '" << name << "' differs at " << (mismatch ? mismatch->flat_index : 0);
    }

    // Budget purity (docs/ARCHITECTURE.md determinism contract): re-running
    // each side under a point budget of exactly its own measured fuel must
    // still succeed, land bitwise-identical state, and burn identical
    // counters.  This is what lets budgets be part of the job key — an
    // enabled budget below the limit is unobservable, and exhaustion (one
    // point less would trip it) is a pure function of (program, inputs,
    // budget) across every execution tier the interpreter picks.
    interp::ExecConfig budget;
    budget.max_points = std::max<std::int64_t>({rp.points, rq.points, 1});
    budget.max_alloc_bytes = 1ll << 30;
    interp::Interpreter bp(budget), bq(budget);
    auto cbp = random_inputs(p, bindings, 1234);
    auto cbq = cbp;
    const auto rbp = bp.run(p, cbp);
    const auto rbq = bq.run(q, cbq);
    ASSERT_TRUE(rbp.ok()) << label << " budgeted original: " << rbp.message;
    ASSERT_TRUE(rbq.ok()) << label << " budgeted transformed: " << rbq.message;
    EXPECT_EQ(rbp.points, rp.points) << label;
    EXPECT_EQ(rbq.points, rq.points) << label;
    EXPECT_EQ(rbp.instructions, rp.instructions) << label;
    EXPECT_EQ(rbq.instructions, rq.instructions) << label;
    for (const auto& [name, desc] : p.containers()) {
        if (desc.transient) continue;
        if (!cp.buffers.count(name) || !cbp.buffers.count(name)) continue;
        EXPECT_TRUE(cbp.buffers.at(name).bitwise_equal(cp.buffers.at(name)))
            << label << ": budgeted original perturbed '" << name << "'";
        EXPECT_TRUE(cbq.buffers.at(name).bitwise_equal(cq.buffers.at(name)))
            << label << ": budgeted transformed perturbed '" << name << "'";
    }
}

class CorrectPassProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(CorrectPassProperty, PreservesSemanticsOnAllMatches) {
    const std::string kernel = GetParam();
    const sym::Bindings bindings = workloads::npbench_defaults();
    const auto passes = builtin_transformations({.table2_bugs = false});
    for (const auto& pass : passes) {
        if (pass->name() == "Vectorization") continue;  // input-dependent by design
        const ir::SDFG original = workloads::build_npbench_kernel(kernel);
        const auto matches = pass->find_matches(original);
        // Apply each match to a fresh copy: matches are positional and may
        // invalidate one another.
        for (std::size_t i = 0; i < matches.size(); ++i) {
            ir::SDFG transformed = original;
            ASSERT_NO_THROW(pass->apply(transformed, matches[i]))
                << kernel << " / " << pass->name();
            ASSERT_NO_THROW(transformed.validate()) << kernel << " / " << pass->name();
            expect_equivalent(original, transformed, bindings,
                              kernel + " / " + pass->name() + " #" + std::to_string(i));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Suite, CorrectPassProperty,
                         ::testing::Values("gemm", "atax", "mvt", "gesummv", "syrk",
                                           "jacobi_1d", "jacobi_2d", "hdiff", "l2norm",
                                           "go_fast", "compute", "scalar_pipeline", "ew_chain",
                                           "copy_pipeline", "alias_stages", "arc_distance",
                                           "unroll_candidates", "conv1d", "vadv_lite"));

/// Container-dtype rewrite schemes for the widened differential battery.
/// The kernels are authored with f64 floats; these schemes retype the
/// containers in place so the same 420-program oracle also exercises the
/// f32 conversion paths, the untagged i64 VM, and mixed-dtype kernels where
/// a single tasklet loads one family and stores another.
enum class DtypeScheme { F32, I64, Mixed };

const char* scheme_name(DtypeScheme s) {
    switch (s) {
        case DtypeScheme::F32: return "F32";
        case DtypeScheme::I64: return "I64";
        case DtypeScheme::Mixed: return "Mixed";
    }
    return "?";
}

/// Rewrites every container's dtype according to `scheme`:
///  * F32   — float containers become F32 (ints keep their type),
///  * I64   — int containers become I64 (floats keep their type, so tasklets
///            mix int loads with float math and int/float stores),
///  * Mixed — cycles {F64, F32, I64, I32} within each family in container
///            order, producing cross-dtype producer/consumer chains.
/// Families are preserved so arithmetic semantics (notably integer division
/// by a zero-valued input) cannot differ from the f64 battery; what changes
/// is purely the storage conversion surface the tiers must agree on.
void retype_containers(ir::SDFG& sdfg, DtypeScheme scheme) {
    int float_idx = 0, int_idx = 0;
    for (const auto& [name, desc] : sdfg.containers()) {
        ir::DataDesc& d = sdfg.container(name);
        const bool is_float = ir::dtype_is_float(d.dtype);
        switch (scheme) {
            case DtypeScheme::F32:
                if (is_float) d.dtype = ir::DType::F32;
                break;
            case DtypeScheme::I64:
                if (!is_float) d.dtype = ir::DType::I64;
                break;
            case DtypeScheme::Mixed:
                if (is_float)
                    d.dtype = (float_idx++ % 2 == 0) ? ir::DType::F64 : ir::DType::F32;
                else
                    d.dtype = (int_idx++ % 2 == 0) ? ir::DType::I64 : ir::DType::I32;
                break;
        }
    }
    // Direct IR mutation bypasses Transformation::apply, so warm plan caches
    // must be invalidated by hand (see PlanCache key docs).
    sdfg.bump_mutation_epoch();
}

/// The pass-preservation property again, but over retyped containers: every
/// correct-mode pass, applied to every match on every kernel, must preserve
/// semantics when the containers are f32 / widened-int / mixed-dtype — and
/// run_all_tiers inside expect_equivalent additionally pins all four
/// execution tiers to the reference engine bitwise for each such program.
class DtypeWidenedProperty
    : public ::testing::TestWithParam<std::tuple<std::string, DtypeScheme>> {};

TEST_P(DtypeWidenedProperty, PreservesSemanticsOnAllMatches) {
    const auto& [kernel, scheme] = GetParam();
    const sym::Bindings bindings = workloads::npbench_defaults();
    const auto passes = builtin_transformations({.table2_bugs = false});
    ir::SDFG original = workloads::build_npbench_kernel(kernel);
    retype_containers(original, scheme);
    ASSERT_NO_THROW(original.validate()) << kernel << " retyped " << scheme_name(scheme);
    for (const auto& pass : passes) {
        if (pass->name() == "Vectorization") continue;  // input-dependent by design
        const auto matches = pass->find_matches(original);
        for (std::size_t i = 0; i < matches.size(); ++i) {
            ir::SDFG transformed = original;
            ASSERT_NO_THROW(pass->apply(transformed, matches[i]))
                << kernel << " / " << pass->name();
            ASSERT_NO_THROW(transformed.validate()) << kernel << " / " << pass->name();
            const double threshold = scheme == DtypeScheme::I64 ? 1e-9 : 1e-4;
            expect_equivalent(original, transformed, bindings,
                              kernel + "[" + scheme_name(scheme) + "] / " + pass->name() +
                                  " #" + std::to_string(i),
                              threshold);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, DtypeWidenedProperty,
    ::testing::Combine(::testing::Values("gemm", "atax", "mvt", "gesummv", "syrk", "jacobi_1d",
                                         "jacobi_2d", "hdiff", "l2norm", "go_fast", "compute",
                                         "scalar_pipeline", "ew_chain", "copy_pipeline",
                                         "alias_stages", "arc_distance", "unroll_candidates",
                                         "conv1d", "vadv_lite"),
                       ::testing::Values(DtypeScheme::F32, DtypeScheme::I64,
                                         DtypeScheme::Mixed)),
    [](const ::testing::TestParamInfo<DtypeWidenedProperty::ParamType>& info) {
        return std::get<0>(info.param) + "_" + scheme_name(std::get<1>(info.param));
    });

/// Vectorization preserves semantics exactly on divisible sizes.
class VectorizationDivisibleProperty : public ::testing::TestWithParam<int> {};

TEST_P(VectorizationDivisibleProperty, ExactOnMultiplesOfWidth) {
    const int n = GetParam();
    ASSERT_EQ(n % 4, 0);
    const ir::SDFG original = ff::testing::make_scale_sdfg("o = i * 0.5 + 1.0");
    ir::SDFG transformed = original;
    Vectorization vec(4);
    const auto matches = vec.find_matches(transformed);
    ASSERT_EQ(matches.size(), 1u);
    vec.apply(transformed, matches[0]);
    expect_equivalent(original, transformed, {{"N", n}}, "vectorize N=" + std::to_string(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, VectorizationDivisibleProperty,
                         ::testing::Values(4, 8, 12, 16, 32));

}  // namespace
}  // namespace ff::xform
