#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/json.h"

namespace ff::common {
namespace {

TEST(Json, ScalarRoundTrip) {
    EXPECT_TRUE(Json::parse("null").is_null());
    EXPECT_EQ(Json::parse("true").as_bool(), true);
    EXPECT_EQ(Json::parse("false").as_bool(), false);
    EXPECT_EQ(Json::parse("42").as_int(), 42);
    EXPECT_EQ(Json::parse("-17").as_int(), -17);
    EXPECT_DOUBLE_EQ(Json::parse("2.5").as_double(), 2.5);
    EXPECT_DOUBLE_EQ(Json::parse("1e3").as_double(), 1000.0);
    EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, IntegersStayIntegers) {
    const Json j = Json::parse("9007199254740993");  // 2^53 + 1
    ASSERT_TRUE(j.is_int());
    EXPECT_EQ(j.as_int(), 9007199254740993LL);
}

TEST(Json, ContainerRoundTrip) {
    Json obj = Json::object();
    obj["name"] = "cutout";
    obj["count"] = 3;
    obj["ratio"] = 0.25;
    Json arr = Json::array();
    arr.push_back(Json(1));
    arr.push_back(Json("two"));
    arr.push_back(Json(nullptr));
    obj["items"] = std::move(arr);

    for (int indent : {-1, 2}) {
        const Json parsed = Json::parse(obj.dump(indent));
        EXPECT_EQ(parsed.at("name").as_string(), "cutout");
        EXPECT_EQ(parsed.at("count").as_int(), 3);
        EXPECT_DOUBLE_EQ(parsed.at("ratio").as_double(), 0.25);
        EXPECT_EQ(parsed.at("items").as_array().size(), 3u);
        EXPECT_TRUE(parsed.at("items").as_array()[2].is_null());
    }
}

TEST(Json, StringEscapes) {
    const std::string nasty = "line\nbreak\ttab \"quote\" back\\slash";
    const Json parsed = Json::parse(Json(nasty).dump());
    EXPECT_EQ(parsed.as_string(), nasty);
}

TEST(Json, ControlCharacterEscapes) {
    std::string s = "a";
    s += static_cast<char>(1);
    s += "b";
    EXPECT_EQ(Json::parse(Json(s).dump()).as_string(), s);
}

TEST(Json, NonFiniteDoubles) {
    EXPECT_TRUE(std::isnan(Json::parse(Json(std::nan("")).dump()).as_double()));
    EXPECT_TRUE(std::isinf(Json::parse(Json(HUGE_VAL).dump()).as_double()));
    EXPECT_LT(Json::parse(Json(-HUGE_VAL).dump()).as_double(), 0);
}

TEST(Json, DoublePrecisionRoundTrip) {
    const double values[] = {0.1, 1.0 / 3.0, 1e-300, 1e300, -2.2250738585072014e-308};
    for (double v : values)
        EXPECT_DOUBLE_EQ(Json::parse(Json(v).dump()).as_double(), v);
}

TEST(Json, ParseErrors) {
    EXPECT_THROW(Json::parse(""), ParseError);
    EXPECT_THROW(Json::parse("{"), ParseError);
    EXPECT_THROW(Json::parse("[1,]"), ParseError);
    EXPECT_THROW(Json::parse("{\"a\" 1}"), ParseError);
    EXPECT_THROW(Json::parse("tru"), ParseError);
    EXPECT_THROW(Json::parse("1 2"), ParseError);
    EXPECT_THROW(Json::parse("\"unterminated"), ParseError);
}

TEST(Json, MissingKeyThrows) {
    const Json obj = Json::parse("{\"a\": 1}");
    EXPECT_EQ(obj.at("a").as_int(), 1);
    EXPECT_THROW(obj.at("b"), ParseError);
    EXPECT_TRUE(obj.contains("a"));
    EXPECT_FALSE(obj.contains("b"));
}

TEST(Json, NestedStructures) {
    const Json j = Json::parse(R"({"a": {"b": [{"c": [1, 2, {"d": true}]}]}})");
    EXPECT_TRUE(j.at("a").at("b").as_array()[0].at("c").as_array()[2].at("d").as_bool());
}

}  // namespace
}  // namespace ff::common
