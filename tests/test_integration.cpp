// End-to-end integration tests: the full FuzzyFlow pipeline on the paper's
// case studies (scaled down for CI budgets; the bench binaries run the
// paper-sized versions).
#include <gtest/gtest.h>

#include "common/error.h"

#include "core/fuzzer.h"
#include "core/report.h"
#include "helpers.h"
#include "transforms/gpu_kernel_extraction.h"
#include "transforms/loop_unrolling.h"
#include "transforms/map_tiling.h"
#include "transforms/write_elimination.h"
#include "transforms/registry.h"
#include "workloads/cloudsc.h"
#include "workloads/npbench.h"
#include "workloads/sddmm.h"

namespace ff::core {
namespace {

FuzzConfig audit_config() {
    FuzzConfig config;
    config.max_trials = 8;
    config.diff.exec.max_state_transitions = 2000;
    config.sampler.size_max = 6;
    config.cutout.defaults = workloads::npbench_defaults();
    return config;
}

TEST(Integration, MiniTable2Audit) {
    // A 6-kernel slice of the Sec. 6.3 audit with the Table 2 bug set.
    const std::vector<std::string> kernels = {"gemm",       "ew_chain",       "l2norm",
                                              "alias_stages", "scalar_pipeline", "jacobi_1d"};
    Fuzzer fuzzer(audit_config());
    const auto passes = xform::builtin_transformations({.table2_bugs = true});

    std::vector<FuzzReport> reports;
    for (const auto& name : kernels) {
        const ir::SDFG p = workloads::build_npbench_kernel(name);
        for (const auto& r : fuzzer.audit(p, passes)) reports.push_back(r);
    }
    ASSERT_FALSE(reports.empty());
    const auto summaries = summarize_audit(reports);

    std::map<std::string, int> failures;
    for (const auto& s : summaries) failures[s.transformation] = s.failures;

    // Correct passes never fail.
    EXPECT_EQ(failures["MapTiling"], 0);
    EXPECT_EQ(failures["MapFusion"], 0);
    EXPECT_EQ(failures["WriteElimination"], 0);
    EXPECT_EQ(failures["LoopUnrolling"], 0);
    // Planted bugs are all caught at least once.
    EXPECT_GT(failures["Vectorization"], 0);
    EXPECT_GT(failures["TaskletFusion[bug:ignores-downstream-reads]"], 0);
    EXPECT_GT(failures["BufferTiling[bug:reversed-offset]"], 0);
    EXPECT_GT(failures["MapExpansion[bug:dangling-exit]"], 0);
    EXPECT_GT(failures["MapReduceFusion[bug:stale-access-node]"], 0);
    EXPECT_GT(failures["StateAssignElimination[bug:next-state-only]"], 0);
    EXPECT_GT(failures["SymbolAliasPromotion[bug:interstate-only]"], 0);
}

TEST(Integration, CleanRegistryPassesEverywhere) {
    // With bugs disabled, no pass except the inherently input-dependent
    // Vectorization may fail anywhere on the mini suite.
    const std::vector<std::string> kernels = {"gemm", "ew_chain", "l2norm", "alias_stages"};
    Fuzzer fuzzer(audit_config());
    const auto passes = xform::builtin_transformations({.table2_bugs = false});
    for (const auto& name : kernels) {
        const ir::SDFG p = workloads::build_npbench_kernel(name);
        for (const auto& r : fuzzer.audit(p, passes)) {
            if (r.transformation == "Vectorization") continue;
            EXPECT_FALSE(r.failed())
                << name << " / " << r.transformation << ": " << r.detail;
        }
    }
}

TEST(Integration, CloudscGpuExtractionShape) {
    // Scaled-down Sec. 6.4: partial/RMW kernels fail, full-write kernels
    // pass, each failure found in very few trials.
    workloads::CloudscConfig config;
    config.gpu_kernels = 8;
    config.gpu_partial_or_rmw = 5;
    const ir::SDFG p = workloads::build_cloudsc(workloads::CloudscPart::GpuKernels, config);

    FuzzConfig fc;
    fc.max_trials = 8;
    fc.cutout.defaults = workloads::cloudsc_defaults(8);
    fc.sampler.size_max = 8;
    Fuzzer fuzzer(fc);
    xform::GpuKernelExtraction buggy(xform::GpuKernelExtraction::Variant::NoOutputCopyIn);

    int failures = 0, trials_on_failures = 0;
    const auto matches = buggy.find_matches(p);
    EXPECT_EQ(matches.size(), 8u);
    for (const auto& m : matches) {
        const FuzzReport r = fuzzer.test_instance(p, buggy, m);
        if (r.failed()) {
            ++failures;
            trials_on_failures += r.trials;
        }
    }
    EXPECT_EQ(failures, 5);
    // "This test case took only one trial ... all other invalid instances
    // were similarly uncovered after 1-2 fuzzing trials each."
    EXPECT_LE(trials_on_failures, 2 * failures);
}

TEST(Integration, CloudscUnrollOnlyNegativeStepFails) {
    workloads::CloudscConfig config;
    config.unroll_loops = 5;
    config.negative_step_loops = 1;
    const ir::SDFG p = workloads::build_cloudsc(workloads::CloudscPart::UnrollLoops, config);

    FuzzConfig fc;
    fc.max_trials = 4;
    fc.cutout.defaults = workloads::cloudsc_defaults(8);
    Fuzzer fuzzer(fc);
    xform::LoopUnrolling buggy(xform::LoopUnrolling::Variant::PositiveStepFormula);
    int failures = 0;
    for (const auto& m : buggy.find_matches(p))
        failures += fuzzer.test_instance(p, buggy, m).failed() ? 1 : 0;
    EXPECT_EQ(failures, 1);
}

TEST(Integration, CloudscWriteEliminationOnlyLateReadFails) {
    workloads::CloudscConfig config;
    config.copy_maps = 10;
    config.copies_read_later = 1;
    const ir::SDFG p = workloads::build_cloudsc(workloads::CloudscPart::CopyChains, config);

    FuzzConfig fc;
    fc.max_trials = 4;
    fc.cutout.defaults = workloads::cloudsc_defaults(8);
    Fuzzer fuzzer(fc);
    xform::WriteElimination buggy(xform::WriteElimination::Variant::CurrentStateOnly);
    int failures = 0;
    for (const auto& m : buggy.find_matches(p))
        failures += fuzzer.test_instance(p, buggy, m).failed() ? 1 : 0;
    EXPECT_EQ(failures, 1);
}

TEST(Integration, SddmmCutoutExcludesCommunication) {
    // Sec. 6.2: a cutout of the dense contraction in the distributed SDDMM
    // contains no communication nodes; the gathered operand becomes a plain
    // input.
    const ir::SDFG p = workloads::build_sddmm();
    xform::MapTiling tiling(4, xform::MapTiling::Variant::Correct);
    const auto matches = tiling.find_matches(p);
    const xform::Match* mm = nullptr;
    for (const auto& m : matches)
        if (m.description.find("sddmm_mm'") != std::string::npos) mm = &m;
    ASSERT_NE(mm, nullptr);

    CutoutOptions opts;
    opts.defaults = workloads::sddmm_defaults(4, 3, 4, /*ranks=*/1);
    const Cutout cutout = extract_cutout(p, tiling.affected_nodes(p, *mm), opts);
    for (ir::StateId sid : cutout.program.states())
        for (ir::NodeId n : cutout.program.state(sid).graph().nodes())
            EXPECT_NE(cutout.program.state(sid).graph().node(n).kind, ir::NodeKind::Comm);
    // The gathered matrix (via its transpose) is exposed as an input.
    EXPECT_TRUE(cutout.input_config.count("Bt"));
    EXPECT_FALSE(cutout.program.has_container("B_local"));

    // Fuzzing the instance on a single node passes for the correct pass.
    FuzzConfig fc;
    fc.max_trials = 6;
    fc.cutout.defaults = opts.defaults;
    fc.sampler.size_max = 5;
    Fuzzer fuzzer(fc);
    const FuzzReport report = fuzzer.test_instance(p, tiling, *mm);
    EXPECT_EQ(report.verdict, Verdict::Pass) << report.detail;
}

TEST(Integration, MinCutNeverIncreasesInputVolume) {
    // Property over the suite: enabling the min-cut can only shrink the
    // sampled input volume, never grow it.
    Fuzzer with_cut(audit_config());
    FuzzConfig no_cut_cfg = audit_config();
    no_cut_cfg.use_mincut = false;
    Fuzzer without_cut(no_cut_cfg);

    xform::MapTiling tiling(4, xform::MapTiling::Variant::Correct);
    for (const auto& name : {"gemm", "mlp", "covariance"}) {
        const ir::SDFG p = workloads::build_npbench_kernel(name);
        const auto matches = tiling.find_matches(p);
        if (matches.empty()) continue;
        const FuzzReport a = with_cut.test_instance(p, tiling, matches[0]);
        const FuzzReport b = without_cut.test_instance(p, tiling, matches[0]);
        EXPECT_LE(a.input_volume, b.input_volume) << name;
    }
}

}  // namespace
}  // namespace ff::core
