// Parallel trial engine + interned symbol layer.
//
// The contract under test: any thread count produces byte-identical fuzzing
// results (verdicts, trial counts, failure details, reproducer artifacts),
// because trial inputs are a pure function of (seed, trial index) and
// aggregation replays canonical trial order; and the shared plan cache +
// interned symbol table are safe to use from concurrent interpreters (this
// file doubles as the TSan target — see the FF_SANITIZE=thread CI job).
#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "core/fuzzer.h"
#include "core/report.h"
#include "helpers.h"
#include "interp/plan_cache.h"
#include "symbolic/interned.h"
#include "transforms/map_tiling.h"
#include "transforms/registry.h"
#include "workloads/matchain.h"

namespace ff {
namespace {

using ff::testing::make_buffer;
using ff::testing::make_scale_sdfg;
using ff::testing::to_vector;

// --- Interned symbol layer ---------------------------------------------------

TEST(SymbolTable, InternAssignsDenseStableIds) {
    sym::SymbolTable tab;
    const sym::SymId n = tab.intern("N");
    const sym::SymId i = tab.intern("i");
    EXPECT_NE(n, i);
    EXPECT_EQ(tab.intern("N"), n);  // idempotent
    EXPECT_EQ(tab.find("i"), i);
    EXPECT_EQ(tab.find("missing"), sym::kNoSym);
    EXPECT_EQ(tab.name(n), "N");
    EXPECT_EQ(tab.size(), 2u);
}

TEST(CompiledExpr, MatchesTreeEvaluation) {
    using sym::cst;
    using sym::symb;
    const sym::ExprPtr n = symb("N"), i = symb("i"), j = symb("j");
    const std::vector<sym::ExprPtr> exprs = {
        cst(7),
        i,
        n * i + j,
        (i + 1) * cst(3) - n,
        sym::floordiv(i - 5, cst(3)),
        sym::mod(i - 5, cst(3)),
        sym::min(n, i + j),
        sym::max(n - 1, sym::floordiv(n, i + 1)),
    };
    const sym::Bindings bindings{{"N", 12}, {"i", -4}, {"j", 9}};

    sym::SymbolTable tab;
    sym::FlatBindings flat;
    sym::EvalStack stack;
    for (const auto& e : exprs) {
        std::vector<sym::SymId> used;
        const sym::CompiledExpr ce = sym::CompiledExpr::lower(e, tab, &used);
        flat.reset(tab.size());
        for (const auto& [name, value] : bindings) {
            const sym::SymId id = tab.find(name);
            if (id != sym::kNoSym) flat.bind(id, value);
        }
        EXPECT_EQ(ce.eval(flat, stack), e->evaluate(bindings)) << e->to_string();
    }
}

TEST(CompiledExpr, UnboundSymbolRaisesWithName) {
    sym::SymbolTable tab;
    const sym::CompiledExpr ce = sym::CompiledExpr::lower(sym::symb("Q") + 1, tab);
    sym::FlatBindings flat;
    flat.reset(tab.size());
    sym::EvalStack stack;
    try {
        ce.eval(flat, stack);
        FAIL() << "expected UnboundSymbolError";
    } catch (const common::UnboundSymbolError& e) {
        EXPECT_EQ(e.symbol(), "Q");
    }
}

TEST(TrialSeed, PureFunctionOfSeedAndIndex) {
    EXPECT_EQ(common::trial_seed(42, 7), common::trial_seed(42, 7));
    EXPECT_NE(common::trial_seed(42, 7), common::trial_seed(42, 8));
    EXPECT_NE(common::trial_seed(42, 7), common::trial_seed(43, 7));
}

// --- Plan cache: epoch invalidation and cross-thread sharing -----------------

TEST(PlanCache, WarmInterpreterSurvivesTransformation) {
    ir::SDFG p = make_scale_sdfg();
    interp::Interpreter interp;

    interp::Context before;
    before.symbols["N"] = 4;
    before.buffers.emplace("x", make_buffer({1, 2, 3, 4}));
    ASSERT_TRUE(interp.run(p, before).ok());
    EXPECT_EQ(to_vector(before.buffers.at("y")), (std::vector<double>{2, 4, 6, 8}));

    // Mutate the graph in place; Transformation::apply bumps the mutation
    // epoch, so the same warm interpreter rebuilds plans instead of
    // executing stale ones.
    xform::MapTiling tiling(2, xform::MapTiling::Variant::Correct);
    const auto matches = tiling.find_matches(p);
    ASSERT_FALSE(matches.empty());
    const std::uint64_t epoch_before = p.mutation_epoch();
    tiling.apply(p, matches[0]);
    EXPECT_GT(p.mutation_epoch(), epoch_before);

    interp::Context after;
    after.symbols["N"] = 4;
    after.buffers.emplace("x", make_buffer({1, 2, 3, 4}));
    ASSERT_TRUE(interp.run(p, after).ok());
    EXPECT_EQ(to_vector(after.buffers.at("y")), (std::vector<double>{2, 4, 6, 8}));
}

TEST(PlanCache, CopiedSdfgGetsFreshPlanIdentity) {
    const ir::SDFG p = make_scale_sdfg();
    const ir::SDFG q = p;
    EXPECT_NE(p.plan_uid(), q.plan_uid());
    EXPECT_EQ(p.mutation_epoch(), q.mutation_epoch());
}

TEST(PlanCache, SharedAcrossConcurrentInterpreters) {
    const ir::SDFG p = make_scale_sdfg();
    auto cache = std::make_shared<interp::PlanCache>();
    constexpr int kThreads = 8;

    std::vector<std::vector<double>> results(kThreads);
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            // Per-thread interpreter + context; shared immutable SDFG and
            // plan cache.  The race check for plan building and symbol
            // interning (run under -fsanitize=thread in CI).
            interp::Interpreter interp(interp::ExecConfig{}, cache);
            interp::Context ctx;
            ctx.symbols["N"] = 3;
            const double base = static_cast<double>(t + 1);
            ctx.buffers.emplace("x", make_buffer({base, base + 1, base + 2}));
            if (interp.run(p, ctx).ok()) results[static_cast<std::size_t>(t)] =
                to_vector(ctx.buffers.at("y"));
        });
    }
    for (auto& th : pool) th.join();
    for (int t = 0; t < kThreads; ++t) {
        const double base = static_cast<double>(t + 1);
        EXPECT_EQ(results[static_cast<std::size_t>(t)],
                  (std::vector<double>{2 * base, 2 * (base + 1), 2 * (base + 2)}))
            << "thread " << t;
    }
}

TEST(PlanCache, AllocationInsideInternedScopeSeesShadowingParam) {
    // A transient whose shape references a symbol that a map parameter
    // shadows: allocation happens lazily inside the (pure, interned) scope,
    // and must resolve the shape with the parameter's current value — like
    // the legacy engine, which wrote parameters into ctx.symbols — not with
    // the stale outer binding.
    ir::SDFG p("shadow");
    p.add_symbol("N");
    p.add_symbol("i");  // free symbol with the same name as the map param
    const sym::ExprPtr n = sym::symb("N");
    p.add_array("x", ir::DType::F64, {n});
    p.add_array("T", ir::DType::F64, {sym::symb("i") + 3}, /*transient=*/true);
    ir::State& st = p.state(p.add_state("main", true));
    const ir::NodeId x = st.add_access("x");
    auto [entry, exit] = st.add_map("m", {"i"}, {ir::Range::span(sym::cst(0), n - 1)});
    const ir::NodeId t = st.add_tasklet("m", "o = v * 2.0");
    const ir::NodeId tacc = st.add_access("T");
    const ir::Subset point({ir::Range::index(sym::symb("i"))});
    st.add_edge(x, "", entry, "", ir::Memlet("x", ir::Subset::full({n})));
    st.add_edge(entry, "", t, "v", ir::Memlet("x", point));
    st.add_edge(t, "o", exit, "", ir::Memlet("T", point));
    st.add_edge(exit, "", tacc, "", ir::Memlet("T", ir::Subset({ir::Range::span(sym::cst(0), n - 1)})));
    p.validate();

    for (const bool compiled : {true, false}) {
        interp::ExecConfig cfg;
        cfg.use_compiled_tasklets = compiled;
        interp::Interpreter interp(cfg);
        interp::Context ctx;
        ctx.symbols = {{"N", 3}, {"i", 5}};  // outer 'i' must be shadowed
        ctx.buffers.emplace("x", make_buffer({1, 2, 3}));
        const interp::ExecResult res = interp.run(p, ctx);
        ASSERT_TRUE(res.ok()) << res.message;
        // First touch is at i = 0: size 3 (i + 3), not 8 (outer i = 5).
        EXPECT_EQ(ctx.buffers.at("T").size(), 3) << "compiled=" << compiled;
        EXPECT_EQ(to_vector(ctx.buffers.at("T")), (std::vector<double>{2, 4, 6}));
    }
}

// --- Cross-thread determinism of the fuzzer ----------------------------------

core::FuzzConfig quick_config(std::int64_t default_n = 8) {
    core::FuzzConfig config;
    config.max_trials = 20;
    config.sampler.size_max = 8;
    config.cutout.defaults = {{"N", default_n}};
    return config;
}

std::string read_file(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    if (!f) return "";
    std::string text;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, got);
    std::fclose(f);
    return text;
}

/// Everything that must be identical across thread counts.
void expect_reports_identical(const core::FuzzReport& a, const core::FuzzReport& b,
                              const std::string& what) {
    EXPECT_EQ(a.verdict, b.verdict) << what;
    EXPECT_EQ(a.trials, b.trials) << what;
    EXPECT_EQ(a.uninteresting, b.uninteresting) << what;
    EXPECT_EQ(a.detail, b.detail) << what;
    EXPECT_EQ(a.cutout_nodes, b.cutout_nodes) << what;
    EXPECT_EQ(a.input_volume, b.input_volume) << what;
}

TEST(ParallelFuzzer, PassingInstanceIdenticalAt1_2_8Threads) {
    const ir::SDFG p = make_scale_sdfg();
    xform::MapTiling tiling(4, xform::MapTiling::Variant::Correct);
    const auto matches = tiling.find_matches(p);
    ASSERT_EQ(matches.size(), 1u);

    std::vector<core::FuzzReport> reports;
    for (const int threads : {1, 2, 8}) {
        core::FuzzConfig config = quick_config();
        config.num_threads = threads;
        core::Fuzzer fuzzer(config);
        reports.push_back(fuzzer.test_instance(p, tiling, matches[0]));
        EXPECT_EQ(reports.back().verdict, core::Verdict::Pass) << reports.back().detail;
        EXPECT_EQ(reports.back().trials, config.max_trials);
        EXPECT_EQ(reports.back().threads, threads);
    }
    expect_reports_identical(reports[0], reports[1], "1 vs 2 threads");
    expect_reports_identical(reports[0], reports[2], "1 vs 8 threads");
}

TEST(ParallelFuzzer, FailingInstanceIdenticalFirstFailureAndArtifact) {
    const ir::SDFG p = make_scale_sdfg();
    xform::MapTiling buggy(4, xform::MapTiling::Variant::NoRemainder);
    const auto matches = buggy.find_matches(p);
    ASSERT_EQ(matches.size(), 1u);

    std::vector<core::FuzzReport> reports;
    std::vector<std::string> artifacts;
    for (const int threads : {1, 2, 8}) {
        core::FuzzConfig config = quick_config();
        config.num_threads = threads;
        config.artifact_dir = ::testing::TempDir();
        core::Fuzzer fuzzer(config);
        reports.push_back(fuzzer.test_instance(p, buggy, matches[0]));
        ASSERT_TRUE(reports.back().failed());
        ASSERT_FALSE(reports.back().artifact_path.empty());
        artifacts.push_back(read_file(reports.back().artifact_path));
    }
    expect_reports_identical(reports[0], reports[1], "1 vs 2 threads");
    expect_reports_identical(reports[0], reports[2], "1 vs 8 threads");
    // The reproducer (failing trial's inputs + both graphs) is byte-stable:
    // the lowest-indexed failing trial wins at any thread count.
    EXPECT_EQ(artifacts[0], artifacts[1]);
    EXPECT_EQ(artifacts[0], artifacts[2]);
}

TEST(ParallelFuzzer, SemanticsBugOnMatrixChainIdenticalAcrossThreads) {
    const ir::SDFG p = workloads::build_matrix_chain();
    xform::MapTiling buggy(4, xform::MapTiling::Variant::OffByOne);
    const auto matches = buggy.find_matches(p);
    const xform::Match* mm2 = nullptr;
    for (const auto& m : matches)
        if (m.description.find("'mm2'") != std::string::npos) mm2 = &m;
    ASSERT_NE(mm2, nullptr);

    core::FuzzConfig config = quick_config(6);
    config.sampler.size_max = 6;
    std::vector<core::FuzzReport> reports;
    for (const int threads : {1, 4}) {
        config.num_threads = threads;
        core::Fuzzer fuzzer(config);
        reports.push_back(fuzzer.test_instance(p, buggy, *mm2));
        EXPECT_EQ(reports.back().verdict, core::Verdict::SemanticsChanged)
            << reports.back().detail;
    }
    expect_reports_identical(reports[0], reports[1], "1 vs 4 threads");
}

TEST(ParallelFuzzer, FullAuditByteIdenticalAcrossThreads) {
    const ir::SDFG p = workloads::build_matrix_chain();
    const auto passes = xform::builtin_transformations();

    auto run_audit = [&](int threads) {
        core::FuzzConfig config = quick_config(6);
        config.sampler.size_max = 6;
        config.max_trials = 10;
        config.num_threads = threads;
        core::Fuzzer fuzzer(config);
        return fuzzer.audit(p, passes);
    };
    const auto seq = run_audit(1);
    const auto par = run_audit(4);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_EQ(seq[i].transformation, par[i].transformation);
        EXPECT_EQ(seq[i].match_description, par[i].match_description);
        expect_reports_identical(seq[i], par[i], seq[i].transformation + " instance " +
                                                     std::to_string(i));
    }
}

TEST(ParallelFuzzer, ReferenceEngineAlsoDeterministicAcrossThreads) {
    // The string-keyed legacy engine runs trials through the same pool.
    const ir::SDFG p = make_scale_sdfg();
    xform::MapTiling buggy(4, xform::MapTiling::Variant::NoRemainder);
    const auto matches = buggy.find_matches(p);
    std::vector<core::FuzzReport> reports;
    for (const int threads : {1, 4}) {
        core::FuzzConfig config = quick_config();
        config.diff.exec.use_compiled_tasklets = false;
        config.num_threads = threads;
        core::Fuzzer fuzzer(config);
        reports.push_back(fuzzer.test_instance(p, buggy, matches[0]));
        ASSERT_TRUE(reports.back().failed());
    }
    expect_reports_identical(reports[0], reports[1], "reference engine 1 vs 4 threads");
}

TEST(Report, AuditTableShowsThreadsColumn) {
    core::FuzzReport r;
    r.transformation = "X";
    r.verdict = core::Verdict::Pass;
    r.threads = 8;
    const auto summaries = core::summarize_audit({r});
    ASSERT_EQ(summaries.size(), 1u);
    EXPECT_EQ(summaries[0].threads, 8);
    const std::string table = core::audit_table(summaries);
    EXPECT_NE(table.find("Threads"), std::string::npos);
}

}  // namespace
}  // namespace ff
