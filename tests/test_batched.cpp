// Batched segment tier: adversarial shapes for the vertical (SIMD-friendly)
// kernel VM.
//
// The contract under test: segment batching (ExecConfig::batch_segments) is
// a pure execution-strategy choice layered on top of specialization.  For
// any program the batched tier must produce results byte-identical to the
// per-point kernel loop, the generic compiled VM, and the reference AST
// engine — same buffers bit for bit, same error/resource messages, same
// cost counters.  This file attacks the batching machinery where it could
// plausibly diverge: degenerate and empty extents, non-unit outer strides,
// tails that do not fill a tile, resource budgets that a segment would
// cross, IEEE special payloads, and in-place aliasing that makes vertical
// execution illegal (the alias check must route those launches back to the
// per-point loop, not produce reordered stores).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/error.h"
#include "helpers.h"
#include "interp/interpreter.h"
#include "interp/plan_cache.h"
#include "ir/subset.h"

namespace ff {
namespace {

using ff::testing::make_buffer;
using ff::testing::make_chain_sdfg;
using ff::testing::make_scale_sdfg;

struct TierOut {
    interp::ExecResult res;
    interp::Context ctx;
    interp::SpecStats stats;
};

TierOut run_cfg(const ir::SDFG& p, const interp::Context& inputs, bool compiled,
                bool specialize, bool batch, std::int64_t max_points = 0) {
    interp::ExecConfig cfg;
    cfg.use_compiled_tasklets = compiled;
    cfg.specialize = specialize;
    cfg.batch_segments = batch;
    if (max_points > 0) {
        cfg.max_points = max_points;
        cfg.max_alloc_bytes = 1ll << 30;
    }
    interp::Interpreter interp(cfg);
    TierOut out{interp::ExecResult{}, inputs, interp::SpecStats{}};
    out.res = interp.run(p, out.ctx);
    out.stats = interp.plan_cache()->spec_stats();
    return out;
}

/// Bitwise context equality (same buffer names, dtypes, shapes, bytes) plus
/// identical status/message.  `nan_equiv` loosens only NaN payload bits —
/// needed against the reference AST engine, whose instruction selection may
/// legally propagate a different NaN than the bytecode VM.
void expect_same(const TierOut& a, const TierOut& b, const std::string& what,
                 bool nan_equiv = false) {
    EXPECT_EQ(a.res.status, b.res.status) << what;
    EXPECT_EQ(a.res.message, b.res.message) << what;
    if (a.res.ok() && b.res.ok()) {
        EXPECT_EQ(a.res.points, b.res.points) << what;
        EXPECT_EQ(a.res.instructions, b.res.instructions) << what;
    }
    ASSERT_EQ(a.ctx.buffers.size(), b.ctx.buffers.size()) << what;
    auto ita = a.ctx.buffers.begin();
    auto itb = b.ctx.buffers.begin();
    for (; ita != a.ctx.buffers.end(); ++ita, ++itb) {
        ASSERT_EQ(ita->first, itb->first) << what;
        if (!nan_equiv) {
            EXPECT_TRUE(ita->second.bitwise_equal(itb->second))
                << what << ": buffer '" << ita->first << "' differs";
            continue;
        }
        ASSERT_EQ(ita->second.dtype(), itb->second.dtype()) << what;
        ASSERT_EQ(ita->second.shape(), itb->second.shape()) << what;
        for (std::int64_t i = 0; i < ita->second.size(); ++i) {
            const double x = ita->second.load_double(i);
            const double y = itb->second.load_double(i);
            if (std::isnan(x) && std::isnan(y)) continue;
            EXPECT_EQ(std::memcmp(&x, &y, sizeof(double)), 0)
                << what << ": '" << ita->first << "' differs at " << i;
        }
    }
}

/// Runs all four tiers on the same inputs and requires batched == per-point
/// == generic bitwise, and == reference modulo NaN payloads.  Returns the
/// batched run for extra assertions.
TierOut expect_all_tiers_agree(const ir::SDFG& p, const interp::Context& inputs,
                               const std::string& what, std::int64_t max_points = 0) {
    const TierOut batched = run_cfg(p, inputs, true, true, true, max_points);
    const TierOut perpoint = run_cfg(p, inputs, true, true, false, max_points);
    const TierOut generic = run_cfg(p, inputs, true, false, false, max_points);
    const TierOut reference = run_cfg(p, inputs, false, false, false, max_points);
    expect_same(batched, perpoint, what + " (batched vs per-point)");
    expect_same(batched, generic, what + " (batched vs generic)");
    expect_same(batched, reference, what + " (batched vs reference)", /*nan_equiv=*/true);
    return batched;
}

interp::Context scale_inputs(std::int64_t n) {
    interp::Context ctx;
    ctx.symbols["N"] = n;
    std::vector<double> xv(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
        xv[static_cast<std::size_t>(i)] = 0.25 * static_cast<double>(i) - 3.0;
    ctx.buffers.emplace("x", make_buffer(xv));
    return ctx;
}

// --- Segment shapes -----------------------------------------------------------

TEST(Batched, FlatScaleRunsOneSegmentLaunch) {
    const ir::SDFG p = make_scale_sdfg("o = i * 2.0 + 1.0");
    const TierOut batched = expect_all_tiers_agree(p, scale_inputs(1000), "scale N=1000");
    EXPECT_EQ(batched.stats.scopes_specialized, 1);
    EXPECT_EQ(batched.stats.scopes_segmented, 1);
    EXPECT_EQ(batched.stats.kernel_launches, 1);
    EXPECT_EQ(batched.stats.segment_launches, 1);
    // With batching disabled, classification is unchanged but no segment runs.
    const TierOut perpoint = run_cfg(p, scale_inputs(1000), true, true, false);
    EXPECT_EQ(perpoint.stats.scopes_segmented, 1);
    EXPECT_EQ(perpoint.stats.segment_launches, 0);
    EXPECT_EQ(perpoint.stats.kernel_launches, 1);
}

TEST(Batched, LengthOneExtentTakesPerPointPath) {
    // seg_len == 1: batching would be pure overhead; the launch must commit
    // through the per-point loop and stay byte-identical.
    const ir::SDFG p = make_scale_sdfg("o = i * 2.0 + 1.0");
    const TierOut batched = expect_all_tiers_agree(p, scale_inputs(1), "scale N=1");
    EXPECT_EQ(batched.stats.kernel_launches, 1);
    EXPECT_EQ(batched.stats.segment_launches, 0);
}

TEST(Batched, EmptyExtentExecutesNoPoints) {
    const ir::SDFG p = make_scale_sdfg("o = i * 2.0 + 1.0");
    const TierOut batched = expect_all_tiers_agree(p, scale_inputs(0), "scale N=0");
    EXPECT_TRUE(batched.res.ok());
    EXPECT_EQ(batched.res.points, 0);
    EXPECT_EQ(batched.stats.segment_launches, 0);
}

TEST(Batched, UnalignedTailsAndTileBoundaries) {
    // The tile size of the vertical VM is 256: exercise below, exactly at,
    // one-past, and well-past the boundary, plus a prime straddle.
    const ir::SDFG p = make_scale_sdfg("t = i * i; o = sqrt(t + 1.0) - i * 0.5");
    for (const std::int64_t n : {7ll, 255ll, 256ll, 257ll, 509ll, 768ll}) {
        const TierOut batched =
            expect_all_tiers_agree(p, scale_inputs(n), "tail N=" + std::to_string(n));
        EXPECT_EQ(batched.stats.segment_launches, 1) << n;
    }
}

TEST(Batched, BranchyTaskletNeverSegments) {
    // A ternary compiles to conditional jumps; the batch VMs are
    // straight-line only, so the scope must stay per-point (and still match
    // every tier bitwise).
    const ir::SDFG p = make_scale_sdfg("t = i * i; o = t > 4.0 ? sqrt(t) : t * 0.5");
    const TierOut batched = expect_all_tiers_agree(p, scale_inputs(600), "branchy");
    EXPECT_EQ(batched.stats.scopes_specialized, 1);
    EXPECT_EQ(batched.stats.scopes_segmented, 0);
    EXPECT_EQ(batched.stats.segment_launches, 0);
    EXPECT_EQ(batched.stats.kernel_launches, 1);
}

TEST(Batched, NonUnitOuterStrideAdvancesSegmentsCorrectly) {
    // Outer param walks rows 0,2,4,6 of an 8x300 array (stride-2 iteration),
    // inner param is the contiguous 300-wide segment.  The outer odometer
    // advance must land each segment on the right row.
    ir::SDFG p("strided_rows");
    p.add_array("x", ir::DType::F64, {sym::cst(8), sym::cst(300)});
    p.add_array("y", ir::DType::F64, {sym::cst(8), sym::cst(300)});
    ir::State& st = p.state(p.add_state("main", true));
    const ir::NodeId x = st.add_access("x");
    auto [entry, exit] = st.add_map(
        "m", {"i", "j"},
        {ir::Range{sym::cst(0), sym::cst(6), sym::cst(2)}, ir::Range::full(sym::cst(300))});
    const ir::NodeId t = st.add_tasklet("t", "o = i * 1.5 + 1.0");
    const ir::NodeId y = st.add_access("y");
    const ir::Subset point{{ir::Range::index(sym::symb("i")), ir::Range::index(sym::symb("j"))}};
    st.add_edge(x, "", entry, "", ir::Memlet("x", ir::Subset::full({sym::cst(8), sym::cst(300)})));
    st.add_edge(entry, "", t, "i", ir::Memlet("x", point));
    st.add_edge(t, "o", exit, "", ir::Memlet("y", point));
    st.add_edge(exit, "", y, "", ir::Memlet("y", ir::Subset::full({sym::cst(8), sym::cst(300)})));

    interp::Context inputs;
    interp::Buffer xv(ir::DType::F64, {8, 300});
    for (std::int64_t i = 0; i < xv.size(); ++i)
        xv.store(i, interp::Value::from_double(0.125 * static_cast<double>(i % 97) - 2.0));
    inputs.buffers.emplace("x", std::move(xv));
    const TierOut batched = expect_all_tiers_agree(p, inputs, "strided rows");
    EXPECT_EQ(batched.stats.segment_launches, 1);
    EXPECT_EQ(batched.res.points, 4 * 300);
}

// --- Dtype coverage of the segment VMs ----------------------------------------

TEST(Batched, IntSegmentsUseTheI64VM) {
    ir::SDFG p = make_scale_sdfg("o = i * 2 + 1");
    p.container("x").dtype = ir::DType::I64;
    p.container("y").dtype = ir::DType::I64;
    p.bump_mutation_epoch();

    interp::Context inputs;
    inputs.symbols["N"] = 700;
    interp::Buffer xv(ir::DType::I64, {700});
    for (std::int64_t i = 0; i < 700; ++i) xv.store(i, interp::Value::from_int(i - 350));
    inputs.buffers.emplace("x", std::move(xv));

    const TierOut batched = expect_all_tiers_agree(p, inputs, "i64 scale");
    EXPECT_EQ(batched.stats.tasklets_i64, 1);
    EXPECT_EQ(batched.stats.tasklets_f64, 0);
    EXPECT_EQ(batched.stats.segment_launches, 1);
    EXPECT_EQ(batched.ctx.buffers.at("y").load_double(0), -699.0);
}

TEST(Batched, MixedDtypeSegmentsConvertLikeTheTaggedVM) {
    // F32 input, I32 output under the f64 signature: the segment gather
    // promotes float->double and the scatter narrows through the exact
    // Buffer::store casts.  Every tier must agree bitwise.
    ir::SDFG p = make_scale_sdfg("o = i * 2.0 + 0.25");
    p.container("x").dtype = ir::DType::F32;
    p.container("y").dtype = ir::DType::I32;
    p.bump_mutation_epoch();

    interp::Context inputs;
    inputs.symbols["N"] = 600;
    interp::Buffer xv(ir::DType::F32, {600});
    for (std::int64_t i = 0; i < 600; ++i)
        xv.store(i, interp::Value::from_double(0.3 * static_cast<double>(i - 300)));
    inputs.buffers.emplace("x", std::move(xv));

    const TierOut batched = expect_all_tiers_agree(p, inputs, "f32->i32 scale");
    EXPECT_EQ(batched.stats.tasklets_f64, 1);
    EXPECT_EQ(batched.stats.segment_launches, 1);
    EXPECT_EQ(batched.ctx.buffers.at("y").dtype(), ir::DType::I32);
}

// --- Resource budgets ---------------------------------------------------------

TEST(Batched, BudgetCrossingASegmentBlamesTheSameLimit) {
    // Two 300-point maps under a 450-point budget: the first launch charges
    // 300, the second trips the budget mid-extent.  Kernel-tier launches
    // (batched or per-point) pre-charge the whole launch, so the batched
    // tier must blame exactly what per-point execution blames: same status,
    // same limit-naming message, and bitwise-identical partial effects (the
    // completed first map; none of the second).  The generic odometer
    // detects the same exhaustion per point — coarser partial effects by
    // documented design (interpreter.h ExecResult), but the same blame.
    const ir::SDFG p = make_chain_sdfg("o = i + 1.0", "o = i * 3.0");
    const TierOut batched = run_cfg(p, scale_inputs(300), true, true, true, /*max_points=*/450);
    const TierOut perpoint = run_cfg(p, scale_inputs(300), true, true, false, 450);
    const TierOut generic = run_cfg(p, scale_inputs(300), true, false, false, 450);
    const TierOut reference = run_cfg(p, scale_inputs(300), false, false, false, 450);
    expect_same(batched, perpoint, "budget mid-chain (batched vs per-point)");
    EXPECT_EQ(batched.res.status, interp::ExecStatus::Resource);
    EXPECT_EQ(batched.res.message, generic.res.message);
    EXPECT_EQ(batched.res.message, reference.res.message);
    EXPECT_EQ(generic.res.status, interp::ExecStatus::Resource);
    EXPECT_EQ(reference.res.status, interp::ExecStatus::Resource);
    // The first map committed (one segment launch) before exhaustion.
    EXPECT_EQ(batched.stats.segment_launches, 1);
    ASSERT_TRUE(batched.ctx.has_buffer("T"));
    EXPECT_EQ(batched.ctx.buffers.at("T").load_double(0), -2.0);  // x[0]=-3 -> +1
    // The per-launch pre-charge refused the second map wholesale: its output
    // was ensured (zero-filled) by lane setup but no point of it ever ran —
    // identically for batched and per-point (asserted bitwise above).  The
    // generic odometer instead burned the remaining 150 points one at a time
    // before exhausting, so its prefix of y holds committed values.
    ASSERT_TRUE(batched.ctx.has_buffer("y"));
    EXPECT_EQ(batched.ctx.buffers.at("y").load_double(0), 0.0);
    ASSERT_TRUE(generic.ctx.has_buffer("y"));
    EXPECT_EQ(generic.ctx.buffers.at("y").load_double(0), -6.0);  // (x[0]+1)*3
    EXPECT_EQ(generic.ctx.buffers.at("y").load_double(150), 0.0);

    // Exactly at the boundary the budget is unobservable (budget purity).
    const TierOut exact =
        expect_all_tiers_agree(p, scale_inputs(300), "budget exact", /*max_points=*/600);
    EXPECT_TRUE(exact.res.ok());
    EXPECT_EQ(exact.res.points, 600);
    const TierOut unbudgeted = run_cfg(p, scale_inputs(300), true, true, true);
    expect_same(exact, unbudgeted, "budget-at-limit vs unbudgeted");
}

// --- IEEE special payloads ----------------------------------------------------

TEST(Batched, SpecialPayloadsSurviveBatchingBitwise) {
    const ir::SDFG p = make_scale_sdfg("o = i * 2.0 + 1.0");
    interp::Context inputs;
    const double qnan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    const double denorm = std::numeric_limits<double>::denorm_min();
    const std::vector<double> payloads = {qnan,   -qnan,        inf,  -inf,
                                          denorm, -denorm * 3,  0.0,  -0.0,
                                          std::numeric_limits<double>::min() / 4, 1.0};
    std::vector<double> xv;
    for (int rep = 0; rep < 40; ++rep)
        xv.insert(xv.end(), payloads.begin(), payloads.end());
    inputs.symbols["N"] = static_cast<std::int64_t>(xv.size());
    inputs.buffers.emplace("x", make_buffer(xv));
    const TierOut batched = expect_all_tiers_agree(p, inputs, "special payloads");
    EXPECT_EQ(batched.stats.segment_launches, 1);
    // Spot-check semantics: NaN propagates, inf saturates, -0 * 2 + 1 == 1.
    EXPECT_TRUE(std::isnan(batched.ctx.buffers.at("y").load_double(0)));
    EXPECT_EQ(batched.ctx.buffers.at("y").load_double(2), inf);
    EXPECT_EQ(batched.ctx.buffers.at("y").load_double(7), 1.0);
}

// --- Aliasing: vertical execution must refuse reordering ----------------------

TEST(Batched, ShiftedSelfAliasRunsPerPoint) {
    // y[i+1] = y[i] * 2 is a loop-carried dependency: batching would read
    // stale values vertically.  The per-launch alias check must hand the
    // scope to the per-point loop (still a committed kernel launch), and the
    // result must equal the sequential recurrence on every tier.
    ir::SDFG p("shift_alias");
    p.add_array("y", ir::DType::F64, {sym::cst(512)});
    ir::State& st = p.state(p.add_state("main", true));
    const ir::NodeId yin = st.add_access("y");
    auto [entry, exit] = st.add_map("m", {"i"}, {ir::Range::full(sym::cst(511))});
    const ir::NodeId t = st.add_tasklet("t", "o = i * 2.0");
    const ir::NodeId yout = st.add_access("y");
    const auto idx = [](sym::ExprPtr e) { return ir::Subset{{ir::Range::index(e)}}; };
    st.add_edge(yin, "", entry, "", ir::Memlet("y", ir::Subset::full({sym::cst(512)})));
    st.add_edge(entry, "", t, "i", ir::Memlet("y", idx(sym::symb("i"))));
    st.add_edge(t, "o", exit, "", ir::Memlet("y", idx(sym::symb("i") + 1)));
    st.add_edge(exit, "", yout, "", ir::Memlet("y", ir::Subset::full({sym::cst(512)})));

    interp::Context inputs;
    std::vector<double> yv(512, 0.0);
    yv[0] = 1.0;
    inputs.buffers.emplace("y", make_buffer(yv));

    const TierOut batched = expect_all_tiers_agree(p, inputs, "shifted self-alias");
    EXPECT_EQ(batched.stats.kernel_launches, 1);
    EXPECT_EQ(batched.stats.segment_launches, 0) << "alias check must refuse batching";
    // The recurrence doubled 1.0 down the array: y[k] == 2^k (until overflow
    // to inf, which is fine — we check an early element).
    EXPECT_EQ(batched.ctx.buffers.at("y").load_double(10), 1024.0);
}

TEST(Batched, StrideZeroBroadcastWriteRunsPerPoint) {
    // x[0] = x[0] + 1 over 400 points: the write lane has inner stride 0, so
    // vertical execution would collapse 400 sequential increments into one.
    // The alias check must refuse; the committed per-point launch then
    // accumulates exactly like the generic odometer.
    ir::SDFG p("bcast_alias");
    p.add_array("x", ir::DType::F64, {sym::cst(4)});
    ir::State& st = p.state(p.add_state("main", true));
    const ir::NodeId xin = st.add_access("x");
    auto [entry, exit] = st.add_map("m", {"i"}, {ir::Range::full(sym::cst(400))});
    const ir::NodeId t = st.add_tasklet("t", "o = v + 1.0");
    const ir::NodeId xout = st.add_access("x");
    const auto idx = [](sym::ExprPtr e) { return ir::Subset{{ir::Range::index(e)}}; };
    st.add_edge(xin, "", entry, "", ir::Memlet("x", ir::Subset::full({sym::cst(4)})));
    st.add_edge(entry, "", t, "v", ir::Memlet("x", idx(sym::cst(0))));
    st.add_edge(t, "o", exit, "", ir::Memlet("x", idx(sym::cst(0))));
    st.add_edge(exit, "", xout, "", ir::Memlet("x", ir::Subset::full({sym::cst(4)})));

    interp::Context inputs;
    inputs.buffers.emplace("x", make_buffer({0.5, 0, 0, 0}));
    const TierOut batched = expect_all_tiers_agree(p, inputs, "stride-0 broadcast");
    EXPECT_EQ(batched.stats.segment_launches, 0) << "stride-0 write must not batch";
    EXPECT_EQ(batched.ctx.buffers.at("x").load_double(0), 400.5);
}

// --- DType name round-trip (exhaustive) ---------------------------------------

TEST(DTypeNames, RoundTripAllEnumerators) {
    // Mirrors the verdict round-trip test: every enumerator must survive
    // name -> parse, and kDTypeCount pins that new dtypes extend this test.
    for (int t = 0; t < ir::kDTypeCount; ++t) {
        const ir::DType dt = static_cast<ir::DType>(t);
        const char* name = ir::dtype_name(dt);
        ASSERT_NE(name, nullptr);
        EXPECT_GT(std::strlen(name), 0u);
        EXPECT_EQ(ir::dtype_from_name(name), dt) << name;
    }
    EXPECT_THROW(ir::dtype_from_name("float16"), common::ParseError);
    EXPECT_THROW(ir::dtype_from_name(""), common::ParseError);
    EXPECT_THROW(ir::dtype_from_name("float64 "), common::ParseError);
}

}  // namespace
}  // namespace ff
