#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/error.h"
#include "helpers.h"
#include "interp/interpreter.h"
#include "interp/multirank.h"
#include "ir/sdfg.h"
#include "symbolic/parser.h"
#include "workloads/builders.h"

// --- Allocation instrumentation --------------------------------------------
//
// Global operator new override counting allocations while a flag is set:
// used below to prove the compiled tasklet path performs no per-map-point
// heap allocation in steady state.
//
// GCC pairs the replaced aligned operator new (aligned_alloc) with the
// plain free() in operator delete and warns; free() is the correct
// deallocator for aligned_alloc on this platform.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<bool> g_count_allocations{false};
std::atomic<std::size_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
    if (g_count_allocations.load(std::memory_order_relaxed))
        g_allocation_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
    if (g_count_allocations.load(std::memory_order_relaxed))
        g_allocation_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                     (size + static_cast<std::size_t>(align) - 1) &
                                         ~(static_cast<std::size_t>(align) - 1)))
        return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
    return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace ff::interp {
namespace {

using ff::testing::make_buffer;
using ff::testing::make_chain_sdfg;
using ff::testing::make_scale_sdfg;
using ff::testing::run_ok;
using ff::testing::to_vector;
using ir::Memlet;
using ir::Range;
using ir::Subset;

TEST(Buffer, RowMajorIndexing) {
    Buffer b(ir::DType::F64, {2, 3});
    EXPECT_EQ(b.size(), 6);
    EXPECT_EQ(b.flat_index({1, 2}, "b"), 5);
    EXPECT_EQ(b.flat_index({0, 0}, "b"), 0);
    EXPECT_THROW((void)b.flat_index(std::vector<std::int64_t>{2, 0}, "b"),
                 common::OutOfBoundsError);
    EXPECT_THROW((void)b.flat_index(std::vector<std::int64_t>{0, -1}, "b"),
                 common::OutOfBoundsError);
    EXPECT_THROW((void)b.flat_index(std::vector<std::int64_t>{0}, "b"), common::Error);
}

TEST(Buffer, DtypeStorageRoundTrip) {
    Buffer f32(ir::DType::F32, {2});
    f32.store(0, Value::from_double(1.5));
    EXPECT_FLOAT_EQ(static_cast<float>(f32.load_double(0)), 1.5f);
    Buffer i32(ir::DType::I32, {2});
    i32.store(0, Value::from_int(-7));
    EXPECT_EQ(i32.load(0).as_int(), -7);
    EXPECT_FALSE(i32.load(0).is_float);
}

TEST(Buffer, GarbageFillIsDeterministicAndLarge) {
    Buffer a(ir::DType::F64, {8});
    Buffer b(ir::DType::F64, {8});
    a.fill_garbage(123);
    b.fill_garbage(123);
    EXPECT_TRUE(a.bitwise_equal(b));
    for (std::int64_t i = 0; i < a.size(); ++i) EXPECT_GE(a.load_double(i), 1.0e6);
    Buffer c(ir::DType::F64, {8});
    c.fill_garbage(124);
    EXPECT_FALSE(a.bitwise_equal(c));
}

TEST(Buffer, CompareThresholdAndBitwise) {
    Buffer a = make_buffer({1.0, 2.0, 3.0});
    Buffer b = make_buffer({1.0, 2.0 + 1e-9, 3.0});
    EXPECT_FALSE(compare_buffers(a, b, 1e-5).has_value());   // within threshold
    EXPECT_TRUE(compare_buffers(a, b, 0.0).has_value());     // bitwise differs
    Buffer c = make_buffer({1.0, 2.5, 3.0});
    const auto mismatch = compare_buffers(a, c, 1e-5);
    ASSERT_TRUE(mismatch.has_value());
    EXPECT_EQ(mismatch->flat_index, 1);
    // Shape mismatch is a mismatch.
    EXPECT_TRUE(compare_buffers(a, make_buffer({1.0, 2.0}), 1e-5).has_value());
}

TEST(Interpreter, ElementwiseMap) {
    interp::Context ctx;
    ctx.symbols["N"] = 4;
    ctx.buffers.emplace("x", make_buffer({1, 2, 3, 4}));
    const auto out = run_ok(make_scale_sdfg(), ctx);
    EXPECT_EQ(to_vector(out.buffers.at("y")), (std::vector<double>{2, 4, 6, 8}));
}

TEST(Interpreter, TransientsZeroInitialized) {
    interp::Context ctx;
    ctx.symbols["N"] = 3;
    ctx.buffers.emplace("x", make_buffer({5, 5, 5}));
    const auto out = run_ok(make_chain_sdfg("o = i", "o = i"), ctx);
    EXPECT_EQ(to_vector(out.buffers.at("T")), (std::vector<double>{5, 5, 5}));
    EXPECT_EQ(to_vector(out.buffers.at("y")), (std::vector<double>{5, 5, 5}));
}

TEST(Interpreter, MatmulNestMatchesLibrary) {
    // Explicit loop-nest matmul against the library node on the same data.
    ir::SDFG nest("nest");
    nest.add_symbol("N");
    const sym::ExprPtr n = sym::symb("N");
    nest.add_array("A", ir::DType::F64, {n, n});
    nest.add_array("B", ir::DType::F64, {n, n});
    nest.add_array("C", ir::DType::F64, {n, n});
    {
        ir::State& st = nest.state(nest.add_state("main", true));
        const ir::NodeId cz = workloads::zero_init(nest, st, "C");
        workloads::matmul_nest(nest, st, st.add_access("A"), st.add_access("B"), cz, n, n, n,
                               "mm");
    }
    ir::SDFG lib("lib");
    lib.add_symbol("N");
    lib.add_array("A", ir::DType::F64, {n, n});
    lib.add_array("B", ir::DType::F64, {n, n});
    lib.add_array("C", ir::DType::F64, {n, n});
    {
        ir::State& st = lib.state(lib.add_state("main", true));
        const ir::NodeId a = st.add_access("A");
        const ir::NodeId b = st.add_access("B");
        const ir::NodeId mm = st.add_library(ir::LibraryKind::MatMul, "mm");
        const ir::NodeId c = st.add_access("C");
        const Subset full = Subset::full(lib.container("A").shape);
        st.add_edge(a, "", mm, "A", Memlet("A", full));
        st.add_edge(b, "", mm, "B", Memlet("B", full));
        st.add_edge(mm, "C", c, "", Memlet("C", full));
    }

    interp::Context ctx;
    ctx.symbols["N"] = 3;
    ctx.buffers.emplace("A", [] {
        Buffer b(ir::DType::F64, {3, 3});
        for (int i = 0; i < 9; ++i) b.store(i, Value::from_double(i + 1));
        return b;
    }());
    ctx.buffers.emplace("B", [] {
        Buffer b(ir::DType::F64, {3, 3});
        for (int i = 0; i < 9; ++i) b.store(i, Value::from_double(0.5 * i - 2));
        return b;
    }());

    const auto r1 = run_ok(nest, ctx);
    const auto r2 = run_ok(lib, ctx);
    EXPECT_TRUE(r1.buffers.at("C").bitwise_equal(r2.buffers.at("C")));
    // Spot check one entry against a hand computation.
    // C[0,0] = 1*(-2) + 2*(-0.5) + 3*1 = 0.
    EXPECT_DOUBLE_EQ(r1.buffers.at("C").load_double(0), 0.0);
}

TEST(Interpreter, SequentialNegativeStepMap) {
    ir::SDFG sdfg("countdown");
    sdfg.add_symbol("N");
    sdfg.add_array("x", ir::DType::F64, {sym::cst(8)});
    sdfg.add_array("order", ir::DType::F64, {sym::cst(8)});
    sdfg.add_scalar("counter", ir::DType::F64, true);
    ir::State& st = sdfg.state(sdfg.add_state("main", true));
    // order[v] = x[v]; iterated v = 5,4,...,1.
    auto [entry, exit] =
        st.add_map("count", {"v"}, {Range{sym::cst(5), sym::cst(1), sym::cst(-1)}},
                   ir::Schedule::Sequential);
    const ir::NodeId t = st.add_tasklet("body", "o = a");
    const ir::NodeId xin = st.add_access("x");
    const ir::NodeId out = st.add_access("order");
    const sym::ExprPtr v = sym::symb("v");
    st.add_edge(xin, "", entry, "", Memlet("x", Subset{{Range::span(sym::cst(1), sym::cst(5))}}));
    st.add_edge(entry, "", t, "a", Memlet("x", Subset{{Range::index(v)}}));
    st.add_edge(t, "o", exit, "", Memlet("order", Subset{{Range::index(v)}}));
    st.add_edge(exit, "", out, "",
                Memlet("order", Subset{{Range::span(sym::cst(1), sym::cst(5))}}));

    interp::Context ctx;
    ctx.buffers.emplace("x", make_buffer({0, 10, 20, 30, 40, 50, 60, 70}));
    const auto r = run_ok(sdfg, ctx);
    EXPECT_EQ(to_vector(r.buffers.at("order")), (std::vector<double>{0, 10, 20, 30, 40, 50, 0, 0}));
}

TEST(Interpreter, StateMachineLoop) {
    // x doubled TSTEPS times through a state-machine self loop.
    ir::SDFG sdfg("loop");
    for (const char* s : {"N", "t", "TSTEPS"}) sdfg.add_symbol(s);
    sdfg.add_array("x", ir::DType::F64, {sym::symb("N")});
    const ir::StateId body = sdfg.add_state("body", true);
    {
        ir::State& st = sdfg.state(body);
        workloads::ew_unary(sdfg, st, st.add_access("x"), "x", "o = i * 2.0");
    }
    ir::InterstateEdge back;
    back.condition = sym::parse_bool("t < TSTEPS - 1");
    back.assignments.emplace_back("t", sym::parse_expr("t + 1"));
    sdfg.add_interstate_edge(body, body, back);

    interp::Context ctx;
    ctx.symbols = {{"N", 2}, {"t", 0}, {"TSTEPS", 4}};
    ctx.buffers.emplace("x", make_buffer({1, 3}));
    const auto r = run_ok(sdfg, ctx);
    EXPECT_EQ(to_vector(r.buffers.at("x")), (std::vector<double>{16, 48}));
    // Hang detection: never-true exit condition trips the transition budget.
    ir::SDFG hang = sdfg;
    hang.cfg().edge(hang.cfg().edges()[0]).data.condition = sym::parse_bool("0 < 1");
    interp::Context hang_ctx;
    hang_ctx.symbols = {{"N", 2}, {"t", 0}, {"TSTEPS", 4}};
    ExecConfig cfg;
    cfg.max_state_transitions = 50;
    Interpreter interp(cfg);
    EXPECT_EQ(interp.run(hang, hang_ctx).status, ExecStatus::Hang);
}

TEST(Interpreter, OutOfBoundsIsCrash) {
    ir::SDFG sdfg = make_scale_sdfg();
    // Shrink x so the map (over y's extent N) overruns it.
    sdfg.container("x").shape = {sym::symb("N") - 2};
    interp::Context ctx;
    ctx.symbols["N"] = 4;
    Interpreter interp;
    const auto r = interp.run(sdfg, ctx);
    EXPECT_EQ(r.status, ExecStatus::Crash);
    EXPECT_NE(r.message.find("out-of-bounds"), std::string::npos);
}

TEST(Interpreter, UnboundSymbolIsCrash) {
    const ir::SDFG sdfg = make_scale_sdfg();
    interp::Context ctx;  // N missing
    Interpreter interp;
    const auto r = interp.run(sdfg, ctx);
    EXPECT_EQ(r.status, ExecStatus::Crash);
    EXPECT_NE(r.message.find("unbound symbol"), std::string::npos);
}

TEST(Interpreter, DeviceBuffersStartAsGarbage) {
    ir::SDFG sdfg("dev");
    sdfg.add_symbol("N");
    sdfg.add_array("d", ir::DType::F64, {sym::cst(4)}, true, ir::Storage::Device);
    sdfg.add_array("h", ir::DType::F64, {sym::cst(4)});
    ir::State& st = sdfg.state(sdfg.add_state("main", true));
    const ir::NodeId dev = st.add_access("d");
    const ir::NodeId host = st.add_access("h");
    st.add_edge(dev, "", host, "", Memlet("d", Subset{{Range::span(sym::cst(0), sym::cst(3))}}));

    interp::Context ctx;
    const auto r = run_ok(sdfg, ctx);
    for (double v : to_vector(r.buffers.at("h"))) EXPECT_GE(v, 1.0e6);
}

TEST(Interpreter, AccessToAccessCopyCopiesSubset) {
    ir::SDFG sdfg("copy");
    sdfg.add_array("a", ir::DType::F64, {sym::cst(6)});
    sdfg.add_array("b", ir::DType::F64, {sym::cst(6)});
    ir::State& st = sdfg.state(sdfg.add_state("main", true));
    const ir::NodeId a = st.add_access("a");
    const ir::NodeId b = st.add_access("b");
    st.add_edge(a, "", b, "", Memlet("a", Subset{{Range::span(sym::cst(2), sym::cst(4))}}));

    interp::Context ctx;
    ctx.buffers.emplace("a", make_buffer({1, 2, 3, 4, 5, 6}));
    const auto r = run_ok(sdfg, ctx);
    EXPECT_EQ(to_vector(r.buffers.at("b")), (std::vector<double>{0, 0, 3, 4, 5, 0}));
}

/// Parameterized size sweep: nested tiled-style map equals flat map.
class MapNestingProperty : public ::testing::TestWithParam<int> {};

TEST_P(MapNestingProperty, InnerBoundsFromOuterParam) {
    const int n = GetParam();
    // Triangular write: out[i*(i+1)/2 + j] pattern avoided; instead write
    // out[i] = sum over j in [0, i] of 1 -> i + 1.
    ir::SDFG sdfg("tri");
    sdfg.add_symbol("N");
    sdfg.add_array("out", ir::DType::F64, {sym::symb("N")});
    ir::State& st = sdfg.state(sdfg.add_state("main", true));
    const ir::NodeId z = workloads::zero_init(sdfg, st, "out");
    const sym::ExprPtr i = sym::symb("i");
    auto [oe, ox] = st.add_map("outer", {"i"}, {Range::full(sym::symb("N"))});
    auto [ie, ix] = st.add_map("inner", {"j"}, {Range::span(sym::cst(0), i)},
                               ir::Schedule::Sequential);
    const ir::NodeId t = st.add_tasklet("acc", "o = c + 1.0");
    const ir::NodeId out = st.add_access("out");
    st.add_edge(z, "", oe, "", Memlet("out", Subset{{Range::full(sym::symb("N"))}}));
    st.add_edge(oe, "", ie, "", Memlet("out", Subset{{Range::index(i)}}));
    st.add_edge(ie, "", t, "c", Memlet("out", Subset{{Range::index(i)}}));
    st.add_edge(t, "o", ix, "", Memlet("out", Subset{{Range::index(i)}}));
    st.add_edge(ix, "", ox, "", Memlet("out", Subset{{Range::index(i)}}));
    st.add_edge(ox, "", out, "", Memlet("out", Subset{{Range::full(sym::symb("N"))}}));

    interp::Context ctx;
    ctx.symbols["N"] = n;
    const auto r = run_ok(sdfg, ctx);
    for (int k = 0; k < n; ++k) EXPECT_DOUBLE_EQ(r.buffers.at("out").load_double(k), k + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MapNestingProperty, ::testing::Values(1, 2, 3, 5, 8));

TEST(MultiRank, AllgatherConcatenates) {
    ir::SDFG sdfg("gather");
    for (const char* s : {"C", "R"}) sdfg.add_symbol(s);
    sdfg.add_array("loc", ir::DType::F64, {sym::symb("C")});
    sdfg.add_array("glob", ir::DType::F64, {sym::symb("C") * sym::symb("R")});
    ir::State& st = sdfg.state(sdfg.add_state("main", true));
    const ir::NodeId in = st.add_access("loc");
    const ir::NodeId comm = st.add_comm(ir::CommKind::Allgather);
    const ir::NodeId out = st.add_access("glob");
    st.add_edge(in, "", comm, "in", Memlet("loc", Subset{{Range::full(sym::symb("C"))}}));
    st.add_edge(comm, "out", out, "",
                Memlet("glob", Subset{{Range::full(sym::symb("C") * sym::symb("R"))}}));

    const int ranks = 3;
    std::vector<interp::Context> ctxs(ranks);
    for (int r = 0; r < ranks; ++r) {
        ctxs[static_cast<std::size_t>(r)].symbols = {{"C", 2}, {"R", ranks}};
        ctxs[static_cast<std::size_t>(r)].buffers.emplace(
            "loc", make_buffer({r * 10.0, r * 10.0 + 1}));
    }
    MultiRankInterpreter multi(ranks);
    const auto result = multi.run(sdfg, ctxs);
    ASSERT_TRUE(result.ok()) << result.message;
    for (int r = 0; r < ranks; ++r) {
        EXPECT_EQ(to_vector(ctxs[static_cast<std::size_t>(r)].buffers.at("glob")),
                  (std::vector<double>{0, 1, 10, 11, 20, 21}));
        EXPECT_EQ(ctxs[static_cast<std::size_t>(r)].symbols.at("rank"), r);
    }
}

TEST(MultiRank, AllreduceSumsAndBroadcastSelectsRoot) {
    ir::SDFG sdfg("reduce");
    sdfg.add_symbol("C");
    sdfg.add_array("x", ir::DType::F64, {sym::symb("C")});
    sdfg.add_array("sum", ir::DType::F64, {sym::symb("C")});
    sdfg.add_array("root_copy", ir::DType::F64, {sym::symb("C")});
    ir::State& st = sdfg.state(sdfg.add_state("main", true));
    const ir::NodeId in = st.add_access("x");
    const ir::NodeId ar = st.add_comm(ir::CommKind::Allreduce);
    const ir::NodeId sum = st.add_access("sum");
    const ir::NodeId bc = st.add_comm(ir::CommKind::Broadcast, 1);
    const ir::NodeId rc = st.add_access("root_copy");
    const Subset full{{Range::full(sym::symb("C"))}};
    st.add_edge(in, "", ar, "in", Memlet("x", full));
    st.add_edge(ar, "out", sum, "", Memlet("sum", full));
    st.add_edge(in, "", bc, "in", Memlet("x", full));
    st.add_edge(bc, "out", rc, "", Memlet("root_copy", full));

    std::vector<interp::Context> ctxs(2);
    for (int r = 0; r < 2; ++r) {
        ctxs[static_cast<std::size_t>(r)].symbols = {{"C", 2}};
        ctxs[static_cast<std::size_t>(r)].buffers.emplace(
            "x", make_buffer({1.0 + r, 10.0 + r}));
    }
    MultiRankInterpreter multi(2);
    ASSERT_TRUE(multi.run(sdfg, ctxs).ok());
    EXPECT_EQ(to_vector(ctxs[0].buffers.at("sum")), (std::vector<double>{3, 21}));
    EXPECT_EQ(to_vector(ctxs[0].buffers.at("root_copy")), (std::vector<double>{2, 11}));
    EXPECT_EQ(to_vector(ctxs[1].buffers.at("root_copy")), (std::vector<double>{2, 11}));
}

TEST(MultiRank, SingleRankDegeneratesToIdentity) {
    // The single-rank interpreter treats collectives as copies.
    ir::SDFG sdfg("gather1");
    sdfg.add_symbol("C");
    sdfg.add_array("loc", ir::DType::F64, {sym::symb("C")});
    sdfg.add_array("glob", ir::DType::F64, {sym::symb("C")});
    ir::State& st = sdfg.state(sdfg.add_state("main", true));
    const ir::NodeId in = st.add_access("loc");
    const ir::NodeId comm = st.add_comm(ir::CommKind::Allgather);
    const ir::NodeId out = st.add_access("glob");
    const Subset full{{Range::full(sym::symb("C"))}};
    st.add_edge(in, "", comm, "in", Memlet("loc", full));
    st.add_edge(comm, "out", out, "", Memlet("glob", full));

    interp::Context ctx;
    ctx.symbols["C"] = 3;
    ctx.buffers.emplace("loc", make_buffer({7, 8, 9}));
    const auto r = run_ok(sdfg, ctx);
    EXPECT_EQ(to_vector(r.buffers.at("glob")), (std::vector<double>{7, 8, 9}));
}

// --- Compiled execution path -------------------------------------------------

TEST(Interpreter, MemletRangeStepZeroIsError) {
    // for_each_point previously skipped step-0 ranges silently (executing
    // zero iterations); it must raise instead.
    const std::vector<ir::ConcreteRange> ranges{{0, 5, 0}};
    EXPECT_THROW(for_each_point(ranges, [](const std::vector<std::int64_t>&) {}),
                 common::Error);
}

TEST(Interpreter, CompiledMatchesReferenceOnBranchyChain) {
    const ir::SDFG sdfg = make_chain_sdfg("o = i > 0.5 ? i * 2.0 : -i",
                                          "t = i * i; o = t + min(i, 0.25)");
    auto run_with = [&](bool compiled) {
        ExecConfig cfg;
        cfg.use_compiled_tasklets = compiled;
        Interpreter interp(cfg);
        interp::Context ctx;
        ctx.symbols["N"] = 17;
        ctx.buffers.emplace("x", make_buffer({-3, -0.25, 0, 0.25, 0.5, 0.75, 1, 2, 3, 4, 5, 6, 7,
                                              8, 9, 10, 11}));
        EXPECT_TRUE(interp.run(sdfg, ctx).ok());
        return ctx;
    };
    const interp::Context ref = run_with(false);
    const interp::Context fast = run_with(true);
    EXPECT_TRUE(ref.buffers.at("y").bitwise_equal(fast.buffers.at("y")));
}

TEST(Interpreter, CompiledMatchesReferenceOnMatmulNest) {
    ir::SDFG sdfg("mm");
    const sym::ExprPtr m = sym::cst(5), k = sym::cst(4), n = sym::cst(3);
    sdfg.add_array("A", ir::DType::F64, {m, k});
    sdfg.add_array("B", ir::DType::F64, {k, n});
    sdfg.add_array("C", ir::DType::F64, {m, n});
    ir::State& st = sdfg.state(sdfg.add_state("main", true));
    const ir::NodeId a = st.add_access("A");
    const ir::NodeId b = st.add_access("B");
    const ir::NodeId c0 = workloads::zero_init(sdfg, st, "C");
    workloads::matmul_nest(sdfg, st, a, b, c0, m, k, n, "mm");

    auto run_with = [&](bool compiled) {
        ExecConfig cfg;
        cfg.use_compiled_tasklets = compiled;
        Interpreter interp(cfg);
        interp::Context ctx;
        interp::Buffer av(ir::DType::F64, {5, 4}), bv(ir::DType::F64, {4, 3});
        for (std::int64_t i = 0; i < av.size(); ++i)
            av.store(i, Value::from_double(0.5 * static_cast<double>(i) - 3.0));
        for (std::int64_t i = 0; i < bv.size(); ++i)
            bv.store(i, Value::from_double(0.25 * static_cast<double>(i % 5) - 0.5));
        ctx.buffers.emplace("A", std::move(av));
        ctx.buffers.emplace("B", std::move(bv));
        EXPECT_TRUE(interp.run(sdfg, ctx).ok());
        return ctx;
    };
    const interp::Context ref = run_with(false);
    const interp::Context fast = run_with(true);
    EXPECT_TRUE(ref.buffers.at("C").bitwise_equal(fast.buffers.at("C")));
}

TEST(Interpreter, PassthroughOutputForwardsPreExecutionSnapshot) {
    // Connector 'p' is bound by an edge but never mentioned by the program:
    // the out-edge forwarding it must see the values gathered *before* the
    // tasklet ran — even though an earlier out-edge overwrites the same
    // container — on both engines.
    ir::SDFG sdfg("pass");
    sdfg.add_array("x", ir::DType::F64, {sym::cst(1)});
    sdfg.add_array("y", ir::DType::F64, {sym::cst(1)});
    ir::State& st = sdfg.state(sdfg.add_state("main", true));
    const ir::NodeId xin = st.add_access("x");
    const ir::NodeId t = st.add_tasklet("t", "o = 42.0");
    const ir::NodeId xout = st.add_access("x");
    const ir::NodeId yout = st.add_access("y");
    const Subset first{{Range::index(sym::cst(0))}};
    st.add_edge(xin, "", t, "p", Memlet("x", first));
    st.add_edge(t, "o", xout, "", Memlet("x", first));  // overwrites x[0] first
    st.add_edge(t, "p", yout, "", Memlet("y", first));  // then forwards p

    for (bool compiled : {false, true}) {
        ExecConfig cfg;
        cfg.use_compiled_tasklets = compiled;
        Interpreter interp(cfg);
        interp::Context ctx;
        ctx.buffers.emplace("x", make_buffer({7.0}));
        const ExecResult r = interp.run(sdfg, ctx);
        ASSERT_TRUE(r.ok()) << r.message;
        EXPECT_DOUBLE_EQ(ctx.buffers.at("x").load_double(0), 42.0) << "compiled=" << compiled;
        EXPECT_DOUBLE_EQ(ctx.buffers.at("y").load_double(0), 7.0) << "compiled=" << compiled;
    }
}

TEST(Interpreter, CompiledSteadyStateAllocationsAreSizeIndependent) {
    // Acceptance check for the compiled engine: once plans, buffers and
    // scratch are warm, a full re-execution performs only a constant number
    // of heap allocations (one per scope for saved bindings and the first
    // parameter-symbol insert) — none per map point.
    auto warm_run_allocations = [](std::int64_t n) {
        const ir::SDFG sdfg = make_chain_sdfg();
        Interpreter interp;  // compiled engine is the default
        interp::Context ctx;
        ctx.symbols["N"] = n;
        ctx.buffers.emplace("x",
                            make_buffer(std::vector<double>(static_cast<std::size_t>(n), 1.5)));
        EXPECT_TRUE(interp.run(sdfg, ctx).ok());  // warm-up: plans + buffers + scratch
        g_allocation_count.store(0);
        g_count_allocations.store(true);
        const ExecResult r = interp.run(sdfg, ctx);
        g_count_allocations.store(false);
        EXPECT_TRUE(r.ok()) << r.message;
        return g_allocation_count.load();
    };
    const std::size_t small = warm_run_allocations(8);
    const std::size_t large = warm_run_allocations(512);
    EXPECT_EQ(small, large) << "per-map-point allocation detected";
    EXPECT_LE(large, 16u);
}

}  // namespace
}  // namespace ff::interp
