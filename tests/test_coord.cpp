// The fault-tolerant coordinator (src/coord): lease state-machine unit
// tests driven by a fake clock (expiry, backoff, retry caps, straggler
// hedging, duplicate completion), wire-framing round trips, fault-plan
// parsing, and the end-to-end acceptance bar — a coordinator plus in-
// process worker threads, with one worker crashing mid-shard and one
// stalling past its lease, finishes the audit with a report byte-identical
// to the single-process Fuzzer::audit at worker counts {1, 2, 4}
// (docs/ARCHITECTURE.md "Coordinator") — plus the poison-unit quarantine
// path: a permanently failed shard is salvaged, its blamed unit re-run
// in-process under tightened budgets, and the remainder split and re-issued.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/checksum.h"
#include "common/error.h"
#include "common/rng.h"
#include "coord/coordinator.h"
#include "coord/fault.h"
#include "coord/net_fault.h"
#include "coord/protocol.h"
#include "coord/queue.h"
#include "coord/worker.h"
#include "core/fuzzer.h"
#include "shard/manifest.h"
#include "shard/merger.h"
#include "workloads/npbench.h"

namespace ff {
namespace {

namespace fs = std::filesystem;

/// Fresh empty scratch directory under the gtest temp root.
std::string scratch_dir(const std::string& name) {
    const std::string path = ::testing::TempDir() + "ff_coord_" + name;
    fs::remove_all(path);
    fs::create_directories(path);
    return path;
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

/// filename -> bytes of every regular file in `dir`.
std::map<std::string, std::string> dir_contents(const std::string& dir) {
    std::map<std::string, std::string> out;
    if (!fs::exists(dir)) return out;
    for (const auto& entry : fs::directory_iterator(dir))
        if (entry.is_regular_file())
            out[entry.path().filename().string()] = read_file(entry.path().string());
    return out;
}

shard::JobSpec gemm_job(int trials = 8) {
    shard::JobSpec job;
    job.workload = "gemm";
    job.passes = "table2";
    job.max_trials = trials;
    job.size_max = 5;
    job.max_state_transitions = 2000;
    job.defaults = workloads::npbench_defaults();
    return job;
}

// --- FaultPlan ---------------------------------------------------------------

TEST(FaultPlan, ParsesSpecsAndDescribesThem) {
    coord::FaultPlan none = coord::FaultPlan::parse("");
    EXPECT_TRUE(none.empty());
    EXPECT_EQ(none.describe(), "none");

    coord::FaultPlan plan = coord::FaultPlan::parse("kill-after-units=3,drop-heartbeats");
    EXPECT_EQ(plan.kill_after_units, 3);
    EXPECT_TRUE(plan.drop_heartbeats);
    EXPECT_FALSE(plan.empty());
    EXPECT_EQ(plan.describe(), "kill-after-units=3,drop-heartbeats");

    coord::FaultPlan stall = coord::FaultPlan::parse("delay-lease-ms=500");
    EXPECT_DOUBLE_EQ(stall.delay_lease_ms, 500.0);
    EXPECT_EQ(coord::FaultPlan::parse("abandon-after-units=2").abandon_after_units, 2);

    // The poison-unit faults: the worker keeps heartbeating but stops making
    // durable progress (spin) or allocates without bound (hog).
    coord::FaultPlan poison =
        coord::FaultPlan::parse("spin-after-units=2,hog-memory-after-units=5");
    EXPECT_EQ(poison.spin_after_units, 2);
    EXPECT_EQ(poison.hog_memory_after_units, 5);
    EXPECT_FALSE(poison.empty());
    EXPECT_EQ(poison.describe(), "spin-after-units=2,hog-memory-after-units=5");

    EXPECT_THROW(coord::FaultPlan::parse("explode"), common::Error);
    EXPECT_THROW(coord::FaultPlan::parse("kill-after-units=soon"), common::Error);
    EXPECT_THROW(coord::FaultPlan::parse("drop-heartbeats=yes"), common::Error);
    EXPECT_THROW(coord::FaultPlan::parse("spin-after-units=never"), common::Error);
}

// --- Frame codec -------------------------------------------------------------

/// Appends a u32 big-endian.
void push_u32(std::string& wire, std::uint32_t v) {
    wire.push_back(static_cast<char>((v >> 24) & 0xff));
    wire.push_back(static_cast<char>((v >> 16) & 0xff));
    wire.push_back(static_cast<char>((v >> 8) & 0xff));
    wire.push_back(static_cast<char>(v & 0xff));
}

/// Hand-rolls one v2 frame (length, version byte, payload CRC32C, payload)
/// — an encoder independent of write_frame, so the tests check the layout
/// and not just round-trip consistency.
std::string raw_frame(const std::string& payload, int version) {
    std::string wire;
    push_u32(wire, static_cast<std::uint32_t>(payload.size()));
    wire.push_back(static_cast<char>(version));
    push_u32(wire, common::crc32c(payload));
    wire += payload;
    return wire;
}

std::string frame_bytes(const common::Json& message) {
    return raw_frame(message.dump(), coord::kProtocolVersion);
}

/// The classified kind a decode is expected to fail with.
void expect_frame_error(const std::string& wire, coord::FrameError::Kind kind) {
    coord::FrameBuffer buf;
    buf.append(wire.data(), wire.size());
    try {
        buf.next();
        FAIL() << "expected a FrameError";
    } catch (const coord::FrameError& e) {
        EXPECT_EQ(static_cast<int>(e.kind()), static_cast<int>(kind)) << e.what();
    }
}

TEST(FrameBuffer, ReassemblesArbitrarySplitsAndGluedFrames) {
    common::Json a = common::Json::object();
    a["type"] = "hello";
    a["worker"] = "w0";
    common::Json b = common::Json::object();
    b["type"] = "lease-request";
    const std::string wire = frame_bytes(a) + frame_bytes(b);

    // Feed one byte at a time: frames must pop out exactly at their ends.
    coord::FrameBuffer buf;
    std::vector<common::Json> got;
    for (char c : wire) {
        buf.append(&c, 1);
        while (auto frame = buf.next()) got.push_back(std::move(*frame));
    }
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].dump(), a.dump());
    EXPECT_EQ(got[1].dump(), b.dump());

    // All at once.
    coord::FrameBuffer glued;
    glued.append(wire.data(), wire.size());
    EXPECT_EQ(glued.next()->dump(), a.dump());
    EXPECT_EQ(glued.next()->dump(), b.dump());
    EXPECT_FALSE(glued.next().has_value());
}

TEST(FrameBuffer, RejectsOversizedFrames) {
    coord::FrameBuffer buf;
    const char huge[4] = {0x7f, 0x00, 0x00, 0x00};  // ~2 GiB length prefix
    buf.append(huge, 4);
    EXPECT_THROW(buf.next(), common::Error);
    expect_frame_error(std::string(huge, 4) + std::string(16, '\0'),
                       coord::FrameError::Kind::Oversized);
}

TEST(FrameBuffer, ClassifiesVersionChecksumAndPayloadFailures) {
    common::Json a = common::Json::object();
    a["type"] = "hello";
    a["worker"] = "w0";

    // A flipped payload bit fails the CRC, whether or not the JSON survives.
    std::string flipped = frame_bytes(a);
    flipped[flipped.size() - 3] ^= 0x20;
    expect_frame_error(flipped, coord::FrameError::Kind::BadChecksum);

    // So does a flipped bit in the CRC field itself.
    std::string bad_crc = frame_bytes(a);
    bad_crc[5] ^= 0x01;
    expect_frame_error(bad_crc, coord::FrameError::Kind::BadChecksum);

    // A peer speaking another version is a clean handshake error...
    expect_frame_error(raw_frame(a.dump(), coord::kProtocolVersion + 1),
                       coord::FrameError::Kind::BadVersion);
    // ...including a v1 peer, whose first payload byte '{' lands exactly
    // where v2 expects the version byte.
    std::string v1;
    push_u32(v1, static_cast<std::uint32_t>(a.dump().size()));
    v1 += a.dump();
    expect_frame_error(v1, coord::FrameError::Kind::BadVersion);

    // Checksum-valid bytes that are not JSON: the frame itself is intact,
    // the payload is the problem.
    expect_frame_error(raw_frame("not json", coord::kProtocolVersion),
                       coord::FrameError::Kind::BadPayload);
}

// The property behind "a hostile or flaky wire can never wedge or crash
// the coordinator": ANY byte-level mutation of a recorded frame stream —
// bit flips, truncations, duplicated slices — decodes to some prefix of
// valid frames followed by (at most) one classified FrameError or a
// need-more-bytes state.  Nothing else can escape the decoder.
TEST(FrameBuffer, PropertyRandomStreamMutationsAlwaysClassify) {
    common::Json a = common::Json::object();
    a["type"] = "hello";
    a["worker"] = "w0";
    a["session"] = "w0/123.0";
    common::Json b = common::Json::object();
    b["type"] = "heartbeat";
    b["shard"] = 3;
    b["units"] = 17;
    common::Json c = common::Json::object();
    c["type"] = "complete";
    c["attempt"] = 1;
    const std::vector<std::string> dumps = {a.dump(), b.dump(), c.dump()};
    const std::string clean = frame_bytes(a) + frame_bytes(b) + frame_bytes(c);

    common::Rng rng(20260809);
    for (int iter = 0; iter < 2000; ++iter) {
        std::string wire = clean;
        switch (rng.uniform_int(0, 2)) {
            case 0: {  // flip one random bit
                const auto at = static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(wire.size()) - 1));
                wire[at] ^= static_cast<char>(1 << rng.uniform_int(0, 7));
                break;
            }
            case 1: {  // truncate at a random point (torn stream)
                wire.resize(static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(wire.size()) - 1)));
                break;
            }
            default: {  // duplicate a random slice in place
                const auto at = static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(wire.size()) - 1));
                const auto len = static_cast<std::size_t>(
                    rng.uniform_int(1, static_cast<std::int64_t>(wire.size() - at)));
                wire.insert(at, wire.substr(at, len));
                break;
            }
        }

        coord::FrameBuffer buf;
        std::size_t pos = 0;
        int decoded = 0;
        bool errored = false;
        try {
            while (pos < wire.size()) {  // feed in random-sized chunks
                const auto chunk = static_cast<std::size_t>(rng.uniform_int(
                    1, std::min<std::int64_t>(9, static_cast<std::int64_t>(wire.size() - pos))));
                buf.append(wire.data() + pos, chunk);
                pos += chunk;
                while (auto frame = buf.next()) {
                    // Whatever survives the CRC is one of the real frames
                    // (possibly a duplicated one), never reassembled garbage.
                    const std::string dump = frame->dump();
                    EXPECT_NE(std::find(dumps.begin(), dumps.end(), dump), dumps.end())
                        << "iter " << iter << " decoded a frame nobody sent: " << dump;
                    ++decoded;
                    ASSERT_LE(decoded, 7) << "iter " << iter << ": runaway decode";
                }
            }
        } catch (const coord::FrameError&) {
            errored = true;  // classified — the receiver drops the connection
        }
        // No other exception type may escape (anything else would fail the
        // test), and the loop above terminates by construction: never UB,
        // never a wedge.
        (void)errored;
    }
}

// --- NetFaultPlan ------------------------------------------------------------

TEST(NetFaultPlan, ParsesSpecsAndRejectsNonsense) {
    coord::NetFaultPlan none = coord::NetFaultPlan::parse("");
    EXPECT_TRUE(none.empty());
    EXPECT_EQ(none.describe(), "none");

    coord::NetFaultPlan plan = coord::NetFaultPlan::parse(
        "drop-frame-every-n=7,delay-frame-ms=5,duplicate-frame=4,"
        "corrupt-frame-byte=9,partition-after-units=3,heal-ms=250");
    EXPECT_EQ(plan.drop_frame_every_n, 7);
    EXPECT_DOUBLE_EQ(plan.delay_frame_ms, 5.0);
    EXPECT_EQ(plan.duplicate_frame_every_n, 4);
    EXPECT_EQ(plan.corrupt_frame_byte, 9);
    EXPECT_EQ(plan.partition_after_units, 3);
    EXPECT_DOUBLE_EQ(plan.heal_ms, 250.0);
    EXPECT_FALSE(plan.empty());
    EXPECT_NE(plan.describe().find("drop-frame-every-n=7"), std::string::npos);

    // The long-form alias.
    EXPECT_EQ(coord::NetFaultPlan::parse("duplicate-frame-every-n=2").duplicate_frame_every_n,
              2);

    // drop-frame-every-n=1 would drop every hello and wedge the handshake.
    EXPECT_THROW(coord::NetFaultPlan::parse("drop-frame-every-n=1"), common::Error);
    EXPECT_THROW(coord::NetFaultPlan::parse("sever-the-cable"), common::Error);
    EXPECT_THROW(coord::NetFaultPlan::parse("delay-frame-ms=soon"), common::Error);
}

// --- Endpoint ----------------------------------------------------------------

TEST(Endpoint, ParsesTcpAddressesAndRejectsMalformedOnes) {
    const coord::Endpoint ep = coord::Endpoint::parse_tcp("127.0.0.1:7643");
    EXPECT_TRUE(ep.tcp);
    EXPECT_EQ(ep.host, "127.0.0.1");
    EXPECT_EQ(ep.port, 7643);
    EXPECT_EQ(ep.describe(), "127.0.0.1:7643");

    EXPECT_EQ(coord::Endpoint::parse_tcp(":7643").host, "");  // all interfaces
    EXPECT_EQ(coord::Endpoint::parse_tcp("audit-box:0").port, 0);

    EXPECT_THROW(coord::Endpoint::parse_tcp("no-port-here"), common::Error);
    EXPECT_THROW(coord::Endpoint::parse_tcp("host:"), common::Error);
    EXPECT_THROW(coord::Endpoint::parse_tcp("host:unreal"), common::Error);
    EXPECT_THROW(coord::Endpoint::parse_tcp("host:70000"), common::Error);

    const coord::Endpoint unix_ep = coord::Endpoint::unix_path("/tmp/x.sock");
    EXPECT_FALSE(unix_ep.tcp);
    EXPECT_EQ(unix_ep.describe(), "/tmp/x.sock");
}

// --- LeaseQueue (fake clock) -------------------------------------------------

coord::TimePoint at_ms(double ms) {
    return coord::TimePoint{} +
           std::chrono::duration_cast<coord::TimePoint::duration>(
               std::chrono::duration<double, std::milli>(ms));
}

/// Two trivial manifests (the queue never looks inside them).
std::vector<shard::ShardManifest> toy_shards(int count, std::int64_t units_each = 4) {
    std::vector<shard::ShardManifest> shards;
    for (int i = 0; i < count; ++i) {
        shard::ShardManifest m;
        m.job = gemm_job(4);
        m.shard_index = i;
        m.shard_count = count;
        m.unit_begin = i * units_each;
        m.unit_end = (i + 1) * units_each;
        m.instance_count = count;
        shards.push_back(m);
    }
    return shards;
}

coord::LeaseConfig toy_lease() {
    coord::LeaseConfig lease;
    lease.lease_ms = 1000.0;
    lease.max_failures = 3;
    lease.backoff = {100.0, 2.0, 1000.0, 0.0};  // jitter off: exact delays
    lease.straggler_factor = 3.0;
    lease.max_active_per_shard = 2;
    return lease;
}

TEST(LeaseQueue, GrantsShardsInOrderThenRunsDry) {
    coord::LeaseQueue queue(toy_shards(2), toy_lease());
    auto l0 = queue.acquire("a", at_ms(0));
    auto l1 = queue.acquire("b", at_ms(0));
    ASSERT_TRUE(l0 && l1);
    EXPECT_EQ(l0->shard, 0);
    EXPECT_EQ(l0->attempt, 0);
    EXPECT_EQ(l1->shard, 1);
    EXPECT_FALSE(l0->hedge);
    // Nothing grantable until a lease ages into hedge eligibility.
    EXPECT_FALSE(queue.acquire("c", at_ms(0)).has_value());
    EXPECT_EQ(queue.stats().granted, 2);
}

TEST(LeaseQueue, ExpiryRequeuesBehindBackoffAndHeartbeatPrevents) {
    coord::LeaseQueue queue(toy_shards(1), toy_lease());
    ASSERT_TRUE(queue.acquire("a", at_ms(0)));

    // A heartbeat at 900 pushes the deadline to 1900.
    EXPECT_TRUE(queue.heartbeat(0, 0, at_ms(900)));
    EXPECT_TRUE(queue.expire(at_ms(1500)).empty());

    auto lost = queue.expire(at_ms(1901));
    ASSERT_EQ(lost.size(), 1u);
    EXPECT_EQ(lost[0].shard, 0);
    EXPECT_EQ(lost[0].worker, "a");
    EXPECT_EQ(queue.state(0), coord::ShardState::Pending);
    EXPECT_EQ(queue.stats().expirations, 1);
    EXPECT_EQ(queue.stats().requeues, 1);

    // The re-issue waits out the first backoff delay (100 ms, no jitter).
    EXPECT_FALSE(queue.acquire("b", at_ms(1950)).has_value());
    auto next = queue.next_event_ms(at_ms(1950));
    ASSERT_TRUE(next.has_value());
    EXPECT_NEAR(*next, 51.0, 1.5);
    auto retry = queue.acquire("b", at_ms(2002));
    ASSERT_TRUE(retry.has_value());
    EXPECT_EQ(retry->attempt, 1);

    // Heartbeats from the expired attempt are stale no-ops.
    EXPECT_FALSE(queue.heartbeat(0, 0, at_ms(2005)));
}

TEST(LeaseQueue, RetryCapFailsShardAndLateCompletionRescuesIt) {
    coord::LeaseConfig lease = toy_lease();
    lease.max_failures = 2;
    coord::LeaseQueue queue(toy_shards(1), lease);

    ASSERT_TRUE(queue.acquire("a", at_ms(0)));
    ASSERT_EQ(queue.expire(at_ms(1001)).size(), 1u);
    ASSERT_TRUE(queue.acquire("a", at_ms(1200)));
    ASSERT_EQ(queue.expire(at_ms(2500)).size(), 1u);

    EXPECT_EQ(queue.state(0), coord::ShardState::Failed);
    EXPECT_EQ(queue.stats().shards_failed, 1);
    EXPECT_FALSE(queue.acquire("b", at_ms(3000)).has_value());
    EXPECT_FALSE(queue.all_done());

    // A zombie attempt finishing anyway still rescues the shard.
    EXPECT_TRUE(queue.complete(0, 1));
    EXPECT_EQ(queue.state(0), coord::ShardState::Done);
    EXPECT_EQ(queue.stats().shards_failed, 0);
    EXPECT_TRUE(queue.all_done());
}

TEST(LeaseQueue, WorkerLossRequeuesItsLeasesImmediately) {
    coord::LeaseQueue queue(toy_shards(2), toy_lease());
    ASSERT_TRUE(queue.acquire("a", at_ms(0)));
    ASSERT_TRUE(queue.acquire("b", at_ms(0)));

    auto lost = queue.worker_lost("a", at_ms(100));
    ASSERT_EQ(lost.size(), 1u);
    EXPECT_EQ(lost[0].shard, 0);
    EXPECT_EQ(queue.state(0), coord::ShardState::Pending);
    EXPECT_EQ(queue.state(1), coord::ShardState::Leased);
    EXPECT_NE(queue.last_error(0).find("disconnected"), std::string::npos);
}

TEST(LeaseQueue, ReportedFailureRequeuesWithTheError) {
    coord::LeaseQueue queue(toy_shards(1), toy_lease());
    ASSERT_TRUE(queue.acquire("a", at_ms(0)));
    queue.fail(0, 0, at_ms(50), "interpreter budget exceeded");
    EXPECT_EQ(queue.state(0), coord::ShardState::Pending);
    EXPECT_EQ(queue.stats().worker_failures, 1);
    EXPECT_EQ(queue.last_error(0), "interpreter budget exceeded");
    // Stale failure reports (unknown attempt) are ignored.
    queue.fail(0, 7, at_ms(60), "ghost");
    EXPECT_EQ(queue.stats().worker_failures, 1);
}

TEST(LeaseQueue, HedgesTheStragglerAndFirstCompletionWins) {
    coord::LeaseQueue queue(toy_shards(1), toy_lease());  // straggler after 3000 ms
    ASSERT_TRUE(queue.acquire("slow", at_ms(0)));

    // Keep the straggler's lease alive; no hedge before the threshold.
    EXPECT_TRUE(queue.heartbeat(0, 0, at_ms(2500)));
    EXPECT_FALSE(queue.acquire("idle", at_ms(2999)).has_value());

    auto hedge = queue.acquire("idle", at_ms(3001));
    ASSERT_TRUE(hedge.has_value());
    EXPECT_EQ(hedge->shard, 0);
    EXPECT_EQ(hedge->attempt, 1);
    EXPECT_TRUE(hedge->hedge);
    EXPECT_EQ(queue.stats().hedges, 1);
    // The attempt cap (2) blocks a third concurrent attempt.
    EXPECT_FALSE(queue.acquire("eager", at_ms(9000)).has_value());

    // First completion wins; the loser's is a duplicate to byte-verify.
    EXPECT_TRUE(queue.complete(0, 1));
    EXPECT_FALSE(queue.complete(0, 0));
    EXPECT_EQ(queue.stats().completions, 1);
    EXPECT_EQ(queue.stats().duplicate_completions, 1);
    EXPECT_TRUE(queue.all_done());
    EXPECT_EQ(queue.active_attempts(), 0);
}

TEST(LeaseQueue, AddShardMidRunStartsCleanAndGrantable) {
    coord::LeaseConfig lease = toy_lease();
    lease.max_failures = 1;
    coord::LeaseQueue queue(toy_shards(1), lease);
    ASSERT_TRUE(queue.acquire("a", at_ms(0)));
    ASSERT_EQ(queue.expire(at_ms(1001)).size(), 1u);
    ASSERT_EQ(queue.state(0), coord::ShardState::Failed);

    // The quarantine path resolves the failed shard (complete is accepted in
    // any state) and re-issues its remainder as a fresh shard.
    EXPECT_TRUE(queue.complete(0, 0));
    EXPECT_EQ(queue.stats().shards_failed, 0);
    shard::ShardManifest sub = toy_shards(1)[0];
    sub.unit_begin = 2;
    sub.unit_end = 4;
    const int idx = queue.add_shard(sub);
    EXPECT_EQ(idx, 1);
    EXPECT_EQ(queue.shard_count(), 2);
    EXPECT_FALSE(queue.all_done());
    EXPECT_EQ(queue.state(idx), coord::ShardState::Pending);

    // Immediately grantable: clean failure count, no backoff gate, and the
    // manifest carried through verbatim.
    auto retry = queue.acquire("b", at_ms(1002));
    ASSERT_TRUE(retry.has_value());
    EXPECT_EQ(retry->shard, idx);
    EXPECT_EQ(retry->attempt, 0);
    EXPECT_EQ(retry->manifest.unit_begin, 2);
    EXPECT_EQ(retry->manifest.unit_end, 4);
    EXPECT_TRUE(queue.complete(idx, 0));
    EXPECT_TRUE(queue.all_done());
}

TEST(LeaseQueue, NextEventTracksDeadlinesAndBackoffGates) {
    coord::LeaseQueue queue(toy_shards(1), toy_lease());
    // Fresh pending shard: nothing scheduled, the caller polls at its pace.
    EXPECT_FALSE(queue.next_event_ms(at_ms(0)).has_value());
    ASSERT_TRUE(queue.acquire("a", at_ms(0)));
    // Next event is the lease deadline (1000), not hedge eligibility (3000).
    auto next = queue.next_event_ms(at_ms(400));
    ASSERT_TRUE(next.has_value());
    EXPECT_NEAR(*next, 600.0, 1.5);
}

// --- End to end: coordinator + in-process workers ----------------------------

/// The single-process reference: canonical report document + artifacts.
std::string reference_doc(const shard::JobSpec& job, const std::string& artifact_dir) {
    core::FuzzConfig config = shard::job_fuzz_config(job);
    config.num_threads = 2;
    config.artifact_dir = artifact_dir;
    if (!artifact_dir.empty()) fs::create_directories(artifact_dir);
    core::Fuzzer fuzzer(config);
    std::vector<core::FuzzReport> reports =
        fuzzer.audit(shard::load_job_program(job), shard::job_passes(job));
    return shard::canonical_report_document(std::move(reports)).dump(2);
}

struct ClusterResult {
    coord::ServeResult serve;
    std::vector<coord::WorkerStats> workers;
    std::vector<std::string> worker_errors;
};

/// Runs serve() in one thread and each worker in its own thread — the
/// in-process stand-in for a process fleet, where a crash is an abandon
/// fault (socket closed without a word, shard half-written) instead of a
/// SIGKILL.  A worker that abandons is replaced by a fault-free clone,
/// mirroring the coordinator's process-mode respawn.
ClusterResult run_cluster(const coord::CoordConfig& config,
                          std::vector<coord::WorkerConfig> workers) {
    ClusterResult result;
    std::mutex mu;
    std::exception_ptr serve_error;
    std::thread coordinator([&] {
        try {
            result.serve = coord::serve(config);
        } catch (...) {
            serve_error = std::current_exception();
        }
    });
    std::vector<std::thread> threads;
    for (coord::WorkerConfig wc : workers) {
        threads.emplace_back([&, wc]() mutable {
            try {
                coord::WorkerStats stats = coord::run_worker(wc);
                bool abandoned = stats.abandoned;
                {
                    std::lock_guard<std::mutex> lock(mu);
                    result.workers.push_back(stats);
                }
                if (abandoned) {
                    wc.fault = coord::FaultPlan{};
                    wc.worker_id += "-respawn";
                    coord::WorkerStats again = coord::run_worker(wc);
                    std::lock_guard<std::mutex> lock(mu);
                    result.workers.push_back(again);
                }
            } catch (const std::exception& e) {
                std::lock_guard<std::mutex> lock(mu);
                result.worker_errors.push_back(e.what());
            }
        });
    }
    for (std::thread& t : threads) t.join();
    coordinator.join();
    if (serve_error) std::rethrow_exception(serve_error);
    return result;
}

coord::CoordConfig cluster_config(const std::string& dir, const shard::JobSpec& job) {
    coord::CoordConfig config;
    config.job = job;
    config.shard_count = 4;
    config.checkpoint_interval = 2;
    config.socket_path = dir + "/coord.sock";
    config.records_dir = dir + "/records";
    config.artifact_dir = dir + "/artifacts";
    config.lease.lease_ms = 600.0;
    config.lease.heartbeat_ms = 150.0;
    config.lease.max_failures = 8;
    config.lease.backoff = {50.0, 2.0, 200.0, 0.2};
    config.lease.straggler_factor = 50.0;  // hedging off: faults drive this test
    config.linger_ms = 8000.0;             // wait for stalled duplicates to land
    return config;
}

coord::WorkerConfig cluster_worker(const coord::CoordConfig& config, int index) {
    coord::WorkerConfig wc;
    wc.socket_path = config.socket_path;
    wc.worker_id = "w" + std::to_string(index);
    wc.num_threads = 1;
    return wc;
}

TEST(CoordEndToEnd, SurvivesCrashAndStallAtWorkerCounts124) {
    const shard::JobSpec job = gemm_job(6);
    const std::string ref_dir = scratch_dir("e2e_ref");
    const std::string want_doc = reference_doc(job, ref_dir + "/artifacts");
    const auto want_artifacts = dir_contents(ref_dir + "/artifacts");
    ASSERT_FALSE(want_artifacts.empty()) << "job produced no reproducer artifacts; "
                                            "the artifact byte-comparison would be vacuous";

    for (int worker_count : {1, 2, 4}) {
        SCOPED_TRACE("worker_count=" + std::to_string(worker_count));
        const std::string dir = scratch_dir("e2e_n" + std::to_string(worker_count));
        coord::CoordConfig config = cluster_config(dir, job);

        std::vector<coord::WorkerConfig> workers;
        for (int i = 0; i < worker_count; ++i) workers.push_back(cluster_worker(config, i));
        // One worker crashes mid-shard (after its first durable
        // checkpoint); one stalls past its lease.  At n=1 the crasher's
        // respawned clone carries the stall, so both faults still happen.
        workers[0].fault = coord::FaultPlan::parse("abandon-after-units=3");
        if (worker_count > 1) {
            workers[1].fault = coord::FaultPlan::parse("delay-lease-ms=2000");
        } else {
            // Single worker: pile the stall onto the same first lease — the
            // delay expires the lease, the abandon then crashes the attempt,
            // and the fault-free respawned clone finishes the audit alone.
            workers[0].fault.delay_lease_ms = 2000.0;
        }

        ClusterResult result = run_cluster(config, workers);
        EXPECT_TRUE(result.worker_errors.empty())
            << "worker error: " << result.worker_errors.front();

        const coord::CoordStats& stats = result.serve.stats;
        EXPECT_EQ(stats.shards_merged, config.shard_count);
        EXPECT_EQ(stats.queue.completions, config.shard_count);
        EXPECT_GE(stats.workers_lost, 1);  // the abandoned connection

        const std::string got_doc =
            shard::canonical_report_document(result.serve.reports).dump(2);
        EXPECT_EQ(got_doc, want_doc);
        EXPECT_EQ(dir_contents(config.artifact_dir), want_artifacts);
    }
}

TEST(CoordEndToEnd, StalledWorkerLosesTheRaceAndItsBytesAreVerified) {
    const shard::JobSpec job = gemm_job(4);
    const std::string ref_dir = scratch_dir("dup_ref");
    const std::string want_doc = reference_doc(job, "");

    const std::string dir = scratch_dir("dup");
    coord::CoordConfig config = cluster_config(dir, job);
    config.shard_count = 1;  // one shard, so both workers race for it
    config.artifact_dir.clear();
    config.lease.lease_ms = 400.0;

    std::vector<coord::WorkerConfig> workers;
    workers.push_back(cluster_worker(config, 0));
    workers.push_back(cluster_worker(config, 1));
    // w0 takes the only shard, then sleeps far past its lease without
    // heartbeats; w1 gets the re-issue and completes first; w0's eventual
    // completion must be accepted as a byte-identical duplicate.
    workers[0].fault = coord::FaultPlan::parse("drop-heartbeats,delay-lease-ms=2500");

    // Stagger the start so w0 deterministically leases the shard first.
    ClusterResult result;
    {
        std::mutex mu;
        std::exception_ptr serve_error;
        std::thread coordinator([&] {
            try {
                result.serve = coord::serve(config);
            } catch (...) {
                serve_error = std::current_exception();
            }
        });
        std::thread first([&] {
            try {
                result.workers.push_back(coord::run_worker(workers[0]));
            } catch (const std::exception& e) {
                std::lock_guard<std::mutex> lock(mu);
                result.worker_errors.push_back(e.what());
            }
        });
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        std::thread second([&] {
            try {
                result.workers.push_back(coord::run_worker(workers[1]));
            } catch (const std::exception& e) {
                std::lock_guard<std::mutex> lock(mu);
                result.worker_errors.push_back(e.what());
            }
        });
        first.join();
        second.join();
        coordinator.join();
        if (serve_error) std::rethrow_exception(serve_error);
    }

    EXPECT_TRUE(result.worker_errors.empty()) << result.worker_errors.front();
    const coord::CoordStats& stats = result.serve.stats;
    EXPECT_EQ(stats.queue.expirations, 1);
    EXPECT_EQ(stats.queue.completions, 1);
    EXPECT_EQ(stats.queue.duplicate_completions, 1);
    EXPECT_EQ(stats.duplicate_files_verified, 1);
    // Both attempts' record files exist and are byte-identical — the
    // determinism contract, enforced per completion.
    const std::string a0 = read_file(config.records_dir + "/lease-s0-a0.jsonl");
    const std::string a1 = read_file(config.records_dir + "/lease-s0-a1.jsonl");
    EXPECT_EQ(a0, a1);
    EXPECT_EQ(shard::canonical_report_document(result.serve.reports).dump(2), want_doc);
}

TEST(CoordEndToEnd, PoisonShardIsQuarantinedAndReportStaysByteIdentical) {
    const shard::JobSpec job = gemm_job(6);
    const std::string want_doc = reference_doc(job, "");

    const std::string dir = scratch_dir("quarantine");
    coord::CoordConfig config = cluster_config(dir, job);
    config.artifact_dir.clear();
    // One lost attempt is a permanent failure: the crash below routes the
    // shard straight into the quarantine path instead of a clean re-issue.
    config.lease.max_failures = 1;

    std::vector<coord::WorkerConfig> workers;
    workers.push_back(cluster_worker(config, 0));
    workers.push_back(cluster_worker(config, 1));
    workers[0].fault = coord::FaultPlan::parse("abandon-after-units=3");

    ClusterResult result = run_cluster(config, workers);
    EXPECT_TRUE(result.worker_errors.empty()) << result.worker_errors.front();

    const coord::CoordStats& stats = result.serve.stats;
    EXPECT_EQ(stats.shards_quarantined, 1);
    ASSERT_EQ(stats.quarantined_units.size(), 1u);
    EXPECT_GE(stats.shards_split, 1);
    EXPECT_EQ(stats.queue.shards_failed, 0);  // quarantine resolved it
    // The fault lived in the worker, not the trial: the blamed unit is
    // benign, so its tightened-budget in-process re-run reproduces the
    // record a healthy worker would have written, the split remainder is
    // drained by the fault-free workers, and the finished audit matches the
    // single-process run byte for byte.
    EXPECT_EQ(shard::canonical_report_document(result.serve.reports).dump(2), want_doc);
}

TEST(CoordEndToEnd, TransportBlipParksAndResumesTheSession) {
    const shard::JobSpec job = gemm_job(6);
    const std::string want_doc = reference_doc(job, "");

    const std::string dir = scratch_dir("resume");
    coord::CoordConfig config = cluster_config(dir, job);
    config.shard_count = 2;
    config.artifact_dir.clear();
    config.session_grace_ms = 8000.0;  // generous: the reconnect must win

    std::vector<coord::WorkerConfig> workers;
    workers.push_back(cluster_worker(config, 0));
    // The connection dies mid-shard (after 3 units) but the worker process
    // survives and keeps executing; its heartbeat thread reconnects with
    // the same session id and resumes beating the SAME attempt.
    workers[0].fault = coord::FaultPlan::parse("disconnect-after-units=3");

    ClusterResult result = run_cluster(config, workers);
    EXPECT_TRUE(result.worker_errors.empty()) << result.worker_errors.front();

    const coord::CoordStats& stats = result.serve.stats;
    EXPECT_GE(stats.sessions_parked, 1);
    EXPECT_GE(stats.sessions_resumed, 1);
    EXPECT_EQ(stats.sessions_expired, 0);
    // The parked lease was never re-issued: no expiration, no second
    // attempt of the interrupted shard.
    EXPECT_EQ(stats.queue.expirations, 0);
    EXPECT_EQ(stats.queue.requeues, 0);
    EXPECT_EQ(stats.workers_seen, 1) << "a resume is not a fresh session";
    EXPECT_EQ(stats.shards_merged, config.shard_count);
    EXPECT_EQ(shard::canonical_report_document(result.serve.reports).dump(2), want_doc);
}

TEST(CoordEndToEnd, TcpTransportMatchesUnixByteForByte) {
    const shard::JobSpec job = gemm_job(4);
    const std::string want_doc = reference_doc(job, "");

    const std::string dir = scratch_dir("tcp");
    coord::CoordConfig config = cluster_config(dir, job);
    config.shard_count = 2;
    config.artifact_dir.clear();
    // Probe a free port, then listen on it for real.  (In-process workers
    // need the address before serve() resolves port 0.)
    int port = 0;
    const int probe = coord::listen_endpoint(coord::Endpoint::parse_tcp("127.0.0.1:0"), 1, &port);
    ::close(probe);
    config.listen_address = "127.0.0.1:" + std::to_string(port);
    config.socket_path.clear();

    std::vector<coord::WorkerConfig> workers;
    for (int i = 0; i < 2; ++i) {
        coord::WorkerConfig wc = cluster_worker(config, i);
        wc.socket_path.clear();
        wc.connect_address = config.listen_address;
        workers.push_back(wc);
    }

    ClusterResult result = run_cluster(config, workers);
    EXPECT_TRUE(result.worker_errors.empty()) << result.worker_errors.front();
    EXPECT_EQ(result.serve.stats.workers_seen, 2);
    EXPECT_EQ(result.serve.stats.shards_merged, config.shard_count);
    EXPECT_EQ(shard::canonical_report_document(result.serve.reports).dump(2), want_doc);
}

TEST(CoordEndToEnd, FrameProxyFaultsAreAbsorbedByteIdentically) {
    const shard::JobSpec job = gemm_job(6);
    const std::string want_doc = reference_doc(job, "");

    const std::string dir = scratch_dir("proxy");
    coord::CoordConfig config = cluster_config(dir, job);
    config.artifact_dir.clear();
    config.session_grace_ms = 8000.0;

    // Every fault class at once: periodic loss, latency, duplication, one
    // corrupted frame (-> CRC disconnect -> session resume) and one timed
    // partition with heal.
    coord::NetFaultPlan plan = coord::NetFaultPlan::parse(
        "drop-frame-every-n=11,delay-frame-ms=2,duplicate-frame=6,"
        "corrupt-frame-byte=25,partition-after-units=3,heal-ms=700");
    coord::FrameProxy proxy(coord::Endpoint::unix_path(dir + "/proxy.sock"),
                            coord::Endpoint::unix_path(config.socket_path), plan);

    std::vector<coord::WorkerConfig> workers;
    for (int i = 0; i < 2; ++i) {
        coord::WorkerConfig wc = cluster_worker(config, i);
        wc.socket_path = dir + "/proxy.sock";  // dial through the saboteur
        wc.reply_timeout_ms = 1500.0;          // dropped replies re-request fast
        workers.push_back(wc);
    }

    ClusterResult result = run_cluster(config, workers);
    proxy.stop();
    EXPECT_TRUE(result.worker_errors.empty()) << result.worker_errors.front();

    const coord::NetFaultStats net = proxy.stats();
    EXPECT_GT(net.frames_forwarded, 0);
    EXPECT_GE(net.frames_dropped, 1);
    EXPECT_GE(net.frames_duplicated, 1);
    EXPECT_EQ(net.frames_corrupted, 1);
    EXPECT_EQ(net.partitions, 1);
    // The corrupted frame and the partition both severed live connections;
    // the grace window turned every one of them into a resume.
    EXPECT_GE(result.serve.stats.sessions_resumed, 1);
    EXPECT_EQ(result.serve.stats.shards_merged, config.shard_count);
    EXPECT_EQ(shard::canonical_report_document(result.serve.reports).dump(2), want_doc);
}

TEST(CoordEndToEnd, CrashedShardIsSalvagedFromItsCheckpoint) {
    const shard::JobSpec job = gemm_job(6);
    const std::string dir = scratch_dir("salvage");
    coord::CoordConfig config = cluster_config(dir, job);
    config.shard_count = 2;
    config.artifact_dir.clear();

    std::vector<coord::WorkerConfig> workers;
    workers.push_back(cluster_worker(config, 0));
    // Abandon after >3 units with checkpoint_interval=2: exactly one
    // durable chunk, so the replacement must salvage 2 units.
    workers[0].fault = coord::FaultPlan::parse("abandon-after-units=3");

    ClusterResult result = run_cluster(config, workers);
    EXPECT_TRUE(result.worker_errors.empty());
    std::int64_t salvaged = 0;
    for (const coord::WorkerStats& w : result.workers) salvaged += w.salvages;
    EXPECT_GE(salvaged, 1);
    EXPECT_EQ(result.serve.stats.shards_merged, 2);
    EXPECT_EQ(shard::canonical_report_document(result.serve.reports).dump(2),
              reference_doc(job, ""));
}

}  // namespace
}  // namespace ff
