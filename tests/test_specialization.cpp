// Specialization tiers: flat-stride map kernels + the untagged f64 VM.
//
// The contract under test: specialization is a pure execution-strategy
// choice.  For any program — any dtype mix, strided/offset/reversed subsets,
// non-affine indices, non-constant (triangular) ranges, out-of-bounds
// accesses — the specialized path (ExecConfig::specialize = true) produces
// results byte-identical to the generic compiled path and to the reference
// AST engine: same buffers bit for bit, same symbols, same crash messages.
// A fuzzing audit must therefore report byte-identical verdicts, counts and
// reproducer artifacts with specialization on or off, at any thread count
// (this file is also a TSan target: the toggle test runs 8-worker audits
// over shared plan caches carrying kernel classifications).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/fuzzer.h"
#include "core/report.h"
#include "helpers.h"
#include "interp/interpreter.h"
#include "interp/plan_cache.h"
#include "ir/subset.h"
#include "transforms/registry.h"
#include "workloads/matchain.h"

namespace ff {
namespace {

using ff::testing::make_scale_sdfg;

// --- Affine analysis ---------------------------------------------------------

std::vector<const std::string*> param_ptrs(const std::vector<std::string>& names) {
    std::vector<const std::string*> out;
    for (const std::string& n : names) out.push_back(&n);
    return out;
}

TEST(AffineCoefficients, ExtractsConstantStrides) {
    using sym::cst;
    using sym::symb;
    const std::vector<std::string> params{"i", "j"};
    const auto p = param_ptrs(params);

    auto coeffs = ir::affine_coefficients(symb("i"), p);
    ASSERT_TRUE(coeffs);
    EXPECT_EQ(*coeffs, (std::vector<std::int64_t>{1, 0}));

    coeffs = ir::affine_coefficients(symb("i") * 3 + symb("j") * -2 + 7, p);
    ASSERT_TRUE(coeffs);
    EXPECT_EQ(*coeffs, (std::vector<std::int64_t>{3, -2}));

    // i appearing twice accumulates; free symbols land in the base.
    coeffs = ir::affine_coefficients(symb("i") + symb("i") + symb("N"), p);
    ASSERT_TRUE(coeffs);
    EXPECT_EQ(*coeffs, (std::vector<std::int64_t>{2, 0}));

    // A wholly param-free non-affine subtree is part of the base.
    coeffs = ir::affine_coefficients(symb("i") + sym::floordiv(symb("N"), cst(2)), p);
    ASSERT_TRUE(coeffs);
    EXPECT_EQ(*coeffs, (std::vector<std::int64_t>{1, 0}));
}

TEST(AffineCoefficients, RejectsNonAffineUses) {
    using sym::cst;
    using sym::symb;
    const std::vector<std::string> params{"i", "j"};
    const auto p = param_ptrs(params);

    EXPECT_FALSE(ir::affine_coefficients(symb("i") * symb("j"), p));       // bilinear
    EXPECT_FALSE(ir::affine_coefficients(symb("i") * symb("N"), p));       // symbolic stride
    EXPECT_FALSE(ir::affine_coefficients(sym::floordiv(symb("i"), cst(2)), p));
    EXPECT_FALSE(ir::affine_coefficients(sym::mod(symb("j"), cst(3)), p));
    EXPECT_FALSE(ir::affine_coefficients(sym::min(symb("i"), cst(5)), p));
    EXPECT_FALSE(ir::affine_coefficients(symb("i") * (std::int64_t{1} << 30), p));  // bound
}

// --- f64 feasibility of tasklet programs -------------------------------------

TEST(F64Variant, FloatOnlyProgramsQualify) {
    EXPECT_TRUE(interp::TaskletProgram::parse("o = a * 2.0 + 1.0")->has_f64_variant());
    EXPECT_TRUE(interp::TaskletProgram::parse("o = a > 0.0 ? a : -a")->has_f64_variant());
    EXPECT_TRUE(interp::TaskletProgram::parse("t = a * b; o = sqrt(t) + min(a, b)")
                    ->has_f64_variant());
    // Small-integer booleans/constants are exactly representable as doubles;
    // the tagged VM compares and promotes through as_double anyway.
    EXPECT_TRUE(interp::TaskletProgram::parse("o = (a > 0.5) + (b > 0.5) * 3")
                    ->has_f64_variant());
    // Float division is representation-identical.
    EXPECT_TRUE(interp::TaskletProgram::parse("o = a / 2.0")->has_f64_variant());
}

TEST(F64Variant, IntSemanticsForceTheTaggedVM) {
    // Both operands can be integers at runtime: floor division / modulo
    // (and the int-div-by-zero crash) only exist in the tagged VM.  (A fully
    // constant `7 / 2` folds at compile time and stays eligible.)
    EXPECT_TRUE(interp::TaskletProgram::parse("o = 7 / 2 + a * 0.0")->has_f64_variant());
    EXPECT_FALSE(interp::TaskletProgram::parse("o = (a > 1.0) / 2 + a * 0.0")->has_f64_variant());
    EXPECT_FALSE(
        interp::TaskletProgram::parse("o = (a > 0) / (b > 0) + a")->has_f64_variant());
    EXPECT_FALSE(interp::TaskletProgram::parse("o = (a > 0) % 2 + a")->has_f64_variant());
    // Integer magnitudes beyond 2^50 could round in double representation.
    EXPECT_FALSE(interp::TaskletProgram::parse("o = (a > 0) * 1125899906842625 + a")
                     ->has_f64_variant());
    // a / 2 is fine when a is a float input (inputs arrive as doubles).
    EXPECT_TRUE(interp::TaskletProgram::parse("o = a / 2")->has_f64_variant());
}

// --- Classification + counters on a known program ----------------------------

TEST(Specialization, ScaleMapClassifiesAndLaunches) {
    const ir::SDFG p = make_scale_sdfg();  // y[i] = x[i] * 2, f64, affine
    interp::Interpreter interp;            // specialize = true by default
    interp::Context ctx;
    ctx.symbols["N"] = 16;
    ctx.buffers.emplace("x", ff::testing::make_buffer(std::vector<double>(16, 1.5)));
    ASSERT_TRUE(interp.run(p, ctx).ok());

    const interp::SpecStats stats = interp.plan_cache()->spec_stats();
    EXPECT_EQ(stats.scopes_planned, 1);
    EXPECT_EQ(stats.scopes_specialized, 1);
    EXPECT_EQ(stats.scopes_segmented, 1);  // straight-line f64: segment-eligible
    EXPECT_EQ(stats.tasklets_planned, 1);
    EXPECT_EQ(stats.tasklets_f64, 1);
    EXPECT_EQ(stats.tasklets_i64, 0);
    EXPECT_EQ(stats.kernel_launches, 1);
    EXPECT_EQ(stats.kernel_fallbacks, 0);
    EXPECT_EQ(stats.segment_launches, 1);  // batch_segments defaults on
    EXPECT_EQ(ctx.buffers.at("y").load_double(7), 3.0);
}

TEST(Specialization, OutOfBoundsFootprintFallsBackAndCrashesIdentically) {
    // y[i] = x[i + 60] over i in 0:15 with |x| = 64: points 0..3 succeed,
    // point 4 faults.  The kernel must refuse the launch (footprint) and the
    // generic path must reproduce the exact partial effects + error.
    ir::SDFG p("oob");
    p.add_array("x", ir::DType::F64, {sym::cst(64)});
    p.add_array("y", ir::DType::F64, {sym::cst(16)});
    ir::State& st = p.state(p.add_state("main", true));
    const ir::NodeId x = st.add_access("x");
    auto [entry, exit] = st.add_map("m", {"i"}, {ir::Range::full(sym::cst(16))});
    const ir::NodeId t = st.add_tasklet("t", "o = i * 2.0");
    const ir::NodeId y = st.add_access("y");
    st.add_edge(x, "", entry, "", ir::Memlet("x", ir::Subset::full({sym::cst(64)})));
    st.add_edge(entry, "", t, "i",
                ir::Memlet("x", ir::Subset{{ir::Range::index(sym::symb("i") + 60)}}));
    st.add_edge(t, "o", exit, "", ir::Memlet("y", ir::Subset{{ir::Range::index(sym::symb("i"))}}));
    st.add_edge(exit, "", y, "", ir::Memlet("y", ir::Subset::full({sym::cst(16)})));

    auto run_with = [&](bool specialize) {
        interp::ExecConfig cfg;
        cfg.specialize = specialize;
        interp::Interpreter interp(cfg);
        interp::Context ctx;
        std::vector<double> xv(64);
        for (int i = 0; i < 64; ++i) xv[static_cast<std::size_t>(i)] = i;
        ctx.buffers.emplace("x", ff::testing::make_buffer(xv));
        const interp::ExecResult r = interp.run(p, ctx);
        return std::make_pair(r, std::move(ctx));
    };
    auto [r_spec, ctx_spec] = run_with(true);
    auto [r_gen, ctx_gen] = run_with(false);
    EXPECT_EQ(r_spec.status, interp::ExecStatus::Crash);
    EXPECT_EQ(r_spec.status, r_gen.status);
    EXPECT_EQ(r_spec.message, r_gen.message);
    ASSERT_TRUE(ctx_spec.has_buffer("y"));
    EXPECT_TRUE(ctx_spec.buffers.at("y").bitwise_equal(ctx_gen.buffers.at("y")))
        << "partial effects before the crash must match";
}

TEST(Specialization, ThrowingTaskletNeverKernelizes) {
    // An I64 map whose tasklet divides by a runtime-zero value: the VM
    // throws at the first point.  The scope must not classify as a
    // flat-stride kernel (its pre-pass would allocate the output buffer the
    // generic path never reaches), so crashed contexts stay identical.
    ir::SDFG p("divzero");
    p.add_array("x", ir::DType::I64, {sym::cst(8)});
    p.add_array("y", ir::DType::I64, {sym::cst(8)});
    ir::State& st = p.state(p.add_state("main", true));
    const ir::NodeId x = st.add_access("x");
    auto [entry, exit] = st.add_map("m", {"i"}, {ir::Range::full(sym::cst(8))});
    const ir::NodeId t = st.add_tasklet("t", "o = i % (i - i)");
    const ir::NodeId y = st.add_access("y");
    st.add_edge(x, "", entry, "", ir::Memlet("x", ir::Subset::full({sym::cst(8)})));
    st.add_edge(entry, "", t, "i",
                ir::Memlet("x", ir::Subset{{ir::Range::index(sym::symb("i"))}}));
    st.add_edge(t, "o", exit, "", ir::Memlet("y", ir::Subset{{ir::Range::index(sym::symb("i"))}}));
    st.add_edge(exit, "", y, "", ir::Memlet("y", ir::Subset::full({sym::cst(8)})));

    auto run_with = [&](bool specialize) {
        interp::ExecConfig cfg;
        cfg.specialize = specialize;
        interp::Interpreter interp(cfg);
        interp::Context ctx;
        interp::Buffer xv(ir::DType::I64, {8});
        for (int i = 0; i < 8; ++i) xv.store(i, interp::Value::from_int(i + 1));
        ctx.buffers.emplace("x", std::move(xv));
        const interp::ExecResult r = interp.run(p, ctx);
        const interp::SpecStats stats = interp.plan_cache()->spec_stats();
        return std::make_tuple(r, std::move(ctx), stats);
    };
    auto [r_spec, ctx_spec, stats_spec] = run_with(true);
    auto [r_gen, ctx_gen, stats_gen] = run_with(false);
    EXPECT_EQ(r_spec.status, interp::ExecStatus::Crash);
    EXPECT_EQ(r_spec.status, r_gen.status);
    EXPECT_EQ(r_spec.message, r_gen.message);
    EXPECT_EQ(stats_spec.scopes_specialized, 0);  // throw-capable: not kernelized
    ASSERT_EQ(ctx_spec.buffers.size(), ctx_gen.buffers.size())
        << "crashed contexts must hold the same buffer set";
}

TEST(Specialization, MultiOutputOobLeavesLaterOutputsUnallocated) {
    // All-F64 two-output tasklet whose first output index is out of bounds:
    // the tagged path ensures each output's buffer lazily at its own
    // scatter, so the crash leaves the second output unallocated.  The f64
    // path must not pre-allocate it — crashed contexts hold the same buffer
    // set with specialization on or off.
    ir::SDFG p("multioob");
    p.add_array("x", ir::DType::F64, {sym::cst(8)});
    p.add_array("y", ir::DType::F64, {sym::cst(8)});
    p.add_array("z", ir::DType::F64, {sym::cst(8)});
    ir::State& st = p.state(p.add_state("main", true));
    const ir::NodeId x = st.add_access("x");
    auto [entry, exit] = st.add_map("m", {"i"}, {ir::Range::full(sym::cst(8))});
    const ir::NodeId t = st.add_tasklet("t", "o1 = i * 2.0; o2 = i + 1.0");
    const ir::NodeId y = st.add_access("y");
    const ir::NodeId z = st.add_access("z");
    const auto idx = [](sym::ExprPtr e) { return ir::Subset{{ir::Range::index(e)}}; };
    st.add_edge(x, "", entry, "", ir::Memlet("x", ir::Subset::full({sym::cst(8)})));
    st.add_edge(entry, "", t, "i", ir::Memlet("x", idx(sym::symb("i"))));
    st.add_edge(t, "o1", exit, "", ir::Memlet("y", idx(sym::symb("i") + 40)));  // OOB
    st.add_edge(t, "o2", exit, "", ir::Memlet("z", idx(sym::symb("i"))));
    st.add_edge(exit, "", y, "", ir::Memlet("y", ir::Subset::full({sym::cst(8)})));
    st.add_edge(exit, "", z, "", ir::Memlet("z", ir::Subset::full({sym::cst(8)})));

    auto run_with = [&](bool specialize) {
        interp::ExecConfig cfg;
        cfg.specialize = specialize;
        interp::Interpreter interp(cfg);
        interp::Context ctx;
        ctx.buffers.emplace("x", ff::testing::make_buffer(std::vector<double>(8, 1.0)));
        const interp::ExecResult r = interp.run(p, ctx);
        return std::make_pair(r, std::move(ctx));
    };
    auto [r_spec, ctx_spec] = run_with(true);
    auto [r_gen, ctx_gen] = run_with(false);
    EXPECT_EQ(r_spec.status, interp::ExecStatus::Crash);
    EXPECT_EQ(r_spec.status, r_gen.status);
    EXPECT_EQ(r_spec.message, r_gen.message);
    EXPECT_FALSE(ctx_gen.has_buffer("z")) << "tagged path must not allocate past the crash";
    EXPECT_EQ(ctx_spec.buffers.size(), ctx_gen.buffers.size())
        << "crashed contexts must hold the same buffer set";
}

TEST(Specialization, ThrowingSiblingLaneFallsBackToGenericReplay) {
    // Two tasklets in one map scope; T2's index contains an unbound symbol
    // (affine in the params, so the scope still classifies).  The generic
    // path executes T1 at the first point *before* throwing at T2's gather;
    // the kernel pre-pass must not shortcut that — it catches the throw,
    // falls back, and the generic replay reproduces both the partial
    // effects and the error.
    ir::SDFG p("sibling");
    p.add_symbol("Q");  // never bound at runtime
    p.add_array("x", ir::DType::F64, {sym::cst(8)});
    p.add_array("y", ir::DType::F64, {sym::cst(8)});
    p.add_array("z", ir::DType::F64, {sym::cst(8)});
    ir::State& st = p.state(p.add_state("main", true));
    const ir::NodeId x = st.add_access("x");
    auto [entry, exit] = st.add_map("m", {"i"}, {ir::Range::full(sym::cst(8))});
    const ir::NodeId t1 = st.add_tasklet("t1", "o = i + 1.0");
    const ir::NodeId t2 = st.add_tasklet("t2", "o = i * 2.0");
    const ir::NodeId y = st.add_access("y");
    const ir::NodeId z = st.add_access("z");
    const auto idx = [](sym::ExprPtr e) { return ir::Subset{{ir::Range::index(e)}}; };
    st.add_edge(x, "", entry, "", ir::Memlet("x", ir::Subset::full({sym::cst(8)})));
    st.add_edge(entry, "", t1, "i", ir::Memlet("x", idx(sym::symb("i"))));
    st.add_edge(t1, "o", exit, "", ir::Memlet("y", idx(sym::symb("i"))));
    st.add_edge(entry, "", t2, "i", ir::Memlet("x", idx(sym::symb("i") + sym::symb("Q"))));
    st.add_edge(t2, "o", exit, "", ir::Memlet("z", idx(sym::symb("i"))));
    st.add_edge(exit, "", y, "", ir::Memlet("y", ir::Subset::full({sym::cst(8)})));
    st.add_edge(exit, "", z, "", ir::Memlet("z", ir::Subset::full({sym::cst(8)})));

    auto run_with = [&](bool specialize) {
        interp::ExecConfig cfg;
        cfg.specialize = specialize;
        interp::Interpreter interp(cfg);
        interp::Context ctx;
        ctx.buffers.emplace("x", ff::testing::make_buffer(
                                     std::vector<double>{0, 1, 2, 3, 4, 5, 6, 7}));
        const interp::ExecResult r = interp.run(p, ctx);
        const interp::SpecStats stats = interp.plan_cache()->spec_stats();
        return std::make_tuple(r, std::move(ctx), stats);
    };
    auto [r_spec, ctx_spec, stats_spec] = run_with(true);
    auto [r_gen, ctx_gen, stats_gen] = run_with(false);
    EXPECT_EQ(r_spec.status, interp::ExecStatus::Crash);
    EXPECT_EQ(r_spec.status, r_gen.status);
    EXPECT_EQ(r_spec.message, r_gen.message);
    // The scope classified — and with two straight-line f64 tasklets it is
    // even segment-eligible — yet the launch fell back (no commit, no
    // segment): a misclassification the per-launch validation catches must
    // reach the generic replay, never the batch VMs.
    EXPECT_EQ(stats_spec.scopes_specialized, 1);
    EXPECT_EQ(stats_spec.scopes_segmented, 1);
    EXPECT_EQ(stats_spec.kernel_fallbacks, 1);
    EXPECT_EQ(stats_spec.kernel_launches, 0);
    EXPECT_EQ(stats_spec.segment_launches, 0);
    // T1's first-point effect must be present on both paths.
    ASSERT_TRUE(ctx_spec.has_buffer("y"));
    ASSERT_TRUE(ctx_gen.has_buffer("y"));
    EXPECT_EQ(ctx_spec.buffers.at("y").load_double(0), 1.0);
    EXPECT_TRUE(ctx_spec.buffers.at("y").bitwise_equal(ctx_gen.buffers.at("y")));
}

// --- Differential property test ----------------------------------------------
//
// 420 random programs spanning dtypes, strided/offset/reversed subsets,
// non-affine indices, triangular (non-constant) ranges and occasional
// out-of-bounds offsets.  Reference AST engine, generic compiled path and
// specialized path must agree bit for bit — results and crash messages.

struct RandomProgram {
    ir::SDFG p{"prop"};
    interp::Context inputs;
};

ir::DType pick_dtype(common::Rng& rng) {
    switch (rng.uniform_int(0, 3)) {
        case 0: return ir::DType::F64;
        case 1: return ir::DType::F32;
        case 2: return ir::DType::I64;
        default: return ir::DType::I32;
    }
}

interp::Buffer random_buffer(common::Rng& rng, ir::DType dtype,
                             const std::vector<std::int64_t>& shape) {
    interp::Buffer buf(dtype, shape);
    for (std::int64_t i = 0; i < buf.size(); ++i) {
        if (ir::dtype_is_float(dtype))
            buf.store(i, interp::Value::from_double(rng.uniform_double(-8.0, 8.0)));
        else
            buf.store(i, interp::Value::from_int(rng.uniform_int(-9, 9)));
    }
    return buf;
}

/// One random elementwise map stage reading `in_name` and writing a fresh
/// container; returns the output access node.
ir::NodeId random_stage(common::Rng& rng, ir::SDFG& p, ir::State& st, ir::NodeId in_access,
                        int stage) {
    const std::string in_name = st.graph().node(in_access).data;
    const std::vector<sym::ExprPtr>& in_shape = p.container(in_name).shape;
    const std::size_t rank = in_shape.size();

    // Output container (occasionally a different dtype than the input), and
    // sometimes a second output — multi-output tasklets exercise the lazy
    // per-scatter allocation order when an earlier output faults.
    const std::string out_name = "s" + std::to_string(stage);
    const ir::DType out_dtype = pick_dtype(rng);
    std::vector<sym::ExprPtr> out_shape = in_shape;
    p.add_array(out_name, out_dtype, out_shape, /*transient=*/false);
    const bool two_outputs = rng.chance(0.25);
    const std::string out2_name = out_name + "b";
    if (two_outputs) p.add_array(out2_name, pick_dtype(rng), out_shape, /*transient=*/false);

    // Iteration space: smaller than the containers so strides/offsets fit.
    std::vector<std::string> params;
    std::vector<ir::Range> ranges;
    std::vector<sym::ExprPtr> in_idx, out_idx, out2_idx;
    for (std::size_t d = 0; d < rank; ++d) {
        const std::string param = "p" + std::to_string(stage) + "_" + std::to_string(d);
        params.push_back(param);
        const std::int64_t extent = rng.uniform_int(2, 4);
        switch (rng.uniform_int(0, 4)) {
            case 0:  // plain 0 .. extent-1
                ranges.push_back(ir::Range::full(sym::cst(extent)));
                break;
            case 1:  // reversed: extent-1 .. 0 step -1
                ranges.push_back(ir::Range{sym::cst(extent - 1), sym::cst(0), sym::cst(-1)});
                break;
            case 2:  // offset window
                ranges.push_back(
                    ir::Range{sym::cst(1), sym::cst(extent), sym::cst(1)});
                break;
            case 3:  // strided iteration
                ranges.push_back(
                    ir::Range{sym::cst(0), sym::cst(2 * (extent - 1)), sym::cst(2)});
                break;
            default:  // triangular against the previous param: forces the
                      // generic odometer (range references an own param)
                if (d > 0 && rng.chance(0.8))
                    ranges.push_back(ir::Range{sym::cst(0), sym::symb(params[d - 1]),
                                               sym::cst(1)});
                else
                    ranges.push_back(ir::Range::full(sym::cst(extent)));
                break;
        }
        const sym::ExprPtr pv = sym::symb(param);
        // Index expressions: identity / offset / strided / reversed /
        // non-affine (floordiv) / occasionally deliberately out of bounds.
        auto pick_index = [&](bool allow_oob) -> sym::ExprPtr {
            switch (rng.uniform_int(0, allow_oob ? 5 : 4)) {
                case 0: return pv;
                case 1: return pv + rng.uniform_int(0, 2);
                case 2: return pv * rng.uniform_int(1, 2);
                case 3: return pv * 2 + 1;
                case 4: return sym::floordiv(pv + 3, sym::cst(2));  // non-affine
                default: return pv + 40;  // far out of bounds: crash path
            }
        };
        in_idx.push_back(pick_index(rng.chance(0.06)));
        out_idx.push_back(pick_index(rng.chance(0.05)));
        out2_idx.push_back(pick_index(rng.chance(0.05)));
    }

    // Tasklet code: a mix of f64-friendly, int-heavy and branchy programs.
    static const char* kCodes[] = {
        "o = i * 2.0 + 1.0",
        "o = i > 0.0 ? i : -i",
        "t = i * i; o = t > 4.0 ? sqrt(t) : t * 0.5",
        "o = min(i, 3.0) + max(i, -3.0) * 0.25",
        "o = (i > 0.5) + (i > 2.5) * 3",
        "o = i / 2",
        "o = i % 3 + i",
        "o = floor(i) + select(i > 1.0, i, -i)",
        "o = exp(min(i, 2.0)) - tanh(i)",
        "o = 7 / 2 + i * 1",
        "o = i % (i - i)",  // int dtypes: mod-by-zero crash at every point
    };
    static const char* kTwoOutCodes[] = {
        "o = i * 2.0 + 1.0; q = i - 0.5",
        "o = i > 0.0 ? i : -i; q = o * 2.0",
        "o = min(i, 2.0); q = (i > 1.0) + (i > 3.0)",
    };
    const std::string code = two_outputs ? kTwoOutCodes[rng.uniform_int(0, 2)]
                                         : kCodes[rng.uniform_int(0, 10)];

    auto [entry, exit] = st.add_map("m" + std::to_string(stage), params, ranges);
    const ir::NodeId t = st.add_tasklet("t" + std::to_string(stage), code);
    const ir::NodeId out_acc = st.add_access(out_name);
    st.add_edge(in_access, "", entry, "",
                ir::Memlet(in_name, ir::Subset::full(in_shape)));
    ir::Subset in_point, out_point;
    for (std::size_t d = 0; d < rank; ++d) {
        in_point.ranges.push_back(ir::Range::index(in_idx[d]));
        out_point.ranges.push_back(ir::Range::index(out_idx[d]));
    }
    st.add_edge(entry, "", t, "i", ir::Memlet(in_name, in_point));
    st.add_edge(t, "o", exit, "", ir::Memlet(out_name, out_point));
    if (two_outputs) {
        ir::Subset out2_point;
        for (std::size_t d = 0; d < rank; ++d)
            out2_point.ranges.push_back(ir::Range::index(out2_idx[d]));
        const ir::NodeId out2_acc = st.add_access(out2_name);
        st.add_edge(t, "q", exit, "", ir::Memlet(out2_name, out2_point));
        st.add_edge(exit, "", out2_acc, "", ir::Memlet(out2_name, ir::Subset::full(out_shape)));
    }
    st.add_edge(exit, "", out_acc, "", ir::Memlet(out_name, ir::Subset::full(out_shape)));
    return out_acc;
}

RandomProgram make_random_program(std::uint64_t seed) {
    common::Rng rng(seed);
    RandomProgram rp;
    const std::size_t rank = static_cast<std::size_t>(rng.uniform_int(1, 2));
    std::vector<sym::ExprPtr> shape;
    std::vector<std::int64_t> concrete;
    for (std::size_t d = 0; d < rank; ++d) {
        // Room for stride-2 + offset indexing of a 2..4 extent space.
        const std::int64_t extent = rng.uniform_int(10, 14);
        shape.push_back(sym::cst(extent));
        concrete.push_back(extent);
    }
    const ir::DType in_dtype = pick_dtype(rng);
    rp.p.add_array("a0", in_dtype, shape);
    ir::State& st = rp.p.state(rp.p.add_state("main", true));
    ir::NodeId cur = st.add_access("a0");
    const int stages = static_cast<int>(rng.uniform_int(1, 2));
    for (int s = 0; s < stages; ++s) cur = random_stage(rng, rp.p, st, cur, s);
    rp.inputs.buffers.emplace("a0", random_buffer(rng, in_dtype, concrete));
    return rp;
}

/// Bitwise equality, except that any two NaNs match when `nan_equiv`.
/// Cross-engine comparisons need that looseness: which NaN payload `a + b`
/// propagates is unspecified in C++, so the reference AST walker and the
/// bytecode VM (different translation units, different instruction
/// selection) can legally differ in NaN sign/payload bits.  The
/// specialize-on/off comparison stays strictly bitwise — both run the same
/// VM code, and byte-identical reports are this PR's contract.
bool buffers_equal(const interp::Buffer& a, const interp::Buffer& b, bool nan_equiv) {
    if (!nan_equiv) return a.bitwise_equal(b);
    if (a.dtype() != b.dtype() || a.shape() != b.shape()) return false;
    for (std::int64_t i = 0; i < a.size(); ++i) {
        const double x = a.load_double(i);
        const double y = b.load_double(i);
        if (std::isnan(x) && std::isnan(y)) continue;
        if (std::memcmp(&x, &y, sizeof(double)) != 0) return false;
    }
    return true;
}

void expect_context_equal(const interp::Context& a, const interp::Context& b,
                          const std::string& what, bool nan_equiv = false) {
    EXPECT_EQ(a.symbols, b.symbols) << what;
    ASSERT_EQ(a.buffers.size(), b.buffers.size()) << what;
    auto ita = a.buffers.begin();
    auto itb = b.buffers.begin();
    for (; ita != a.buffers.end(); ++ita, ++itb) {
        EXPECT_EQ(ita->first, itb->first) << what;
        EXPECT_TRUE(buffers_equal(ita->second, itb->second, nan_equiv))
            << what << ": buffer '" << ita->first << "' differs";
    }
}

TEST(SpecializationProperty, AllFourTiersAgreeOn420Programs) {
    int crashes = 0, kernels = 0, f64s = 0, i64s = 0, segments = 0;
    for (std::uint64_t seed = 0; seed < 420; ++seed) {
        const RandomProgram rp = make_random_program(0xC0FFEE00ULL + seed);

        struct Run {
            interp::ExecResult result;
            interp::Context ctx;
            interp::SpecStats stats;
        };
        auto run_with = [&](bool compiled, bool specialize, bool batch) {
            interp::ExecConfig cfg;
            cfg.use_compiled_tasklets = compiled;
            cfg.specialize = specialize;
            cfg.batch_segments = batch;
            interp::Interpreter interp(cfg);
            Run r{interp::ExecResult{}, rp.inputs, interp::SpecStats{}};
            r.result = interp.run(rp.p, r.ctx);
            r.stats = interp.plan_cache()->spec_stats();
            return r;
        };
        const Run batched = run_with(true, true, true);
        const Run spec = run_with(true, true, false);
        const Run generic = run_with(true, false, false);
        const Run reference = run_with(false, false, false);

        const std::string what = "seed " + std::to_string(seed);
        EXPECT_EQ(batched.result.status, spec.result.status) << what;
        EXPECT_EQ(batched.result.message, spec.result.message) << what;
        EXPECT_EQ(spec.result.status, generic.result.status) << what;
        EXPECT_EQ(spec.result.message, generic.result.message) << what;
        EXPECT_EQ(spec.result.status, reference.result.status) << what;
        EXPECT_EQ(spec.result.message, reference.result.message) << what;
        expect_context_equal(batched.ctx, spec.ctx, what + " (batched vs per-point)");
        expect_context_equal(spec.ctx, generic.ctx, what + " (spec vs generic)");
        if (spec.result.ok())
            expect_context_equal(spec.ctx, reference.ctx, what + " (spec vs reference)",
                                 /*nan_equiv=*/true);

        crashes += spec.result.ok() ? 0 : 1;
        kernels += static_cast<int>(spec.stats.kernel_launches);
        f64s += static_cast<int>(spec.stats.tasklets_f64);
        i64s += static_cast<int>(spec.stats.tasklets_i64);
        segments += static_cast<int>(batched.stats.segment_launches);
    }
    // The generator must actually exercise every tier.
    EXPECT_GT(kernels, 50) << "flat-stride kernels barely exercised";
    EXPECT_GT(f64s, 20) << "untagged f64 VM barely exercised";
    EXPECT_GT(i64s, 10) << "untagged i64 VM barely exercised";
    EXPECT_GT(segments, 20) << "batched segment VM barely exercised";
    EXPECT_GT(crashes, 5) << "crash paths barely exercised";
    EXPECT_LT(crashes, 300) << "generator crashes too often to test value paths";
}

// --- Fuzzer-level toggle determinism ----------------------------------------

std::string read_file(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    if (!f) return "";
    std::string text;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, got);
    std::fclose(f);
    return text;
}

struct AuditSnapshot {
    std::vector<core::FuzzReport> reports;
    std::vector<std::string> artifacts;
};

AuditSnapshot snapshot_audit(const ir::SDFG& p,
                             const std::vector<xform::TransformationPtr>& passes,
                             core::FuzzConfig config) {
    config.artifact_dir = ::testing::TempDir();
    core::Fuzzer fuzzer(config);
    AuditSnapshot snap;
    snap.reports = fuzzer.audit(p, passes);
    for (const core::FuzzReport& r : snap.reports)
        snap.artifacts.push_back(r.artifact_path.empty() ? "" : read_file(r.artifact_path));
    return snap;
}

void expect_snapshots_identical(const AuditSnapshot& a, const AuditSnapshot& b,
                                const std::string& what) {
    ASSERT_EQ(a.reports.size(), b.reports.size()) << what;
    for (std::size_t i = 0; i < a.reports.size(); ++i) {
        const core::FuzzReport& ra = a.reports[i];
        const core::FuzzReport& rb = b.reports[i];
        const std::string where = what + " instance " + std::to_string(i);
        EXPECT_EQ(ra.transformation, rb.transformation) << where;
        EXPECT_EQ(ra.match_description, rb.match_description) << where;
        EXPECT_EQ(ra.verdict, rb.verdict) << where;
        EXPECT_EQ(ra.trials, rb.trials) << where;
        EXPECT_EQ(ra.uninteresting, rb.uninteresting) << where;
        EXPECT_EQ(ra.detail, rb.detail) << where;
        EXPECT_EQ(a.artifacts[i], b.artifacts[i]) << where << " artifact";
    }
}

TEST(SpecializationToggle, AuditByteIdenticalOnOffAt1And8Threads) {
    const ir::SDFG p = workloads::build_matrix_chain();
    const auto passes = xform::builtin_transformations();

    core::FuzzConfig config;
    config.max_trials = 10;
    config.sampler.size_max = 6;
    config.cutout.defaults = {{"N", 6}};

    config.num_threads = 1;
    config.diff.exec.specialize = true;
    const AuditSnapshot spec1 = snapshot_audit(p, passes, config);
    ASSERT_FALSE(spec1.reports.empty());
    bool any_failed = false;
    for (const auto& r : spec1.reports) any_failed |= r.failed();
    EXPECT_TRUE(any_failed) << "registry must include buggy variants for artifact coverage";

    config.diff.exec.specialize = false;
    expect_snapshots_identical(spec1, snapshot_audit(p, passes, config),
                               "specialize on vs off, 1 thread");

    config.num_threads = 8;
    expect_snapshots_identical(spec1, snapshot_audit(p, passes, config),
                               "1 thread spec-on vs 8 threads spec-off");
    config.diff.exec.specialize = true;
    expect_snapshots_identical(spec1, snapshot_audit(p, passes, config),
                               "1 thread vs 8 threads, spec on");
}

TEST(SpecializationToggle, SchedulerStatsExposePrepareAndSpecCounters) {
    const ir::SDFG p = make_scale_sdfg();
    const auto passes = xform::builtin_transformations();

    core::FuzzConfig config;
    config.max_trials = 5;
    config.sampler.size_max = 6;
    config.cutout.defaults = {{"N", 6}};
    config.num_threads = 4;

    core::Fuzzer fuzzer(config);
    const auto reports = fuzzer.audit(p, passes);
    ASSERT_FALSE(reports.empty());
    const core::SchedulerStats& stats = fuzzer.last_stats();
    EXPECT_GT(stats.prepare_seconds, 0.0);
    EXPECT_GT(stats.spec.scopes_planned, 0);
    EXPECT_GT(stats.spec.scopes_specialized, 0);
    EXPECT_GT(stats.spec.tasklets_f64, 0);
    EXPECT_GT(stats.spec.kernel_launches, 0);

    // Turning specialization off must zero the launch counters but keep the
    // classification (plans always carry it).
    config.diff.exec.specialize = false;
    core::Fuzzer off(config);
    (void)off.audit(p, passes);
    EXPECT_GT(off.last_stats().spec.scopes_specialized, 0);
    EXPECT_EQ(off.last_stats().spec.kernel_launches, 0);
    EXPECT_EQ(off.last_stats().spec.kernel_fallbacks, 0);
}

}  // namespace
}  // namespace ff
