#include <gtest/gtest.h>

#include "common/error.h"

#include "common/rng.h"
#include "helpers.h"
#include "interp/multirank.h"
#include "transforms/gpu_kernel_extraction.h"
#include "transforms/loop_unrolling.h"
#include "transforms/registry.h"
#include "transforms/write_elimination.h"
#include "workloads/cloudsc.h"
#include "workloads/matchain.h"
#include "workloads/mha.h"
#include "workloads/npbench.h"
#include "workloads/sddmm.h"

namespace ff::workloads {
namespace {

/// Fills every non-transient container with deterministic pseudo-random
/// values and returns a ready execution context.
interp::Context random_inputs(const ir::SDFG& sdfg, const sym::Bindings& bindings,
                              std::uint64_t seed = 99) {
    interp::Context ctx;
    ctx.symbols = bindings;
    common::Rng rng(seed);
    for (const auto& [name, desc] : sdfg.containers()) {
        if (desc.transient) continue;
        interp::Buffer buf(desc.dtype, desc.concrete_shape(bindings));
        for (std::int64_t i = 0; i < buf.size(); ++i) {
            if (ir::dtype_is_float(desc.dtype))
                buf.store(i, interp::Value::from_double(rng.uniform_double(-1, 1)));
            else
                buf.store(i, interp::Value::from_int(rng.uniform_int(-4, 4)));
        }
        ctx.buffers.emplace(name, std::move(buf));
    }
    return ctx;
}

TEST(Workloads, MatrixChainValidatesAndRuns) {
    const ir::SDFG p = build_matrix_chain();
    EXPECT_NO_THROW(p.validate());
    interp::Interpreter interp;
    auto ctx = random_inputs(p, {{"N", 4}});
    ASSERT_TRUE(interp.run(p, ctx).ok());
    // R == ((A*B)*C)*D: associativity check against (A*(B*(C*D))) is out of
    // scope; instead verify one entry by hand for N=1.
    auto tiny = random_inputs(p, {{"N", 1}});
    const double a = tiny.buffers.at("A").load_double(0);
    const double b = tiny.buffers.at("B").load_double(0);
    const double c = tiny.buffers.at("C").load_double(0);
    const double d = tiny.buffers.at("D").load_double(0);
    ASSERT_TRUE(interp.run(p, tiny).ok());
    EXPECT_NEAR(tiny.buffers.at("R").load_double(0), a * b * c * d, 1e-12);
}

TEST(Workloads, MhaValidatesAndSoftmaxNormalizes) {
    const ir::SDFG p = build_mha_scale();
    EXPECT_NO_THROW(p.validate());
    interp::Interpreter interp;
    auto ctx = random_inputs(p, mha_defaults(/*sm=*/8));
    ASSERT_TRUE(interp.run(p, ctx).ok());
    // Rows of att sum to 1 (softmax property).
    const auto& att = ctx.buffers.at("att");
    const std::int64_t rows = att.size() / 8;
    for (std::int64_t r = 0; r < rows; ++r) {
        double sum = 0;
        for (int j = 0; j < 8; ++j) sum += att.load_double(r * 8 + j);
        EXPECT_NEAR(sum, 1.0, 1e-9);
    }
}

TEST(Workloads, SddmmSingleRankAndMultiRankAgree) {
    const ir::SDFG p = build_sddmm();
    EXPECT_NO_THROW(p.validate());
    // Single rank: NTOT == NCHUNK.
    interp::Interpreter interp;
    auto single = random_inputs(p, sddmm_defaults(4, 3, 4, /*ranks=*/1));
    ASSERT_TRUE(interp.run(p, single).ok());

    // Two ranks with the same *global* B must produce, on rank 0, the same
    // D as a single-rank run with the gathered B.
    const auto bindings2 = sddmm_defaults(4, 3, 2, /*ranks=*/2);
    std::vector<interp::Context> ctxs(2);
    ctxs[0] = random_inputs(p, bindings2, 7);
    ctxs[1] = random_inputs(p, bindings2, 8);
    // Same A_local and S on both ranks (row-replicated for the check).
    ctxs[1].buffers.at("A_local") = ctxs[0].buffers.at("A_local");
    ctxs[1].buffers.at("S") = ctxs[0].buffers.at("S");
    interp::MultiRankInterpreter multi(2);
    ASSERT_TRUE(multi.run(p, ctxs).ok());

    // Reference: single-rank with NCHUNK = NTOT = 4 and B_local equal to
    // the concatenation of both ranks' chunks.
    auto ref = random_inputs(p, sddmm_defaults(4, 3, 4, /*ranks=*/1), 9);
    ref.buffers.at("A_local") = ctxs[0].buffers.at("A_local");
    ref.buffers.at("S") = ctxs[0].buffers.at("S");
    interp::Buffer bfull(ir::DType::F64, {4, 3});
    for (int i = 0; i < 6; ++i) {
        bfull.store(i, ctxs[0].buffers.at("B_local").load(i));
        bfull.store(6 + i, ctxs[1].buffers.at("B_local").load(i));
    }
    ref.buffers.at("B_local") = bfull;
    ASSERT_TRUE(interp.run(p, ref).ok());
    EXPECT_FALSE(
        interp::compare_buffers(ref.buffers.at("D"), ctxs[0].buffers.at("D"), 1e-9).has_value());
}

TEST(Workloads, NpbenchSuiteValidatesAndRuns) {
    const auto suite = npbench_suite();
    EXPECT_GE(suite.size(), 30u);
    const sym::Bindings defaults = npbench_defaults();
    interp::Interpreter interp;
    for (const auto& entry : suite) {
        SCOPED_TRACE(entry.name);
        EXPECT_NO_THROW(entry.sdfg.validate());
        auto ctx = random_inputs(entry.sdfg, defaults);
        const auto result = interp.run(entry.sdfg, ctx);
        EXPECT_TRUE(result.ok()) << entry.name << ": " << result.message;
    }
}

TEST(Workloads, NpbenchKernelLookup) {
    EXPECT_NO_THROW(build_npbench_kernel("gemm"));
    EXPECT_THROW(build_npbench_kernel("not_a_kernel"), common::Error);
    EXPECT_EQ(npbench_kernel_names().size(), npbench_suite().size());
}

TEST(Workloads, CloudscPartsHavePaperInstanceCounts) {
    CloudscConfig config;  // paper numbers
    const ir::SDFG gpu_part = build_cloudsc(CloudscPart::GpuKernels, config);
    EXPECT_NO_THROW(gpu_part.validate());
    xform::GpuKernelExtraction gpu(xform::GpuKernelExtraction::Variant::NoOutputCopyIn);
    EXPECT_EQ(gpu.find_matches(gpu_part).size(), 62u);

    const ir::SDFG loop_part = build_cloudsc(CloudscPart::UnrollLoops, config);
    EXPECT_NO_THROW(loop_part.validate());
    xform::LoopUnrolling unroll(xform::LoopUnrolling::Variant::PositiveStepFormula);
    EXPECT_EQ(unroll.find_matches(loop_part).size(), 19u);

    const ir::SDFG copy_part = build_cloudsc(CloudscPart::CopyChains, config);
    EXPECT_NO_THROW(copy_part.validate());
    xform::WriteElimination elim(xform::WriteElimination::Variant::CurrentStateOnly);
    EXPECT_EQ(elim.find_matches(copy_part).size(), 136u);
}

TEST(Workloads, CloudscRunsEndToEnd) {
    // A scaled-down full build executes cleanly.
    CloudscConfig small;
    small.gpu_kernels = 6;
    small.gpu_partial_or_rmw = 4;
    small.unroll_loops = 3;
    small.copy_maps = 8;
    const ir::SDFG p = build_cloudsc(CloudscPart::Full, small);
    EXPECT_NO_THROW(p.validate());
    interp::Interpreter interp;
    auto ctx = random_inputs(p, cloudsc_defaults(8));
    const auto result = interp.run(p, ctx);
    EXPECT_TRUE(result.ok()) << result.message;
}

}  // namespace
}  // namespace ff::workloads
