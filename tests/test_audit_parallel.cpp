// Audit-wide scheduler: one worker pool over every (instance, trial) unit.
//
// The contract under test (docs/ARCHITECTURE.md "Determinism contract"):
// a full audit produces byte-identical reports — verdicts, trial counts,
// failure details, reproducer artifacts, instance order — at any worker
// count, any trial chunking, and any context/plan-cache bound, because
// trial inputs are a pure function of (seed, trial index) and per-instance
// records are merged in canonical instance x trial order.  This file also
// unit-tests the two bounded caches behind the scheduler (core::TesterCache,
// interp::PlanCacheRegistry) and doubles as a TSan target alongside
// test_parallel (see the FF_SANITIZE=thread CI job).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/fuzzer.h"
#include "core/report.h"
#include "helpers.h"
#include "interp/plan_cache.h"
#include "transforms/map_tiling.h"
#include "transforms/registry.h"
#include "workloads/matchain.h"

namespace ff {
namespace {

using ff::testing::make_scale_sdfg;

/// Chain of `k` elementwise maps x -> t1 -> ... -> y: `k` independent
/// MapTiling matches, i.e. a k-instance audit.
ir::SDFG make_k_map_chain(int k) {
    ir::SDFG p("kchain");
    p.add_symbol("N");
    const sym::ExprPtr n = sym::symb("N");
    p.add_array("x", ir::DType::F64, {n});
    for (int i = 1; i < k; ++i)
        p.add_array("t" + std::to_string(i), ir::DType::F64, {n}, /*transient=*/true);
    p.add_array("y", ir::DType::F64, {n});
    ir::State& st = p.state(p.add_state("main", true));
    ir::NodeId cur = st.add_access("x");
    for (int i = 1; i < k; ++i)
        cur = workloads::ew_unary(p, st, cur, "t" + std::to_string(i), "o = i + 1.0");
    workloads::ew_unary(p, st, cur, "y", "o = i * 3.0");
    p.validate();
    return p;
}

core::FuzzConfig quick_config(std::int64_t default_n = 8) {
    core::FuzzConfig config;
    config.max_trials = 20;
    config.sampler.size_max = 8;
    config.cutout.defaults = {{"N", default_n}};
    return config;
}

std::string read_file(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    if (!f) return "";
    std::string text;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, got);
    std::fclose(f);
    return text;
}

/// Everything that must be identical across scheduler configurations.
void expect_reports_identical(const core::FuzzReport& a, const core::FuzzReport& b,
                              const std::string& what) {
    EXPECT_EQ(a.transformation, b.transformation) << what;
    EXPECT_EQ(a.match_description, b.match_description) << what;
    EXPECT_EQ(a.verdict, b.verdict) << what;
    EXPECT_EQ(a.trials, b.trials) << what;
    EXPECT_EQ(a.uninteresting, b.uninteresting) << what;
    EXPECT_EQ(a.detail, b.detail) << what;
    EXPECT_EQ(a.cutout_nodes, b.cutout_nodes) << what;
    EXPECT_EQ(a.input_volume, b.input_volume) << what;
}

/// An audit's deterministic outputs: reports plus reproducer artifact bytes
/// (read immediately, before another run can overwrite the shared dir).
struct AuditSnapshot {
    std::vector<core::FuzzReport> reports;
    std::vector<std::string> artifacts;  // empty string for passing instances
};

AuditSnapshot run_audit_snapshot(const ir::SDFG& p,
                                 const std::vector<xform::TransformationPtr>& passes,
                                 core::FuzzConfig config) {
    config.artifact_dir = ::testing::TempDir();
    core::Fuzzer fuzzer(config);
    AuditSnapshot snap;
    snap.reports = fuzzer.audit(p, passes);
    for (const core::FuzzReport& r : snap.reports)
        snap.artifacts.push_back(r.artifact_path.empty() ? "" : read_file(r.artifact_path));
    return snap;
}

void expect_snapshots_identical(const AuditSnapshot& a, const AuditSnapshot& b,
                                const std::string& what) {
    ASSERT_EQ(a.reports.size(), b.reports.size()) << what;
    for (std::size_t i = 0; i < a.reports.size(); ++i) {
        expect_reports_identical(a.reports[i], b.reports[i],
                                 what + " instance " + std::to_string(i));
        EXPECT_EQ(a.artifacts[i], b.artifacts[i]) << what << " artifact " << i;
    }
}

// --- Cross-instance determinism of the audit-wide pool -----------------------

TEST(AuditParallel, FullAuditByteIdenticalAt1_2_8Workers) {
    const ir::SDFG p = workloads::build_matrix_chain();
    const auto passes = xform::builtin_transformations();

    core::FuzzConfig config = quick_config(6);
    config.sampler.size_max = 6;
    config.max_trials = 10;

    config.num_threads = 1;
    const AuditSnapshot one = run_audit_snapshot(p, passes, config);
    ASSERT_FALSE(one.reports.empty());
    // The builtin registry carries buggy variants: some instance must fail,
    // or the artifact comparison below compares nothing.
    bool any_failed = false;
    for (const auto& r : one.reports) any_failed |= r.failed();
    EXPECT_TRUE(any_failed);

    config.num_threads = 2;
    expect_snapshots_identical(one, run_audit_snapshot(p, passes, config), "1 vs 2 workers");
    config.num_threads = 8;
    expect_snapshots_identical(one, run_audit_snapshot(p, passes, config), "1 vs 8 workers");
}

TEST(AuditParallel, TrialChunkingPreservesReports) {
    const ir::SDFG p = workloads::build_matrix_chain();
    const auto passes = xform::builtin_transformations();

    core::FuzzConfig config = quick_config(6);
    config.sampler.size_max = 6;
    config.max_trials = 10;
    config.num_threads = 4;

    config.trial_chunk = 1;
    const AuditSnapshot baseline = run_audit_snapshot(p, passes, config);
    config.trial_chunk = 7;
    expect_snapshots_identical(baseline, run_audit_snapshot(p, passes, config),
                               "chunk 1 vs chunk 7");
    config.trial_chunk = 1000;  // clamps to one whole instance per claim
    expect_snapshots_identical(baseline, run_audit_snapshot(p, passes, config),
                               "chunk 1 vs chunk 1000");
}

TEST(AuditParallel, TinyCacheBoundsStillByteIdentical) {
    // Starving both the context cache and the plan-cache registry must only
    // cost rebuilds, never change results.
    const ir::SDFG p = make_k_map_chain(5);
    std::vector<xform::TransformationPtr> passes;
    passes.push_back(std::make_unique<xform::MapTiling>(4, xform::MapTiling::Variant::Correct));

    core::FuzzConfig config = quick_config();
    config.num_threads = 1;
    const AuditSnapshot baseline = run_audit_snapshot(p, passes, config);
    ASSERT_EQ(baseline.reports.size(), 5u);
    for (const auto& r : baseline.reports)
        EXPECT_EQ(r.verdict, core::Verdict::Pass) << r.detail;

    config.num_threads = 8;
    config.context_cache_bound = 1;
    config.plan_cache_bound = 0;  // retire drops every finished instance's cache
    expect_snapshots_identical(baseline, run_audit_snapshot(p, passes, config),
                               "default vs starved caches");
}

TEST(AuditParallel, SchedulerStatsCountUnitsAndClaims) {
    const ir::SDFG p = make_scale_sdfg();
    xform::MapTiling tiling(4, xform::MapTiling::Variant::Correct);
    const auto matches = tiling.find_matches(p);
    ASSERT_EQ(matches.size(), 1u);

    core::FuzzConfig config = quick_config();
    config.max_trials = 20;
    config.trial_chunk = 4;
    config.num_threads = 1;
    core::Fuzzer fuzzer(config);
    const core::FuzzReport report = fuzzer.test_instance(p, tiling, matches[0]);
    EXPECT_EQ(report.verdict, core::Verdict::Pass) << report.detail;
    EXPECT_EQ(report.threads, 1);

    const core::SchedulerStats& stats = fuzzer.last_stats();
    EXPECT_EQ(stats.workers, 1);
    EXPECT_EQ(stats.units, 20);       // every trial of the passing instance ran
    EXPECT_EQ(stats.claims, 5);       // ceil(20 / chunk 4)
    EXPECT_EQ(stats.contexts_built, 1);
    EXPECT_EQ(stats.context_hits, 0);
    EXPECT_EQ(stats.context_rebinds, 0);
    EXPECT_EQ(stats.context_evictions, 0);
}

TEST(AuditParallel, PlanCacheRegistryEvictsRetiredInstancesDuringAudit) {
    // One worker claims instances strictly in order, so the retire watermark
    // and the final flush make registry eviction exact: every instance's
    // cache is retired and, with a bound of one, all but one is evicted.
    const ir::SDFG p = make_k_map_chain(6);
    std::vector<xform::TransformationPtr> passes;
    passes.push_back(std::make_unique<xform::MapTiling>(4, xform::MapTiling::Variant::Correct));

    core::FuzzConfig config = quick_config();
    config.num_threads = 1;
    config.plan_cache_bound = 1;
    core::Fuzzer fuzzer(config);
    const auto reports = fuzzer.audit(p, passes);
    ASSERT_EQ(reports.size(), 6u);
    for (const auto& r : reports) EXPECT_EQ(r.verdict, core::Verdict::Pass) << r.detail;
    EXPECT_EQ(fuzzer.last_stats().plan_caches_evicted, 5);
    EXPECT_EQ(fuzzer.last_stats().units, 6 * config.max_trials);
}

// --- TesterCache: bounded idle-context cache ---------------------------------

TEST(TesterCache, HitSkipsBindingAndRebindIsLru) {
    core::TesterCache cache(/*bound=*/4, core::DiffConfig{});
    int binds = 0;
    const auto count_bind = [&binds](core::DifferentialTester&) { ++binds; };

    // Build two contexts (cache empty), bound to instances 7 and 9.
    auto t7 = cache.acquire(7, count_bind);
    auto t9 = cache.acquire(9, count_bind);
    EXPECT_EQ(binds, 2);
    EXPECT_EQ(cache.stats().built, 2);
    core::DifferentialTester* raw7 = t7.get();
    core::DifferentialTester* raw9 = t9.get();
    cache.release(std::move(t7), 7);
    cache.release(std::move(t9), 9);
    EXPECT_EQ(cache.idle_count(), 2u);

    // Same-instance acquire: hit, no bind, same object back.
    auto again = cache.acquire(9, count_bind);
    EXPECT_EQ(binds, 2);
    EXPECT_EQ(again.get(), raw9);
    EXPECT_EQ(cache.stats().hits, 1);
    cache.release(std::move(again), 9);

    // Unknown instance: the least recently released idle context (7) is
    // rebound instead of building a third.
    auto rebound = cache.acquire(1, count_bind);
    EXPECT_EQ(binds, 3);
    EXPECT_EQ(rebound.get(), raw7);
    EXPECT_EQ(cache.stats().rebinds, 1);
    EXPECT_EQ(cache.stats().built, 2);
}

TEST(TesterCache, EvictsIdleContextsOverBound) {
    core::TesterCache cache(/*bound=*/1, core::DiffConfig{});
    const auto no_bind = [](core::DifferentialTester&) {};

    // Two contexts in flight at once (two workers); the bound only applies
    // when they come back idle.
    auto a = cache.acquire(0, no_bind);
    auto b = cache.acquire(1, no_bind);
    EXPECT_EQ(cache.stats().built, 2);
    cache.release(std::move(a), 0);
    EXPECT_EQ(cache.idle_count(), 1u);
    EXPECT_EQ(cache.stats().evictions, 0);
    cache.release(std::move(b), 1);  // over the bound: destroyed
    EXPECT_EQ(cache.idle_count(), 1u);
    EXPECT_EQ(cache.stats().evictions, 1);
}

// --- PlanCacheRegistry: bounded per-instance cache registry ------------------

TEST(PlanCacheRegistry, RetireEvictsOldestBeyondBound) {
    interp::PlanCacheRegistry registry(/*retained_bound=*/1);
    const interp::PlanCachePtr c0 = registry.acquire(0);
    const interp::PlanCachePtr c1 = registry.acquire(1);
    const interp::PlanCachePtr c2 = registry.acquire(2);
    EXPECT_EQ(registry.size(), 3u);
    EXPECT_EQ(registry.creations(), 3u);
    ASSERT_NE(c0, c1);  // instances never share a cache

    registry.retire(0);
    EXPECT_EQ(registry.evictions(), 0u);  // within the bound
    registry.retire(1);                    // two retired: oldest (0) goes
    EXPECT_EQ(registry.evictions(), 1u);
    EXPECT_EQ(registry.size(), 2u);
    registry.retire(1);  // idempotent
    EXPECT_EQ(registry.evictions(), 1u);

    // The shared_ptr held above keeps the evicted cache itself alive — only
    // the registry entry is gone; re-acquiring creates a fresh cache.
    const interp::PlanCachePtr c0b = registry.acquire(0);
    EXPECT_NE(c0b, c0);
    EXPECT_EQ(registry.creations(), 4u);
}

TEST(PlanCacheRegistry, ReacquireUnretires) {
    interp::PlanCacheRegistry registry(/*retained_bound=*/1);
    const interp::PlanCachePtr c0 = registry.acquire(0);
    registry.retire(0);
    // A straggler re-acquires: same cache back, and it no longer counts as
    // retired (retiring another instance must not evict it first).
    EXPECT_EQ(registry.acquire(0), c0);
    const interp::PlanCachePtr c1 = registry.acquire(1);
    registry.retire(1);
    EXPECT_EQ(registry.evictions(), 0u);  // 0 is live again, 1 is within bound
    EXPECT_EQ(registry.size(), 2u);
}

}  // namespace
}  // namespace ff
