// Fig. 6 / Sec. 6.2: from multi-node to single-node testing.
//
// The distributed SDDMM (Vanilla Attention forward) gathers the second
// dense operand with an allgather.  Testing an optimization of the dense
// contraction the traditional way means running the whole program on R
// simulated ranks; FuzzyFlow's cutout excludes the communication, exposing
// the gathered matrix as a fuzzable input, so every trial runs on one rank.
//
// Series: whole-app multi-rank trial time vs single-node cutout trial time
// over rank counts (the gap grows with the communicator size).
#include <chrono>

#include "bench_common.h"
#include "core/report.h"
#include "interp/multirank.h"
#include "transforms/map_tiling.h"
#include "workloads/sddmm.h"

namespace {

using namespace ff;
using Clock = std::chrono::steady_clock;

const xform::Match& contraction_match(const ir::SDFG& p, const xform::MapTiling& tiling) {
    static std::vector<xform::Match> matches = tiling.find_matches(p);
    for (const auto& m : matches)
        if (m.description.find("'sddmm_mm'") != std::string::npos) return m;
    std::abort();
}

double multirank_trial_seconds(int ranks, int reps) {
    const ir::SDFG p = workloads::build_sddmm();
    const sym::Bindings bindings = workloads::sddmm_defaults(6, 4, 4, ranks);
    interp::MultiRankInterpreter multi(ranks);
    const auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r) {
        std::vector<interp::Context> ctxs;
        for (int k = 0; k < ranks; ++k)
            ctxs.push_back(bench::random_inputs(p, bindings,
                                                static_cast<std::uint64_t>(r * 64 + k)));
        const auto result = multi.run(p, ctxs);
        if (!result.ok()) std::abort();
    }
    return std::chrono::duration<double>(Clock::now() - t0).count() / reps;
}

void BM_MultiRankWholeApp(benchmark::State& state) {
    const int ranks = static_cast<int>(state.range(0));
    for (auto _ : state) benchmark::DoNotOptimize(multirank_trial_seconds(ranks, 1));
}
BENCHMARK(BM_MultiRankWholeApp)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void print_report() {
    const ir::SDFG p = workloads::build_sddmm();
    const xform::MapTiling tiling(4, xform::MapTiling::Variant::Correct);
    const xform::Match& match = contraction_match(p, tiling);

    // Cutout: extraction must exclude the allgather.
    core::FuzzConfig fc;
    fc.max_trials = 5;
    fc.cutout.defaults = workloads::sddmm_defaults(6, 4, 4, /*ranks=*/4);
    fc.sampler.size_max = 6;
    core::Fuzzer fuzzer(fc);
    const core::FuzzReport report = fuzzer.test_instance(p, tiling, match);

    const core::Cutout cutout =
        core::extract_cutout(p, tiling.affected_nodes(p, match), fc.cutout);
    int comm_nodes = 0;
    for (ir::StateId sid : cutout.program.states())
        for (ir::NodeId n : cutout.program.state(sid).graph().nodes())
            comm_nodes += cutout.program.state(sid).graph().node(n).kind ==
                          ir::NodeKind::Comm;

    bench::banner("Fig. 6 / Sec 6.2 - distributed SDDMM, single-node cutout testing");
    bench::claim("communication is not part of the cutout",
                 std::to_string(comm_nodes) + " comm nodes in the cutout; gathered operand "
                 "exposed as input: " +
                     (cutout.input_config.count("Bt") ? std::string("yes") : std::string("NO")));
    bench::claim("optimizations on the contraction are testable on one rank",
                 std::string("verdict = ") + core::verdict_name(report.verdict) + " over " +
                     std::to_string(report.trials) + " single-rank trials");

    core::TextTable table({"ranks", "whole-app trial (s)", "cutout trial (s)", "speedup"});
    const double cutout_trial = report.seconds / std::max(1, report.trials);
    for (int ranks : {1, 2, 4, 8}) {
        const double whole = multirank_trial_seconds(ranks, 2);
        char speedup[32];
        std::snprintf(speedup, sizeof(speedup), "%.1fx", whole / cutout_trial);
        table.add_row({std::to_string(ranks), std::to_string(whole),
                       std::to_string(cutout_trial), speedup});
    }
    std::printf("%s", table.to_string().c_str());
    std::printf("  (the whole-app column grows with the communicator; the cutout column is\n"
                "   rank-count independent — the paper's multi-node -> single-node argument)\n");
}

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    print_report();
    return 0;
}
