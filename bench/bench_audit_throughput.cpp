// Audit-wide scheduling throughput: executed trials per second across a
// multi-instance audit.
//
// PR 2 made the trials of ONE instance scale across a worker pool, but the
// audit loop still ran instance after instance: a fresh pool was spawned and
// joined per instance, and stragglers of each instance idled every other
// worker at the join barrier.  The audit-wide scheduler (this PR) keeps one
// fixed pool for the whole audit and drains a global queue of
// (instance, trial) units, so trials of independent instances overlap and
// pool spawn/join is paid once.
//
// Three configurations over the same K-instance workload:
//   per-instance  — K sequential Fuzzer::test_instance calls at N workers
//                   each (the PR 2 architecture: pool per instance);
//   audit @ 1     — Fuzzer::audit with a single worker (serial baseline);
//   audit @ N     — Fuzzer::audit with N workers (the audit-wide pool).
//
// Acceptance bar: on hardware with >= N cores, audit@N scales vs audit@1
// (>= 3x at 8 workers) and is no slower than per-instance@N — the gap over
// per-instance widens with K since barriers and pool spawns scale with K.
// Reports must be byte-identical across all three (determinism check; the
// process exits non-zero otherwise).
#include "bench_common.h"

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/report.h"
#include "transforms/map_tiling.h"
#include "workloads/builders.h"

namespace {

using namespace ff;

constexpr int kInstances = 12;
constexpr int kTrialsPerInstance = 24;

/// `kInstances` independent elementwise map chains: one MapTiling match
/// (= one audit instance) per chain, each trial tasklet-dense on both sides
/// of the differential test.
ir::SDFG build_workload() {
    ir::SDFG p("audit_throughput");
    p.add_symbol("N");
    const sym::ExprPtr n = sym::symb("N");
    ir::State& st = p.state(p.add_state("main", true));
    for (int i = 0; i < kInstances; ++i) {
        const std::string x = "x" + std::to_string(i);
        const std::string y = "y" + std::to_string(i);
        p.add_array(x, ir::DType::F64, {n});
        p.add_array(y, ir::DType::F64, {n});
        workloads::ew_unary(p, st, st.add_access(x), y,
                            "s = i * 0.5; o = s * s + i * 0.25");
    }
    return p;
}

core::FuzzConfig make_config(int num_threads) {
    core::FuzzConfig config;
    config.max_trials = kTrialsPerInstance;
    config.num_threads = num_threads;
    config.sampler.size_max = 24;  // large enough inputs to dominate setup
    config.cutout.defaults = {{"N", 24}};
    return config;
}

struct RunResult {
    std::vector<core::FuzzReport> reports;
    double seconds = 0.0;
    int executed = 0;  ///< trials + uninteresting across all instances

    double trials_per_second() const { return seconds > 0.0 ? executed / seconds : 0.0; }
};

void tally(RunResult& run) {
    for (const auto& r : run.reports) run.executed += r.trials + r.uninteresting;
}

/// The PR 2 architecture: a fresh per-instance pool (spawned and joined) for
/// every match, instances strictly sequential.
RunResult run_per_instance(const ir::SDFG& p, const xform::MapTiling& tiling,
                           const std::vector<xform::Match>& matches, int num_threads) {
    core::Fuzzer fuzzer(make_config(num_threads));
    RunResult run;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& m : matches) run.reports.push_back(fuzzer.test_instance(p, tiling, m));
    run.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    tally(run);
    return run;
}

/// The audit-wide scheduler: one pool over every (instance, trial) unit.
RunResult run_audit(const ir::SDFG& p, int num_threads) {
    std::vector<xform::TransformationPtr> passes;
    passes.push_back(std::make_unique<xform::MapTiling>(4, xform::MapTiling::Variant::Correct));
    core::Fuzzer fuzzer(make_config(num_threads));
    RunResult run;
    const auto t0 = std::chrono::steady_clock::now();
    run.reports = fuzzer.audit(p, passes);
    run.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    tally(run);
    return run;
}

/// Returns false when reports diverge across configurations (main()
/// propagates this so the CI step actually fails).
bool identical(const RunResult& a, const RunResult& b) {
    if (a.reports.size() != b.reports.size()) return false;
    for (std::size_t i = 0; i < a.reports.size(); ++i) {
        const auto& x = a.reports[i];
        const auto& y = b.reports[i];
        if (x.verdict != y.verdict || x.trials != y.trials ||
            x.uninteresting != y.uninteresting || x.detail != y.detail)
            return false;
    }
    return true;
}

bool print_report() {
    const int threads = bench::env_threads();
    const unsigned hw = std::thread::hardware_concurrency();

    const ir::SDFG p = build_workload();
    const xform::MapTiling tiling(4, xform::MapTiling::Variant::Correct);
    const auto matches = tiling.find_matches(p);
    if (static_cast<int>(matches.size()) != kInstances)
        throw common::Error("expected " + std::to_string(kInstances) + " matches");

    const RunResult audit_one = run_audit(p, 1);
    const RunResult audit_many = threads > 1 ? run_audit(p, threads) : audit_one;
    const RunResult per_instance = run_per_instance(p, tiling, matches, threads);

    bench::banner("Audit-wide scheduling - executed trials per second (" +
                  std::to_string(kInstances) + " instances x " +
                  std::to_string(kTrialsPerInstance) + " trials)");
    std::printf("  audit @ 1 worker   : %10.1f trials/s  (%d executed)\n",
                audit_one.trials_per_second(), audit_one.executed);
    std::printf("  per-instance @ %-2d  : %10.1f trials/s  (pool spawned/joined per instance)\n",
                threads, per_instance.trials_per_second());
    std::printf("  audit @ %-2d workers : %10.1f trials/s  (one pool, global unit queue, hw=%u)\n",
                threads, audit_many.trials_per_second(), hw);
    std::printf("  scaling vs 1 worker      : %.2fx (bar: >= 3x at 8 workers on >= 8 cores)\n",
                audit_many.trials_per_second() / audit_one.trials_per_second());
    std::printf("  vs per-instance pools    : %.2fx (bar: >= 1x; gap widens with instance count)\n",
                audit_many.trials_per_second() / per_instance.trials_per_second());

    const bool ok = identical(audit_one, audit_many) && identical(audit_one, per_instance);
    std::printf("  determinism (reports identical across all configurations): %s\n",
                ok ? "PASS" : "FAIL");

    // Machine-readable baseline for scripts/bench_audit_json.py (the
    // BENCH_audit.json CI artifact, like bench_interp_hotpath's BENCH_KV
    // lines feeding BENCH_hotpath.json).
    std::printf("BENCH_KV audit_instances=%d audit_trials_per_instance=%d audit_threads=%d\n",
                kInstances, kTrialsPerInstance, threads);
    std::printf(
        "BENCH_KV audit1_trials_per_s=%.1f auditN_trials_per_s=%.1f "
        "per_instance_trials_per_s=%.1f\n",
        audit_one.trials_per_second(), audit_many.trials_per_second(),
        per_instance.trials_per_second());
    std::printf("BENCH_KV audit_scaling=%.3f audit_vs_per_instance=%.3f audit_determinism_ok=%d\n",
                audit_many.trials_per_second() / audit_one.trials_per_second(),
                audit_many.trials_per_second() / per_instance.trials_per_second(), ok ? 1 : 0);
    return ok;
}

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return print_report() ? 0 : 1;
}
