// Fig. 4: the minimum input-flow cut on the temporary-write-elimination
// example.
//
// Program:  y = f(x);  z = g(x);  tmp = z * 2;  out = h(y, tmp).
// A transformation subsumes the `z * 2` computation into h (here: map
// fusion over the tmp hand-off).  The initial cutout needs inputs {y, z}
// (2N elements); including f and g shrinks the inputs to {x} (N elements)
// — "this halves the input space ... at the cost of some additional
// computation".
#include "bench_common.h"
#include "core/mincut.h"
#include "core/report.h"
#include "transforms/map_fusion.h"
#include "workloads/builders.h"

namespace {

using namespace ff;

constexpr std::int64_t kN = 64;

ir::SDFG build_fig4() {
    ir::SDFG p("fig4");
    p.add_symbol("N");
    const sym::ExprPtr n = sym::symb("N");
    p.add_array("x", ir::DType::F64, {n});
    p.add_array("y", ir::DType::F64, {n}, /*transient=*/true);
    p.add_array("z", ir::DType::F64, {n}, /*transient=*/true);
    p.add_array("tmp", ir::DType::F64, {n}, /*transient=*/true);
    p.add_array("out", ir::DType::F64, {n});
    ir::State& st = p.state(p.add_state("main", true));
    const ir::NodeId x = st.add_access("x");
    const ir::NodeId y = workloads::ew_unary(p, st, x, "y", "o = i + 1.0");     // f
    const ir::NodeId z = workloads::ew_unary(p, st, x, "z", "o = i * 0.5");     // g
    const ir::NodeId tmp = workloads::ew_unary(p, st, z, "tmp", "o = i * 2.0");  // z * 2
    workloads::ew_binary(p, st, tmp, y, "out", "o = a + b");                     // h
    return p;
}

struct Setup {
    ir::SDFG program = build_fig4();
    xform::MapFusion fusion;
    xform::ChangeSet delta;
    core::CutoutOptions opts;

    Setup() {
        // Several map pairs are fusable; the paper's example subsumes the
        // computation of `tmp` into h.
        const auto matches = fusion.find_matches(program);
        const xform::Match* tmp_match = &matches.at(0);
        for (const auto& m : matches)
            if (m.description.find("over 'tmp'") != std::string::npos) tmp_match = &m;
        delta = fusion.affected_nodes(program, *tmp_match);
        opts.defaults = {{"N", kN}};
    }
};

void BM_Fig4MinCut(benchmark::State& state) {
    Setup s;
    const core::Cutout initial = core::extract_cutout(s.program, s.delta, s.opts);
    for (auto _ : state) {
        auto r = core::minimize_input_configuration(s.program, s.delta, initial, s.opts);
        benchmark::DoNotOptimize(r.improved);
    }
}
BENCHMARK(BM_Fig4MinCut)->Unit(benchmark::kMicrosecond);

void print_report() {
    Setup s;
    const core::Cutout initial = core::extract_cutout(s.program, s.delta, s.opts);
    const core::MinCutResult mc =
        core::minimize_input_configuration(s.program, s.delta, initial, s.opts);

    bench::banner("Fig. 4 - minimum input-flow cut on the tmp-subsume example (N=" +
                  std::to_string(kN) + ")");
    auto set_to_string = [](const std::set<std::string>& set) {
        std::string out;
        for (const auto& e : set) out += (out.empty() ? "" : ", ") + e;
        return "{" + out + "}";
    };
    bench::claim("initial input configuration {y, z}",
                 set_to_string(initial.input_config) + " = " +
                     std::to_string(mc.volume_before) + " elements");
    bench::claim("after the cut, only {x} remains (input space halved)",
                 set_to_string(mc.cutout.input_config) + " = " +
                     std::to_string(mc.volume_after) + " elements (" +
                     std::to_string(100.0 * (1.0 - static_cast<double>(mc.volume_after) /
                                                       static_cast<double>(mc.volume_before))) +
                     "% reduction)");
    std::printf("  nodes added by expansion: %zu; improved: %s\n", mc.nodes_added,
                mc.improved ? "yes" : "no");
}

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    print_report();
    return 0;
}
