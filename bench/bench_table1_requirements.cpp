// Table 1: requirements for localized optimization testing.
//
// The table is analytical in the paper; here every capability claimed for
// the parametric-dataflow row is *demonstrated executable*: each check
// builds a scenario that requires the capability and verifies our IR-based
// analyses provide it.
#include "bench_common.h"
#include "core/cutout.h"
#include "core/side_effects.h"
#include "core/report.h"
#include "workloads/builders.h"

namespace {

using namespace ff;

/// Scalar side-effect analysis: a written scalar read downstream lands in
/// the system state.
bool check_scalar_side_effects() {
    ir::SDFG p("scalar_fx");
    p.add_symbol("N");
    p.add_scalar("s", ir::DType::F64, /*transient=*/true);
    p.add_array("x", ir::DType::F64, {sym::symb("N")});
    p.add_array("y", ir::DType::F64, {sym::symb("N")});
    ir::State& st = p.state(p.add_state("main", true));
    const ir::NodeId t1 = st.add_tasklet("def_s", "o = 2.5");
    const ir::NodeId acc_s = st.add_access("s");
    st.add_edge(t1, "o", acc_s, "", ir::Memlet("s", ir::Subset{}));
    const sym::ExprPtr i = sym::symb("i");
    auto [e, x] = st.add_map("use", {"i"}, {ir::Range::full(sym::symb("N"))});
    const ir::NodeId t2 = st.add_tasklet("use", "o = a * c");
    const ir::NodeId xin = st.add_access("x");
    const ir::NodeId yout = st.add_access("y");
    st.add_edge(xin, "", e, "", ir::Memlet("x", ir::Subset{{ir::Range::full(sym::symb("N"))}}));
    st.add_edge(acc_s, "", e, "", ir::Memlet("s", ir::Subset{}));
    st.add_edge(e, "", t2, "a", ir::Memlet("x", ir::Subset{{ir::Range::index(i)}}));
    st.add_edge(e, "", t2, "c", ir::Memlet("s", ir::Subset{}));
    st.add_edge(t2, "o", x, "", ir::Memlet("y", ir::Subset{{ir::Range::index(i)}}));
    st.add_edge(x, "", yout, "", ir::Memlet("y", ir::Subset{{ir::Range::full(sym::symb("N"))}}));

    const core::SideEffects fx = core::analyze_side_effects(
        p, p.start_state(), {t1}, {acc_s}, {{"N", 4}});
    return fx.system_state.count("s") > 0;
}

/// Memory side effects: writes to a container read in a later state.
bool check_memory_side_effects() {
    ir::SDFG p("mem_fx");
    p.add_symbol("N");
    p.add_array("a", ir::DType::F64, {sym::symb("N")}, /*transient=*/true);
    p.add_array("x", ir::DType::F64, {sym::symb("N")});
    p.add_array("y", ir::DType::F64, {sym::symb("N")});
    const ir::StateId s1 = p.add_state("write", true);
    workloads::ew_unary(p, p.state(s1), p.state(s1).add_access("x"), "a", "o = i + 1.0");
    const ir::StateId s2 = p.add_state("read");
    workloads::ew_unary(p, p.state(s2), p.state(s2).add_access("a"), "y", "o = i");
    p.add_interstate_edge(s1, s2);

    std::set<ir::NodeId> closure, boundary;
    for (ir::NodeId n : p.state(s1).graph().nodes()) {
        if (p.state(s1).graph().node(n).kind == ir::NodeKind::Access) boundary.insert(n);
        else closure.insert(n);
    }
    const core::SideEffects fx = core::analyze_side_effects(p, s1, closure, boundary, {{"N", 4}});
    return fx.system_state.count("a") > 0;
}

/// Sub-region analysis: disjoint sub-ranges produce no false side effect.
bool check_subregion_analysis() {
    const ir::Subset lo{{ir::Range::span(sym::cst(0), sym::cst(3))}};
    const ir::Subset hi{{ir::Range::span(sym::cst(8), sym::cst(9))}};
    const ir::Subset mid{{ir::Range::span(sym::cst(2), sym::cst(8))}};
    return !core::subsets_may_overlap(lo, hi, {}) && core::subsets_may_overlap(lo, mid, {});
}

/// Input generalization: a cutout's inputs can be re-sampled (different
/// values produce a runnable program with different outputs).
bool check_input_generalization() {
    const ir::SDFG p = [] {
        ir::SDFG q("gen");
        q.add_symbol("N");
        q.add_array("x", ir::DType::F64, {sym::symb("N")});
        q.add_array("y", ir::DType::F64, {sym::symb("N")});
        ir::State& st = q.state(q.add_state("main", true));
        workloads::ew_unary(q, st, st.add_access("x"), "y", "o = i * 2.0");
        return q;
    }();
    interp::Interpreter interp;
    auto c1 = bench::random_inputs(p, {{"N", 4}}, 1);
    auto c2 = bench::random_inputs(p, {{"N", 4}}, 2);
    if (!interp.run(p, c1).ok() || !interp.run(p, c2).ok()) return false;
    return !c1.buffers.at("y").bitwise_equal(c2.buffers.at("y"));
}

/// Size generalization: the same cutout runs under different sizes because
/// the shape expression N is kept, not a pointer (Sec. 2.1).
bool check_size_generalization() {
    const ir::SDFG p = [] {
        ir::SDFG q("gen");
        q.add_symbol("N");
        q.add_array("x", ir::DType::F64, {sym::symb("N") * sym::symb("N")});
        q.add_array("y", ir::DType::F64, {sym::symb("N") * sym::symb("N")});
        ir::State& st = q.state(q.add_state("main", true));
        workloads::ew_unary(q, st, st.add_access("x"), "y", "o = i");
        return q;
    }();
    interp::Interpreter interp;
    for (std::int64_t n : {1, 3, 9}) {
        auto ctx = bench::random_inputs(p, {{"N", n}}, 3);
        if (!interp.run(p, ctx).ok()) return false;
        if (ctx.buffers.at("y").size() != n * n) return false;
    }
    return true;
}

void BM_SideEffectAnalysis(benchmark::State& state) {
    for (auto _ : state) benchmark::DoNotOptimize(check_memory_side_effects());
}
BENCHMARK(BM_SideEffectAnalysis)->Unit(benchmark::kMicrosecond);

void print_report() {
    bench::banner("Table 1 - requirements for localized optimization testing");
    core::TextTable table(
        {"Capability", "Paper (parametric dataflow)", "Demonstrated here"});
    table.add_row({"Scalar side effects", "yes",
                   check_scalar_side_effects() ? "yes" : "NO"});
    table.add_row({"Memory side effects", "yes",
                   check_memory_side_effects() ? "yes" : "NO"});
    table.add_row({"Sub-region analysis", "yes",
                   check_subregion_analysis() ? "yes" : "NO"});
    table.add_row({"Input generalization", "yes",
                   check_input_generalization() ? "yes" : "NO"});
    table.add_row({"Size generalization", "yes",
                   check_size_generalization() ? "yes" : "NO"});
    std::printf("%s", table.to_string().c_str());
    std::printf("  (AST/SSA/PDG/MLIR rows of Table 1 are analytical; this build implements\n"
                "   the Parametric Dataflow row and demonstrates each claimed capability.)\n");
}

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    print_report();
    return 0;
}
