// Ablations over the design choices DESIGN.md calls out:
//  1. minimum input-flow cut on/off           -> sampled input volume
//  2. container minimization on/off           -> cutout memory footprint
//  3. gray-box constraints vs uniform sampling -> useful-trial rate
#include "bench_common.h"
#include "core/mincut.h"
#include "core/report.h"
#include "transforms/map_tiling.h"
#include "transforms/vectorization.h"
#include "workloads/mha.h"
#include "workloads/npbench.h"

namespace {

using namespace ff;

void BM_CutoutExtraction(benchmark::State& state) {
    const ir::SDFG p = workloads::build_npbench_kernel("gemm");
    xform::MapTiling tiling(4);
    const auto matches = tiling.find_matches(p);
    const xform::ChangeSet delta = tiling.affected_nodes(p, matches.at(0));
    core::CutoutOptions opts;
    opts.defaults = workloads::npbench_defaults();
    for (auto _ : state) {
        const core::Cutout c = core::extract_cutout(p, delta, opts);
        benchmark::DoNotOptimize(c.input_config.size());
    }
}
BENCHMARK(BM_CutoutExtraction)->Unit(benchmark::kMicrosecond);

void ablate_mincut() {
    const ir::SDFG p = workloads::build_mha_scale();
    xform::Vectorization vec(4);
    const auto match = vec.find_matches(p).at(0);
    const xform::ChangeSet delta = vec.affected_nodes(p, match);
    core::CutoutOptions opts;
    opts.defaults = workloads::mha_defaults(32);

    const core::Cutout without = core::extract_cutout(p, delta, opts);
    const core::MinCutResult with_cut =
        core::minimize_input_configuration(p, delta, without, opts);

    bench::banner("Ablation 1 - minimum input-flow cut (MHA, SM=32)");
    core::TextTable table({"configuration", "input elements", "cutout nodes"});
    table.add_row({"min-cut off", std::to_string(with_cut.volume_before),
                   std::to_string(without.program.state(without.program.start_state())
                                      .graph()
                                      .node_count())});
    table.add_row({"min-cut on", std::to_string(with_cut.volume_after),
                   std::to_string(with_cut.cutout.program
                                      .state(with_cut.cutout.program.start_state())
                                      .graph()
                                      .node_count())});
    std::printf("%s", table.to_string().c_str());
}

void ablate_container_minimization() {
    // A kernel whose cutout touches a small sub-range of a big container.
    ir::SDFG p("window");
    p.add_symbol("N");
    p.add_array("x", ir::DType::F64, {sym::symb("N")});
    p.add_array("y", ir::DType::F64, {sym::cst(8)});
    {
        ir::State& st = p.state(p.add_state("main", true));
        const sym::ExprPtr i = sym::symb("i");
        auto [entry, exit] =
            st.add_map("window", {"i"}, {ir::Range::span(sym::cst(0), sym::cst(7))});
        const ir::NodeId t = st.add_tasklet("window", "o = a");
        const ir::NodeId xin = st.add_access("x");
        const ir::NodeId yout = st.add_access("y");
        const ir::Subset head{{ir::Range::span(sym::cst(0), sym::cst(7))}};
        st.add_edge(xin, "", entry, "", ir::Memlet("x", head));
        st.add_edge(entry, "", t, "a", ir::Memlet("x", ir::Subset{{ir::Range::index(i)}}));
        st.add_edge(t, "o", exit, "", ir::Memlet("y", ir::Subset{{ir::Range::index(i)}}));
        st.add_edge(exit, "", yout, "", ir::Memlet("y", head));
    }
    xform::MapTiling tiling(4);
    const auto match = tiling.find_matches(p).at(0);
    const xform::ChangeSet delta = tiling.affected_nodes(p, match);
    core::CutoutOptions opts;
    opts.defaults = {{"N", 4096}};
    const core::Cutout minimized = core::extract_cutout(p, delta, opts);
    opts.minimize_containers = false;
    const core::Cutout full = core::extract_cutout(p, delta, opts);

    bench::banner("Ablation 2 - container minimization (window over N=4096 array)");
    core::TextTable table({"configuration", "input elements"});
    table.add_row({"minimization off",
                   std::to_string(full.concrete_input_volume(opts.defaults))});
    table.add_row({"minimization on",
                   std::to_string(minimized.concrete_input_volume(opts.defaults))});
    std::printf("%s", table.to_string().c_str());
}

void ablate_graybox() {
    // Rate of useful (non-crashing) trials with and without constraints.
    const ir::SDFG p = workloads::build_npbench_kernel("gemm");
    xform::MapTiling tiling(4);
    const auto match = tiling.find_matches(p).at(0);

    auto useful_rate = [&](bool gray) {
        core::FuzzConfig fc;
        fc.max_trials = 40;
        fc.sampler.gray_box = gray;
        fc.sampler.size_max = 6;
        fc.cutout.defaults = workloads::npbench_defaults();
        core::Fuzzer fuzzer(fc);
        const core::FuzzReport r = fuzzer.test_instance(p, tiling, match);
        return static_cast<double>(r.trials) /
               std::max(1, r.trials + r.uninteresting);
    };

    bench::banner("Ablation 3 - gray-box constraint analysis vs uniform sampling (gemm)");
    core::TextTable table({"sampling", "useful-trial rate"});
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f%%", 100.0 * useful_rate(true));
    table.add_row({"gray-box (constraints)", buf});
    std::snprintf(buf, sizeof(buf), "%.0f%%", 100.0 * useful_rate(false));
    table.add_row({"uniform", buf});
    std::printf("%s", table.to_string().c_str());
    std::printf("  (uniform sampling wastes most trials on invalid sizes — the paper's\n"
                "   motivation for deriving constraints, Sec. 5.1)\n");
}

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    ablate_mincut();
    ablate_container_minimization();
    ablate_graybox();
    return 0;
}
