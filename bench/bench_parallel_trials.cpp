// Single-instance trial scaling: executed trials per second of ONE
// transformation instance.
//
// PR 1 made a single trial cheap (compiled tasklet engine).  Since PR 3 the
// top-level parallelism is the audit-wide scheduler — one worker pool over
// every (instance, trial) unit of a whole audit (see
// bench_audit_throughput and docs/ARCHITECTURE.md); this bench isolates the
// floor of that scheduler: how the trials of a single instance spread over
// the pool when there is nothing else to overlap with.  Workers claim trial
// units of the one instance off the global queue, each bound to an
// execution context (two interpreters) over the instance's shared plan
// cache.  Every trial is a pure function of (seed, trial index), so the
// report is byte-identical at any worker count; only the wall clock
// changes.
//
// The workload is tasklet-dense on purpose (a correct map tiling on an
// elementwise kernel: every trial runs original + transformed end to end).
// Acceptance bar: >= 3x executed-trials/s at 8 threads vs 1 thread on
// hardware with >= 8 cores (the ratio degrades gracefully to the core
// count; single-core machines print ~1x).
#include "bench_common.h"

#include <cstdlib>
#include <thread>

#include "core/report.h"
#include "transforms/map_tiling.h"
#include "workloads/builders.h"

namespace {

using namespace ff;

constexpr int kTrials = 64;

/// Elementwise chain with a branchy activation: several compiled tasklets
/// per trial on both sides of the differential test.
ir::SDFG build_workload() {
    ir::SDFG p("parallel_trials");
    p.add_symbol("N");
    p.add_symbol("M");
    const sym::ExprPtr n = sym::symb("N"), m = sym::symb("M");
    p.add_array("x", ir::DType::F64, {n, m});
    p.add_array("w", ir::DType::F64, {n, m});
    p.add_array("t1", ir::DType::F64, {n, m}, /*transient=*/true);
    p.add_array("y", ir::DType::F64, {n, m});

    ir::State& st = p.state(p.add_state("main", true));
    const ir::NodeId x = st.add_access("x");
    const ir::NodeId w = st.add_access("w");
    const ir::NodeId t1 = workloads::ew_binary(p, st, x, w, "t1",
                                               "o = a > 0.0 ? a * b + 1.0 : -a * b - 1.0");
    workloads::ew_unary(p, st, t1, "y", "s = i * 0.5; o = s * s + i * 0.25");
    return p;
}

core::FuzzReport run_instance(int num_threads) {
    const ir::SDFG p = build_workload();
    xform::MapTiling tiling(4, xform::MapTiling::Variant::Correct);
    const auto matches = tiling.find_matches(p);
    if (matches.empty()) throw common::Error("no tiling match");

    core::FuzzConfig config;
    config.max_trials = kTrials;
    config.num_threads = num_threads;
    config.sampler.size_max = 24;  // large enough inputs to dominate setup
    config.cutout.defaults = {{"N", 24}, {"M", 24}};
    core::Fuzzer fuzzer(config);
    return fuzzer.test_instance(p, tiling, matches[0]);
}

/// Returns false when verdict/trial counts diverge across thread counts
/// (main() propagates this so the CI step actually fails).
bool print_report() {
    const int threads = bench::env_threads();
    const unsigned hw = std::thread::hardware_concurrency();

    const core::FuzzReport one = run_instance(1);
    const core::FuzzReport many = threads > 1 ? run_instance(threads) : one;

    bench::banner("Single-instance trial scaling - executed trials per second (" +
                  std::to_string(kTrials) + " trials, one instance)");
    std::printf("  1 thread : %10.1f trials/s  (verdict %s, %d trials)\n",
                one.trials_per_second, core::verdict_name(one.verdict), one.trials);
    std::printf("  %d threads: %10.1f trials/s  (verdict %s, %d trials, hw=%u)\n", threads,
                many.trials_per_second, core::verdict_name(many.verdict), many.trials, hw);
    std::printf("  scaling ratio: %.2fx (acceptance bar: >= 3x at 8 threads on >= 8 cores)\n",
                many.trials_per_second / one.trials_per_second);
    const bool identical = one.verdict == many.verdict && one.trials == many.trials &&
                           one.uninteresting == many.uninteresting;
    std::printf("  determinism (verdict/trial counts identical): %s\n",
                identical ? "PASS" : "FAIL");
    return identical;
}

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return print_report() ? 0 : 1;
}
