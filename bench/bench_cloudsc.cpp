// Sec. 6.4: optimizing weather forecasts (CLOUDSC).
//
// The three custom transformations the engineers wrote, audited on the
// CLOUDSC-like synthetic scheme with the paper's instance counts:
//   GPU kernel extraction : 62 instances, 48 alter semantics (1-2 trials each)
//   Loop unrolling        : 19 instances,  1 fails (negative-step loop)
//   Write elimination     : 136 instances, 1 fails (value read again later)
#include "bench_common.h"
#include "core/report.h"
#include "transforms/gpu_kernel_extraction.h"
#include "transforms/loop_unrolling.h"
#include "transforms/registry.h"
#include "transforms/write_elimination.h"
#include "workloads/cloudsc.h"

namespace {

using namespace ff;

struct PartResult {
    std::string name;
    int instances = 0;
    int failures = 0;
    int max_trials_on_failure = 0;
    double seconds = 0;
    double avg_seconds_per_instance = 0;
};

PartResult audit_part(workloads::CloudscPart part, const xform::Transformation& pass) {
    const workloads::CloudscConfig config;  // paper instance counts
    const ir::SDFG p = workloads::build_cloudsc(part, config);

    core::FuzzConfig fc;
    fc.max_trials = 100;  // "we test each instance ... over 100 trials"
    fc.cutout.defaults = workloads::cloudsc_defaults(12);
    fc.sampler.size_max = 12;
    core::Fuzzer fuzzer(fc);

    PartResult result;
    result.name = pass.name();
    for (const auto& match : pass.find_matches(p)) {
        const core::FuzzReport r = fuzzer.test_instance(p, pass, match);
        ++result.instances;
        result.seconds += r.seconds;
        if (r.failed()) {
            ++result.failures;
            result.max_trials_on_failure = std::max(result.max_trials_on_failure, r.trials);
        }
    }
    result.avg_seconds_per_instance = result.seconds / std::max(1, result.instances);
    return result;
}

void BM_GpuInstance(benchmark::State& state) {
    const workloads::CloudscConfig config;
    const ir::SDFG p =
        workloads::build_cloudsc(workloads::CloudscPart::GpuKernels, config);
    xform::GpuKernelExtraction pass(xform::GpuKernelExtraction::Variant::NoOutputCopyIn);
    const auto matches = pass.find_matches(p);
    core::FuzzConfig fc;
    fc.max_trials = 100;
    fc.cutout.defaults = workloads::cloudsc_defaults(12);
    core::Fuzzer fuzzer(fc);
    for (auto _ : state)
        benchmark::DoNotOptimize(fuzzer.test_instance(p, pass, matches.at(0)).verdict);
}
BENCHMARK(BM_GpuInstance)->Unit(benchmark::kMillisecond)->Iterations(3);

void print_report() {
    using V = xform::GpuKernelExtraction::Variant;
    using LU = xform::LoopUnrolling::Variant;
    using WE = xform::WriteElimination::Variant;
    const xform::GpuKernelExtraction gpu(V::NoOutputCopyIn);
    const xform::LoopUnrolling unroll(LU::PositiveStepFormula);
    const xform::WriteElimination elim(WE::CurrentStateOnly);

    const PartResult r_gpu = audit_part(workloads::CloudscPart::GpuKernels, gpu);
    const PartResult r_unroll = audit_part(workloads::CloudscPart::UnrollLoops, unroll);
    const PartResult r_elim = audit_part(workloads::CloudscPart::CopyChains, elim);

    bench::banner("Sec 6.4 - CLOUDSC custom transformations (100 trials per instance)");
    core::TextTable table({"Transformation", "Paper", "Measured", "max trials to fail",
                           "s/instance"});
    auto fmt = [](int i, int f) { return std::to_string(i) + " inst / " + std::to_string(f) + " fail"; };
    table.add_row({"Extract GPU kernels", "62 inst / 48 fail",
                   fmt(r_gpu.instances, r_gpu.failures),
                   std::to_string(r_gpu.max_trials_on_failure),
                   std::to_string(r_gpu.avg_seconds_per_instance)});
    table.add_row({"Loop unrolling", "19 inst / 1 fail",
                   fmt(r_unroll.instances, r_unroll.failures),
                   std::to_string(r_unroll.max_trials_on_failure),
                   std::to_string(r_unroll.avg_seconds_per_instance)});
    table.add_row({"Write elimination", "136 inst / 1 fail",
                   fmt(r_elim.instances, r_elim.failures),
                   std::to_string(r_elim.max_trials_on_failure),
                   std::to_string(r_elim.avg_seconds_per_instance)});
    std::printf("%s", table.to_string().c_str());
    bench::claim(
        "invalid GPU-extraction instances uncovered after 1-2 fuzzing trials each; "
        "one instance took 43 seconds vs 16 person-hours by hand",
        "every failing instance here is found within " +
            std::to_string(std::max({r_gpu.max_trials_on_failure,
                                     r_unroll.max_trials_on_failure,
                                     r_elim.max_trials_on_failure})) +
            " trials, " + std::to_string(r_gpu.avg_seconds_per_instance) + " s per instance");
}

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    print_report();
    return 0;
}
