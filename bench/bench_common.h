// Shared helpers for the benchmark binaries.
//
// Every bench regenerates one table or figure of the paper: it prints the
// published claim next to our measured value so EXPERIMENTS.md can record
// the comparison.  Absolute numbers differ (interpreter vs compiled code on
// the authors' testbed); the *shape* — who wins, by what factor, where the
// crossover lies — is what must match.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/rng.h"
#include "core/fuzzer.h"
#include "interp/interpreter.h"

namespace ff::bench {

inline void banner(const std::string& title) {
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void claim(const std::string& paper, const std::string& measured) {
    std::printf("  paper:    %s\n  measured: %s\n", paper.c_str(), measured.c_str());
}

/// Thread count for the 1-vs-N scaling sections: FF_BENCH_THREADS when set
/// to a positive integer (CI uses it), else `fallback`.
inline int env_threads(int fallback = 8) {
    if (const char* env = std::getenv("FF_BENCH_THREADS")) {
        const int v = std::atoi(env);
        if (v > 0) return v;
    }
    return fallback;
}

/// Deterministic random inputs for every non-transient container.
inline interp::Context random_inputs(const ir::SDFG& sdfg, const sym::Bindings& bindings,
                                     std::uint64_t seed = 4242) {
    interp::Context ctx;
    ctx.symbols = bindings;
    common::Rng rng(seed);
    for (const auto& [name, desc] : sdfg.containers()) {
        if (desc.transient) continue;
        interp::Buffer buf(desc.dtype, desc.concrete_shape(bindings));
        for (std::int64_t i = 0; i < buf.size(); ++i) {
            if (ir::dtype_is_float(desc.dtype))
                buf.store(i, interp::Value::from_double(rng.uniform_double(-1, 1)));
            else
                buf.store(i, interp::Value::from_int(rng.uniform_int(-4, 4)));
        }
        ctx.buffers.emplace(name, std::move(buf));
    }
    return ctx;
}

}  // namespace ff::bench
