// Fig. 5 / Sec. 6.1: vectorizing the scaling loop nest in BERT's Multi-Head
// Attention encoder layer.
//
// Regenerates four published numbers:
//  1. "this reduces the input configuration by 75%"           (min-cut)
//  2. "a 2x speedup in sampling input values and checking
//      system state equivalence"                              (per-trial cost)
//  3. "528 times faster compared to testing the transformation
//      by running the entire application"                     (cutout vs whole app)
//  4. "AFL++ takes an average of 157 trials ... our own gray-box fuzzing
//      ... only takes an average of 1 trial" to discover that correctness
//      depends on the input size                               (sampling policy)
//
// Note on (4): AFL-style byte-level mutation rarely lands on the size field
// of the serialized input, so we model it as a sampler that perturbs the
// size symbol with small probability; gray-box sampling draws sizes
// directly from the derived [1, size_max] constraint.
#include <chrono>

#include "bench_common.h"
#include "core/diff_test.h"
#include "core/mincut.h"
#include "core/report.h"
#include "transforms/vectorization.h"
#include "workloads/mha.h"

namespace {

using namespace ff;
using Clock = std::chrono::steady_clock;

constexpr std::int64_t kSm = 32;  // scaled-down BERT-LARGE (P = SM/8)

struct Setup {
    ir::SDFG program = workloads::build_mha_scale();
    xform::Vectorization vec{4};
    xform::Match match;
    xform::ChangeSet delta;
    core::CutoutOptions opts;

    Setup() {
        match = vec.find_matches(program).at(0);
        delta = vec.affected_nodes(program, match);
        opts.defaults = workloads::mha_defaults(kSm);
    }
};

/// Time to *sample one input configuration and check system-state
/// equivalence* — the paper's claim (2) is about exactly these two per-trial
/// costs (the expanded cutout deliberately trades extra recomputation for a
/// smaller sampled volume, so whole-trial time is not the metric).
double sample_check_seconds(const ir::SDFG& cutout_program, const std::set<std::string>& inputs,
                            const std::set<std::string>& system_state, int trials) {
    const sym::Bindings sizes = workloads::mha_defaults(kSm);
    // Representative system-state buffers for the comparison cost.
    std::map<std::string, interp::Buffer> lhs, rhs;
    for (const auto& name : system_state) {
        const ir::DataDesc& desc = cutout_program.container(name);
        lhs.emplace(name, interp::Buffer(desc.dtype, desc.concrete_shape(sizes)));
        rhs.emplace(name, interp::Buffer(desc.dtype, desc.concrete_shape(sizes)));
    }
    const auto t0 = Clock::now();
    for (int t = 0; t < trials; ++t) {
        common::Rng rng(common::splitmix64(static_cast<std::uint64_t>(t) + 17));
        for (const auto& name : inputs) {
            const ir::DataDesc& desc = cutout_program.container(name);
            interp::Buffer buf(desc.dtype, desc.concrete_shape(sizes));
            for (std::int64_t i = 0; i < buf.size(); ++i)
                buf.store(i, interp::Value::from_double(rng.uniform_double(-1, 1)));
            benchmark::DoNotOptimize(buf.size());
        }
        for (const auto& name : system_state)
            benchmark::DoNotOptimize(
                interp::compare_buffers(lhs.at(name), rhs.at(name), 1e-5).has_value());
    }
    return std::chrono::duration<double>(Clock::now() - t0).count() / trials;
}

void BM_MinCut(benchmark::State& state) {
    Setup s;
    const core::Cutout initial = core::extract_cutout(s.program, s.delta, s.opts);
    for (auto _ : state) {
        auto r = core::minimize_input_configuration(s.program, s.delta, initial, s.opts);
        benchmark::DoNotOptimize(r.improved);
    }
}
BENCHMARK(BM_MinCut)->Unit(benchmark::kMillisecond);

void print_report() {
    Setup s;

    // --- (1) input-space reduction ---
    const core::Cutout initial = core::extract_cutout(s.program, s.delta, s.opts);
    const core::MinCutResult mc =
        core::minimize_input_configuration(s.program, s.delta, initial, s.opts);
    const double reduction =
        1.0 - static_cast<double>(mc.volume_after) / static_cast<double>(mc.volume_before);

    bench::banner("Fig. 5 / Sec 6.1 - MHA scaling loop nest (B=8 H=16 SM=" +
                  std::to_string(kSm) + " P=SM/8)");
    bench::claim("min input-flow cut reduces the input configuration by 75%",
                 "reduction = " + std::to_string(reduction * 100.0) + "%  (" +
                     std::to_string(mc.volume_before) + " -> " +
                     std::to_string(mc.volume_after) + " elements; tmp replaced by A+Bmat)");

    // --- (2) sampling + checking speedup ---
    const double before_trial =
        sample_check_seconds(initial.program, initial.input_config, initial.system_state, 8);
    const double after_trial = sample_check_seconds(mc.cutout.program, mc.cutout.input_config,
                                                    mc.cutout.system_state, 8);
    bench::claim("~2x speedup in sampling inputs and checking system state",
                 "sample+check speedup = " + std::to_string(before_trial / after_trial) +
                     "x  (includes the recomputation the cut traded in)");

    // --- (3) cutout vs whole application ---
    // The paper compares fuzzing the loop-nest cutout against executing the
    // whole 12.1 s encoder per trial.  The asymmetry: per-trial cost of the
    // cutout is constant while the application around it grows.  We deepen
    // the encoder and time one execution of each at the BERT configuration.
    {
        const sym::Bindings sizes = workloads::mha_defaults(16);  // divisible by 4
        const int depth = 6;
        const ir::SDFG deep = workloads::build_mha_scale(depth);
        xform::Vectorization vec(4);
        const xform::Match deep_match = vec.find_matches(deep).at(0);
        core::CutoutOptions opts;
        opts.defaults = sizes;
        const core::Cutout deep_initial =
            core::extract_cutout(deep, vec.affected_nodes(deep, deep_match), opts);
        const core::MinCutResult deep_cut = core::minimize_input_configuration(
            deep, vec.affected_nodes(deep, deep_match), deep_initial, opts);

        auto execution_seconds = [&](const ir::SDFG& prog) {
            interp::Interpreter interp;
            interp::Context ctx = bench::random_inputs(prog, sizes, 5);
            const auto t0 = Clock::now();
            const auto result = interp.run(prog, ctx);
            if (!result.ok()) std::abort();
            return std::chrono::duration<double>(Clock::now() - t0).count();
        };
        // Warm both plans once, then time.
        const double whole_s =
            (execution_seconds(deep), execution_seconds(deep));
        const double cut_s = (execution_seconds(deep_cut.cutout.program),
                              execution_seconds(deep_cut.cutout.program));
        bench::claim(
            "cutout testing is up to 528x faster than running the entire application",
            "per-trial execution: whole encoder (" + std::to_string(depth) +
                " extra layers) / cutout = " + std::to_string(whole_s / cut_s) +
                "x  — grows linearly with the application around the cutout");
    }

    // --- (4) trials to discover the size-dependent bug ---
    // Gray-box: size sampled from [1, size_max]; AFL-model: size mutates
    // away from the configured SM with probability 1/128 per trial.
    const core::Constraints constraints =
        core::derive_constraints(s.program, mc.cutout.program);
    core::SamplerConfig gray;
    gray.size_max = 8;
    const core::InputSampler gray_sampler(gray);
    ir::SDFG transformed = mc.cutout.program;
    s.vec.apply(transformed, mc.cutout.remap_match(s.match));
    core::DifferentialTester tester(mc.cutout.program, transformed, mc.cutout.system_state);

    auto sample_with_sizes = [&](const sym::Bindings& sizes, std::uint64_t trial) {
        interp::Context ctx;
        ctx.symbols = sizes;
        common::Rng rng(common::splitmix64(trial));
        for (const auto& name : mc.cutout.input_config) {
            const ir::DataDesc& desc = mc.cutout.program.container(name);
            interp::Buffer buf(desc.dtype, desc.concrete_shape(ctx.symbols));
            for (std::int64_t i = 0; i < buf.size(); ++i)
                buf.store(i, interp::Value::from_double(rng.uniform_double(-1, 1)));
            ctx.buffers.emplace(name, std::move(buf));
        }
        return ctx;
    };

    auto trials_to_detect = [&](bool graybox, std::uint64_t seed) {
        common::Rng rng(seed);
        for (int trial = 1; trial <= 2000; ++trial) {
            interp::Context ctx;
            if (graybox) {
                // Gray-box: size symbols are sampled directly from their
                // derived [1, size_max] constraints.
                ctx = gray_sampler.sample(mc.cutout.program, mc.cutout.input_config,
                                          constraints, rng());
            } else {
                // Byte-mutation model: the serialized size field survives
                // most mutations, so sizes stay at the configured
                // (divisible) values except with small probability.
                sym::Bindings sizes = workloads::mha_defaults(8);
                if (rng.chance(1.0 / 128)) sizes["SM"] = rng.uniform_int(1, 16);
                ctx = sample_with_sizes(sizes, rng());
            }
            const auto outcome = tester.run_trial(ctx);
            if (outcome.verdict != core::Verdict::Pass &&
                outcome.verdict != core::Verdict::Uninteresting)
                return trial;
        }
        return 2000;
    };

    double gray_avg = 0, afl_avg = 0;
    const int repeats = 3;
    for (int r = 0; r < repeats; ++r) {
        gray_avg += trials_to_detect(true, 100 + static_cast<std::uint64_t>(r));
        afl_avg += trials_to_detect(false, 200 + static_cast<std::uint64_t>(r));
    }
    gray_avg /= repeats;
    afl_avg /= repeats;
    bench::claim(
        "size-dependence found after ~157 coverage-guided trials vs ~1 gray-box trial",
        "byte-mutation model: " + std::to_string(afl_avg) + " trials avg;  gray-box: " +
            std::to_string(gray_avg) + " trials avg");
}

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    print_report();
    return 0;
}
