// Table 2 / Sec. 6.3: auditing every built-in transformation on the
// NPBench-like suite.
//
// For each suite kernel, every instance of every registry pass is tested
// through the full FuzzyFlow pipeline.  With the Table 2 bug inventory
// planted, the audit must flag exactly the seven transformations the paper
// lists (six hard bugs + input-dependent Vectorization) and clear the rest.
#include "bench_common.h"
#include "core/report.h"
#include "transforms/registry.h"
#include "workloads/npbench.h"

namespace {

using namespace ff;

core::FuzzConfig audit_config() {
    core::FuzzConfig config;
    config.max_trials = 10;
    config.diff.exec.max_state_transitions = 2000;
    config.sampler.size_max = 6;
    config.cutout.defaults = workloads::npbench_defaults();
    return config;
}

std::vector<core::FuzzReport> run_audit() {
    core::Fuzzer fuzzer(audit_config());
    const auto passes = xform::builtin_transformations({.table2_bugs = true});
    std::vector<core::FuzzReport> reports;
    for (const auto& entry : workloads::npbench_suite()) {
        for (const auto& r : fuzzer.audit(entry.sdfg, passes)) reports.push_back(r);
    }
    return reports;
}

void BM_SingleKernelAudit(benchmark::State& state) {
    core::Fuzzer fuzzer(audit_config());
    const auto passes = xform::builtin_transformations({.table2_bugs = true});
    const ir::SDFG p = workloads::build_npbench_kernel("gemm");
    for (auto _ : state) {
        const auto reports = fuzzer.audit(p, passes);
        benchmark::DoNotOptimize(reports.size());
    }
}
BENCHMARK(BM_SingleKernelAudit)->Unit(benchmark::kMillisecond)->Iterations(1);

void print_report() {
    const auto reports = run_audit();
    const auto summaries = core::summarize_audit(reports);

    int total_instances = 0, total_failures = 0;
    double total_seconds = 0;
    for (const auto& s : summaries) {
        total_instances += s.instances;
        total_failures += s.failures;
        total_seconds += s.total_seconds;
    }

    bench::banner("Table 2 / Sec 6.3 - NPBench audit of built-in transformations");
    bench::claim("52 benchmarks, 3280 instances; 6 buggy + 1 input-dependent transformation",
                 std::to_string(workloads::npbench_suite().size()) + " kernels, " +
                     std::to_string(total_instances) + " instances, " +
                     std::to_string(total_failures) + " failing; 7 transformations flagged");
    std::printf("%s", core::audit_table(summaries).c_str());

    // Paper's Table 2 expectation, side by side.
    core::TextTable expectation({"Transformation", "Paper verdict", "Flagged here"});
    struct Row {
        const char* ours;
        const char* paper;
    };
    const Row rows[] = {
        {"BufferTiling[bug:reversed-offset]", "x (semantics)"},
        {"TaskletFusion[bug:ignores-downstream-reads]", "x (semantics)"},
        {"Vectorization", "\" (input dependent)"},
        {"MapExpansion[bug:dangling-exit]", "invalid code"},
        {"MapReduceFusion[bug:stale-access-node]", "invalid code"},
        {"StateAssignElimination[bug:next-state-only]", "invalid code"},
        {"SymbolAliasPromotion[bug:interstate-only]", "invalid code"},
        {"MapTiling", "passes"},
        {"MapFusion", "passes"},
        {"WriteElimination", "passes"},
        {"LoopUnrolling", "passes"},
    };
    for (const Row& row : rows) {
        int failures = 0;
        bool seen = false;
        for (const auto& s : summaries) {
            if (s.transformation == row.ours) {
                failures = s.failures;
                seen = true;
            }
        }
        expectation.add_row({row.ours, row.paper,
                             !seen ? "(no matches)"
                                   : failures > 0 ? "flagged (" + std::to_string(failures) + ")"
                                                  : "clean"});
    }
    std::printf("%s", expectation.to_string().c_str());
    std::printf("  total audit time: %.1f s over %d instances\n", total_seconds,
                total_instances);
}

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    print_report();
    return 0;
}
