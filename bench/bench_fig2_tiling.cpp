// Fig. 2 (and Fig. 3): the off-by-one tiling bug in the matrix chain
// multiplication R = ((A*B)*C)*D.
//
// Regenerates: (a) detection of the `<=` tiling bug through the extracted
// mm2 cutout, (b) the per-trial cost of cutout testing vs whole-application
// testing (the motivation for cutouts: "executing the application would
// expose this problem, but ... that becomes costly").
#include "bench_common.h"
#include "core/report.h"
#include "transforms/map_tiling.h"
#include "workloads/matchain.h"

namespace {

using namespace ff;

constexpr std::int64_t kN = 12;

core::FuzzConfig make_config(bool whole_program) {
    core::FuzzConfig config;
    config.max_trials = 10;
    config.sampler.size_max = kN;
    config.cutout.defaults = {{"N", kN}};
    config.whole_program = whole_program;
    return config;
}

const xform::Match& mm2_match(const ir::SDFG& p, const xform::MapTiling& tiling) {
    static std::vector<xform::Match> matches = tiling.find_matches(p);
    for (const auto& m : matches)
        if (m.description.find("'mm2'") != std::string::npos) return m;
    std::abort();
}

void BM_CutoutTrial(benchmark::State& state) {
    const ir::SDFG p = workloads::build_matrix_chain();
    const xform::MapTiling buggy(4, xform::MapTiling::Variant::OffByOne);
    core::Fuzzer fuzzer(make_config(false));
    const xform::Match& m = mm2_match(p, buggy);
    for (auto _ : state) {
        const core::FuzzReport r = fuzzer.test_instance(p, buggy, m);
        benchmark::DoNotOptimize(r.trials);
    }
}
BENCHMARK(BM_CutoutTrial)->Unit(benchmark::kMillisecond);

void BM_WholeProgramTrial(benchmark::State& state) {
    const ir::SDFG p = workloads::build_matrix_chain();
    const xform::MapTiling buggy(4, xform::MapTiling::Variant::OffByOne);
    core::Fuzzer fuzzer(make_config(true));
    const xform::Match& m = mm2_match(p, buggy);
    for (auto _ : state) {
        const core::FuzzReport r = fuzzer.test_instance(p, buggy, m);
        benchmark::DoNotOptimize(r.trials);
    }
}
BENCHMARK(BM_WholeProgramTrial)->Unit(benchmark::kMillisecond);

void print_report() {
    const ir::SDFG p = workloads::build_matrix_chain();
    const xform::MapTiling buggy(4, xform::MapTiling::Variant::OffByOne);
    const xform::Match& m = mm2_match(p, buggy);

    core::Fuzzer cutout_fuzzer(make_config(false));
    const core::FuzzReport cut = cutout_fuzzer.test_instance(p, buggy, m);
    core::Fuzzer whole_fuzzer(make_config(true));
    const core::FuzzReport whole = whole_fuzzer.test_instance(p, buggy, m);

    bench::banner("Fig. 2 - off-by-one tiling on matrix chain (N=" + std::to_string(kN) + ")");
    bench::claim("the <= tiling bug changes semantics and the mm2 cutout catches it",
                 std::string("cutout verdict = ") + core::verdict_name(cut.verdict) + " after " +
                     std::to_string(cut.trials) + " trial(s)");
    bench::claim("whole-program testing also catches it, at higher cost",
                 std::string("whole-program verdict = ") + core::verdict_name(whole.verdict));
    std::printf("  cutout: %zu of %zu dataflow nodes, %.2fx faster than whole-program\n",
                cut.cutout_nodes, cut.program_nodes,
                whole.seconds / std::max(cut.seconds, 1e-9));

    core::TextTable table({"mode", "nodes", "verdict", "trials", "seconds"});
    table.add_row({"cutout (FuzzyFlow)", std::to_string(cut.cutout_nodes),
                   core::verdict_name(cut.verdict), std::to_string(cut.trials),
                   std::to_string(cut.seconds)});
    table.add_row({"whole program", std::to_string(whole.cutout_nodes),
                   core::verdict_name(whole.verdict), std::to_string(whole.trials),
                   std::to_string(whole.seconds)});
    std::printf("%s", table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    print_report();
    return 0;
}
