// Interpreter hot-path microbenchmark: tasklet executions per second.
//
// The inner loop of every fuzzing trial is one tasklet execution per map
// point, on both sides of the differential test.  This bench measures that
// loop head-to-head on the three engines:
//
//  * reference   — recursive AST walker, per-point ConnectorEnv (std::map)
//    construction and fresh gather/scatter vectors;
//  * generic     — bytecode VM over precomputed memlet access plans and a
//    reusable flat scratch arena (ExecConfig::specialize = false);
//  * specialized — flat-stride map kernels + the untagged f64/i64 VMs on
//    top of the generic path (batch_segments = false here, so this is the
//    per-point kernel loop; see docs/ARCHITECTURE.md "Specialization
//    tiers");
//  * batched     — segment-eligible kernels run the whole stride-1 inner
//    extent per dispatch through the vertical batch VMs (the default).
//
// The workload is tasklet-dense on purpose (chained elementwise maps with
// arithmetic, a matmul-style accumulation nest, and a branchy activation —
// the shapes that dominate the MHA and CLOUDSC workloads); every container
// is constant-extent f64, so the specialization tiers fully apply.  The
// acceptance bars: compiled >= 3x the reference engine, and specialized
// >= 1.5x the generic compiled path (both on one thread).
//
// A second, flat-stride section measures the batched segment tier against
// the per-point kernel loop on straight-line 1-D chains per dtype (f64,
// f32, i64).  Acceptance bar: batched >= 2x per-point on the f64 section.
//
// Lines prefixed BENCH_KV are machine-readable; scripts/bench_hotpath_json.py
// folds them into a BENCH_hotpath.json baseline artifact (CI uploads it).
#include "bench_common.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "workloads/builders.h"

namespace {

using namespace ff;

constexpr std::int64_t kN = 96;
constexpr std::int64_t kM = 96;
constexpr std::int64_t kK = 24;

/// Chain of elementwise maps plus an accumulation nest; returns the number
/// of tasklet executions one run() performs.
ir::SDFG build_hotpath() {
    ir::SDFG p("hotpath");
    p.add_symbol("N");
    p.add_symbol("M");
    p.add_symbol("K");
    const sym::ExprPtr n = sym::symb("N"), m = sym::symb("M"), k = sym::symb("K");
    p.add_array("x", ir::DType::F64, {n, m});
    p.add_array("w", ir::DType::F64, {n, m});
    p.add_array("t1", ir::DType::F64, {n, m}, /*transient=*/true);
    p.add_array("t2", ir::DType::F64, {n, m}, /*transient=*/true);
    p.add_array("y", ir::DType::F64, {n, m});
    p.add_array("a", ir::DType::F64, {n, k});
    p.add_array("b", ir::DType::F64, {k, m});
    p.add_array("c", ir::DType::F64, {n, m});

    ir::State& st = p.state(p.add_state("main", true));
    const ir::NodeId x = st.add_access("x");
    const ir::NodeId w = st.add_access("w");
    // Branchy activation + arithmetic: exercises constant folding, jumps
    // and the full binary-op dispatch.
    const ir::NodeId t1 = workloads::ew_binary(p, st, x, w, "t1",
                                               "o = a > 0.0 ? a * b + 1.0 : -a * b - 1.0");
    const ir::NodeId t2 = workloads::ew_unary(p, st, t1, "t2",
                                              "s = i * 0.5; o = s * s + i * 0.25");
    workloads::ew_unary(p, st, t2, "y", "o = max(i, 0.0) + min(i, 0.0) * 0.125");

    const ir::NodeId a = st.add_access("a");
    const ir::NodeId b = st.add_access("b");
    const ir::NodeId c0 = workloads::zero_init(p, st, "c");
    workloads::matmul_nest(p, st, a, b, c0, n, k, m, "acc");
    return p;
}

std::int64_t tasklet_executions_per_run() {
    // Three elementwise maps (N*M each), the zero-init map (N*M), and the
    // matmul accumulation nest (N*M*K).
    return 4 * kN * kM + kN * kM * kK;
}

sym::Bindings bindings() { return {{"N", kN}, {"M", kM}, {"K", kK}}; }

/// Executions/second on one engine; runs `reps` full program executions
/// against a warm interpreter (plan + tasklet caches populated).  `spec`
/// optionally receives the plan cache's specialization counters.
double measure(bool compiled, bool specialize, bool batch, int reps,
               interp::SpecStats* spec = nullptr) {
    ir::SDFG p = build_hotpath();
    interp::ExecConfig cfg;
    cfg.use_compiled_tasklets = compiled;
    cfg.specialize = specialize;
    cfg.batch_segments = batch;
    interp::Interpreter interp(cfg);

    interp::Context warm = bench::random_inputs(p, bindings());
    if (!interp.run(p, warm).ok()) throw common::Error("hotpath warmup failed");

    // Pre-sample the input configurations so the timed region measures the
    // execution engines only, not the input generator.
    std::vector<interp::Context> contexts;
    contexts.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r)
        contexts.push_back(bench::random_inputs(p, bindings(), 4242 + static_cast<unsigned>(r)));

    const auto t0 = std::chrono::steady_clock::now();
    for (interp::Context& ctx : contexts)
        if (!interp.run(p, ctx).ok()) throw common::Error("hotpath run failed");
    const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                            .count();
    if (spec) *spec = interp.plan_cache()->spec_stats();
    return static_cast<double>(tasklet_executions_per_run()) * reps / secs;
}

// --- Flat-stride batched vs per-point, per dtype ------------------------------

constexpr std::int64_t kFlatN = 1 << 15;

/// Two chained straight-line 1-D elementwise maps over `dtype` containers:
/// the shape the segment tier exists for (every launch is one contiguous
/// stride-1 segment of kFlatN points).
ir::SDFG build_flat(ir::DType dtype) {
    ir::SDFG p("flat");
    p.add_symbol("N");
    const sym::ExprPtr n = sym::symb("N");
    p.add_array("x", dtype, {n});
    p.add_array("t", dtype, {n}, /*transient=*/true);
    p.add_array("y", dtype, {n});
    ir::State& st = p.state(p.add_state("main", true));
    const bool is_float = ir::dtype_is_float(dtype);
    const ir::NodeId t = workloads::ew_unary(
        p, st, st.add_access("x"), "t",
        is_float ? "o = i * 0.5 + 1.0" : "o = i * 3 + 1");
    workloads::ew_unary(p, st, t, "y",
                        is_float ? "o = i * i - i * 0.25" : "o = i * i - i");
    return p;
}

/// Map points/second on the flat-stride chain for one dtype, batched or
/// per-point (both run the specialized kernel tier).
double measure_flat(ir::DType dtype, bool batch, int reps,
                    interp::SpecStats* spec = nullptr) {
    ir::SDFG p = build_flat(dtype);
    interp::ExecConfig cfg;
    cfg.batch_segments = batch;
    interp::Interpreter interp(cfg);
    const sym::Bindings binds{{"N", kFlatN}};

    interp::Context warm = bench::random_inputs(p, binds);
    if (!interp.run(p, warm).ok()) throw common::Error("flat warmup failed");

    std::vector<interp::Context> contexts;
    contexts.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r)
        contexts.push_back(bench::random_inputs(p, binds, 777 + static_cast<unsigned>(r)));

    const auto t0 = std::chrono::steady_clock::now();
    for (interp::Context& ctx : contexts)
        if (!interp.run(p, ctx).ok()) throw common::Error("flat run failed");
    const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                            .count();
    if (spec) *spec = interp.plan_cache()->spec_stats();
    return static_cast<double>(2 * kFlatN) * reps / secs;
}

void BM_HotpathReference(benchmark::State& state) {
    ir::SDFG p = build_hotpath();
    interp::ExecConfig cfg;
    cfg.use_compiled_tasklets = false;
    interp::Interpreter interp(cfg);
    for (auto _ : state) {
        interp::Context ctx = bench::random_inputs(p, bindings());
        interp.run(p, ctx);
    }
    state.SetItemsProcessed(state.iterations() * tasklet_executions_per_run());
}
BENCHMARK(BM_HotpathReference)->Unit(benchmark::kMillisecond);

void BM_HotpathCompiled(benchmark::State& state) {
    ir::SDFG p = build_hotpath();
    interp::ExecConfig cfg;
    cfg.use_compiled_tasklets = true;
    interp::Interpreter interp(cfg);
    for (auto _ : state) {
        interp::Context ctx = bench::random_inputs(p, bindings());
        interp.run(p, ctx);
    }
    state.SetItemsProcessed(state.iterations() * tasklet_executions_per_run());
}
BENCHMARK(BM_HotpathCompiled)->Unit(benchmark::kMillisecond);

/// Aggregate executions/second with `threads` interpreters running the same
/// immutable SDFG concurrently over one shared PlanCache — the execution
/// shape of the parallel fuzzer (per-thread scratch, shared plans).
double measure_parallel(int threads, int reps_per_thread) {
    ir::SDFG p = build_hotpath();
    interp::ExecConfig cfg;
    cfg.use_compiled_tasklets = true;
    auto cache = std::make_shared<interp::PlanCache>();

    // Pre-sample every context so the timed region is pure execution.
    std::vector<std::vector<interp::Context>> contexts(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t)
        for (int r = 0; r < reps_per_thread; ++r)
            contexts[static_cast<std::size_t>(t)].push_back(bench::random_inputs(
                p, bindings(), 4242 + static_cast<unsigned>(t * reps_per_thread + r)));

    // Warm the shared cache once so the timed region measures steady state.
    {
        interp::Interpreter warm_interp(cfg, cache);
        interp::Context warm = bench::random_inputs(p, bindings());
        if (!warm_interp.run(p, warm).ok()) throw common::Error("hotpath warmup failed");
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::atomic<bool> failed{false};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            interp::Interpreter interp(cfg, cache);
            for (interp::Context& ctx : contexts[static_cast<std::size_t>(t)])
                if (!interp.run(p, ctx).ok()) failed.store(true);
        });
    }
    for (std::thread& th : pool) th.join();
    if (failed.load()) throw common::Error("hotpath parallel run failed");
    const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                            .count();
    return static_cast<double>(tasklet_executions_per_run()) * threads * reps_per_thread / secs;
}

void print_report() {
    const int reps = 6;
    const double ref = measure(/*compiled=*/false, /*specialize=*/false, /*batch=*/false, reps);
    const double generic =
        measure(/*compiled=*/true, /*specialize=*/false, /*batch=*/false, reps);
    interp::SpecStats spec_stats;
    const double specialized = measure(/*compiled=*/true, /*specialize=*/true, /*batch=*/false,
                                       reps, &spec_stats);
    interp::SpecStats batch_stats;
    const double batched = measure(/*compiled=*/true, /*specialize=*/true, /*batch=*/true,
                                   reps, &batch_stats);
    // The 3x bar gates the *generic* compiled path (the pre-specialization
    // guarantee — still a supported mode and the kernel fallback target);
    // the 1.5x bar gates specialization on top of it.
    const double compiled_speedup = generic / ref;
    const double spec_speedup = specialized / generic;
    const double total_speedup = specialized / ref;

    bench::banner("Interpreter hot path - tasklet executions per second (N=" +
                  std::to_string(kN) + ", M=" + std::to_string(kM) + ", K=" +
                  std::to_string(kK) + ", constant-extent f64)");
    std::printf("  reference   (AST walker + ConnectorEnv): %12.0f exec/s\n", ref);
    std::printf("  generic     (bytecode VM, no kernels)  : %12.0f exec/s\n", generic);
    std::printf("  specialized (per-point kernel loop)    : %12.0f exec/s\n", specialized);
    std::printf("  batched     (segment tier, the default): %12.0f exec/s\n", batched);
    std::printf("  generic compiled speedup: %.2fx vs reference (acceptance bar: >= 3x)  -> %s\n",
                compiled_speedup, compiled_speedup >= 3.0 ? "PASS" : "FAIL");
    std::printf("  specialization speedup: %.2fx vs generic (acceptance bar: >= 1.5x)  -> %s\n",
                spec_speedup, spec_speedup >= 1.5 ? "PASS" : "FAIL");
    std::printf("  total: %.2fx vs reference\n", total_speedup);

    bench::banner("Specialization hit rates (plan classification + launches)");
    std::printf("  scopes: %lld/%lld flat-stride (%lld segment-eligible), "
                "tasklets: %lld f64 + %lld i64 of %lld untagged\n",
                static_cast<long long>(spec_stats.scopes_specialized),
                static_cast<long long>(spec_stats.scopes_planned),
                static_cast<long long>(spec_stats.scopes_segmented),
                static_cast<long long>(spec_stats.tasklets_f64),
                static_cast<long long>(spec_stats.tasklets_i64),
                static_cast<long long>(spec_stats.tasklets_planned));
    std::printf("  kernel launches: %lld committed, %lld fell back to the odometer, "
                "%lld ran batched segments\n",
                static_cast<long long>(spec_stats.kernel_launches),
                static_cast<long long>(spec_stats.kernel_fallbacks),
                static_cast<long long>(batch_stats.segment_launches));

    // Flat-stride straight-line chains, per dtype: the segment tier's home
    // turf.  The f64 section carries the acceptance bar.
    struct FlatRow {
        const char* name;
        ir::DType dtype;
        double perpoint, batched;
        std::int64_t segments;
    };
    FlatRow flats[] = {{"f64", ir::DType::F64, 0, 0, 0},
                       {"f32", ir::DType::F32, 0, 0, 0},
                       {"i64", ir::DType::I64, 0, 0, 0}};
    bench::banner("Batched segment tier - flat-stride map points per second (N=" +
                  std::to_string(kFlatN) + ", 2 straight-line maps)");
    for (FlatRow& row : flats) {
        interp::SpecStats fs;
        row.perpoint = measure_flat(row.dtype, /*batch=*/false, 20);
        row.batched = measure_flat(row.dtype, /*batch=*/true, 20, &fs);
        row.segments = fs.segment_launches;
        const double speedup = row.batched / row.perpoint;
        std::printf("  %s: per-point %12.0f pts/s, batched %12.0f pts/s -> %.2fx%s\n",
                    row.name, row.perpoint, row.batched, speedup,
                    row.dtype == ir::DType::F64
                        ? (speedup >= 2.0 ? "  (acceptance bar: >= 2x) PASS"
                                          : "  (acceptance bar: >= 2x) FAIL")
                        : "");
    }

    // Thread scaling over the shared plan cache.  FF_BENCH_THREADS overrides
    // the thread count (CI runs 1 and N and prints the ratio).
    const int threads = bench::env_threads();
    const unsigned hw = std::thread::hardware_concurrency();
    bench::banner("Parallel interpreters over a shared plan cache");
    const double one = measure_parallel(1, 4);
    const double many = threads > 1 ? measure_parallel(threads, 4) : one;
    std::printf("  1 thread : %12.0f exec/s\n", one);
    std::printf("  %d threads: %12.0f exec/s (hardware_concurrency=%u)\n", threads, many, hw);
    std::printf("  scaling ratio: %.2fx\n", many / one);

    // Machine-readable baseline (scripts/bench_hotpath_json.py).
    std::printf("BENCH_KV workload=hotpath_const_extent_f64\n");
    std::printf("BENCH_KV n=%lld m=%lld k=%lld\n", static_cast<long long>(kN),
                static_cast<long long>(kM), static_cast<long long>(kK));
    std::printf("BENCH_KV reference_exec_per_s=%.0f\n", ref);
    std::printf("BENCH_KV generic_exec_per_s=%.0f\n", generic);
    std::printf("BENCH_KV specialized_exec_per_s=%.0f\n", specialized);
    std::printf("BENCH_KV batched_exec_per_s=%.0f\n", batched);
    std::printf("BENCH_KV compiled_speedup=%.3f\n", compiled_speedup);
    std::printf("BENCH_KV specialization_speedup=%.3f\n", spec_speedup);
    std::printf("BENCH_KV batched_speedup=%.3f\n", batched / specialized);
    std::printf("BENCH_KV total_speedup=%.3f\n", total_speedup);
    std::printf("BENCH_KV scopes_specialized=%lld scopes_planned=%lld scopes_segmented=%lld\n",
                static_cast<long long>(spec_stats.scopes_specialized),
                static_cast<long long>(spec_stats.scopes_planned),
                static_cast<long long>(spec_stats.scopes_segmented));
    std::printf("BENCH_KV tasklets_f64=%lld tasklets_i64=%lld tasklets_planned=%lld\n",
                static_cast<long long>(spec_stats.tasklets_f64),
                static_cast<long long>(spec_stats.tasklets_i64),
                static_cast<long long>(spec_stats.tasklets_planned));
    std::printf("BENCH_KV kernel_launches=%lld kernel_fallbacks=%lld segment_launches=%lld\n",
                static_cast<long long>(spec_stats.kernel_launches),
                static_cast<long long>(spec_stats.kernel_fallbacks),
                static_cast<long long>(batch_stats.segment_launches));
    std::printf("BENCH_KV flat_n=%lld\n", static_cast<long long>(kFlatN));
    for (const FlatRow& row : flats) {
        std::printf("BENCH_KV flat_%s_perpoint_pts_per_s=%.0f\n", row.name, row.perpoint);
        std::printf("BENCH_KV flat_%s_batched_pts_per_s=%.0f\n", row.name, row.batched);
        std::printf("BENCH_KV flat_%s_batch_speedup=%.3f\n", row.name,
                    row.batched / row.perpoint);
        std::printf("BENCH_KV flat_%s_segment_launches=%lld\n", row.name,
                    static_cast<long long>(row.segments));
    }
    std::printf("BENCH_KV parallel_1t_exec_per_s=%.0f\n", one);
    std::printf("BENCH_KV parallel_nt_exec_per_s=%.0f parallel_threads=%d\n", many, threads);
}

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    print_report();
    return 0;
}
