#include "coord/net_fault.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/error.h"
#include "common/json.h"

namespace ff::coord {

namespace {

using SteadyClock = std::chrono::steady_clock;

std::int64_t steady_now_ms() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               SteadyClock::now().time_since_epoch())
        .count();
}

std::vector<std::string> split(const std::string& s, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t end = s.find(sep, start);
        if (end == std::string::npos) end = s.size();
        out.push_back(s.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

std::int64_t parse_i64(const std::string& key, const std::string& value) {
    char* end = nullptr;
    errno = 0;
    long long v = std::strtoll(value.c_str(), &end, 10);
    if (value.empty() || end != value.c_str() + value.size() || errno != 0) {
        throw common::Error("net fault plan: " + key + "=" + value + ": expected an integer");
    }
    return static_cast<std::int64_t>(v);
}

double parse_f64(const std::string& key, const std::string& value) {
    char* end = nullptr;
    errno = 0;
    double v = std::strtod(value.c_str(), &end);
    if (value.empty() || end != value.c_str() + value.size() || errno != 0) {
        throw common::Error("net fault plan: " + key + "=" + value + ": expected a number");
    }
    return v;
}

std::uint32_t get_u32_be(const char* in) {
    return (static_cast<std::uint32_t>(static_cast<unsigned char>(in[0])) << 24) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(in[1])) << 16) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(in[2])) << 8) |
           static_cast<std::uint32_t>(static_cast<unsigned char>(in[3]));
}

/// Reads whole raw frames (header + payload, undecoded) off a socket.
/// The proxy delimits frames without validating them — corrupt bytes must
/// pass through so the *receiver's* CRC check is what classifies them.
struct RawFrameReader {
    int fd;
    std::string buf;

    /// Returns false on EOF, a stream error, or an un-delimitable stream
    /// (oversized length prefix — without a trustable length the proxy can
    /// only hang up, which is also what a real middlebox would do).
    bool next(std::string& frame) {
        while (true) {
            if (buf.size() >= kFrameHeaderBytes) {
                const std::uint32_t len = get_u32_be(buf.data());
                if (len > kMaxFrameBytes) return false;
                const std::size_t total = kFrameHeaderBytes + len;
                if (buf.size() >= total) {
                    frame = buf.substr(0, total);
                    buf.erase(0, total);
                    return true;
                }
            }
            char chunk[4096];
            const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n < 0) {
                if (errno == EINTR) continue;
                return false;
            }
            if (n == 0) return false;
            buf.append(chunk, static_cast<std::size_t>(n));
        }
    }
};

bool send_all(int fd, const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

}  // namespace

NetFaultPlan NetFaultPlan::parse(const std::string& spec) {
    NetFaultPlan plan;
    if (spec.empty()) return plan;
    for (const std::string& token : split(spec, ',')) {
        if (token.empty()) continue;
        std::size_t eq = token.find('=');
        std::string key = token.substr(0, eq);
        std::string value = eq == std::string::npos ? "" : token.substr(eq + 1);
        bool has_value = eq != std::string::npos;
        if (key == "drop-frame-every-n" && has_value) {
            plan.drop_frame_every_n = parse_i64(key, value);
            if (plan.drop_frame_every_n == 1) {
                throw common::Error(
                    "net fault plan: drop-frame-every-n=1 would drop every hello and "
                    "wedge the handshake forever; use n >= 2");
            }
        } else if (key == "delay-frame-ms" && has_value) {
            plan.delay_frame_ms = parse_f64(key, value);
        } else if ((key == "duplicate-frame" || key == "duplicate-frame-every-n") &&
                   has_value) {
            plan.duplicate_frame_every_n = parse_i64(key, value);
        } else if (key == "corrupt-frame-byte" && has_value) {
            plan.corrupt_frame_byte = parse_i64(key, value);
        } else if (key == "partition-after-units" && has_value) {
            plan.partition_after_units = parse_i64(key, value);
        } else if (key == "heal-ms" && has_value) {
            plan.heal_ms = parse_f64(key, value);
        } else {
            throw common::Error(
                "net fault plan: unknown token '" + token +
                "' (expected drop-frame-every-n=N, delay-frame-ms=N, "
                "duplicate-frame=N, corrupt-frame-byte=N, "
                "partition-after-units=N or heal-ms=N)");
        }
    }
    return plan;
}

std::string NetFaultPlan::describe() const {
    if (empty()) return "none";
    std::string out;
    auto add = [&out](const std::string& piece) {
        if (!out.empty()) out += ",";
        out += piece;
    };
    if (drop_frame_every_n > 0) {
        add("drop-frame-every-n=" + std::to_string(drop_frame_every_n));
    }
    if (delay_frame_ms > 0.0) {
        add("delay-frame-ms=" + std::to_string(static_cast<long long>(delay_frame_ms)));
    }
    if (duplicate_frame_every_n > 0) {
        add("duplicate-frame=" + std::to_string(duplicate_frame_every_n));
    }
    if (corrupt_frame_byte > 0) {
        add("corrupt-frame-byte=" + std::to_string(corrupt_frame_byte));
    }
    if (partition_after_units >= 0) {
        add("partition-after-units=" + std::to_string(partition_after_units));
        add("heal-ms=" + std::to_string(static_cast<long long>(heal_ms)));
    }
    return out;
}

/// One relayed connection: the accepted worker socket and the upstream
/// coordinator socket it maps to.  Severing uses shutdown() so fds stay
/// valid for the pump threads still blocked on them; close() happens once,
/// at destruction.
struct FrameProxy::Conn {
    int client_fd = -1;
    int upstream_fd = -1;

    void sever() {
        ::shutdown(client_fd, SHUT_RDWR);
        ::shutdown(upstream_fd, SHUT_RDWR);
    }
    ~Conn() {
        if (client_fd >= 0) ::close(client_fd);
        if (upstream_fd >= 0) ::close(upstream_fd);
    }
};

FrameProxy::FrameProxy(Endpoint listen, Endpoint upstream, NetFaultPlan plan)
    : listen_(std::move(listen)), upstream_(std::move(upstream)), plan_(plan) {
    int bound_port = 0;
    listen_fd_ = coord::listen_endpoint(listen_, /*backlog=*/64, &bound_port);
    if (listen_.tcp) listen_.port = bound_port;
    accept_thread_ = std::thread([this] { accept_loop(); });
}

FrameProxy::~FrameProxy() { stop(); }

bool FrameProxy::partitioned_now() {
    const std::int64_t until = partition_until_ms_.load();
    return until != 0 && steady_now_ms() < until;
}

void FrameProxy::fire_partition() {
    partition_until_ms_.store(steady_now_ms() +
                              static_cast<std::int64_t>(plan_.heal_ms));
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.partitions;
    }
    sever_all();
}

void FrameProxy::sever_all() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& conn : conns_) conn->sever();
}

void FrameProxy::accept_loop() {
    while (!stopping_.load()) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, 100);
        if (pr < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (pr == 0) continue;
        const int client = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
        if (client < 0) {
            if (errno == EINTR) continue;
            if (stopping_.load()) break;
            continue;
        }
        if (stopping_.load()) {
            ::close(client);
            break;
        }
        if (partitioned_now()) {
            // A partitioned network: the TCP handshake may complete in the
            // kernel, but the peer goes silent and the connection dies.
            ::close(client);
            continue;
        }
        const int up = connect_endpoint(upstream_);
        if (up < 0) {
            ::close(client);
            continue;
        }
        auto conn = std::make_shared<Conn>();
        conn->client_fd = client;
        conn->upstream_fd = up;
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_.load()) {
            // stop() already severed everything it knew about.
            conn->sever();
            continue;
        }
        conns_.push_back(conn);
        threads_.emplace_back([this, conn] { pump(conn, /*upstream_direction=*/true); });
        threads_.emplace_back([this, conn] { pump(conn, /*upstream_direction=*/false); });
    }
}

void FrameProxy::pump(std::shared_ptr<Conn> conn, bool upstream_direction) {
    RawFrameReader reader{upstream_direction ? conn->client_fd : conn->upstream_fd, {}};
    const int dst = upstream_direction ? conn->upstream_fd : conn->client_fd;
    std::string frame;
    while (reader.next(frame)) {
        if (plan_.delay_frame_ms > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(plan_.delay_frame_ms));
        }
        if (!upstream_direction) {
            if (!send_all(dst, frame)) break;
            continue;
        }
        // Fault positions count worker->coordinator frames across ALL
        // connections: a small fleet whose workers each exchange only a
        // handful of frames per connection (and reconnect after the
        // partition, resetting any per-connection count) would otherwise
        // never reach an every-Nth trigger.
        const std::int64_t seen = ++forwarded_total_;

        // Partition trigger: peek into heartbeats for their progress
        // counter.  Only heartbeats are decoded, and only while armed.
        if (plan_.partition_after_units >= 0 && partition_armed_.load() &&
            frame.find("\"type\":\"heartbeat\"") != std::string::npos) {
            try {
                common::Json j = common::Json::parse(frame.substr(kFrameHeaderBytes));
                if (common::json_int(j, "units") >= plan_.partition_after_units &&
                    partition_armed_.exchange(false)) {
                    fire_partition();
                    break;  // this connection is severed with the rest
                }
            } catch (const common::Error&) {
                // Undecodable (possibly corrupted upstream of us): pass on.
            }
        }

        if (plan_.drop_frame_every_n > 0 && seen % plan_.drop_frame_every_n == 0) {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++stats_.frames_dropped;
            continue;
        }
        if (plan_.corrupt_frame_byte > 0 && seen >= plan_.corrupt_frame_byte &&
            !corrupted_once_.exchange(true) && frame.size() > kFrameHeaderBytes) {
            frame.back() = static_cast<char>(frame.back() ^ 0x5a);
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++stats_.frames_corrupted;
        }
        const bool duplicate = plan_.duplicate_frame_every_n > 0 &&
                               seen % plan_.duplicate_frame_every_n == 0;
        if (!send_all(dst, frame)) break;
        {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++stats_.frames_forwarded;
        }
        if (duplicate) {
            if (!send_all(dst, frame)) break;
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++stats_.frames_duplicated;
        }
    }
    conn->sever();
}

void FrameProxy::stop() {
    if (stopping_.exchange(true)) return;
    if (listen_fd_ >= 0) {
        ::shutdown(listen_fd_, SHUT_RDWR);  // unblocks accept on some kernels
        ::close(listen_fd_);
    }
    sever_all();
    if (accept_thread_.joinable()) accept_thread_.join();
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(mu_);
        threads.swap(threads_);
    }
    for (std::thread& t : threads) {
        if (t.joinable()) t.join();
    }
    std::lock_guard<std::mutex> lock(mu_);
    conns_.clear();
    listen_fd_ = -1;
}

NetFaultStats FrameProxy::stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
}

}  // namespace ff::coord
