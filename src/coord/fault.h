// Deterministic fault injection for the coordinator's workers.
//
// A FaultPlan is carried by a worker and fired at exact, reproducible
// points of its execution — kills land after a fixed number of units via
// the runner's interrupt_after_units hook (so the torn record tail is the
// same every run), stalls are fixed sleeps before the first leased shard.
// The same plans drive the in-process E2E tests (tests/test_coord.cpp,
// where "crash" means silently abandoning the lease, since a thread cannot
// SIGKILL itself without taking the test down) and the CI chaos job
// (scripts/coord_chaos.py, where kill-after-units raises a real SIGKILL
// mid-shard).
#pragma once

/// \file
/// FaultPlan: parseable, deterministic worker fault injection.

#include <cstdint>
#include <string>

namespace ff::coord {

/// What a worker sabotages, and when.  One-shot faults arm on the first
/// lease the worker receives and fire once; drop-heartbeats is persistent.
struct FaultPlan {
    /// SIGKILL the worker process after this many units of its first
    /// leased shard (torn write included, exactly like an OOM kill).
    /// < 0 = disabled.  Process workers only — see `abandon_after_units`
    /// for the in-process equivalent.
    std::int64_t kill_after_units = -1;

    /// Silently abandon the first leased shard after this many units: stop
    /// executing, close the socket without a word, send nothing further
    /// for that lease.  From the coordinator's seat this is
    /// indistinguishable from a crash (EOF + silence + a torn file).
    /// < 0 = disabled.
    std::int64_t abandon_after_units = -1;

    /// Spin forever (inside the runner's progress hook, so heartbeats keep
    /// flowing) after this many units of the first leased shard — a poison
    /// unit that stalls the worker without ever missing a heartbeat.  Only
    /// the wall-clock watchdog can catch it (worker exit code 113).
    /// < 0 = disabled.
    std::int64_t spin_after_units = -1;

    /// Allocate memory without bound after this many units of the first
    /// leased shard — a poison unit with a hostile footprint.  Under an
    /// --rlimit-as cap the allocation fails and the worker dies with exit
    /// code 114.  < 0 = disabled.
    std::int64_t hog_memory_after_units = -1;

    /// Close the coordinator connection after this many units of the first
    /// leased shard — but *keep executing*.  The worker's heartbeat path
    /// notices the dead socket, reconnects with the same session id and
    /// resumes beating the same attempt: the deterministic driver of the
    /// coordinator's session-resume machinery (the lease must be parked,
    /// not re-issued).  < 0 = disabled.
    std::int64_t disconnect_after_units = -1;

    /// Never send heartbeats, so every lease this worker holds expires
    /// even while it keeps (slowly, from the coordinator's view) working.
    bool drop_heartbeats = false;

    /// Sleep this long before starting the first leased shard — a
    /// straggler that outlives its lease.  0 = disabled.
    double delay_lease_ms = 0.0;

    /// True when no fault is configured.
    bool empty() const {
        return kill_after_units < 0 && abandon_after_units < 0 && spin_after_units < 0 &&
               hog_memory_after_units < 0 && disconnect_after_units < 0 &&
               !drop_heartbeats && delay_lease_ms <= 0.0;
    }

    /// Parses a comma-separated spec, e.g.
    /// "kill-after-units=3,drop-heartbeats" or "delay-lease-ms=500".
    /// Keys: kill-after-units, abandon-after-units, spin-after-units,
    /// hog-memory-after-units, disconnect-after-units, drop-heartbeats,
    /// delay-lease-ms.  Empty spec = no faults.  Throws common::Error on
    /// unknown keys or malformed values.
    static FaultPlan parse(const std::string& spec);

    /// Human-readable summary ("none" when empty) for logs.
    std::string describe() const;
};

}  // namespace ff::coord
