// The coordinator's worker: lease, run, report, heartbeat, repeat.
//
// run_worker() dials the coordinator (unix socket or TCP, with jittered
// reconnect backoff — common/retry.h), then loops: request a lease, execute
// the granted shard with shard::run_shard (salvaging the checkpointed
// prefix of a prior attempt's record file when the coordinator names one),
// report completion, ask again.  A background thread heartbeats while a
// shard is executing so long prepare phases and slow chunks never look
// like death — and when the socket dies mid-shard, that thread reconnects
// with the worker's session id and resumes beating the same attempt, so a
// transport blip never forfeits a lease (the coordinator parks it for a
// grace window).  Faults (coord/fault.h) fire at their planned points;
// everything else — socket errors, coordinator restarts, rejected
// completions — is survived by reconnecting and re-requesting.
//
// Workers are deliberately stateless between leases: every fact they need
// is in the lease grant, so a worker can die at ANY instant and its
// replacement (or a hedge) continues from the last durable checkpoint.
#pragma once

/// \file
/// run_worker(): the lease-execute-report loop of `ffaudit worker`.

#include <cstdint>
#include <string>

#include "common/retry.h"
#include "coord/fault.h"

namespace ff::coord {

/// Exit code of a worker killed by its own wall-clock watchdog: no
/// durable progress for watchdog_ms, even though heartbeats may still
/// have been flowing.  Distinct from any ffaudit exit code so the
/// coordinator's reaper can name the cause.
constexpr int kWorkerExitWatchdog = 113;

/// Exit code of a worker that failed an allocation under its RLIMIT_AS
/// cap — a hostile trial's footprint hit the process ceiling.
constexpr int kWorkerExitMemoryCap = 114;

/// One worker's knobs.
struct WorkerConfig {
    std::string socket_path;   ///< The coordinator's unix socket.
    /// TCP coordinator address ("host:port"); when set it replaces
    /// socket_path as the transport.
    std::string connect_address;
    std::string worker_id;     ///< Name in hello ("" = "pid<pid>").
    int num_threads = 1;       ///< Threads of each shard's trial pool.
    int trial_chunk = 1;       ///< Scheduler chunking (execution-only).
    FaultPlan fault;           ///< Injected sabotage (tests/chaos only).
    /// Reconnect schedule when the coordinator is unreachable; jitter
    /// spreads a worker fleet's reconnect stampede.
    common::BackoffPolicy reconnect{100.0, 2.0, 3000.0, 0.2};
    int max_connect_attempts = 20;  ///< Dial attempts before giving up.
    /// Patience for a reply frame; generous, the coordinator answers every
    /// request promptly unless it is gone.
    double reply_timeout_ms = 60000.0;
    /// Wall-clock containment: when > 0, a background watchdog kills the
    /// process with kWorkerExitWatchdog if no durable checkpoint lands for
    /// this long while a lease is executing.  Catches trials that spin
    /// forever INSIDE a unit — those keep heartbeating (the beat thread is
    /// independent), so only wall-clock progress exposes them.
    double watchdog_ms = 0.0;
    /// Address-space containment: when > 0, RLIMIT_AS is capped to this
    /// many bytes at startup and any failed allocation exits with
    /// kWorkerExitMemoryCap instead of unwinding into a nondeterministic
    /// in-process verdict.
    std::int64_t rlimit_as_bytes = 0;
    bool verbose = false;  ///< Log lease activity to stderr.
};

/// What one run_worker() lifetime did.
struct WorkerStats {
    int shards_completed = 0;  ///< Acked completions.
    int shards_failed = 0;     ///< Reported failures + rejected completions.
    int salvages = 0;          ///< Prior-attempt checkpoints resumed from.
    int reconnects = 0;        ///< Successful dials after the first.
    std::int64_t units_run = 0;  ///< Units executed across all leases.
    bool abandoned = false;    ///< An abandon fault fired (test crash stand-in).
};

/// Runs until the coordinator declares the audit done (normal return), an
/// abandon fault fires (returns with .abandoned), or the coordinator stays
/// unreachable past the reconnect budget (throws common::Error).  A
/// kill-after-units fault never returns: the process SIGKILLs itself
/// mid-shard, torn record tail and all.
WorkerStats run_worker(const WorkerConfig& config);

}  // namespace ff::coord
