// The audit coordinator: one process that owns the shard queue and drives
// N workers to a finished, byte-identical report under worker crashes,
// hangs and stragglers.
//
// serve() plans the job's shards, prepares the audit once (for the final
// canonical merge), then runs a single-threaded poll loop over its listen
// socket (unix-domain by default, TCP for multi-host audits — see
// CoordConfig::listen_address): granting leases (coord/queue.h), tracking
// heartbeats, expiring
// and re-issuing lost shards with backoff, hedging stragglers, and folding
// each completed shard's records into the prepared audit the moment they
// arrive.  Fault tolerance leans entirely on the determinism contract
// (docs/ARCHITECTURE.md): a re-executed shard reproduces its record stream
// byte for byte, so the coordinator re-issues work freely and *verifies*
// duplicate completions byte-for-byte instead of discarding them —
// every race the fault model creates becomes a free end-to-end check.
//
// Workers are external by design (they connect over the socket; `ffaudit
// worker`), but serve() can also spawn and babysit its own worker
// processes (spawn_workers > 0): children that die are reaped and
// restarted, which is what the CI chaos job exercises with SIGKILL.
#pragma once

/// \file
/// serve(): the fault-tolerant coordinator event loop.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "coord/net_fault.h"
#include "coord/queue.h"
#include "core/fuzzer.h"
#include "shard/manifest.h"

namespace ff::coord {

/// Everything one serve() run needs.
struct CoordConfig {
    shard::JobSpec job;           ///< The audit to run.
    int shard_count = 4;          ///< Shards to plan.
    int checkpoint_interval = 64; ///< Units per durable chunk (docs/TUNING.md).
    std::string socket_path;      ///< Unix socket the workers dial.
    /// TCP listen address ("host:port", port 0 = kernel-assigned).  When
    /// set it replaces the unix socket as the transport; spawned workers
    /// are handed the resolved address via --connect.
    std::string listen_address;
    /// Network fault spec (NetFaultPlan::parse syntax).  When set, serve()
    /// interposes a FrameProxy between itself and the workers it spawns —
    /// the chaos harness for the wire-integrity and session-resume
    /// machinery.  "" = no proxy.
    std::string net_fault;
    /// When a registered worker's connection drops while it holds leases,
    /// park those leases for this long instead of re-issuing them — a
    /// reconnect with the same session id resumes heartbeating the same
    /// attempt.  0 disables parking (drop = immediate worker_lost).
    double session_grace_ms = 3000.0;
    /// --reply-timeout-ms for spawned workers (0 = worker default); the
    /// chaos harness shrinks it so dropped frames re-request quickly.
    double worker_reply_timeout_ms = 0.0;
    std::string records_dir;      ///< Where per-attempt record streams live.
    std::string artifact_dir;     ///< Reproducer artifacts at finalize ("" = off).
    LeaseConfig lease;            ///< Lease/heartbeat/backoff/straggler knobs.
    double poll_ms = 100.0;       ///< Event-loop tick bound (housekeeping cadence).
    /// After the last shard completes, keep serving this long while
    /// in-flight duplicate attempts finish (their completions byte-verify
    /// against the winners); 0 shuts down immediately.
    double linger_ms = 1000.0;
    int prepare_threads = 1;      ///< Pool width of the coordinator's own prepare.
    int spawn_workers = 0;        ///< Worker processes to fork+exec (0 = external only).
    int worker_threads = 1;       ///< --threads of spawned workers.
    /// Spawned workers that die are restarted (fault-free) up to this many
    /// times across the whole run.
    int max_respawns = 8;
    /// Fault specs (FaultPlan::parse syntax) by spawned-worker index — the
    /// chaos harness; respawned replacements are always clean.
    std::map<int, std::string> worker_faults;
    /// Binary to exec for spawned workers ("" = /proc/self/exe).
    std::string ffaudit_path;
    /// Wall-clock watchdog passed to spawned workers (--watchdog-ms); a
    /// worker that lands no durable checkpoint for this long exits with
    /// kWorkerExitWatchdog.  0 = off.
    double worker_watchdog_ms = 0.0;
    /// RLIMIT_AS cap passed to spawned workers (--rlimit-as); a worker
    /// whose allocations hit the cap exits with kWorkerExitMemoryCap.
    /// 0 = off.
    std::int64_t worker_rlimit_as = 0;
    /// Budget caps for the quarantine re-run of a blamed unit.  The re-run
    /// executes in the coordinator's own process, so it must terminate no
    /// matter how hostile the trial: the caps apply whenever the job's own
    /// budgets are unset or looser.
    std::int64_t quarantine_max_points = 16'000'000;
    std::int64_t quarantine_max_alloc_bytes = 256ll << 20;
    bool verbose = false;         ///< Log lease traffic to stderr.
};

/// Counters of one serve() run.
struct CoordStats {
    LeaseQueueStats queue;             ///< Lease state-machine counters.
    std::int64_t records_merged = 0;   ///< Records folded into the audit.
    int shards_merged = 0;             ///< Winning completions folded.
    /// Losing duplicate completions whose record files were verified
    /// byte-identical to the winner's (a failed verification aborts serve).
    int duplicate_files_verified = 0;
    int workers_seen = 0;     ///< Hello handshakes accepted (fresh sessions).
    int workers_lost = 0;     ///< Connections that dropped.
    int workers_spawned = 0;  ///< Child processes forked (incl. respawns).
    int sessions_parked = 0;   ///< Disconnects that parked live leases.
    int sessions_resumed = 0;  ///< Reconnects spliced onto a live session.
    /// Parked sessions whose grace window lapsed (or whose process was
    /// reaped) before a resume — their leases went back to the queue.
    int sessions_expired = 0;
    /// What the interposed FrameProxy did (all zero without --net-fault).
    NetFaultStats net;
    /// Flat unit indices re-run in-process under tightened budgets after
    /// their shard permanently failed (poison-unit quarantine), in blame
    /// order.  Non-empty turns ffaudit serve's exit code into
    /// "completed with quarantined units".
    std::vector<std::int64_t> quarantined_units;
    int shards_quarantined = 0;  ///< Failed shards resolved by quarantine.
    int shards_split = 0;        ///< Fresh sub-shards re-issued from remainders.
};

/// What serve() produced.
struct ServeResult {
    std::vector<core::FuzzReport> reports;  ///< finalize() output, canonical order.
    CoordStats stats;
};

/// Runs the coordinator to completion and returns the finalized reports.
/// A shard that fails permanently (retry cap with no surviving attempt) is
/// quarantined rather than fatal: the best durable checkpoint is salvaged,
/// the first unfinished unit is blamed and re-run in-process under
/// tightened budgets, and the remainder is split into fresh sub-shards —
/// the audit finishes, with the blamed units listed in
/// CoordStats::quarantined_units.  Throws common::Error when a duplicate
/// completion is not byte-identical (a determinism violation — never
/// acceptable) or on socket/plan errors.
ServeResult serve(const CoordConfig& config);

}  // namespace ff::coord
