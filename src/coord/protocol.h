// Coordinator wire protocol: checksummed, length-prefixed JSON frames over
// a stream socket (unix-domain by default, TCP for multi-host audits).
//
// One frame =
//
//   [payload length : u32 big-endian]
//   [wire version   : u8]   (kProtocolVersion; mismatch = handshake error)
//   [CRC32C(payload): u32 big-endian]
//   [payload        : `length` bytes of compact JSON]
//
// The hand-rolled framing keeps the transport dependency-free and
// debuggable (`socat - UNIX:coord.sock | xxd`), in the same spirit as small
// binary RPC stacks with explicit sequencing; JSON as the payload reuses
// the shard wire codecs (manifests travel inside lease grants verbatim).
// The checksum makes a flipped bit on the wire a *classified* failure
// (FrameError::Kind::BadChecksum -> peer treats it as a disconnect) instead
// of undefined downstream behaviour, and the version byte turns a
// cross-version connect into a clean handshake error: a v1 peer's first
// payload byte ('{' = 0x7b) lands where v2 expects the version byte, so
// mixed deployments fail fast with a readable message, never a hang.
//
// Message flow (worker-initiated, strictly request/reply except for
// one-way heartbeats and the coordinator's terminal "done" broadcast):
//
//   worker -> coord   {"type":"hello","worker":"w0","session":"w0/711.0",
//                      "protocol":2}
//   coord  -> worker  {"type":"welcome","protocol":2,"heartbeat_ms":N,
//                      "resumed":bool}
//   worker -> coord   {"type":"lease-request"}
//   coord  -> worker  {"type":"lease","shard":i,"attempt":a,
//                      "manifest":{...},"records_path":"...",
//                      "resume_candidates":[...],"lease_ms":N,
//                      "heartbeat_ms":N}
//                   | {"type":"wait","retry_ms":N}   (queue momentarily dry)
//                   | {"type":"done"}                (audit finished, exit)
//   worker -> coord   {"type":"heartbeat","shard":i,"attempt":a,"units":u}
//                     (one-way; extends the lease deadline)
//   worker -> coord   {"type":"complete","shard":i,"attempt":a}
//   coord  -> worker  {"type":"ack","done":bool}
//                   | {"type":"reject","error":"..."}  (file failed validation)
//   worker -> coord   {"type":"failed","shard":i,"attempt":a,"error":"..."}
//   coord  -> worker  {"type":"ack","done":bool}
//
// The "session" id is what survives a broken connection: a worker that
// reconnects mid-shard re-sends hello with the same session string and the
// coordinator splices it back onto its parked lease (see coordinator.h).
#pragma once

/// \file
/// Checksummed length-prefixed JSON framing plus unix/TCP socket helpers
/// for src/coord.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "common/error.h"
#include "common/json.h"

namespace ff::coord {

/// Version spoken by this build — both the frame-header version byte and
/// the "protocol" field of the hello/welcome exchange.  Version 2 added the
/// per-frame CRC32C + version byte and session-resume hellos.
constexpr int kProtocolVersion = 2;

/// Bytes of frame header preceding the payload: length + version + CRC.
constexpr std::size_t kFrameHeaderBytes = 9;

/// Frames larger than this are a protocol violation (a manifest is ~1 KiB;
/// nothing legitimate approaches the bound).
constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// A malformed frame, classified.  Every decoder failure is one of these —
/// a receiver can distinguish "the peer speaks another protocol version"
/// (clean handshake error, worth a best-effort error reply) from "the
/// stream is corrupt" (treated exactly like a disconnect) without string
/// matching.
class FrameError : public common::Error {
public:
    enum class Kind {
        Oversized,    ///< Length prefix exceeds kMaxFrameBytes.
        BadVersion,   ///< Version byte != kProtocolVersion (or a v1 peer).
        BadChecksum,  ///< Payload bytes do not match the frame CRC32C.
        BadPayload,   ///< CRC matched but the payload is not valid JSON.
    };
    FrameError(Kind kind, const std::string& msg) : Error(msg), kind_(kind) {}
    Kind kind() const { return kind_; }

private:
    Kind kind_;
};

/// Outcome of a framed read.
enum class ReadStatus {
    Ok,       ///< A complete frame was decoded.
    Timeout,  ///< The deadline elapsed before a full frame arrived.
    Closed,   ///< Orderly EOF from the peer.
};

/// A framed read: `message` is meaningful only when `status == Ok`.
struct ReadResult {
    ReadStatus status = ReadStatus::Closed;
    common::Json message;
};

/// Serializes `message` into one complete wire frame (header + payload).
std::string encode_frame(const common::Json& message);

/// Writes one frame (blocking).  Throws common::Error on I/O failure or an
/// oversized payload.  A dead peer surfaces as an error, never SIGPIPE.
void write_frame(int fd, const common::Json& message);

/// Incremental frame decoder for the coordinator's nonblocking event loop:
/// append whatever recv produced, then drain complete frames with next().
class FrameBuffer {
public:
    /// Appends raw socket bytes.
    void append(const char* data, std::size_t size);

    /// Extracts the next complete frame, or nullopt when more bytes are
    /// needed.  Throws FrameError on an oversized length prefix, a version
    /// byte this build does not speak, a checksum mismatch, or an
    /// unparseable payload (the connection should be dropped; BadVersion
    /// additionally merits a handshake-error reply).
    std::optional<common::Json> next();

    /// Discards any buffered bytes.
    void clear();

private:
    std::string buf_;  ///< Undecoded bytes, oldest first.
};

/// A worker-side framed connection: blocking reads with a timeout, writes
/// serialized by a mutex (the heartbeat thread shares the socket with the
/// request/reply loop).  Bytes recv'd past the frame a read() returns are
/// kept for the next read — a pushed "done" broadcast arriving glued to a
/// reply can never desynchronize the stream.
class FramedConn {
public:
    FramedConn() = default;
    explicit FramedConn(int fd) : fd_(fd) {}
    FramedConn(FramedConn&& other) noexcept;
    FramedConn& operator=(FramedConn&& other) noexcept;
    FramedConn(const FramedConn&) = delete;
    FramedConn& operator=(const FramedConn&) = delete;
    ~FramedConn();

    bool open() const { return fd_ >= 0; }

    /// Writes one frame under the write mutex (thread-safe).
    void write(const common::Json& message);

    /// Reads the next frame, waiting up to `timeout_ms` (< 0 = forever).
    /// Single-reader only.  EOF returns ReadStatus::Closed (any partial
    /// frame in flight is discarded with the connection).  A signal landing
    /// mid-poll or mid-recv (EINTR) resumes the wait against the original
    /// deadline — it is never surfaced as an error or a shortened timeout.
    ReadResult read(int timeout_ms);

    /// Closes the socket (idempotent).
    void close();

private:
    int fd_ = -1;
    FrameBuffer buf_;       ///< Leftover bytes across read() calls.
    std::mutex write_mu_;   ///< Serializes concurrent write() frames.
};

/// Where a coordinator listens / a worker dials: either a unix-domain
/// socket path or a TCP host:port.
struct Endpoint {
    bool tcp = false;
    std::string path;  ///< unix-domain socket path (tcp == false)
    std::string host;  ///< TCP host or numeric address (tcp == true)
    int port = 0;      ///< TCP port; 0 = kernel-assigned (listen only)

    static Endpoint unix_path(std::string p);

    /// Parses "host:port" (e.g. "0.0.0.0:7643", "audit-box:7643",
    /// ":7643" = all interfaces).  Throws common::Error when the port is
    /// missing or not a number in [0, 65535].
    static Endpoint parse_tcp(const std::string& hostport);

    /// Human/CLI-facing form: the path, or "host:port".
    std::string describe() const;
};

/// Binds + listens on `ep`.  For unix endpoints any stale socket file is
/// unlinked first.  For TCP endpoints the socket gets SO_REUSEADDR, and
/// when `ep.port == 0` the kernel-assigned port is written back through
/// `bound_port` (also filled for fixed ports).  Returns the listening fd;
/// throws on failure.
int listen_endpoint(const Endpoint& ep, int backlog, int* bound_port = nullptr);

/// Connects to `ep` (TCP connections get TCP_NODELAY — the protocol is
/// small request/reply frames where Nagle only adds latency).  Returns the
/// fd, or -1 when the coordinator is not (yet) reachable — callers retry
/// with backoff.  EINTR during connect is handled internally (the
/// in-progress connect is waited out), never surfaced as unreachable.
int connect_endpoint(const Endpoint& ep);

/// Binds + listens on a unix-domain stream socket, unlinking any stale
/// file at `path` first.  Returns the listening fd; throws on failure.
int listen_unix(const std::string& path, int backlog);

/// Connects to a unix-domain socket.  Returns the fd, or -1 when the
/// coordinator is not (yet) there — callers retry with backoff.
int connect_unix(const std::string& path);

/// Ignores SIGPIPE process-wide, once (thread-safe): a peer that dies
/// mid-frame must surface as an I/O error, not kill the process.  Called
/// by serve() and run_worker(), which may run as threads of one test
/// process.
void ignore_sigpipe();

}  // namespace ff::coord
