// Coordinator wire protocol: length-prefixed JSON frames over a local
// stream socket.
//
// One frame = a 4-byte big-endian payload length followed by that many
// bytes of compact JSON.  The hand-rolled framing keeps the transport
// dependency-free and debuggable (`socat - UNIX:coord.sock | xxd`), in the
// same spirit as small binary RPC stacks with explicit sequencing; JSON as
// the payload reuses the shard wire codecs (manifests travel inside lease
// grants verbatim).
//
// Message flow (worker-initiated, strictly request/reply except for
// one-way heartbeats and the coordinator's terminal "done" broadcast):
//
//   worker -> coord   {"type":"hello","worker":"w0","protocol":1}
//   coord  -> worker  {"type":"welcome","protocol":1,"heartbeat_ms":N}
//   worker -> coord   {"type":"lease-request"}
//   coord  -> worker  {"type":"lease","shard":i,"attempt":a,
//                      "manifest":{...},"records_path":"...",
//                      "resume_candidates":[...],"lease_ms":N,
//                      "heartbeat_ms":N}
//                   | {"type":"wait","retry_ms":N}   (queue momentarily dry)
//                   | {"type":"done"}                (audit finished, exit)
//   worker -> coord   {"type":"heartbeat","shard":i,"attempt":a,"units":u}
//                     (one-way; extends the lease deadline)
//   worker -> coord   {"type":"complete","shard":i,"attempt":a}
//   coord  -> worker  {"type":"ack","done":bool}
//                   | {"type":"reject","error":"..."}  (file failed validation)
//   worker -> coord   {"type":"failed","shard":i,"attempt":a,"error":"..."}
//   coord  -> worker  {"type":"ack","done":bool}
#pragma once

/// \file
/// Length-prefixed JSON framing and local-socket helpers for src/coord.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "common/json.h"

namespace ff::coord {

/// Version spoken by this build; hello/welcome exchange rejects mismatches.
constexpr int kProtocolVersion = 1;

/// Frames larger than this are a protocol violation (a manifest is ~1 KiB;
/// nothing legitimate approaches the bound).
constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// Outcome of a framed read.
enum class ReadStatus {
    Ok,       ///< A complete frame was decoded.
    Timeout,  ///< The deadline elapsed before a full frame arrived.
    Closed,   ///< Orderly EOF from the peer.
};

/// A framed read: `message` is meaningful only when `status == Ok`.
struct ReadResult {
    ReadStatus status = ReadStatus::Closed;
    common::Json message;
};

/// Writes one frame (blocking).  Throws common::Error on I/O failure or an
/// oversized payload.  A dead peer surfaces as an error, never SIGPIPE.
void write_frame(int fd, const common::Json& message);

/// Incremental frame decoder for the coordinator's nonblocking event loop:
/// append whatever recv produced, then drain complete frames with next().
class FrameBuffer {
public:
    /// Appends raw socket bytes.
    void append(const char* data, std::size_t size);

    /// Extracts the next complete frame, or nullopt when more bytes are
    /// needed.  Throws common::Error on an oversized length prefix or
    /// unparseable payload (the connection should be dropped).
    std::optional<common::Json> next();

    /// Discards any buffered bytes.
    void clear();

private:
    std::string buf_;  ///< Undecoded bytes, oldest first.
};

/// A worker-side framed connection: blocking reads with a timeout, writes
/// serialized by a mutex (the heartbeat thread shares the socket with the
/// request/reply loop).  Bytes recv'd past the frame a read() returns are
/// kept for the next read — a pushed "done" broadcast arriving glued to a
/// reply can never desynchronize the stream.
class FramedConn {
public:
    FramedConn() = default;
    explicit FramedConn(int fd) : fd_(fd) {}
    FramedConn(FramedConn&& other) noexcept;
    FramedConn& operator=(FramedConn&& other) noexcept;
    FramedConn(const FramedConn&) = delete;
    FramedConn& operator=(const FramedConn&) = delete;
    ~FramedConn();

    bool open() const { return fd_ >= 0; }

    /// Writes one frame under the write mutex (thread-safe).
    void write(const common::Json& message);

    /// Reads the next frame, waiting up to `timeout_ms` (< 0 = forever).
    /// Single-reader only.  EOF returns ReadStatus::Closed (any partial
    /// frame in flight is discarded with the connection).
    ReadResult read(int timeout_ms);

    /// Closes the socket (idempotent).
    void close();

private:
    int fd_ = -1;
    FrameBuffer buf_;       ///< Leftover bytes across read() calls.
    std::mutex write_mu_;   ///< Serializes concurrent write() frames.
};

/// Binds + listens on a unix-domain stream socket, unlinking any stale
/// file at `path` first.  Returns the listening fd; throws on failure.
int listen_unix(const std::string& path, int backlog);

/// Connects to a unix-domain socket.  Returns the fd, or -1 when the
/// coordinator is not (yet) there — callers retry with backoff.
int connect_unix(const std::string& path);

/// Ignores SIGPIPE process-wide, once (thread-safe): a peer that dies
/// mid-frame must surface as an I/O error, not kill the process.  Called
/// by serve() and run_worker(), which may run as threads of one test
/// process.
void ignore_sigpipe();

}  // namespace ff::coord
