#include "coord/coordinator.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "common/error.h"
#include "coord/net_fault.h"
#include "coord/protocol.h"
#include "coord/worker.h"
#include "shard/records.h"

namespace ff::coord {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;
using common::Json;

double ms_since(TimePoint then, TimePoint now) {
    return std::chrono::duration<double, std::milli>(now - then).count();
}

/// SO_SNDTIMEO for worker connections: far above any healthy local-socket
/// send, far below wedging the audit (a timed-out peer is dropped and its
/// lease re-issued).
constexpr long kSendTimeoutMs = 2000;

/// One accepted worker connection.
struct Connection {
    int fd = -1;  ///< -1 = superseded by a session resume; swept next tick.
    FrameBuffer frames;
    /// Queue identity.  The worker's session id when its hello carries one
    /// ("w0/711.0" — stable across reconnects, so a resumed connection
    /// heartbeats the same leases), else unique per connection ("w0#3").
    std::string key;
    std::string name;  ///< As announced in hello (logging only).
    bool registered = false;
    int shard = -1;    ///< Current assignment; -1 when idle.
    int attempt = -1;
    bool done_sent = false;  ///< "done" already pushed to this peer.
};

/// One spawned worker process.
struct Child {
    pid_t pid = -1;
    int index = 0;  ///< Spawn slot (for the worker id and fault lookup).
};

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw common::Error("cannot read " + path + ": " + std::strerror(errno));
    std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    return bytes;
}

/// Deep copy of a trial slot (TrialRecord is move-only because of the
/// retained inputs) — the quarantine path copies a record out of the
/// side audit's slots into the main audit.
core::TrialRecord clone_record(const core::TrialRecord& rec) {
    core::TrialRecord out;
    out.kind = rec.kind;
    out.verdict = rec.verdict;
    out.detail = rec.detail;
    out.original_points = rec.original_points;
    out.original_instructions = rec.original_instructions;
    out.transformed_points = rec.transformed_points;
    out.transformed_instructions = rec.transformed_instructions;
    if (rec.inputs) out.inputs = std::make_unique<interp::Context>(*rec.inputs);
    return out;
}

/// The whole serve() run as an object so the destructor can tear down
/// sockets and child processes on every exit path, including throws.
class Server {
public:
    explicit Server(const CoordConfig& config) : config_(config) {}

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    ~Server() {
        // The proxy's pump threads dial and relay to listen_fd_; stop them
        // before the endpoint goes away.
        if (proxy_) proxy_->stop();
        for (Connection& conn : conns_) {
            if (conn.fd >= 0) ::close(conn.fd);
        }
        if (listen_fd_ >= 0) {
            ::close(listen_fd_);
            if (!listen_ep_.tcp && !listen_ep_.path.empty()) {
                ::unlink(listen_ep_.path.c_str());
            }
        }
        // Leftover children are expendable (losing hedges, stalled
        // stragglers): kill and reap so serve() never leaks processes.
        for (const Child& child : children_) {
            if (child.pid > 0) ::kill(child.pid, SIGKILL);
        }
        for (const Child& child : children_) {
            if (child.pid > 0) ::waitpid(child.pid, nullptr, 0);
        }
    }

    ServeResult run();

private:
    std::string records_path(int shard, int attempt) const {
        return config_.records_dir + "/lease-s" + std::to_string(shard) + "-a" +
               std::to_string(attempt) + ".jsonl";
    }

    void log(const std::string& line) const {
        if (config_.verbose) std::fprintf(stderr, "[coord] %s\n", line.c_str());
    }

    void spawn_worker(int index, const std::string& fault_spec);
    void reap_children();
    void accept_connections();
    void read_connection(std::size_t i);
    void drop_connection(std::size_t i, const std::string& why, TimePoint now);
    /// Returns false when the connection should be dropped.
    bool handle_frame(Connection& conn, const Json& msg, TimePoint now);
    void handle_lease_request(Connection& conn, TimePoint now);
    void handle_complete(Connection& conn, int shard, int attempt, TimePoint now);
    void fold_records(shard::ShardRecordFile& file);
    void announce_done(TimePoint now);
    /// Quarantines every Failed shard that has no surviving attempt
    /// anywhere (a zombie holder can still rescue it, so those wait).
    void handle_failed_shards(TimePoint now);
    /// Poison-unit quarantine of one permanently Failed shard: salvage the
    /// best durable checkpoint, blame the first unfinished unit, re-run it
    /// in-process under tightened budgets, and split the remainder into
    /// fresh sub-shards.
    void quarantine_shard(int shard, TimePoint now);
    /// The side audit the quarantine re-run executes in — same job, but
    /// with the tightened resource budgets; prepared lazily on the first
    /// quarantine (preparation is deterministic, so the blamed unit's
    /// record is exactly what any budgeted run would produce).
    core::PreparedAudit& quarantine_audit();

    const CoordConfig& config_;
    std::vector<shard::ShardManifest> manifests_;
    std::unique_ptr<core::Fuzzer> fuzzer_;
    std::unique_ptr<core::PreparedAudit> audit_;
    std::unique_ptr<core::Fuzzer> quarantine_fuzzer_;
    std::unique_ptr<core::PreparedAudit> quarantine_audit_;
    std::unique_ptr<LeaseQueue> queue_;
    int listen_fd_ = -1;
    Endpoint listen_ep_;  ///< What run() actually bound (TCP port resolved).
    Endpoint dial_ep_;    ///< What spawned workers dial (the proxy, if any).
    std::unique_ptr<FrameProxy> proxy_;
    std::vector<Connection> conns_;
    std::vector<Child> children_;
    /// Sessions whose connection dropped while holding leases: the leases
    /// stay issued (deadline pushed to the grace window) awaiting a resume.
    /// Keyed by session id; the value is when the session parked.
    std::map<std::string, TimePoint> parked_;
    int conn_seq_ = 0;
    int respawns_used_ = 0;
    bool done_ = false;
    TimePoint done_at_{};
    std::vector<std::string> winner_path_;  ///< Per shard, "" until merged.
    CoordStats stats_;
};

void Server::spawn_worker(int index, const std::string& fault_spec) {
    std::string binary = config_.ffaudit_path.empty() ? "/proc/self/exe" : config_.ffaudit_path;
    std::string id = "w" + std::to_string(index);
    std::vector<std::string> args = {binary, "worker"};
    if (dial_ep_.tcp) {
        args.push_back("--connect");
        args.push_back(dial_ep_.describe());
    } else {
        args.push_back("--socket");
        args.push_back(dial_ep_.path);
    }
    args.push_back("--id");
    args.push_back(id);
    args.push_back("--threads");
    args.push_back(std::to_string(config_.worker_threads));
    if (config_.worker_reply_timeout_ms > 0.0) {
        args.push_back("--reply-timeout-ms");
        args.push_back(std::to_string(config_.worker_reply_timeout_ms));
    }
    if (config_.worker_watchdog_ms > 0.0) {
        args.push_back("--watchdog-ms");
        args.push_back(std::to_string(config_.worker_watchdog_ms));
    }
    if (config_.worker_rlimit_as > 0) {
        args.push_back("--rlimit-as");
        args.push_back(std::to_string(config_.worker_rlimit_as));
    }
    if (!fault_spec.empty()) {
        args.push_back("--fault");
        args.push_back(fault_spec);
    }
    pid_t pid = ::fork();
    if (pid < 0) throw common::Error(std::string("fork: ") + std::strerror(errno));
    if (pid == 0) {
        std::vector<char*> argv;
        argv.reserve(args.size() + 1);
        for (std::string& a : args) argv.push_back(a.data());
        argv.push_back(nullptr);
        ::execv(binary.c_str(), argv.data());
        std::fprintf(stderr, "[coord] execv %s: %s\n", binary.c_str(), std::strerror(errno));
        ::_exit(127);
    }
    children_.push_back({pid, index});
    ++stats_.workers_spawned;
    log("spawned worker " + id + " pid " + std::to_string(pid) +
        (fault_spec.empty() ? "" : " fault=" + fault_spec));
}

void Server::reap_children() {
    // Respawns are deferred past the loop: spawn_worker() appends to
    // children_, which would invalidate this iteration.
    std::vector<int> respawn;
    for (Child& child : children_) {
        if (child.pid <= 0) continue;
        int status = 0;
        pid_t r = ::waitpid(child.pid, &status, WNOHANG);
        if (r != child.pid) continue;
        int index = child.index;
        bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        std::string how = WIFSIGNALED(status)
                              ? "signal " + std::to_string(WTERMSIG(status))
                              : "exit " + std::to_string(WEXITSTATUS(status));
        if (WIFEXITED(status) && WEXITSTATUS(status) == kWorkerExitWatchdog) {
            how += " — watchdog: stalled mid-unit";
        } else if (WIFEXITED(status) && WEXITSTATUS(status) == kWorkerExitMemoryCap) {
            how += " — address-space cap hit";
        }
        log("worker w" + std::to_string(index) + " pid " + std::to_string(child.pid) +
            " terminated (" + how + ")");
        child.pid = -1;
        // A reaped process can never resume its parked sessions: force the
        // grace window shut so its leases re-issue now, not at the lapse.
        const std::string prefix = "w" + std::to_string(index) + "/";
        TimePoint now = Clock::now();
        for (auto it = parked_.begin(); it != parked_.end();) {
            if (it->first.compare(0, prefix.size(), prefix) != 0) {
                ++it;
                continue;
            }
            log("session " + it->first + " force-expired (its process was reaped)");
            for (const auto& lost : queue_->worker_lost(it->first, now)) {
                log("  lost lease shard " + std::to_string(lost.shard) + " attempt " +
                    std::to_string(lost.attempt));
            }
            ++stats_.sessions_expired;
            it = parked_.erase(it);
        }
        if (!clean && !done_ && respawns_used_ < config_.max_respawns) {
            ++respawns_used_;
            // The replacement is always fault-free: the fault is a plan,
            // not a property of the slot.
            respawn.push_back(index);
        }
    }
    for (int index : respawn) spawn_worker(index, "");
}

void Server::accept_connections() {
    while (true) {
        int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            if (errno == EINTR) continue;
            throw common::Error(std::string("accept: ") + std::strerror(errno));
        }
        // A worker that stops reading (stalled process, full socket
        // buffer) must not wedge the single-threaded event loop inside
        // write_frame's blocking send: bound every send and let the
        // timeout error drop the connection — lease expiry then re-issues
        // its shard as usual.
        timeval tv{};
        tv.tv_sec = static_cast<time_t>(kSendTimeoutMs / 1000);
        tv.tv_usec = static_cast<suseconds_t>(kSendTimeoutMs % 1000 * 1000);
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        Connection conn;
        conn.fd = fd;
        conns_.push_back(std::move(conn));
    }
}

void Server::drop_connection(std::size_t i, const std::string& why, TimePoint now) {
    Connection& conn = conns_[i];
    log("connection " + (conn.registered ? conn.key : std::string("<anon>")) + " dropped (" +
        why + ")");
    if (conn.registered) {
        ++stats_.workers_lost;
        bool parked = false;
        if (config_.session_grace_ms > 0.0) {
            // Park instead of expiring: the worker may only have lost its
            // socket (network blip, partition) while the shard keeps
            // executing — a resume within the grace window continues
            // heartbeating the same attempt, so the lease is never
            // re-issued for a transport hiccup.
            auto held = queue_->park_worker(conn.key, now, config_.session_grace_ms);
            if (!held.empty()) {
                parked = true;
                parked_[conn.key] = now;
                ++stats_.sessions_parked;
                for (const auto& p : held) {
                    log("  parked lease shard " + std::to_string(p.shard) + " attempt " +
                        std::to_string(p.attempt) + " (grace " +
                        std::to_string(static_cast<long long>(config_.session_grace_ms)) +
                        " ms)");
                }
            }
        }
        if (!parked) {
            for (const auto& lost : queue_->worker_lost(conn.key, now)) {
                log("  lost lease shard " + std::to_string(lost.shard) + " attempt " +
                    std::to_string(lost.attempt));
            }
        }
    }
    if (conn.fd >= 0) ::close(conn.fd);
    conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
}

void Server::read_connection(std::size_t i) {
    Connection& conn = conns_[i];
    if (conn.fd < 0) return;  // superseded this tick; swept before the next poll
    char chunk[4096];
    ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    TimePoint now = Clock::now();
    if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return;
        drop_connection(i, std::strerror(errno), now);
        return;
    }
    if (n == 0) {
        drop_connection(i, "eof", now);
        return;
    }
    conn.frames.append(chunk, static_cast<std::size_t>(n));
    try {
        while (auto msg = conn.frames.next()) {
            if (!handle_frame(conn, *msg, now)) {
                drop_connection(i, "protocol error", now);
                return;
            }
        }
    } catch (const FrameError& e) {
        // Every malformed frame is a *classified* drop, never a crash.  A
        // peer speaking another protocol version gets a best-effort
        // readable refusal before the handshake drop; corruption
        // (checksum/length/payload) is treated exactly like a disconnect —
        // a registered holder's session parks as usual.
        if (e.kind() == FrameError::Kind::BadVersion && !conn.registered) {
            try {
                Json refuse = Json::object();
                refuse["type"] = "error";
                refuse["error"] = std::string("protocol version mismatch (coordinator speaks ") +
                                  std::to_string(kProtocolVersion) + ")";
                write_frame(conn.fd, refuse);
            } catch (const common::Error&) {
            }
            drop_connection(i, std::string("handshake: ") + e.what(), now);
        } else {
            drop_connection(i, e.what(), now);
        }
    } catch (const common::Error& e) {
        drop_connection(i, e.what(), now);
    }
}

bool Server::handle_frame(Connection& conn, const Json& msg, TimePoint now) {
    const std::string& type = common::json_string(msg, "type");
    if (!conn.registered) {
        if (type != "hello") {
            log("first frame was '" + type + "', expected hello");
            return false;
        }
        if (common::json_int(msg, "protocol") != kProtocolVersion) {
            write_frame(conn.fd, [&] {
                Json j = Json::object();
                j["type"] = "error";
                j["error"] = std::string("protocol version mismatch (coordinator speaks ") +
                             std::to_string(kProtocolVersion) + ")";
                return j;
            }());
            return false;
        }
        conn.name = common::json_string(msg, "worker");
        const std::string session =
            msg.contains("session") ? common::json_string(msg, "session") : std::string();
        bool resumed = false;
        if (!session.empty()) {
            conn.key = session;
            // A reconnect can beat the old socket's EOF here: supersede the
            // stale connection in place (close + fd = -1, swept before the
            // next poll) WITHOUT touching its leases — they belong to the
            // session, which is alive again on this connection.
            for (Connection& other : conns_) {
                if (&other == &conn || !other.registered || other.key != session) continue;
                log("session " + session + " superseded a stale connection");
                if (other.fd >= 0) ::close(other.fd);
                other.fd = -1;
                other.registered = false;
                resumed = true;
            }
            if (parked_.erase(session) > 0) resumed = true;
        } else {
            conn.key = conn.name + "#" + std::to_string(conn_seq_++);
        }
        conn.registered = true;
        if (resumed) {
            ++stats_.sessions_resumed;
            log("worker " + conn.key + " resumed its session");
        } else {
            ++stats_.workers_seen;
            log("worker " + conn.key + " connected");
        }
        Json welcome = Json::object();
        welcome["type"] = "welcome";
        welcome["protocol"] = kProtocolVersion;
        welcome["heartbeat_ms"] = config_.lease.heartbeat_ms;
        welcome["resumed"] = resumed;
        write_frame(conn.fd, welcome);
        return true;
    }
    if (type == "hello") {
        // A duplicated hello (network-level frame duplication) on an
        // already-registered connection: idempotent no-op — the first copy
        // did the work and its welcome is in flight.
        log("duplicate hello from " + conn.key + " ignored");
        return true;
    }
    if (type == "lease-request") {
        handle_lease_request(conn, now);
        return true;
    }
    if (type == "heartbeat") {
        // Track the beaten assignment on the connection too: a resumed
        // session's new connection must count as *holding* its shard (the
        // quarantine gate checks holders) even though its lease-grant
        // frame arrived on the dead predecessor.
        conn.shard = static_cast<int>(common::json_int(msg, "shard"));
        conn.attempt = static_cast<int>(common::json_int(msg, "attempt"));
        queue_->heartbeat(conn.shard, conn.attempt, now);
        return true;
    }
    if (type == "complete") {
        handle_complete(conn, static_cast<int>(common::json_int(msg, "shard")),
                        static_cast<int>(common::json_int(msg, "attempt")), now);
        return true;
    }
    if (type == "failed") {
        int shard = static_cast<int>(common::json_int(msg, "shard"));
        int attempt = static_cast<int>(common::json_int(msg, "attempt"));
        const std::string& error = common::json_string(msg, "error");
        log("worker " + conn.key + " failed shard " + std::to_string(shard) + " attempt " +
            std::to_string(attempt) + ": " + error);
        queue_->fail(shard, attempt, now, error);
        conn.shard = conn.attempt = -1;
        Json ack = Json::object();
        ack["type"] = "ack";
        ack["done"] = queue_->all_done();
        write_frame(conn.fd, ack);
        return true;
    }
    log("unknown frame type '" + type + "' from " + conn.key);
    return false;
}

void Server::handle_lease_request(Connection& conn, TimePoint now) {
    conn.shard = conn.attempt = -1;
    if (queue_->all_done()) {
        Json done = Json::object();
        done["type"] = "done";
        write_frame(conn.fd, done);
        conn.done_sent = true;
        return;
    }
    std::optional<Lease> lease = queue_->acquire(conn.key, now);
    if (!lease) {
        auto next = queue_->next_event_ms(now);
        Json wait = Json::object();
        wait["type"] = "wait";
        wait["retry_ms"] = std::clamp(next.value_or(config_.poll_ms), 20.0, 1000.0);
        write_frame(conn.fd, wait);
        return;
    }
    conn.shard = lease->shard;
    conn.attempt = lease->attempt;
    Json grant = Json::object();
    grant["type"] = "lease";
    grant["shard"] = lease->shard;
    grant["attempt"] = lease->attempt;
    grant["hedge"] = lease->hedge;
    grant["manifest"] = lease->manifest.to_json();
    grant["records_path"] = records_path(lease->shard, lease->attempt);
    Json candidates = Json::array();
    // Newest prior attempt first: the worker salvages the checkpointed
    // prefix of the first readable candidate.
    for (int a = lease->attempt - 1; a >= 0; --a) {
        candidates.push_back(records_path(lease->shard, a));
    }
    grant["resume_candidates"] = std::move(candidates);
    grant["lease_ms"] = config_.lease.lease_ms;
    grant["heartbeat_ms"] = config_.lease.heartbeat_ms;
    write_frame(conn.fd, grant);
    log("leased shard " + std::to_string(lease->shard) + " attempt " +
        std::to_string(lease->attempt) + (lease->hedge ? " (hedge)" : "") + " to " + conn.key);
}

void Server::handle_complete(Connection& conn, int shard, int attempt, TimePoint now) {
    conn.shard = conn.attempt = -1;
    if (shard < 0 || shard >= static_cast<int>(manifests_.size())) {
        // A malformed frame is a protocol error, not a coordinator abort:
        // without this check the out-of-range index would escape as
        // std::out_of_range past read_connection's common::Error net.
        std::string error = "complete: shard " + std::to_string(shard) + " out of range";
        log("rejected completion from " + conn.key + ": " + error);
        Json reject = Json::object();
        reject["type"] = "reject";
        reject["error"] = error;
        write_frame(conn.fd, reject);
        return;
    }
    std::string path = records_path(shard, attempt);
    shard::ShardRecordFile file;
    bool valid = true;
    std::string error;
    try {
        file = shard::read_record_file(path);
        if (file.manifest.to_json().dump() != manifests_.at(shard).to_json().dump()) {
            valid = false;
            error = path + ": manifest does not match the planned shard";
        } else if (!file.complete()) {
            valid = false;
            error = path + ": incomplete (checkpoint at " + std::to_string(file.checkpoint) +
                    " of " + std::to_string(file.manifest.unit_end) + ")";
        }
    } catch (const common::Error& e) {
        valid = false;
        error = e.what();
    }
    if (!valid) {
        log("rejected completion of shard " + std::to_string(shard) + " attempt " +
            std::to_string(attempt) + ": " + error);
        queue_->fail(shard, attempt, now, error);
        Json reject = Json::object();
        reject["type"] = "reject";
        reject["error"] = error;
        write_frame(conn.fd, reject);
        return;
    }
    bool first = queue_->complete(shard, attempt);
    if (first) {
        winner_path_[shard] = path;
        fold_records(file);
        ++stats_.shards_merged;
        log("shard " + std::to_string(shard) + " complete (attempt " +
            std::to_string(attempt) + " by " + conn.key + ")");
    } else if (winner_path_[shard].empty()) {
        // The shard was resolved by quarantine, not by a completed record
        // file: its prefix came from a salvaged checkpoint and the blamed
        // unit from the tightened in-process re-run.  There is no winner
        // file to verify against (and the blamed unit's record may
        // legitimately differ under the tightened budgets), so the zombie's
        // completion is acknowledged and its records are left unused.
        log("late completion of quarantined shard " + std::to_string(shard) + " attempt " +
            std::to_string(attempt) + " acknowledged (no byte-verify: quarantine resolved it)");
    } else {
        // The determinism contract's strongest field check: a re-executed
        // shard must reproduce the winner's record stream byte for byte.
        std::string winner = slurp(winner_path_[shard]);
        std::string loser = slurp(path);
        if (winner != loser) {
            throw common::Error(
                "determinism violation: duplicate completion of shard " +
                std::to_string(shard) + " (attempt " + std::to_string(attempt) + ", " + path +
                ") differs from the accepted file " + winner_path_[shard] +
                " — two executions of the same shard produced different records");
        }
        ++stats_.duplicate_files_verified;
        log("duplicate completion of shard " + std::to_string(shard) + " attempt " +
            std::to_string(attempt) + " verified byte-identical");
    }
    Json ack = Json::object();
    ack["type"] = "ack";
    ack["done"] = queue_->all_done();
    write_frame(conn.fd, ack);
}

void Server::fold_records(shard::ShardRecordFile& file) {
    for (auto& [unit, record] : file.records) {
        audit_->set_record(unit, std::move(record));
        ++stats_.records_merged;
    }
}

void Server::announce_done(TimePoint now) {
    done_ = true;
    done_at_ = now;
    for (Connection& conn : conns_) {
        // Idle workers are told proactively; assigned ones learn from the
        // ack of their in-flight attempt (or this push, if it lands first).
        if (conn.done_sent || !conn.registered) continue;
        try {
            Json done = Json::object();
            done["type"] = "done";
            write_frame(conn.fd, done);
            conn.done_sent = true;
        } catch (const common::Error&) {
            // The drop will surface via poll.
        }
    }
    log("all shards complete");
}

void Server::handle_failed_shards(TimePoint now) {
    bool quarantined = false;
    for (int shard = 0; shard < queue_->shard_count(); ++shard) {
        if (queue_->state(shard) != ShardState::Failed) continue;
        // A zombie attempt (expired lease, worker still executing) can
        // still rescue the shard; only quarantine once nobody holds it.
        bool held = false;
        for (const Connection& conn : conns_) held = held || conn.shard == shard;
        if (!held) {
            quarantine_shard(shard, now);
            quarantined = true;
        }
    }
    // The quarantine re-run blocked this thread for however long the blamed
    // unit took; healthy workers kept heartbeating into an unread socket the
    // whole time.  Push every active deadline past the blackout so the next
    // expire() doesn't fail their leases for the coordinator's own absence.
    if (quarantined) queue_->extend_active(Clock::now());
}

core::PreparedAudit& Server::quarantine_audit() {
    if (quarantine_audit_) return *quarantine_audit_;
    core::FuzzConfig qc = shard::job_fuzz_config(config_.job);
    qc.num_threads = 1;
    qc.artifact_dir = "";  // artifacts are saved by the main audit's finalize
    if (qc.diff.exec.max_points <= 0 || qc.diff.exec.max_points > config_.quarantine_max_points) {
        qc.diff.exec.max_points = config_.quarantine_max_points;
    }
    if (qc.diff.exec.max_alloc_bytes <= 0 ||
        qc.diff.exec.max_alloc_bytes > config_.quarantine_max_alloc_bytes) {
        qc.diff.exec.max_alloc_bytes = config_.quarantine_max_alloc_bytes;
    }
    log("preparing quarantine audit (max_points=" + std::to_string(qc.diff.exec.max_points) +
        ", max_alloc_bytes=" + std::to_string(qc.diff.exec.max_alloc_bytes) + ")");
    const ir::SDFG program = shard::load_job_program(config_.job);
    quarantine_fuzzer_ = std::make_unique<core::Fuzzer>(qc);
    quarantine_audit_ = std::make_unique<core::PreparedAudit>(
        quarantine_fuzzer_->prepare(program, shard::job_passes(config_.job)));
    return *quarantine_audit_;
}

void Server::quarantine_shard(int shard, TimePoint now) {
    // By value: the split loop below grows manifests_, which would leave a
    // reference dangling on reallocation.
    const shard::ShardManifest manifest = manifests_.at(static_cast<std::size_t>(shard));
    log("quarantining shard " + std::to_string(shard) + " after " +
        std::to_string(queue_->attempts_issued(shard)) +
        " attempts: " + queue_->last_error(shard));

    // Salvage the attempt file with the deepest durable checkpoint — every
    // record under it is a fact (fsync'd, pure function of the job).
    shard::ShardRecordFile best;
    std::string best_path;
    bool have = false;
    const std::string want = manifest.to_json().dump();
    for (int a = 0; a < queue_->attempts_issued(shard); ++a) {
        const std::string path = records_path(shard, a);
        try {
            shard::ShardRecordFile file = shard::read_record_file(path);
            if (file.manifest.to_json().dump() != want) continue;
            if (!have || file.checkpoint > best.checkpoint) {
                best = std::move(file);
                best_path = path;
                have = true;
            }
        } catch (const common::Error&) {
            continue;  // unreadable/foreign attempt file
        }
    }

    if (have && best.complete()) {
        // The shard actually finished — an attempt's file is complete on
        // disk even though no completion frame ever arrived (the worker
        // died between the last checkpoint and the report).
        queue_->complete(shard, 0);
        winner_path_[static_cast<std::size_t>(shard)] = best_path;
        fold_records(best);
        ++stats_.shards_merged;
        log("quarantine: shard " + std::to_string(shard) + " salvaged complete from " +
            best_path);
        return;
    }

    const std::int64_t salvaged_to = have ? best.checkpoint : manifest.unit_begin;
    if (have) fold_records(best);

    // Blame the first unfinished unit: every attempt died somewhere in
    // [salvaged_to, unit_end), and the deterministic scheduler reaches
    // salvaged_to first, so it is the prime suspect.  Re-run it here,
    // under budgets that guarantee the coordinator survives it, and record
    // whatever verdict that produces.
    const std::int64_t blamed = salvaged_to;
    if (blamed < manifest.unit_end) {
        core::PreparedAudit& side = quarantine_audit();
        side.run_range(blamed, blamed + 1);
        const std::size_t instance =
            static_cast<std::size_t>(blamed / std::max(side.max_trials(), 1));
        const int trial = static_cast<int>(blamed % std::max(side.max_trials(), 1));
        const auto& slots = side.records(instance);
        if (!slots.empty()) {
            const core::TrialRecord& rec = slots.at(static_cast<std::size_t>(trial));
            log("quarantine: unit " + std::to_string(blamed) + " re-ran in-process (" +
                (rec.kind == core::TrialRecord::Kind::Failed
                     ? std::string(core::verdict_name(rec.verdict))
                     : std::string("no failure")) +
                ")");
            audit_->set_record(blamed, clone_record(rec));
            ++stats_.records_merged;
        }
        stats_.quarantined_units.push_back(blamed);
    }

    // Close out the poisoned shard and re-issue the rest as fresh, smaller
    // shards — bisection: if another poison unit lurks in the remainder,
    // the next quarantine blames it from a tighter range.
    queue_->complete(shard, 0);
    ++stats_.shards_quarantined;
    const std::int64_t rest_begin = std::min(blamed + 1, manifest.unit_end);
    if (rest_begin < manifest.unit_end) {
        const std::int64_t mid = rest_begin + (manifest.unit_end - rest_begin) / 2;
        const std::pair<std::int64_t, std::int64_t> halves[2] = {
            {rest_begin, mid}, {mid, manifest.unit_end}};
        for (const auto& [begin, end] : halves) {
            if (begin >= end) continue;
            shard::ShardManifest sub = manifest;
            sub.shard_index = static_cast<int>(manifests_.size());
            sub.unit_begin = begin;
            sub.unit_end = end;
            manifests_.push_back(sub);
            winner_path_.emplace_back();
            const int index = queue_->add_shard(sub);
            ++stats_.shards_split;
            log("quarantine: re-issued [" + std::to_string(begin) + ", " + std::to_string(end) +
                ") as shard " + std::to_string(index));
        }
    }
    (void)now;
}

ServeResult Server::run() {
    const bool tcp = !config_.listen_address.empty();
    if (!tcp && config_.socket_path.empty()) {
        throw common::Error("serve: socket_path or listen_address is required");
    }
    if (config_.records_dir.empty()) throw common::Error("serve: records_dir is required");
    fs::create_directories(config_.records_dir);
    // The fuzzer reports (rather than fixes) a missing artifact directory,
    // so create it up front like the records directory.
    if (!config_.artifact_dir.empty()) fs::create_directories(config_.artifact_dir);

    // Plan and prepare once; completed shards fold into this audit as they
    // arrive and finalize() emits the canonical report at the end.
    const ir::SDFG program = shard::load_job_program(config_.job);
    manifests_ = shard::plan_shards(config_.job, program, config_.shard_count,
                                    config_.checkpoint_interval);
    core::FuzzConfig fuzz_config = shard::job_fuzz_config(config_.job);
    fuzz_config.num_threads = config_.prepare_threads;
    fuzz_config.artifact_dir = config_.artifact_dir;
    fuzzer_ = std::make_unique<core::Fuzzer>(fuzz_config);
    audit_ = std::make_unique<core::PreparedAudit>(
        fuzzer_->prepare(program, shard::job_passes(config_.job)));
    if (static_cast<std::int64_t>(audit_->instance_count()) != manifests_.front().instance_count) {
        throw common::Error("prepared " + std::to_string(audit_->instance_count()) +
                            " instances but planned " +
                            std::to_string(manifests_.front().instance_count));
    }
    winner_path_.assign(manifests_.size(), "");
    queue_ = std::make_unique<LeaseQueue>(manifests_, config_.lease);

    Endpoint ep = tcp ? Endpoint::parse_tcp(config_.listen_address)
                      : Endpoint::unix_path(config_.socket_path);
    int bound_port = 0;
    listen_fd_ = listen_endpoint(ep, 64, &bound_port);
    if (ep.tcp) ep.port = bound_port;  // resolve a kernel-assigned port 0
    listen_ep_ = ep;
    // Nonblocking accept: the event loop drains the backlog until EAGAIN.
    ::fcntl(listen_fd_, F_SETFL, ::fcntl(listen_fd_, F_GETFL) | O_NONBLOCK);

    // Where spawned workers dial: the bound endpoint (loopback when we
    // listened on a wildcard address), or the fault proxy interposed in
    // front of it.
    dial_ep_ = listen_ep_;
    if (dial_ep_.tcp &&
        (dial_ep_.host.empty() || dial_ep_.host == "0.0.0.0" || dial_ep_.host == "::")) {
        dial_ep_.host = "127.0.0.1";
    }
    NetFaultPlan net_plan = NetFaultPlan::parse(config_.net_fault);
    if (!net_plan.empty()) {
        Endpoint proxy_ep = listen_ep_.tcp ? Endpoint::parse_tcp("127.0.0.1:0")
                                           : Endpoint::unix_path(config_.socket_path + ".fault");
        proxy_ = std::make_unique<FrameProxy>(proxy_ep, dial_ep_, net_plan);
        dial_ep_ = proxy_->listen_endpoint();
        log("net-fault proxy [" + net_plan.describe() + "] on " + dial_ep_.describe());
    }
    log("serving " + std::to_string(manifests_.size()) + " shards on " + listen_ep_.describe());

    for (int i = 0; i < config_.spawn_workers; ++i) {
        auto it = config_.worker_faults.find(i);
        spawn_worker(i, it == config_.worker_faults.end() ? "" : it->second);
    }

    while (true) {
        TimePoint now = Clock::now();

        if (queue_->all_done() && !done_) announce_done(now);
        if (done_) {
            // Serve until every worker has read its 'done' and closed, or
            // linger expires.  An idle worker sleeping on a wait retry must
            // find the socket alive for its next lease-request — tearing it
            // down the instant the last shard lands would burn that worker's
            // whole reconnect budget against a vanished socket.
            if (conns_.empty() || ms_since(done_at_, now) >= config_.linger_ms) break;
        }

        double timeout = config_.poll_ms;
        if (auto next = queue_->next_event_ms(now)) timeout = std::min(timeout, *next);
        timeout = std::clamp(timeout, 0.0, config_.poll_ms);

        // Sweep connections superseded by a session resume (fd already
        // closed, registered already cleared) before sizing pfds from
        // conns_ — handle_frame cannot erase mid-iteration, so it only
        // marks.
        conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                    [](const Connection& c) { return c.fd < 0; }),
                     conns_.end());

        std::vector<pollfd> pfds;
        pfds.push_back({listen_fd_, POLLIN, 0});
        for (const Connection& conn : conns_) pfds.push_back({conn.fd, POLLIN, 0});
        int pr = ::poll(pfds.data(), pfds.size(), static_cast<int>(timeout) + 1);
        if (pr < 0 && errno != EINTR) {
            throw common::Error(std::string("poll: ") + std::strerror(errno));
        }

        if (pr > 0) {
            // Read before accepting: pfds was sized from the pre-poll
            // conns_, so accepting first would leave the loop indexing
            // past pfds' end.  Walk backwards: read_connection may erase
            // the entry.  Fresh connections get polled next tick.
            for (std::size_t i = conns_.size(); i-- > 0;) {
                short revents = pfds[i + 1].revents;
                if (revents & (POLLIN | POLLERR | POLLHUP)) read_connection(i);
            }
            if (pfds[0].revents & POLLIN) accept_connections();
        }

        now = Clock::now();
        std::set<std::string> grace_expired;
        for (const auto& lost : queue_->expire(now)) {
            if (parked_.erase(lost.worker) > 0) {
                grace_expired.insert(lost.worker);
                ++stats_.sessions_expired;
            }
            if (grace_expired.count(lost.worker) > 0) continue;  // logged once below
            log("lease expired: shard " + std::to_string(lost.shard) + " attempt " +
                std::to_string(lost.attempt) + " (worker " + lost.worker + ")");
            // The holder may still be executing (a zombie); clearing the
            // assignment is the worker's business — it learns on its next
            // completion/failure, which the queue handles as stale-but-
            // welcome.
        }
        // One line per session, not per parked attempt: the session spent
        // its whole grace window without resuming, so its leases just
        // went back to the queue.
        for (const std::string& session : grace_expired) {
            log("session " + session + " never resumed; grace window expired, leases re-issued");
        }
        reap_children();
        if (!done_) handle_failed_shards(now);
    }

    if (proxy_) {
        proxy_->stop();
        stats_.net = proxy_->stats();
        log("net-fault proxy: " + std::to_string(stats_.net.frames_forwarded) + " forwarded, " +
            std::to_string(stats_.net.frames_dropped) + " dropped, " +
            std::to_string(stats_.net.frames_duplicated) + " duplicated, " +
            std::to_string(stats_.net.frames_corrupted) + " corrupted, " +
            std::to_string(stats_.net.partitions) + " partition(s)");
    }

    ServeResult result;
    result.reports = audit_->finalize();
    stats_.queue = queue_->stats();
    result.stats = stats_;
    log("audit finalized: " + std::to_string(result.reports.size()) + " reports, " +
        std::to_string(stats_.records_merged) + " records merged, " +
        std::to_string(stats_.duplicate_files_verified) + " duplicates verified");
    return result;
}

}  // namespace

ServeResult serve(const CoordConfig& config) {
    ignore_sigpipe();
    Server server(config);
    return server.run();
}

}  // namespace ff::coord
