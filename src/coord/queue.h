// The lease queue: the coordinator's fault-tolerance state machine.
//
// Every shard of the plan moves through Pending -> Leased -> Done (or
// Failed after too many losses).  A *lease* hands one shard to one worker
// for a bounded time; heartbeats extend the deadline, silence expires it
// and puts the shard back in the queue behind an exponential backoff.
// Near the end of an audit the queue duplicate-issues long-running leases
// ("straggler hedging"): a second attempt races the first, the first
// completion wins, and the loser's record file is byte-verified against
// the winner's — re-execution is safe *because* the record streams are
// deterministic (docs/ARCHITECTURE.md, contract clauses 6-7), so hedging
// costs only wasted work, never correctness.
//
// The queue itself never reads a clock or sleeps: every method takes the
// caller's `now`, and next_event_ms() tells the caller how long it may
// sleep before something (a deadline, a backoff expiry, a straggler
// becoming hedgeable) needs attention.  Unit tests drive it with a fake
// clock and assert the exact transition sequence; the coordinator's event
// loop feeds it std::chrono::steady_clock.
#pragma once

/// \file
/// LeaseQueue: leases with deadlines, heartbeat extension, backoff
/// re-issue, retry caps and straggler duplicate-issue — with injected time.

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/rng.h"
#include "shard/manifest.h"

namespace ff::coord {

using TimePoint = std::chrono::steady_clock::time_point;

/// Tuning knobs of the lease state machine (docs/TUNING.md "Coordinator").
struct LeaseConfig {
    /// Lease duration: a worker that neither heartbeats nor completes for
    /// this long forfeits the shard.
    double lease_ms = 10000.0;
    /// Heartbeat cadence advertised to workers; keep well under lease_ms
    /// (the default ratio is 4x) so one dropped beat is not an expiry.
    double heartbeat_ms = 2500.0;
    /// Failed/expired attempts a shard tolerates before it is declared
    /// permanently Failed and the audit aborts.
    int max_failures = 5;
    /// Delay schedule for re-issuing a lost shard: attempt k of the retry
    /// waits backoff.delay_ms(k-1) before the shard is grantable again.
    common::BackoffPolicy backoff{200.0, 2.0, 10000.0, 0.2};
    /// An idle worker may duplicate-issue ("hedge") a running lease whose
    /// newest attempt is older than straggler_factor * lease_ms.
    double straggler_factor = 3.0;
    /// Concurrent attempts of one shard (first issue + hedges).
    int max_active_per_shard = 2;
    /// Seed of the backoff-jitter Rng; fixed seed = reproducible schedule.
    std::uint64_t seed = 0x5eedc0de;
};

/// Lifecycle of one shard in the queue.
enum class ShardState {
    Pending,  ///< Waiting to be (re-)granted.
    Leased,   ///< At least one attempt is out.
    Done,     ///< A completion was accepted; terminal.
    Failed,   ///< Retry cap exhausted; terminal unless a zombie completes.
};

/// One granted lease.
struct Lease {
    int shard = 0;    ///< Shard index into the plan.
    int attempt = 0;  ///< Unique per shard, monotonically increasing.
    bool hedge = false;  ///< True for a straggler duplicate-issue.
    shard::ShardManifest manifest;  ///< The work itself.
};

/// Monotonic counters of queue activity (surfaced in CoordStats).
struct LeaseQueueStats {
    std::int64_t granted = 0;       ///< Leases handed out (incl. hedges).
    std::int64_t hedges = 0;        ///< Straggler duplicate-issues.
    std::int64_t expirations = 0;   ///< Attempts lost to a missed deadline.
    std::int64_t worker_failures = 0;  ///< Attempts lost to a reported error.
    std::int64_t requeues = 0;      ///< Shard returns to Pending (with backoff).
    std::int64_t completions = 0;   ///< First completions accepted.
    std::int64_t duplicate_completions = 0;  ///< Losing hedge/zombie completions.
    int shards_failed = 0;          ///< Shards that hit the retry cap.
};

/// See the file comment.  Single-threaded; the coordinator's event loop is
/// the only caller.
class LeaseQueue {
public:
    LeaseQueue(std::vector<shard::ShardManifest> shards, const LeaseConfig& config);

    /// Grants the lowest-index grantable shard: a Pending shard whose
    /// backoff has elapsed, else a hedge on the oldest-newest-attempt
    /// Leased shard that qualifies (see LeaseConfig::straggler_factor).
    /// nullopt when nothing is grantable right now.
    std::optional<Lease> acquire(const std::string& worker, TimePoint now);

    /// Extends the attempt's deadline.  Returns false (a no-op) for stale
    /// attempts — the worker may keep running; its completion can still
    /// win or byte-verify.
    bool heartbeat(int shard, int attempt, TimePoint now);

    /// Reports a completion.  Returns true for the first completion of the
    /// shard (caller folds the records) and false for duplicates (caller
    /// byte-verifies the file against the winner's).  A completion is
    /// accepted in ANY state — even Failed: a zombie worker finishing after
    /// the retry cap still rescues the shard.
    bool complete(int shard, int attempt);

    /// Reports a worker-side execution failure of an attempt; the shard is
    /// requeued behind backoff or declared Failed at the cap.
    void fail(int shard, int attempt, TimePoint now, const std::string& error);

    /// Resets every active attempt's deadline to now + lease_ms.  Called
    /// after the event loop was blocked (a quarantine re-run executes trials
    /// in the coordinator's own thread): workers kept heartbeating into an
    /// unread socket, so expiring their leases for the coordinator's own
    /// absence would be wrong — and at a tight max_failures it would cascade
    /// healthy shards into quarantine.
    void extend_active(TimePoint now);

    /// Appends a fresh Pending shard mid-run and returns its index — the
    /// coordinator's quarantine path re-issues the unfinished remainder of
    /// a permanently Failed shard as new (smaller) shards.  The new shard
    /// starts with a clean failure count and no backoff gate.
    int add_shard(const shard::ShardManifest& manifest);

    /// An attempt lost to expiry or disconnection.
    struct LostAttempt {
        int shard = 0;
        int attempt = 0;
        std::string worker;
    };

    /// Drops every attempt whose deadline has passed; call once per event-
    /// loop tick.  Returns what expired (for logging).
    std::vector<LostAttempt> expire(TimePoint now);

    /// Drops every attempt held by `worker` (its connection died).  The
    /// shards are requeued immediately — disconnection is a fact, not a
    /// timeout, so no need to wait out the lease.
    std::vector<LostAttempt> worker_lost(const std::string& worker, TimePoint now);

    /// Session resume, coordinator side: the worker's *connection* died but
    /// its session may come back, so instead of dropping its attempts,
    /// extend each one's deadline to at least `now + grace_ms`.  A
    /// reconnecting worker resumes heartbeating the same attempts; one that
    /// never returns loses them through the ordinary expire() path when the
    /// grace lapses.  Returns the parked attempts (empty = nothing was
    /// active, caller falls back to worker_lost bookkeeping).
    std::vector<LostAttempt> park_worker(const std::string& worker, TimePoint now,
                                         double grace_ms);

    bool all_done() const;  ///< Every shard Done.
    ShardState state(int shard) const;
    /// Last error/expiry note recorded for the shard ("" when none).
    const std::string& last_error(int shard) const;
    int shard_count() const { return static_cast<int>(shards_.size()); }
    /// Attempts issued for the shard so far (the next attempt id).
    int attempts_issued(int shard) const;
    /// Active (undropped) attempts across all shards.
    int active_attempts() const;

    /// Milliseconds until the queue next needs attention (a deadline, a
    /// backoff expiry, or a lease aging into hedge eligibility) — the
    /// caller's poll timeout.  nullopt when nothing is scheduled (queue
    /// fully idle, done, or failed).
    std::optional<double> next_event_ms(TimePoint now) const;

    const LeaseQueueStats& stats() const { return stats_; }

private:
    struct Attempt {
        int attempt = 0;
        std::string worker;
        TimePoint issued;
        TimePoint deadline;
    };
    struct ShardEntry {
        shard::ShardManifest manifest;
        ShardState state = ShardState::Pending;
        std::vector<Attempt> active;  ///< Outstanding attempts (<= cap).
        int attempts_issued = 0;
        int failures = 0;         ///< Expiries + reported failures.
        TimePoint not_before{};   ///< Backoff gate while Pending.
        std::string last_error;
    };

    /// Handles the last active attempt of a Leased shard going away:
    /// requeue behind backoff, or Failed at the cap.
    void requeue_or_fail(ShardEntry& entry, TimePoint now);

    std::vector<ShardEntry> shards_;
    LeaseConfig config_;
    common::Rng rng_;  ///< Backoff jitter; seeded from config, deterministic.
    LeaseQueueStats stats_;
};

}  // namespace ff::coord
