#include "coord/worker.h"

#include <signal.h>
#include <sys/resource.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "coord/protocol.h"
#include "shard/records.h"
#include "shard/runner.h"

namespace ff::coord {

namespace {

namespace fs = std::filesystem;
using common::Json;

void sleep_ms(double ms) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

/// FNV-1a of the worker id, seeding the reconnect-jitter Rng.  Not
/// std::hash: that is implementation-defined, and the jitter schedule must
/// be a pure function of the worker id so a fault-injection run replays
/// the same delay sequence on every build.
std::uint64_t fnv1a(const std::string& s) {
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

/// Session id: stable across every reconnect of this worker lifetime,
/// unique across processes and across run_worker() calls in one process
/// (in-process test clusters).  The coordinator splices a reconnect with a
/// known session id back onto its parked leases.
std::string make_session(const std::string& id) {
    static std::atomic<int> seq{0};
    return id + "/" + std::to_string(::getpid()) + "." + std::to_string(seq.fetch_add(1));
}

/// Unrecoverable conditions (protocol mismatch, reconnect budget spent) —
/// everything else an inner-loop error just triggers a reconnect.
struct FatalError : common::Error {
    using common::Error::Error;
};

/// Sends heartbeats for one lease while the main thread executes the
/// shard.  The first beat goes out immediately — a long prepare phase must
/// not look like death — then one per interval.  The beat callback owns
/// delivery (including reconnecting a dead socket); when it reports the
/// connection unrecoverable the thread ends silently and the main thread
/// notices on its next frame.
class HeartbeatThread {
public:
    /// The beat callback receives the thread's stop flag so a reconnect in
    /// progress can abandon its backoff sleeps the moment stop() is called
    /// — joining this thread must never stall the main thread for a whole
    /// backoff schedule.
    HeartbeatThread(std::function<bool(const std::atomic<bool>&)> beat, double interval_ms,
                    bool enabled) {
        if (!enabled) return;
        thread_ = std::thread([this, beat = std::move(beat), interval_ms] {
            while (!stop_.load(std::memory_order_relaxed)) {
                if (!beat(stop_)) return;
                double slept = 0.0;
                while (slept < interval_ms && !stop_.load(std::memory_order_relaxed)) {
                    sleep_ms(20.0);
                    slept += 20.0;
                }
            }
        });
    }

    HeartbeatThread(const HeartbeatThread&) = delete;
    HeartbeatThread& operator=(const HeartbeatThread&) = delete;
    ~HeartbeatThread() { stop(); }

    void stop() {
        stop_.store(true, std::memory_order_relaxed);
        if (thread_.joinable()) thread_.join();
    }

private:
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

/// Per-lease wall-clock watchdog.  The main thread calls reset() from the
/// runner's progress hook (one durable checkpoint = one reset); when the
/// gap since the last reset exceeds the budget the whole process dies
/// with kWorkerExitWatchdog via _Exit — no unwinding, exactly like an
/// external kill, so the record file keeps whatever was durable.  A
/// poison unit that spins forever keeps heartbeating (HeartbeatThread is
/// a separate thread) but stops resetting; only this catches it.
class Watchdog {
public:
    Watchdog(double budget_ms, const std::string& worker_id) {
        if (budget_ms <= 0.0) return;
        last_ms_.store(now_ms(), std::memory_order_relaxed);
        thread_ = std::thread([this, budget_ms, worker_id] {
            while (!stop_.load(std::memory_order_relaxed)) {
                sleep_ms(20.0);
                const std::int64_t idle = now_ms() - last_ms_.load(std::memory_order_relaxed);
                if (static_cast<double>(idle) > budget_ms) {
                    std::fprintf(stderr,
                                 "[worker %s] watchdog: no progress in %lld ms; exiting %d\n",
                                 worker_id.c_str(), static_cast<long long>(idle),
                                 kWorkerExitWatchdog);
                    std::_Exit(kWorkerExitWatchdog);
                }
            }
        });
    }

    Watchdog(const Watchdog&) = delete;
    Watchdog& operator=(const Watchdog&) = delete;
    ~Watchdog() { disarm(); }

    void reset() { last_ms_.store(now_ms(), std::memory_order_relaxed); }

    /// Stops the timer for good — called once the shard result is in, so
    /// slow coordinator replies are never mistaken for a stalled trial.
    void disarm() {
        stop_.store(true, std::memory_order_relaxed);
        if (thread_.joinable()) thread_.join();
    }

private:
    static std::int64_t now_ms() {
        return std::chrono::duration_cast<std::chrono::milliseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
    }

    std::atomic<std::int64_t> last_ms_{0};
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

/// The hog-memory fault: allocate and touch blocks until the process
/// ceiling pushes back.  Meant to run under --rlimit-as, where either the
/// new-handler (installed by run_worker) or the bad_alloc below ends the
/// process with kWorkerExitMemoryCap; without a cap it runs until the OS
/// kills it, which the coordinator survives as an ordinary crash.
[[noreturn]] void hog_memory() {
    std::vector<std::unique_ptr<char[]>> hoard;
    try {
        for (;;) {
            constexpr std::size_t kBlock = std::size_t(16) << 20;
            auto block = std::make_unique<char[]>(kBlock);
            std::memset(block.get(), 0x5a, kBlock);  // touch: address space AND memory
            hoard.push_back(std::move(block));
        }
    } catch (const std::bad_alloc&) {
    }
    std::_Exit(kWorkerExitMemoryCap);
}

class Worker {
public:
    explicit Worker(const WorkerConfig& config)
        : config_(config),
          id_(config.worker_id.empty() ? "pid" + std::to_string(::getpid())
                                       : config.worker_id),
          session_(make_session(id_)),
          rng_(common::splitmix64(fnv1a(id_))),
          fault_armed_(!config.fault.empty()) {}

    WorkerStats run();

private:
    enum class Outcome { Continue, Done, Abandon, Reconnect };

    void log(const std::string& line) const {
        if (config_.verbose) {
            std::fprintf(stderr, "[worker %s] %s\n", id_.c_str(), line.c_str());
        }
    }

    Endpoint endpoint() const {
        return config_.connect_address.empty() ? Endpoint::unix_path(config_.socket_path)
                                               : Endpoint::parse_tcp(config_.connect_address);
    }

    /// One dial + hello exchange.  Returns false on anything recoverable
    /// (unreachable, dropped hello, dead stream) so the backoff loop
    /// retries; throws FatalError on an explicit protocol refusal.
    /// Callers serialize via conn_mu_ whenever a heartbeat thread is alive.
    bool connect_once();
    /// connect_once under the backoff schedule.  Same serialization rule.
    bool reconnect(int max_attempts);
    /// One heartbeat delivery, reconnecting the session on a dead socket
    /// (HeartbeatThread's beat callback; `stop` aborts backoff sleeps).
    /// False = unrecoverable.
    bool send_heartbeat(int shard, int attempt, const std::atomic<bool>& stop);
    Json make_beat(int shard, int attempt) const;

    Outcome serve_leases();  ///< The request loop on one connection.
    Outcome execute_lease(Json grant);
    /// The completion handshake, resending across reconnects: the records
    /// are durable and duplicate completions byte-verify, so a dead socket
    /// must not forfeit a finished shard.
    Outcome report_complete(int shard, int attempt, std::int64_t units_run);
    void salvage(const shard::ShardManifest& manifest, const std::string& records_path,
                 const Json& candidates);

    WorkerConfig config_;
    std::string id_;
    std::string session_;
    common::Rng rng_;
    /// Guards conn_'s identity (replacement on reconnect) and rng_.  The
    /// beat thread holds it across its reconnects; the runner's progress
    /// hook only try_locks (a skipped progress beat is harmless).
    std::mutex conn_mu_;
    FramedConn conn_;
    double heartbeat_ms_ = 2500.0;
    std::atomic<std::int64_t> units_done_{0};  ///< Carried in heartbeats.
    bool fault_armed_;  ///< One-shot faults not yet fired.
    WorkerStats stats_;
};

bool Worker::connect_once() {
    int fd = connect_endpoint(endpoint());
    if (fd < 0) return false;
    FramedConn fresh(fd);
    Json hello = Json::object();
    hello["type"] = "hello";
    hello["worker"] = id_;
    hello["session"] = session_;
    hello["protocol"] = kProtocolVersion;
    try {
        fresh.write(hello);
        while (true) {
            ReadResult r = fresh.read(static_cast<int>(config_.reply_timeout_ms));
            if (r.status != ReadStatus::Ok) return false;
            const std::string& type = common::json_string(r.message, "type");
            if (type == "error") {
                throw FatalError("coordinator refused hello: " +
                                 common::json_string(r.message, "error"));
            }
            if (type != "welcome") continue;  // a stray duplicated reply; keep reading
            heartbeat_ms_ = common::json_double(r.message, "heartbeat_ms");
            if (r.message.contains("resumed") && common::json_bool(r.message, "resumed")) {
                log("session " + session_ + " resumed");
            }
            break;
        }
    } catch (const FatalError&) {
        throw;
    } catch (const common::Error&) {
        return false;
    }
    conn_ = std::move(fresh);
    log("connected to " + endpoint().describe());
    return true;
}

bool Worker::reconnect(int max_attempts) {
    conn_.close();
    return common::retry_with_backoff(
        max_attempts, config_.reconnect, rng_, [&] { return connect_once(); },
        [](double ms) { sleep_ms(ms); });
}

Json Worker::make_beat(int shard, int attempt) const {
    Json beat = Json::object();
    beat["type"] = "heartbeat";
    beat["shard"] = shard;
    beat["attempt"] = attempt;
    beat["units"] = units_done_.load(std::memory_order_relaxed);
    return beat;
}

bool Worker::send_heartbeat(int shard, int attempt, const std::atomic<bool>& stop) {
    std::lock_guard<std::mutex> lock(conn_mu_);
    try {
        conn_.write(make_beat(shard, attempt));
        return true;
    } catch (const common::Error&) {
    }
    // The socket died mid-lease (partition, coordinator blip, injected
    // disconnect).  Reconnect with the same session id and resume beating
    // the same attempt: the coordinator parked the lease on the drop and
    // splices this session back onto it, so the shard in progress is never
    // re-issued for a transport hiccup.  The stop flag short-circuits both
    // the attempts and the sleeps — once the lease is over, nobody needs
    // this connection enough to wait out a backoff schedule for it.
    conn_.close();
    bool ok = false;
    try {
        ok = common::retry_with_backoff(
            config_.max_connect_attempts, config_.reconnect, rng_,
            [&] {
                if (stop.load(std::memory_order_relaxed)) return true;  // abandon quietly
                return connect_once();
            },
            [&](double ms) {
                double slept = 0.0;
                while (slept < ms && !stop.load(std::memory_order_relaxed)) {
                    sleep_ms(std::min(20.0, ms - slept));
                    slept += 20.0;
                }
            });
    } catch (const FatalError&) {
        return false;  // refusal surfaces on the main thread's next frame
    }
    if (!ok || stop.load(std::memory_order_relaxed)) return false;
    ++stats_.reconnects;
    log("heartbeat reconnected (session " + session_ + ", shard " + std::to_string(shard) + ")");
    try {
        conn_.write(make_beat(shard, attempt));
        return true;
    } catch (const common::Error&) {
        return false;
    }
}

Worker::Outcome Worker::serve_leases() {
    while (true) {
        try {
            Json request = Json::object();
            request["type"] = "lease-request";
            conn_.write(request);
            bool served = false;
            while (!served) {
                ReadResult r = conn_.read(static_cast<int>(config_.reply_timeout_ms));
                if (r.status == ReadStatus::Timeout) {
                    throw common::Error("no reply from the coordinator");
                }
                if (r.status == ReadStatus::Closed) return Outcome::Reconnect;
                const std::string& type = common::json_string(r.message, "type");
                if (type == "done") return Outcome::Done;
                if (type == "wait") {
                    sleep_ms(common::json_double(r.message, "retry_ms"));
                    served = true;  // re-request
                } else if (type == "lease") {
                    Outcome out = execute_lease(std::move(r.message));
                    if (out != Outcome::Continue) return out;
                    served = true;
                } else if (type == "error") {
                    throw FatalError("coordinator: " + common::json_string(r.message, "error"));
                } else {
                    // A duplicated request's extra reply, or a stale ack
                    // from before a resume: skip, never desynchronize.
                    log("ignoring stray '" + type + "' frame");
                }
            }
        } catch (const FatalError&) {
            throw;
        } catch (const common::Error& e) {
            log(std::string("connection trouble: ") + e.what());
            return Outcome::Reconnect;
        }
    }
}

Worker::Outcome Worker::execute_lease(Json grant) {
    int shard = static_cast<int>(common::json_int(grant, "shard"));
    int attempt = static_cast<int>(common::json_int(grant, "attempt"));
    shard::ShardManifest manifest = shard::ShardManifest::from_json(grant["manifest"]);
    const std::string records_path = common::json_string(grant, "records_path");
    heartbeat_ms_ = common::json_double(grant, "heartbeat_ms");
    units_done_.store(0, std::memory_order_relaxed);
    log("leased shard " + std::to_string(shard) + " attempt " + std::to_string(attempt) +
        " [" + std::to_string(manifest.unit_begin) + ", " + std::to_string(manifest.unit_end) +
        ")");

    if (fault_armed_ && config_.fault.delay_lease_ms > 0.0) {
        log("fault: delaying " + std::to_string(config_.fault.delay_lease_ms) + " ms");
        sleep_ms(config_.fault.delay_lease_ms);
    }

    salvage(manifest, records_path, grant["resume_candidates"]);

    Watchdog watchdog(config_.watchdog_ms, id_);

    shard::RunShardOptions options;
    options.num_threads = config_.num_threads;
    options.trial_chunk = config_.trial_chunk;
    options.resume = true;
    if (fault_armed_ && config_.fault.kill_after_units >= 0) {
        options.interrupt_after_units = config_.fault.kill_after_units;
    } else if (fault_armed_ && config_.fault.abandon_after_units >= 0) {
        options.interrupt_after_units = config_.fault.abandon_after_units;
    }
    // Each durable checkpoint resets the watchdog and doubles as a
    // heartbeat alongside the timer thread's beats.  The progress beat
    // only try_locks: if the beat thread holds the connection (possibly
    // mid-reconnect), skipping one is harmless.  Heartbeat write errors
    // are swallowed — the records are durable and duplicate completions
    // byte-verify, so the shard is worth finishing even on a dead socket.
    options.on_progress = [this, &watchdog, shard, attempt](std::int64_t units_done) {
        watchdog.reset();
        units_done_.store(units_done, std::memory_order_relaxed);
        if (fault_armed_ && config_.fault.hog_memory_after_units >= 0 &&
            units_done > config_.fault.hog_memory_after_units) {
            fault_armed_ = false;
            log("fault: hogging memory after " + std::to_string(units_done) + " units");
            hog_memory();  // never returns
        }
        if (fault_armed_ && config_.fault.spin_after_units >= 0 &&
            units_done > config_.fault.spin_after_units) {
            fault_armed_ = false;
            log("fault: spinning after " + std::to_string(units_done) + " units");
            // The HeartbeatThread keeps beating — from the lease queue's
            // seat this worker looks perfectly healthy.  Only the
            // wall-clock watchdog (or an external kill) ends this.
            for (;;) sleep_ms(50.0);
        }
        if (fault_armed_ && config_.fault.disconnect_after_units >= 0 &&
            units_done > config_.fault.disconnect_after_units) {
            fault_armed_ = false;
            log("fault: dropping the connection after " + std::to_string(units_done) +
                " units (still executing)");
            // The deterministic driver of session resume: the coordinator
            // sees EOF and parks the lease; the beat thread's next write
            // fails, reconnects with the same session, and resumes it.
            std::lock_guard<std::mutex> lock(conn_mu_);
            conn_.close();
            return;
        }
        if (config_.fault.drop_heartbeats) return;
        std::unique_lock<std::mutex> lock(conn_mu_, std::try_to_lock);
        if (!lock.owns_lock()) return;
        try {
            conn_.write(make_beat(shard, attempt));
        } catch (const common::Error&) {
        }
    };

    shard::RunShardResult result;
    {
        HeartbeatThread heartbeats(
            [this, shard, attempt](const std::atomic<bool>& stop) {
                return send_heartbeat(shard, attempt, stop);
            },
            heartbeat_ms_, !config_.fault.drop_heartbeats);
        try {
            result = shard::run_shard(manifest, records_path, options);
        } catch (const common::Error& e) {
            heartbeats.stop();
            watchdog.disarm();
            log("shard " + std::to_string(shard) + " failed: " + e.what());
            ++stats_.shards_failed;
            Json failed = Json::object();
            failed["type"] = "failed";
            failed["shard"] = shard;
            failed["attempt"] = attempt;
            failed["error"] = std::string(e.what());
            conn_.write(failed);
            while (true) {
                ReadResult r = conn_.read(static_cast<int>(config_.reply_timeout_ms));
                if (r.status != ReadStatus::Ok) return Outcome::Reconnect;
                const std::string& type = common::json_string(r.message, "type");
                if (type == "done") return Outcome::Done;
                if (type == "ack") return Outcome::Continue;
                log("ignoring stray '" + type + "' frame");
            }
        }
    }
    watchdog.disarm();

    if (!result.completed) {
        // The interrupt hook only fires for an armed kill/abandon fault.
        fault_armed_ = false;
        if (config_.fault.kill_after_units >= 0) {
            // A real mid-shard crash: the record file keeps its torn tail.
            ::raise(SIGKILL);
        }
        log("fault: abandoning shard " + std::to_string(shard) + " after " +
            std::to_string(result.units_run) + " units");
        conn_.close();
        return Outcome::Abandon;
    }
    fault_armed_ = false;
    return report_complete(shard, attempt, result.units_run);
}

Worker::Outcome Worker::report_complete(int shard, int attempt, std::int64_t units_run) {
    Json complete = Json::object();
    complete["type"] = "complete";
    complete["shard"] = shard;
    complete["attempt"] = attempt;
    // Up to three socket lifetimes: resending a completion is always safe
    // (the coordinator byte-verifies duplicates), while giving up hands a
    // finished shard back to the queue for a pointless re-execution.
    for (int round = 0; round < 3; ++round) {
        if (round > 0) {
            try {
                if (!reconnect(config_.max_connect_attempts)) return Outcome::Reconnect;
            } catch (const FatalError&) {
                throw;
            }
            ++stats_.reconnects;
            log("reconnected to resend completion of shard " + std::to_string(shard));
        }
        try {
            conn_.write(complete);
            while (true) {
                ReadResult r = conn_.read(static_cast<int>(config_.reply_timeout_ms));
                if (r.status != ReadStatus::Ok) break;  // reconnect + resend
                const std::string& type = common::json_string(r.message, "type");
                if (type == "done") return Outcome::Done;
                if (type == "reject") {
                    log("completion rejected: " + common::json_string(r.message, "error"));
                    ++stats_.shards_failed;
                    return Outcome::Continue;
                }
                if (type == "ack") {
                    ++stats_.shards_completed;
                    stats_.units_run += units_run;
                    log("shard " + std::to_string(shard) + " complete (" +
                        std::to_string(units_run) + " units this attempt)");
                    return common::json_bool(r.message, "done") ? Outcome::Done
                                                                : Outcome::Continue;
                }
                log("ignoring stray '" + type + "' frame");  // stale wait/lease/welcome
            }
        } catch (const common::Error& e) {
            log(std::string("completion handshake failed: ") + e.what());
        }
    }
    return Outcome::Reconnect;
}

void Worker::salvage(const shard::ShardManifest& manifest, const std::string& records_path,
                     const Json& candidates) {
    if (!candidates.is_array() || fs::exists(records_path)) return;
    const std::string want = manifest.to_json().dump();
    for (const Json& candidate : candidates.as_array()) {
        if (!candidate.is_string()) continue;
        const std::string& path = candidate.as_string();
        try {
            shard::ShardRecordFile file = shard::read_record_file(path);
            if (file.manifest.to_json().dump() != want) continue;
            if (file.checkpoint <= manifest.unit_begin) continue;  // nothing durable
            // Copy the durable prefix — safe even while the prior attempt
            // is still writing, because resume_offset never exceeds the
            // bytes that were fsync'd under its last checkpoint.
            std::ifstream in(path, std::ios::binary);
            std::string bytes((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
            bytes.resize(static_cast<std::size_t>(file.resume_offset));
            std::ofstream out(records_path, std::ios::binary | std::ios::trunc);
            out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
            out.close();
            if (!out) throw common::Error("cannot write " + records_path);
            ++stats_.salvages;
            log("salvaged " + std::to_string(file.checkpoint - manifest.unit_begin) +
                " units from " + path);
            return;
        } catch (const common::Error&) {
            continue;  // unreadable/foreign candidate; try the next
        }
    }
}

WorkerStats Worker::run() {
    bool first = true;
    while (true) {
        if (!reconnect(config_.max_connect_attempts)) {
            throw common::Error("worker " + id_ + ": coordinator unreachable at " +
                                endpoint().describe() + " after " +
                                std::to_string(config_.max_connect_attempts) + " attempts");
        }
        if (!first) ++stats_.reconnects;
        first = false;
        switch (serve_leases()) {
            case Outcome::Done:
                log("audit done; exiting");
                return stats_;
            case Outcome::Abandon:
                stats_.abandoned = true;
                return stats_;
            case Outcome::Reconnect:
                conn_.close();
                break;
            case Outcome::Continue:
                break;  // unreachable
        }
    }
}

}  // namespace

WorkerStats run_worker(const WorkerConfig& config) {
    ignore_sigpipe();
    if (config.rlimit_as_bytes > 0) {
        struct rlimit lim;
        lim.rlim_cur = static_cast<rlim_t>(config.rlimit_as_bytes);
        lim.rlim_max = static_cast<rlim_t>(config.rlimit_as_bytes);
        if (::setrlimit(RLIMIT_AS, &lim) != 0) {
            throw common::Error("worker: setrlimit(RLIMIT_AS, " +
                                std::to_string(config.rlimit_as_bytes) +
                                ") failed: " + std::strerror(errno));
        }
        // Under the cap, a failed allocation must kill ONLY this worker
        // with a distinguishable code — never unwind into a Crash verdict
        // that other runs (under other caps) would not reproduce.
        std::set_new_handler([] { std::_Exit(kWorkerExitMemoryCap); });
    }
    Worker worker(config);
    return worker.run();
}

}  // namespace ff::coord
