#include "coord/worker.h"

#include <signal.h>
#include <sys/resource.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <new>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "coord/protocol.h"
#include "shard/records.h"
#include "shard/runner.h"

namespace ff::coord {

namespace {

namespace fs = std::filesystem;
using common::Json;

void sleep_ms(double ms) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

/// Unrecoverable conditions (protocol mismatch, reconnect budget spent) —
/// everything else an inner-loop error just triggers a reconnect.
struct FatalError : common::Error {
    using common::Error::Error;
};

/// Sends heartbeats for one lease while the main thread executes the
/// shard.  The first beat goes out immediately — a long prepare phase must
/// not look like death — then one per interval.  Write errors end the
/// thread silently; the main thread notices the dead socket on its next
/// frame.
class HeartbeatThread {
public:
    HeartbeatThread(FramedConn& conn, int shard, int attempt, double interval_ms, bool enabled) {
        if (!enabled) return;
        thread_ = std::thread([this, &conn, shard, attempt, interval_ms] {
            while (!stop_.load(std::memory_order_relaxed)) {
                Json beat = Json::object();
                beat["type"] = "heartbeat";
                beat["shard"] = shard;
                beat["attempt"] = attempt;
                try {
                    conn.write(beat);
                } catch (...) {
                    return;
                }
                double slept = 0.0;
                while (slept < interval_ms && !stop_.load(std::memory_order_relaxed)) {
                    sleep_ms(20.0);
                    slept += 20.0;
                }
            }
        });
    }

    HeartbeatThread(const HeartbeatThread&) = delete;
    HeartbeatThread& operator=(const HeartbeatThread&) = delete;
    ~HeartbeatThread() { stop(); }

    void stop() {
        stop_.store(true, std::memory_order_relaxed);
        if (thread_.joinable()) thread_.join();
    }

private:
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

/// Per-lease wall-clock watchdog.  The main thread calls reset() from the
/// runner's progress hook (one durable checkpoint = one reset); when the
/// gap since the last reset exceeds the budget the whole process dies
/// with kWorkerExitWatchdog via _Exit — no unwinding, exactly like an
/// external kill, so the record file keeps whatever was durable.  A
/// poison unit that spins forever keeps heartbeating (HeartbeatThread is
/// a separate thread) but stops resetting; only this catches it.
class Watchdog {
public:
    Watchdog(double budget_ms, const std::string& worker_id) {
        if (budget_ms <= 0.0) return;
        last_ms_.store(now_ms(), std::memory_order_relaxed);
        thread_ = std::thread([this, budget_ms, worker_id] {
            while (!stop_.load(std::memory_order_relaxed)) {
                sleep_ms(20.0);
                const std::int64_t idle = now_ms() - last_ms_.load(std::memory_order_relaxed);
                if (static_cast<double>(idle) > budget_ms) {
                    std::fprintf(stderr,
                                 "[worker %s] watchdog: no progress in %lld ms; exiting %d\n",
                                 worker_id.c_str(), static_cast<long long>(idle),
                                 kWorkerExitWatchdog);
                    std::_Exit(kWorkerExitWatchdog);
                }
            }
        });
    }

    Watchdog(const Watchdog&) = delete;
    Watchdog& operator=(const Watchdog&) = delete;
    ~Watchdog() { disarm(); }

    void reset() { last_ms_.store(now_ms(), std::memory_order_relaxed); }

    /// Stops the timer for good — called once the shard result is in, so
    /// slow coordinator replies are never mistaken for a stalled trial.
    void disarm() {
        stop_.store(true, std::memory_order_relaxed);
        if (thread_.joinable()) thread_.join();
    }

private:
    static std::int64_t now_ms() {
        return std::chrono::duration_cast<std::chrono::milliseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
    }

    std::atomic<std::int64_t> last_ms_{0};
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

/// The hog-memory fault: allocate and touch blocks until the process
/// ceiling pushes back.  Meant to run under --rlimit-as, where either the
/// new-handler (installed by run_worker) or the bad_alloc below ends the
/// process with kWorkerExitMemoryCap; without a cap it runs until the OS
/// kills it, which the coordinator survives as an ordinary crash.
[[noreturn]] void hog_memory() {
    std::vector<std::unique_ptr<char[]>> hoard;
    try {
        for (;;) {
            constexpr std::size_t kBlock = std::size_t(16) << 20;
            auto block = std::make_unique<char[]>(kBlock);
            std::memset(block.get(), 0x5a, kBlock);  // touch: address space AND memory
            hoard.push_back(std::move(block));
        }
    } catch (const std::bad_alloc&) {
    }
    std::_Exit(kWorkerExitMemoryCap);
}

class Worker {
public:
    explicit Worker(const WorkerConfig& config)
        : config_(config),
          id_(config.worker_id.empty() ? "pid" + std::to_string(::getpid())
                                       : config.worker_id),
          rng_(common::splitmix64(std::hash<std::string>{}(id_))),
          fault_armed_(!config.fault.empty()) {}

    WorkerStats run();

private:
    enum class Outcome { Continue, Done, Abandon, Reconnect };

    void log(const std::string& line) const {
        if (config_.verbose) {
            std::fprintf(stderr, "[worker %s] %s\n", id_.c_str(), line.c_str());
        }
    }

    bool connect();
    Outcome serve_leases();  ///< The request loop on one connection.
    Outcome execute_lease(Json grant);
    void salvage(const shard::ShardManifest& manifest, const std::string& records_path,
                 const Json& candidates);

    WorkerConfig config_;
    std::string id_;
    common::Rng rng_;
    FramedConn conn_;
    double heartbeat_ms_ = 2500.0;
    bool fault_armed_;  ///< One-shot faults not yet fired.
    WorkerStats stats_;
};

bool Worker::connect() {
    bool ok = common::retry_with_backoff(
        config_.max_connect_attempts, config_.reconnect, rng_,
        [&] {
            int fd = connect_unix(config_.socket_path);
            if (fd < 0) return false;
            conn_ = FramedConn(fd);
            return true;
        },
        [](double ms) { sleep_ms(ms); });
    if (!ok) return false;
    Json hello = Json::object();
    hello["type"] = "hello";
    hello["worker"] = id_;
    hello["protocol"] = kProtocolVersion;
    try {
        conn_.write(hello);
        ReadResult r = conn_.read(static_cast<int>(config_.reply_timeout_ms));
        if (r.status != ReadStatus::Ok) return false;
        const std::string& type = common::json_string(r.message, "type");
        if (type == "error") {
            throw FatalError("coordinator refused hello: " +
                             common::json_string(r.message, "error"));
        }
        if (type != "welcome") return false;
        heartbeat_ms_ = common::json_double(r.message, "heartbeat_ms");
    } catch (const FatalError&) {
        throw;
    } catch (const common::Error&) {
        return false;
    }
    log("connected to " + config_.socket_path);
    return true;
}

Worker::Outcome Worker::serve_leases() {
    while (true) {
        try {
            Json request = Json::object();
            request["type"] = "lease-request";
            conn_.write(request);
            ReadResult r = conn_.read(static_cast<int>(config_.reply_timeout_ms));
            if (r.status == ReadStatus::Timeout) {
                throw common::Error("no reply from the coordinator");
            }
            if (r.status == ReadStatus::Closed) return Outcome::Reconnect;
            const std::string& type = common::json_string(r.message, "type");
            if (type == "done") return Outcome::Done;
            if (type == "wait") {
                sleep_ms(common::json_double(r.message, "retry_ms"));
                continue;
            }
            if (type == "lease") {
                Outcome out = execute_lease(std::move(r.message));
                if (out != Outcome::Continue) return out;
                continue;
            }
            if (type == "error") {
                throw FatalError("coordinator: " + common::json_string(r.message, "error"));
            }
            throw common::Error("unexpected frame '" + type + "'");
        } catch (const FatalError&) {
            throw;
        } catch (const common::Error& e) {
            log(std::string("connection trouble: ") + e.what());
            return Outcome::Reconnect;
        }
    }
}

Worker::Outcome Worker::execute_lease(Json grant) {
    int shard = static_cast<int>(common::json_int(grant, "shard"));
    int attempt = static_cast<int>(common::json_int(grant, "attempt"));
    shard::ShardManifest manifest = shard::ShardManifest::from_json(grant["manifest"]);
    const std::string records_path = common::json_string(grant, "records_path");
    heartbeat_ms_ = common::json_double(grant, "heartbeat_ms");
    log("leased shard " + std::to_string(shard) + " attempt " + std::to_string(attempt) +
        " [" + std::to_string(manifest.unit_begin) + ", " + std::to_string(manifest.unit_end) +
        ")");

    if (fault_armed_ && config_.fault.delay_lease_ms > 0.0) {
        log("fault: delaying " + std::to_string(config_.fault.delay_lease_ms) + " ms");
        sleep_ms(config_.fault.delay_lease_ms);
    }

    salvage(manifest, records_path, grant["resume_candidates"]);

    Watchdog watchdog(config_.watchdog_ms, id_);

    shard::RunShardOptions options;
    options.num_threads = config_.num_threads;
    options.trial_chunk = config_.trial_chunk;
    options.resume = true;
    if (fault_armed_ && config_.fault.kill_after_units >= 0) {
        options.interrupt_after_units = config_.fault.kill_after_units;
    } else if (fault_armed_ && config_.fault.abandon_after_units >= 0) {
        options.interrupt_after_units = config_.fault.abandon_after_units;
    }
    // Each durable checkpoint resets the watchdog, doubles as a heartbeat
    // alongside the timer thread's beats (FramedConn::write is
    // mutex-guarded, so the two interleave safely), and is where the
    // poison faults fire.  Heartbeat write errors are swallowed: the
    // records are durable and duplicate completions byte-verify, so the
    // shard is worth finishing even on a dead socket.
    options.on_progress = [this, &watchdog, shard, attempt](std::int64_t units_done) {
        watchdog.reset();
        if (fault_armed_ && config_.fault.hog_memory_after_units >= 0 &&
            units_done > config_.fault.hog_memory_after_units) {
            fault_armed_ = false;
            log("fault: hogging memory after " + std::to_string(units_done) + " units");
            hog_memory();  // never returns
        }
        if (fault_armed_ && config_.fault.spin_after_units >= 0 &&
            units_done > config_.fault.spin_after_units) {
            fault_armed_ = false;
            log("fault: spinning after " + std::to_string(units_done) + " units");
            // The HeartbeatThread keeps beating — from the lease queue's
            // seat this worker looks perfectly healthy.  Only the
            // wall-clock watchdog (or an external kill) ends this.
            for (;;) sleep_ms(50.0);
        }
        if (config_.fault.drop_heartbeats) return;
        Json beat = Json::object();
        beat["type"] = "heartbeat";
        beat["shard"] = shard;
        beat["attempt"] = attempt;
        try {
            conn_.write(beat);
        } catch (const common::Error&) {
        }
    };

    shard::RunShardResult result;
    {
        HeartbeatThread heartbeats(conn_, shard, attempt, heartbeat_ms_,
                                   !config_.fault.drop_heartbeats);
        try {
            result = shard::run_shard(manifest, records_path, options);
        } catch (const common::Error& e) {
            heartbeats.stop();
            watchdog.disarm();
            log("shard " + std::to_string(shard) + " failed: " + e.what());
            ++stats_.shards_failed;
            Json failed = Json::object();
            failed["type"] = "failed";
            failed["shard"] = shard;
            failed["attempt"] = attempt;
            failed["error"] = std::string(e.what());
            conn_.write(failed);
            ReadResult r = conn_.read(static_cast<int>(config_.reply_timeout_ms));
            if (r.status != ReadStatus::Ok) return Outcome::Reconnect;
            if (common::json_string(r.message, "type") == "done") return Outcome::Done;
            return Outcome::Continue;
        }
    }
    watchdog.disarm();

    if (!result.completed) {
        // The interrupt hook only fires for an armed kill/abandon fault.
        fault_armed_ = false;
        if (config_.fault.kill_after_units >= 0) {
            // A real mid-shard crash: the record file keeps its torn tail.
            ::raise(SIGKILL);
        }
        log("fault: abandoning shard " + std::to_string(shard) + " after " +
            std::to_string(result.units_run) + " units");
        conn_.close();
        return Outcome::Abandon;
    }
    fault_armed_ = false;

    Json complete = Json::object();
    complete["type"] = "complete";
    complete["shard"] = shard;
    complete["attempt"] = attempt;
    conn_.write(complete);
    ReadResult r = conn_.read(static_cast<int>(config_.reply_timeout_ms));
    if (r.status != ReadStatus::Ok) return Outcome::Reconnect;
    const std::string& type = common::json_string(r.message, "type");
    if (type == "done") return Outcome::Done;
    if (type == "reject") {
        log("completion rejected: " + common::json_string(r.message, "error"));
        ++stats_.shards_failed;
        return Outcome::Continue;
    }
    if (type != "ack") throw common::Error("unexpected reply '" + type + "' to complete");
    ++stats_.shards_completed;
    stats_.units_run += result.units_run;
    log("shard " + std::to_string(shard) + " complete (" + std::to_string(result.units_run) +
        " units this attempt)");
    return common::json_bool(r.message, "done") ? Outcome::Done : Outcome::Continue;
}

void Worker::salvage(const shard::ShardManifest& manifest, const std::string& records_path,
                     const Json& candidates) {
    if (!candidates.is_array() || fs::exists(records_path)) return;
    const std::string want = manifest.to_json().dump();
    for (const Json& candidate : candidates.as_array()) {
        if (!candidate.is_string()) continue;
        const std::string& path = candidate.as_string();
        try {
            shard::ShardRecordFile file = shard::read_record_file(path);
            if (file.manifest.to_json().dump() != want) continue;
            if (file.checkpoint <= manifest.unit_begin) continue;  // nothing durable
            // Copy the durable prefix — safe even while the prior attempt
            // is still writing, because resume_offset never exceeds the
            // bytes that were fsync'd under its last checkpoint.
            std::ifstream in(path, std::ios::binary);
            std::string bytes((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
            bytes.resize(static_cast<std::size_t>(file.resume_offset));
            std::ofstream out(records_path, std::ios::binary | std::ios::trunc);
            out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
            out.close();
            if (!out) throw common::Error("cannot write " + records_path);
            ++stats_.salvages;
            log("salvaged " + std::to_string(file.checkpoint - manifest.unit_begin) +
                " units from " + path);
            return;
        } catch (const common::Error&) {
            continue;  // unreadable/foreign candidate; try the next
        }
    }
}

WorkerStats Worker::run() {
    bool first = true;
    while (true) {
        if (!connect()) {
            throw common::Error("worker " + id_ + ": coordinator unreachable at " +
                                config_.socket_path + " after " +
                                std::to_string(config_.max_connect_attempts) + " attempts");
        }
        if (!first) ++stats_.reconnects;
        first = false;
        switch (serve_leases()) {
            case Outcome::Done:
                log("audit done; exiting");
                return stats_;
            case Outcome::Abandon:
                stats_.abandoned = true;
                return stats_;
            case Outcome::Reconnect:
                conn_.close();
                break;
            case Outcome::Continue:
                break;  // unreachable
        }
    }
}

}  // namespace

WorkerStats run_worker(const WorkerConfig& config) {
    ignore_sigpipe();
    if (config.rlimit_as_bytes > 0) {
        struct rlimit lim;
        lim.rlim_cur = static_cast<rlim_t>(config.rlimit_as_bytes);
        lim.rlim_max = static_cast<rlim_t>(config.rlimit_as_bytes);
        if (::setrlimit(RLIMIT_AS, &lim) != 0) {
            throw common::Error("worker: setrlimit(RLIMIT_AS, " +
                                std::to_string(config.rlimit_as_bytes) +
                                ") failed: " + std::strerror(errno));
        }
        // Under the cap, a failed allocation must kill ONLY this worker
        // with a distinguishable code — never unwind into a Crash verdict
        // that other runs (under other caps) would not reproduce.
        std::set_new_handler([] { std::_Exit(kWorkerExitMemoryCap); });
    }
    Worker worker(config);
    return worker.run();
}

}  // namespace ff::coord
