#include "coord/fault.h"

#include <cerrno>
#include <cstdlib>
#include <vector>

#include "common/error.h"

namespace ff::coord {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t end = s.find(sep, start);
        if (end == std::string::npos) end = s.size();
        out.push_back(s.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

std::int64_t parse_i64(const std::string& key, const std::string& value) {
    char* end = nullptr;
    errno = 0;
    long long v = std::strtoll(value.c_str(), &end, 10);
    if (value.empty() || end != value.c_str() + value.size() || errno != 0) {
        throw common::Error("fault plan: " + key + "=" + value + ": expected an integer");
    }
    return static_cast<std::int64_t>(v);
}

double parse_f64(const std::string& key, const std::string& value) {
    char* end = nullptr;
    errno = 0;
    double v = std::strtod(value.c_str(), &end);
    if (value.empty() || end != value.c_str() + value.size() || errno != 0) {
        throw common::Error("fault plan: " + key + "=" + value + ": expected a number");
    }
    return v;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
    FaultPlan plan;
    if (spec.empty()) return plan;
    for (const std::string& token : split(spec, ',')) {
        if (token.empty()) continue;
        std::size_t eq = token.find('=');
        std::string key = token.substr(0, eq);
        std::string value = eq == std::string::npos ? "" : token.substr(eq + 1);
        bool has_value = eq != std::string::npos;
        if (key == "kill-after-units" && has_value) {
            plan.kill_after_units = parse_i64(key, value);
        } else if (key == "abandon-after-units" && has_value) {
            plan.abandon_after_units = parse_i64(key, value);
        } else if (key == "spin-after-units" && has_value) {
            plan.spin_after_units = parse_i64(key, value);
        } else if (key == "hog-memory-after-units" && has_value) {
            plan.hog_memory_after_units = parse_i64(key, value);
        } else if (key == "disconnect-after-units" && has_value) {
            plan.disconnect_after_units = parse_i64(key, value);
        } else if (key == "delay-lease-ms" && has_value) {
            plan.delay_lease_ms = parse_f64(key, value);
        } else if (key == "drop-heartbeats" && !has_value) {
            plan.drop_heartbeats = true;
        } else {
            throw common::Error(
                "fault plan: unknown token '" + token +
                "' (expected kill-after-units=N, abandon-after-units=N, "
                "spin-after-units=N, hog-memory-after-units=N, "
                "disconnect-after-units=N, delay-lease-ms=N or drop-heartbeats)");
        }
    }
    return plan;
}

std::string FaultPlan::describe() const {
    if (empty()) return "none";
    std::string out;
    auto add = [&out](const std::string& piece) {
        if (!out.empty()) out += ",";
        out += piece;
    };
    if (kill_after_units >= 0) add("kill-after-units=" + std::to_string(kill_after_units));
    if (abandon_after_units >= 0) {
        add("abandon-after-units=" + std::to_string(abandon_after_units));
    }
    if (spin_after_units >= 0) add("spin-after-units=" + std::to_string(spin_after_units));
    if (hog_memory_after_units >= 0) {
        add("hog-memory-after-units=" + std::to_string(hog_memory_after_units));
    }
    if (disconnect_after_units >= 0) {
        add("disconnect-after-units=" + std::to_string(disconnect_after_units));
    }
    if (drop_heartbeats) add("drop-heartbeats");
    if (delay_lease_ms > 0.0) {
        add("delay-lease-ms=" + std::to_string(static_cast<long long>(delay_lease_ms)));
    }
    return out;
}

}  // namespace ff::coord
