// Deterministic network fault injection: an in-path frame proxy.
//
// FrameProxy sits between workers and the coordinator, speaking the raw
// frame layout of coord/protocol (it never needs to *decode* most frames,
// only to delimit them), and applies a NetFaultPlan to the worker ->
// coordinator direction: dropping, delaying, duplicating or corrupting
// whole frames, and severing every connection for a timed partition.  The
// coordinator and worker are never told they are talking through it — that
// is the point: the chaos script and the in-process tests prove the audit
// report stays byte-identical to a single-process run while the transport
// misbehaves in every way the frame CRC, the reconnect/backoff machinery
// and the session-resume grace window are supposed to absorb.
//
// Determinism: faults are counter-based per connection (the Nth frame of a
// connection is dropped/duplicated every time) or one-shot (corrupt the
// Nth relayed frame overall; partition once when a heartbeat first reports
// >= N units).  No randomness, no wall-clock sampling — the same worker
// behaviour yields the same fault sequence.
//
// Used in-process by tests/test_coord.cpp and by
// `ffaudit serve --net-fault <spec>` (scripts/coord_chaos.py --net), where
// serve interposes the proxy between its real endpoint and the workers it
// spawns.
#pragma once

/// \file
/// NetFaultPlan + FrameProxy: deterministic in-path frame-level network
/// fault injection for the coordinator transport.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "coord/protocol.h"

namespace ff::coord {

/// What the proxy sabotages, and when.  All counters are 1-based frame
/// ordinals on the worker -> coordinator direction.
struct NetFaultPlan {
    /// Drop every Nth frame of each connection (frames N, 2N, ...).
    /// 0 = disabled.  N == 1 would drop the hello and wedge the handshake
    /// forever, so parse() rejects it.
    std::int64_t drop_frame_every_n = 0;

    /// Hold each relayed frame this long before forwarding (both
    /// directions) — bounded latency, not loss.  0 = disabled.
    double delay_frame_ms = 0.0;

    /// Forward every Nth frame of each connection twice.  0 = disabled.
    std::int64_t duplicate_frame_every_n = 0;

    /// One-shot: flip one payload byte of the Nth worker->coordinator
    /// frame relayed overall (across connections).  The receiver's frame
    /// CRC must classify it as a disconnect.  0 = disabled.
    std::int64_t corrupt_frame_byte = 0;

    /// One-shot: when a relayed heartbeat first reports `units` >= this
    /// value, sever every connection and refuse new ones for `heal_ms`.
    /// < 0 = disabled.
    std::int64_t partition_after_units = -1;

    /// Partition duration before the proxy heals and accepts again.
    double heal_ms = 1000.0;

    /// True when no fault is configured.
    bool empty() const {
        return drop_frame_every_n == 0 && delay_frame_ms <= 0.0 &&
               duplicate_frame_every_n == 0 && corrupt_frame_byte == 0 &&
               partition_after_units < 0;
    }

    /// Parses a comma-separated spec, e.g.
    /// "drop-frame-every-n=7,delay-frame-ms=5,partition-after-units=4,heal-ms=1500".
    /// Keys: drop-frame-every-n, delay-frame-ms, duplicate-frame (alias
    /// duplicate-frame-every-n), corrupt-frame-byte, partition-after-units,
    /// heal-ms.  Empty spec = no faults.  Throws common::Error on unknown
    /// keys or malformed values.
    static NetFaultPlan parse(const std::string& spec);

    /// Human-readable summary ("none" when empty) for logs.
    std::string describe() const;
};

/// Monotonic counters of what the proxy did (read anytime; exact after
/// stop()).
struct NetFaultStats {
    std::int64_t frames_forwarded = 0;  ///< worker->coord frames relayed.
    std::int64_t frames_dropped = 0;
    std::int64_t frames_duplicated = 0;
    std::int64_t frames_corrupted = 0;
    int partitions = 0;  ///< Partition events fired (0 or 1; the fault is one-shot).
};

/// The in-path proxy.  Listens on `listen`, dials `upstream` per client
/// connection, relays frames with faults applied.  Runs its own accept and
/// per-connection pump threads; stop() (or destruction) severs everything
/// and joins them.
class FrameProxy {
public:
    /// Binds and starts accepting immediately; throws common::Error when
    /// the listen endpoint cannot be bound.
    FrameProxy(Endpoint listen, Endpoint upstream, NetFaultPlan plan);
    ~FrameProxy();
    FrameProxy(const FrameProxy&) = delete;
    FrameProxy& operator=(const FrameProxy&) = delete;

    /// Severs all connections, stops accepting, joins all threads
    /// (idempotent).
    void stop();

    /// The address workers should dial: the listen endpoint with any
    /// kernel-assigned TCP port resolved.
    Endpoint listen_endpoint() const { return listen_; }

    NetFaultStats stats() const;

private:
    struct Conn;
    void accept_loop();
    void pump(std::shared_ptr<Conn> conn, bool upstream_direction);
    bool partitioned_now();
    void fire_partition();
    void sever_all();

    Endpoint listen_;
    Endpoint upstream_;
    NetFaultPlan plan_;
    int listen_fd_ = -1;
    std::atomic<bool> stopping_{false};

    std::mutex mu_;  ///< Guards conns_ and threads_.
    std::vector<std::shared_ptr<Conn>> conns_;
    std::vector<std::thread> threads_;
    std::thread accept_thread_;

    std::atomic<std::int64_t> forwarded_total_{0};  ///< One-shot corrupt ordinal.
    std::atomic<bool> corrupted_once_{false};
    std::atomic<bool> partition_armed_{true};
    std::atomic<std::int64_t> partition_until_ms_{0};  ///< steady-clock ms; 0 = none.

    mutable std::mutex stats_mu_;
    NetFaultStats stats_;
};

}  // namespace ff::coord
