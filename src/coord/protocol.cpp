#include "coord/protocol.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/checksum.h"
#include "common/error.h"

namespace ff::coord {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw common::Error(what + ": " + std::strerror(errno));
}

/// Encodes a 32-bit big-endian length prefix.
void put_u32_be(char out[4], std::uint32_t v) {
    out[0] = static_cast<char>((v >> 24) & 0xff);
    out[1] = static_cast<char>((v >> 16) & 0xff);
    out[2] = static_cast<char>((v >> 8) & 0xff);
    out[3] = static_cast<char>(v & 0xff);
}

std::uint32_t get_u32_be(const char* in) {
    return (static_cast<std::uint32_t>(static_cast<unsigned char>(in[0])) << 24) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(in[1])) << 16) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(in[2])) << 8) |
           static_cast<std::uint32_t>(static_cast<unsigned char>(in[3]));
}

/// Fills `addr` from `path`; unix socket paths have a hard ~107 byte bound.
sockaddr_un make_addr(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        throw common::Error("socket path too long (" + std::to_string(path.size()) +
                            " bytes, limit " + std::to_string(sizeof(addr.sun_path) - 1) +
                            "): " + path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

/// RAII for getaddrinfo results.  Move-only: a copied `res` pointer would
/// be freed once per copy.
struct AddrInfo {
    addrinfo* res = nullptr;
    AddrInfo() = default;
    AddrInfo(AddrInfo&& other) noexcept : res(other.res) { other.res = nullptr; }
    AddrInfo& operator=(AddrInfo&& other) noexcept {
        if (this != &other) {
            if (res) ::freeaddrinfo(res);
            res = other.res;
            other.res = nullptr;
        }
        return *this;
    }
    AddrInfo(const AddrInfo&) = delete;
    AddrInfo& operator=(const AddrInfo&) = delete;
    ~AddrInfo() {
        if (res) ::freeaddrinfo(res);
    }
};

/// Resolves host:port for TCP.  `passive` selects listen-side semantics
/// (empty host = all interfaces instead of loopback).
AddrInfo resolve_tcp(const std::string& host, int port, bool passive) {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_protocol = IPPROTO_TCP;
    if (passive) hints.ai_flags = AI_PASSIVE;
    AddrInfo out;
    const std::string service = std::to_string(port);
    int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(), service.c_str(), &hints,
                           &out.res);
    if (rc != 0) {
        throw common::Error("resolve " + (host.empty() ? std::string("*") : host) + ":" +
                            service + ": " + ::gai_strerror(rc));
    }
    return out;
}

void set_nodelay(int fd) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));  // best effort
}

/// Completes a connect() that returned EINTR: POSIX leaves the connection
/// attempt in progress, so poll for writability and read SO_ERROR instead
/// of retrying connect (which would fail with EALREADY).
bool finish_interrupted_connect(int fd) {
    while (true) {
        pollfd pfd{fd, POLLOUT, 0};
        int pr = ::poll(&pfd, 1, -1);
        if (pr < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        break;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) return false;
    return err == 0;
}

}  // namespace

std::string encode_frame(const common::Json& message) {
    std::string payload = message.dump();
    if (payload.size() > kMaxFrameBytes) {
        throw common::Error("frame payload too large: " + std::to_string(payload.size()) +
                            " bytes");
    }
    std::string wire(kFrameHeaderBytes, '\0');
    put_u32_be(wire.data(), static_cast<std::uint32_t>(payload.size()));
    wire[4] = static_cast<char>(kProtocolVersion);
    put_u32_be(wire.data() + 5, common::crc32c(payload));
    wire += payload;
    return wire;
}

void write_frame(int fd, const common::Json& message) {
    std::string wire = encode_frame(message);
    std::size_t off = 0;
    while (off < wire.size()) {
        // MSG_NOSIGNAL: a peer that died mid-write surfaces as EPIPE, not
        // a process-killing SIGPIPE.
        ssize_t n = ::send(fd, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // SO_SNDTIMEO expired: the peer stopped draining its
                // socket.  The caller drops the connection; the frame is
                // torn mid-wire, which the peer's FrameBuffer never sees.
                throw common::Error("send timed out (peer not reading)");
            }
            throw_errno("send");
        }
        off += static_cast<std::size_t>(n);
    }
}

void FrameBuffer::append(const char* data, std::size_t size) { buf_.append(data, size); }

std::optional<common::Json> FrameBuffer::next() {
    if (buf_.size() < 4) return std::nullopt;
    // The length is validated as soon as it is readable — an insane prefix
    // must never make the receiver buffer (or wait for) gigabytes.
    std::uint32_t len = get_u32_be(buf_.data());
    if (len > kMaxFrameBytes) {
        throw FrameError(FrameError::Kind::Oversized,
                         "oversized frame: " + std::to_string(len) + " bytes");
    }
    if (buf_.size() < kFrameHeaderBytes) return std::nullopt;
    // Version is checked before waiting for the full payload so a peer
    // speaking another version fails on its first header, not after a
    // potentially never-arriving body.
    int version = static_cast<unsigned char>(buf_[4]);
    if (version != kProtocolVersion) {
        throw FrameError(FrameError::Kind::BadVersion,
                         "wire protocol version mismatch: peer sent " +
                             std::to_string(version) + ", this build speaks " +
                             std::to_string(kProtocolVersion));
    }
    if (buf_.size() < kFrameHeaderBytes + static_cast<std::size_t>(len)) return std::nullopt;
    std::uint32_t want = get_u32_be(buf_.data() + 5);
    std::string_view payload(buf_.data() + kFrameHeaderBytes, len);
    std::uint32_t got = common::crc32c(payload);
    if (got != want) {
        throw FrameError(FrameError::Kind::BadChecksum,
                         "frame checksum mismatch: header " + common::crc32c_hex(want) +
                             ", payload " + common::crc32c_hex(got));
    }
    common::Json message;
    try {
        message = common::Json::parse(std::string(payload));
    } catch (const common::ParseError& e) {
        throw FrameError(FrameError::Kind::BadPayload,
                         "frame payload is not valid JSON: " + common::error_detail(e));
    }
    buf_.erase(0, kFrameHeaderBytes + static_cast<std::size_t>(len));
    return message;
}

FramedConn::FramedConn(FramedConn&& other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_)) {
    other.fd_ = -1;
}

FramedConn& FramedConn::operator=(FramedConn&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = other.fd_;
        buf_ = std::move(other.buf_);
        other.fd_ = -1;
    }
    return *this;
}

FramedConn::~FramedConn() { close(); }

void FramedConn::write(const common::Json& message) {
    std::lock_guard<std::mutex> lock(write_mu_);
    if (fd_ < 0) throw common::Error("write on a closed connection");
    write_frame(fd_, message);
}

ReadResult FramedConn::read(int timeout_ms) {
    if (fd_ < 0) throw common::Error("read on a closed connection");
    // An absolute deadline, not a per-iteration budget: EINTR restarts the
    // poll with only the *remaining* time, so a stream of signals (the
    // respawn/watchdog machinery is signal-happy) cannot stretch the wait.
    using Clock = std::chrono::steady_clock;
    const Clock::time_point deadline =
        timeout_ms >= 0 ? Clock::now() + std::chrono::milliseconds(timeout_ms)
                        : Clock::time_point{};
    while (true) {
        if (auto frame = buf_.next()) return {ReadStatus::Ok, std::move(*frame)};
        if (timeout_ms >= 0) {
            auto remaining = std::chrono::ceil<std::chrono::milliseconds>(
                deadline - Clock::now());
            int wait_ms = static_cast<int>(std::max<std::int64_t>(0, remaining.count()));
            pollfd pfd{fd_, POLLIN, 0};
            int pr = ::poll(&pfd, 1, wait_ms);
            if (pr < 0) {
                if (errno == EINTR) continue;
                throw_errno("poll");
            }
            if (pr == 0) return {ReadStatus::Timeout, {}};
        }
        char chunk[4096];
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno("recv");
        }
        if (n == 0) return {ReadStatus::Closed, {}};
        buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

void FrameBuffer::clear() { buf_.clear(); }

void FramedConn::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
        buf_.clear();
    }
}

Endpoint Endpoint::unix_path(std::string p) {
    Endpoint ep;
    ep.tcp = false;
    ep.path = std::move(p);
    return ep;
}

Endpoint Endpoint::parse_tcp(const std::string& hostport) {
    auto colon = hostport.rfind(':');
    if (colon == std::string::npos) {
        throw common::Error("TCP address must be host:port, got '" + hostport + "'");
    }
    Endpoint ep;
    ep.tcp = true;
    ep.host = hostport.substr(0, colon);
    const std::string port_str = hostport.substr(colon + 1);
    errno = 0;
    char* end = nullptr;
    long port = std::strtol(port_str.c_str(), &end, 10);
    if (port_str.empty() || end == nullptr || *end != '\0' || errno != 0 || port < 0 ||
        port > 65535) {
        throw common::Error("TCP port must be a number in [0, 65535], got '" + port_str +
                            "'");
    }
    ep.port = static_cast<int>(port);
    return ep;
}

std::string Endpoint::describe() const {
    if (!tcp) return path;
    return (host.empty() ? std::string("*") : host) + ":" + std::to_string(port);
}

int listen_endpoint(const Endpoint& ep, int backlog, int* bound_port) {
    if (!ep.tcp) {
        if (bound_port) *bound_port = 0;
        return listen_unix(ep.path, backlog);
    }
    AddrInfo ai = resolve_tcp(ep.host, ep.port, /*passive=*/true);
    int fd = -1;
    std::string last_error = "no addresses";
    for (addrinfo* a = ai.res; a != nullptr; a = a->ai_next) {
        fd = ::socket(a->ai_family, a->ai_socktype | SOCK_CLOEXEC, a->ai_protocol);
        if (fd < 0) {
            last_error = std::string("socket: ") + std::strerror(errno);
            continue;
        }
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, a->ai_addr, a->ai_addrlen) == 0 && ::listen(fd, backlog) == 0) break;
        last_error = std::string(std::strerror(errno));
        ::close(fd);
        fd = -1;
    }
    if (fd < 0) {
        throw common::Error("listen " + ep.describe() + ": " + last_error);
    }
    if (bound_port) {
        sockaddr_storage addr{};
        socklen_t len = sizeof(addr);
        if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
            int saved = errno;
            ::close(fd);
            errno = saved;
            throw_errno("getsockname");
        }
        if (addr.ss_family == AF_INET) {
            *bound_port = ntohs(reinterpret_cast<sockaddr_in*>(&addr)->sin_port);
        } else if (addr.ss_family == AF_INET6) {
            *bound_port = ntohs(reinterpret_cast<sockaddr_in6*>(&addr)->sin6_port);
        } else {
            *bound_port = ep.port;
        }
    }
    return fd;
}

int connect_endpoint(const Endpoint& ep) {
    if (!ep.tcp) return connect_unix(ep.path);
    AddrInfo ai;
    try {
        // Default host for dialing is loopback, not all-interfaces.
        ai = resolve_tcp(ep.host.empty() ? "127.0.0.1" : ep.host, ep.port,
                         /*passive=*/false);
    } catch (const common::Error&) {
        return -1;  // transient DNS failure: caller retries with backoff
    }
    for (addrinfo* a = ai.res; a != nullptr; a = a->ai_next) {
        int fd = ::socket(a->ai_family, a->ai_socktype | SOCK_CLOEXEC, a->ai_protocol);
        if (fd < 0) continue;
        if (::connect(fd, a->ai_addr, a->ai_addrlen) == 0 ||
            (errno == EINTR && finish_interrupted_connect(fd))) {
            set_nodelay(fd);
            return fd;
        }
        ::close(fd);
    }
    return -1;
}

int listen_unix(const std::string& path, int backlog) {
    sockaddr_un addr = make_addr(path);
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket");
    ::unlink(path.c_str());  // stale socket file from a previous run
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
        int saved = errno;
        ::close(fd);
        errno = saved;
        throw_errno("bind " + path);
    }
    if (::listen(fd, backlog) < 0) {
        int saved = errno;
        ::close(fd);
        errno = saved;
        throw_errno("listen " + path);
    }
    return fd;
}

void ignore_sigpipe() {
    static std::once_flag once;
    std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

int connect_unix(const std::string& path) {
    sockaddr_un addr = make_addr(path);
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
        if (errno == EINTR && finish_interrupted_connect(fd)) return fd;
        ::close(fd);
        return -1;
    }
    return fd;
}

}  // namespace ff::coord
