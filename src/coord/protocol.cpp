#include "coord/protocol.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"

namespace ff::coord {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw common::Error(what + ": " + std::strerror(errno));
}

/// Encodes a 32-bit big-endian length prefix.
void put_u32_be(char out[4], std::uint32_t v) {
    out[0] = static_cast<char>((v >> 24) & 0xff);
    out[1] = static_cast<char>((v >> 16) & 0xff);
    out[2] = static_cast<char>((v >> 8) & 0xff);
    out[3] = static_cast<char>(v & 0xff);
}

std::uint32_t get_u32_be(const char* in) {
    return (static_cast<std::uint32_t>(static_cast<unsigned char>(in[0])) << 24) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(in[1])) << 16) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(in[2])) << 8) |
           static_cast<std::uint32_t>(static_cast<unsigned char>(in[3]));
}

/// Fills `addr` from `path`; unix socket paths have a hard ~107 byte bound.
sockaddr_un make_addr(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        throw common::Error("socket path too long (" + std::to_string(path.size()) +
                            " bytes, limit " + std::to_string(sizeof(addr.sun_path) - 1) +
                            "): " + path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

}  // namespace

void write_frame(int fd, const common::Json& message) {
    std::string payload = message.dump();
    if (payload.size() > kMaxFrameBytes) {
        throw common::Error("frame payload too large: " + std::to_string(payload.size()) +
                            " bytes");
    }
    char prefix[4];
    put_u32_be(prefix, static_cast<std::uint32_t>(payload.size()));
    std::string wire(prefix, 4);
    wire += payload;
    std::size_t off = 0;
    while (off < wire.size()) {
        // MSG_NOSIGNAL: a peer that died mid-write surfaces as EPIPE, not
        // a process-killing SIGPIPE.
        ssize_t n = ::send(fd, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // SO_SNDTIMEO expired: the peer stopped draining its
                // socket.  The caller drops the connection; the frame is
                // torn mid-wire, which the peer's FrameBuffer never sees.
                throw common::Error("send timed out (peer not reading)");
            }
            throw_errno("send");
        }
        off += static_cast<std::size_t>(n);
    }
}

void FrameBuffer::append(const char* data, std::size_t size) { buf_.append(data, size); }

std::optional<common::Json> FrameBuffer::next() {
    if (buf_.size() < 4) return std::nullopt;
    std::uint32_t len = get_u32_be(buf_.data());
    if (len > kMaxFrameBytes) {
        throw common::Error("oversized frame: " + std::to_string(len) + " bytes");
    }
    if (buf_.size() < 4 + static_cast<std::size_t>(len)) return std::nullopt;
    common::Json message = common::Json::parse(buf_.substr(4, len));
    buf_.erase(0, 4 + static_cast<std::size_t>(len));
    return message;
}

FramedConn::FramedConn(FramedConn&& other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_)) {
    other.fd_ = -1;
}

FramedConn& FramedConn::operator=(FramedConn&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = other.fd_;
        buf_ = std::move(other.buf_);
        other.fd_ = -1;
    }
    return *this;
}

FramedConn::~FramedConn() { close(); }

void FramedConn::write(const common::Json& message) {
    std::lock_guard<std::mutex> lock(write_mu_);
    if (fd_ < 0) throw common::Error("write on a closed connection");
    write_frame(fd_, message);
}

ReadResult FramedConn::read(int timeout_ms) {
    if (fd_ < 0) throw common::Error("read on a closed connection");
    while (true) {
        if (auto frame = buf_.next()) return {ReadStatus::Ok, std::move(*frame)};
        if (timeout_ms >= 0) {
            pollfd pfd{fd_, POLLIN, 0};
            int pr = ::poll(&pfd, 1, timeout_ms);
            if (pr < 0) {
                if (errno == EINTR) continue;
                throw_errno("poll");
            }
            if (pr == 0) return {ReadStatus::Timeout, {}};
        }
        char chunk[4096];
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno("recv");
        }
        if (n == 0) return {ReadStatus::Closed, {}};
        buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

void FrameBuffer::clear() { buf_.clear(); }

void FramedConn::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
        buf_.clear();
    }
}

int listen_unix(const std::string& path, int backlog) {
    sockaddr_un addr = make_addr(path);
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket");
    ::unlink(path.c_str());  // stale socket file from a previous run
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
        int saved = errno;
        ::close(fd);
        errno = saved;
        throw_errno("bind " + path);
    }
    if (::listen(fd, backlog) < 0) {
        int saved = errno;
        ::close(fd);
        errno = saved;
        throw_errno("listen " + path);
    }
    return fd;
}

void ignore_sigpipe() {
    static std::once_flag once;
    std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

int connect_unix(const std::string& path) {
    sockaddr_un addr = make_addr(path);
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

}  // namespace ff::coord
