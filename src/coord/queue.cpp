#include "coord/queue.h"

#include <algorithm>
#include <utility>

#include "common/error.h"

namespace ff::coord {

namespace {

using Millis = std::chrono::duration<double, std::milli>;

TimePoint add_ms(TimePoint t, double ms) {
    return t + std::chrono::duration_cast<TimePoint::duration>(Millis(ms));
}

double ms_until(TimePoint now, TimePoint t) {
    return std::chrono::duration_cast<Millis>(t - now).count();
}

}  // namespace

LeaseQueue::LeaseQueue(std::vector<shard::ShardManifest> shards, const LeaseConfig& config)
    : config_(config), rng_(config.seed) {
    shards_.reserve(shards.size());
    for (auto& manifest : shards) {
        ShardEntry entry;
        entry.manifest = std::move(manifest);
        shards_.push_back(std::move(entry));
    }
}

std::optional<Lease> LeaseQueue::acquire(const std::string& worker, TimePoint now) {
    // First choice: the lowest-index Pending shard whose backoff elapsed.
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        ShardEntry& entry = shards_[i];
        if (entry.state != ShardState::Pending) continue;
        if (entry.attempts_issued > 0 && now < entry.not_before) continue;
        Attempt attempt;
        attempt.attempt = entry.attempts_issued++;
        attempt.worker = worker;
        attempt.issued = now;
        attempt.deadline = add_ms(now, config_.lease_ms);
        entry.active.push_back(attempt);
        entry.state = ShardState::Leased;
        ++stats_.granted;
        Lease lease;
        lease.shard = static_cast<int>(i);
        lease.attempt = attempt.attempt;
        lease.manifest = entry.manifest;
        return lease;
    }
    // Otherwise hedge a straggler: a Leased shard under the attempt cap
    // whose newest attempt has been out longer than straggler_factor
    // leases.  Pick the one with the oldest newest-attempt so the worst
    // straggler is hedged first.
    double straggler_ms = config_.straggler_factor * config_.lease_ms;
    auto newest_issue = [](const ShardEntry& e) {
        TimePoint newest = e.active.front().issued;
        for (const Attempt& a : e.active) newest = std::max(newest, a.issued);
        return newest;
    };
    bool found = false;
    std::size_t best_index = 0;
    TimePoint best_newest{};
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        const ShardEntry& entry = shards_[i];
        if (entry.state != ShardState::Leased) continue;
        if (static_cast<int>(entry.active.size()) >= config_.max_active_per_shard) continue;
        TimePoint newest = newest_issue(entry);
        if (ms_until(newest, now) < straggler_ms) continue;  // not old enough
        if (!found || newest < best_newest) {
            found = true;
            best_index = i;
            best_newest = newest;
        }
    }
    if (found) {
        ShardEntry& entry = shards_[best_index];
        Attempt attempt;
        attempt.attempt = entry.attempts_issued++;
        attempt.worker = worker;
        attempt.issued = now;
        attempt.deadline = add_ms(now, config_.lease_ms);
        entry.active.push_back(attempt);
        ++stats_.granted;
        ++stats_.hedges;
        Lease lease;
        lease.shard = static_cast<int>(best_index);
        lease.attempt = attempt.attempt;
        lease.hedge = true;
        lease.manifest = entry.manifest;
        return lease;
    }
    return std::nullopt;
}

bool LeaseQueue::heartbeat(int shard, int attempt, TimePoint now) {
    if (shard < 0 || shard >= shard_count()) return false;
    ShardEntry& entry = shards_[shard];
    for (Attempt& a : entry.active) {
        if (a.attempt == attempt) {
            a.deadline = add_ms(now, config_.lease_ms);
            return true;
        }
    }
    return false;
}

bool LeaseQueue::complete(int shard, int attempt) {
    if (shard < 0 || shard >= shard_count()) {
        throw common::Error("complete: shard " + std::to_string(shard) + " out of range");
    }
    ShardEntry& entry = shards_[shard];
    (void)attempt;  // any attempt's completion counts; files are byte-equal
    if (entry.state == ShardState::Done) {
        ++stats_.duplicate_completions;
        return false;
    }
    // Leased, Pending (the attempt expired but the worker finished anyway)
    // or even Failed (a zombie rescued the shard after the retry cap).
    if (entry.state == ShardState::Failed) --stats_.shards_failed;
    entry.state = ShardState::Done;
    entry.active.clear();
    entry.last_error.clear();
    ++stats_.completions;
    return true;
}

void LeaseQueue::extend_active(TimePoint now) {
    for (ShardEntry& entry : shards_) {
        for (Attempt& a : entry.active) a.deadline = add_ms(now, config_.lease_ms);
    }
}

int LeaseQueue::add_shard(const shard::ShardManifest& manifest) {
    ShardEntry entry;
    entry.manifest = manifest;
    shards_.push_back(std::move(entry));
    return static_cast<int>(shards_.size()) - 1;
}

void LeaseQueue::fail(int shard, int attempt, TimePoint now, const std::string& error) {
    if (shard < 0 || shard >= shard_count()) return;
    ShardEntry& entry = shards_[shard];
    auto it = std::find_if(entry.active.begin(), entry.active.end(),
                           [&](const Attempt& a) { return a.attempt == attempt; });
    if (it == entry.active.end()) return;  // stale: already expired/requeued
    entry.active.erase(it);
    ++entry.failures;
    ++stats_.worker_failures;
    entry.last_error = error;
    if (entry.state == ShardState::Leased && entry.active.empty()) {
        requeue_or_fail(entry, now);
    }
}

std::vector<LeaseQueue::LostAttempt> LeaseQueue::expire(TimePoint now) {
    std::vector<LostAttempt> lost;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        ShardEntry& entry = shards_[i];
        if (entry.state != ShardState::Leased) continue;
        for (auto it = entry.active.begin(); it != entry.active.end();) {
            if (it->deadline <= now) {
                lost.push_back({static_cast<int>(i), it->attempt, it->worker});
                ++entry.failures;
                ++stats_.expirations;
                entry.last_error = "lease expired (worker " + it->worker + ")";
                it = entry.active.erase(it);
            } else {
                ++it;
            }
        }
        if (entry.state == ShardState::Leased && entry.active.empty()) {
            requeue_or_fail(entry, now);
        }
    }
    return lost;
}

std::vector<LeaseQueue::LostAttempt> LeaseQueue::worker_lost(const std::string& worker,
                                                             TimePoint now) {
    std::vector<LostAttempt> lost;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        ShardEntry& entry = shards_[i];
        if (entry.state != ShardState::Leased) continue;
        for (auto it = entry.active.begin(); it != entry.active.end();) {
            if (it->worker == worker) {
                lost.push_back({static_cast<int>(i), it->attempt, it->worker});
                ++entry.failures;
                entry.last_error = "worker " + worker + " disconnected";
                it = entry.active.erase(it);
            } else {
                ++it;
            }
        }
        if (entry.state == ShardState::Leased && entry.active.empty()) {
            requeue_or_fail(entry, now);
        }
    }
    return lost;
}

std::vector<LeaseQueue::LostAttempt> LeaseQueue::park_worker(const std::string& worker,
                                                             TimePoint now, double grace_ms) {
    std::vector<LostAttempt> parked;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        ShardEntry& entry = shards_[i];
        if (entry.state != ShardState::Leased) continue;
        for (Attempt& a : entry.active) {
            if (a.worker != worker) continue;
            // max(): a lease whose deadline already reaches past the grace
            // window keeps it — parking never *shortens* a lease.
            a.deadline = std::max(a.deadline, add_ms(now, grace_ms));
            parked.push_back({static_cast<int>(i), a.attempt, a.worker});
        }
    }
    return parked;
}

void LeaseQueue::requeue_or_fail(ShardEntry& entry, TimePoint now) {
    if (entry.failures >= config_.max_failures) {
        entry.state = ShardState::Failed;
        ++stats_.shards_failed;
        return;
    }
    entry.state = ShardState::Pending;
    entry.not_before = add_ms(now, config_.backoff.delay_ms(entry.failures - 1, rng_));
    ++stats_.requeues;
}

bool LeaseQueue::all_done() const {
    for (const ShardEntry& entry : shards_) {
        if (entry.state != ShardState::Done) return false;
    }
    return true;
}

ShardState LeaseQueue::state(int shard) const {
    if (shard < 0 || shard >= shard_count()) {
        throw common::Error("state: shard " + std::to_string(shard) + " out of range");
    }
    return shards_[shard].state;
}

const std::string& LeaseQueue::last_error(int shard) const {
    static const std::string empty;
    if (shard < 0 || shard >= shard_count()) return empty;
    return shards_[shard].last_error;
}

int LeaseQueue::attempts_issued(int shard) const {
    if (shard < 0 || shard >= shard_count()) return 0;
    return shards_[shard].attempts_issued;
}

int LeaseQueue::active_attempts() const {
    int n = 0;
    for (const ShardEntry& entry : shards_) n += static_cast<int>(entry.active.size());
    return n;
}

std::optional<double> LeaseQueue::next_event_ms(TimePoint now) const {
    std::optional<double> best;
    auto consider = [&best](double ms) {
        double clamped = std::max(0.0, ms);
        if (!best || clamped < *best) best = clamped;
    };
    double straggler_ms = config_.straggler_factor * config_.lease_ms;
    for (const ShardEntry& entry : shards_) {
        if (entry.state == ShardState::Pending && entry.attempts_issued > 0) {
            consider(ms_until(now, entry.not_before));  // backoff expiry
        } else if (entry.state == ShardState::Leased) {
            TimePoint newest = entry.active.front().issued;
            for (const Attempt& a : entry.active) {
                consider(ms_until(now, a.deadline));  // lease deadline
                newest = std::max(newest, a.issued);
            }
            if (static_cast<int>(entry.active.size()) < config_.max_active_per_shard) {
                // The moment this lease ages into hedge eligibility.
                consider(ms_until(now, add_ms(newest, straggler_ms)));
            }
        }
    }
    return best;
}

}  // namespace ff::coord
