// The Sec. 6.1 case study: the scaling loop nest of BERT's Multi-Head
// Attention, with the batched contraction producing `tmp` upstream and the
// softmax/output contraction downstream.
//
//   tmp[B,H,SM,SM]  = batched_matmul(A[B,H,SM,P], Bmat[B,H,P,SM])
//   tmp            *= scale                      <- vectorization target
//   att             = softmax(tmp)
//   out[B,H,SM,P]   = batched_matmul(att, V)
//
// The paper's BERT-LARGE configuration uses B=8, H=16, SM=512, P=SM/8=64;
// mha_defaults() scales SM down (preserving P = SM/8) so the published 75%
// input-space reduction of the minimum input-flow cut is exactly preserved:
// |tmp| = B*H*SM^2 vs |A|+|Bmat| = 2*B*H*SM*P = B*H*SM^2/4.
#pragma once

#include "ir/sdfg.h"

namespace ff::workloads {

/// `extra_layers` appends further attention-style layers (two batched
/// contractions + softmax each) after the scaling loop nest, standing in for
/// the rest of the encoder: whole-application trial cost grows with depth
/// while the cutout cost stays constant (the Sec. 6.1 "528x" asymmetry).
ir::SDFG build_mha_scale(int extra_layers = 0);

/// Default symbol values used when concretizing (scaled-down BERT-LARGE).
sym::Bindings mha_defaults(std::int64_t sm = 64);

/// Label of the scaling loop nest: "scale_tmp".
inline const char* mha_target_label() { return "ew_tmp"; }

}  // namespace ff::workloads
