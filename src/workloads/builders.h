// Reusable graph-construction helpers shared by the workload builders.
//
// All helpers return the access node holding the *result* so chains of
// operations thread naturally:  auto y = ew_unary(..., x, "y", "o = i * 2");
#pragma once

#include <string>
#include <vector>

#include "ir/sdfg.h"

namespace ff::workloads {

/// Zero-initializes `container` (1-D/2-D array) with a parallel map; returns
/// the access node holding the zeroed data.
ir::NodeId zero_init(ir::SDFG& sdfg, ir::State& st, const std::string& container);

/// Elementwise map over the full (1-D or 2-D) shape of `out_container`:
/// the tasklet reads connector `i` from `in_access`'s container at the same
/// indices and writes connector `o`.  `code` defaults to identity.
ir::NodeId ew_unary(ir::SDFG& sdfg, ir::State& st, ir::NodeId in_access,
                    const std::string& out_container, const std::string& code = "o = i");

/// Elementwise binary map: connectors `a`, `b` -> `o`.
ir::NodeId ew_binary(ir::SDFG& sdfg, ir::State& st, ir::NodeId a_access, ir::NodeId b_access,
                     const std::string& out_container, const std::string& code = "o = a + b");

/// Explicit matmul loop nest: C[M,N] (+)= A[M,K] * B[K,N] built as a
/// parallel (i,j) map around a sequential k map with an accumulation
/// tasklet.  `c_zero_access` must hold the zero-initialized C.  Returns the
/// access node holding the final C.
ir::NodeId matmul_nest(ir::SDFG& sdfg, ir::State& st, ir::NodeId a_access, ir::NodeId b_access,
                       ir::NodeId c_zero_access, const sym::ExprPtr& m, const sym::ExprPtr& k,
                       const sym::ExprPtr& n, const std::string& label);

/// Fresh access node for an existing container.
inline ir::NodeId access(ir::State& st, const std::string& container) {
    return st.add_access(container);
}

}  // namespace ff::workloads
