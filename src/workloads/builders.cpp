#include "workloads/builders.h"

#include "common/error.h"

namespace ff::workloads {

using ir::Memlet;
using ir::NodeId;
using ir::Range;
using ir::Subset;

namespace {

/// Map params / ranges / per-iteration subset over a container shape.
struct IterSpace {
    std::vector<std::string> params;
    std::vector<Range> ranges;
    Subset point;  // [p0, p1, ...]
    Subset full;   // [0:d0-1, ...]
};

IterSpace iter_space(const ir::DataDesc& desc, const std::string& prefix) {
    static const char* names[] = {"i", "j", "k", "l"};
    IterSpace is;
    for (std::size_t d = 0; d < desc.shape.size(); ++d) {
        const std::string p = prefix + names[d % 4];
        is.params.push_back(p);
        is.ranges.push_back(Range::full(desc.shape[d]));
        is.point.ranges.push_back(Range::index(sym::symb(p)));
        is.full.ranges.push_back(Range::full(desc.shape[d]));
    }
    return is;
}

}  // namespace

NodeId zero_init(ir::SDFG& sdfg, ir::State& st, const std::string& container) {
    const ir::DataDesc& desc = sdfg.container(container);
    if (desc.is_scalar()) {
        const NodeId t = st.add_tasklet("zero_" + container, "z = 0.0");
        const NodeId acc = st.add_access(container);
        st.add_edge(t, "z", acc, "", Memlet(container, Subset{}));
        return acc;
    }
    IterSpace is = iter_space(desc, "z");
    auto [entry, exit] = st.add_map("zero_" + container, is.params, is.ranges);
    const NodeId t = st.add_tasklet("zero_" + container, "z = 0.0");
    const NodeId acc = st.add_access(container);
    st.add_edge(entry, "", t, "", Memlet(container, is.point));  // ordering only
    st.add_edge(t, "z", exit, "", Memlet(container, is.point));
    st.add_edge(exit, "", acc, "", Memlet(container, is.full));
    return acc;
}

NodeId ew_unary(ir::SDFG& sdfg, ir::State& st, NodeId in_access,
                const std::string& out_container, const std::string& code) {
    const std::string in_name = st.graph().node(in_access).data;  // copy: adds reallocate
    const ir::DataDesc& out_desc = sdfg.container(out_container);
    const ir::DataDesc& in_desc = sdfg.container(in_name);
    IterSpace is = iter_space(out_desc, "e");
    auto [entry, exit] = st.add_map("ew_" + out_container, is.params, is.ranges);
    const NodeId t = st.add_tasklet("ew_" + out_container, code);
    const NodeId out_acc = st.add_access(out_container);
    const Subset in_point = in_desc.is_scalar() ? Subset{} : is.point;
    const Subset in_full = in_desc.is_scalar() ? Subset{} : Subset::full(in_desc.shape);
    st.add_edge(in_access, "", entry, "", Memlet(in_name, in_full));
    st.add_edge(entry, "", t, "i", Memlet(in_name, in_point));
    st.add_edge(t, "o", exit, "", Memlet(out_container, is.point));
    st.add_edge(exit, "", out_acc, "", Memlet(out_container, is.full));
    return out_acc;
}

NodeId ew_binary(ir::SDFG& sdfg, ir::State& st, NodeId a_access, NodeId b_access,
                 const std::string& out_container, const std::string& code) {
    const std::string a_name = st.graph().node(a_access).data;  // copies: adds reallocate
    const std::string b_name = st.graph().node(b_access).data;
    const ir::DataDesc& out_desc = sdfg.container(out_container);
    IterSpace is = iter_space(out_desc, "e");
    auto [entry, exit] = st.add_map("ew_" + out_container, is.params, is.ranges);
    const NodeId t = st.add_tasklet("ew_" + out_container, code);
    const NodeId out_acc = st.add_access(out_container);
    auto connect_in = [&](NodeId acc, const std::string& name, const std::string& conn) {
        const ir::DataDesc& desc = sdfg.container(name);
        const Subset point = desc.is_scalar() ? Subset{} : is.point;
        const Subset full = desc.is_scalar() ? Subset{} : Subset::full(desc.shape);
        st.add_edge(acc, "", entry, "", Memlet(name, full));
        st.add_edge(entry, "", t, conn, Memlet(name, point));
    };
    connect_in(a_access, a_name, "a");
    connect_in(b_access, b_name, "b");
    st.add_edge(t, "o", exit, "", Memlet(out_container, is.point));
    st.add_edge(exit, "", out_acc, "", Memlet(out_container, is.full));
    return out_acc;
}

NodeId matmul_nest(ir::SDFG& sdfg, ir::State& st, NodeId a_access, NodeId b_access,
                   NodeId c_zero_access, const sym::ExprPtr& m, const sym::ExprPtr& k,
                   const sym::ExprPtr& n, const std::string& label) {
    const std::string a_name = st.graph().node(a_access).data;  // copies: adds reallocate
    const std::string b_name = st.graph().node(b_access).data;
    const std::string c_name = st.graph().node(c_zero_access).data;

    auto [ij_entry, ij_exit] = st.add_map(
        label, {"i", "j"}, {Range::full(m), Range::full(n)}, ir::Schedule::Parallel);
    auto [k_entry, k_exit] =
        st.add_map(label + "_k", {"k"}, {Range::full(k)}, ir::Schedule::Sequential);
    const NodeId t = st.add_tasklet(label + "_fma", "cout = cin + a * b");
    const NodeId c_out = st.add_access(c_name);

    const sym::ExprPtr i = sym::symb("i"), j = sym::symb("j"), kk = sym::symb("k");
    const Subset a_full = Subset::full(sdfg.container(a_name).shape);
    const Subset b_full = Subset::full(sdfg.container(b_name).shape);
    const Subset c_full = Subset::full(sdfg.container(c_name).shape);
    const Subset a_row{{Range::index(i), Range::full(k)}};
    const Subset b_col{{Range::full(k), Range::index(j)}};
    const Subset c_ij{{Range::index(i), Range::index(j)}};
    const Subset a_ik{{Range::index(i), Range::index(kk)}};
    const Subset b_kj{{Range::index(kk), Range::index(j)}};

    st.add_edge(a_access, "", ij_entry, "", Memlet(a_name, a_full));
    st.add_edge(b_access, "", ij_entry, "", Memlet(b_name, b_full));
    st.add_edge(c_zero_access, "", ij_entry, "", Memlet(c_name, c_full));
    st.add_edge(ij_entry, "", k_entry, "", Memlet(a_name, a_row));
    st.add_edge(ij_entry, "", k_entry, "", Memlet(b_name, b_col));
    st.add_edge(ij_entry, "", k_entry, "", Memlet(c_name, c_ij));
    st.add_edge(k_entry, "", t, "a", Memlet(a_name, a_ik));
    st.add_edge(k_entry, "", t, "b", Memlet(b_name, b_kj));
    st.add_edge(k_entry, "", t, "cin", Memlet(c_name, c_ij));
    st.add_edge(t, "cout", k_exit, "", Memlet(c_name, c_ij));
    st.add_edge(k_exit, "", ij_exit, "", Memlet(c_name, c_ij));
    st.add_edge(ij_exit, "", c_out, "", Memlet(c_name, c_full));
    return c_out;
}

}  // namespace ff::workloads
