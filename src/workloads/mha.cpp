#include "workloads/mha.h"

#include "workloads/builders.h"

namespace ff::workloads {

using ir::Memlet;
using ir::Range;
using ir::Subset;

ir::SDFG build_mha_scale(int extra_layers) {
    ir::SDFG sdfg("mha_scale");
    for (const char* s : {"B", "H", "SM", "P"}) sdfg.add_symbol(s);
    const sym::ExprPtr b = sym::symb("B"), h = sym::symb("H");
    const sym::ExprPtr sm = sym::symb("SM"), p = sym::symb("P");

    sdfg.add_array("A", ir::DType::F64, {b, h, sm, p}, /*transient=*/false);
    sdfg.add_array("Bmat", ir::DType::F64, {b, h, p, sm}, /*transient=*/false);
    sdfg.add_scalar("scale", ir::DType::F64, /*transient=*/false);
    sdfg.add_array("tmp", ir::DType::F64, {b, h, sm, sm}, /*transient=*/true);
    sdfg.add_array("att", ir::DType::F64, {b, h, sm, sm}, /*transient=*/true);
    sdfg.add_array("Vmat", ir::DType::F64, {b, h, sm, p}, /*transient=*/false);
    sdfg.add_array("out", ir::DType::F64, {b, h, sm, p}, /*transient=*/false);

    const ir::StateId sid = sdfg.add_state("mha", /*is_start=*/true);
    ir::State& st = sdfg.state(sid);

    const Subset a_full = Subset::full(sdfg.container("A").shape);
    const Subset bm_full = Subset::full(sdfg.container("Bmat").shape);
    const Subset tmp_full = Subset::full(sdfg.container("tmp").shape);
    const Subset v_full = Subset::full(sdfg.container("Vmat").shape);
    const Subset out_full = Subset::full(sdfg.container("out").shape);

    // tmp = A @ Bmat (batched over B, H).
    const ir::NodeId acc_a = access(st, "A");
    const ir::NodeId acc_bm = access(st, "Bmat");
    const ir::NodeId bmm1 = st.add_library(ir::LibraryKind::BatchedMatMul, "qk_contraction");
    const ir::NodeId acc_tmp = access(st, "tmp");
    st.add_edge(acc_a, "", bmm1, "A", Memlet("A", a_full));
    st.add_edge(acc_bm, "", bmm1, "B", Memlet("Bmat", bm_full));
    st.add_edge(bmm1, "C", acc_tmp, "", Memlet("tmp", tmp_full));

    // tmp *= scale — the vectorization target (in-place 4-D loop nest).
    const ir::NodeId acc_scale = access(st, "scale");
    const ir::NodeId acc_tmp2 = ew_binary(sdfg, st, acc_tmp, acc_scale, "tmp", "o = a * b");

    // att = softmax(tmp) over the last axis.
    const ir::NodeId softmax = st.add_library(ir::LibraryKind::Softmax, "attention_softmax");
    const ir::NodeId acc_att = access(st, "att");
    st.add_edge(acc_tmp2, "", softmax, "in", Memlet("tmp", tmp_full));
    st.add_edge(softmax, "out", acc_att, "", Memlet("att", tmp_full));

    // out = att @ Vmat.
    const ir::NodeId acc_v = access(st, "Vmat");
    const ir::NodeId bmm2 = st.add_library(ir::LibraryKind::BatchedMatMul, "av_contraction");
    const ir::NodeId acc_out = access(st, "out");
    st.add_edge(acc_att, "", bmm2, "A", Memlet("att", tmp_full));
    st.add_edge(acc_v, "", bmm2, "B", Memlet("Vmat", v_full));
    st.add_edge(bmm2, "C", acc_out, "", Memlet("out", out_full));

    // Further attention-style layers: the rest of the encoder.
    ir::NodeId cur = acc_out;  // [B, H, SM, P]
    for (int layer = 0; layer < extra_layers; ++layer) {
        const std::string suffix = "_l" + std::to_string(layer);
        sdfg.add_array("K" + suffix, ir::DType::F64, {b, h, p, sm}, /*transient=*/false);
        sdfg.add_array("V" + suffix, ir::DType::F64, {b, h, sm, p}, /*transient=*/false);
        sdfg.add_array("scores" + suffix, ir::DType::F64, {b, h, sm, sm}, /*transient=*/true);
        sdfg.add_array("probs" + suffix, ir::DType::F64, {b, h, sm, sm}, /*transient=*/true);
        const std::string out_name =
            layer + 1 == extra_layers ? "encoder_out" : "hidden" + suffix;
        sdfg.add_array(out_name, ir::DType::F64, {b, h, sm, p},
                       /*transient=*/layer + 1 != extra_layers);

        const ir::NodeId k_in = access(st, "K" + suffix);
        const ir::NodeId qk = st.add_library(ir::LibraryKind::BatchedMatMul, "qk" + suffix);
        const ir::NodeId scores = access(st, "scores" + suffix);
        st.add_edge(cur, "", qk, "A", Memlet(st.graph().node(cur).data, out_full));
        st.add_edge(k_in, "", qk, "B", Memlet("K" + suffix, bm_full));
        st.add_edge(qk, "C", scores, "", Memlet("scores" + suffix, tmp_full));

        const ir::NodeId sm_node = st.add_library(ir::LibraryKind::Softmax, "sm" + suffix);
        const ir::NodeId probs = access(st, "probs" + suffix);
        st.add_edge(scores, "", sm_node, "in", Memlet("scores" + suffix, tmp_full));
        st.add_edge(sm_node, "out", probs, "", Memlet("probs" + suffix, tmp_full));

        // Per-layer elementwise stage (attention scaling), like the one the
        // vectorization targets — each layer carries a loop nest of its own.
        const ir::NodeId layer_scale = access(st, "scale");
        const ir::NodeId probs2 = ew_binary(sdfg, st, probs, layer_scale, "probs" + suffix,
                                            "o = a * b");

        const ir::NodeId v_in = access(st, "V" + suffix);
        const ir::NodeId av = st.add_library(ir::LibraryKind::BatchedMatMul, "av" + suffix);
        const ir::NodeId next = access(st, out_name);
        st.add_edge(probs2, "", av, "A", Memlet("probs" + suffix, tmp_full));
        st.add_edge(v_in, "", av, "B", Memlet("V" + suffix, v_full));
        st.add_edge(av, "C", next, "", Memlet(out_name, out_full));
        cur = next;
    }

    return sdfg;
}

sym::Bindings mha_defaults(std::int64_t sm) {
    return sym::Bindings{{"B", 8}, {"H", 16}, {"SM", sm}, {"P", sm / 8}};
}

}  // namespace ff::workloads
