// The Fig. 2 running example: matrix chain multiplication
// R = ((A*B) * C) * D with four N x N matrices.
//
// Each multiplication is an explicit loop nest (parallel (i,j) around a
// sequential k accumulation), so loop transformations such as MapTiling
// apply directly.  The second multiplication (U*C -> V) is the tiling
// target of the paper's example; V is transient but read again by the third
// multiplication, making it the cutout's system state.
#pragma once

#include "ir/sdfg.h"

namespace ff::workloads {

ir::SDFG build_matrix_chain();

/// Label of the map implementing the second multiplication (the Fig. 2
/// tiling target): "mm2".
inline const char* matrix_chain_target_label() { return "mm2"; }

}  // namespace ff::workloads
