// The Sec. 6.2 case study: Sampled Dense-Dense Matrix Multiplication from
// Vanilla Attention, distributed by rows with an allgather on the second
// dense operand.
//
//   B_full = allgather(B_local)                # communication
//   P      = A_local @ B_full^T                # dense contraction (loop nest)
//   D      = S  (Hadamard) P                   # sampling
//
// Cutouts of optimizations on the contraction or sampling exclude the
// allgather; the gathered matrix becomes a plain fuzzable input ("any data
// received through collectives is subsequently exposed as regular data
// parameters to the cutout", Sec. 6.2).
//
// Shapes per rank:  A_local [NLOC, K],  B_local [NCHUNK, K],
//                   B_full [NTOT, K] with NTOT = NCHUNK * num_ranks,
//                   S, P, D [NLOC, NTOT].
#pragma once

#include "ir/sdfg.h"

namespace ff::workloads {

ir::SDFG build_sddmm();

/// Bindings for an R-rank run (NTOT = NCHUNK * ranks).
sym::Bindings sddmm_defaults(std::int64_t nloc = 8, std::int64_t k = 8,
                             std::int64_t nchunk = 8, int ranks = 4);

/// Label of the dense contraction map: "sddmm_mm".
inline const char* sddmm_target_label() { return "sddmm_mm"; }

}  // namespace ff::workloads
