#include "workloads/matchain.h"

#include "workloads/builders.h"

namespace ff::workloads {

ir::SDFG build_matrix_chain() {
    ir::SDFG sdfg("matrix_chain");
    sdfg.add_symbol("N");
    const sym::ExprPtr n = sym::symb("N");

    for (const char* name : {"A", "B", "C", "D"})
        sdfg.add_array(name, ir::DType::F64, {n, n}, /*transient=*/false);
    sdfg.add_array("U", ir::DType::F64, {n, n}, /*transient=*/true);   // A*B
    sdfg.add_array("V", ir::DType::F64, {n, n}, /*transient=*/true);   // U*C
    sdfg.add_array("R", ir::DType::F64, {n, n}, /*transient=*/false);  // V*D

    const ir::StateId sid = sdfg.add_state("main", /*is_start=*/true);
    ir::State& st = sdfg.state(sid);

    const ir::NodeId a = access(st, "A");
    const ir::NodeId b = access(st, "B");
    const ir::NodeId c = access(st, "C");
    const ir::NodeId d = access(st, "D");

    const ir::NodeId u0 = zero_init(sdfg, st, "U");
    const ir::NodeId u = matmul_nest(sdfg, st, a, b, u0, n, n, n, "mm1");
    const ir::NodeId v0 = zero_init(sdfg, st, "V");
    const ir::NodeId v = matmul_nest(sdfg, st, u, c, v0, n, n, n, "mm2");
    const ir::NodeId r0 = zero_init(sdfg, st, "R");
    matmul_nest(sdfg, st, v, d, r0, n, n, n, "mm3");

    return sdfg;
}

}  // namespace ff::workloads
