#include "workloads/sddmm.h"

#include "workloads/builders.h"

namespace ff::workloads {

using ir::Memlet;
using ir::Range;
using ir::Subset;

ir::SDFG build_sddmm() {
    ir::SDFG sdfg("sddmm_vanilla_attention");
    for (const char* s : {"NLOC", "K", "NCHUNK", "NTOT"}) sdfg.add_symbol(s);
    const sym::ExprPtr nloc = sym::symb("NLOC"), k = sym::symb("K");
    const sym::ExprPtr nchunk = sym::symb("NCHUNK"), ntot = sym::symb("NTOT");

    sdfg.add_array("A_local", ir::DType::F64, {nloc, k}, /*transient=*/false);
    sdfg.add_array("B_local", ir::DType::F64, {nchunk, k}, /*transient=*/false);
    sdfg.add_array("B_full", ir::DType::F64, {ntot, k}, /*transient=*/true);
    sdfg.add_array("Bt", ir::DType::F64, {k, ntot}, /*transient=*/true);
    sdfg.add_array("S", ir::DType::F64, {nloc, ntot}, /*transient=*/false);
    sdfg.add_array("P", ir::DType::F64, {nloc, ntot}, /*transient=*/true);
    sdfg.add_array("D", ir::DType::F64, {nloc, ntot}, /*transient=*/false);

    const ir::StateId sid = sdfg.add_state("sddmm", /*is_start=*/true);
    ir::State& st = sdfg.state(sid);

    // B_full = allgather(B_local).
    const ir::NodeId acc_bl = access(st, "B_local");
    const ir::NodeId gather = st.add_comm(ir::CommKind::Allgather, 0, "allgather_B");
    const ir::NodeId acc_bf = access(st, "B_full");
    st.add_edge(acc_bl, "", gather, "in",
                Memlet("B_local", Subset::full(sdfg.container("B_local").shape)));
    st.add_edge(gather, "out", acc_bf, "",
                Memlet("B_full", Subset::full(sdfg.container("B_full").shape)));

    // Bt = B_full^T (library transpose).
    const ir::NodeId transpose = st.add_library(ir::LibraryKind::Transpose, "transpose_B");
    const ir::NodeId acc_bt = access(st, "Bt");
    st.add_edge(acc_bf, "", transpose, "A",
                Memlet("B_full", Subset::full(sdfg.container("B_full").shape)));
    st.add_edge(transpose, "B", acc_bt, "",
                Memlet("Bt", Subset::full(sdfg.container("Bt").shape)));

    // P = A_local @ Bt (explicit loop nest: the optimization target).
    const ir::NodeId acc_a = access(st, "A_local");
    const ir::NodeId p0 = zero_init(sdfg, st, "P");
    const ir::NodeId acc_p = matmul_nest(sdfg, st, acc_a, acc_bt, p0, nloc, k, ntot, "sddmm_mm");

    // D = S * P (sampling).
    const ir::NodeId acc_s = access(st, "S");
    ew_binary(sdfg, st, acc_s, acc_p, "D", "o = a * b");

    return sdfg;
}

sym::Bindings sddmm_defaults(std::int64_t nloc, std::int64_t k, std::int64_t nchunk,
                             int ranks) {
    return sym::Bindings{
        {"NLOC", nloc}, {"K", k}, {"NCHUNK", nchunk}, {"NTOT", nchunk * ranks}};
}

}  // namespace ff::workloads
