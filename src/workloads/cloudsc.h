// CLOUDSC-like synthetic weather microphysics program (Sec. 6.4).
//
// The real CLOUDSC is ECMWF's 3.5k-line Fortran cloud scheme; we generate a
// structurally equivalent program: a long chain of states over a pool of
// per-level physics fields, containing
//  * GPU-extractable parallel loop nests, a controlled fraction of which
//    write only a *subset* of their output field or read-modify-write it
//    (the 48-of-62 instances the whole-container copy-back bug corrupts);
//  * short constant-bound sequential loops, exactly one of which runs
//    *backwards* (the negative-step loop the unrolling bug miscounts);
//  * staging copies between fields, exactly one of which feeds a later
//    state (the write-elimination instance whose removal changes
//    semantics).
//
// The three sections can be built separately so each custom transformation
// is audited on its own sub-program with the paper's instance counts.
#pragma once

#include <cstdint>

#include "ir/sdfg.h"

namespace ff::workloads {

struct CloudscConfig {
    int gpu_kernels = 62;
    int gpu_partial_or_rmw = 48;  ///< kernels the copy-back bug corrupts
    int unroll_loops = 19;
    int negative_step_loops = 1;
    int copy_maps = 136;
    int copies_read_later = 1;
    std::uint64_t seed = 0xC10D5CULL;
};

enum class CloudscPart { GpuKernels, UnrollLoops, CopyChains, Full };

ir::SDFG build_cloudsc(CloudscPart part, const CloudscConfig& config = {});

/// Default bindings (NLEV vertical levels).
sym::Bindings cloudsc_defaults(std::int64_t nlev = 12);

}  // namespace ff::workloads
