#include "workloads/cloudsc.h"

#include "common/rng.h"
#include "workloads/builders.h"

namespace ff::workloads {

using ir::Memlet;
using ir::NodeId;
using ir::Range;
using ir::Subset;

namespace {

const sym::ExprPtr kLev = sym::symb("NLEV");

/// Simple pool of physics-field names (non-transient, shape [NLEV]).
std::string field_name(int i) { return "field_" + std::to_string(i); }

const char* kTaskletTemplates[] = {
    "o = a * 0.5 + b",
    "o = a + b * 0.25",
    "o = max(a, b) * 0.9",
    "o = a - 0.1 * b",
    "o = (a + b) * 0.5",
};

/// One GPU-extractable kernel: a parallel map over (a subset of) the
/// levels, reading two fields and writing one.  `partial` restricts the
/// write to the lower half of the field; `rmw` makes the output also an
/// input (both trigger the copy-back bug).
void add_gpu_kernel(ir::SDFG& sdfg, ir::State& st, int idx, const std::string& in1,
                    const std::string& in2, const std::string& out, bool partial, bool rmw,
                    common::Rng& rng) {
    const sym::ExprPtr i = sym::symb("i");
    // Partial kernels update the *upper* half of the field (like a column
    // scheme touching only the lower troposphere levels): the untouched
    // prefix is what the copy-back bug corrupts.
    const sym::ExprPtr begin = partial ? sym::floordiv(kLev, sym::cst(2)) : sym::cst(0);
    const sym::ExprPtr end = kLev - 1;
    const std::string label = "kernel_" + std::to_string(idx);
    auto [entry, exit] = st.add_map(label, {"i"}, {Range::span(begin, end)},
                                    ir::Schedule::Parallel);
    const char* code = kTaskletTemplates[rng.uniform_int(0, 4)];
    std::string tasklet_code = code;
    if (rmw) tasklet_code = "o = c + (" + tasklet_code.substr(4) + ")";
    const NodeId t = st.add_tasklet(label, tasklet_code);
    const NodeId a1 = st.add_access(in1);
    const NodeId a2 = st.add_access(in2);
    const NodeId ao = st.add_access(out);
    const Subset pi{{Range::index(i)}};
    const Subset touched{{Range::span(begin, end)}};
    st.add_edge(a1, "", entry, "", Memlet(in1, touched));
    st.add_edge(a2, "", entry, "", Memlet(in2, touched));
    st.add_edge(entry, "", t, "a", Memlet(in1, pi));
    st.add_edge(entry, "", t, "b", Memlet(in2, pi));
    if (rmw) {
        const NodeId ain = st.add_access(out);
        st.add_edge(ain, "", entry, "", Memlet(out, touched));
        st.add_edge(entry, "", t, "c", Memlet(out, pi));
    }
    st.add_edge(t, "o", exit, "", Memlet(out, pi));
    st.add_edge(exit, "", ao, "", Memlet(out, touched));
}

/// One short constant-bound sequential loop over rows of a staging table.
void add_unroll_loop(ir::SDFG& sdfg, ir::State& st, int idx, const std::string& table_in,
                     const std::string& table_out, bool descending) {
    (void)sdfg;
    const sym::ExprPtr v = sym::symb("v");
    const std::string label =
        descending ? "countdown_" + std::to_string(idx) : "short_loop_" + std::to_string(idx);
    const Range range = descending ? Range{sym::cst(4), sym::cst(1), sym::cst(-1)}
                                   : Range{sym::cst(0), sym::cst(3), sym::cst(1)};
    auto [entry, exit] = st.add_map(label, {"v"}, {range}, ir::Schedule::Sequential);
    const NodeId t = st.add_tasklet(label, "o = a * 1.5 + 1.0");
    const NodeId ain = st.add_access(table_in);
    const NodeId aout = st.add_access(table_out);
    const Subset pv{{Range::index(v)}};
    const Subset covered = descending ? Subset{{Range::span(sym::cst(1), sym::cst(4))}}
                                      : Subset{{Range::span(sym::cst(0), sym::cst(3))}};
    st.add_edge(ain, "", entry, "", Memlet(table_in, covered));
    st.add_edge(entry, "", t, "a", Memlet(table_in, pv));
    st.add_edge(t, "o", exit, "", Memlet(table_out, pv));
    st.add_edge(exit, "", aout, "", Memlet(table_out, covered));
}

/// Identity staging copy src -> dst (WriteElimination match).
NodeId add_copy_map(ir::SDFG& sdfg, ir::State& st, NodeId src_access, const std::string& dst) {
    return ew_unary(sdfg, st, src_access, dst, "o = i");
}

}  // namespace

ir::SDFG build_cloudsc(CloudscPart part, const CloudscConfig& config) {
    common::Rng rng(config.seed);
    ir::SDFG sdfg("cloudsc_" + std::to_string(static_cast<int>(part)));
    sdfg.add_symbol("NLEV");

    const bool with_gpu = part == CloudscPart::GpuKernels || part == CloudscPart::Full;
    const bool with_unroll = part == CloudscPart::UnrollLoops || part == CloudscPart::Full;
    const bool with_copies = part == CloudscPart::CopyChains || part == CloudscPart::Full;

    // Physics field pool (inputs/outputs of the scheme).
    const int num_fields = 12;
    for (int i = 0; i < num_fields; ++i)
        sdfg.add_array(field_name(i), ir::DType::F64, {kLev}, /*transient=*/false);

    ir::StateId prev = graph::kInvalidNode;
    auto new_state = [&](const std::string& name) -> ir::State& {
        const ir::StateId sid = sdfg.add_state(name, prev == graph::kInvalidNode);
        if (prev != graph::kInvalidNode) sdfg.add_interstate_edge(prev, sid);
        prev = sid;
        return sdfg.state(sid);
    };

    if (with_gpu) {
        // 62 kernels spread over states.  The first `gpu_partial_or_rmw`
        // write only a *subset* of their output field — the shape the
        // whole-container copy-back corrupts (a container the kernel reads,
        // even partially, is staged to the device and is therefore safe;
        // only partially-written pure outputs expose the bug, Fig. 7).
        // The remaining kernels write their output in full, half of them
        // read-modify-write style (staged, hence also safe).
        int per_state = 4;
        ir::State* st = nullptr;
        for (int k = 0; k < config.gpu_kernels; ++k) {
            if (k % per_state == 0)
                st = &new_state("gpu_stage_" + std::to_string(k / per_state));
            const int in1 = static_cast<int>(rng.uniform_int(0, num_fields - 1));
            int in2 = static_cast<int>(rng.uniform_int(0, num_fields - 1));
            if (in2 == in1) in2 = (in2 + 1) % num_fields;
            int out = static_cast<int>(rng.uniform_int(0, num_fields - 1));
            if (out == in1 || out == in2) out = (std::max(in1, in2) + 1) % num_fields;
            const bool partial = k < config.gpu_partial_or_rmw;
            const bool rmw = !partial && (k % 2 == 1);
            add_gpu_kernel(sdfg, *st, k, field_name(in1), field_name(in2), field_name(out),
                           partial, rmw, rng);
        }
    }

    if (with_unroll) {
        // Staging tables for the short loops (length-8 lookup rows).
        for (int k = 0; k < config.unroll_loops; ++k) {
            sdfg.add_array("tab_in_" + std::to_string(k), ir::DType::F64, {sym::cst(8)},
                           /*transient=*/false);
            sdfg.add_array("tab_out_" + std::to_string(k), ir::DType::F64, {sym::cst(8)},
                           /*transient=*/false);
        }
        int per_state = 4;
        ir::State* st = nullptr;
        for (int k = 0; k < config.unroll_loops; ++k) {
            if (k % per_state == 0)
                st = &new_state("loop_stage_" + std::to_string(k / per_state));
            const bool descending = k < config.negative_step_loops;
            add_unroll_loop(sdfg, *st, k, "tab_in_" + std::to_string(k),
                            "tab_out_" + std::to_string(k), descending);
        }
    }

    if (with_copies) {
        // Staging copies: field -> transient staging buffer.  Exactly
        // `copies_read_later` staging buffers are consumed by a later state.
        for (int k = 0; k < config.copy_maps; ++k)
            sdfg.add_array("staging_" + std::to_string(k), ir::DType::F64, {kLev},
                           /*transient=*/true);
        sdfg.add_array("diag_out", ir::DType::F64, {kLev}, /*transient=*/false);

        int per_state = 8;
        ir::State* st = nullptr;
        for (int k = 0; k < config.copy_maps; ++k) {
            if (k % per_state == 0)
                st = &new_state("copy_stage_" + std::to_string(k / per_state));
            const int src = static_cast<int>(rng.uniform_int(0, num_fields - 1));
            add_copy_map(sdfg, *st, st->add_access(field_name(src)),
                         "staging_" + std::to_string(k));
        }
        // The late consumer reads staging_0 .. staging_{copies_read_later-1}.
        ir::State& late = new_state("diagnostics");
        NodeId acc = late.add_access("staging_0");
        NodeId out = ew_unary(sdfg, late, acc, "diag_out", "o = i * 2.0");
        (void)out;
    }

    return sdfg;
}

sym::Bindings cloudsc_defaults(std::int64_t nlev) { return sym::Bindings{{"NLEV", nlev}}; }

}  // namespace ff::workloads
