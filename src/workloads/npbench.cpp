#include "workloads/npbench.h"

#include <functional>
#include <map>

#include "common/error.h"
#include "workloads/builders.h"

namespace ff::workloads {

using ir::Memlet;
using ir::NodeId;
using ir::Range;
using ir::Subset;

namespace {

const sym::ExprPtr kN = sym::symb("N");
const sym::ExprPtr kM = sym::symb("M");
const sym::ExprPtr kK = sym::symb("K");

/// One operand of a custom map/nest: where to read and through which
/// tasklet connector.
struct In {
    NodeId acc;
    Subset point;   ///< per-iteration subset (uses the map parameters)
    std::string conn;
};

Subset full_of(const ir::SDFG& sdfg, ir::State& st, NodeId acc) {
    return Subset::full(sdfg.container(st.graph().node(acc).data).shape);
}

/// Generic elementwise/custom map: `code` writes connector `o` into
/// `out[out_point]`; returns the access node holding the result.
NodeId custom_map(ir::SDFG& sdfg, ir::State& st, const std::string& label,
                  std::vector<std::string> params, std::vector<Range> ranges,
                  const std::vector<In>& ins, const std::string& out, const Subset& out_point,
                  const std::string& code, ir::Schedule schedule = ir::Schedule::Parallel) {
    auto [entry, exit] = st.add_map(label, std::move(params), std::move(ranges), schedule);
    const NodeId t = st.add_tasklet(label, code);
    const NodeId out_acc = st.add_access(out);
    if (ins.empty()) st.add_edge(entry, "", t, "", Memlet(out, out_point));
    for (const In& in : ins) {
        const std::string& name = st.graph().node(in.acc).data;
        st.add_edge(in.acc, "", entry, "", Memlet(name, full_of(sdfg, st, in.acc)));
        st.add_edge(entry, "", t, in.conn, Memlet(name, in.point));
    }
    st.add_edge(t, "o", exit, "", Memlet(out, out_point));
    st.add_edge(exit, "", out_acc, "", Memlet(out, Subset::full(sdfg.container(out).shape)));
    return out_acc;
}

/// Generic accumulation nest: parallel `params` map around a sequential
/// `red_params` map, accumulating `out[out_point] += rhs` where `rhs` reads
/// the In connectors.  `out_zero` holds the initialized output.
NodeId accum_nest(ir::SDFG& sdfg, ir::State& st, const std::string& label,
                  std::vector<std::string> params, std::vector<Range> ranges,
                  std::vector<std::string> red_params, std::vector<Range> red_ranges,
                  const std::vector<In>& ins, NodeId out_zero, const Subset& out_point,
                  const std::string& rhs) {
    const std::string out = st.graph().node(out_zero).data;
    auto [p_entry, p_exit] = st.add_map(label, std::move(params), std::move(ranges),
                                        ir::Schedule::Parallel);
    auto [r_entry, r_exit] = st.add_map(label + "_red", std::move(red_params),
                                        std::move(red_ranges), ir::Schedule::Sequential);
    const NodeId t = st.add_tasklet(label + "_acc", "cout = cin + (" + rhs + ")");
    const NodeId out_acc = st.add_access(out);

    for (const In& in : ins) {
        const std::string& name = st.graph().node(in.acc).data;
        const Subset full = full_of(sdfg, st, in.acc);
        st.add_edge(in.acc, "", p_entry, "", Memlet(name, full));
        st.add_edge(p_entry, "", r_entry, "", Memlet(name, full));
        st.add_edge(r_entry, "", t, in.conn, Memlet(name, in.point));
    }
    const Subset out_full = Subset::full(sdfg.container(out).shape);
    st.add_edge(out_zero, "", p_entry, "", Memlet(out, out_full));
    st.add_edge(p_entry, "", r_entry, "", Memlet(out, out_point));
    st.add_edge(r_entry, "", t, "cin", Memlet(out, out_point));
    st.add_edge(t, "cout", r_exit, "", Memlet(out, out_point));
    st.add_edge(r_exit, "", p_exit, "", Memlet(out, out_point));
    st.add_edge(p_exit, "", out_acc, "", Memlet(out, out_full));
    return out_acc;
}

/// Matrix-vector product nest: y[i] += A[i,k] * x[k].
NodeId matvec(ir::SDFG& sdfg, ir::State& st, const std::string& label, NodeId a, NodeId x,
              NodeId y_zero, const sym::ExprPtr& rows, const sym::ExprPtr& cols,
              bool transposed = false) {
    const sym::ExprPtr i = sym::symb("i"), k = sym::symb("k");
    const Subset a_pt = transposed ? Subset{{Range::index(k), Range::index(i)}}
                                   : Subset{{Range::index(i), Range::index(k)}};
    return accum_nest(sdfg, st, label, {"i"}, {Range::full(rows)}, {"k"}, {Range::full(cols)},
                      {In{a, a_pt, "a"}, In{x, Subset{{Range::index(k)}}, "b"}}, y_zero,
                      Subset{{Range::index(i)}}, "a * b");
}

/// Scalar tasklet chain producing `out` (scalar container) from scalar
/// inputs; the tasklet->access->tasklet hop matches TaskletFusion.
NodeId scalar_chain(ir::SDFG& sdfg, ir::State& st, const std::string& label, NodeId in_acc,
                    const std::string& mid, const std::string& out, const std::string& code1,
                    const std::string& code2) {
    (void)sdfg;
    const std::string in_name = st.graph().node(in_acc).data;  // copy: adds reallocate
    const NodeId t1 = st.add_tasklet(label + "_a", code1);
    const NodeId acc_mid = st.add_access(mid);
    const NodeId t2 = st.add_tasklet(label + "_b", code2);
    const NodeId acc_out = st.add_access(out);
    st.add_edge(in_acc, "", t1, "x", Memlet(in_name, Subset{}));
    st.add_edge(t1, "o", acc_mid, "", Memlet(mid, Subset{}));
    st.add_edge(acc_mid, "", t2, "x", Memlet(mid, Subset{}));
    st.add_edge(t2, "o", acc_out, "", Memlet(out, Subset{}));
    return acc_out;
}

/// 1-D elementwise chain in -> T -> out (BufferTiling / MapFusion shape).
void ew_chain_1d(ir::SDFG& sdfg, ir::State& st, NodeId in_acc, const std::string& mid,
                 const std::string& out, const std::string& code1, const std::string& code2) {
    const NodeId t = ew_unary(sdfg, st, in_acc, mid, code1);
    ew_unary(sdfg, st, t, out, code2);
}

// ---------------------------------------------------------------------------
// Kernels.  Each returns a self-contained SDFG.
// ---------------------------------------------------------------------------

using Builder = std::function<ir::SDFG()>;

ir::SDFG k_gemm() {
    ir::SDFG s("gemm");
    s.add_symbol("N");
    s.add_symbol("M");
    s.add_symbol("K");
    s.add_array("A", ir::DType::F64, {kM, kK});
    s.add_array("B", ir::DType::F64, {kK, kN});
    s.add_array("Cin", ir::DType::F64, {kM, kN});
    s.add_scalar("alpha", ir::DType::F64);
    s.add_scalar("beta", ir::DType::F64);
    s.add_array("T", ir::DType::F64, {kM, kN}, true);
    s.add_array("C", ir::DType::F64, {kM, kN});
    ir::State& st = s.state(s.add_state("main", true));
    const NodeId t0 = zero_init(s, st, "T");
    const NodeId t = matmul_nest(s, st, access(st, "A"), access(st, "B"), t0, kM, kK, kN, "mm");
    const sym::ExprPtr i = sym::symb("i"), j = sym::symb("j");
    const Subset ij{{Range::index(i), Range::index(j)}};
    custom_map(s, st, "scale_add", {"i", "j"}, {Range::full(kM), Range::full(kN)},
               {In{t, ij, "t"}, In{access(st, "Cin"), ij, "c"},
                In{access(st, "alpha"), Subset{}, "al"}, In{access(st, "beta"), Subset{}, "be"}},
               "C", ij, "o = al * t + be * c");
    return s;
}

ir::SDFG k_2mm() {
    ir::SDFG s("two_mm");
    s.add_symbol("N");
    s.add_array("A", ir::DType::F64, {kN, kN});
    s.add_array("B", ir::DType::F64, {kN, kN});
    s.add_array("C", ir::DType::F64, {kN, kN});
    s.add_array("T", ir::DType::F64, {kN, kN}, true);
    s.add_array("D", ir::DType::F64, {kN, kN});
    ir::State& st = s.state(s.add_state("main", true));
    const NodeId t0 = zero_init(s, st, "T");
    const NodeId t = matmul_nest(s, st, access(st, "A"), access(st, "B"), t0, kN, kN, kN, "mm1");
    const NodeId d0 = zero_init(s, st, "D");
    matmul_nest(s, st, t, access(st, "C"), d0, kN, kN, kN, "mm2");
    return s;
}

ir::SDFG k_3mm() {
    ir::SDFG s("three_mm");
    s.add_symbol("N");
    for (const char* a : {"A", "B", "C", "D"}) s.add_array(a, ir::DType::F64, {kN, kN});
    s.add_array("E", ir::DType::F64, {kN, kN}, true);
    s.add_array("F", ir::DType::F64, {kN, kN}, true);
    s.add_array("G", ir::DType::F64, {kN, kN});
    ir::State& st = s.state(s.add_state("main", true));
    const NodeId e0 = zero_init(s, st, "E");
    const NodeId e = matmul_nest(s, st, access(st, "A"), access(st, "B"), e0, kN, kN, kN, "mm1");
    const NodeId f0 = zero_init(s, st, "F");
    const NodeId f = matmul_nest(s, st, access(st, "C"), access(st, "D"), f0, kN, kN, kN, "mm2");
    const NodeId g0 = zero_init(s, st, "G");
    matmul_nest(s, st, e, f, g0, kN, kN, kN, "mm3");
    return s;
}

ir::SDFG k_atax() {
    ir::SDFG s("atax");
    s.add_symbol("N");
    s.add_symbol("M");
    s.add_array("A", ir::DType::F64, {kM, kN});
    s.add_array("x", ir::DType::F64, {kN});
    s.add_array("t", ir::DType::F64, {kM}, true);
    s.add_array("y", ir::DType::F64, {kN});
    ir::State& st = s.state(s.add_state("main", true));
    const NodeId t0 = zero_init(s, st, "t");
    const NodeId t = matvec(s, st, "Ax", access(st, "A"), access(st, "x"), t0, kM, kN);
    const NodeId y0 = zero_init(s, st, "y");
    matvec(s, st, "Atx", access(st, "A"), t, y0, kN, kM, /*transposed=*/true);
    return s;
}

ir::SDFG k_bicg() {
    ir::SDFG s("bicg");
    s.add_symbol("N");
    s.add_symbol("M");
    s.add_array("A", ir::DType::F64, {kN, kM});
    s.add_array("p", ir::DType::F64, {kM});
    s.add_array("r", ir::DType::F64, {kN});
    s.add_array("q", ir::DType::F64, {kN});
    s.add_array("s", ir::DType::F64, {kM});
    ir::State& st = s.state(s.add_state("main", true));
    const NodeId q0 = zero_init(s, st, "q");
    matvec(s, st, "Ap", access(st, "A"), access(st, "p"), q0, kN, kM);
    const NodeId s0 = zero_init(s, st, "s");
    matvec(s, st, "Atr", access(st, "A"), access(st, "r"), s0, kM, kN, /*transposed=*/true);
    return s;
}

ir::SDFG k_mvt() {
    ir::SDFG s("mvt");
    s.add_symbol("N");
    s.add_array("A", ir::DType::F64, {kN, kN});
    s.add_array("y1", ir::DType::F64, {kN});
    s.add_array("y2", ir::DType::F64, {kN});
    s.add_array("x1", ir::DType::F64, {kN});
    s.add_array("x2", ir::DType::F64, {kN});
    ir::State& st = s.state(s.add_state("main", true));
    const NodeId x1z = zero_init(s, st, "x1");
    matvec(s, st, "Ay1", access(st, "A"), access(st, "y1"), x1z, kN, kN);
    const NodeId x2z = zero_init(s, st, "x2");
    matvec(s, st, "Aty2", access(st, "A"), access(st, "y2"), x2z, kN, kN, /*transposed=*/true);
    return s;
}

ir::SDFG k_gesummv() {
    ir::SDFG s("gesummv");
    s.add_symbol("N");
    s.add_array("A", ir::DType::F64, {kN, kN});
    s.add_array("B", ir::DType::F64, {kN, kN});
    s.add_array("x", ir::DType::F64, {kN});
    s.add_scalar("alpha", ir::DType::F64);
    s.add_scalar("beta", ir::DType::F64);
    s.add_array("t1", ir::DType::F64, {kN}, true);
    s.add_array("t2", ir::DType::F64, {kN}, true);
    s.add_array("y", ir::DType::F64, {kN});
    ir::State& st = s.state(s.add_state("main", true));
    const NodeId t1z = zero_init(s, st, "t1");
    const NodeId t1 = matvec(s, st, "Ax", access(st, "A"), access(st, "x"), t1z, kN, kN);
    const NodeId t2z = zero_init(s, st, "t2");
    const NodeId t2 = matvec(s, st, "Bx", access(st, "B"), access(st, "x"), t2z, kN, kN);
    const sym::ExprPtr i = sym::symb("i");
    const Subset pi{{Range::index(i)}};
    custom_map(s, st, "combine", {"i"}, {Range::full(kN)},
               {In{t1, pi, "a"}, In{t2, pi, "b"}, In{access(st, "alpha"), Subset{}, "al"},
                In{access(st, "beta"), Subset{}, "be"}},
               "y", pi, "o = al * a + be * b");
    return s;
}

ir::SDFG k_gemver() {
    ir::SDFG s("gemver");
    s.add_symbol("N");
    s.add_array("A", ir::DType::F64, {kN, kN});
    s.add_array("u1", ir::DType::F64, {kN});
    s.add_array("v1", ir::DType::F64, {kN});
    s.add_array("u2", ir::DType::F64, {kN});
    s.add_array("v2", ir::DType::F64, {kN});
    s.add_array("A2", ir::DType::F64, {kN, kN}, true);
    s.add_array("y", ir::DType::F64, {kN});
    s.add_array("x", ir::DType::F64, {kN});
    ir::State& st = s.state(s.add_state("main", true));
    const sym::ExprPtr i = sym::symb("i"), j = sym::symb("j");
    const Subset ij{{Range::index(i), Range::index(j)}};
    const Subset pi{{Range::index(i)}};
    const Subset pj{{Range::index(j)}};
    const NodeId a2 = custom_map(
        s, st, "rank1", {"i", "j"}, {Range::full(kN), Range::full(kN)},
        {In{access(st, "A"), ij, "a"}, In{access(st, "u1"), pi, "p"},
         In{access(st, "v1"), pj, "q"}, In{access(st, "u2"), pi, "r"},
         In{access(st, "v2"), pj, "t"}},
        "A2", ij, "o = a + p * q + r * t");
    const NodeId xz = zero_init(s, st, "x");
    matvec(s, st, "A2y", a2, access(st, "y"), xz, kN, kN, /*transposed=*/true);
    return s;
}

ir::SDFG k_syrk() {
    ir::SDFG s("syrk");
    s.add_symbol("N");
    s.add_symbol("M");
    s.add_array("A", ir::DType::F64, {kN, kM});
    s.add_array("C", ir::DType::F64, {kN, kN});
    ir::State& st = s.state(s.add_state("main", true));
    const sym::ExprPtr i = sym::symb("i"), j = sym::symb("j"), k = sym::symb("k");
    const NodeId cz = zero_init(s, st, "C");
    const NodeId a = access(st, "A");
    accum_nest(s, st, "syrk", {"i", "j"}, {Range::full(kN), Range::full(kN)}, {"k"},
               {Range::full(kM)},
               {In{a, Subset{{Range::index(i), Range::index(k)}}, "a"},
                In{a, Subset{{Range::index(j), Range::index(k)}}, "b"}},
               cz, Subset{{Range::index(i), Range::index(j)}}, "a * b");
    return s;
}

ir::SDFG k_syr2k() {
    ir::SDFG s("syr2k");
    s.add_symbol("N");
    s.add_symbol("M");
    s.add_array("A", ir::DType::F64, {kN, kM});
    s.add_array("B", ir::DType::F64, {kN, kM});
    s.add_array("C", ir::DType::F64, {kN, kN});
    ir::State& st = s.state(s.add_state("main", true));
    const sym::ExprPtr i = sym::symb("i"), j = sym::symb("j"), k = sym::symb("k");
    const NodeId cz = zero_init(s, st, "C");
    accum_nest(s, st, "syr2k", {"i", "j"}, {Range::full(kN), Range::full(kN)}, {"k"},
               {Range::full(kM)},
               {In{access(st, "A"), Subset{{Range::index(i), Range::index(k)}}, "a"},
                In{access(st, "B"), Subset{{Range::index(j), Range::index(k)}}, "b"},
                In{access(st, "A"), Subset{{Range::index(j), Range::index(k)}}, "c"},
                In{access(st, "B"), Subset{{Range::index(i), Range::index(k)}}, "d"}},
               cz, Subset{{Range::index(i), Range::index(j)}}, "a * b + c * d");
    return s;
}

ir::SDFG k_doitgen() {
    ir::SDFG s("doitgen");
    s.add_symbol("N");
    s.add_symbol("M");
    s.add_array("A", ir::DType::F64, {kN, kN, kM});
    s.add_array("C4", ir::DType::F64, {kM, kM});
    s.add_array("Aout", ir::DType::F64, {kN, kN, kM});
    ir::State& st = s.state(s.add_state("main", true));
    const sym::ExprPtr i = sym::symb("i"), j = sym::symb("j"), k = sym::symb("k");
    const sym::ExprPtr l = sym::symb("l");
    const NodeId az = zero_init(s, st, "Aout");
    accum_nest(s, st, "doitgen", {"i", "j", "k"},
               {Range::full(kN), Range::full(kN), Range::full(kM)}, {"l"}, {Range::full(kM)},
               {In{access(st, "A"), Subset{{Range::index(i), Range::index(j), Range::index(l)}},
                   "a"},
                In{access(st, "C4"), Subset{{Range::index(l), Range::index(k)}}, "c"}},
               az, Subset{{Range::index(i), Range::index(j), Range::index(k)}}, "a * c");
    return s;
}

ir::SDFG k_jacobi_1d() {
    ir::SDFG s("jacobi_1d");
    s.add_symbol("N");
    s.add_symbol("TSTEPS");
    s.add_symbol("t");
    s.add_array("A", ir::DType::F64, {kN});
    s.add_array("B", ir::DType::F64, {kN}, true);
    const ir::StateId init = s.add_state("init", true);
    ir::State& st = s.state(s.add_state("step"));
    const sym::ExprPtr i = sym::symb("i");
    const NodeId a_in = access(st, "A");
    const NodeId b_mid = custom_map(s, st, "stencil_fwd", {"i"},
                                    {Range::span(sym::cst(1), kN - 2)},
                                    {In{a_in, Subset{{Range::span(i - 1, i + 1)}}, "a"}}, "B",
                                    Subset{{Range::index(i)}}, "o = (a[0] + a[1] + a[2]) / 3.0");
    custom_map(s, st, "stencil_bwd", {"i"}, {Range::span(sym::cst(1), kN - 2)},
               {In{b_mid, Subset{{Range::span(i - 1, i + 1)}}, "a"}}, "A",
               Subset{{Range::index(i)}}, "o = (a[0] + a[1] + a[2]) / 3.0");
    // Time loop at the state-machine level (initialized by the init edge).
    const ir::StateId body = s.states()[1];
    ir::InterstateEdge enter;
    enter.assignments.emplace_back("t", sym::cst(0));
    s.add_interstate_edge(init, body, enter);
    ir::InterstateEdge back;
    back.condition = sym::BoolExpr::compare(sym::CmpOp::Lt, sym::symb("t"), sym::symb("TSTEPS"));
    back.assignments.emplace_back("t", sym::symb("t") + 1);
    s.add_interstate_edge(body, body, back);
    return s;
}

ir::SDFG k_jacobi_2d() {
    ir::SDFG s("jacobi_2d");
    s.add_symbol("N");
    s.add_array("A", ir::DType::F64, {kN, kN});
    s.add_array("B", ir::DType::F64, {kN, kN});
    ir::State& st = s.state(s.add_state("main", true));
    const sym::ExprPtr i = sym::symb("i"), j = sym::symb("j");
    custom_map(s, st, "jacobi2d", {"i", "j"},
               {Range::span(sym::cst(1), kN - 2), Range::span(sym::cst(1), kN - 2)},
               {In{access(st, "A"), Subset{{Range::span(i - 1, i + 1), Range::span(j - 1, j + 1)}},
                   "a"}},
               "B", Subset{{Range::index(i), Range::index(j)}},
               "o = 0.2 * (a[4] + a[1] + a[7] + a[3] + a[5])");
    return s;
}

ir::SDFG k_heat_3d() {
    ir::SDFG s("heat_3d");
    s.add_symbol("N");
    s.add_array("A", ir::DType::F64, {kN, kN, kN});
    s.add_array("B", ir::DType::F64, {kN, kN, kN});
    ir::State& st = s.state(s.add_state("main", true));
    const sym::ExprPtr i = sym::symb("i"), j = sym::symb("j"), k = sym::symb("k");
    custom_map(
        s, st, "heat3d", {"i", "j", "k"},
        {Range::span(sym::cst(1), kN - 2), Range::span(sym::cst(1), kN - 2),
         Range::span(sym::cst(1), kN - 2)},
        {In{access(st, "A"),
            Subset{{Range::span(i - 1, i + 1), Range::span(j - 1, j + 1),
                    Range::span(k - 1, k + 1)}},
            "a"}},
        "B", Subset{{Range::index(i), Range::index(j), Range::index(k)}},
        "o = a[13] + 0.125 * (a[4] + a[22] - 2.0 * a[13]) + 0.125 * (a[10] + a[16] - 2.0 * "
        "a[13]) + 0.125 * (a[12] + a[14] - 2.0 * a[13])");
    return s;
}

ir::SDFG k_fdtd_2d() {
    ir::SDFG s("fdtd_2d");
    s.add_symbol("N");
    s.add_symbol("TSTEPS");
    s.add_symbol("t");
    s.add_array("ex", ir::DType::F64, {kN, kN});
    s.add_array("ey", ir::DType::F64, {kN, kN});
    s.add_array("hz", ir::DType::F64, {kN, kN});
    const ir::StateId init = s.add_state("init", true);
    ir::State& st = s.state(s.add_state("step"));
    const sym::ExprPtr i = sym::symb("i"), j = sym::symb("j");
    const NodeId hz_in = access(st, "hz");
    const NodeId ey2 = custom_map(
        s, st, "update_ey", {"i", "j"},
        {Range::span(sym::cst(1), kN - 1), Range::full(kN)},
        {In{access(st, "ey"), Subset{{Range::index(i), Range::index(j)}}, "e"},
         In{hz_in, Subset{{Range::span(i - 1, i), Range::index(j)}}, "h"}},
        "ey", Subset{{Range::index(i), Range::index(j)}}, "o = e - 0.5 * (h[1] - h[0])");
    const NodeId ex2 = custom_map(
        s, st, "update_ex", {"i", "j"},
        {Range::full(kN), Range::span(sym::cst(1), kN - 1)},
        {In{access(st, "ex"), Subset{{Range::index(i), Range::index(j)}}, "e"},
         In{hz_in, Subset{{Range::index(i), Range::span(j - 1, j)}}, "h"}},
        "ex", Subset{{Range::index(i), Range::index(j)}}, "o = e - 0.5 * (h[1] - h[0])");
    custom_map(
        s, st, "update_hz", {"i", "j"},
        {Range::span(sym::cst(0), kN - 2), Range::span(sym::cst(0), kN - 2)},
        {In{hz_in, Subset{{Range::index(i), Range::index(j)}}, "h"},
         In{ex2, Subset{{Range::index(i), Range::span(j, j + 1)}}, "e"},
         In{ey2, Subset{{Range::span(i, i + 1), Range::index(j)}}, "f"}},
        "hz", Subset{{Range::index(i), Range::index(j)}},
        "o = h - 0.7 * (e[1] - e[0] + f[1] - f[0])");
    const ir::StateId body = s.states()[1];
    ir::InterstateEdge enter;
    enter.assignments.emplace_back("t", sym::cst(0));
    s.add_interstate_edge(init, body, enter);
    ir::InterstateEdge back;
    back.condition = sym::BoolExpr::compare(sym::CmpOp::Lt, sym::symb("t"), sym::symb("TSTEPS"));
    back.assignments.emplace_back("t", sym::symb("t") + 1);
    s.add_interstate_edge(body, body, back);
    return s;
}

ir::SDFG k_floyd_warshall() {
    ir::SDFG s("floyd_warshall");
    s.add_symbol("N");
    s.add_symbol("k");
    s.add_array("path", ir::DType::F64, {kN, kN});
    s.add_array("pathn", ir::DType::F64, {kN, kN}, true);
    // Two states: init k, then the relaxation state looping over k via the
    // state machine (interstate symbol k used inside memlets).  The sweep
    // double-buffers through `pathn` so iterations stay order-independent.
    const ir::StateId init = s.add_state("init", true);
    (void)init;
    const ir::StateId body = s.add_state("relax");
    ir::State& st = s.state(body);
    const sym::ExprPtr i = sym::symb("i"), j = sym::symb("j"), k = sym::symb("k");
    const NodeId path_in = access(st, "path");
    const NodeId pathn = custom_map(
        s, st, "relax", {"i", "j"}, {Range::full(kN), Range::full(kN)},
        {In{path_in, Subset{{Range::index(i), Range::index(j)}}, "p"},
         In{path_in, Subset{{Range::index(i), Range::index(k)}}, "a"},
         In{path_in, Subset{{Range::index(k), Range::index(j)}}, "b"}},
        "pathn", Subset{{Range::index(i), Range::index(j)}}, "o = min(p, a + b)");
    ew_unary(s, st, pathn, "path", "o = i");
    ir::InterstateEdge enter;
    enter.assignments.emplace_back("k", sym::cst(0));
    s.add_interstate_edge(init, body, enter);
    ir::InterstateEdge back;
    back.condition =
        sym::BoolExpr::compare(sym::CmpOp::Lt, sym::symb("k"), sym::symb("N") - 1);
    back.assignments.emplace_back("k", sym::symb("k") + 1);
    s.add_interstate_edge(body, body, back);
    return s;
}

ir::SDFG k_softmax() {
    ir::SDFG s("softmax_kernel");
    s.add_symbol("N");
    s.add_symbol("M");
    s.add_array("x", ir::DType::F64, {kM, kN});
    s.add_array("y", ir::DType::F64, {kM, kN});
    ir::State& st = s.state(s.add_state("main", true));
    const NodeId x = access(st, "x");
    const NodeId lib = st.add_library(ir::LibraryKind::Softmax, "softmax");
    const NodeId y = access(st, "y");
    st.add_edge(x, "", lib, "in", Memlet("x", Subset::full(s.container("x").shape)));
    st.add_edge(lib, "out", y, "", Memlet("y", Subset::full(s.container("y").shape)));
    return s;
}

ir::SDFG k_mlp() {
    ir::SDFG s("mlp");
    s.add_symbol("N");
    s.add_array("x", ir::DType::F64, {kN, kN});
    s.add_array("W1", ir::DType::F64, {kN, kN});
    s.add_array("W2", ir::DType::F64, {kN, kN});
    s.add_array("h1", ir::DType::F64, {kN, kN}, true);
    s.add_array("h1r", ir::DType::F64, {kN, kN}, true);
    s.add_array("out", ir::DType::F64, {kN, kN});
    ir::State& st = s.state(s.add_state("main", true));
    const NodeId h1z = zero_init(s, st, "h1");
    const NodeId h1 = matmul_nest(s, st, access(st, "x"), access(st, "W1"), h1z, kN, kN, kN,
                                  "fc1");
    const NodeId h1r = ew_unary(s, st, h1, "h1r", "o = i > 0 ? i : 0");
    const NodeId oz = zero_init(s, st, "out");
    matmul_nest(s, st, h1r, access(st, "W2"), oz, kN, kN, kN, "fc2");
    return s;
}

ir::SDFG k_l2norm() {
    ir::SDFG s("l2norm");
    s.add_symbol("N");
    s.add_array("x", ir::DType::F64, {kN});
    s.add_array("sq", ir::DType::F64, {kN}, true);
    s.add_scalar("norm2", ir::DType::F64);
    ir::State& st = s.state(s.add_state("main", true));
    const NodeId sq = ew_unary(s, st, access(st, "x"), "sq", "o = i * i");
    const NodeId lib = st.add_library(ir::LibraryKind::ReduceSum, "sum_sq");
    const NodeId out = access(st, "norm2");
    st.add_edge(sq, "", lib, "in", Memlet("sq", Subset::full(s.container("sq").shape)));
    st.add_edge(lib, "out", out, "", Memlet("norm2", Subset{}));
    return s;
}

ir::SDFG k_go_fast() {
    ir::SDFG s("go_fast");
    s.add_symbol("N");
    s.add_array("A", ir::DType::F64, {kN, kN});
    s.add_array("diag", ir::DType::F64, {kN}, true);
    s.add_array("tdiag", ir::DType::F64, {kN}, true);
    s.add_scalar("trace", ir::DType::F64);
    s.add_array("out", ir::DType::F64, {kN, kN});
    ir::State& st = s.state(s.add_state("main", true));
    const sym::ExprPtr i = sym::symb("i"), j = sym::symb("j");
    const NodeId diag = custom_map(
        s, st, "diag", {"i"}, {Range::full(kN)},
        {In{access(st, "A"), Subset{{Range::index(i), Range::index(i)}}, "a"}}, "diag",
        Subset{{Range::index(i)}}, "o = a");
    const NodeId tdiag = ew_unary(s, st, diag, "tdiag", "o = tanh(i)");
    const NodeId lib = st.add_library(ir::LibraryKind::ReduceSum, "trace");
    const NodeId tr = access(st, "trace");
    st.add_edge(tdiag, "", lib, "in", Memlet("tdiag", Subset::full(s.container("tdiag").shape)));
    st.add_edge(lib, "out", tr, "", Memlet("trace", Subset{}));
    custom_map(s, st, "add_trace", {"i", "j"}, {Range::full(kN), Range::full(kN)},
               {In{access(st, "A"), Subset{{Range::index(i), Range::index(j)}}, "a"},
                In{tr, Subset{}, "t"}},
               "out", Subset{{Range::index(i), Range::index(j)}}, "o = a + t");
    return s;
}

ir::SDFG k_arc_distance() {
    ir::SDFG s("arc_distance");
    s.add_symbol("N");
    s.add_array("t0", ir::DType::F64, {kN});
    s.add_array("p0", ir::DType::F64, {kN});
    s.add_array("t1", ir::DType::F64, {kN});
    s.add_array("p1", ir::DType::F64, {kN});
    s.add_array("tmp", ir::DType::F64, {kN}, true);
    s.add_array("dist", ir::DType::F64, {kN});
    ir::State& st = s.state(s.add_state("main", true));
    const sym::ExprPtr i = sym::symb("i");
    const Subset pi{{Range::index(i)}};
    const NodeId tmp = custom_map(
        s, st, "hav", {"i"}, {Range::full(kN)},
        {In{access(st, "t0"), pi, "a"}, In{access(st, "p0"), pi, "b"},
         In{access(st, "t1"), pi, "c"}, In{access(st, "p1"), pi, "d"}},
        "tmp", pi,
        "o = sin((c - a) / 2.0) * sin((c - a) / 2.0) + cos(a) * cos(c) * sin((d - b) / 2.0) * "
        "sin((d - b) / 2.0)");
    ew_unary(s, st, tmp, "dist", "o = 2.0 * sqrt(i)");
    return s;
}

ir::SDFG k_compute() {
    ir::SDFG s("compute");
    s.add_symbol("N");
    s.add_array("a", ir::DType::F64, {kN});
    s.add_array("b", ir::DType::F64, {kN});
    s.add_array("t", ir::DType::F64, {kN}, true);
    s.add_array("out", ir::DType::F64, {kN});
    ir::State& st = s.state(s.add_state("main", true));
    const NodeId t = ew_binary(s, st, access(st, "a"), access(st, "b"), "t",
                               "o = a * a + b * b + 2.0 * a * b");
    ew_unary(s, st, t, "out", "o = i > 0 ? i : 0");
    return s;
}

ir::SDFG k_scalar_pipeline() {
    // Scalar tasklet chains (TaskletFusion territory).  The intermediate
    // `t1` is read again by a *later state* — the pattern where fusing away
    // its write changes semantics (the Table 2 TaskletFusion bug).
    ir::SDFG s("scalar_pipeline");
    s.add_symbol("N");
    s.add_scalar("alpha", ir::DType::F64);
    s.add_scalar("t1", ir::DType::F64, true);
    s.add_scalar("t2", ir::DType::F64, true);
    s.add_scalar("coef", ir::DType::F64, true);
    s.add_array("x", ir::DType::F64, {kN});
    s.add_array("y", ir::DType::F64, {kN});
    s.add_array("y2", ir::DType::F64, {kN});
    const ir::StateId main = s.add_state("main", true);
    {
        ir::State& st = s.state(main);
        const NodeId c1 = scalar_chain(s, st, "coef1", access(st, "alpha"), "t1", "t2",
                                       "o = x * 2.0 + 1.0", "o = x * x");
        const NodeId coef = scalar_chain(s, st, "coef2", c1, "coef", "coef", "o = x + 1.0",
                                         "o = x * 0.5");
        const sym::ExprPtr i = sym::symb("i");
        custom_map(s, st, "apply", {"i"}, {Range::full(kN)},
                   {In{access(st, "x"), Subset{{Range::index(i)}}, "a"},
                    In{coef, Subset{}, "c"}},
                   "y", Subset{{Range::index(i)}}, "o = a * c");
    }
    const ir::StateId late = s.add_state("late_use");
    {
        ir::State& st = s.state(late);
        const sym::ExprPtr i = sym::symb("i");
        custom_map(s, st, "late_use", {"i"}, {Range::full(kN)},
                   {In{access(st, "x"), Subset{{Range::index(i)}}, "a"},
                    In{access(st, "t1"), Subset{}, "c"}},
                   "y2", Subset{{Range::index(i)}}, "o = a + c");
    }
    s.add_interstate_edge(main, late);
    return s;
}

ir::SDFG k_ew_chain() {
    // 1-D producer/consumer chain: BufferTiling + MapFusion shape.
    ir::SDFG s("ew_chain");
    s.add_symbol("N");
    s.add_array("x", ir::DType::F64, {kN});
    s.add_array("T", ir::DType::F64, {kN}, true);
    s.add_array("y", ir::DType::F64, {kN});
    ir::State& st = s.state(s.add_state("main", true));
    ew_chain_1d(s, st, access(st, "x"), "T", "y", "o = exp(i)", "o = i * 0.5");
    return s;
}

ir::SDFG k_covariance() {
    ir::SDFG s("covariance");
    s.add_symbol("N");
    s.add_symbol("M");
    s.add_array("data", ir::DType::F64, {kN, kM});
    s.add_array("mean", ir::DType::F64, {kM}, true);
    s.add_array("centered", ir::DType::F64, {kN, kM}, true);
    s.add_array("cov", ir::DType::F64, {kM, kM});
    ir::State& st = s.state(s.add_state("main", true));
    const sym::ExprPtr i = sym::symb("i"), j = sym::symb("j"), k = sym::symb("k");
    const NodeId mz = zero_init(s, st, "mean");
    const NodeId mean = accum_nest(
        s, st, "col_mean", {"i"}, {Range::full(kM)}, {"k"}, {Range::full(kN)},
        {In{access(st, "data"), Subset{{Range::index(k), Range::index(i)}}, "a"}}, mz,
        Subset{{Range::index(i)}}, "a");
    const NodeId centered = custom_map(
        s, st, "center", {"i", "j"}, {Range::full(kN), Range::full(kM)},
        {In{access(st, "data"), Subset{{Range::index(i), Range::index(j)}}, "a"},
         In{mean, Subset{{Range::index(j)}}, "m"}},
        "centered", Subset{{Range::index(i), Range::index(j)}}, "o = a - m");
    const NodeId cz = zero_init(s, st, "cov");
    accum_nest(s, st, "cov", {"i", "j"}, {Range::full(kM), Range::full(kM)}, {"k"},
               {Range::full(kN)},
               {In{centered, Subset{{Range::index(k), Range::index(i)}}, "a"},
                In{centered, Subset{{Range::index(k), Range::index(j)}}, "b"}},
               cz, Subset{{Range::index(i), Range::index(j)}}, "a * b");
    return s;
}

ir::SDFG k_correlation() {
    ir::SDFG s("correlation");
    s.add_symbol("N");
    s.add_symbol("M");
    s.add_array("data", ir::DType::F64, {kN, kM});
    s.add_array("sumsq", ir::DType::F64, {kM}, true);
    s.add_array("stddev", ir::DType::F64, {kM}, true);
    s.add_array("normed", ir::DType::F64, {kN, kM}, true);
    s.add_array("corr", ir::DType::F64, {kM, kM});
    ir::State& st = s.state(s.add_state("main", true));
    const sym::ExprPtr i = sym::symb("i"), j = sym::symb("j"), k = sym::symb("k");
    const NodeId sz = zero_init(s, st, "sumsq");
    const NodeId sumsq = accum_nest(
        s, st, "sumsq", {"i"}, {Range::full(kM)}, {"k"}, {Range::full(kN)},
        {In{access(st, "data"), Subset{{Range::index(k), Range::index(i)}}, "a"}}, sz,
        Subset{{Range::index(i)}}, "a * a");
    const NodeId stddev = ew_unary(s, st, sumsq, "stddev", "o = sqrt(i) + 0.000001");
    const NodeId normed = custom_map(
        s, st, "normalize", {"i", "j"}, {Range::full(kN), Range::full(kM)},
        {In{access(st, "data"), Subset{{Range::index(i), Range::index(j)}}, "a"},
         In{stddev, Subset{{Range::index(j)}}, "d"}},
        "normed", Subset{{Range::index(i), Range::index(j)}}, "o = a / d");
    const NodeId cz = zero_init(s, st, "corr");
    accum_nest(s, st, "corr", {"i", "j"}, {Range::full(kM), Range::full(kM)}, {"k"},
               {Range::full(kN)},
               {In{normed, Subset{{Range::index(k), Range::index(i)}}, "a"},
                In{normed, Subset{{Range::index(k), Range::index(j)}}, "b"}},
               cz, Subset{{Range::index(i), Range::index(j)}}, "a * b");
    return s;
}

ir::SDFG k_hdiff() {
    ir::SDFG s("hdiff");
    s.add_symbol("N");
    s.add_array("in_field", ir::DType::F64, {kN, kN});
    s.add_array("lap", ir::DType::F64, {kN, kN}, true);
    s.add_array("out_field", ir::DType::F64, {kN, kN});
    ir::State& st = s.state(s.add_state("main", true));
    const sym::ExprPtr i = sym::symb("i"), j = sym::symb("j");
    const NodeId lap = custom_map(
        s, st, "laplacian", {"i", "j"},
        {Range::span(sym::cst(1), kN - 2), Range::span(sym::cst(1), kN - 2)},
        {In{access(st, "in_field"),
            Subset{{Range::span(i - 1, i + 1), Range::span(j - 1, j + 1)}}, "a"}},
        "lap", Subset{{Range::index(i), Range::index(j)}},
        "o = 4.0 * a[4] - (a[1] + a[7] + a[3] + a[5])");
    custom_map(s, st, "flux", {"i", "j"},
               {Range::span(sym::cst(2), kN - 3), Range::span(sym::cst(2), kN - 3)},
               {In{lap, Subset{{Range::span(i - 1, i + 1), Range::span(j - 1, j + 1)}}, "l"},
                In{access(st, "in_field"), Subset{{Range::index(i), Range::index(j)}}, "f"}},
               "out_field", Subset{{Range::index(i), Range::index(j)}},
               "o = f - 0.25 * (l[1] + l[7] + l[3] + l[5])");
    return s;
}

ir::SDFG k_symm() {
    ir::SDFG s("symm");
    s.add_symbol("N");
    s.add_array("A", ir::DType::F64, {kN, kN});
    s.add_array("B", ir::DType::F64, {kN, kN});
    s.add_array("C", ir::DType::F64, {kN, kN});
    ir::State& st = s.state(s.add_state("main", true));
    const NodeId cz = zero_init(s, st, "C");
    matmul_nest(s, st, access(st, "A"), access(st, "B"), cz, kN, kN, kN, "symm_mm");
    return s;
}

ir::SDFG k_trmm() {
    ir::SDFG s("trmm");
    s.add_symbol("N");
    s.add_array("A", ir::DType::F64, {kN, kN});
    s.add_array("B", ir::DType::F64, {kN, kN});
    s.add_array("Bout", ir::DType::F64, {kN, kN});
    ir::State& st = s.state(s.add_state("main", true));
    const sym::ExprPtr i = sym::symb("i"), j = sym::symb("j"), k = sym::symb("k");
    const NodeId bz = zero_init(s, st, "Bout");
    // Triangular accumulation: k in [i, N-1] (range depends on the outer
    // parameter — exercises parametric inner bounds).
    accum_nest(s, st, "trmm", {"i", "j"}, {Range::full(kN), Range::full(kN)}, {"k"},
               {Range::span(i, kN - 1)},
               {In{access(st, "A"), Subset{{Range::index(k), Range::index(i)}}, "a"},
                In{access(st, "B"), Subset{{Range::index(k), Range::index(j)}}, "b"}},
               bz, Subset{{Range::index(i), Range::index(j)}}, "a * b");
    return s;
}

ir::SDFG k_spmv_dense() {
    ir::SDFG s("spmv_dense");
    s.add_symbol("N");
    s.add_array("A", ir::DType::F64, {kN, kN});
    s.add_array("mask", ir::DType::F64, {kN, kN});
    s.add_array("x", ir::DType::F64, {kN});
    s.add_array("Am", ir::DType::F64, {kN, kN}, true);
    s.add_array("y", ir::DType::F64, {kN});
    ir::State& st = s.state(s.add_state("main", true));
    const NodeId am = ew_binary(s, st, access(st, "A"), access(st, "mask"), "Am", "o = a * b");
    const NodeId yz = zero_init(s, st, "y");
    matvec(s, st, "spmv", am, access(st, "x"), yz, kN, kN);
    return s;
}

ir::SDFG k_vadv_lite() {
    ir::SDFG s("vadv_lite");
    s.add_symbol("N");
    s.add_symbol("M");
    s.add_array("wcon", ir::DType::F64, {kN, kM});
    s.add_array("ccol", ir::DType::F64, {kN, kM}, true);
    s.add_array("dcol", ir::DType::F64, {kN, kM});
    ir::State& st = s.state(s.add_state("main", true));
    const sym::ExprPtr i = sym::symb("i"), j = sym::symb("j");
    const NodeId ccol = custom_map(
        s, st, "forward", {"i", "j"}, {Range::full(kN), Range::span(sym::cst(1), kM - 1)},
        {In{access(st, "wcon"), Subset{{Range::index(i), Range::span(j - 1, j)}}, "w"}},
        "ccol", Subset{{Range::index(i), Range::index(j)}}, "o = 0.25 * (w[0] + w[1])");
    custom_map(s, st, "backward", {"i", "j"},
               {Range::full(kN), Range::span(sym::cst(1), kM - 1)},
               {In{ccol, Subset{{Range::index(i), Range::index(j)}}, "c"}}, "dcol",
               Subset{{Range::index(i), Range::index(j)}}, "o = c * 2.0");
    return s;
}

ir::SDFG k_alias_stages() {
    // Two-stage kernel whose second stage addresses through an aliased
    // symbol M2 := N (SymbolAliasPromotion / StateAssignElimination bait,
    // as produced by real frontends after inlining).
    ir::SDFG s("alias_stages");
    s.add_symbol("N");
    s.add_symbol("M2");
    s.add_symbol("dead");
    s.add_array("x", ir::DType::F64, {kN});
    s.add_array("T", ir::DType::F64, {kN}, true);
    s.add_array("y", ir::DType::F64, {kN});
    const ir::StateId s1 = s.add_state("stage1", true);
    {
        ir::State& st = s.state(s1);
        ew_unary(s, st, access(st, "x"), "T", "o = i * 3.0");
    }
    const ir::StateId s2 = s.add_state("stage2");
    {
        ir::State& st = s.state(s2);
        const sym::ExprPtr i = sym::symb("i");
        custom_map(s, st, "stage2", {"i"},
                   {Range::span(sym::cst(0), sym::symb("M2") - 1)},
                   {In{access(st, "T"), Subset{{Range::index(i)}}, "a"}}, "y",
                   Subset{{Range::index(i)}}, "o = a + 1.0");
    }
    ir::InterstateEdge e;
    e.assignments.emplace_back("M2", sym::symb("N"));
    e.assignments.emplace_back("dead", sym::cst(7));
    s.add_interstate_edge(s1, s2, e);
    return s;
}

ir::SDFG k_azimint_lite() {
    ir::SDFG s("azimint_lite");
    s.add_symbol("N");
    s.add_array("data", ir::DType::F64, {kN});
    s.add_array("radius", ir::DType::F64, {kN});
    s.add_array("weighted", ir::DType::F64, {kN}, true);
    s.add_scalar("total", ir::DType::F64);
    ir::State& st = s.state(s.add_state("main", true));
    const NodeId w = ew_binary(s, st, access(st, "data"), access(st, "radius"), "weighted",
                               "o = a * b");
    const NodeId lib = st.add_library(ir::LibraryKind::ReduceSum, "integrate");
    const NodeId out = access(st, "total");
    st.add_edge(w, "", lib, "in", Memlet("weighted", Subset::full(s.container("weighted").shape)));
    st.add_edge(lib, "out", out, "", Memlet("total", Subset{}));
    return s;
}

ir::SDFG k_conv1d() {
    ir::SDFG s("conv1d");
    s.add_symbol("N");
    s.add_symbol("K");
    s.add_array("x", ir::DType::F64, {kN});
    s.add_array("w", ir::DType::F64, {kK});
    s.add_array("y", ir::DType::F64, {kN - kK + 1});
    ir::State& st = s.state(s.add_state("main", true));
    const sym::ExprPtr i = sym::symb("i"), k = sym::symb("k");
    const NodeId yz = zero_init(s, st, "y");
    accum_nest(s, st, "conv1d", {"i"}, {Range::full(kN - kK + 1)}, {"k"}, {Range::full(kK)},
               {In{access(st, "x"), Subset{{Range::index(i + k)}}, "a"},
                In{access(st, "w"), Subset{{Range::index(k)}}, "b"}},
               yz, Subset{{Range::index(i)}}, "a * b");
    return s;
}

ir::SDFG k_unroll_candidates() {
    // Short constant-bound sequential loops (LoopUnrolling matches),
    // including one descending loop (the paper's negative-step failure).
    ir::SDFG s("unroll_candidates");
    s.add_symbol("N");
    s.add_array("x", ir::DType::F64, {sym::cst(8), kN});
    s.add_array("y", ir::DType::F64, {sym::cst(8), kN});
    ir::State& st = s.state(s.add_state("main", true));
    const sym::ExprPtr v = sym::symb("v"), i = sym::symb("i");
    // Ascending: v in 0..3.
    {
        auto [entry, exit] = st.add_map("short_loop", {"v"},
                                        {Range{sym::cst(0), sym::cst(3), sym::cst(1)}},
                                        ir::Schedule::Sequential);
        const NodeId inner = st.add_tasklet("short_loop_body", "o = a * 2.0");
        const NodeId xin = access(st, "x");
        const NodeId yout = access(st, "y");
        const Subset row{{Range::index(v), Range::full(kN)}};
        st.add_edge(xin, "", entry, "",
                    Memlet("x", Subset{{Range::span(sym::cst(0), sym::cst(3)), Range::full(kN)}}));
        st.add_edge(entry, "", inner, "a", Memlet("x", Subset{{Range::index(v), Range::index(sym::cst(0))}}));
        st.add_edge(inner, "o", exit, "", Memlet("y", Subset{{Range::index(v), Range::index(sym::cst(0))}}));
        st.add_edge(exit, "", yout, "",
                    Memlet("y", Subset{{Range::span(sym::cst(0), sym::cst(3)), Range::full(kN)}}));
        (void)i;
    }
    // Descending: v in 4..1 step -1 (rows 1..4).
    {
        auto [entry, exit] = st.add_map("countdown_loop", {"v"},
                                        {Range{sym::cst(4), sym::cst(1), sym::cst(-1)}},
                                        ir::Schedule::Sequential);
        const NodeId inner = st.add_tasklet("countdown_body", "o = a + 1.0");
        const NodeId xin = access(st, "x");
        const NodeId yout = access(st, "y");
        st.add_edge(xin, "", entry, "",
                    Memlet("x", Subset{{Range::span(sym::cst(1), sym::cst(4)), Range::full(kN)}}));
        st.add_edge(entry, "", inner, "a",
                    Memlet("x", Subset{{Range::index(v), Range::index(sym::cst(1))}}));
        st.add_edge(inner, "o", exit, "",
                    Memlet("y", Subset{{Range::index(v), Range::index(sym::cst(1))}}));
        st.add_edge(exit, "", yout, "",
                    Memlet("y", Subset{{Range::span(sym::cst(1), sym::cst(4)), Range::full(kN)}}));
    }
    return s;
}

ir::SDFG k_resnet_block_lite() {
    ir::SDFG s("resnet_block_lite");
    s.add_symbol("N");
    s.add_array("x", ir::DType::F64, {kN, kN});
    s.add_array("W", ir::DType::F64, {kN, kN});
    s.add_array("h", ir::DType::F64, {kN, kN}, true);
    s.add_array("hr", ir::DType::F64, {kN, kN}, true);
    s.add_array("y", ir::DType::F64, {kN, kN});
    ir::State& st = s.state(s.add_state("main", true));
    const NodeId hz = zero_init(s, st, "h");
    const NodeId h = matmul_nest(s, st, access(st, "x"), access(st, "W"), hz, kN, kN, kN,
                                 "conv_as_mm");
    const NodeId hr = ew_unary(s, st, h, "hr", "o = i > 0 ? i : 0");
    ew_binary(s, st, hr, access(st, "x"), "y", "o = a + b");
    return s;
}

ir::SDFG k_durbin_lite() {
    ir::SDFG s("durbin_lite");
    s.add_symbol("N");
    s.add_symbol("iter");
    s.add_array("r", ir::DType::F64, {kN});
    s.add_array("y", ir::DType::F64, {kN});
    const ir::StateId init = s.add_state("init", true);
    {
        ir::State& st = s.state(init);
        ew_unary(s, st, access(st, "r"), "y", "o = -i");
    }
    const ir::StateId body = s.add_state("refine");
    {
        ir::State& st = s.state(body);
        const sym::ExprPtr i = sym::symb("i");
        custom_map(s, st, "refine", {"i"}, {Range::full(kN)},
                   {In{access(st, "y"), Subset{{Range::index(i)}}, "a"}}, "y",
                   Subset{{Range::index(i)}}, "o = a * 0.9");
    }
    ir::InterstateEdge enter;
    enter.assignments.emplace_back("iter", sym::cst(0));
    s.add_interstate_edge(init, body, enter);
    ir::InterstateEdge back;
    back.condition = sym::BoolExpr::compare(sym::CmpOp::Lt, sym::symb("iter"), sym::cst(4));
    back.assignments.emplace_back("iter", sym::symb("iter") + 1);
    s.add_interstate_edge(body, body, back);
    return s;
}

ir::SDFG k_copy_pipeline() {
    // Copy-heavy staging kernel (WriteElimination matches).
    ir::SDFG s("copy_pipeline");
    s.add_symbol("N");
    s.add_array("src", ir::DType::F64, {kN});
    s.add_array("stage1", ir::DType::F64, {kN}, true);
    s.add_array("stage2", ir::DType::F64, {kN}, true);
    s.add_array("dst", ir::DType::F64, {kN});
    ir::State& st = s.state(s.add_state("main", true));
    const NodeId a = ew_unary(s, st, access(st, "src"), "stage1", "o = i");
    const NodeId b = ew_unary(s, st, a, "stage2", "o = i");
    ew_unary(s, st, b, "dst", "o = i * 1.5");
    return s;
}

const std::vector<std::pair<const char*, Builder>>& kernel_table() {
    static const std::vector<std::pair<const char*, Builder>> kTable = {
        {"gemm", k_gemm},
        {"2mm", k_2mm},
        {"3mm", k_3mm},
        {"atax", k_atax},
        {"bicg", k_bicg},
        {"mvt", k_mvt},
        {"gesummv", k_gesummv},
        {"gemver", k_gemver},
        {"syrk", k_syrk},
        {"syr2k", k_syr2k},
        {"symm", k_symm},
        {"trmm", k_trmm},
        {"doitgen", k_doitgen},
        {"conv1d", k_conv1d},
        {"jacobi_1d", k_jacobi_1d},
        {"jacobi_2d", k_jacobi_2d},
        {"heat_3d", k_heat_3d},
        {"fdtd_2d", k_fdtd_2d},
        {"hdiff", k_hdiff},
        {"vadv_lite", k_vadv_lite},
        {"floyd_warshall", k_floyd_warshall},
        {"softmax", k_softmax},
        {"mlp", k_mlp},
        {"resnet_block_lite", k_resnet_block_lite},
        {"covariance", k_covariance},
        {"correlation", k_correlation},
        {"spmv_dense", k_spmv_dense},
        {"l2norm", k_l2norm},
        {"go_fast", k_go_fast},
        {"arc_distance", k_arc_distance},
        {"azimint_lite", k_azimint_lite},
        {"compute", k_compute},
        {"scalar_pipeline", k_scalar_pipeline},
        {"ew_chain", k_ew_chain},
        {"copy_pipeline", k_copy_pipeline},
        {"alias_stages", k_alias_stages},
        {"durbin_lite", k_durbin_lite},
        {"unroll_candidates", k_unroll_candidates},
    };
    return kTable;
}

}  // namespace

std::vector<NpbenchEntry> npbench_suite() {
    std::vector<NpbenchEntry> out;
    for (const auto& [name, builder] : kernel_table())
        out.push_back(NpbenchEntry{name, builder()});
    return out;
}

ir::SDFG build_npbench_kernel(const std::string& name) {
    for (const auto& [kname, builder] : kernel_table())
        if (name == kname) return builder();
    throw common::Error("unknown npbench kernel: " + name);
}

std::vector<std::string> npbench_kernel_names() {
    std::vector<std::string> out;
    for (const auto& [name, builder] : kernel_table()) {
        (void)builder;
        out.push_back(name);
    }
    return out;
}

sym::Bindings npbench_defaults() {
    return sym::Bindings{{"N", 8}, {"M", 6}, {"K", 3}, {"TSTEPS", 2}, {"t", 0},
                         {"k", 0}, {"iter", 0}, {"M2", 8}, {"dead", 0}};
}

}  // namespace ff::workloads
