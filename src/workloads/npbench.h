// NPBench-like kernel suite (Sec. 6.3).
//
// NPBench is a NumPy benchmark collection spanning linear algebra, stencils,
// deep learning and physics kernels; the paper audits every built-in DaCe
// transformation on all 52 of its programs.  We rebuild the suite's dataflow
// *shapes* natively: dense contractions as explicit accumulation nests,
// elementwise chains, stencil sweeps with state-machine time loops,
// reductions, and multi-state kernels with interstate symbol assignments —
// enough surface for every pass in the registry to find realistic matches.
#pragma once

#include <string>
#include <vector>

#include "ir/sdfg.h"

namespace ff::workloads {

struct NpbenchEntry {
    std::string name;
    ir::SDFG sdfg;
};

/// Builds the whole suite (deterministic order).
std::vector<NpbenchEntry> npbench_suite();

/// Builds one kernel by name; throws common::Error for unknown names.
ir::SDFG build_npbench_kernel(const std::string& name);

/// Names of all kernels in suite order.
std::vector<std::string> npbench_kernel_names();

/// Default symbol values covering every symbol used in the suite.
sym::Bindings npbench_defaults();

}  // namespace ff::workloads
