// Lossless shard merge: any complete set of shard record files back into
// the exact single-process audit report.
//
// The merger re-prepares the job, validates that the shard files (in any
// order) tile the audit's unit space exactly — same job key, no gaps, no
// overlaps, every shard complete — injects every record into its canonical
// slot, and finalizes through core::merge_trial_records: the same
// canonical-order merge the in-process scheduler uses, so the audit table
// and reproducer artifacts are byte-identical to `Fuzzer::audit` at any
// shard count, worker count, or arrival order (the determinism contract,
// docs/ARCHITECTURE.md "Sharded execution").
#pragma once

/// \file
/// merge_shards and the canonical (machine-independent) report form.

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/fuzzer.h"
#include "feedback/corpus.h"
#include "shard/manifest.h"

namespace ff::shard {

/// Merge-time options.
struct MergeOptions {
    /// When non-empty, failing instances' reproducer artifacts are written
    /// here during the merge — same content-addressed files the
    /// single-process audit would have produced.
    std::string artifact_dir;
    /// Workers for the merge's prepare phase (0 = hardware concurrency).
    /// Merging runs no trials; this only parallelizes cutout pipelines.
    int num_threads = 0;
};

/// A reconstructed audit.
struct MergeResult {
    std::vector<core::FuzzReport> reports;  ///< Canonical per-instance reports.
    std::size_t shard_files = 0;            ///< Record files merged.
    std::int64_t records = 0;               ///< Record lines injected.
    /// The audit's merged feedback corpus (empty unless the job enabled
    /// feedback).  Derived during finalize from the injected records'
    /// coverage (gaps re-executed), so it is byte-identical to the
    /// single-process corpus at any shard count (docs/ARCHITECTURE.md
    /// clause 10).
    std::vector<feedback::CorpusEntry> corpus;
    /// The merged job (every shard file agreed on it) — callers use it for
    /// the corpus file's job-identity header.
    JobSpec job;
};

/// Merges the given shard record files; throws common::Error when they do
/// not form exactly one complete audit (mixed jobs, format drift, a gap or
/// overlap in the unit range, or an incomplete shard).
MergeResult merge_shards(const std::vector<std::string>& record_paths,
                         const MergeOptions& options = {});

/// Zeroes the fields the determinism contract exempts — wall-clock
/// (`seconds`, `trials_per_second`), worker count (`threads`) — and reduces
/// `artifact_path` to its content-derived basename, so reports produced on
/// different machines (or via different shard counts) compare
/// byte-identical.
void canonicalize_report(core::FuzzReport& report);

/// The canonical report document `ffaudit run` and `ffaudit merge` both
/// emit: every report canonicalized and serialized, plus the rendered audit
/// table.  Byte-identical across shard counts, worker counts, machines and
/// arrival orders for a fixed job.
common::Json canonical_report_document(std::vector<core::FuzzReport> reports);

}  // namespace ff::shard
