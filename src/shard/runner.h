// Shard execution: runs one manifest's unit range and streams the records.
//
// The runner re-prepares the job (a pure function of the JobSpec, so every
// shard agrees on instance indexing), cross-checks the prepared shape
// against the manifest, then executes the shard's range in
// checkpoint-interval chunks: run a chunk with the in-process worker pool,
// append its records in unit order, checkpoint, repeat.  If the process is
// killed, re-invoking with resume enabled picks up from the last
// checkpoint — completed chunks are never re-executed.
#pragma once

/// \file
/// run_shard: chunked, checkpointed execution of one shard manifest.

#include <cstdint>
#include <functional>
#include <string>

#include "core/fuzzer.h"
#include "shard/manifest.h"

namespace ff::shard {

/// Execution-only knobs of one run_shard invocation (none of these can
/// affect the recorded results — the determinism contract).
struct RunShardOptions {
    int num_threads = 1;  ///< Workers of the in-process pool (0 = hardware).
    int trial_chunk = 1;  ///< Scheduler claim chunking (FuzzConfig::trial_chunk).
    /// Continue from an existing record file's last checkpoint.  When
    /// false, an existing file is overwritten from scratch.
    bool resume = true;
    /// Test/ops hook: deterministically interrupt the run once more than
    /// this many units have executed in THIS invocation — the chunk in
    /// flight writes some records and a torn final line but no checkpoint,
    /// exactly like a kill -9 mid-write.  < 0 runs to completion.
    std::int64_t interrupt_after_units = -1;
    /// Called after each durable checkpoint with the units completed by
    /// this invocation so far.  The coordinator's workers send a
    /// progress-triggered lease heartbeat from here (coord/worker.cpp);
    /// results cannot depend on it.  Exceptions propagate out of
    /// run_shard after the checkpoint they follow, so everything already
    /// reported durable stays durable.
    std::function<void(std::int64_t units_done)> on_progress;
};

/// What one run_shard invocation did.
struct RunShardResult {
    std::int64_t resumed_from = 0;  ///< First unit executed (== unit_begin when fresh).
    std::int64_t units_run = 0;     ///< Units executed by this invocation.
    bool completed = false;         ///< Reached manifest.unit_end (file is mergeable).
    core::SchedulerStats stats;     ///< Scheduler counters of this invocation.
};

/// Executes `manifest`'s unit range, streaming records to `records_path`.
/// Throws common::Error when the prepared audit disagrees with the manifest
/// (instance count / trial budget drift) or on I/O failure.
RunShardResult run_shard(const ShardManifest& manifest, const std::string& records_path,
                         const RunShardOptions& options = {});

}  // namespace ff::shard
