// The shard record wire format: one append-only JSONL stream per shard.
//
// Line types (each a compact single-line JSON object; since format 2 every
// line carries a trailing per-line CRC32C over its other bytes):
//   {"type":"header","format":2,"manifest":{...},"crc":"xxxxxxxx"}
//   {"type":"record","unit":<u>,"rec":{...},"crc":"xxxxxxxx"}
//   {"type":"checkpoint","completed":<u>,"crc":"xxxxxxxx"}
//   {"digest":"xxxxxxxx","records":<n>,"type":"trailer","crc":"xxxxxxxx"}
//
// Records appear in ascending unit order.  A checkpoint line asserts that
// every unit in [manifest.unit_begin, completed) has a record line above
// it and has been fsync'd to disk; an interrupted shard resumes from its
// last checkpoint instead of restarting (the partially written chunk after
// it — including a torn final line from a mid-write kill — is discarded by
// truncation).  A shard is *complete* when its last checkpoint reaches
// manifest.unit_end AND the stream ends with its trailer line.
//
// Integrity (format 2): the "crc" field of each line is the CRC32C of the
// line with that field removed — a flipped bit anywhere in a line is
// detected before its JSON is even parsed.  The trailer seals the whole
// stream: "records" is the count of record lines and "digest" is the
// rolling CRC32C of every byte of the file before the trailer line itself,
// so dropped or reordered *whole lines* (individually checksum-valid) are
// caught too.  Readers verify all of it unconditionally; a mismatch throws
// common::IntegrityError naming the file and line (`ffaudit fsck` reports
// it, `fsck --repair` truncates back to the last verifiable prefix).  Only
// a torn final line — the signature of a mid-write kill, never of silent
// corruption — is tolerated, exactly as before.
//
// Durability (the checkpoint invariant): the writer streams to
// `<path>.tmp` and publishes the file under its real name by atomic rename
// at the first checkpoint, so a reader never observes a stream without a
// durable checkpoint.  Every checkpoint fsyncs twice — records first, then
// the checkpoint line — so a crash at any instant can never leave a
// durable checkpoint line above unsynced records.  Torn *tails* are
// recoverable; a checkpoint that lies about its prefix is impossible.
//
// The record payload is core::trial_record_to_json: kind, and for failing
// trials the verdict, detail and exact inputs — everything the canonical
// merge and reproducer-artifact saving consume.  Trials skipped by
// early-stop (and units of instances whose setup failed) are written as
// explicit "not-run" records, so a complete shard always carries exactly
// `unit_end - unit_begin` record lines and coverage validation is a count,
// not a guess.
//
// Re-run determinism: records are pure functions of the job, and
// checkpoints land on the same interval grid whatever the interruption /
// resume history, so two complete record files of the same shard are
// byte-identical — the property the coordinator (src/coord) exploits to
// cross-check duplicate completions of a re-issued shard.  The trailer is
// a pure function of the preceding bytes, so it preserves that property.
#pragma once

/// \file
/// Shard record streams: append-only writer with fsync'd checkpoints,
/// atomic first-checkpoint publication and per-line CRC32C + stream
/// trailer; verifying reader with a resume point; tolerant scanner for
/// `ffaudit fsck`.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/report.h"
#include "shard/manifest.h"

namespace ff::shard {

/// Append-only writer of one shard's record stream.  Record writes are
/// buffered in user space and flushed (write + fsync) by checkpoint(); a
/// crash between checkpoints loses at most one chunk.  The stream lives at
/// `<path>.tmp` until the first checkpoint atomically renames it to
/// `path` — a visible record file therefore always contains at least one
/// durable checkpoint.  Every line is written with its CRC32C field, and
/// the checkpoint that reaches `unit_end` automatically appends the stream
/// trailer.
class RecordWriter {
public:
    /// Fresh stream: creates/truncates `path + ".tmp"` and writes the
    /// header line.  The file appears at `path` at the first checkpoint().
    static RecordWriter create(const std::string& path, const ShardManifest& manifest);

    /// Resume: truncates the published `path` to `resume_offset` (the byte
    /// offset just past the last checkpoint line, from read_record_file) —
    /// dropping any partially written chunk — and appends after it.
    /// `unit_end` comes from the manifest and `records_so_far` is the
    /// number of record lines in the retained prefix
    /// (`checkpoint - unit_begin`); both re-arm the trailer bookkeeping,
    /// and the retained bytes are re-read to re-seed the rolling stream
    /// digest so a resumed stream stays byte-identical to an uninterrupted
    /// one.
    static RecordWriter resume(const std::string& path, std::int64_t resume_offset,
                               std::int64_t unit_end, std::int64_t records_so_far);

    RecordWriter(RecordWriter&& other) noexcept;
    RecordWriter& operator=(RecordWriter&& other) noexcept;
    RecordWriter(const RecordWriter&) = delete;
    RecordWriter& operator=(const RecordWriter&) = delete;
    ~RecordWriter();

    /// Appends one trial slot at flat unit index `unit` (buffered).
    void write_record(std::int64_t unit, const core::TrialRecord& record);

    /// Makes every unit in [unit_begin, completed) durable: writes + fsyncs
    /// the buffered records, then writes + fsyncs the checkpoint line (two
    /// fsyncs, so the checkpoint can never be durable above unsynced
    /// records), then — on the first checkpoint — atomically renames the
    /// `.tmp` stream to its real path and fsyncs the directory.  The final
    /// checkpoint (`completed == unit_end`) also writes the stream trailer.
    void checkpoint(std::int64_t completed);

    /// Writes the stream trailer without a new checkpoint — for resuming a
    /// stream whose final checkpoint is durable but whose trailer was torn
    /// off by a crash.  No-op when the trailer was already written.
    void finish();

    /// Appends raw bytes without a newline, checkpoint or fsync — a test
    /// hook that simulates a process killed mid-write (torn final line).
    void append_raw(const std::string& bytes);

private:
    RecordWriter(int fd, std::string path, bool published)
        : fd_(fd), path_(std::move(path)), published_(published) {}
    void write_line(const common::Json& line);  ///< checksum + digest + buffer
    void write_trailer();
    void buffered_write(const std::string& bytes);
    void flush();  ///< write(2) the buffer; no fsync.
    void sync();   ///< fsync(2) the stream.
    void publish();  ///< rename .tmp -> path + directory fsync.

    int fd_ = -1;           ///< POSIX descriptor of the stream.
    std::string path_;      ///< Published path (stream is at path_ + ".tmp" until then).
    bool published_ = false;  ///< Whether the stream is visible at path_.
    std::string buffer_;    ///< Pending bytes since the last flush.
    std::int64_t unit_end_ = 0;       ///< Shard range end; arms the trailer.
    std::int64_t record_count_ = 0;   ///< Record lines written (incl. resumed prefix).
    std::uint32_t digest_ = 0;        ///< Rolling CRC32C of all stream bytes so far.
    bool trailer_written_ = false;
};

/// Parsed view of one shard record file.
struct ShardRecordFile {
    ShardManifest manifest;      ///< From the header line.
    std::int64_t checkpoint = 0;  ///< Units [unit_begin, checkpoint) are durable.
    /// Byte offset just past the last checkpoint line (or the header when
    /// none; past the trailer when present) — where RecordWriter::resume
    /// truncates to.
    std::int64_t resume_offset = 0;
    /// (unit, record) pairs covered by the last checkpoint, ascending by
    /// unit.  Record lines past the checkpoint (an interrupted chunk) are
    /// dropped: their chunk never completed, so siblings may be missing.
    std::vector<std::pair<std::int64_t, core::TrialRecord>> records;
    /// Whether the verified stream trailer was present.
    bool has_trailer = false;

    /// Whether the shard ran to the end of its range and the stream is
    /// sealed by its trailer.
    bool complete() const { return checkpoint == manifest.unit_end && has_trailer; }
};

/// How scan_record_file classified the first defect it hit.
enum class ScanErrorKind {
    None,       ///< No hard corruption (the stream may still be torn).
    Parse,      ///< Malformed JSON / format violation -> common::FileParseError.
    Integrity,  ///< Checksum, digest or trailer violation -> common::IntegrityError.
};

/// Result of the tolerant scan behind `ffaudit fsck`: the longest valid
/// prefix plus a classification of whatever stopped the scan.
struct RecordScan {
    ShardRecordFile file;  ///< Valid prefix (records resized to the checkpoint).
    bool have_header = false;
    /// A final line missing its newline or unparseable — the signature of a
    /// mid-write kill.  Tolerated by the strict reader; reported by fsck.
    bool torn_tail = false;
    int torn_line = 0;           ///< 1-based line of the tear (0 = none).
    ScanErrorKind error_kind = ScanErrorKind::None;
    int error_line = 0;          ///< 1-based line of the corruption (0 = none).
    std::string error;           ///< Human detail of the corruption.
    std::int64_t lines = 0;      ///< Lines examined, including a bad one.

    /// Fully healthy: header present, no corruption, no tear.
    bool clean() const {
        return have_header && error_kind == ScanErrorKind::None && !torn_tail;
    }
};

/// Scans a shard record stream without throwing on corruption: consumes
/// lines until the first defect, classifying it instead of raising.  Still
/// throws common::Error when the file cannot be opened or read at all.
RecordScan scan_record_file(const std::string& path);

/// Reads a shard record stream, verifying every line checksum and — when
/// present — the stream trailer.  Tolerates a torn final line (truncated
/// by a kill mid-write) by stopping at the last intact checkpoint; throws
/// common::IntegrityError on a checksum/digest/trailer mismatch and
/// common::FileParseError — naming the file, the 1-based line and what was
/// expected — when the file is missing, has no parseable header, contains
/// malformed JSON before its final line, or violates the format (records
/// out of range/order, checkpoint without its records).
ShardRecordFile read_record_file(const std::string& path);

/// `ffaudit fsck --repair`: truncates `path` back to the last verifiable
/// prefix found by `scan` (its resume_offset; the whole file when no
/// header survived).  The result is a valid resumable stream — or an empty
/// file a fresh run recreates.  Returns the number of bytes removed.
std::int64_t repair_record_file(const std::string& path, const RecordScan& scan);

}  // namespace ff::shard
