// The shard record wire format: one append-only JSONL stream per shard.
//
// Line types (each a compact single-line JSON object):
//   {"type":"header","format":1,"manifest":{...}}       — first line
//   {"type":"record","unit":<u>,"rec":{...}}            — one trial slot
//   {"type":"checkpoint","completed":<u>}               — durability marker
//
// Records appear in ascending unit order.  A checkpoint line asserts that
// every unit in [manifest.unit_begin, completed) has a record line above
// it and has been fsync'd to disk; an interrupted shard resumes from its
// last checkpoint instead of restarting (the partially written chunk after
// it — including a torn final line from a mid-write kill — is discarded by
// truncation).  A shard is *complete* when its last checkpoint reaches
// manifest.unit_end.
//
// Durability (the checkpoint invariant): the writer streams to
// `<path>.tmp` and publishes the file under its real name by atomic rename
// at the first checkpoint, so a reader never observes a stream without a
// durable checkpoint.  Every checkpoint fsyncs twice — records first, then
// the checkpoint line — so a crash at any instant can never leave a
// durable checkpoint line above unsynced records.  Torn *tails* are
// recoverable; a checkpoint that lies about its prefix is impossible.
//
// The record payload is core::trial_record_to_json: kind, and for failing
// trials the verdict, detail and exact inputs — everything the canonical
// merge and reproducer-artifact saving consume.  Trials skipped by
// early-stop (and units of instances whose setup failed) are written as
// explicit "not-run" records, so a complete shard always carries exactly
// `unit_end - unit_begin` record lines and coverage validation is a count,
// not a guess.
//
// Re-run determinism: records are pure functions of the job, and
// checkpoints land on the same interval grid whatever the interruption /
// resume history, so two complete record files of the same shard are
// byte-identical — the property the coordinator (src/coord) exploits to
// cross-check duplicate completions of a re-issued shard.
#pragma once

/// \file
/// Shard record streams: append-only writer with fsync'd checkpoints and
/// atomic first-checkpoint publication, tolerant reader with a resume
/// point.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/report.h"
#include "shard/manifest.h"

namespace ff::shard {

/// Append-only writer of one shard's record stream.  Record writes are
/// buffered in user space and flushed (write + fsync) by checkpoint(); a
/// crash between checkpoints loses at most one chunk.  The stream lives at
/// `<path>.tmp` until the first checkpoint atomically renames it to
/// `path` — a visible record file therefore always contains at least one
/// durable checkpoint.
class RecordWriter {
public:
    /// Fresh stream: creates/truncates `path + ".tmp"` and writes the
    /// header line.  The file appears at `path` at the first checkpoint().
    static RecordWriter create(const std::string& path, const ShardManifest& manifest);

    /// Resume: truncates the published `path` to `resume_offset` (the byte
    /// offset just past the last checkpoint line, from read_record_file) —
    /// dropping any partially written chunk — and appends after it.
    static RecordWriter resume(const std::string& path, std::int64_t resume_offset);

    RecordWriter(RecordWriter&& other) noexcept;
    RecordWriter& operator=(RecordWriter&& other) noexcept;
    RecordWriter(const RecordWriter&) = delete;
    RecordWriter& operator=(const RecordWriter&) = delete;
    ~RecordWriter();

    /// Appends one trial slot at flat unit index `unit` (buffered).
    void write_record(std::int64_t unit, const core::TrialRecord& record);

    /// Makes every unit in [unit_begin, completed) durable: writes + fsyncs
    /// the buffered records, then writes + fsyncs the checkpoint line (two
    /// fsyncs, so the checkpoint can never be durable above unsynced
    /// records), then — on the first checkpoint — atomically renames the
    /// `.tmp` stream to its real path and fsyncs the directory.
    void checkpoint(std::int64_t completed);

    /// Appends raw bytes without a newline, checkpoint or fsync — a test
    /// hook that simulates a process killed mid-write (torn final line).
    void append_raw(const std::string& bytes);

private:
    RecordWriter(int fd, std::string path, bool published)
        : fd_(fd), path_(std::move(path)), published_(published) {}
    void buffered_write(const std::string& bytes);
    void flush();  ///< write(2) the buffer; no fsync.
    void sync();   ///< fsync(2) the stream.
    void publish();  ///< rename .tmp -> path + directory fsync.

    int fd_ = -1;           ///< POSIX descriptor of the stream.
    std::string path_;      ///< Published path (stream is at path_ + ".tmp" until then).
    bool published_ = false;  ///< Whether the stream is visible at path_.
    std::string buffer_;    ///< Pending bytes since the last flush.
};

/// Parsed view of one shard record file.
struct ShardRecordFile {
    ShardManifest manifest;      ///< From the header line.
    std::int64_t checkpoint = 0;  ///< Units [unit_begin, checkpoint) are durable.
    /// Byte offset just past the last checkpoint line (or the header when
    /// none) — where RecordWriter::resume truncates to.
    std::int64_t resume_offset = 0;
    /// (unit, record) pairs covered by the last checkpoint, ascending by
    /// unit.  Record lines past the checkpoint (an interrupted chunk) are
    /// dropped: their chunk never completed, so siblings may be missing.
    std::vector<std::pair<std::int64_t, core::TrialRecord>> records;

    /// Whether the shard ran to the end of its range.
    bool complete() const { return checkpoint == manifest.unit_end; }
};

/// Reads a shard record stream.  Tolerates a torn final line (truncated by
/// a kill mid-write) by stopping at the last intact checkpoint; throws
/// common::FileParseError — naming the file, the 1-based line and what was
/// expected — when the file is missing, has no parseable header, contains
/// malformed JSON before its final line, or violates the format (records
/// out of range/order, checkpoint without its records).
ShardRecordFile read_record_file(const std::string& path);

}  // namespace ff::shard
