// The shard record wire format: one append-only JSONL stream per shard.
//
// Line types (each a compact single-line JSON object):
//   {"type":"header","format":1,"manifest":{...}}       — first line
//   {"type":"record","unit":<u>,"rec":{...}}            — one trial slot
//   {"type":"checkpoint","completed":<u>}               — durability marker
//
// Records appear in ascending unit order.  A checkpoint line asserts that
// every unit in [manifest.unit_begin, completed) has a record line above
// it and has been flushed to disk; an interrupted shard resumes from its
// last checkpoint instead of restarting (the partially written chunk after
// it — including a torn final line from a mid-write kill — is discarded by
// truncation).  A shard is *complete* when its last checkpoint reaches
// manifest.unit_end.
//
// The record payload is core::trial_record_to_json: kind, and for failing
// trials the verdict, detail and exact inputs — everything the canonical
// merge and reproducer-artifact saving consume.  Trials skipped by
// early-stop (and units of instances whose setup failed) are written as
// explicit "not-run" records, so a complete shard always carries exactly
// `unit_end - unit_begin` record lines and coverage validation is a count,
// not a guess.
#pragma once

/// \file
/// Shard record streams: append-only writer with checkpoints, tolerant
/// reader with a resume point.

#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/report.h"
#include "shard/manifest.h"

namespace ff::shard {

/// Append-only writer of one shard's record stream.  All writes go through
/// the filesystem page cache until checkpoint(), which flushes — a crash
/// between checkpoints loses at most one chunk.
class RecordWriter {
public:
    /// Fresh stream: truncates/creates `path` and writes the header line.
    static RecordWriter create(const std::string& path, const ShardManifest& manifest);

    /// Resume: truncates `path` to `resume_offset` (the byte offset just
    /// past the last checkpoint line, from read_record_file) — dropping any
    /// partially written chunk — and appends after it.
    static RecordWriter resume(const std::string& path, std::int64_t resume_offset);

    /// Appends one trial slot at flat unit index `unit`.
    void write_record(std::int64_t unit, const core::TrialRecord& record);

    /// Flushes everything written so far and appends a checkpoint line:
    /// every unit in [unit_begin, completed) is durably recorded.
    void checkpoint(std::int64_t completed);

    /// Appends raw bytes without a newline or flush — a test hook that
    /// simulates a process killed mid-write (torn final line).
    void append_raw(const std::string& bytes);

private:
    explicit RecordWriter(std::ofstream out) : out_(std::move(out)) {}
    std::ofstream out_;  ///< The append-only stream.
};

/// Parsed view of one shard record file.
struct ShardRecordFile {
    ShardManifest manifest;      ///< From the header line.
    std::int64_t checkpoint = 0;  ///< Units [unit_begin, checkpoint) are durable.
    /// Byte offset just past the last checkpoint line (or the header when
    /// none) — where RecordWriter::resume truncates to.
    std::int64_t resume_offset = 0;
    /// (unit, record) pairs covered by the last checkpoint, ascending by
    /// unit.  Record lines past the checkpoint (an interrupted chunk) are
    /// dropped: their chunk never completed, so siblings may be missing.
    std::vector<std::pair<std::int64_t, core::TrialRecord>> records;

    /// Whether the shard ran to the end of its range.
    bool complete() const { return checkpoint == manifest.unit_end; }
};

/// Reads a shard record stream.  Tolerates a torn final line (truncated by
/// a kill mid-write) by stopping at the last intact checkpoint; throws
/// common::Error when the file is missing, has no parseable header, or
/// violates the format (records out of range/order, checkpoint without its
/// records).
ShardRecordFile read_record_file(const std::string& path);

}  // namespace ff::shard
