#include "shard/records.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/checksum.h"
#include "common/error.h"
#include "core/testcase_io.h"

namespace ff::shard {

using common::Json;

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw common::Error(what + ": " + std::strerror(errno));
}

void write_all(int fd, const char* data, std::size_t size, const std::string& path) {
    while (size > 0) {
        const ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno("write failed on record stream " + path);
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
}

/// fsync of the containing directory, so a just-renamed file survives a
/// crash of the directory entry itself.
void sync_parent_dir(const std::string& path) {
    const std::filesystem::path parent = std::filesystem::path(path).parent_path();
    const std::string dir = parent.empty() ? "." : parent.string();
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return;  // best effort: some filesystems refuse directory fds
    ::fsync(fd);
    ::close(fd);
}

/// The per-line checksum travels as the line's final field:
///   {...original fields...,"crc":"xxxxxxxx"}
/// and covers the line with that splice removed — i.e. exactly the bytes
/// Json::dump produced.  Splicing raw text (instead of adding a "crc" key
/// to the object) matters because Json::dump orders keys alphabetically:
/// re-serializing with the field present would move it, so verification is
/// positional suffix arithmetic on the raw line, never a re-serialization.
constexpr std::size_t kCrcSuffixBytes = 18;  // strlen(",\"crc\":\"xxxxxxxx\"}")

std::string checksummed_line(const Json& j) {
    std::string dump = j.dump();
    const std::uint32_t crc = common::crc32c(dump);
    dump.insert(dump.size() - 1, ",\"crc\":\"" + common::crc32c_hex(crc) + "\"");
    dump += '\n';
    return dump;
}

enum class LineCrc { Ok, Bad, Missing };

/// Verifies the trailing checksum field of one raw line (no newline).
LineCrc verify_line_crc(std::string_view line) {
    if (line.size() < kCrcSuffixBytes + 2 || line.back() != '}') return LineCrc::Missing;
    const std::string_view tail = line.substr(line.size() - kCrcSuffixBytes);
    if (tail.substr(0, 8) != ",\"crc\":\"" || tail[16] != '"') return LineCrc::Missing;
    std::uint32_t stored = 0;
    if (!common::crc32c_parse(tail.substr(8, 8), stored)) return LineCrc::Bad;
    std::string covered(line.substr(0, line.size() - kCrcSuffixBytes));
    covered += '}';
    return common::crc32c(covered) == stored ? LineCrc::Ok : LineCrc::Bad;
}

}  // namespace

RecordWriter RecordWriter::create(const std::string& path, const ShardManifest& manifest) {
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) throw_errno("cannot create record file " + tmp);
    RecordWriter writer(fd, path, /*published=*/false);
    writer.unit_end_ = manifest.unit_end;
    Json header = Json::object();
    header["type"] = "header";
    header["format"] = kFormatVersion;
    header["manifest"] = manifest.to_json();
    writer.write_line(header);
    writer.flush();
    return writer;
}

RecordWriter RecordWriter::resume(const std::string& path, std::int64_t resume_offset,
                                  std::int64_t unit_end, std::int64_t records_so_far) {
    // Re-seed the rolling stream digest from the bytes we keep, so the
    // eventual trailer is byte-identical to an uninterrupted run's.
    std::string prefix;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in) throw common::Error("cannot open record file for resume: " + path);
        prefix.resize(static_cast<std::size_t>(resume_offset));
        in.read(prefix.data(), resume_offset);
        if (in.gcount() != resume_offset) {
            throw common::Error("record file shrank below its resume offset: " + path);
        }
    }
    // Drop the interrupted chunk (and any torn final line) before
    // appending: the resumed run re-executes it, and duplicate record lines
    // would break the reader's ascending-unit invariant.
    const int fd = ::open(path.c_str(), O_WRONLY);
    if (fd < 0) throw_errno("cannot reopen record file for resume " + path);
    if (::ftruncate(fd, static_cast<off_t>(resume_offset)) != 0) {
        ::close(fd);
        throw_errno("cannot truncate record file " + path + " for resume");
    }
    if (::lseek(fd, 0, SEEK_END) < 0) {
        ::close(fd);
        throw_errno("cannot seek record file " + path);
    }
    RecordWriter writer(fd, path, /*published=*/true);
    writer.unit_end_ = unit_end;
    writer.record_count_ = records_so_far;
    writer.digest_ = common::crc32c(prefix);
    return writer;
}

RecordWriter::RecordWriter(RecordWriter&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      published_(other.published_),
      buffer_(std::move(other.buffer_)),
      unit_end_(other.unit_end_),
      record_count_(other.record_count_),
      digest_(other.digest_),
      trailer_written_(other.trailer_written_) {
    other.fd_ = -1;
}

RecordWriter& RecordWriter::operator=(RecordWriter&& other) noexcept {
    if (this != &other) {
        if (fd_ >= 0) ::close(fd_);
        fd_ = other.fd_;
        path_ = std::move(other.path_);
        published_ = other.published_;
        buffer_ = std::move(other.buffer_);
        unit_end_ = other.unit_end_;
        record_count_ = other.record_count_;
        digest_ = other.digest_;
        trailer_written_ = other.trailer_written_;
        other.fd_ = -1;
    }
    return *this;
}

RecordWriter::~RecordWriter() {
    if (fd_ >= 0) ::close(fd_);
}

void RecordWriter::write_line(const Json& line) {
    const std::string bytes = checksummed_line(line);
    digest_ = common::crc32c(bytes, digest_);
    buffered_write(bytes);
}

void RecordWriter::buffered_write(const std::string& bytes) {
    buffer_ += bytes;
    if (buffer_.size() >= 1 << 16) flush();
}

void RecordWriter::flush() {
    if (buffer_.empty()) return;
    write_all(fd_, buffer_.data(), buffer_.size(), path_);
    buffer_.clear();
}

void RecordWriter::sync() {
    if (::fsync(fd_) != 0) throw_errno("fsync failed on record stream " + path_);
}

void RecordWriter::publish() {
    const std::string tmp = path_ + ".tmp";
    if (::rename(tmp.c_str(), path_.c_str()) != 0)
        throw_errno("cannot publish record file " + path_);
    sync_parent_dir(path_);
    published_ = true;
}

void RecordWriter::write_record(std::int64_t unit, const core::TrialRecord& record) {
    Json line = Json::object();
    line["type"] = "record";
    line["unit"] = unit;
    line["rec"] = core::trial_record_to_json(record);
    write_line(line);
    ++record_count_;
}

void RecordWriter::write_trailer() {
    // The digest seals every byte *before* the trailer line — including
    // the final checkpoint — and is a pure function of them, so resumed
    // and uninterrupted runs produce byte-identical trailers.
    Json line = Json::object();
    line["type"] = "trailer";
    line["records"] = record_count_;
    line["digest"] = common::crc32c_hex(digest_);
    write_line(line);
    trailer_written_ = true;
}

void RecordWriter::checkpoint(std::int64_t completed) {
    // Records first, durably — only then the line that asserts they exist.
    flush();
    sync();
    Json line = Json::object();
    line["type"] = "checkpoint";
    line["completed"] = completed;
    write_line(line);
    if (completed == unit_end_ && !trailer_written_) write_trailer();
    flush();
    sync();
    if (!published_) publish();
}

void RecordWriter::finish() {
    if (trailer_written_) return;
    write_trailer();
    flush();
    sync();
}

void RecordWriter::append_raw(const std::string& bytes) {
    flush();
    write_all(fd_, bytes.data(), bytes.size(), path_);
}

RecordScan scan_record_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw common::Error("cannot open record file: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) throw common::Error("read failed on record file: " + path);
    const std::string text = buf.str();

    RecordScan scan;
    ShardRecordFile& file = scan.file;
    std::uint32_t digest = 0;  // rolling CRC32C of consumed bytes
    std::int64_t record_lines = 0;
    std::int64_t offset = 0;  // byte position of the current line's start
    int lineno = 0;
    std::size_t pos = 0;

    auto corrupt = [&](ScanErrorKind kind, int line, std::string detail) {
        scan.error_kind = kind;
        scan.error_line = line;
        scan.error = std::move(detail);
    };

    while (pos < text.size()) {
        const std::size_t nl = text.find('\n', pos);
        // A final line without its trailing newline is a torn write from an
        // interrupted process: everything from here on is discarded (the
        // resume path truncates it away).
        if (nl == std::string::npos) {
            scan.torn_tail = true;
            scan.torn_line = lineno + 1;
            ++scan.lines;
            break;
        }
        const std::string_view line(text.data() + pos, nl - pos);
        const bool last_line = nl + 1 >= text.size();
        ++lineno;
        scan.lines = lineno;
        const std::int64_t line_end = offset + static_cast<std::int64_t>(line.size()) + 1;

        // Bytes are verified before they are parsed: a flipped bit anywhere
        // in the line fails here, whether or not it kept the JSON valid.
        const LineCrc crc = verify_line_crc(line);
        if (crc == LineCrc::Bad) {
            corrupt(ScanErrorKind::Integrity, lineno,
                    "line checksum mismatch (the line's bytes are not the bytes that "
                    "were written)");
            break;
        }
        // A missing checksum before the header is handled below: the line
        // is parsed so a format-1 file fails with a readable version error
        // rather than a checksum complaint.
        if (crc == LineCrc::Missing && scan.have_header) {
            corrupt(ScanErrorKind::Integrity, lineno, "line is missing its checksum field");
            break;
        }

        Json j;
        try {
            j = Json::parse(line);
        } catch (const common::JsonParseError& e) {
            // Only the file's very last line may be torn (a mid-write
            // kill); malformed JSON with intact lines after it is
            // corruption and must be diagnosed, not silently dropped.
            if (last_line) {
                scan.torn_tail = true;
                scan.torn_line = lineno;
                break;
            }
            corrupt(ScanErrorKind::Parse, lineno,
                    e.detail() + " (column " + std::to_string(e.column()) + ")");
            break;
        }

        try {
            const std::string& type = common::json_string(j, "type");
            if (file.has_trailer) {
                corrupt(ScanErrorKind::Integrity, lineno, "data after the stream trailer");
                break;
            }
            if (type == "header") {
                if (scan.have_header) throw common::Error("duplicate header line");
                const std::int64_t format = common::json_int(j, "format");
                if (format != kFormatVersion)
                    throw common::Error("unsupported record format version " +
                                        std::to_string(format) + " (this build speaks " +
                                        std::to_string(kFormatVersion) + ")");
                if (crc == LineCrc::Missing)
                    throw common::IntegrityError(path, lineno,
                                                 "header line is missing its checksum field");
                file.manifest = ShardManifest::from_json(j.at("manifest"));
                file.checkpoint = file.manifest.unit_begin;
                file.resume_offset = line_end;
                scan.have_header = true;
            } else if (type == "record") {
                if (!scan.have_header) throw common::Error("record line before the header");
                const std::int64_t unit = common::json_int(j, "unit");
                const std::int64_t expected =
                    file.manifest.unit_begin + static_cast<std::int64_t>(file.records.size());
                if (unit != expected)
                    throw common::Error("record for unit " + std::to_string(unit) +
                                        " where unit " + std::to_string(expected) +
                                        " was expected");
                if (unit >= file.manifest.unit_end)
                    throw common::Error("record for unit " + std::to_string(unit) +
                                        " outside the shard range");
                file.records.emplace_back(unit, core::trial_record_from_json(j.at("rec")));
                ++record_lines;
            } else if (type == "checkpoint") {
                if (!scan.have_header) throw common::Error("checkpoint line before the header");
                const std::int64_t completed = common::json_int(j, "completed");
                const std::int64_t covered =
                    file.manifest.unit_begin + static_cast<std::int64_t>(file.records.size());
                if (completed != covered)
                    throw common::Error("checkpoint claims " + std::to_string(completed) +
                                        " units but records cover " + std::to_string(covered));
                file.checkpoint = completed;
                file.resume_offset = line_end;
            } else if (type == "trailer") {
                if (!scan.have_header) throw common::Error("trailer line before the header");
                if (file.checkpoint != file.manifest.unit_end)
                    throw common::IntegrityError(
                        path, lineno,
                        "trailer before the final checkpoint (checkpoint at " +
                            std::to_string(file.checkpoint) + " of " +
                            std::to_string(file.manifest.unit_end) + ")");
                const std::int64_t claimed = common::json_int(j, "records");
                if (claimed != record_lines)
                    throw common::IntegrityError(
                        path, lineno,
                        "trailer claims " + std::to_string(claimed) +
                            " record line(s) but the stream carries " +
                            std::to_string(record_lines));
                const std::string& hex = common::json_string(j, "digest");
                std::uint32_t stored = 0;
                if (!common::crc32c_parse(hex, stored) || stored != digest)
                    throw common::IntegrityError(
                        path, lineno,
                        "stream digest mismatch (trailer " + hex + ", stream " +
                            common::crc32c_hex(digest) + ") — a line was altered, "
                            "dropped or reordered");
                file.has_trailer = true;
                file.resume_offset = line_end;
            } else {
                throw common::Error("unknown line type '" + type +
                                    "' (expected header, record, checkpoint, or trailer)");
            }
        } catch (const common::IntegrityError& e) {
            // Strip the "path, line N: " prefix the exception type adds —
            // the scan stores the bare detail and re-prefixes on rethrow.
            std::string detail = e.what();
            const std::string prefix = path + ", line " + std::to_string(e.line()) + ": ";
            if (detail.rfind(prefix, 0) == 0) detail.erase(0, prefix.size());
            corrupt(ScanErrorKind::Integrity, e.line(), std::move(detail));
            break;
        } catch (const common::Error& e) {
            corrupt(ScanErrorKind::Parse, lineno, common::error_detail(e));
            break;
        }
        digest = common::crc32c(std::string_view(text.data() + pos, line.size() + 1), digest);
        offset = line_end;
        pos = nl + 1;
    }
    // Records past the last checkpoint belong to a chunk that never
    // completed — siblings may be missing, so none of them are durable.
    file.records.resize(static_cast<std::size_t>(
        std::max<std::int64_t>(0, file.checkpoint - file.manifest.unit_begin)));
    return scan;
}

ShardRecordFile read_record_file(const std::string& path) {
    RecordScan scan = scan_record_file(path);
    if (scan.error_kind == ScanErrorKind::Integrity)
        throw common::IntegrityError(path, scan.error_line, scan.error);
    if (scan.error_kind == ScanErrorKind::Parse)
        throw common::FileParseError(path, scan.error_line, scan.error);
    if (!scan.have_header)
        throw common::FileParseError(path, 0, "no record stream header (expected a first line "
                                              "{\"type\":\"header\",...})");
    return std::move(scan.file);
}

std::int64_t repair_record_file(const std::string& path, const RecordScan& scan) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec) throw common::Error("cannot stat record file: " + path + ": " + ec.message());
    const std::int64_t keep = scan.have_header ? scan.file.resume_offset : 0;
    if (static_cast<std::int64_t>(size) < keep)
        throw common::Error("record file shrank below its verified prefix: " + path);
    if (::truncate(path.c_str(), static_cast<off_t>(keep)) != 0)
        throw_errno("cannot repair (truncate) record file " + path);
    return static_cast<std::int64_t>(size) - keep;
}

}  // namespace ff::shard
