#include "shard/records.h"

#include <filesystem>

#include "common/error.h"
#include "core/testcase_io.h"

namespace ff::shard {

using common::Json;

RecordWriter RecordWriter::create(const std::string& path, const ShardManifest& manifest) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw common::Error("cannot create record file: " + path);
    Json header = Json::object();
    header["type"] = "header";
    header["format"] = kFormatVersion;
    header["manifest"] = manifest.to_json();
    out << header.dump() << '\n';
    out.flush();
    if (!out) throw common::Error("write failed on record file: " + path);
    return RecordWriter(std::move(out));
}

RecordWriter RecordWriter::resume(const std::string& path, std::int64_t resume_offset) {
    // Drop the interrupted chunk (and any torn final line) before
    // appending: the resumed run re-executes it, and duplicate record lines
    // would break the reader's ascending-unit invariant.
    std::error_code ec;
    std::filesystem::resize_file(path, static_cast<std::uintmax_t>(resume_offset), ec);
    if (ec)
        throw common::Error("cannot truncate record file " + path + " for resume: " +
                            ec.message());
    std::ofstream out(path, std::ios::binary | std::ios::app);
    if (!out) throw common::Error("cannot reopen record file for resume: " + path);
    return RecordWriter(std::move(out));
}

void RecordWriter::write_record(std::int64_t unit, const core::TrialRecord& record) {
    Json line = Json::object();
    line["type"] = "record";
    line["unit"] = unit;
    line["rec"] = core::trial_record_to_json(record);
    out_ << line.dump() << '\n';
    if (!out_) throw common::Error("write failed on record stream");
}

void RecordWriter::checkpoint(std::int64_t completed) {
    Json line = Json::object();
    line["type"] = "checkpoint";
    line["completed"] = completed;
    out_ << line.dump() << '\n';
    out_.flush();
    if (!out_) throw common::Error("checkpoint write failed on record stream");
}

void RecordWriter::append_raw(const std::string& bytes) {
    out_ << bytes;
    out_.flush();
}

ShardRecordFile read_record_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw common::Error("cannot open record file: " + path);

    ShardRecordFile file;
    bool have_header = false;
    std::int64_t offset = 0;  // byte position of the current line's start
    std::string line;
    while (std::getline(in, line)) {
        // A final line without its trailing newline is a torn write from an
        // interrupted process: everything from here on is discarded (the
        // resume path truncates it away).
        if (in.eof()) break;
        const std::int64_t line_end = offset + static_cast<std::int64_t>(line.size()) + 1;
        Json j;
        try {
            j = Json::parse(line);
        } catch (const std::exception&) {
            break;  // torn/corrupt tail: stop at the last intact checkpoint
        }
        const std::string& type = j.at("type").as_string();
        if (type == "header") {
            if (have_header) throw common::Error(path + ": duplicate header line");
            if (j.at("format").as_int() != kFormatVersion)
                throw common::Error(path + ": unsupported record format version " +
                                    std::to_string(j.at("format").as_int()));
            file.manifest = ShardManifest::from_json(j.at("manifest"));
            file.checkpoint = file.manifest.unit_begin;
            file.resume_offset = line_end;
            have_header = true;
        } else if (type == "record") {
            if (!have_header) throw common::Error(path + ": record line before header");
            const std::int64_t unit = j.at("unit").as_int();
            const std::int64_t expected =
                file.manifest.unit_begin + static_cast<std::int64_t>(file.records.size());
            if (unit != expected)
                throw common::Error(path + ": record for unit " + std::to_string(unit) +
                                    " where unit " + std::to_string(expected) + " was expected");
            if (unit >= file.manifest.unit_end)
                throw common::Error(path + ": record for unit " + std::to_string(unit) +
                                    " outside the shard range");
            file.records.emplace_back(unit, core::trial_record_from_json(j.at("rec")));
        } else if (type == "checkpoint") {
            if (!have_header) throw common::Error(path + ": checkpoint line before header");
            const std::int64_t completed = j.at("completed").as_int();
            const std::int64_t covered =
                file.manifest.unit_begin + static_cast<std::int64_t>(file.records.size());
            if (completed != covered)
                throw common::Error(path + ": checkpoint claims " + std::to_string(completed) +
                                    " units but records cover " + std::to_string(covered));
            file.checkpoint = completed;
            file.resume_offset = line_end;
        } else {
            throw common::Error(path + ": unknown line type '" + type + "'");
        }
        offset = line_end;
    }
    if (!have_header) throw common::Error(path + ": no record stream header");
    // Records past the last checkpoint belong to a chunk that never
    // completed — siblings may be missing, so none of them are durable.
    file.records.resize(static_cast<std::size_t>(file.checkpoint - file.manifest.unit_begin));
    return file;
}

}  // namespace ff::shard
