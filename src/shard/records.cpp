#include "shard/records.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "core/testcase_io.h"

namespace ff::shard {

using common::Json;

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw common::Error(what + ": " + std::strerror(errno));
}

void write_all(int fd, const char* data, std::size_t size, const std::string& path) {
    while (size > 0) {
        const ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno("write failed on record stream " + path);
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
}

/// fsync of the containing directory, so a just-renamed file survives a
/// crash of the directory entry itself.
void sync_parent_dir(const std::string& path) {
    const std::filesystem::path parent = std::filesystem::path(path).parent_path();
    const std::string dir = parent.empty() ? "." : parent.string();
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return;  // best effort: some filesystems refuse directory fds
    ::fsync(fd);
    ::close(fd);
}

}  // namespace

RecordWriter RecordWriter::create(const std::string& path, const ShardManifest& manifest) {
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) throw_errno("cannot create record file " + tmp);
    RecordWriter writer(fd, path, /*published=*/false);
    Json header = Json::object();
    header["type"] = "header";
    header["format"] = kFormatVersion;
    header["manifest"] = manifest.to_json();
    writer.buffered_write(header.dump() + '\n');
    writer.flush();
    return writer;
}

RecordWriter RecordWriter::resume(const std::string& path, std::int64_t resume_offset) {
    // Drop the interrupted chunk (and any torn final line) before
    // appending: the resumed run re-executes it, and duplicate record lines
    // would break the reader's ascending-unit invariant.
    const int fd = ::open(path.c_str(), O_WRONLY);
    if (fd < 0) throw_errno("cannot reopen record file for resume " + path);
    if (::ftruncate(fd, static_cast<off_t>(resume_offset)) != 0) {
        ::close(fd);
        throw_errno("cannot truncate record file " + path + " for resume");
    }
    if (::lseek(fd, 0, SEEK_END) < 0) {
        ::close(fd);
        throw_errno("cannot seek record file " + path);
    }
    return RecordWriter(fd, path, /*published=*/true);
}

RecordWriter::RecordWriter(RecordWriter&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      published_(other.published_),
      buffer_(std::move(other.buffer_)) {
    other.fd_ = -1;
}

RecordWriter& RecordWriter::operator=(RecordWriter&& other) noexcept {
    if (this != &other) {
        if (fd_ >= 0) ::close(fd_);
        fd_ = other.fd_;
        path_ = std::move(other.path_);
        published_ = other.published_;
        buffer_ = std::move(other.buffer_);
        other.fd_ = -1;
    }
    return *this;
}

RecordWriter::~RecordWriter() {
    if (fd_ >= 0) ::close(fd_);
}

void RecordWriter::buffered_write(const std::string& bytes) {
    buffer_ += bytes;
    if (buffer_.size() >= 1 << 16) flush();
}

void RecordWriter::flush() {
    if (buffer_.empty()) return;
    write_all(fd_, buffer_.data(), buffer_.size(), path_);
    buffer_.clear();
}

void RecordWriter::sync() {
    if (::fsync(fd_) != 0) throw_errno("fsync failed on record stream " + path_);
}

void RecordWriter::publish() {
    const std::string tmp = path_ + ".tmp";
    if (::rename(tmp.c_str(), path_.c_str()) != 0)
        throw_errno("cannot publish record file " + path_);
    sync_parent_dir(path_);
    published_ = true;
}

void RecordWriter::write_record(std::int64_t unit, const core::TrialRecord& record) {
    Json line = Json::object();
    line["type"] = "record";
    line["unit"] = unit;
    line["rec"] = core::trial_record_to_json(record);
    buffered_write(line.dump() + '\n');
}

void RecordWriter::checkpoint(std::int64_t completed) {
    // Records first, durably — only then the line that asserts they exist.
    flush();
    sync();
    Json line = Json::object();
    line["type"] = "checkpoint";
    line["completed"] = completed;
    buffered_write(line.dump() + '\n');
    flush();
    sync();
    if (!published_) publish();
}

void RecordWriter::append_raw(const std::string& bytes) {
    flush();
    write_all(fd_, bytes.data(), bytes.size(), path_);
}

ShardRecordFile read_record_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw common::Error("cannot open record file: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) throw common::Error("read failed on record file: " + path);
    const std::string text = buf.str();

    ShardRecordFile file;
    bool have_header = false;
    std::int64_t offset = 0;  // byte position of the current line's start
    int lineno = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t nl = text.find('\n', pos);
        // A final line without its trailing newline is a torn write from an
        // interrupted process: everything from here on is discarded (the
        // resume path truncates it away).
        if (nl == std::string::npos) break;
        const std::string_view line(text.data() + pos, nl - pos);
        const bool last_line = nl + 1 >= text.size();
        ++lineno;
        const std::int64_t line_end = offset + static_cast<std::int64_t>(line.size()) + 1;
        Json j;
        try {
            j = Json::parse(line);
        } catch (const common::JsonParseError& e) {
            // Only the file's very last line may be torn (a mid-write
            // kill); malformed JSON with intact lines after it is
            // corruption and must be diagnosed, not silently dropped.
            if (last_line) break;
            throw common::FileParseError(
                path, lineno, e.detail() + " (column " + std::to_string(e.column()) + ")");
        }
        try {
            const std::string& type = common::json_string(j, "type");
            if (type == "header") {
                if (have_header) throw common::Error("duplicate header line");
                const std::int64_t format = common::json_int(j, "format");
                if (format != kFormatVersion)
                    throw common::Error("unsupported record format version " +
                                        std::to_string(format) + " (this build speaks " +
                                        std::to_string(kFormatVersion) + ")");
                file.manifest = ShardManifest::from_json(j.at("manifest"));
                file.checkpoint = file.manifest.unit_begin;
                file.resume_offset = line_end;
                have_header = true;
            } else if (type == "record") {
                if (!have_header) throw common::Error("record line before the header");
                const std::int64_t unit = common::json_int(j, "unit");
                const std::int64_t expected =
                    file.manifest.unit_begin + static_cast<std::int64_t>(file.records.size());
                if (unit != expected)
                    throw common::Error("record for unit " + std::to_string(unit) +
                                        " where unit " + std::to_string(expected) +
                                        " was expected");
                if (unit >= file.manifest.unit_end)
                    throw common::Error("record for unit " + std::to_string(unit) +
                                        " outside the shard range");
                file.records.emplace_back(unit, core::trial_record_from_json(j.at("rec")));
            } else if (type == "checkpoint") {
                if (!have_header) throw common::Error("checkpoint line before the header");
                const std::int64_t completed = common::json_int(j, "completed");
                const std::int64_t covered =
                    file.manifest.unit_begin + static_cast<std::int64_t>(file.records.size());
                if (completed != covered)
                    throw common::Error("checkpoint claims " + std::to_string(completed) +
                                        " units but records cover " + std::to_string(covered));
                file.checkpoint = completed;
                file.resume_offset = line_end;
            } else {
                throw common::Error("unknown line type '" + type +
                                    "' (expected header, record, or checkpoint)");
            }
        } catch (const common::FileParseError&) {
            throw;
        } catch (const common::Error& e) {
            throw common::FileParseError(path, lineno, common::error_detail(e));
        }
        offset = line_end;
        pos = nl + 1;
    }
    if (!have_header)
        throw common::FileParseError(path, 0, "no record stream header (expected a first line "
                                              "{\"type\":\"header\",...})");
    // Records past the last checkpoint belong to a chunk that never
    // completed — siblings may be missing, so none of them are durable.
    file.records.resize(static_cast<std::size_t>(file.checkpoint - file.manifest.unit_begin));
    return file;
}

}  // namespace ff::shard
