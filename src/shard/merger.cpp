#include "shard/merger.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "core/report.h"
#include "core/testcase_io.h"
#include "shard/records.h"

namespace ff::shard {

using common::Json;

MergeResult merge_shards(const std::vector<std::string>& record_paths,
                         const MergeOptions& options) {
    if (record_paths.empty()) throw common::Error("no shard record files to merge");

    std::vector<ShardRecordFile> files;
    files.reserve(record_paths.size());
    for (const std::string& path : record_paths) files.push_back(read_record_file(path));

    // One job, complete shards.
    const std::string job_key = files.front().manifest.job.key();
    for (std::size_t i = 0; i < files.size(); ++i) {
        if (files[i].manifest.job.key() != job_key)
            throw common::Error(record_paths[i] + ": shard belongs to a different job than " +
                                record_paths[0]);
        if (!files[i].complete())
            throw common::Error(record_paths[i] + ": shard is incomplete (checkpoint at " +
                                std::to_string(files[i].checkpoint) + " of [" +
                                std::to_string(files[i].manifest.unit_begin) + ", " +
                                std::to_string(files[i].manifest.unit_end) +
                                ")) — resume it with `ffaudit run-shard` before merging");
    }

    // Arrival order is irrelevant: sort by range and demand an exact tiling
    // of the unit space.
    std::sort(files.begin(), files.end(), [](const ShardRecordFile& a, const ShardRecordFile& b) {
        return a.manifest.unit_begin < b.manifest.unit_begin;
    });
    const std::int64_t total =
        files.front().manifest.instance_count *
        static_cast<std::int64_t>(std::max(files.front().manifest.job.max_trials, 0));
    std::int64_t next = 0;
    for (const ShardRecordFile& file : files) {
        if (file.manifest.unit_begin > next)
            throw common::Error("coverage gap: units [" + std::to_string(next) + ", " +
                                std::to_string(file.manifest.unit_begin) +
                                ") are in no shard record file");
        if (file.manifest.unit_begin < next)
            throw common::Error("overlap: unit " + std::to_string(file.manifest.unit_begin) +
                                " appears in more than one shard record file");
        next = file.manifest.unit_end;
    }
    if (next != total)
        throw common::Error("coverage gap: units [" + std::to_string(next) + ", " +
                            std::to_string(total) + ") are in no shard record file");

    // Reconstruct the audit and inject every record into its canonical
    // slot; finalize() then performs the same merge + artifact saving the
    // single-process audit does.
    const JobSpec& job = files.front().manifest.job;
    core::FuzzConfig config = job_fuzz_config(job);
    config.num_threads = options.num_threads;
    config.artifact_dir = options.artifact_dir;
    const ir::SDFG program = load_job_program(job);
    core::Fuzzer fuzzer(config);
    core::PreparedAudit audit = fuzzer.prepare(program, job_passes(job));
    if (static_cast<std::int64_t>(audit.instance_count()) != files.front().manifest.instance_count)
        throw common::Error("prepared " + std::to_string(audit.instance_count()) +
                            " instances but the shard files say " +
                            std::to_string(files.front().manifest.instance_count) +
                            " — merger and planner disagree about the job");

    MergeResult result;
    result.shard_files = files.size();
    for (ShardRecordFile& file : files) {
        for (auto& [unit, record] : file.records) {
            audit.set_record(unit, std::move(record));
            ++result.records;
        }
    }
    result.reports = audit.finalize();
    if (job.feedback) result.corpus = audit.corpus();
    result.job = job;
    return result;
}

void canonicalize_report(core::FuzzReport& report) {
    report.seconds = 0.0;
    report.trials_per_second = 0.0;
    report.threads = 0;
    const std::size_t slash = report.artifact_path.find_last_of('/');
    if (slash != std::string::npos) report.artifact_path = report.artifact_path.substr(slash + 1);
}

Json canonical_report_document(std::vector<core::FuzzReport> reports) {
    for (core::FuzzReport& report : reports) canonicalize_report(report);
    Json doc = Json::object();
    doc["format_version"] = kFormatVersion;
    Json arr = Json::array();
    for (const core::FuzzReport& report : reports) arr.push_back(core::fuzz_report_to_json(report));
    doc["reports"] = std::move(arr);
    doc["table"] = core::audit_table(core::summarize_audit(reports));
    return doc;
}

}  // namespace ff::shard
