#include "shard/manifest.h"

#include <memory>

#include "common/error.h"
#include "ir/serialize.h"
#include "transforms/map_tiling.h"
#include "transforms/registry.h"
#include "workloads/npbench.h"

namespace ff::shard {

using common::Json;

Json JobSpec::to_json() const {
    Json j = Json::object();
    j["workload"] = workload;
    j["sdfg_path"] = sdfg_path;
    j["passes"] = passes;
    j["seed"] = static_cast<std::int64_t>(seed);
    j["max_trials"] = max_trials;
    j["size_max"] = size_max;
    j["threshold"] = threshold;
    j["max_state_transitions"] = max_state_transitions;
    j["max_points"] = max_points;
    j["max_alloc_bytes"] = max_alloc_bytes;
    j["use_mincut"] = use_mincut;
    // Conditional keys: feedback-off job specs (and their key() identity
    // strings) keep their exact historical bytes.
    if (coverage || feedback) j["coverage"] = true;
    if (feedback) {
        j["feedback"] = true;
        j["generation_size"] = generation_size;
    }
    Json defs = Json::object();
    for (const auto& [name, value] : defaults) defs[name] = value;
    j["defaults"] = std::move(defs);
    return j;
}

JobSpec JobSpec::from_json(const Json& j) {
    JobSpec spec;
    spec.workload = common::json_string(j, "workload");
    spec.sdfg_path = common::json_string(j, "sdfg_path");
    spec.passes = common::json_string(j, "passes");
    spec.seed = static_cast<std::uint64_t>(common::json_int(j, "seed"));
    spec.max_trials = static_cast<int>(common::json_int(j, "max_trials"));
    spec.size_max = common::json_int(j, "size_max");
    spec.threshold = common::json_double(j, "threshold");
    spec.max_state_transitions = common::json_int(j, "max_state_transitions");
    spec.max_points = common::json_int(j, "max_points");
    spec.max_alloc_bytes = common::json_int(j, "max_alloc_bytes");
    spec.use_mincut = common::json_bool(j, "use_mincut");
    spec.coverage = j.contains("coverage") && common::json_bool(j, "coverage");
    spec.feedback = j.contains("feedback") && common::json_bool(j, "feedback");
    if (spec.feedback) spec.coverage = true;
    if (j.contains("generation_size"))
        spec.generation_size = static_cast<int>(common::json_int(j, "generation_size"));
    for (const auto& [name, value] : common::json_object_field(j, "defaults")) {
        if (!value.is_number())
            throw common::ParseError("defaults entry '" + name + "': expected an integer, got " +
                                     common::json_type_name(value));
        spec.defaults[name] = value.as_int();
    }
    return spec;
}

ir::SDFG load_job_program(const JobSpec& job) {
    if (!job.workload.empty() && !job.sdfg_path.empty())
        throw common::Error("job specifies both a workload name and an SDFG path");
    if (!job.workload.empty()) return workloads::build_npbench_kernel(job.workload);
    if (job.sdfg_path.empty()) throw common::Error("job specifies neither workload nor SDFG path");
    return ir::sdfg_from_json(Json::parse_file(job.sdfg_path));
}

std::vector<xform::TransformationPtr> job_passes(const JobSpec& job) {
    if (job.passes == "table2") return xform::builtin_transformations({.table2_bugs = true});
    if (job.passes == "correct") return xform::builtin_transformations({.table2_bugs = false});
    if (job.passes == "tiling") {
        std::vector<xform::TransformationPtr> passes;
        passes.push_back(std::make_unique<xform::MapTiling>(4, xform::MapTiling::Variant::Correct));
        return passes;
    }
    throw common::Error("unknown pass set: " + job.passes +
                        " (expected table2, correct, or tiling)");
}

core::FuzzConfig job_fuzz_config(const JobSpec& job) {
    core::FuzzConfig config;
    config.max_trials = job.max_trials;
    config.sampler.seed = job.seed;
    config.sampler.size_max = job.size_max;
    config.diff.threshold = job.threshold;
    if (job.max_state_transitions > 0)
        config.diff.exec.max_state_transitions = job.max_state_transitions;
    if (job.max_points > 0) config.diff.exec.max_points = job.max_points;
    if (job.max_alloc_bytes > 0) config.diff.exec.max_alloc_bytes = job.max_alloc_bytes;
    config.use_mincut = job.use_mincut;
    config.coverage = job.coverage;
    config.feedback = job.feedback;
    config.generation_size = job.generation_size;
    config.cutout.defaults = job.defaults;
    return config;
}

Json ShardManifest::to_json() const {
    Json j = Json::object();
    j["format_version"] = format_version;
    j["job"] = job.to_json();
    j["shard_index"] = shard_index;
    j["shard_count"] = shard_count;
    j["unit_begin"] = unit_begin;
    j["unit_end"] = unit_end;
    j["instance_count"] = instance_count;
    j["checkpoint_interval"] = checkpoint_interval;
    return j;
}

ShardManifest ShardManifest::from_json(const Json& j) {
    ShardManifest m;
    m.format_version = static_cast<int>(common::json_int(j, "format_version"));
    if (m.format_version != kFormatVersion)
        throw common::Error("unsupported shard format version " +
                            std::to_string(m.format_version) + " (this build speaks " +
                            std::to_string(kFormatVersion) + ")");
    try {
        m.job = JobSpec::from_json(j.at("job"));
    } catch (const common::ParseError& e) {
        throw common::ParseError("job: " + common::error_detail(e));
    }
    m.shard_index = static_cast<int>(common::json_int(j, "shard_index"));
    m.shard_count = static_cast<int>(common::json_int(j, "shard_count"));
    m.unit_begin = common::json_int(j, "unit_begin");
    m.unit_end = common::json_int(j, "unit_end");
    m.instance_count = common::json_int(j, "instance_count");
    m.checkpoint_interval = static_cast<int>(common::json_int(j, "checkpoint_interval"));
    return m;
}

ShardManifest load_manifest_file(const std::string& path) {
    // parse_file already yields file+line for JSON syntax errors; field and
    // shape errors from from_json gain the file name here.
    try {
        return ShardManifest::from_json(Json::parse_file(path));
    } catch (const common::FileParseError&) {
        throw;
    } catch (const common::ParseError& e) {
        throw common::FileParseError(path, 0, common::error_detail(e));
    }
}

std::vector<ShardManifest> plan_shards(const JobSpec& job, const ir::SDFG& program,
                                       int shard_count, int checkpoint_interval) {
    if (shard_count < 1) throw common::Error("shard count must be >= 1");
    // Match discovery alone fixes the instance count (and its order fixes
    // the canonical instance indexing) — the expensive per-instance cutout
    // pipelines are left to the shard runners.
    std::int64_t instances = 0;
    for (const auto& pass : job_passes(job)) instances += pass->find_matches(program).size();
    const std::int64_t units = instances * std::max(job.max_trials, 0);

    std::vector<ShardManifest> shards;
    shards.reserve(static_cast<std::size_t>(shard_count));
    const std::int64_t base = units / shard_count;
    const std::int64_t extra = units % shard_count;
    std::int64_t next = 0;
    for (int i = 0; i < shard_count; ++i) {
        ShardManifest m;
        m.job = job;
        m.shard_index = i;
        m.shard_count = shard_count;
        m.unit_begin = next;
        next += base + (i < extra ? 1 : 0);
        m.unit_end = next;
        m.instance_count = instances;
        m.checkpoint_interval = std::max(checkpoint_interval, 1);
        shards.push_back(std::move(m));
    }
    return shards;
}

}  // namespace ff::shard
