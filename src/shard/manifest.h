// Shard manifests: the self-contained description of one slice of a
// distributed audit.
//
// A *job* fixes everything the determinism contract keys results on — the
// program (a named workload or a serialized SDFG), the pass set, the
// sampler seed and the trial budget — so any process that loads the same
// JobSpec prepares byte-identical instances and agrees on the flat unit
// space `unit = instance * max_trials + trial`.  The planner partitions
// that space into contiguous ranges; one ShardManifest per range is all a
// worker machine needs (`ffaudit run-shard`).  Execution-only knobs
// (threads, chunking, specialization) are deliberately NOT part of the
// manifest: the contract guarantees they cannot change results.
#pragma once

/// \file
/// JobSpec / ShardManifest wire structures and the deterministic shard
/// planner.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/fuzzer.h"
#include "ir/sdfg.h"
#include "transforms/transformation.h"

namespace ff::shard {

/// Version of the manifest and record wire format.  Readers reject files
/// from a different major version instead of mis-parsing them.  Version 2
/// added the per-line "crc" checksum field and the record-stream trailer
/// (see shard/records.h).
constexpr int kFormatVersion = 2;

/// Everything that identifies one audit job across processes.  Two
/// processes with equal JobSpecs prepare identical instances and sample
/// identical trial inputs (docs/ARCHITECTURE.md "Sharded execution").
struct JobSpec {
    /// Named workload (an npbench kernel, see workloads::npbench_kernel_names).
    /// Mutually exclusive with `sdfg_path`.
    std::string workload;
    /// Path to an `ir::to_json` SDFG file.  Mutually exclusive with `workload`.
    std::string sdfg_path;
    /// Named pass set: "table2" (builtin passes with the Table 2 bug
    /// inventory), "correct" (builtin passes, bugs off), "tiling" (a single
    /// correct MapTiling pass — the cheap smoke/test set).
    std::string passes = "table2";
    std::uint64_t seed = 0x5eed;  ///< Sampler seed (SamplerConfig::seed).
    int max_trials = 100;         ///< Trials per instance.
    std::int64_t size_max = 16;   ///< Sampler size bound (SamplerConfig::size_max).
    double threshold = 1e-5;      ///< Differential comparison threshold.
    /// Interpreter transition budget; 0 keeps the interpreter default.
    std::int64_t max_state_transitions = 0;
    /// Map-point fuel per execution (interp::ExecConfig::max_points);
    /// 0 = unlimited.  Budgets are part of the job key: exhaustion is a
    /// deterministic verdict, so two runs only agree byte-for-byte when
    /// they agree on the budgets.
    std::int64_t max_points = 0;
    /// Allocation budget per execution in bytes
    /// (interp::ExecConfig::max_alloc_bytes); 0 = unlimited.
    std::int64_t max_alloc_bytes = 0;
    bool use_mincut = true;  ///< Run the minimum input-flow cut.
    /// Def-use coverage instrumentation (FuzzConfig::coverage).  Part of the
    /// job key: coverage-on records carry a "cov" field and reports carry
    /// pair counters, so two runs only agree byte-for-byte when they agree
    /// on it.  Emitted conditionally so coverage-off manifests keep their
    /// exact historical bytes.
    bool coverage = false;
    /// Coverage-guided generation scheduling (FuzzConfig::feedback; implies
    /// `coverage`).  Also part of the job key — it changes trial inputs.
    bool feedback = false;
    /// Trials per feedback generation (FuzzConfig::generation_size); only
    /// meaningful (and only serialized) when `feedback` is set.
    int generation_size = 25;
    /// Default symbol bindings for cutout volume accounting
    /// (CutoutOptions::defaults); the planner seeds npbench defaults for
    /// workload jobs so manifests are self-contained.
    std::map<std::string, std::int64_t> defaults;

    common::Json to_json() const;                    ///< Wire form.
    static JobSpec from_json(const common::Json& j); ///< Inverse of to_json.

    /// Canonical identity string (compact JSON dump) — two specs describe
    /// the same job iff their keys are equal; the merger refuses to mix
    /// record files with different keys.
    std::string key() const { return to_json().dump(); }
};

/// Loads / rebuilds the job's program; throws common::Error for unknown
/// workloads or unreadable SDFG files.
ir::SDFG load_job_program(const JobSpec& job);

/// Instantiates the job's named pass set; throws common::Error for unknown
/// names.
std::vector<xform::TransformationPtr> job_passes(const JobSpec& job);

/// The FuzzConfig a JobSpec pins down (execution-only knobs left at their
/// defaults for the caller to override).
core::FuzzConfig job_fuzz_config(const JobSpec& job);

/// One shard of a planned audit: the job plus this shard's contiguous slice
/// [unit_begin, unit_end) of the flat unit space.
struct ShardManifest {
    int format_version = kFormatVersion;  ///< Wire format version.
    JobSpec job;                          ///< The audit being sharded.
    int shard_index = 0;                  ///< This shard's position.
    int shard_count = 1;                  ///< Shards in the plan.
    std::int64_t unit_begin = 0;          ///< First unit of the slice.
    std::int64_t unit_end = 0;            ///< One past the last unit.
    /// Instances of the whole audit (from the planner's match discovery) —
    /// runners cross-check their own prepare against it, catching
    /// program/pass-set drift between planner and worker machines.
    std::int64_t instance_count = 0;
    /// Units per checkpoint chunk of the record stream (docs/TUNING.md).
    int checkpoint_interval = 64;

    common::Json to_json() const;  ///< Wire form.
    /// Inverse of to_json; rejects foreign format versions.
    static ShardManifest from_json(const common::Json& j);
};

/// Loads a manifest JSON file; malformed content throws
/// common::FileParseError naming the file, the line (for syntax errors) and
/// the expected shape (for field errors).
ShardManifest load_manifest_file(const std::string& path);

/// Deterministically partitions the job's unit space into `shard_count`
/// contiguous slices, balanced to within one unit (the first
/// `units % shard_count` shards take the extra unit).  Runs the job's match
/// discovery to size the space; `program` must be the job's program (pass
/// the result of load_job_program).  Shards with no units are still
/// emitted (empty range) so plan output always has `shard_count` files.
std::vector<ShardManifest> plan_shards(const JobSpec& job, const ir::SDFG& program,
                                       int shard_count, int checkpoint_interval = 64);

}  // namespace ff::shard
