#include "shard/runner.h"

#include <algorithm>
#include <filesystem>
#include <optional>
#include <utility>

#include "common/error.h"
#include "core/report.h"
#include "shard/records.h"

namespace ff::shard {

namespace {

/// The record slot of flat unit `unit` (a static NotRun record for units of
/// instances whose setup failed — their reports are final from prepare and
/// no trial slots exist, but the stream still carries one line per unit so
/// coverage validation stays a plain count).
const core::TrialRecord& unit_record(const core::PreparedAudit& audit, std::int64_t unit,
                                     const core::TrialRecord& not_run) {
    const int mt = audit.max_trials();
    const std::size_t instance = static_cast<std::size_t>(unit / mt);
    const std::size_t trial = static_cast<std::size_t>(unit % mt);
    if (!audit.instance_runnable(instance)) return not_run;
    return audit.records(instance)[trial];
}

}  // namespace

RunShardResult run_shard(const ShardManifest& manifest, const std::string& records_path,
                         const RunShardOptions& options) {
    core::FuzzConfig config = job_fuzz_config(manifest.job);
    config.num_threads = options.num_threads;
    config.trial_chunk = options.trial_chunk;
    const ir::SDFG program = load_job_program(manifest.job);
    core::Fuzzer fuzzer(config);
    core::PreparedAudit audit = fuzzer.prepare(program, job_passes(manifest.job));

    // Cross-check the prepared shape against the planner's: a mismatch
    // means the worker machine sees a different program or pass set than
    // the plan was made from, and its records would merge into the wrong
    // slots.
    if (static_cast<std::int64_t>(audit.instance_count()) != manifest.instance_count)
        throw common::Error("prepared " + std::to_string(audit.instance_count()) +
                            " instances but the manifest says " +
                            std::to_string(manifest.instance_count) +
                            " — planner and runner disagree about the job");
    if (manifest.unit_begin < 0 || manifest.unit_begin > manifest.unit_end ||
        manifest.unit_end > audit.unit_count())
        throw common::Error("manifest unit range [" + std::to_string(manifest.unit_begin) + ", " +
                            std::to_string(manifest.unit_end) + ") outside the audit's " +
                            std::to_string(audit.unit_count()) + " units");

    // Open the stream: fresh, or resumed from the last intact checkpoint.
    std::int64_t start = manifest.unit_begin;
    std::optional<RecordWriter> writer;
    bool fresh = true;
    bool needs_trailer = false;
    std::error_code ec;
    const bool existing_nonempty = std::filesystem::exists(records_path, ec) &&
                                   std::filesystem::file_size(records_path, ec) > 0 && !ec;
    if (options.resume && existing_nonempty) {
        // A file the reader cannot make sense of at all (e.g. the previous
        // run died inside the header write) holds nothing resumable; every
        // record is a pure function of the job, so starting fresh loses no
        // information.  A *parseable* file from a different shard or job,
        // however, means the caller pointed at the wrong directory —
        // refuse rather than overwrite it.
        std::optional<ShardRecordFile> existing;
        try {
            existing.emplace(read_record_file(records_path));
        } catch (const common::Error&) {
            existing.reset();
        }
        if (existing) {
            if (existing->manifest.to_json().dump() != manifest.to_json().dump())
                throw common::Error(records_path +
                                    " belongs to a different shard or job; refusing to resume");
            start = existing->checkpoint;
            fresh = false;
            // A stream whose final checkpoint is durable but whose trailer
            // was torn off by a crash only needs the trailer re-emitted
            // (a pure function of the retained bytes, so byte-identity
            // with an uninterrupted run is preserved).
            needs_trailer = start == manifest.unit_end && !existing->has_trailer;
            // Completed records re-enter the audit so early-stop watermarks
            // (a failure recorded before the interruption) keep suppressing
            // later trials of the same instance.
            for (auto& [unit, record] : existing->records)
                audit.set_record(unit, std::move(record));
            writer.emplace(RecordWriter::resume(records_path, existing->resume_offset,
                                                manifest.unit_end,
                                                existing->checkpoint - manifest.unit_begin));
        } else {
            writer.emplace(RecordWriter::create(records_path, manifest));
        }
    } else {
        writer.emplace(RecordWriter::create(records_path, manifest));
    }

    RunShardResult result;
    result.resumed_from = start;
    const std::int64_t interval = std::max(manifest.checkpoint_interval, 1);
    const core::TrialRecord not_run;
    // An empty shard runs no chunks, so no checkpoint would ever publish
    // the stream; emit its one (empty) checkpoint explicitly.  Only for a
    // fresh stream: a resumed empty shard is already complete and another
    // checkpoint line would break re-run byte-identity.
    if (start == manifest.unit_end && fresh) writer->checkpoint(manifest.unit_end);
    if (needs_trailer) writer->finish();
    for (std::int64_t u = start; u < manifest.unit_end; u += interval) {
        const std::int64_t chunk_end = std::min(u + interval, manifest.unit_end);
        audit.run_range(u, chunk_end);
        result.units_run += chunk_end - u;
        if (options.interrupt_after_units >= 0 &&
            chunk_end - start > options.interrupt_after_units) {
            // Deterministic stand-in for a kill -9 mid-chunk: half the
            // chunk's records, then a torn line, never the checkpoint.
            const std::int64_t torn_at = u + std::max<std::int64_t>(1, (chunk_end - u) / 2);
            for (std::int64_t unit = u; unit < torn_at; ++unit)
                writer->write_record(unit, unit_record(audit, unit, not_run));
            writer->append_raw("{\"type\":\"record\",\"unit\":");
            result.stats = audit.stats();
            return result;  // completed stays false
        }
        for (std::int64_t unit = u; unit < chunk_end; ++unit)
            writer->write_record(unit, unit_record(audit, unit, not_run));
        writer->checkpoint(chunk_end);
        if (options.on_progress) options.on_progress(result.units_run);
    }
    result.completed = true;
    result.stats = audit.stats();
    return result;
}

}  // namespace ff::shard
