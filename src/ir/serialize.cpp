#include "ir/serialize.h"

#include <algorithm>
#include <map>

#include "common/error.h"
#include "symbolic/parser.h"

namespace ff::ir {

using common::Json;
using common::JsonArray;
using common::JsonObject;

namespace {

Json expr_to_json(const sym::ExprPtr& e) { return Json(e->to_string()); }

sym::ExprPtr expr_from_json(const Json& j) { return sym::parse_expr(j.as_string()); }

Json range_to_json(const Range& r) {
    Json o = Json::object();
    o["begin"] = expr_to_json(r.begin);
    o["end"] = expr_to_json(r.end);
    o["step"] = expr_to_json(r.step);
    return o;
}

Range range_from_json(const Json& j) {
    return Range{expr_from_json(j.at("begin")), expr_from_json(j.at("end")),
                 expr_from_json(j.at("step"))};
}

Json node_to_json(graph::NodeId id, const DataflowNode& n) {
    Json o = Json::object();
    o["id"] = static_cast<std::int64_t>(id);
    o["kind"] = node_kind_name(n.kind);
    o["label"] = n.label;
    switch (n.kind) {
        case NodeKind::Access: o["data"] = n.data; break;
        case NodeKind::Tasklet: o["code"] = n.code; break;
        case NodeKind::MapEntry: {
            o["scope_id"] = static_cast<std::int64_t>(n.scope_id);
            o["schedule"] = schedule_name(n.schedule);
            Json params = Json::array();
            for (const auto& p : n.params) params.push_back(Json(p));
            o["params"] = std::move(params);
            Json ranges = Json::array();
            for (const auto& r : n.map_ranges) ranges.push_back(range_to_json(r));
            o["ranges"] = std::move(ranges);
            break;
        }
        case NodeKind::MapExit:
            o["scope_id"] = static_cast<std::int64_t>(n.scope_id);
            o["schedule"] = schedule_name(n.schedule);
            break;
        case NodeKind::Library: o["lib"] = library_kind_name(n.lib); break;
        case NodeKind::Comm:
            o["comm"] = comm_kind_name(n.comm);
            o["root"] = static_cast<std::int64_t>(n.comm_root);
            break;
    }
    if (!n.attrs.empty()) {
        Json attrs = Json::object();
        for (const auto& [k, v] : n.attrs) attrs[k] = v;
        o["attrs"] = std::move(attrs);
    }
    return o;
}

DataflowNode node_from_json(const Json& j) {
    DataflowNode n;
    const std::string kind = j.at("kind").as_string();
    n.label = j.at("label").as_string();
    if (kind == "access") {
        n.kind = NodeKind::Access;
        n.data = j.at("data").as_string();
    } else if (kind == "tasklet") {
        n.kind = NodeKind::Tasklet;
        n.code = j.at("code").as_string();
    } else if (kind == "map_entry") {
        n.kind = NodeKind::MapEntry;
        n.scope_id = static_cast<std::int32_t>(j.at("scope_id").as_int());
        n.schedule = schedule_from_name(j.at("schedule").as_string());
        for (const auto& p : j.at("params").as_array()) n.params.push_back(p.as_string());
        for (const auto& r : j.at("ranges").as_array()) n.map_ranges.push_back(range_from_json(r));
    } else if (kind == "map_exit") {
        n.kind = NodeKind::MapExit;
        n.scope_id = static_cast<std::int32_t>(j.at("scope_id").as_int());
        n.schedule = schedule_from_name(j.at("schedule").as_string());
    } else if (kind == "library") {
        n.kind = NodeKind::Library;
        n.lib = library_kind_from_name(j.at("lib").as_string());
    } else if (kind == "comm") {
        n.kind = NodeKind::Comm;
        n.comm = comm_kind_from_name(j.at("comm").as_string());
        n.comm_root = static_cast<std::int32_t>(j.at("root").as_int());
    } else {
        throw common::ParseError("unknown node kind: " + kind);
    }
    if (j.contains("attrs"))
        for (const auto& [k, v] : j.at("attrs").as_object()) n.attrs[k] = v.as_string();
    return n;
}

}  // namespace

Json subset_to_json(const Subset& subset) {
    Json arr = Json::array();
    for (const auto& r : subset.ranges) arr.push_back(range_to_json(r));
    return arr;
}

Subset subset_from_json(const Json& j) {
    Subset s;
    for (const auto& r : j.as_array()) s.ranges.push_back(range_from_json(r));
    return s;
}

Json to_json(const SDFG& sdfg) {
    Json root = Json::object();
    root["name"] = sdfg.name();

    Json symbols = Json::array();
    for (const auto& s : sdfg.symbols()) symbols.push_back(Json(s));
    root["symbols"] = std::move(symbols);

    Json containers = Json::array();
    for (const auto& [name, desc] : sdfg.containers()) {
        Json c = Json::object();
        c["name"] = name;
        c["dtype"] = dtype_name(desc.dtype);
        Json shape = Json::array();
        for (const auto& extent : desc.shape) shape.push_back(expr_to_json(extent));
        c["shape"] = std::move(shape);
        c["transient"] = desc.transient;
        c["storage"] = storage_name(desc.storage);
        containers.push_back(std::move(c));
    }
    root["containers"] = std::move(containers);

    root["start_state"] = static_cast<std::int64_t>(sdfg.start_state());

    Json states = Json::array();
    for (StateId sid : sdfg.states()) {
        const State& st = sdfg.state(sid);
        Json s = Json::object();
        s["id"] = static_cast<std::int64_t>(sid);
        s["name"] = st.name();
        Json nodes = Json::array();
        for (NodeId nid : st.graph().nodes()) nodes.push_back(node_to_json(nid, st.graph().node(nid)));
        s["nodes"] = std::move(nodes);
        Json edges = Json::array();
        for (EdgeId eid : st.graph().edges()) {
            const auto& e = st.graph().edge(eid);
            Json je = Json::object();
            je["src"] = static_cast<std::int64_t>(e.src);
            je["dst"] = static_cast<std::int64_t>(e.dst);
            je["data"] = e.data.memlet.data;
            je["subset"] = subset_to_json(e.data.memlet.subset);
            je["src_conn"] = e.data.src_conn;
            je["dst_conn"] = e.data.dst_conn;
            edges.push_back(std::move(je));
        }
        s["edges"] = std::move(edges);
        states.push_back(std::move(s));
    }
    root["states"] = std::move(states);

    Json isedges = Json::array();
    for (graph::EdgeId eid : sdfg.cfg().edges()) {
        const auto& e = sdfg.cfg().edge(eid);
        Json je = Json::object();
        je["src"] = static_cast<std::int64_t>(e.src);
        je["dst"] = static_cast<std::int64_t>(e.dst);
        if (e.data.condition) je["condition"] = e.data.condition->to_string();
        Json assigns = Json::array();
        for (const auto& [symbol, expr] : e.data.assignments) {
            Json pair = Json::array();
            pair.push_back(Json(symbol));
            pair.push_back(expr_to_json(expr));
            assigns.push_back(std::move(pair));
        }
        je["assignments"] = std::move(assigns);
        isedges.push_back(std::move(je));
    }
    root["interstate_edges"] = std::move(isedges);
    return root;
}

SDFG sdfg_from_json(const Json& j) {
    SDFG sdfg(j.at("name").as_string());
    for (const auto& s : j.at("symbols").as_array()) sdfg.add_symbol(s.as_string());

    for (const auto& c : j.at("containers").as_array()) {
        std::vector<sym::ExprPtr> shape;
        for (const auto& extent : c.at("shape").as_array()) shape.push_back(expr_from_json(extent));
        DataDesc& desc =
            sdfg.add_array(c.at("name").as_string(), dtype_from_name(c.at("dtype").as_string()),
                           std::move(shape), c.at("transient").as_bool(),
                           storage_from_name(c.at("storage").as_string()));
        (void)desc;
    }

    // States: serialized ids may be sparse; remap.
    std::map<std::int64_t, StateId> state_map;
    for (const auto& s : j.at("states").as_array()) {
        const StateId sid = sdfg.add_state(s.at("name").as_string());
        state_map[s.at("id").as_int()] = sid;
        State& st = sdfg.state(sid);
        std::map<std::int64_t, NodeId> node_map;
        std::int32_t max_scope = -1;
        for (const auto& nj : s.at("nodes").as_array()) {
            DataflowNode n = node_from_json(nj);
            max_scope = std::max(max_scope, n.scope_id);
            node_map[nj.at("id").as_int()] = st.graph().add_node(std::move(n));
        }
        // Advance the scope counter past deserialized scope ids.
        while (st.next_scope_id() <= max_scope) {
        }
        for (const auto& ej : s.at("edges").as_array()) {
            MemletEdge me;
            me.memlet.data = ej.at("data").as_string();
            me.memlet.subset = subset_from_json(ej.at("subset"));
            me.src_conn = ej.at("src_conn").as_string();
            me.dst_conn = ej.at("dst_conn").as_string();
            st.graph().add_edge(node_map.at(ej.at("src").as_int()),
                                node_map.at(ej.at("dst").as_int()), std::move(me));
        }
    }

    sdfg.set_start_state(state_map.at(j.at("start_state").as_int()));

    for (const auto& ej : j.at("interstate_edges").as_array()) {
        InterstateEdge e;
        if (ej.contains("condition")) e.condition = sym::parse_bool(ej.at("condition").as_string());
        for (const auto& pair : ej.at("assignments").as_array()) {
            e.assignments.emplace_back(pair.as_array()[0].as_string(),
                                       expr_from_json(pair.as_array()[1]));
        }
        sdfg.add_interstate_edge(state_map.at(ej.at("src").as_int()),
                                 state_map.at(ej.at("dst").as_int()), std::move(e));
    }
    return sdfg;
}

}  // namespace ff::ir
