#include "ir/dtypes.h"

#include "common/error.h"

namespace ff::ir {

std::size_t dtype_size(DType t) {
    switch (t) {
        case DType::F64: return 8;
        case DType::F32: return 4;
        case DType::I64: return 8;
        case DType::I32: return 4;
    }
    return 0;
}

bool dtype_is_float(DType t) { return t == DType::F64 || t == DType::F32; }

const char* dtype_name(DType t) {
    switch (t) {
        case DType::F64: return "float64";
        case DType::F32: return "float32";
        case DType::I64: return "int64";
        case DType::I32: return "int32";
    }
    return "?";
}

DType dtype_from_name(const std::string& name) {
    if (name == "float64") return DType::F64;
    if (name == "float32") return DType::F32;
    if (name == "int64") return DType::I64;
    if (name == "int32") return DType::I32;
    throw common::ParseError("unknown dtype: " + name);
}

const char* storage_name(Storage s) { return s == Storage::Host ? "host" : "device"; }

Storage storage_from_name(const std::string& name) {
    if (name == "host") return Storage::Host;
    if (name == "device") return Storage::Device;
    throw common::ParseError("unknown storage: " + name);
}

}  // namespace ff::ir
