// Stateful dataflow multigraph: the outer hierarchy level.
//
// An SDFG is a state machine whose nodes are dataflow states and whose edges
// carry a condition (symbolic boolean) plus symbol assignments, exactly as in
// the DaCe IR (Sec. 2.3).  Execution starts at the start state and follows
// the first outgoing edge whose condition holds, applying its assignments;
// it terminates when no edge matches.
//
// The whole structure has value semantics: copying an SDFG deep-copies the
// graphs (expressions are immutable and shared), which is what cutout
// extraction and black-box change isolation rely on.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "ir/data_desc.h"
#include "ir/state.h"

namespace ff::ir {

/// Condition + symbol assignments on a state machine transition.
struct InterstateEdge {
    sym::BoolExprPtr condition;  ///< nullptr means "always true".
    std::vector<std::pair<std::string, sym::ExprPtr>> assignments;

    bool always_true() const { return condition == nullptr; }
    std::string to_string() const;
};

using StateId = graph::NodeId;

class SDFG {
public:
    using CFG = graph::DiGraph<State, InterstateEdge>;

    SDFG() = default;
    explicit SDFG(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }
    void set_name(std::string n) { name_ = std::move(n); }

    // --- Containers ---

    /// Adds an array container; returns its descriptor.
    DataDesc& add_array(const std::string& name, DType dtype, std::vector<sym::ExprPtr> shape,
                        bool transient = false, Storage storage = Storage::Host);

    /// Adds a scalar container.
    DataDesc& add_scalar(const std::string& name, DType dtype, bool transient = false);

    bool has_container(const std::string& name) const { return containers_.count(name) > 0; }
    const DataDesc& container(const std::string& name) const;
    DataDesc& container(const std::string& name);
    const std::map<std::string, DataDesc>& containers() const { return containers_; }
    void remove_container(const std::string& name) { containers_.erase(name); }

    // --- Symbols (free integer parameters) ---

    void add_symbol(const std::string& name) { symbols_.insert(name); }
    const std::set<std::string>& symbols() const { return symbols_; }
    bool has_symbol(const std::string& name) const { return symbols_.count(name) > 0; }
    void remove_symbol(const std::string& name) { symbols_.erase(name); }

    // --- State machine ---

    StateId add_state(const std::string& name, bool is_start = false);

    graph::EdgeId add_interstate_edge(StateId src, StateId dst, InterstateEdge edge = {});

    State& state(StateId id) { return cfg_.node(id); }
    const State& state(StateId id) const { return cfg_.node(id); }

    CFG& cfg() { return cfg_; }
    const CFG& cfg() const { return cfg_; }

    StateId start_state() const { return start_state_; }
    void set_start_state(StateId id) { start_state_ = id; }

    std::vector<StateId> states() const { return cfg_.nodes(); }

    // --- Utilities ---

    /// Unique container name derived from `base`.
    std::string fresh_container_name(const std::string& base) const;

    /// Free symbols used anywhere (shapes, memlets, ranges, conditions)
    /// minus map parameters (which are scope-bound).
    std::set<std::string> used_free_symbols() const;

    /// Structural validation; throws common::ValidationError.
    void validate() const;

    std::string to_string() const;

private:
    std::string name_;
    std::map<std::string, DataDesc> containers_;
    std::set<std::string> symbols_;
    CFG cfg_;
    StateId start_state_ = graph::kInvalidNode;
};

}  // namespace ff::ir
