// Stateful dataflow multigraph: the outer hierarchy level.
//
// An SDFG is a state machine whose nodes are dataflow states and whose edges
// carry a condition (symbolic boolean) plus symbol assignments, exactly as in
// the DaCe IR (Sec. 2.3).  Execution starts at the start state and follows
// the first outgoing edge whose condition holds, applying its assignments;
// it terminates when no edge matches.
//
// The whole structure has value semantics: copying an SDFG deep-copies the
// graphs (expressions are immutable and shared), which is what cutout
// extraction and black-box change isolation rely on.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "ir/data_desc.h"
#include "ir/state.h"

namespace ff::ir {

/// Condition + symbol assignments on a state machine transition.
struct InterstateEdge {
    sym::BoolExprPtr condition;  ///< nullptr means "always true".
    std::vector<std::pair<std::string, sym::ExprPtr>> assignments;

    bool always_true() const { return condition == nullptr; }
    std::string to_string() const;
};

using StateId = graph::NodeId;

class SDFG {
public:
    using CFG = graph::DiGraph<State, InterstateEdge>;

    SDFG() : plan_uid_(next_plan_uid()) {}
    explicit SDFG(std::string name) : name_(std::move(name)), plan_uid_(next_plan_uid()) {}

    // Copies get a fresh plan uid (their states are new objects); moves keep
    // it (the state storage — and thus every cached plan's pointers — moves
    // intact).  The moved-from SDFG is re-identified so its reuse can never
    // alias the moved-to graph in a plan cache.
    SDFG(const SDFG& other);
    SDFG(SDFG&& other) noexcept;
    SDFG& operator=(const SDFG& other);
    SDFG& operator=(SDFG&& other) noexcept;

    const std::string& name() const { return name_; }
    void set_name(std::string n) { name_ = std::move(n); }

    // --- Containers ---

    /// Adds an array container; returns its descriptor.
    DataDesc& add_array(const std::string& name, DType dtype, std::vector<sym::ExprPtr> shape,
                        bool transient = false, Storage storage = Storage::Host);

    /// Adds a scalar container.
    DataDesc& add_scalar(const std::string& name, DType dtype, bool transient = false);

    bool has_container(const std::string& name) const { return containers_.count(name) > 0; }
    const DataDesc& container(const std::string& name) const;
    DataDesc& container(const std::string& name);
    const std::map<std::string, DataDesc>& containers() const { return containers_; }
    void remove_container(const std::string& name) { containers_.erase(name); }

    // --- Symbols (free integer parameters) ---

    void add_symbol(const std::string& name) { symbols_.insert(name); }
    const std::set<std::string>& symbols() const { return symbols_; }
    bool has_symbol(const std::string& name) const { return symbols_.count(name) > 0; }
    void remove_symbol(const std::string& name) { symbols_.erase(name); }

    // --- State machine ---

    StateId add_state(const std::string& name, bool is_start = false);

    graph::EdgeId add_interstate_edge(StateId src, StateId dst, InterstateEdge edge = {});

    State& state(StateId id) { return cfg_.node(id); }
    const State& state(StateId id) const { return cfg_.node(id); }

    CFG& cfg() { return cfg_; }
    const CFG& cfg() const { return cfg_; }

    StateId start_state() const { return start_state_; }
    void set_start_state(StateId id) { start_state_ = id; }

    std::vector<StateId> states() const { return cfg_.nodes(); }

    // --- Utilities ---

    /// Unique container name derived from `base`.
    std::string fresh_container_name(const std::string& base) const;

    /// Free symbols used anywhere (shapes, memlets, ranges, conditions)
    /// minus map parameters (which are scope-bound).
    std::set<std::string> used_free_symbols() const;

    /// Structural validation; throws common::ValidationError.
    void validate() const;

    std::string to_string() const;

    // --- Plan-cache identity (interpreter support) ---

    /// Counter the interpreter plan caches key on: bumping it invalidates
    /// every cached plan for this SDFG, so a mutated graph can safely reuse
    /// a warm interpreter instead of requiring a fresh instance.
    ///
    /// Contract: xform::Transformation::apply bumps it automatically.  Code
    /// that mutates the IR *directly* (add_state, State::add_edge, ...)
    /// after an interpreter has already executed this graph must call
    /// bump_mutation_epoch() itself — otherwise warm interpreters keep
    /// serving plans built from the pre-mutation graph.  (Build-then-run
    /// code, which never interleaves mutation with execution, needs no
    /// bumps.)
    std::uint64_t mutation_epoch() const { return mutation_epoch_; }
    void bump_mutation_epoch() { ++mutation_epoch_; }

    /// Process-unique identity of this SDFG object for plan caching.  Fresh
    /// per construction and per copy, so cache entries can never alias a
    /// different graph that reuses the same heap addresses.
    std::uint64_t plan_uid() const { return plan_uid_; }

private:
    static std::uint64_t next_plan_uid();

    std::string name_;
    std::map<std::string, DataDesc> containers_;
    std::set<std::string> symbols_;
    CFG cfg_;
    StateId start_state_ = graph::kInvalidNode;
    std::uint64_t mutation_epoch_ = 0;
    std::uint64_t plan_uid_ = 0;
};

}  // namespace ff::ir
