// Element data types for containers and tasklet values.
#pragma once

#include <cstddef>
#include <string>

namespace ff::ir {

enum class DType { F64, F32, I64, I32 };

/// Number of DType enumerators; keeps exhaustive iteration (name round-trip
/// tests, per-dtype stat arrays) in sync when a dtype is added.
inline constexpr int kDTypeCount = 4;

/// Size in bytes of one element.
std::size_t dtype_size(DType t);

/// True for floating-point types.
bool dtype_is_float(DType t);

const char* dtype_name(DType t);

/// Inverse of dtype_name; throws common::ParseError for unknown names.
DType dtype_from_name(const std::string& name);

/// Storage space of a container.  `Device` simulates GPU global memory:
/// separate allocations that kernels with GPU schedule may touch, filled
/// with deterministic garbage on allocation (Sec. 6.4, GPU kernel
/// extraction bug: whole-container copy-back exposes uninitialized data).
enum class Storage { Host, Device };

const char* storage_name(Storage s);
Storage storage_from_name(const std::string& name);

}  // namespace ff::ir
