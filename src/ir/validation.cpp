// Structural validation of SDFGs.
//
// Validation is deliberately strict: the differential tester validates the
// transformed cutout before running it, so transformations that "generate
// invalid code" (Table 2: MapExpansion, MapReduceFusion, ...) are caught
// here and reported as failures, mirroring the paper's crash-on-apply class.
#include <set>
#include <string>

#include "common/error.h"
#include "interp/tasklet_lang.h"
#include "ir/sdfg.h"

namespace ff::ir {

namespace {

using common::ValidationError;

/// Connector requirements of library/comm nodes.
struct LibSpec {
    std::vector<std::string> inputs;
    std::vector<std::string> outputs;
};

LibSpec library_spec(LibraryKind kind) {
    switch (kind) {
        case LibraryKind::MatMul:
        case LibraryKind::BatchedMatMul: return {{"A", "B"}, {"C"}};
        case LibraryKind::Transpose: return {{"A"}, {"B"}};
        case LibraryKind::ReduceSum:
        case LibraryKind::ReduceMax:
        case LibraryKind::Softmax: return {{"in"}, {"out"}};
    }
    return {};
}

/// Map parameters visible at `node` (walking enclosing scopes).
std::set<std::string> visible_params(const State& st, NodeId node) {
    std::set<std::string> out;
    // A MapEntry/MapExit sees its own parameters (its memlets use them).
    const DataflowNode& n = st.graph().node(node);
    if (n.kind == NodeKind::MapEntry) {
        for (const auto& p : n.params) out.insert(p);
    } else if (n.kind == NodeKind::MapExit) {
        const NodeId entry = st.map_entry_of(node);
        if (entry != graph::kInvalidNode)
            for (const auto& p : st.graph().node(entry).params) out.insert(p);
    }
    NodeId scope = st.parent_scope_of(node);
    while (scope != graph::kInvalidNode) {
        for (const auto& p : st.graph().node(scope).params) out.insert(p);
        scope = st.parent_scope_of(scope);
    }
    return out;
}

void validate_state(const SDFG& sdfg, const State& st) {
    const auto& g = st.graph();
    const std::string where = "state '" + st.name() + "': ";

    if (!g.topological_order())
        throw ValidationError(where + "dataflow graph contains a cycle");

    // Node-local checks.
    for (NodeId nid : g.nodes()) {
        const DataflowNode& n = g.node(nid);
        switch (n.kind) {
            case NodeKind::Access:
                if (!sdfg.has_container(n.data))
                    throw ValidationError(where + "access node references unknown container '" +
                                          n.data + "'");
                break;
            case NodeKind::MapEntry: {
                if (n.params.size() != n.map_ranges.size())
                    throw ValidationError(where + "map '" + n.label +
                                          "' has mismatched params/ranges");
                if (n.params.empty())
                    throw ValidationError(where + "map '" + n.label + "' has no parameters");
                if (st.map_exit_of(nid) == graph::kInvalidNode)
                    throw ValidationError(where + "map '" + n.label + "' has no matching exit");
                break;
            }
            case NodeKind::MapExit:
                if (st.map_entry_of(nid) == graph::kInvalidNode)
                    throw ValidationError(where + "map exit '" + n.label +
                                          "' has no matching entry");
                break;
            case NodeKind::Tasklet: {
                interp::TaskletProgramPtr prog;
                try {
                    prog = interp::TaskletProgram::parse(n.code);
                } catch (const common::ParseError& e) {
                    throw ValidationError(where + "tasklet '" + n.label + "': " + e.what());
                }
                // Every input connector must be fed by exactly the edges
                // that carry its name; every read must be covered.
                std::set<std::string> fed, produced;
                for (graph::EdgeId eid : g.in_edges(nid)) {
                    const auto& conn = g.edge(eid).data.dst_conn;
                    if (conn.empty()) continue;  // ordering-only dependency edge
                    if (!fed.insert(conn).second)
                        throw ValidationError(where + "tasklet '" + n.label +
                                              "' input connector '" + conn + "' fed twice");
                    if (!prog->reads().count(conn))
                        throw ValidationError(where + "tasklet '" + n.label +
                                              "' has edge into unused connector '" + conn + "'");
                }
                for (const auto& [conn, width] : prog->reads()) {
                    (void)width;
                    if (!fed.count(conn))
                        throw ValidationError(where + "tasklet '" + n.label +
                                              "' input connector '" + conn + "' is unconnected");
                }
                for (graph::EdgeId eid : g.out_edges(nid)) {
                    const auto& conn = g.edge(eid).data.src_conn;
                    if (conn.empty())
                        throw ValidationError(where + "tasklet '" + n.label +
                                              "' has out-edge without connector");
                    if (!prog->writes().count(conn))
                        throw ValidationError(where + "tasklet '" + n.label +
                                              "' writes unknown connector '" + conn + "'");
                    produced.insert(conn);
                }
                if (produced.empty())
                    throw ValidationError(where + "tasklet '" + n.label + "' has no outputs");
                break;
            }
            case NodeKind::Library: {
                const LibSpec spec = library_spec(n.lib);
                std::set<std::string> fed, produced;
                for (graph::EdgeId eid : g.in_edges(nid)) fed.insert(g.edge(eid).data.dst_conn);
                for (graph::EdgeId eid : g.out_edges(nid)) produced.insert(g.edge(eid).data.src_conn);
                for (const auto& c : spec.inputs)
                    if (!fed.count(c))
                        throw ValidationError(where + "library node '" + n.label +
                                              "' missing input connector '" + c + "'");
                for (const auto& c : spec.outputs)
                    if (!produced.count(c))
                        throw ValidationError(where + "library node '" + n.label +
                                              "' missing output connector '" + c + "'");
                break;
            }
            case NodeKind::Comm: {
                bool has_in = false, has_out = false;
                for (graph::EdgeId eid : g.in_edges(nid))
                    has_in |= g.edge(eid).data.dst_conn == "in";
                for (graph::EdgeId eid : g.out_edges(nid))
                    has_out |= g.edge(eid).data.src_conn == "out";
                if (!has_in || !has_out)
                    throw ValidationError(where + "comm node '" + n.label +
                                          "' needs 'in' and 'out' connectors");
                break;
            }
        }
    }

    // Edge checks: container existence, dimensionality, symbol visibility.
    for (graph::EdgeId eid : g.edges()) {
        const auto& edge = g.edge(eid);
        const Memlet& m = edge.data.memlet;
        if (!sdfg.has_container(m.data))
            throw ValidationError(where + "memlet references unknown container '" + m.data + "'");
        const DataDesc& desc = sdfg.container(m.data);
        if (m.subset.dims() != desc.dims())
            throw ValidationError(where + "memlet on '" + m.data + "' has " +
                                  std::to_string(m.subset.dims()) + " dims, container has " +
                                  std::to_string(desc.dims()));

        std::set<std::string> free;
        for (const auto& r : m.subset.ranges) {
            r.begin->collect_symbols(free);
            r.end->collect_symbols(free);
            r.step->collect_symbols(free);
        }
        std::set<std::string> visible = visible_params(st, edge.src);
        for (const auto& p : visible_params(st, edge.dst)) visible.insert(p);
        for (const auto& s : free) {
            if (!sdfg.has_symbol(s) && !visible.count(s))
                throw ValidationError(where + "memlet '" + m.to_string() +
                                      "' uses symbol '" + s +
                                      "' that is neither a program symbol nor a visible map "
                                      "parameter");
        }
    }

    // GPU scope storage discipline: kernels only touch device memory.
    for (NodeId nid : g.nodes()) {
        const DataflowNode& n = g.node(nid);
        if (n.kind != NodeKind::MapEntry || n.schedule != Schedule::GPU) continue;
        auto check_device = [&](graph::EdgeId eid) {
            const Memlet& m = g.edge(eid).data.memlet;
            if (sdfg.container(m.data).storage != Storage::Device)
                throw ValidationError(where + "GPU map '" + n.label +
                                      "' accesses host container '" + m.data + "'");
        };
        for (NodeId inner : st.scope_nodes(nid)) {
            for (graph::EdgeId eid : g.in_edges(inner)) check_device(eid);
            for (graph::EdgeId eid : g.out_edges(inner)) check_device(eid);
        }
        for (graph::EdgeId eid : g.in_edges(nid)) check_device(eid);
        const NodeId exit = st.map_exit_of(nid);
        for (graph::EdgeId eid : g.out_edges(exit)) check_device(eid);
    }
}

}  // namespace

void SDFG::validate() const {
    if (cfg_.node_count() == 0) throw ValidationError("sdfg '" + name_ + "' has no states");
    if (!cfg_.contains_node(start_state_))
        throw ValidationError("sdfg '" + name_ + "' has invalid start state");

    // Container shape symbols must be program symbols.
    for (const auto& [name, desc] : containers_) {
        for (const auto& extent : desc.shape) {
            for (const auto& s : extent->free_symbols()) {
                if (!has_symbol(s))
                    throw ValidationError("container '" + name + "' shape uses unknown symbol '" +
                                          s + "'");
            }
        }
    }

    for (StateId sid : cfg_.nodes()) validate_state(*this, cfg_.node(sid));

    // Interstate edges may only assign to declared symbols.
    for (graph::EdgeId eid : cfg_.edges()) {
        const InterstateEdge& e = cfg_.edge(eid).data;
        for (const auto& [symbol, expr] : e.assignments) {
            (void)expr;
            if (!has_symbol(symbol))
                throw ValidationError("interstate edge assigns to unknown symbol '" + symbol +
                                      "'");
        }
    }
}

}  // namespace ff::ir
