#include "ir/node.h"

#include "common/error.h"

namespace ff::ir {

const char* node_kind_name(NodeKind k) {
    switch (k) {
        case NodeKind::Access: return "access";
        case NodeKind::Tasklet: return "tasklet";
        case NodeKind::MapEntry: return "map_entry";
        case NodeKind::MapExit: return "map_exit";
        case NodeKind::Library: return "library";
        case NodeKind::Comm: return "comm";
    }
    return "?";
}

const char* schedule_name(Schedule s) {
    switch (s) {
        case Schedule::Sequential: return "sequential";
        case Schedule::Parallel: return "parallel";
        case Schedule::GPU: return "gpu";
        case Schedule::Vector: return "vector";
    }
    return "?";
}

Schedule schedule_from_name(const std::string& name) {
    if (name == "sequential") return Schedule::Sequential;
    if (name == "parallel") return Schedule::Parallel;
    if (name == "gpu") return Schedule::GPU;
    if (name == "vector") return Schedule::Vector;
    throw common::ParseError("unknown schedule: " + name);
}

const char* library_kind_name(LibraryKind k) {
    switch (k) {
        case LibraryKind::MatMul: return "matmul";
        case LibraryKind::BatchedMatMul: return "batched_matmul";
        case LibraryKind::Transpose: return "transpose";
        case LibraryKind::ReduceSum: return "reduce_sum";
        case LibraryKind::ReduceMax: return "reduce_max";
        case LibraryKind::Softmax: return "softmax";
    }
    return "?";
}

LibraryKind library_kind_from_name(const std::string& name) {
    if (name == "matmul") return LibraryKind::MatMul;
    if (name == "batched_matmul") return LibraryKind::BatchedMatMul;
    if (name == "transpose") return LibraryKind::Transpose;
    if (name == "reduce_sum") return LibraryKind::ReduceSum;
    if (name == "reduce_max") return LibraryKind::ReduceMax;
    if (name == "softmax") return LibraryKind::Softmax;
    throw common::ParseError("unknown library kind: " + name);
}

const char* comm_kind_name(CommKind k) {
    switch (k) {
        case CommKind::Broadcast: return "broadcast";
        case CommKind::Allreduce: return "allreduce";
        case CommKind::Allgather: return "allgather";
    }
    return "?";
}

CommKind comm_kind_from_name(const std::string& name) {
    if (name == "broadcast") return CommKind::Broadcast;
    if (name == "allreduce") return CommKind::Allreduce;
    if (name == "allgather") return CommKind::Allgather;
    throw common::ParseError("unknown comm kind: " + name);
}

std::string DataflowNode::to_string() const {
    std::string s = node_kind_name(kind);
    s += "(";
    switch (kind) {
        case NodeKind::Access: s += data; break;
        case NodeKind::Tasklet: s += label; break;
        case NodeKind::MapEntry:
        case NodeKind::MapExit: {
            s += label;
            if (kind == NodeKind::MapEntry) {
                s += " ";
                for (std::size_t i = 0; i < params.size(); ++i) {
                    if (i) s += ", ";
                    s += params[i] + "=" + map_ranges[i].to_string();
                }
                s += " @";
                s += schedule_name(schedule);
            }
            break;
        }
        case NodeKind::Library: s += library_kind_name(lib); break;
        case NodeKind::Comm: s += comm_kind_name(comm); break;
    }
    s += ")";
    return s;
}

std::string MemletEdge::to_string() const {
    std::string s = memlet.to_string();
    if (!src_conn.empty()) s = src_conn + " <- " + s;
    if (!dst_conn.empty()) s += " -> " + dst_conn;
    return s;
}

}  // namespace ff::ir
