// Data descriptors: named containers with symbolic shapes.
//
// The `transient` flag marks containers whose allocation lifetime is managed
// by the program; everything non-transient "may persist, consequently leaving
// the chance to be read after the program has exited" (Sec. 3.1, external
// data analysis).  Shapes are expressions, keeping the parameter/size
// relationship intact (Sec. 2.1: the size of C is N*N, not an opaque
// pointer).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/dtypes.h"
#include "symbolic/expr.h"

namespace ff::ir {

struct DataDesc {
    std::string name;
    DType dtype = DType::F64;
    std::vector<sym::ExprPtr> shape;  // empty = scalar
    bool transient = false;
    Storage storage = Storage::Host;

    bool is_scalar() const { return shape.empty(); }
    std::size_t dims() const { return shape.size(); }

    /// Total element count, symbolically (1 for scalars).
    sym::ExprPtr total_size() const;

    /// Total size in bytes, symbolically.
    sym::ExprPtr total_bytes() const;

    /// Evaluate the shape under concrete symbol values.
    std::vector<std::int64_t> concrete_shape(const sym::Bindings& bindings) const;

    std::string to_string() const;
};

}  // namespace ff::ir
