// SDFG <-> JSON serialization.
//
// Used to persist extracted cutouts alongside the fault-inducing inputs the
// fuzzer finds, producing the "fully reproducible, minimal test case"
// artifact of Sec. 5.1.  Expressions round-trip through their textual form.
#pragma once

#include "common/json.h"
#include "ir/sdfg.h"

namespace ff::ir {

common::Json to_json(const SDFG& sdfg);

/// Inverse of to_json; throws common::ParseError / ValidationError.
SDFG sdfg_from_json(const common::Json& j);

common::Json subset_to_json(const Subset& subset);
Subset subset_from_json(const common::Json& j);

}  // namespace ff::ir
