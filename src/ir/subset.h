// Symbolic index ranges, subsets and memlets.
//
// Every data-movement edge is annotated with the *exact* subset accessed
// (Sec. 2.3) — this is what makes sub-region side-effect analysis possible
// (Table 1, column "Sub-region").  Ranges are inclusive on both ends, like
// DaCe: `begin:end:step` touches begin, begin+step, ..., end.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "symbolic/expr.h"

namespace ff::ir {

/// One dimension of a subset: begin/end inclusive, step > 0 or < 0.
struct Range {
    sym::ExprPtr begin;
    sym::ExprPtr end;
    sym::ExprPtr step;

    /// The range [e, e] with step 1 (a single index).
    static Range index(sym::ExprPtr e);
    /// The range [begin, end] with step 1.
    static Range span(sym::ExprPtr begin, sym::ExprPtr end);
    /// The full range [0, extent-1] of a dimension.
    static Range full(const sym::ExprPtr& extent);

    /// Number of points covered, as a symbolic expression; assumes step > 0
    /// (the analyses only require volumes for positively-stepped memlets).
    sym::ExprPtr size() const;

    Range substituted(const sym::SubstMap& subst) const;
    bool equals(const Range& other) const;
    std::string to_string() const;
};

/// A concrete (evaluated) range triple: {begin, end, step}.
using ConcreteRange = std::array<std::int64_t, 3>;

/// Number of iteration points of a concrete range; supports negative steps.
std::int64_t concrete_range_size(const ConcreteRange& r);

/// Multi-dimensional subset.
struct Subset {
    std::vector<Range> ranges;

    Subset() = default;
    explicit Subset(std::vector<Range> r) : ranges(std::move(r)) {}

    std::size_t dims() const { return ranges.size(); }

    /// Total number of elements, symbolically.
    sym::ExprPtr volume() const;

    /// Evaluate all bounds under `bindings`.
    std::vector<ConcreteRange> concretize(const sym::Bindings& bindings) const;

    Subset substituted(const sym::SubstMap& subst) const;
    bool equals(const Subset& other) const;
    std::string to_string() const;

    /// Smallest subset covering both (per-dimension bounding box with the
    /// finer step).  Both subsets must have the same dimensionality.
    static Subset bounding_union(const Subset& a, const Subset& b);

    /// Covering subset of a whole container shape.
    static Subset full(const std::vector<sym::ExprPtr>& shape);
};

/// Affine decomposition of an index expression over a parameter set:
/// expr == base + sum_k coeffs[k] * params[k], with every coefficient a
/// compile-time integer constant.  `base` — everything not involving the
/// params — is not materialized: callers evaluate the original expression at
/// a known parameter point instead (the interpreter's flat-stride map
/// kernels evaluate at the ranges' begin point and then advance by the
/// coefficients).  Returns nullopt when the expression is not affine in the
/// params, a coefficient is not constant, or a coefficient's magnitude
/// exceeds an overflow-safety bound.
std::optional<std::vector<std::int64_t>> affine_coefficients(
    const sym::ExprPtr& expr, const std::vector<const std::string*>& params);

/// Conservative overlap test on concretized subsets: per-dimension interval
/// intersection, ignoring strides (may report overlap where strides miss
/// each other — sound for side-effect analysis, never unsound).
bool concrete_subsets_overlap(const std::vector<ConcreteRange>& a,
                              const std::vector<ConcreteRange>& b);

/// A data movement annotation: which container, which subset.
struct Memlet {
    std::string data;
    Subset subset;

    Memlet() = default;
    Memlet(std::string d, Subset s) : data(std::move(d)), subset(std::move(s)) {}

    sym::ExprPtr volume() const { return subset.volume(); }
    std::string to_string() const;
};

}  // namespace ff::ir
