// Dataflow graph nodes.
//
// A single tagged struct rather than a class hierarchy: cutout extraction
// (Sec. 3, step 3) copies nodes between graphs wholesale, and value semantics
// make that a plain copy.  Unused fields for a given kind stay default.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/subset.h"

namespace ff::ir {

enum class NodeKind {
    Access,    ///< View of a data container (may appear multiple times).
    Tasklet,   ///< Scalar/short-vector computation in the tasklet language.
    MapEntry,  ///< Opens a parametric loop scope (parallel or sequential).
    MapExit,   ///< Closes the matching scope.
    Library,   ///< Coarse-grained operator with a native implementation.
    Comm,      ///< Communication collective (simulated multi-rank runtime).
};

/// Execution schedule of a map scope.
enum class Schedule {
    Sequential,  ///< Ordered iteration; supports negative steps (loops).
    Parallel,    ///< Order-independent (CPU parallel loop).
    GPU,         ///< Simulated GPU kernel: may only touch Device storage.
    Vector,      ///< Vectorized parallel loop (after Vectorization).
};

enum class LibraryKind {
    MatMul,         ///< C[M,N] = A[M,K] @ B[K,N]
    BatchedMatMul,  ///< C[..,M,N] = A[..,M,K] @ B[..,K,N] over leading dims
    Transpose,      ///< B = A^T (2-D)
    ReduceSum,      ///< out = sum(in) over the last axis
    ReduceMax,      ///< out = max(in) over the last axis
    Softmax,        ///< out = softmax(in) over the last axis
};

enum class CommKind {
    Broadcast,  ///< out = in of root rank
    Allreduce,  ///< out = elementwise sum over ranks
    Allgather,  ///< out = concatenation of per-rank inputs on axis 0
};

const char* node_kind_name(NodeKind k);
const char* schedule_name(Schedule s);
Schedule schedule_from_name(const std::string& name);
const char* library_kind_name(LibraryKind k);
LibraryKind library_kind_from_name(const std::string& name);
const char* comm_kind_name(CommKind k);
CommKind comm_kind_from_name(const std::string& name);

struct DataflowNode {
    NodeKind kind = NodeKind::Access;
    std::string label;  ///< Human-readable; not required to be unique.

    // Access
    std::string data;  ///< Container name.

    // Tasklet
    std::string code;  ///< Tasklet-language source; parsed lazily by the
                       ///< interpreter and cached by content.

    // MapEntry / MapExit
    std::int32_t scope_id = -1;        ///< Pairs entry with exit.
    std::vector<std::string> params;   ///< Iteration variables.
    std::vector<Range> map_ranges;     ///< One per param; inclusive bounds.
    Schedule schedule = Schedule::Parallel;

    // Library
    LibraryKind lib = LibraryKind::MatMul;

    // Comm
    CommKind comm = CommKind::Allreduce;
    std::int32_t comm_root = 0;  ///< For Broadcast.

    /// Generic attributes (e.g. tile sizes recorded by transformations).
    std::map<std::string, std::string> attrs;

    std::string to_string() const;
};

/// Edge payload of a state's dataflow graph: a memlet plus the connector
/// names on either end (the tasklet/library variable the data binds to).
struct MemletEdge {
    Memlet memlet;
    std::string src_conn;  ///< Variable on the producing node ("" if N/A).
    std::string dst_conn;  ///< Variable on the consuming node ("" if N/A).

    std::string to_string() const;
};

}  // namespace ff::ir
