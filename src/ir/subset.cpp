#include "ir/subset.h"

#include <algorithm>

#include "common/error.h"

namespace ff::ir {

Range Range::index(sym::ExprPtr e) { return Range{e, e, sym::cst(1)}; }

Range Range::span(sym::ExprPtr begin, sym::ExprPtr end) {
    return Range{std::move(begin), std::move(end), sym::cst(1)};
}

Range Range::full(const sym::ExprPtr& extent) {
    return Range{sym::cst(0), extent - 1, sym::cst(1)};
}

sym::ExprPtr Range::size() const {
    // ceil((end - begin + 1) / step) for positive steps; with inclusive
    // bounds this is floor((end - begin) / step) + 1.
    return sym::floordiv(end - begin, step) + 1;
}

Range Range::substituted(const sym::SubstMap& subst) const {
    return Range{begin->substitute(subst), end->substitute(subst), step->substitute(subst)};
}

bool Range::equals(const Range& other) const {
    return begin->equals(*other.begin) && end->equals(*other.end) && step->equals(*other.step);
}

std::string Range::to_string() const {
    if (begin->equals(*end)) return begin->to_string();
    std::string s = begin->to_string() + ":" + end->to_string();
    if (!(step->is_constant() && step->constant_value() == 1)) s += ":" + step->to_string();
    return s;
}

std::int64_t concrete_range_size(const ConcreteRange& r) {
    const auto [begin, end, step] = r;
    if (step == 0) throw common::Error("range with step 0");
    if (step > 0) {
        if (end < begin) return 0;
        return (end - begin) / step + 1;
    }
    if (end > begin) return 0;
    return (begin - end) / (-step) + 1;
}

sym::ExprPtr Subset::volume() const {
    sym::ExprPtr v = sym::cst(1);
    for (const Range& r : ranges) v = v * r.size();
    return v;
}

std::vector<ConcreteRange> Subset::concretize(const sym::Bindings& bindings) const {
    std::vector<ConcreteRange> out;
    out.reserve(ranges.size());
    for (const Range& r : ranges)
        out.push_back(ConcreteRange{r.begin->evaluate(bindings), r.end->evaluate(bindings),
                                    r.step->evaluate(bindings)});
    return out;
}

Subset Subset::substituted(const sym::SubstMap& subst) const {
    Subset out;
    out.ranges.reserve(ranges.size());
    for (const Range& r : ranges) out.ranges.push_back(r.substituted(subst));
    return out;
}

bool Subset::equals(const Subset& other) const {
    if (ranges.size() != other.ranges.size()) return false;
    for (std::size_t i = 0; i < ranges.size(); ++i)
        if (!ranges[i].equals(other.ranges[i])) return false;
    return true;
}

std::string Subset::to_string() const {
    std::string s = "[";
    for (std::size_t i = 0; i < ranges.size(); ++i) {
        if (i) s += ", ";
        s += ranges[i].to_string();
    }
    return s + "]";
}

Subset Subset::bounding_union(const Subset& a, const Subset& b) {
    if (a.ranges.size() != b.ranges.size())
        throw common::Error("bounding_union: dimensionality mismatch");
    Subset out;
    out.ranges.reserve(a.ranges.size());
    for (std::size_t i = 0; i < a.ranges.size(); ++i) {
        out.ranges.push_back(Range{sym::min(a.ranges[i].begin, b.ranges[i].begin),
                                   sym::max(a.ranges[i].end, b.ranges[i].end), sym::cst(1)});
    }
    return out;
}

Subset Subset::full(const std::vector<sym::ExprPtr>& shape) {
    Subset out;
    out.ranges.reserve(shape.size());
    for (const auto& extent : shape) out.ranges.push_back(Range::full(extent));
    return out;
}

bool concrete_subsets_overlap(const std::vector<ConcreteRange>& a,
                              const std::vector<ConcreteRange>& b) {
    if (a.size() != b.size()) return true;  // shape confusion: be conservative
    for (std::size_t i = 0; i < a.size(); ++i) {
        // Normalize to [lo, hi] regardless of step sign.
        const std::int64_t alo = std::min(a[i][0], a[i][1]);
        const std::int64_t ahi = std::max(a[i][0], a[i][1]);
        const std::int64_t blo = std::min(b[i][0], b[i][1]);
        const std::int64_t bhi = std::max(b[i][0], b[i][1]);
        if (ahi < blo || bhi < alo) return false;  // disjoint in this dimension
    }
    return true;
}

std::string Memlet::to_string() const { return data + subset.to_string(); }

}  // namespace ff::ir
