#include "ir/subset.h"

#include <algorithm>

#include "common/error.h"

namespace ff::ir {

Range Range::index(sym::ExprPtr e) { return Range{e, e, sym::cst(1)}; }

Range Range::span(sym::ExprPtr begin, sym::ExprPtr end) {
    return Range{std::move(begin), std::move(end), sym::cst(1)};
}

Range Range::full(const sym::ExprPtr& extent) {
    return Range{sym::cst(0), extent - 1, sym::cst(1)};
}

sym::ExprPtr Range::size() const {
    // ceil((end - begin + 1) / step) for positive steps; with inclusive
    // bounds this is floor((end - begin) / step) + 1.
    return sym::floordiv(end - begin, step) + 1;
}

Range Range::substituted(const sym::SubstMap& subst) const {
    return Range{begin->substitute(subst), end->substitute(subst), step->substitute(subst)};
}

bool Range::equals(const Range& other) const {
    return begin->equals(*other.begin) && end->equals(*other.end) && step->equals(*other.step);
}

std::string Range::to_string() const {
    if (begin->equals(*end)) return begin->to_string();
    std::string s = begin->to_string() + ":" + end->to_string();
    if (!(step->is_constant() && step->constant_value() == 1)) s += ":" + step->to_string();
    return s;
}

std::int64_t concrete_range_size(const ConcreteRange& r) {
    const auto [begin, end, step] = r;
    if (step == 0) throw common::Error("range with step 0");
    if (step > 0) {
        if (end < begin) return 0;
        return (end - begin) / step + 1;
    }
    if (end > begin) return 0;
    return (begin - end) / (-step) + 1;
}

sym::ExprPtr Subset::volume() const {
    sym::ExprPtr v = sym::cst(1);
    for (const Range& r : ranges) v = v * r.size();
    return v;
}

std::vector<ConcreteRange> Subset::concretize(const sym::Bindings& bindings) const {
    std::vector<ConcreteRange> out;
    out.reserve(ranges.size());
    for (const Range& r : ranges)
        out.push_back(ConcreteRange{r.begin->evaluate(bindings), r.end->evaluate(bindings),
                                    r.step->evaluate(bindings)});
    return out;
}

Subset Subset::substituted(const sym::SubstMap& subst) const {
    Subset out;
    out.ranges.reserve(ranges.size());
    for (const Range& r : ranges) out.ranges.push_back(r.substituted(subst));
    return out;
}

bool Subset::equals(const Subset& other) const {
    if (ranges.size() != other.ranges.size()) return false;
    for (std::size_t i = 0; i < ranges.size(); ++i)
        if (!ranges[i].equals(other.ranges[i])) return false;
    return true;
}

std::string Subset::to_string() const {
    std::string s = "[";
    for (std::size_t i = 0; i < ranges.size(); ++i) {
        if (i) s += ", ";
        s += ranges[i].to_string();
    }
    return s + "]";
}

Subset Subset::bounding_union(const Subset& a, const Subset& b) {
    if (a.ranges.size() != b.ranges.size())
        throw common::Error("bounding_union: dimensionality mismatch");
    Subset out;
    out.ranges.reserve(a.ranges.size());
    for (std::size_t i = 0; i < a.ranges.size(); ++i) {
        out.ranges.push_back(Range{sym::min(a.ranges[i].begin, b.ranges[i].begin),
                                   sym::max(a.ranges[i].end, b.ranges[i].end), sym::cst(1)});
    }
    return out;
}

Subset Subset::full(const std::vector<sym::ExprPtr>& shape) {
    Subset out;
    out.ranges.reserve(shape.size());
    for (const auto& extent : shape) out.ranges.push_back(Range::full(extent));
    return out;
}

namespace {

/// Coefficient magnitudes beyond this bound reject the decomposition so the
/// interpreter's footprint arithmetic (coeff * extent * step in __int128)
/// can never overflow.
constexpr std::int64_t kMaxAffineCoeff = std::int64_t{1} << 20;

/// Walks `e`, accumulating parameter coefficients.  Returns false when the
/// expression is not affine with constant coefficients.  `scale` is the
/// constant multiplier of the current subtree.
bool accumulate_affine(const sym::Expr& e, const std::vector<const std::string*>& params,
                       std::int64_t scale, std::vector<std::int64_t>& coeffs) {
    using sym::BinOp;
    // A runaway scale can never produce an in-bound coefficient (conservative
    // for exotic cancelling expressions, which is fine).
    if (scale > kMaxAffineCoeff || scale < -kMaxAffineCoeff) return false;
    switch (e.kind()) {
        case sym::Expr::Kind::Constant:
            return true;
        case sym::Expr::Kind::Symbol: {
            for (std::size_t k = 0; k < params.size(); ++k) {
                if (*params[k] != e.symbol_name()) continue;
                coeffs[k] += scale;
                if (coeffs[k] > kMaxAffineCoeff || coeffs[k] < -kMaxAffineCoeff) return false;
                return true;
            }
            return true;  // free symbol: part of the base
        }
        case sym::Expr::Kind::Binary:
            break;
    }
    switch (e.op()) {
        case BinOp::Add:
            return accumulate_affine(*e.lhs(), params, scale, coeffs) &&
                   accumulate_affine(*e.rhs(), params, scale, coeffs);
        case BinOp::Sub:
            return accumulate_affine(*e.lhs(), params, scale, coeffs) &&
                   accumulate_affine(*e.rhs(), params, -scale, coeffs);
        case BinOp::Mul: {
            // One side must be a literal constant for the product to keep
            // constant coefficients; two param-free sides are also fine
            // (the whole product lands in the base).
            if (e.lhs()->is_constant()) {
                const std::int64_t c = e.lhs()->constant_value();
                if (c > kMaxAffineCoeff || c < -kMaxAffineCoeff) return false;
                return accumulate_affine(*e.rhs(), params, scale * c, coeffs);
            }
            if (e.rhs()->is_constant()) {
                const std::int64_t c = e.rhs()->constant_value();
                if (c > kMaxAffineCoeff || c < -kMaxAffineCoeff) return false;
                return accumulate_affine(*e.lhs(), params, scale * c, coeffs);
            }
            break;
        }
        case BinOp::FloorDiv:
        case BinOp::Mod:
        case BinOp::Min:
        case BinOp::Max:
            break;  // affine only when wholly param-free
    }
    // Non-affine operator: acceptable only if the whole subtree is free of
    // the params (then it is part of the base, evaluated at runtime).
    std::set<std::string> free;
    e.collect_symbols(free);
    for (const std::string* p : params)
        if (free.count(*p)) return false;
    return true;
}

}  // namespace

std::optional<std::vector<std::int64_t>> affine_coefficients(
    const sym::ExprPtr& expr, const std::vector<const std::string*>& params) {
    std::vector<std::int64_t> coeffs(params.size(), 0);
    if (!expr || !accumulate_affine(*expr, params, 1, coeffs)) return std::nullopt;
    return coeffs;
}

bool concrete_subsets_overlap(const std::vector<ConcreteRange>& a,
                              const std::vector<ConcreteRange>& b) {
    if (a.size() != b.size()) return true;  // shape confusion: be conservative
    for (std::size_t i = 0; i < a.size(); ++i) {
        // Normalize to [lo, hi] regardless of step sign.
        const std::int64_t alo = std::min(a[i][0], a[i][1]);
        const std::int64_t ahi = std::max(a[i][0], a[i][1]);
        const std::int64_t blo = std::min(b[i][0], b[i][1]);
        const std::int64_t bhi = std::max(b[i][0], b[i][1]);
        if (ahi < blo || bhi < alo) return false;  // disjoint in this dimension
    }
    return true;
}

std::string Memlet::to_string() const { return data + subset.to_string(); }

}  // namespace ff::ir
