#include "ir/state.h"

#include <algorithm>

namespace ff::ir {

NodeId State::add_access(const std::string& data) {
    DataflowNode n;
    n.kind = NodeKind::Access;
    n.label = data;
    n.data = data;
    return graph_.add_node(std::move(n));
}

NodeId State::add_tasklet(const std::string& label, const std::string& code) {
    DataflowNode n;
    n.kind = NodeKind::Tasklet;
    n.label = label;
    n.code = code;
    return graph_.add_node(std::move(n));
}

std::pair<NodeId, NodeId> State::add_map(const std::string& label,
                                         std::vector<std::string> params,
                                         std::vector<Range> ranges, Schedule schedule) {
    const std::int32_t sid = next_scope_id();
    DataflowNode entry;
    entry.kind = NodeKind::MapEntry;
    entry.label = label;
    entry.scope_id = sid;
    entry.params = std::move(params);
    entry.map_ranges = std::move(ranges);
    entry.schedule = schedule;
    DataflowNode exit;
    exit.kind = NodeKind::MapExit;
    exit.label = label;
    exit.scope_id = sid;
    exit.schedule = schedule;
    const NodeId e = graph_.add_node(std::move(entry));
    const NodeId x = graph_.add_node(std::move(exit));
    return {e, x};
}

NodeId State::add_library(LibraryKind kind, const std::string& label) {
    DataflowNode n;
    n.kind = NodeKind::Library;
    n.label = label.empty() ? library_kind_name(kind) : label;
    n.lib = kind;
    return graph_.add_node(std::move(n));
}

NodeId State::add_comm(CommKind kind, std::int32_t root, const std::string& label) {
    DataflowNode n;
    n.kind = NodeKind::Comm;
    n.label = label.empty() ? comm_kind_name(kind) : label;
    n.comm = kind;
    n.comm_root = root;
    return graph_.add_node(std::move(n));
}

EdgeId State::add_edge(NodeId src, const std::string& src_conn, NodeId dst,
                       const std::string& dst_conn, Memlet memlet) {
    MemletEdge e;
    e.memlet = std::move(memlet);
    e.src_conn = src_conn;
    e.dst_conn = dst_conn;
    return graph_.add_edge(src, dst, std::move(e));
}

NodeId State::map_exit_of(NodeId entry) const {
    const DataflowNode& n = graph_.node(entry);
    if (n.kind != NodeKind::MapEntry) return graph::kInvalidNode;
    for (NodeId cand : graph_.nodes()) {
        const DataflowNode& c = graph_.node(cand);
        if (c.kind == NodeKind::MapExit && c.scope_id == n.scope_id) return cand;
    }
    return graph::kInvalidNode;
}

NodeId State::map_entry_of(NodeId exit) const {
    const DataflowNode& n = graph_.node(exit);
    if (n.kind != NodeKind::MapExit) return graph::kInvalidNode;
    for (NodeId cand : graph_.nodes()) {
        const DataflowNode& c = graph_.node(cand);
        if (c.kind == NodeKind::MapEntry && c.scope_id == n.scope_id) return cand;
    }
    return graph::kInvalidNode;
}

std::set<NodeId> State::scope_nodes(NodeId entry) const {
    const NodeId exit = map_exit_of(entry);
    if (exit == graph::kInvalidNode) return {};
    // Inside = (reachable from entry) ∩ (reaching exit) \ {entry, exit}.
    std::set<NodeId> fwd = graph_.reachable_from(entry);
    std::set<NodeId> bwd = graph_.reaching(exit);
    std::set<NodeId> inside;
    std::set_intersection(fwd.begin(), fwd.end(), bwd.begin(), bwd.end(),
                          std::inserter(inside, inside.begin()));
    inside.erase(entry);
    inside.erase(exit);
    return inside;
}

NodeId State::parent_scope_of(NodeId node) const {
    NodeId best = graph::kInvalidNode;
    std::size_t best_size = 0;
    for (NodeId cand : graph_.nodes()) {
        if (graph_.node(cand).kind != NodeKind::MapEntry) continue;
        std::set<NodeId> inside = scope_nodes(cand);
        if (inside.count(node)) {
            // The innermost enclosing scope is the smallest one containing it.
            if (best == graph::kInvalidNode || inside.size() < best_size) {
                best = cand;
                best_size = inside.size();
            }
        }
    }
    return best;
}

std::vector<NodeId> State::access_nodes(const std::string& data) const {
    std::vector<NodeId> out;
    for (NodeId n : graph_.nodes()) {
        const DataflowNode& node = graph_.node(n);
        if (node.kind == NodeKind::Access && node.data == data) out.push_back(n);
    }
    return out;
}

std::string State::to_string() const {
    std::string s = "state " + name_ + " {\n";
    for (NodeId n : graph_.nodes()) {
        s += "  [" + std::to_string(n) + "] " + graph_.node(n).to_string() + "\n";
        for (EdgeId eid : graph_.out_edges(n)) {
            const auto& e = graph_.edge(eid);
            s += "    -> [" + std::to_string(e.dst) + "] " + e.data.to_string() + "\n";
        }
    }
    s += "}";
    return s;
}

}  // namespace ff::ir
