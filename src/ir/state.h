// A state: one dataflow multigraph.
//
// States are the inner hierarchy level of the IR (Sec. 2.3): an acyclic
// dataflow graph whose nodes are access nodes, tasklets, map scopes, library
// and communication nodes, and whose edges carry memlets.  Scope structure
// (which nodes live inside which map) is derived from graph connectivity,
// like in DaCe: everything reachable from a MapEntry that can also reach the
// matching MapExit lies inside the scope.
#pragma once

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "graph/digraph.h"
#include "ir/node.h"

namespace ff::ir {

using graph::EdgeId;
using graph::NodeId;

class State {
public:
    using Graph = graph::DiGraph<DataflowNode, MemletEdge>;

    State() = default;
    explicit State(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }
    void set_name(std::string n) { name_ = std::move(n); }

    Graph& graph() { return graph_; }
    const Graph& graph() const { return graph_; }

    // --- Construction helpers ---

    NodeId add_access(const std::string& data);

    NodeId add_tasklet(const std::string& label, const std::string& code);

    /// Adds a paired MapEntry/MapExit; returns {entry, exit}.
    std::pair<NodeId, NodeId> add_map(const std::string& label, std::vector<std::string> params,
                                      std::vector<Range> ranges,
                                      Schedule schedule = Schedule::Parallel);

    NodeId add_library(LibraryKind kind, const std::string& label = "");

    NodeId add_comm(CommKind kind, std::int32_t root = 0, const std::string& label = "");

    /// Adds a memlet edge. Connector names are "" when not applicable.
    EdgeId add_edge(NodeId src, const std::string& src_conn, NodeId dst,
                    const std::string& dst_conn, Memlet memlet);

    // --- Scope queries ---

    /// Matching exit for a MapEntry (by scope_id); kInvalidNode if missing.
    NodeId map_exit_of(NodeId entry) const;
    /// Matching entry for a MapExit; kInvalidNode if missing.
    NodeId map_entry_of(NodeId exit) const;

    /// Nodes strictly inside the scope of `entry` (excludes entry and exit,
    /// includes nested scopes' nodes).
    std::set<NodeId> scope_nodes(NodeId entry) const;

    /// Innermost MapEntry whose scope contains `node`; kInvalidNode at top level.
    NodeId parent_scope_of(NodeId node) const;

    /// All access nodes referring to `data`.
    std::vector<NodeId> access_nodes(const std::string& data) const;

    /// Fresh scope id for transformations that create new maps.
    std::int32_t next_scope_id() { return scope_counter_++; }

    std::string to_string() const;

private:
    std::string name_;
    Graph graph_;
    std::int32_t scope_counter_ = 0;
};

}  // namespace ff::ir
