#include "ir/data_desc.h"

namespace ff::ir {

sym::ExprPtr DataDesc::total_size() const {
    sym::ExprPtr total = sym::cst(1);
    for (const auto& extent : shape) total = total * extent;
    return total;
}

sym::ExprPtr DataDesc::total_bytes() const {
    return total_size() * static_cast<std::int64_t>(dtype_size(dtype));
}

std::vector<std::int64_t> DataDesc::concrete_shape(const sym::Bindings& bindings) const {
    std::vector<std::int64_t> out;
    out.reserve(shape.size());
    for (const auto& extent : shape) out.push_back(extent->evaluate(bindings));
    return out;
}

std::string DataDesc::to_string() const {
    std::string s = name;
    s += ": ";
    s += dtype_name(dtype);
    if (!shape.empty()) {
        s += "[";
        for (std::size_t i = 0; i < shape.size(); ++i) {
            if (i) s += ", ";
            s += shape[i]->to_string();
        }
        s += "]";
    }
    if (transient) s += " (transient)";
    if (storage == Storage::Device) s += " @device";
    return s;
}

}  // namespace ff::ir
