#include "ir/sdfg.h"

#include <atomic>
#include <utility>

#include "common/error.h"

namespace ff::ir {

std::uint64_t SDFG::next_plan_uid() {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

SDFG::SDFG(const SDFG& other)
    : name_(other.name_),
      containers_(other.containers_),
      symbols_(other.symbols_),
      cfg_(other.cfg_),
      start_state_(other.start_state_),
      mutation_epoch_(other.mutation_epoch_),
      plan_uid_(next_plan_uid()) {}

SDFG::SDFG(SDFG&& other) noexcept
    : name_(std::move(other.name_)),
      containers_(std::move(other.containers_)),
      symbols_(std::move(other.symbols_)),
      cfg_(std::move(other.cfg_)),
      start_state_(other.start_state_),
      mutation_epoch_(other.mutation_epoch_),
      plan_uid_(other.plan_uid_) {
    other.start_state_ = graph::kInvalidNode;
    other.plan_uid_ = next_plan_uid();
}

SDFG& SDFG::operator=(const SDFG& other) {
    if (this == &other) return *this;
    name_ = other.name_;
    containers_ = other.containers_;
    symbols_ = other.symbols_;
    cfg_ = other.cfg_;
    start_state_ = other.start_state_;
    mutation_epoch_ = other.mutation_epoch_;
    plan_uid_ = next_plan_uid();
    return *this;
}

SDFG& SDFG::operator=(SDFG&& other) noexcept {
    if (this == &other) return *this;
    name_ = std::move(other.name_);
    containers_ = std::move(other.containers_);
    symbols_ = std::move(other.symbols_);
    cfg_ = std::move(other.cfg_);
    start_state_ = other.start_state_;
    mutation_epoch_ = other.mutation_epoch_;
    plan_uid_ = other.plan_uid_;
    other.start_state_ = graph::kInvalidNode;
    other.plan_uid_ = next_plan_uid();
    return *this;
}

std::string InterstateEdge::to_string() const {
    std::string s;
    if (condition) s += "if " + condition->to_string();
    for (const auto& [symbol, expr] : assignments) {
        if (!s.empty()) s += "; ";
        s += symbol + " := " + expr->to_string();
    }
    return s.empty() ? "(unconditional)" : s;
}

DataDesc& SDFG::add_array(const std::string& name, DType dtype, std::vector<sym::ExprPtr> shape,
                          bool transient, Storage storage) {
    DataDesc desc;
    desc.name = name;
    desc.dtype = dtype;
    desc.shape = std::move(shape);
    desc.transient = transient;
    desc.storage = storage;
    auto [it, inserted] = containers_.emplace(name, std::move(desc));
    if (!inserted) throw common::ValidationError("duplicate container: " + name);
    return it->second;
}

DataDesc& SDFG::add_scalar(const std::string& name, DType dtype, bool transient) {
    return add_array(name, dtype, {}, transient);
}

const DataDesc& SDFG::container(const std::string& name) const {
    auto it = containers_.find(name);
    if (it == containers_.end()) throw common::ValidationError("unknown container: " + name);
    return it->second;
}

DataDesc& SDFG::container(const std::string& name) {
    auto it = containers_.find(name);
    if (it == containers_.end()) throw common::ValidationError("unknown container: " + name);
    return it->second;
}

StateId SDFG::add_state(const std::string& name, bool is_start) {
    const StateId id = cfg_.add_node(State(name));
    if (is_start || start_state_ == graph::kInvalidNode) start_state_ = id;
    return id;
}

graph::EdgeId SDFG::add_interstate_edge(StateId src, StateId dst, InterstateEdge edge) {
    return cfg_.add_edge(src, dst, std::move(edge));
}

std::string SDFG::fresh_container_name(const std::string& base) const {
    if (!has_container(base)) return base;
    for (int i = 0;; ++i) {
        std::string candidate = base + "_" + std::to_string(i);
        if (!has_container(candidate)) return candidate;
    }
}

std::set<std::string> SDFG::used_free_symbols() const {
    std::set<std::string> used;
    std::set<std::string> bound;  // map parameters
    for (const auto& [name, desc] : containers_)
        for (const auto& extent : desc.shape) extent->collect_symbols(used);
    for (StateId sid : cfg_.nodes()) {
        const State& st = cfg_.node(sid);
        for (NodeId n : st.graph().nodes()) {
            const DataflowNode& node = st.graph().node(n);
            if (node.kind == NodeKind::MapEntry) {
                for (const auto& p : node.params) bound.insert(p);
                for (const auto& r : node.map_ranges) {
                    r.begin->collect_symbols(used);
                    r.end->collect_symbols(used);
                    r.step->collect_symbols(used);
                }
            }
        }
        for (EdgeId eid : st.graph().edges()) {
            const auto& memlet = st.graph().edge(eid).data.memlet;
            for (const auto& r : memlet.subset.ranges) {
                r.begin->collect_symbols(used);
                r.end->collect_symbols(used);
                r.step->collect_symbols(used);
            }
        }
    }
    for (graph::EdgeId eid : cfg_.edges()) {
        const InterstateEdge& e = cfg_.edge(eid).data;
        if (e.condition) e.condition->collect_symbols(used);
        for (const auto& [symbol, expr] : e.assignments) expr->collect_symbols(used);
    }
    for (const auto& b : bound) used.erase(b);
    return used;
}

std::string SDFG::to_string() const {
    std::string s = "sdfg " + name_ + "\n";
    for (const auto& [name, desc] : containers_) s += "  " + desc.to_string() + "\n";
    for (StateId sid : cfg_.nodes()) {
        s += state(sid).to_string() + "\n";
        for (EdgeId eid : cfg_.out_edges(sid)) {
            const auto& e = cfg_.edge(eid);
            s += "  " + state(sid).name() + " -> " + state(e.dst).name() + " : " +
                 e.data.to_string() + "\n";
        }
    }
    return s;
}

}  // namespace ff::ir
