// Interned symbols: dense ids replacing string-keyed lookups on the hot path.
//
// Expression evaluation against `Bindings` (std::map<std::string, i64>) costs
// one red-black-tree walk with full string comparisons per symbol reference —
// paid once per map point for every map-parameter resolution and memlet index
// expression.  This header provides the interned alternative the interpreter
// plans against:
//
//  * SymbolTable — assigns each symbol name a dense SymId at plan-build time.
//    Thread-safe: plan construction interns under a writer lock while
//    concurrently executing interpreter threads resolve names (error paths
//    only) under reader locks.
//  * FlatBindings — the execution-time environment: a flat i64 vector plus a
//    bound-flag byte per id.  Binding a map parameter is an array store;
//    reading a symbol is an array load.
//  * CompiledExpr — a sym::Expr lowered once to a flat postfix program over
//    SymIds.  Evaluation walks the op array against FlatBindings with a
//    reusable stack: no tree recursion, no string comparisons, no allocation
//    in steady state.
//
// The string-keyed `Bindings` map stays the source of truth on cold paths
// (trial inputs, interstate assignments, buffer shapes); the interpreter
// mirrors the symbols a state plan references into FlatBindings once per
// state execution.
#pragma once

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "symbolic/expr.h"

namespace ff::sym {

/// Dense symbol id; valid ids are >= 0.
using SymId = std::int32_t;
constexpr SymId kNoSym = -1;

/// Name <-> dense id registry shared by every plan built against one cache.
class SymbolTable {
public:
    /// Id for `name`, interning it on first sight.  Writer-locked.
    SymId intern(const std::string& name);

    /// Id for `name` or kNoSym.  Reader-locked.
    SymId find(const std::string& name) const;

    /// Name of `id` (by value: the table may grow concurrently).
    std::string name(SymId id) const;

    std::size_t size() const;

private:
    mutable std::shared_mutex mutex_;
    std::unordered_map<std::string, SymId> ids_;
    std::vector<std::string> names_;
};

/// Flat symbol environment indexed by SymId: one i64 + one bound flag per id.
class FlatBindings {
public:
    /// Resizes to `n` ids, all unbound.
    void reset(std::size_t n) {
        values_.assign(n, 0);
        bound_.assign(n, 0);
    }

    std::size_t size() const { return values_.size(); }

    void bind(SymId id, std::int64_t v) {
        values_[static_cast<std::size_t>(id)] = v;
        bound_[static_cast<std::size_t>(id)] = 1;
    }
    void unbind(SymId id) { bound_[static_cast<std::size_t>(id)] = 0; }

    bool is_bound(SymId id) const { return bound_[static_cast<std::size_t>(id)] != 0; }
    std::int64_t value(SymId id) const { return values_[static_cast<std::size_t>(id)]; }

private:
    std::vector<std::int64_t> values_;
    std::vector<std::uint8_t> bound_;
};

/// Reusable evaluation stack for CompiledExpr (lives in interpreter scratch).
using EvalStack = std::vector<std::int64_t>;

/// A symbolic integer expression lowered to a flat postfix program over
/// interned symbol ids.  Immutable after lowering; safe to evaluate from
/// multiple threads concurrently (each with its own stack).
class CompiledExpr {
public:
    CompiledExpr() = default;

    /// Lowers `expr`, interning every referenced symbol into `table`.  Ids of
    /// referenced symbols are added to `used` when non-null.
    static CompiledExpr lower(const ExprPtr& expr, SymbolTable& table,
                              std::vector<SymId>* used = nullptr);

    /// Evaluates against `env`; throws common::UnboundSymbolError (with the
    /// symbol's name) on an unbound reference.  `stack` is caller-provided
    /// scratch, reused across calls.
    std::int64_t eval(const FlatBindings& env, EvalStack& stack) const;

    bool is_constant() const { return ops_.size() == 1 && ops_[0].kind == OpKind::PushConst; }

    /// Whether the program references any of `ids` (plan-time scope
    /// classification: a specialized map kernel requires its range bounds to
    /// be evaluable at scope entry, i.e. independent of the scope's own
    /// parameters).
    bool uses_any(const SymId* ids, std::size_t count) const;

private:
    enum class OpKind : std::uint8_t { PushConst, PushSym, Binary };
    struct Op {
        OpKind kind = OpKind::PushConst;
        BinOp bin = BinOp::Add;  // Binary only
        SymId sym = kNoSym;      // PushSym only
        std::int64_t value = 0;  // PushConst only
    };

    [[noreturn]] void raise_unbound(SymId id) const;

    std::vector<Op> ops_;
    const SymbolTable* table_ = nullptr;  // error reporting only
};

}  // namespace ff::sym
