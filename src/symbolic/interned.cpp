#include "symbolic/interned.h"

#include <algorithm>
#include <mutex>

#include "common/error.h"

namespace ff::sym {

SymId SymbolTable::intern(const std::string& name) {
    {
        std::shared_lock lock(mutex_);
        auto it = ids_.find(name);
        if (it != ids_.end()) return it->second;
    }
    std::unique_lock lock(mutex_);
    auto [it, inserted] = ids_.emplace(name, static_cast<SymId>(names_.size()));
    if (inserted) names_.push_back(name);
    return it->second;
}

SymId SymbolTable::find(const std::string& name) const {
    std::shared_lock lock(mutex_);
    auto it = ids_.find(name);
    return it == ids_.end() ? kNoSym : it->second;
}

std::string SymbolTable::name(SymId id) const {
    std::shared_lock lock(mutex_);
    if (id < 0 || static_cast<std::size_t>(id) >= names_.size())
        return "<sym#" + std::to_string(id) + ">";
    return names_[static_cast<std::size_t>(id)];
}

std::size_t SymbolTable::size() const {
    std::shared_lock lock(mutex_);
    return names_.size();
}

namespace {

std::int64_t apply_bin(BinOp op, std::int64_t a, std::int64_t b) {
    switch (op) {
        case BinOp::Add: return a + b;
        case BinOp::Sub: return a - b;
        case BinOp::Mul: return a * b;
        case BinOp::FloorDiv: return floordiv_i64(a, b);
        case BinOp::Mod: return floormod_i64(a, b);
        case BinOp::Min: return a < b ? a : b;
        case BinOp::Max: return a > b ? a : b;
    }
    throw common::Error("unreachable binop");
}

}  // namespace

CompiledExpr CompiledExpr::lower(const ExprPtr& expr, SymbolTable& table,
                                 std::vector<SymId>* used) {
    CompiledExpr ce;
    ce.table_ = &table;
    auto walk = [&](auto&& self, const Expr& e) -> void {
        switch (e.kind()) {
            case Expr::Kind::Constant: {
                Op op;
                op.kind = OpKind::PushConst;
                op.value = e.constant_value();
                ce.ops_.push_back(op);
                return;
            }
            case Expr::Kind::Symbol: {
                Op op;
                op.kind = OpKind::PushSym;
                op.sym = table.intern(e.symbol_name());
                ce.ops_.push_back(op);
                if (used && std::find(used->begin(), used->end(), op.sym) == used->end())
                    used->push_back(op.sym);
                return;
            }
            case Expr::Kind::Binary: {
                self(self, *e.lhs());
                self(self, *e.rhs());
                Op op;
                op.kind = OpKind::Binary;
                op.bin = e.op();
                ce.ops_.push_back(op);
                return;
            }
        }
        throw common::Error("unreachable expr kind");
    };
    walk(walk, *expr);
    return ce;
}

bool CompiledExpr::uses_any(const SymId* ids, std::size_t count) const {
    for (const Op& op : ops_) {
        if (op.kind != OpKind::PushSym) continue;
        for (std::size_t i = 0; i < count; ++i)
            if (ids[i] == op.sym) return true;
    }
    return false;
}

void CompiledExpr::raise_unbound(SymId id) const {
    throw common::UnboundSymbolError(table_ ? table_->name(id)
                                            : "<sym#" + std::to_string(id) + ">");
}

std::int64_t CompiledExpr::eval(const FlatBindings& env, EvalStack& stack) const {
    // Fast path: a bare constant or symbol (the overwhelmingly common shape
    // of map bounds and memlet indices) needs no stack traffic.
    if (ops_.size() == 1) {
        const Op& op = ops_[0];
        if (op.kind == OpKind::PushConst) return op.value;
        if (!env.is_bound(op.sym)) raise_unbound(op.sym);
        return env.value(op.sym);
    }

    stack.clear();
    for (const Op& op : ops_) {
        switch (op.kind) {
            case OpKind::PushConst: stack.push_back(op.value); break;
            case OpKind::PushSym:
                if (!env.is_bound(op.sym)) raise_unbound(op.sym);
                stack.push_back(env.value(op.sym));
                break;
            case OpKind::Binary: {
                const std::int64_t b = stack.back();
                stack.pop_back();
                std::int64_t& a = stack.back();
                a = apply_bin(op.bin, a, b);
                break;
            }
        }
    }
    return stack.back();
}

}  // namespace ff::sym
