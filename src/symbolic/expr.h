// Symbolic integer and boolean expressions.
//
// This is the "parametric" half of the parametric dataflow representation
// (Table 1 of the paper): container shapes, memlet subsets, map ranges and
// interstate conditions are all expressions over named integer symbols
// (program parameters such as N, or loop variables).  Keeping sizes symbolic
// is what lets cutouts generalize over input *sizes*, not just values.
//
// Expressions are immutable trees shared via shared_ptr<const Expr>.
// Construction applies lightweight structural simplification (constant
// folding, identity elements) so printed IRs stay readable.
//
// Division and modulo follow *floor* semantics (like Python / SymPy, which
// the original DaCe-based implementation relies on), not C truncation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace ff::sym {

class Expr;
class BoolExpr;
using ExprPtr = std::shared_ptr<const Expr>;
using BoolExprPtr = std::shared_ptr<const BoolExpr>;

/// Concrete values for symbols, used when evaluating expressions.
using Bindings = std::map<std::string, std::int64_t>;
/// Symbol -> replacement expression, used by substitute().
using SubstMap = std::map<std::string, ExprPtr>;

enum class BinOp { Add, Sub, Mul, FloorDiv, Mod, Min, Max };
enum class CmpOp { Lt, Le, Gt, Ge, Eq, Ne };

/// Immutable symbolic integer expression.
class Expr {
public:
    enum class Kind { Constant, Symbol, Binary };

    // --- Factories (the only way to build expressions) ---
    static ExprPtr constant(std::int64_t value);
    static ExprPtr symbol(std::string name);
    /// Builds a binary node, folding constants and applying identities.
    static ExprPtr binary(BinOp op, ExprPtr lhs, ExprPtr rhs);

    Kind kind() const { return kind_; }
    bool is_constant() const { return kind_ == Kind::Constant; }
    bool is_symbol() const { return kind_ == Kind::Symbol; }
    /// Only valid for constants.
    std::int64_t constant_value() const { return constant_; }
    /// Only valid for symbols.
    const std::string& symbol_name() const { return symbol_; }
    /// Only valid for binaries.
    BinOp op() const { return op_; }
    const ExprPtr& lhs() const { return lhs_; }
    const ExprPtr& rhs() const { return rhs_; }

    /// Evaluate with full bindings; throws common::UnboundSymbolError.
    std::int64_t evaluate(const Bindings& bindings) const;

    /// Replace symbols with expressions (simultaneous substitution).
    ExprPtr substitute(const SubstMap& subst) const;

    /// Add every free symbol name to `out`.
    void collect_symbols(std::set<std::string>& out) const;
    std::set<std::string> free_symbols() const;

    /// Structural equality (after construction-time simplification).
    bool equals(const Expr& other) const;

    std::string to_string() const;

private:
    Expr() = default;

    Kind kind_ = Kind::Constant;
    std::int64_t constant_ = 0;
    std::string symbol_;
    BinOp op_ = BinOp::Add;
    ExprPtr lhs_, rhs_;
};

// --- Convenience operators on ExprPtr ---
ExprPtr operator+(const ExprPtr& a, const ExprPtr& b);
ExprPtr operator-(const ExprPtr& a, const ExprPtr& b);
ExprPtr operator*(const ExprPtr& a, const ExprPtr& b);
ExprPtr operator+(const ExprPtr& a, std::int64_t b);
ExprPtr operator-(const ExprPtr& a, std::int64_t b);
ExprPtr operator*(const ExprPtr& a, std::int64_t b);
ExprPtr floordiv(const ExprPtr& a, const ExprPtr& b);
ExprPtr mod(const ExprPtr& a, const ExprPtr& b);
ExprPtr min(const ExprPtr& a, const ExprPtr& b);
ExprPtr max(const ExprPtr& a, const ExprPtr& b);

/// Shorthand factories.
inline ExprPtr cst(std::int64_t v) { return Expr::constant(v); }
inline ExprPtr symb(std::string name) { return Expr::symbol(std::move(name)); }

/// Floor division / floor modulo on concrete values (shared with the
/// interpreter so symbolic and concrete semantics agree).
std::int64_t floordiv_i64(std::int64_t a, std::int64_t b);
std::int64_t floormod_i64(std::int64_t a, std::int64_t b);

/// Immutable symbolic boolean expression (interstate edge conditions).
class BoolExpr {
public:
    enum class Kind { Constant, Compare, And, Or, Not };

    static BoolExprPtr constant(bool value);
    static BoolExprPtr compare(CmpOp op, ExprPtr lhs, ExprPtr rhs);
    static BoolExprPtr logical_and(BoolExprPtr a, BoolExprPtr b);
    static BoolExprPtr logical_or(BoolExprPtr a, BoolExprPtr b);
    static BoolExprPtr logical_not(BoolExprPtr a);

    Kind kind() const { return kind_; }
    bool constant_value() const { return bconst_; }
    CmpOp cmp() const { return cmp_; }
    const ExprPtr& lhs() const { return lhs_; }
    const ExprPtr& rhs() const { return rhs_; }
    const BoolExprPtr& a() const { return a_; }
    const BoolExprPtr& b() const { return b_; }

    bool evaluate(const Bindings& bindings) const;
    BoolExprPtr substitute(const SubstMap& subst) const;
    void collect_symbols(std::set<std::string>& out) const;
    bool equals(const BoolExpr& other) const;
    std::string to_string() const;

private:
    BoolExpr() = default;

    Kind kind_ = Kind::Constant;
    bool bconst_ = true;
    CmpOp cmp_ = CmpOp::Lt;
    ExprPtr lhs_, rhs_;
    BoolExprPtr a_, b_;
};

}  // namespace ff::sym
