#include "symbolic/parser.h"

#include <cctype>
#include <charconv>

#include "common/error.h"

namespace ff::sym {

namespace {

/// Hand-rolled recursive-descent parser with backtracking for the
/// parenthesized-boolean vs parenthesized-arithmetic ambiguity.
class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    ExprPtr parse_expr_all() {
        ExprPtr e = expr();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters in expression");
        return e;
    }

    BoolExprPtr parse_bool_all() {
        BoolExprPtr e = bool_or();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters in boolean expression");
        return e;
    }

private:
    [[noreturn]] void fail(const std::string& msg) {
        throw common::ParseError("'" + std::string(text_) + "' at offset " +
                                 std::to_string(pos_) + ": " + msg);
    }

    void skip_ws() {
        while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }

    bool eat(char c) {
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool eat_word(std::string_view word) {
        skip_ws();
        if (text_.substr(pos_, word.size()) != word) return false;
        const std::size_t after = pos_ + word.size();
        if (after < text_.size() &&
            (std::isalnum(static_cast<unsigned char>(text_[after])) || text_[after] == '_'))
            return false;  // identifier continues; not a keyword
        pos_ = after;
        return true;
    }

    char peek() {
        skip_ws();
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    ExprPtr expr() {
        ExprPtr lhs = term();
        while (true) {
            if (eat('+')) lhs = Expr::binary(BinOp::Add, lhs, term());
            else if (peek() == '-' && !is_cmp_start()) { ++pos_; lhs = Expr::binary(BinOp::Sub, lhs, term()); }
            else break;
        }
        return lhs;
    }

    bool is_cmp_start() { return false; }  // '-' never begins a comparison

    ExprPtr term() {
        ExprPtr lhs = unary();
        while (true) {
            if (eat('*')) lhs = Expr::binary(BinOp::Mul, lhs, unary());
            else if (eat('/')) lhs = Expr::binary(BinOp::FloorDiv, lhs, unary());
            else if (eat('%')) lhs = Expr::binary(BinOp::Mod, lhs, unary());
            else break;
        }
        return lhs;
    }

    ExprPtr unary() {
        if (eat('-')) return Expr::binary(BinOp::Sub, Expr::constant(0), unary());
        return atom();
    }

    ExprPtr atom() {
        skip_ws();
        if (pos_ >= text_.size()) fail("unexpected end of expression");
        const char c = text_[pos_];
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t start = pos_;
            while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
            std::int64_t v = 0;
            std::from_chars(text_.data() + start, text_.data() + pos_, v);
            return Expr::constant(v);
        }
        if (c == '(') {
            ++pos_;
            ExprPtr e = expr();
            if (!eat(')')) fail("expected ')'");
            return e;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::string name = ident();
            if ((name == "min" || name == "max") && eat('(')) {
                ExprPtr a = expr();
                if (!eat(',')) fail("expected ',' in min/max");
                ExprPtr b = expr();
                if (!eat(')')) fail("expected ')' in min/max");
                return Expr::binary(name == "min" ? BinOp::Min : BinOp::Max, a, b);
            }
            return Expr::symbol(std::move(name));
        }
        fail("unexpected character");
    }

    std::string ident() {
        skip_ws();
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_'))
            ++pos_;
        if (start == pos_) fail("expected identifier");
        return std::string(text_.substr(start, pos_ - start));
    }

    // --- Boolean grammar ---

    BoolExprPtr bool_or() {
        BoolExprPtr lhs = bool_and();
        while (eat_word("or")) lhs = BoolExpr::logical_or(lhs, bool_and());
        return lhs;
    }

    BoolExprPtr bool_and() {
        BoolExprPtr lhs = bool_not();
        while (eat_word("and")) lhs = BoolExpr::logical_and(lhs, bool_not());
        return lhs;
    }

    BoolExprPtr bool_not() {
        if (eat_word("not")) return BoolExpr::logical_not(bool_not());
        return bool_atom();
    }

    BoolExprPtr bool_atom() {
        if (eat_word("true")) return BoolExpr::constant(true);
        if (eat_word("false")) return BoolExpr::constant(false);
        if (peek() == '(') {
            // Ambiguous: "(i < 2) and ..." vs "(i + 1) < 2".  Try boolean
            // first; backtrack to arithmetic comparison on failure.
            const std::size_t save = pos_;
            try {
                ++pos_;  // consume '('
                BoolExprPtr inner = bool_or();
                if (!eat(')')) throw common::ParseError("no closing paren");
                return inner;
            } catch (const common::ParseError&) {
                pos_ = save;
            }
        }
        return comparison();
    }

    BoolExprPtr comparison() {
        ExprPtr lhs = expr();
        skip_ws();
        CmpOp op;
        if (text_.substr(pos_, 2) == "<=") { op = CmpOp::Le; pos_ += 2; }
        else if (text_.substr(pos_, 2) == ">=") { op = CmpOp::Ge; pos_ += 2; }
        else if (text_.substr(pos_, 2) == "==") { op = CmpOp::Eq; pos_ += 2; }
        else if (text_.substr(pos_, 2) == "!=") { op = CmpOp::Ne; pos_ += 2; }
        else if (pos_ < text_.size() && text_[pos_] == '<') { op = CmpOp::Lt; ++pos_; }
        else if (pos_ < text_.size() && text_[pos_] == '>') { op = CmpOp::Gt; ++pos_; }
        else fail("expected comparison operator");
        return BoolExpr::compare(op, lhs, expr());
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

ExprPtr parse_expr(std::string_view text) { return Parser(text).parse_expr_all(); }
BoolExprPtr parse_bool(std::string_view text) { return Parser(text).parse_bool_all(); }

}  // namespace ff::sym
