// Text parsers for symbolic expressions.
//
// Grammar (arithmetic):
//   expr  := term (('+'|'-') term)*
//   term  := unary (('*'|'/'|'%') unary)*
//   unary := '-' unary | atom
//   atom  := INT | IDENT | ('min'|'max') '(' expr ',' expr ')' | '(' expr ')'
//
// Grammar (boolean):
//   bool  := band ('or' band)*
//   band  := bnot ('and' bnot)*
//   bnot  := 'not' bnot | batom
//   batom := 'true' | 'false' | '(' bool ')' | expr CMP expr
//   CMP   := '<' | '<=' | '>' | '>=' | '==' | '!='
//
// Division is *floor* division, consistent with sym::Expr semantics.
#pragma once

#include <string_view>

#include "symbolic/expr.h"

namespace ff::sym {

/// Parse an arithmetic expression; throws common::ParseError.
ExprPtr parse_expr(std::string_view text);

/// Parse a boolean expression; throws common::ParseError.
BoolExprPtr parse_bool(std::string_view text);

}  // namespace ff::sym
