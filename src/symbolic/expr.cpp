#include "symbolic/expr.h"

#include <algorithm>

#include "common/error.h"

namespace ff::sym {

std::int64_t floordiv_i64(std::int64_t a, std::int64_t b) {
    if (b == 0) throw common::Error("symbolic evaluation: division by zero");
    std::int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
    return q;
}

std::int64_t floormod_i64(std::int64_t a, std::int64_t b) {
    if (b == 0) throw common::Error("symbolic evaluation: modulo by zero");
    std::int64_t r = a % b;
    if (r != 0 && ((r < 0) != (b < 0))) r += b;
    return r;
}

namespace {

std::int64_t apply_op(BinOp op, std::int64_t a, std::int64_t b) {
    switch (op) {
        case BinOp::Add: return a + b;
        case BinOp::Sub: return a - b;
        case BinOp::Mul: return a * b;
        case BinOp::FloorDiv: return floordiv_i64(a, b);
        case BinOp::Mod: return floormod_i64(a, b);
        case BinOp::Min: return std::min(a, b);
        case BinOp::Max: return std::max(a, b);
    }
    throw common::Error("unreachable binop");
}

bool apply_cmp(CmpOp op, std::int64_t a, std::int64_t b) {
    switch (op) {
        case CmpOp::Lt: return a < b;
        case CmpOp::Le: return a <= b;
        case CmpOp::Gt: return a > b;
        case CmpOp::Ge: return a >= b;
        case CmpOp::Eq: return a == b;
        case CmpOp::Ne: return a != b;
    }
    throw common::Error("unreachable cmpop");
}

const char* op_text(BinOp op) {
    switch (op) {
        case BinOp::Add: return "+";
        case BinOp::Sub: return "-";
        case BinOp::Mul: return "*";
        case BinOp::FloorDiv: return "/";
        case BinOp::Mod: return "%";
        case BinOp::Min: return "min";
        case BinOp::Max: return "max";
    }
    return "?";
}

const char* cmp_text(CmpOp op) {
    switch (op) {
        case CmpOp::Lt: return "<";
        case CmpOp::Le: return "<=";
        case CmpOp::Gt: return ">";
        case CmpOp::Ge: return ">=";
        case CmpOp::Eq: return "==";
        case CmpOp::Ne: return "!=";
    }
    return "?";
}

int precedence(BinOp op) {
    switch (op) {
        case BinOp::Add:
        case BinOp::Sub: return 1;
        case BinOp::Mul:
        case BinOp::FloorDiv:
        case BinOp::Mod: return 2;
        case BinOp::Min:
        case BinOp::Max: return 3;  // printed as function calls
    }
    return 0;
}

}  // namespace

ExprPtr Expr::constant(std::int64_t value) {
    auto e = std::shared_ptr<Expr>(new Expr());
    e->kind_ = Kind::Constant;
    e->constant_ = value;
    return e;
}

ExprPtr Expr::symbol(std::string name) {
    auto e = std::shared_ptr<Expr>(new Expr());
    e->kind_ = Kind::Symbol;
    e->symbol_ = std::move(name);
    return e;
}

ExprPtr Expr::binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
    // Constant folding.
    if (lhs->is_constant() && rhs->is_constant())
        return constant(apply_op(op, lhs->constant_value(), rhs->constant_value()));

    // Identity / absorbing elements.
    const bool lzero = lhs->is_constant() && lhs->constant_value() == 0;
    const bool rzero = rhs->is_constant() && rhs->constant_value() == 0;
    const bool lone = lhs->is_constant() && lhs->constant_value() == 1;
    const bool rone = rhs->is_constant() && rhs->constant_value() == 1;
    switch (op) {
        case BinOp::Add:
            if (lzero) return rhs;
            if (rzero) return lhs;
            break;
        case BinOp::Sub:
            if (rzero) return lhs;
            if (lhs->equals(*rhs)) return constant(0);
            break;
        case BinOp::Mul:
            if (lzero || rzero) return constant(0);
            if (lone) return rhs;
            if (rone) return lhs;
            break;
        case BinOp::FloorDiv:
            if (rone) return lhs;
            if (lzero) return constant(0);
            break;
        case BinOp::Mod:
            if (rone) return constant(0);
            break;
        case BinOp::Min:
        case BinOp::Max:
            if (lhs->equals(*rhs)) return lhs;
            break;
    }

    // Fold chained constant additions: (x + c1) + c2 -> x + (c1+c2).
    if ((op == BinOp::Add || op == BinOp::Sub) && rhs->is_constant() &&
        lhs->kind() == Kind::Binary &&
        (lhs->op() == BinOp::Add || lhs->op() == BinOp::Sub) && lhs->rhs()->is_constant()) {
        const std::int64_t inner = lhs->op() == BinOp::Add ? lhs->rhs()->constant_value()
                                                           : -lhs->rhs()->constant_value();
        const std::int64_t outer = op == BinOp::Add ? rhs->constant_value()
                                                    : -rhs->constant_value();
        const std::int64_t total = inner + outer;
        if (total == 0) return lhs->lhs();
        if (total > 0) return binary(BinOp::Add, lhs->lhs(), constant(total));
        return binary(BinOp::Sub, lhs->lhs(), constant(-total));
    }

    auto e = std::shared_ptr<Expr>(new Expr());
    e->kind_ = Kind::Binary;
    e->op_ = op;
    e->lhs_ = std::move(lhs);
    e->rhs_ = std::move(rhs);
    return e;
}

std::int64_t Expr::evaluate(const Bindings& bindings) const {
    switch (kind_) {
        case Kind::Constant: return constant_;
        case Kind::Symbol: {
            auto it = bindings.find(symbol_);
            if (it == bindings.end()) throw common::UnboundSymbolError(symbol_);
            return it->second;
        }
        case Kind::Binary:
            return apply_op(op_, lhs_->evaluate(bindings), rhs_->evaluate(bindings));
    }
    throw common::Error("unreachable expr kind");
}

ExprPtr Expr::substitute(const SubstMap& subst) const {
    switch (kind_) {
        case Kind::Constant: return constant(constant_);
        case Kind::Symbol: {
            auto it = subst.find(symbol_);
            if (it != subst.end()) return it->second;
            return symbol(symbol_);
        }
        case Kind::Binary:
            return binary(op_, lhs_->substitute(subst), rhs_->substitute(subst));
    }
    throw common::Error("unreachable expr kind");
}

void Expr::collect_symbols(std::set<std::string>& out) const {
    switch (kind_) {
        case Kind::Constant: return;
        case Kind::Symbol: out.insert(symbol_); return;
        case Kind::Binary:
            lhs_->collect_symbols(out);
            rhs_->collect_symbols(out);
            return;
    }
}

std::set<std::string> Expr::free_symbols() const {
    std::set<std::string> out;
    collect_symbols(out);
    return out;
}

bool Expr::equals(const Expr& other) const {
    if (kind_ != other.kind_) return false;
    switch (kind_) {
        case Kind::Constant: return constant_ == other.constant_;
        case Kind::Symbol: return symbol_ == other.symbol_;
        case Kind::Binary:
            return op_ == other.op_ && lhs_->equals(*other.lhs_) && rhs_->equals(*other.rhs_);
    }
    return false;
}

std::string Expr::to_string() const {
    switch (kind_) {
        case Kind::Constant: return std::to_string(constant_);
        case Kind::Symbol: return symbol_;
        case Kind::Binary: {
            if (op_ == BinOp::Min || op_ == BinOp::Max) {
                return std::string(op_text(op_)) + "(" + lhs_->to_string() + ", " +
                       rhs_->to_string() + ")";
            }
            auto wrap = [this](const ExprPtr& child, bool right) {
                std::string s = child->to_string();
                if (child->kind() != Kind::Binary) return s;
                const int pc = precedence(child->op());
                const int pp = precedence(op_);
                // Parenthesize when the child binds weaker, or equal on the
                // right side of non-associative ops.
                const bool nonassoc = op_ == BinOp::Sub || op_ == BinOp::FloorDiv || op_ == BinOp::Mod;
                if (pc < pp || (pc == pp && right && nonassoc)) return "(" + s + ")";
                if (child->op() == BinOp::Min || child->op() == BinOp::Max) return s;
                return s;
            };
            return wrap(lhs_, false) + " " + op_text(op_) + " " + wrap(rhs_, true);
        }
    }
    return "?";
}

ExprPtr operator+(const ExprPtr& a, const ExprPtr& b) { return Expr::binary(BinOp::Add, a, b); }
ExprPtr operator-(const ExprPtr& a, const ExprPtr& b) { return Expr::binary(BinOp::Sub, a, b); }
ExprPtr operator*(const ExprPtr& a, const ExprPtr& b) { return Expr::binary(BinOp::Mul, a, b); }
ExprPtr operator+(const ExprPtr& a, std::int64_t b) { return a + Expr::constant(b); }
ExprPtr operator-(const ExprPtr& a, std::int64_t b) { return a - Expr::constant(b); }
ExprPtr operator*(const ExprPtr& a, std::int64_t b) { return a * Expr::constant(b); }
ExprPtr floordiv(const ExprPtr& a, const ExprPtr& b) { return Expr::binary(BinOp::FloorDiv, a, b); }
ExprPtr mod(const ExprPtr& a, const ExprPtr& b) { return Expr::binary(BinOp::Mod, a, b); }
ExprPtr min(const ExprPtr& a, const ExprPtr& b) { return Expr::binary(BinOp::Min, a, b); }
ExprPtr max(const ExprPtr& a, const ExprPtr& b) { return Expr::binary(BinOp::Max, a, b); }

// --- BoolExpr ---

BoolExprPtr BoolExpr::constant(bool value) {
    auto e = std::shared_ptr<BoolExpr>(new BoolExpr());
    e->kind_ = Kind::Constant;
    e->bconst_ = value;
    return e;
}

BoolExprPtr BoolExpr::compare(CmpOp op, ExprPtr lhs, ExprPtr rhs) {
    if (lhs->is_constant() && rhs->is_constant())
        return constant(apply_cmp(op, lhs->constant_value(), rhs->constant_value()));
    auto e = std::shared_ptr<BoolExpr>(new BoolExpr());
    e->kind_ = Kind::Compare;
    e->cmp_ = op;
    e->lhs_ = std::move(lhs);
    e->rhs_ = std::move(rhs);
    return e;
}

BoolExprPtr BoolExpr::logical_and(BoolExprPtr a, BoolExprPtr b) {
    if (a->kind() == Kind::Constant) return a->constant_value() ? b : a;
    if (b->kind() == Kind::Constant) return b->constant_value() ? a : b;
    auto e = std::shared_ptr<BoolExpr>(new BoolExpr());
    e->kind_ = Kind::And;
    e->a_ = std::move(a);
    e->b_ = std::move(b);
    return e;
}

BoolExprPtr BoolExpr::logical_or(BoolExprPtr a, BoolExprPtr b) {
    if (a->kind() == Kind::Constant) return a->constant_value() ? a : b;
    if (b->kind() == Kind::Constant) return b->constant_value() ? b : a;
    auto e = std::shared_ptr<BoolExpr>(new BoolExpr());
    e->kind_ = Kind::Or;
    e->a_ = std::move(a);
    e->b_ = std::move(b);
    return e;
}

BoolExprPtr BoolExpr::logical_not(BoolExprPtr a) {
    if (a->kind() == Kind::Constant) return constant(!a->constant_value());
    auto e = std::shared_ptr<BoolExpr>(new BoolExpr());
    e->kind_ = Kind::Not;
    e->a_ = std::move(a);
    return e;
}

bool BoolExpr::evaluate(const Bindings& bindings) const {
    switch (kind_) {
        case Kind::Constant: return bconst_;
        case Kind::Compare:
            return apply_cmp(cmp_, lhs_->evaluate(bindings), rhs_->evaluate(bindings));
        case Kind::And: return a_->evaluate(bindings) && b_->evaluate(bindings);
        case Kind::Or: return a_->evaluate(bindings) || b_->evaluate(bindings);
        case Kind::Not: return !a_->evaluate(bindings);
    }
    throw common::Error("unreachable boolexpr kind");
}

BoolExprPtr BoolExpr::substitute(const SubstMap& subst) const {
    switch (kind_) {
        case Kind::Constant: return constant(bconst_);
        case Kind::Compare:
            return compare(cmp_, lhs_->substitute(subst), rhs_->substitute(subst));
        case Kind::And: return logical_and(a_->substitute(subst), b_->substitute(subst));
        case Kind::Or: return logical_or(a_->substitute(subst), b_->substitute(subst));
        case Kind::Not: return logical_not(a_->substitute(subst));
    }
    throw common::Error("unreachable boolexpr kind");
}

void BoolExpr::collect_symbols(std::set<std::string>& out) const {
    switch (kind_) {
        case Kind::Constant: return;
        case Kind::Compare:
            lhs_->collect_symbols(out);
            rhs_->collect_symbols(out);
            return;
        case Kind::And:
        case Kind::Or:
            a_->collect_symbols(out);
            b_->collect_symbols(out);
            return;
        case Kind::Not: a_->collect_symbols(out); return;
    }
}

bool BoolExpr::equals(const BoolExpr& other) const {
    if (kind_ != other.kind_) return false;
    switch (kind_) {
        case Kind::Constant: return bconst_ == other.bconst_;
        case Kind::Compare:
            return cmp_ == other.cmp_ && lhs_->equals(*other.lhs_) && rhs_->equals(*other.rhs_);
        case Kind::And:
        case Kind::Or: return a_->equals(*other.a_) && b_->equals(*other.b_);
        case Kind::Not: return a_->equals(*other.a_);
    }
    return false;
}

std::string BoolExpr::to_string() const {
    switch (kind_) {
        case Kind::Constant: return bconst_ ? "true" : "false";
        case Kind::Compare:
            return lhs_->to_string() + " " + cmp_text(cmp_) + " " + rhs_->to_string();
        case Kind::And: return "(" + a_->to_string() + " and " + b_->to_string() + ")";
        case Kind::Or: return "(" + a_->to_string() + " or " + b_->to_string() + ")";
        case Kind::Not: return "not (" + a_->to_string() + ")";
    }
    return "?";
}

}  // namespace ff::sym
