// Generic directed multigraph with stable integer handles.
//
// Both hierarchy levels of the IR (the state machine and each state's
// dataflow graph) are instances of this template, as is the flow network the
// minimum input-flow cut builds (Sec. 4.2).  Nodes and edges are stored in
// slot vectors; removal tombstones the slot so handles held by transformation
// change sets stay valid.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <queue>
#include <set>
#include <vector>

namespace ff::graph {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

template <typename NodeData, typename EdgeData>
class DiGraph {
public:
    struct Edge {
        NodeId src = kInvalidNode;
        NodeId dst = kInvalidNode;
        EdgeData data{};
        bool alive = false;
    };

    struct NodeSlot {
        NodeData data{};
        bool alive = false;
        std::vector<EdgeId> in_edges;
        std::vector<EdgeId> out_edges;
    };

    NodeId add_node(NodeData data) {
        nodes_.push_back(NodeSlot{std::move(data), true, {}, {}});
        return static_cast<NodeId>(nodes_.size() - 1);
    }

    EdgeId add_edge(NodeId src, NodeId dst, EdgeData data) {
        assert(contains_node(src) && contains_node(dst));
        edges_.push_back(Edge{src, dst, std::move(data), true});
        const EdgeId id = static_cast<EdgeId>(edges_.size() - 1);
        nodes_[static_cast<std::size_t>(src)].out_edges.push_back(id);
        nodes_[static_cast<std::size_t>(dst)].in_edges.push_back(id);
        return id;
    }

    void remove_edge(EdgeId id) {
        assert(contains_edge(id));
        Edge& e = edges_[static_cast<std::size_t>(id)];
        e.alive = false;
        erase_value(nodes_[static_cast<std::size_t>(e.src)].out_edges, id);
        erase_value(nodes_[static_cast<std::size_t>(e.dst)].in_edges, id);
    }

    /// Removes a node and all incident edges.
    void remove_node(NodeId id) {
        assert(contains_node(id));
        NodeSlot& slot = nodes_[static_cast<std::size_t>(id)];
        // Copy: remove_edge mutates the adjacency lists.
        for (EdgeId e : std::vector<EdgeId>(slot.in_edges)) remove_edge(e);
        for (EdgeId e : std::vector<EdgeId>(slot.out_edges)) remove_edge(e);
        slot.alive = false;
    }

    bool contains_node(NodeId id) const {
        return id >= 0 && static_cast<std::size_t>(id) < nodes_.size() &&
               nodes_[static_cast<std::size_t>(id)].alive;
    }
    bool contains_edge(EdgeId id) const {
        return id >= 0 && static_cast<std::size_t>(id) < edges_.size() &&
               edges_[static_cast<std::size_t>(id)].alive;
    }

    NodeData& node(NodeId id) {
        assert(contains_node(id));
        return nodes_[static_cast<std::size_t>(id)].data;
    }
    const NodeData& node(NodeId id) const {
        assert(contains_node(id));
        return nodes_[static_cast<std::size_t>(id)].data;
    }

    Edge& edge(EdgeId id) {
        assert(contains_edge(id));
        return edges_[static_cast<std::size_t>(id)];
    }
    const Edge& edge(EdgeId id) const {
        assert(contains_edge(id));
        return edges_[static_cast<std::size_t>(id)];
    }

    const std::vector<EdgeId>& in_edges(NodeId id) const {
        assert(contains_node(id));
        return nodes_[static_cast<std::size_t>(id)].in_edges;
    }
    const std::vector<EdgeId>& out_edges(NodeId id) const {
        assert(contains_node(id));
        return nodes_[static_cast<std::size_t>(id)].out_edges;
    }

    std::size_t in_degree(NodeId id) const { return in_edges(id).size(); }
    std::size_t out_degree(NodeId id) const { return out_edges(id).size(); }

    /// All live node ids, in insertion order.
    std::vector<NodeId> nodes() const {
        std::vector<NodeId> out;
        for (std::size_t i = 0; i < nodes_.size(); ++i)
            if (nodes_[i].alive) out.push_back(static_cast<NodeId>(i));
        return out;
    }

    /// All live edge ids, in insertion order.
    std::vector<EdgeId> edges() const {
        std::vector<EdgeId> out;
        for (std::size_t i = 0; i < edges_.size(); ++i)
            if (edges_[i].alive) out.push_back(static_cast<EdgeId>(i));
        return out;
    }

    std::size_t node_count() const {
        std::size_t n = 0;
        for (const auto& slot : nodes_) n += slot.alive ? 1 : 0;
        return n;
    }
    std::size_t edge_count() const {
        std::size_t n = 0;
        for (const auto& e : edges_) n += e.alive ? 1 : 0;
        return n;
    }

    /// Kahn topological sort.  Returns nullopt when the graph has a cycle.
    std::optional<std::vector<NodeId>> topological_order() const {
        std::vector<std::size_t> indeg(nodes_.size(), 0);
        for (const auto& e : edges_)
            if (e.alive) ++indeg[static_cast<std::size_t>(e.dst)];
        std::queue<NodeId> ready;
        for (std::size_t i = 0; i < nodes_.size(); ++i)
            if (nodes_[i].alive && indeg[i] == 0) ready.push(static_cast<NodeId>(i));
        std::vector<NodeId> order;
        while (!ready.empty()) {
            NodeId n = ready.front();
            ready.pop();
            order.push_back(n);
            for (EdgeId eid : out_edges(n)) {
                const NodeId m = edge(eid).dst;
                if (--indeg[static_cast<std::size_t>(m)] == 0) ready.push(m);
            }
        }
        if (order.size() != node_count()) return std::nullopt;
        return order;
    }

    /// Nodes reachable from `start` following edge direction (inclusive).
    std::set<NodeId> reachable_from(NodeId start) const {
        return bfs(start, /*forward=*/true);
    }

    /// Nodes that can reach `start` (inclusive).
    std::set<NodeId> reaching(NodeId start) const { return bfs(start, /*forward=*/false); }

    /// BFS from a set of seeds; `forward` selects edge direction.
    std::set<NodeId> bfs_from(const std::set<NodeId>& seeds, bool forward) const {
        std::set<NodeId> visited;
        std::queue<NodeId> frontier;
        for (NodeId s : seeds) {
            if (!contains_node(s)) continue;
            visited.insert(s);
            frontier.push(s);
        }
        while (!frontier.empty()) {
            NodeId n = frontier.front();
            frontier.pop();
            const auto& next = forward ? out_edges(n) : in_edges(n);
            for (EdgeId eid : next) {
                const NodeId m = forward ? edge(eid).dst : edge(eid).src;
                if (visited.insert(m).second) frontier.push(m);
            }
        }
        return visited;
    }

private:
    std::set<NodeId> bfs(NodeId start, bool forward) const {
        return bfs_from(std::set<NodeId>{start}, forward);
    }

    static void erase_value(std::vector<EdgeId>& v, EdgeId x) {
        for (std::size_t i = 0; i < v.size(); ++i) {
            if (v[i] == x) {
                v.erase(v.begin() + static_cast<std::ptrdiff_t>(i));
                return;
            }
        }
    }

    std::vector<NodeSlot> nodes_;
    std::vector<Edge> edges_;
};

}  // namespace ff::graph
