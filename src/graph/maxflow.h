// Dinic's maximum flow / minimum s-t cut.
//
// The minimum input-flow cut (Sec. 4.2) concretizes symbolic edge capacities
// and solves min s-t cut via max flow (max-flow min-cut theorem).  Capacities
// are 64-bit with a saturating infinity; parallel edges are supported because
// dataflow graphs routinely carry several memlets between the same nodes.
//
// The solver is Dinic's algorithm (BFS level graph + blocking flow via DFS
// with arc pointers), O(V^2 * E) worst case and near-linear on the unit-ish
// capacity networks cutout minimization produces — the previous Edmonds-Karp
// implementation was O(V * E^2), which did not scale to large cutout graphs.
#pragma once

#include <cstdint>
#include <limits>
#include <set>
#include <vector>

namespace ff::graph {

/// Saturating "infinite" capacity (edges that must never be cut).
inline constexpr std::int64_t kInfiniteCapacity = std::numeric_limits<std::int64_t>::max() / 4;

struct FlowEdge {
    int src = 0;
    int dst = 0;
    std::int64_t capacity = 0;
};

struct MaxFlowResult {
    std::int64_t max_flow = 0;
    /// Nodes on the source side of the minimum cut.
    std::set<int> source_side;
    /// Indices (into the input edge list) of edges crossing the cut.
    std::vector<std::size_t> cut_edges;
};

/// Computes max flow from `source` to `sink` over `num_nodes` nodes using
/// Dinic's algorithm.
MaxFlowResult max_flow(int num_nodes, const std::vector<FlowEdge>& edges, int source, int sink);

}  // namespace ff::graph
