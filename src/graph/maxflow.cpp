#include "graph/maxflow.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace ff::graph {

namespace {

/// Residual graph edge; `pair` is the index of the reverse edge.
struct Residual {
    int dst;
    std::int64_t capacity;
    std::size_t pair;
    std::size_t original_index;  // index into input edges, or npos for reverse
};

constexpr std::size_t kNoOriginal = static_cast<std::size_t>(-1);

/// Dinic's solver state over the residual graph.
struct Dinic {
    int sink;
    std::vector<Residual>& res;
    const std::vector<std::vector<std::size_t>>& adj;
    std::vector<int> level;
    std::vector<std::size_t> iter;  // per-node arc pointer

    Dinic(int num_nodes, int sink_, std::vector<Residual>& res_,
          const std::vector<std::vector<std::size_t>>& adj_)
        : sink(sink_),
          res(res_),
          adj(adj_),
          level(static_cast<std::size_t>(num_nodes)),
          iter(static_cast<std::size_t>(num_nodes)) {}

    /// Builds the BFS level graph; true when the sink is reachable.
    bool bfs(int source) {
        std::fill(level.begin(), level.end(), -1);
        level[static_cast<std::size_t>(source)] = 0;
        std::queue<int> frontier;
        frontier.push(source);
        while (!frontier.empty()) {
            const int u = frontier.front();
            frontier.pop();
            for (std::size_t eid : adj[static_cast<std::size_t>(u)]) {
                const Residual& r = res[eid];
                if (r.capacity > 0 && level[static_cast<std::size_t>(r.dst)] == -1) {
                    level[static_cast<std::size_t>(r.dst)] =
                        level[static_cast<std::size_t>(u)] + 1;
                    frontier.push(r.dst);
                }
            }
        }
        return level[static_cast<std::size_t>(sink)] != -1;
    }

    /// Pushes one augmenting path along the level graph (iterative — path
    /// lengths reach V on chain-shaped networks, so no recursion); the arc
    /// pointer `iter` skips saturated/retired arcs across calls.  Returns
    /// the pushed flow, 0 when the level graph is exhausted.
    std::int64_t push_path(int source) {
        path.clear();
        int u = source;
        while (true) {
            if (u == sink) {
                std::int64_t bottleneck = kInfiniteCapacity;
                for (std::size_t eid : path) bottleneck = std::min(bottleneck, res[eid].capacity);
                for (std::size_t eid : path) {
                    res[eid].capacity -= bottleneck;
                    res[res[eid].pair].capacity += bottleneck;
                }
                return bottleneck;
            }
            const auto& arcs = adj[static_cast<std::size_t>(u)];
            bool advanced = false;
            for (std::size_t& i = iter[static_cast<std::size_t>(u)]; i < arcs.size(); ++i) {
                const Residual& r = res[arcs[i]];
                if (r.capacity > 0 && level[static_cast<std::size_t>(r.dst)] ==
                                          level[static_cast<std::size_t>(u)] + 1) {
                    path.push_back(arcs[i]);
                    u = r.dst;
                    advanced = true;
                    break;
                }
            }
            if (advanced) continue;
            if (u == source) return 0;
            // Dead end: retire the arc that led here and back up.
            const std::size_t back = path.back();
            path.pop_back();
            u = res[res[back].pair].dst;
            ++iter[static_cast<std::size_t>(u)];
        }
    }

    std::vector<std::size_t> path;  // residual edge ids of the current walk
};

}  // namespace

MaxFlowResult max_flow(int num_nodes, const std::vector<FlowEdge>& edges, int source, int sink) {
    assert(source >= 0 && source < num_nodes);
    assert(sink >= 0 && sink < num_nodes);

    std::vector<std::vector<std::size_t>> adj(static_cast<std::size_t>(num_nodes));
    std::vector<Residual> res;
    res.reserve(edges.size() * 2);
    for (std::size_t i = 0; i < edges.size(); ++i) {
        const FlowEdge& e = edges[i];
        assert(e.src >= 0 && e.src < num_nodes && e.dst >= 0 && e.dst < num_nodes);
        const std::size_t fwd = res.size();
        res.push_back(Residual{e.dst, e.capacity, fwd + 1, i});
        res.push_back(Residual{e.src, 0, fwd, kNoOriginal});
        adj[static_cast<std::size_t>(e.src)].push_back(fwd);
        adj[static_cast<std::size_t>(e.dst)].push_back(fwd + 1);
    }

    std::int64_t total_flow = 0;
    if (source != sink) {
        Dinic dinic(num_nodes, sink, res, adj);
        while (total_flow < kInfiniteCapacity && dinic.bfs(source)) {
            std::fill(dinic.iter.begin(), dinic.iter.end(), 0);
            while (std::int64_t pushed = dinic.push_path(source)) {
                total_flow += pushed;
                if (total_flow >= kInfiniteCapacity) break;  // saturated: cut is "infinite"
            }
        }
    }

    MaxFlowResult result;
    result.max_flow = total_flow;

    // Source side of the cut: nodes reachable in the residual graph.
    std::vector<bool> visited(static_cast<std::size_t>(num_nodes), false);
    std::queue<int> frontier;
    frontier.push(source);
    visited[static_cast<std::size_t>(source)] = true;
    while (!frontier.empty()) {
        const int u = frontier.front();
        frontier.pop();
        result.source_side.insert(u);
        for (std::size_t eid : adj[static_cast<std::size_t>(u)]) {
            const Residual& r = res[eid];
            if (r.capacity > 0 && !visited[static_cast<std::size_t>(r.dst)]) {
                visited[static_cast<std::size_t>(r.dst)] = true;
                frontier.push(r.dst);
            }
        }
    }

    for (std::size_t i = 0; i < edges.size(); ++i) {
        const FlowEdge& e = edges[i];
        if (visited[static_cast<std::size_t>(e.src)] && !visited[static_cast<std::size_t>(e.dst)])
            result.cut_edges.push_back(i);
    }
    return result;
}

}  // namespace ff::graph
