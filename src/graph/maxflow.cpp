#include "graph/maxflow.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace ff::graph {

namespace {

/// Residual graph edge; `pair` is the index of the reverse edge.
struct Residual {
    int dst;
    std::int64_t capacity;
    std::size_t pair;
    std::size_t original_index;  // index into input edges, or npos for reverse
};

constexpr std::size_t kNoOriginal = static_cast<std::size_t>(-1);

}  // namespace

MaxFlowResult edmonds_karp(int num_nodes, const std::vector<FlowEdge>& edges, int source,
                           int sink) {
    assert(source >= 0 && source < num_nodes);
    assert(sink >= 0 && sink < num_nodes);

    std::vector<std::vector<std::size_t>> adj(static_cast<std::size_t>(num_nodes));
    std::vector<Residual> res;
    res.reserve(edges.size() * 2);
    for (std::size_t i = 0; i < edges.size(); ++i) {
        const FlowEdge& e = edges[i];
        assert(e.src >= 0 && e.src < num_nodes && e.dst >= 0 && e.dst < num_nodes);
        const std::size_t fwd = res.size();
        res.push_back(Residual{e.dst, e.capacity, fwd + 1, i});
        res.push_back(Residual{e.src, 0, fwd, kNoOriginal});
        adj[static_cast<std::size_t>(e.src)].push_back(fwd);
        adj[static_cast<std::size_t>(e.dst)].push_back(fwd + 1);
    }

    std::int64_t total_flow = 0;
    std::vector<std::size_t> parent_edge(static_cast<std::size_t>(num_nodes));
    std::vector<int> parent(static_cast<std::size_t>(num_nodes));

    while (true) {
        // BFS for the shortest augmenting path.
        std::fill(parent.begin(), parent.end(), -1);
        parent[static_cast<std::size_t>(source)] = source;
        std::queue<int> frontier;
        frontier.push(source);
        while (!frontier.empty() && parent[static_cast<std::size_t>(sink)] == -1) {
            const int u = frontier.front();
            frontier.pop();
            for (std::size_t eid : adj[static_cast<std::size_t>(u)]) {
                const Residual& r = res[eid];
                if (r.capacity > 0 && parent[static_cast<std::size_t>(r.dst)] == -1) {
                    parent[static_cast<std::size_t>(r.dst)] = u;
                    parent_edge[static_cast<std::size_t>(r.dst)] = eid;
                    frontier.push(r.dst);
                }
            }
        }
        if (parent[static_cast<std::size_t>(sink)] == -1) break;  // no augmenting path

        // Bottleneck along the path.
        std::int64_t bottleneck = kInfiniteCapacity;
        for (int v = sink; v != source; v = parent[static_cast<std::size_t>(v)])
            bottleneck = std::min(bottleneck, res[parent_edge[static_cast<std::size_t>(v)]].capacity);

        for (int v = sink; v != source; v = parent[static_cast<std::size_t>(v)]) {
            Residual& fwd = res[parent_edge[static_cast<std::size_t>(v)]];
            fwd.capacity -= bottleneck;
            res[fwd.pair].capacity += bottleneck;
        }
        total_flow += bottleneck;
        if (total_flow >= kInfiniteCapacity) break;  // saturated: cut is "infinite"
    }

    MaxFlowResult result;
    result.max_flow = total_flow;

    // Source side of the cut: nodes reachable in the residual graph.
    std::vector<bool> visited(static_cast<std::size_t>(num_nodes), false);
    std::queue<int> frontier;
    frontier.push(source);
    visited[static_cast<std::size_t>(source)] = true;
    while (!frontier.empty()) {
        const int u = frontier.front();
        frontier.pop();
        result.source_side.insert(u);
        for (std::size_t eid : adj[static_cast<std::size_t>(u)]) {
            const Residual& r = res[eid];
            if (r.capacity > 0 && !visited[static_cast<std::size_t>(r.dst)]) {
                visited[static_cast<std::size_t>(r.dst)] = true;
                frontier.push(r.dst);
            }
        }
    }

    for (std::size_t i = 0; i < edges.size(); ++i) {
        const FlowEdge& e = edges[i];
        if (visited[static_cast<std::size_t>(e.src)] && !visited[static_cast<std::size_t>(e.dst)])
            result.cut_edges.push_back(i);
    }
    return result;
}

}  // namespace ff::graph
