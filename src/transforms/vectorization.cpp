#include "transforms/vectorization.h"

namespace ff::xform {

using ir::DataflowNode;
using ir::NodeKind;

namespace {

/// True when the subset's last range is exactly [p, p, 1].
bool last_dim_is_param(const ir::Subset& subset, const std::string& param) {
    if (subset.ranges.empty()) return false;
    const ir::Range& r = subset.ranges.back();
    const sym::ExprPtr p = sym::symb(param);
    return r.begin->equals(*p) && r.end->equals(*p) && r.step->is_constant() &&
           r.step->constant_value() == 1;
}

}  // namespace

std::vector<Match> Vectorization::find_matches(const ir::SDFG& sdfg) const {
    std::vector<Match> matches;
    for (ir::StateId sid : sdfg.states()) {
        const ir::State& st = sdfg.state(sid);
        for (ir::NodeId nid : st.graph().nodes()) {
            const DataflowNode& n = st.graph().node(nid);
            if (n.kind != NodeKind::MapEntry) continue;
            if (n.schedule != ir::Schedule::Parallel) continue;
            if (n.attrs.count("vectorized")) continue;
            const ir::Range& last = n.map_ranges.back();
            if (!(last.step->is_constant() && last.step->constant_value() == 1)) continue;

            // The scope must be a single tasklet whose memlets access the
            // innermost dimension with the plain last parameter.
            const std::set<ir::NodeId> inside = st.scope_nodes(nid);
            if (inside.size() != 1) continue;
            const ir::NodeId body = *inside.begin();
            if (st.graph().node(body).kind != NodeKind::Tasklet) continue;

            const std::string& p = n.params.back();
            bool ok = true;
            bool any_vector = false;
            for (graph::EdgeId eid : st.graph().in_edges(body)) {
                const ir::Subset& s = st.graph().edge(eid).data.memlet.subset;
                if (s.dims() == 0) continue;  // broadcast scalar input
                if (!last_dim_is_param(s, p)) { ok = false; break; }
            }
            for (graph::EdgeId eid : st.graph().out_edges(body)) {
                const ir::Subset& s = st.graph().edge(eid).data.memlet.subset;
                // Outputs must be vectorizable (lane-indexed).
                if (!last_dim_is_param(s, p)) { ok = false; break; }
                any_vector = true;
            }
            if (!ok || !any_vector) continue;

            Match m;
            m.state = sid;
            m.nodes = {nid, body};
            m.description = "vectorize map '" + n.label + "' (width " +
                            std::to_string(width_) + ")";
            matches.push_back(std::move(m));
        }
    }
    return matches;
}

void Vectorization::apply_impl(ir::SDFG& sdfg, const Match& match) const {
    ir::State& st = sdfg.state(match.state);
    DataflowNode& entry = st.graph().node(match.nodes.at(0));
    const ir::NodeId body = match.nodes.at(1);
    const std::string p = entry.params.back();

    // Innermost dimension now strides by the vector width.  NOTE: no
    // remainder handling — out of bounds when the extent % width != 0.
    entry.map_ranges.back().step = sym::cst(static_cast<std::int64_t>(width_));
    entry.schedule = ir::Schedule::Vector;
    entry.attrs["vectorized"] = std::to_string(width_);

    // Widen the tasklet's lane-indexed memlets to W lanes.
    std::set<std::string> vector_vars;
    auto widen = [&](graph::EdgeId eid, const std::string& conn) {
        auto& memlet = st.graph().edge(eid).data.memlet;
        if (memlet.subset.dims() == 0) return;  // broadcast scalar
        if (!last_dim_is_param(memlet.subset, p)) return;
        ir::Range& r = memlet.subset.ranges.back();
        r = ir::Range{r.begin, r.begin + (width_ - 1), sym::cst(1)};
        vector_vars.insert(conn);
    };
    for (graph::EdgeId eid : st.graph().in_edges(body))
        widen(eid, st.graph().edge(eid).data.dst_conn);
    for (graph::EdgeId eid : st.graph().out_edges(body))
        widen(eid, st.graph().edge(eid).data.src_conn);

    DataflowNode& tasklet = st.graph().node(body);
    tasklet.code = vectorize_tasklet_code(tasklet.code, width_, vector_vars);
}

}  // namespace ff::xform
