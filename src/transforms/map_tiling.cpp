#include "transforms/map_tiling.h"

namespace ff::xform {

using ir::DataflowNode;
using ir::NodeKind;

std::string MapTiling::name() const {
    switch (variant_) {
        case Variant::Correct: return "MapTiling";
        case Variant::OffByOne: return "MapTiling[bug:off-by-one]";
        case Variant::NoRemainder: return "MapTiling[bug:no-remainder]";
    }
    return "MapTiling";
}

std::vector<Match> MapTiling::find_matches(const ir::SDFG& sdfg) const {
    std::vector<Match> matches;
    for (ir::StateId sid : sdfg.states()) {
        const ir::State& st = sdfg.state(sid);
        for (ir::NodeId nid : st.graph().nodes()) {
            const DataflowNode& n = st.graph().node(nid);
            if (n.kind != NodeKind::MapEntry) continue;
            if (n.schedule == ir::Schedule::GPU || n.schedule == ir::Schedule::Vector) continue;
            if (n.attrs.count("tiled")) continue;  // avoid repeated tiling
            // Tiling requires unit steps.
            bool unit = true;
            for (const auto& r : n.map_ranges)
                unit &= r.step->is_constant() && r.step->constant_value() == 1;
            if (!unit) continue;
            Match m;
            m.state = sid;
            m.nodes = {nid};
            m.description = "tile map '" + n.label + "' in state '" + st.name() + "'";
            matches.push_back(std::move(m));
        }
    }
    return matches;
}

void MapTiling::apply_impl(ir::SDFG& sdfg, const Match& match) const {
    ir::State& st = sdfg.state(match.state);
    DataflowNode& entry = st.graph().node(match.nodes.at(0));

    std::vector<std::string> params;
    std::vector<ir::Range> ranges;
    const sym::ExprPtr tile = sym::cst(tile_size_);

    // Tile parameters first (outermost), then the original parameters.
    for (std::size_t i = 0; i < entry.params.size(); ++i) {
        params.push_back(entry.params[i] + "__tile");
        ranges.push_back(
            ir::Range{entry.map_ranges[i].begin, entry.map_ranges[i].end, tile});
    }
    for (std::size_t i = 0; i < entry.params.size(); ++i) {
        const sym::ExprPtr pt = sym::symb(entry.params[i] + "__tile");
        const sym::ExprPtr& end = entry.map_ranges[i].end;
        sym::ExprPtr inner_end;
        switch (variant_) {
            case Variant::Correct: inner_end = sym::min(pt + (tile_size_ - 1), end); break;
            case Variant::OffByOne: inner_end = sym::min(pt + tile_size_, end); break;
            case Variant::NoRemainder: inner_end = pt + (tile_size_ - 1); break;
        }
        params.push_back(entry.params[i]);
        ranges.push_back(ir::Range{pt, inner_end, sym::cst(1)});
    }

    entry.params = std::move(params);
    entry.map_ranges = std::move(ranges);
    entry.attrs["tiled"] = std::to_string(tile_size_);
}

}  // namespace ff::xform
