#include "transforms/state_assign_elimination.h"

namespace ff::xform {

namespace {

/// Symbols read anywhere inside a state's dataflow graph (memlets and map
/// ranges).
std::set<std::string> state_used_symbols(const ir::State& st) {
    std::set<std::string> used;
    for (ir::NodeId nid : st.graph().nodes()) {
        const ir::DataflowNode& n = st.graph().node(nid);
        if (n.kind == ir::NodeKind::MapEntry) {
            for (const auto& r : n.map_ranges) {
                r.begin->collect_symbols(used);
                r.end->collect_symbols(used);
                r.step->collect_symbols(used);
            }
        }
    }
    for (graph::EdgeId eid : st.graph().edges()) {
        for (const auto& r : st.graph().edge(eid).data.memlet.subset.ranges) {
            r.begin->collect_symbols(used);
            r.end->collect_symbols(used);
            r.step->collect_symbols(used);
        }
    }
    return used;
}

/// Symbols read anywhere in the whole program (states + interstate edges).
std::set<std::string> program_used_symbols(const ir::SDFG& sdfg) {
    std::set<std::string> used;
    for (ir::StateId sid : sdfg.states()) {
        const auto s = state_used_symbols(sdfg.state(sid));
        used.insert(s.begin(), s.end());
    }
    for (graph::EdgeId eid : sdfg.cfg().edges()) {
        const ir::InterstateEdge& e = sdfg.cfg().edge(eid).data;
        if (e.condition) e.condition->collect_symbols(used);
        for (const auto& [symbol, expr] : e.assignments) {
            (void)symbol;
            expr->collect_symbols(used);
        }
    }
    return used;
}

}  // namespace

std::vector<Match> StateAssignElimination::find_matches(const ir::SDFG& sdfg) const {
    std::vector<Match> matches;
    const std::set<std::string> global_used = program_used_symbols(sdfg);
    for (graph::EdgeId eid : sdfg.cfg().edges()) {
        const ir::InterstateEdge& e = sdfg.cfg().edge(eid).data;
        for (std::size_t i = 0; i < e.assignments.size(); ++i) {
            const std::string& symbol = e.assignments[i].first;
            bool dead;
            if (variant_ == Variant::Correct) {
                dead = !global_used.count(symbol);
            } else {
                // BUG: only look at the next state's dataflow.
                const ir::State& next = sdfg.state(sdfg.cfg().edge(eid).dst);
                dead = !state_used_symbols(next).count(symbol);
            }
            if (!dead) continue;
            Match m;
            m.cfg_edge = eid;
            m.nodes = {static_cast<ir::NodeId>(i)};  // assignment index
            m.description = "drop assignment '" + symbol + "' on edge " + std::to_string(eid);
            matches.push_back(std::move(m));
        }
    }
    return matches;
}

ChangeSet StateAssignElimination::affected_nodes(const ir::SDFG& sdfg,
                                                 const Match& match) const {
    ChangeSet delta;
    const auto& e = sdfg.cfg().edge(match.cfg_edge);
    delta.control_flow_states.insert(e.src);
    delta.control_flow_states.insert(e.dst);
    return delta;
}

void StateAssignElimination::apply_impl(ir::SDFG& sdfg, const Match& match) const {
    auto& assignments = sdfg.cfg().edge(match.cfg_edge).data.assignments;
    const std::size_t index = static_cast<std::size_t>(match.nodes.at(0));
    if (index < assignments.size())
        assignments.erase(assignments.begin() + static_cast<std::ptrdiff_t>(index));
}

}  // namespace ff::xform
