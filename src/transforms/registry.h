// Pass registry: assembles the transformation sets used by the case studies.
#pragma once

#include <vector>

#include "transforms/transformation.h"

namespace ff::xform {

/// Configuration of the built-in pass set.
struct RegistryConfig {
    /// Plant the Table 2 bug inventory: BufferTiling, TaskletFusion,
    /// MapExpansion, MapReduceFusion, StateAssignElimination and
    /// SymbolAliasPromotion ship their buggy variants (Vectorization is
    /// input-dependent by construction).  When false every pass is correct
    /// (except Vectorization, whose subject transformation has no correct
    /// remainder handling).
    bool table2_bugs = true;
    std::int64_t tile_size = 8;
    int vector_width = 4;
};

/// The "built-in optimizations" set audited in Sec. 6.3 (Table 2):
/// MapTiling, Vectorization, TaskletFusion, BufferTiling, MapExpansion,
/// MapReduceFusion, StateAssignElimination, SymbolAliasPromotion, MapFusion,
/// WriteElimination and LoopUnrolling.
std::vector<TransformationPtr> builtin_transformations(const RegistryConfig& config = {});

/// The custom CLOUDSC passes of Sec. 6.4: GpuKernelExtraction,
/// LoopUnrolling and WriteElimination, each in the buggy variant the paper
/// uncovered (or correct when `with_bugs` is false).
std::vector<TransformationPtr> cloudsc_transformations(bool with_bugs = true);

}  // namespace ff::xform
