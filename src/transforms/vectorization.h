// Loop vectorization (the Sec. 6.1 case study transformation).
//
// Tiles the innermost map dimension by the vector width and rewrites the
// body tasklet to operate on W lanes.  As in DaCe, correctness *depends on
// the input size*: when the iteration extent is not a multiple of W the last
// vector accesses run out of bounds — the `"` (input-dependent) failure
// class of Table 2.  There is no fully-correct remainder-peeling variant
// because the paper's subject transformation does not have one either; use
// `require_divisible` matches only where divisibility is statically known.
#pragma once

#include "transforms/transformation.h"

namespace ff::xform {

class Vectorization : public Transformation {
public:
    explicit Vectorization(int width = 4) : width_(width) {}

    std::string name() const override { return "Vectorization"; }
    std::vector<Match> find_matches(const ir::SDFG& sdfg) const override;
protected:
    void apply_impl(ir::SDFG& sdfg, const Match& match) const override;

public:
    int width() const { return width_; }

private:
    int width_;
};

}  // namespace ff::xform
