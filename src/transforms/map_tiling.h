// Loop tiling on map scopes (the Fig. 2 running example).
//
// Rewrites a map with parameters (p0, .., pk) into a single map with tile
// parameters prepended: (p0_t, .., pk_t, p0, .., pk), where the tile
// parameters stride by the tile size and the original parameters iterate
// within their tile.  Semantically identical to nesting two maps.
//
// Variants:
//  * Correct     — inner range [pt, min(pt + T - 1, end)]
//  * OffByOne    — inner range [pt, min(pt + T, end)]; the `<=` bug of
//                  Fig. 2: one in-bounds extra iteration per tile, which
//                  corrupts non-idempotent (accumulating) computations.
//  * NoRemainder — inner range [pt, pt + T - 1] without clamping; out of
//                  bounds whenever the extent is not a multiple of the tile
//                  size (the *input-dependent* second bug of Sec. 2.1).
#pragma once

#include "transforms/transformation.h"

namespace ff::xform {

class MapTiling : public Transformation {
public:
    enum class Variant { Correct, OffByOne, NoRemainder };

    explicit MapTiling(std::int64_t tile_size = 32, Variant variant = Variant::Correct)
        : tile_size_(tile_size), variant_(variant) {}

    std::string name() const override;
    std::vector<Match> find_matches(const ir::SDFG& sdfg) const override;
protected:
    void apply_impl(ir::SDFG& sdfg, const Match& match) const override;

private:
    std::int64_t tile_size_;
    Variant variant_;
};

}  // namespace ff::xform
