#include "transforms/map_fusion.h"

namespace ff::xform {

using ir::DataflowNode;
using ir::NodeKind;

namespace {

bool ranges_equal(const std::vector<ir::Range>& a, const std::vector<ir::Range>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (!a[i].equals(b[i])) return false;
    return true;
}

}  // namespace

std::vector<Match> MapFusion::find_matches(const ir::SDFG& sdfg) const {
    std::vector<Match> matches;
    for (ir::StateId sid : sdfg.states()) {
        const ir::State& st = sdfg.state(sid);
        const auto& g = st.graph();
        for (ir::NodeId acc : g.nodes()) {
            const DataflowNode& an = g.node(acc);
            if (an.kind != NodeKind::Access) continue;
            if (g.in_degree(acc) != 1 || g.out_degree(acc) != 1) continue;
            const ir::NodeId m1_exit = g.edge(g.in_edges(acc)[0]).src;
            const ir::NodeId m2_entry = g.edge(g.out_edges(acc)[0]).dst;
            if (g.node(m1_exit).kind != NodeKind::MapExit) continue;
            if (g.node(m2_entry).kind != NodeKind::MapEntry) continue;
            const ir::NodeId m1_entry = st.map_entry_of(m1_exit);
            const ir::NodeId m2_exit = st.map_exit_of(m2_entry);
            if (m1_entry == graph::kInvalidNode || m2_exit == graph::kInvalidNode) continue;
            if (st.parent_scope_of(m1_entry) != graph::kInvalidNode) continue;
            if (st.parent_scope_of(m2_entry) != graph::kInvalidNode) continue;

            const DataflowNode& e1 = g.node(m1_entry);
            const DataflowNode& e2 = g.node(m2_entry);
            if (e1.params != e2.params) continue;
            if (!ranges_equal(e1.map_ranges, e2.map_ranges)) continue;
            if (e1.schedule != ir::Schedule::Parallel || e2.schedule != ir::Schedule::Parallel)
                continue;
            // m1 only feeds the intermediate; both scopes are single
            // tasklets; the intermediate has no other uses program-wide.
            if (g.out_degree(m1_exit) != 1) continue;
            const auto in1 = st.scope_nodes(m1_entry);
            const auto in2 = st.scope_nodes(m2_entry);
            if (in1.size() != 1 || in2.size() != 1) continue;
            const ir::NodeId t1 = *in1.begin();
            const ir::NodeId t2 = *in2.begin();
            if (g.node(t1).kind != NodeKind::Tasklet || g.node(t2).kind != NodeKind::Tasklet)
                continue;
            if (!sdfg.container(an.data).transient) continue;
            int uses = 0;
            for (ir::StateId s2 : sdfg.states())
                uses += static_cast<int>(sdfg.state(s2).access_nodes(an.data).size());
            if (uses != 1) continue;
            // The producer writes and the consumer reads the same
            // per-iteration subset of the intermediate.
            const ir::Subset* wsub = nullptr;
            const ir::Subset* rsub = nullptr;
            for (graph::EdgeId eid : g.out_edges(t1))
                if (g.edge(eid).data.memlet.data == an.data)
                    wsub = &g.edge(eid).data.memlet.subset;
            for (graph::EdgeId eid : g.in_edges(t2))
                if (g.edge(eid).data.memlet.data == an.data)
                    rsub = &g.edge(eid).data.memlet.subset;
            if (!wsub || !rsub || !wsub->equals(*rsub)) continue;

            Match m;
            m.state = sid;
            m.nodes = {m1_entry, t1, m1_exit, acc, m2_entry, t2, m2_exit};
            m.description = "fuse maps '" + e1.label + "' and '" + e2.label + "' over '" +
                            an.data + "'";
            matches.push_back(std::move(m));
        }
    }
    return matches;
}

void MapFusion::apply_impl(ir::SDFG& sdfg, const Match& match) const {
    ir::State& st = sdfg.state(match.state);
    auto& g = st.graph();
    const ir::NodeId m1_entry = match.nodes.at(0);
    const ir::NodeId t1 = match.nodes.at(1);
    const ir::NodeId m1_exit = match.nodes.at(2);
    const ir::NodeId acc = match.nodes.at(3);
    const ir::NodeId m2_entry = match.nodes.at(4);
    const ir::NodeId t2 = match.nodes.at(5);
    const ir::NodeId m2_exit = match.nodes.at(6);
    const std::string t_data = g.node(acc).data;

    // In-scope access node for the intermediate element.
    const ir::NodeId acc_inner = st.add_access(t_data);

    // t1's write to the intermediate goes through the in-scope access node.
    for (graph::EdgeId eid : std::vector<graph::EdgeId>(g.out_edges(t1))) {
        auto edge = g.edge(eid);
        if (edge.data.memlet.data != t_data) continue;
        g.remove_edge(eid);
        g.add_edge(t1, acc_inner, edge.data);
    }
    // t2's read of the intermediate comes from the in-scope access node;
    // its other inputs move to m1's entry.
    for (graph::EdgeId eid : std::vector<graph::EdgeId>(g.in_edges(t2))) {
        auto edge = g.edge(eid);
        g.remove_edge(eid);
        if (edge.data.memlet.data == t_data) g.add_edge(acc_inner, t2, edge.data);
        else g.add_edge(m1_entry, t2, edge.data);
    }
    // t2's outputs go through m1's exit.
    for (graph::EdgeId eid : std::vector<graph::EdgeId>(g.out_edges(t2))) {
        auto edge = g.edge(eid);
        g.remove_edge(eid);
        g.add_edge(t2, m1_exit, edge.data);
    }
    // m2's boundary edges move onto m1.
    for (graph::EdgeId eid : std::vector<graph::EdgeId>(g.in_edges(m2_entry))) {
        auto edge = g.edge(eid);
        g.remove_edge(eid);
        if (edge.src == acc) continue;  // the old intermediate hand-off
        g.add_edge(edge.src, m1_entry, edge.data);
    }
    for (graph::EdgeId eid : std::vector<graph::EdgeId>(g.out_edges(m2_exit))) {
        auto edge = g.edge(eid);
        g.remove_edge(eid);
        g.add_edge(m1_exit, edge.dst, edge.data);
    }

    g.remove_node(m2_entry);
    g.remove_node(m2_exit);
    g.remove_node(acc);
    // The old m1_exit -> acc edge died with acc.  The intermediate
    // container itself stays (it is still written, now inside the scope).
}

}  // namespace ff::xform
