#include "transforms/loop_unrolling.h"

#include "symbolic/expr.h"

namespace ff::xform {

using ir::DataflowNode;
using ir::NodeKind;

std::vector<Match> LoopUnrolling::find_matches(const ir::SDFG& sdfg) const {
    std::vector<Match> matches;
    for (ir::StateId sid : sdfg.states()) {
        const ir::State& st = sdfg.state(sid);
        const auto& g = st.graph();
        for (ir::NodeId entry : g.nodes()) {
            const DataflowNode& n = g.node(entry);
            if (n.kind != NodeKind::MapEntry) continue;
            if (n.schedule != ir::Schedule::Sequential) continue;
            if (n.params.size() != 1) continue;
            if (st.parent_scope_of(entry) != graph::kInvalidNode) continue;
            const ir::Range& r = n.map_ranges[0];
            if (!r.begin->is_constant() || !r.end->is_constant() || !r.step->is_constant())
                continue;
            if (r.step->constant_value() == 0) continue;

            // Body: a single tasklet with no container both read and
            // written (iterations must be independent, since unrolled
            // instances execute in topological rather than loop order).
            const auto inside = st.scope_nodes(entry);
            if (inside.size() != 1) continue;
            const ir::NodeId body = *inside.begin();
            if (g.node(body).kind != NodeKind::Tasklet) continue;
            std::set<std::string> read_data, written_data;
            for (graph::EdgeId eid : g.in_edges(body))
                read_data.insert(g.edge(eid).data.memlet.data);
            for (graph::EdgeId eid : g.out_edges(body))
                written_data.insert(g.edge(eid).data.memlet.data);
            bool independent = true;
            for (const auto& d : written_data) independent &= !read_data.count(d);
            if (!independent) continue;

            Match m;
            m.state = sid;
            m.nodes = {entry, body};
            m.description = "unroll loop '" + n.label + "' (" + r.to_string() + ")";
            matches.push_back(std::move(m));
        }
    }
    return matches;
}

void LoopUnrolling::apply_impl(ir::SDFG& sdfg, const Match& match) const {
    ir::State& st = sdfg.state(match.state);
    auto& g = st.graph();
    const ir::NodeId entry = match.nodes.at(0);
    const ir::NodeId body = match.nodes.at(1);
    const ir::NodeId exit = st.map_exit_of(entry);

    const DataflowNode map_node = g.node(entry);  // copy before removal
    const DataflowNode body_node = g.node(body);
    const std::string& param = map_node.params[0];
    const std::int64_t begin = map_node.map_ranges[0].begin->constant_value();
    const std::int64_t end = map_node.map_ranges[0].end->constant_value();
    const std::int64_t step = map_node.map_ranges[0].step->constant_value();

    // Iteration values to materialize.
    std::vector<std::int64_t> values;
    if (variant_ == Variant::Correct) {
        if (step > 0)
            for (std::int64_t v = begin; v <= end; v += step) values.push_back(v);
        else
            for (std::int64_t v = begin; v >= end; v += step) values.push_back(v);
    } else {
        // BUG: trip count from the ascending-loop formula.  Correct for
        // step > 0, but undercounts descending loops.
        const std::int64_t trips = sym::floordiv_i64(end - begin + 1, step);
        for (std::int64_t t = 0; t < trips; ++t) values.push_back(begin + t * step);
    }

    // For every boundary container, find the outer peer feeding/consuming it.
    struct Boundary {
        ir::NodeId peer;
        std::string conn;      // tasklet connector
        ir::Memlet memlet;     // body-side memlet (parametric in `param`)
    };
    std::vector<Boundary> inputs, outputs;
    for (graph::EdgeId eid : g.in_edges(body)) {
        const auto& inner = g.edge(eid);
        // Outer source: the entry in-edge carrying the same container.
        ir::NodeId peer = graph::kInvalidNode;
        for (graph::EdgeId oe : g.in_edges(entry))
            if (g.edge(oe).data.memlet.data == inner.data.memlet.data) peer = g.edge(oe).src;
        inputs.push_back({peer, inner.data.dst_conn, inner.data.memlet});
    }
    for (graph::EdgeId eid : g.out_edges(body)) {
        const auto& inner = g.edge(eid);
        ir::NodeId peer = graph::kInvalidNode;
        for (graph::EdgeId oe : g.out_edges(exit))
            if (g.edge(oe).data.memlet.data == inner.data.memlet.data) peer = g.edge(oe).dst;
        outputs.push_back({peer, inner.data.src_conn, inner.data.memlet});
    }

    g.remove_node(body);
    g.remove_node(entry);
    g.remove_node(exit);

    for (std::size_t i = 0; i < values.size(); ++i) {
        const sym::SubstMap subst{{param, sym::cst(values[i])}};
        const ir::NodeId clone = st.add_tasklet(
            body_node.label + "_u" + std::to_string(values[i]), body_node.code);
        for (const Boundary& b : inputs) {
            if (b.peer == graph::kInvalidNode) continue;
            ir::Memlet m(b.memlet.data, b.memlet.subset.substituted(subst));
            st.add_edge(b.peer, "", clone, b.conn, std::move(m));
        }
        for (const Boundary& b : outputs) {
            if (b.peer == graph::kInvalidNode) continue;
            ir::Memlet m(b.memlet.data, b.memlet.subset.substituted(subst));
            st.add_edge(clone, b.conn, b.peer, "", std::move(m));
        }
    }
}

}  // namespace ff::xform
