#include "transforms/registry.h"

#include "transforms/buffer_tiling.h"
#include "transforms/gpu_kernel_extraction.h"
#include "transforms/loop_unrolling.h"
#include "transforms/map_expansion.h"
#include "transforms/map_fusion.h"
#include "transforms/map_reduce_fusion.h"
#include "transforms/map_tiling.h"
#include "transforms/state_assign_elimination.h"
#include "transforms/symbol_alias_promotion.h"
#include "transforms/tasklet_fusion.h"
#include "transforms/vectorization.h"
#include "transforms/write_elimination.h"

namespace ff::xform {

std::vector<TransformationPtr> builtin_transformations(const RegistryConfig& config) {
    const bool bugs = config.table2_bugs;
    std::vector<TransformationPtr> passes;
    passes.push_back(std::make_unique<MapTiling>(config.tile_size, MapTiling::Variant::Correct));
    passes.push_back(std::make_unique<Vectorization>(config.vector_width));
    passes.push_back(std::make_unique<TaskletFusion>(
        bugs ? TaskletFusion::Variant::IgnoreDownstreamReads : TaskletFusion::Variant::Correct));
    passes.push_back(std::make_unique<BufferTiling>(
        config.tile_size,
        bugs ? BufferTiling::Variant::ReversedOffset : BufferTiling::Variant::Correct));
    passes.push_back(std::make_unique<MapExpansion>(
        bugs ? MapExpansion::Variant::DanglingExit : MapExpansion::Variant::Correct));
    passes.push_back(std::make_unique<MapReduceFusion>(
        bugs ? MapReduceFusion::Variant::StaleAccessNode : MapReduceFusion::Variant::Correct));
    passes.push_back(std::make_unique<StateAssignElimination>(
        bugs ? StateAssignElimination::Variant::NextStateOnly
             : StateAssignElimination::Variant::Correct));
    passes.push_back(std::make_unique<SymbolAliasPromotion>(
        bugs ? SymbolAliasPromotion::Variant::InterstateOnly
             : SymbolAliasPromotion::Variant::Correct));
    passes.push_back(std::make_unique<MapFusion>());
    passes.push_back(std::make_unique<WriteElimination>(WriteElimination::Variant::Correct));
    passes.push_back(std::make_unique<LoopUnrolling>(LoopUnrolling::Variant::Correct));
    return passes;
}

std::vector<TransformationPtr> cloudsc_transformations(bool with_bugs) {
    std::vector<TransformationPtr> passes;
    passes.push_back(std::make_unique<GpuKernelExtraction>(
        with_bugs ? GpuKernelExtraction::Variant::NoOutputCopyIn
                  : GpuKernelExtraction::Variant::Correct));
    passes.push_back(std::make_unique<LoopUnrolling>(
        with_bugs ? LoopUnrolling::Variant::PositiveStepFormula
                  : LoopUnrolling::Variant::Correct));
    passes.push_back(std::make_unique<WriteElimination>(
        with_bugs ? WriteElimination::Variant::CurrentStateOnly
                  : WriteElimination::Variant::Correct));
    return passes;
}

}  // namespace ff::xform
