// Write elimination: removes a redundant elementwise copy map
// (d1 --copy--> d2) and redirects readers of d2 to d1.
//
// This models the DaCe built-in that Sec. 6.4 catches on CLOUDSC: "the
// transformation removes an intermediate write to a data container which was
// marked as part of the test cutout's system state", i.e. the eliminated
// value is read again later in the program.
//
// Correct mode requires d2 to be transient, d1 to be written nowhere else,
// and rewrites *every* use of d2 program-wide.  The bug variant only
// redirects reads inside the current state — later states keep reading the
// now-never-written d2.
#pragma once

#include "transforms/transformation.h"

namespace ff::xform {

class WriteElimination : public Transformation {
public:
    enum class Variant { Correct, CurrentStateOnly };

    explicit WriteElimination(Variant variant = Variant::Correct) : variant_(variant) {}

    std::string name() const override {
        return variant_ == Variant::Correct ? "WriteElimination"
                                            : "WriteElimination[bug:current-state-only]";
    }
    std::vector<Match> find_matches(const ir::SDFG& sdfg) const override;
protected:
    void apply_impl(ir::SDFG& sdfg, const Match& match) const override;

private:
    Variant variant_;
};

}  // namespace ff::xform
