#include "transforms/gpu_kernel_extraction.h"

#include <map>

namespace ff::xform {

using ir::DataflowNode;
using ir::NodeKind;

std::vector<Match> GpuKernelExtraction::find_matches(const ir::SDFG& sdfg) const {
    std::vector<Match> matches;
    for (ir::StateId sid : sdfg.states()) {
        const ir::State& st = sdfg.state(sid);
        const auto& g = st.graph();
        for (ir::NodeId entry : g.nodes()) {
            const DataflowNode& n = g.node(entry);
            if (n.kind != NodeKind::MapEntry) continue;
            if (n.schedule != ir::Schedule::Parallel) continue;
            if (st.parent_scope_of(entry) != graph::kInvalidNode) continue;
            // Tasklet-only scopes on host containers.
            bool ok = true;
            for (ir::NodeId inner : st.scope_nodes(entry)) {
                const NodeKind k = g.node(inner).kind;
                if (k != NodeKind::Tasklet) { ok = false; break; }
                for (graph::EdgeId eid : g.in_edges(inner))
                    ok &= sdfg.container(g.edge(eid).data.memlet.data).storage ==
                          ir::Storage::Host;
                for (graph::EdgeId eid : g.out_edges(inner))
                    ok &= sdfg.container(g.edge(eid).data.memlet.data).storage ==
                          ir::Storage::Host;
            }
            if (!ok || st.scope_nodes(entry).empty()) continue;
            Match m;
            m.state = sid;
            m.nodes = {entry};
            m.description = "extract GPU kernel from map '" + n.label + "'";
            matches.push_back(std::move(m));
        }
    }
    return matches;
}

void GpuKernelExtraction::apply_impl(ir::SDFG& sdfg, const Match& match) const {
    ir::State& st = sdfg.state(match.state);
    auto& g = st.graph();
    const ir::NodeId entry = match.nodes.at(0);
    const ir::NodeId exit = st.map_exit_of(entry);

    // Containers read (inputs) and written (outputs) by the kernel.
    std::set<std::string> inputs, outputs;
    for (graph::EdgeId eid : g.in_edges(entry)) inputs.insert(g.edge(eid).data.memlet.data);
    for (graph::EdgeId eid : g.out_edges(exit)) outputs.insert(g.edge(eid).data.memlet.data);

    // Device twins.
    std::map<std::string, std::string> twin;
    auto ensure_twin = [&](const std::string& host_name) {
        if (twin.count(host_name)) return;
        const ir::DataDesc& desc = sdfg.container(host_name);
        const std::string dev = sdfg.fresh_container_name("gpu_" + host_name);
        sdfg.add_array(dev, desc.dtype, desc.shape, /*transient=*/true, ir::Storage::Device);
        twin[host_name] = dev;
    };
    for (const auto& d : inputs) ensure_twin(d);
    for (const auto& d : outputs) ensure_twin(d);

    // Retarget all memlets inside and on the boundary of the scope.
    auto retarget = [&](graph::EdgeId eid) {
        auto& m = g.edge(eid).data.memlet;
        auto it = twin.find(m.data);
        if (it != twin.end()) m.data = it->second;
    };
    for (ir::NodeId inner : st.scope_nodes(entry)) {
        for (graph::EdgeId eid : g.in_edges(inner)) retarget(eid);
        for (graph::EdgeId eid : g.out_edges(inner)) retarget(eid);
    }

    g.node(entry).schedule = ir::Schedule::GPU;
    g.node(exit).schedule = ir::Schedule::GPU;

    auto full_subset = [&](const std::string& name) {
        return ir::Subset::full(sdfg.container(name).shape);
    };

    // Detach boundary edges, remembering the original host access nodes so
    // copy-ins inherit their ordering constraints (a producer map writing a
    // container earlier in this state must finish before we stage it).
    struct BoundaryEdge {
        ir::NodeId host_acc;
        ir::MemletEdge data;
    };
    std::vector<BoundaryEdge> in_edges, out_edges;
    std::map<std::string, ir::NodeId> host_in_acc;
    for (graph::EdgeId eid : std::vector<graph::EdgeId>(g.in_edges(entry))) {
        auto edge = g.edge(eid);
        in_edges.push_back({edge.src, edge.data});
        host_in_acc.emplace(edge.data.memlet.data, edge.src);
        g.remove_edge(eid);
    }
    for (graph::EdgeId eid : std::vector<graph::EdgeId>(g.out_edges(exit))) {
        auto edge = g.edge(eid);
        out_edges.push_back({edge.dst, edge.data});
        g.remove_edge(eid);
    }

    // Host->device copies.  The set of containers staged in is the bug
    // switch: inputs only (bug) vs inputs + outputs (correct).
    std::set<std::string> stage_in = inputs;
    if (variant_ == Variant::Correct)
        for (const auto& d : outputs) stage_in.insert(d);

    std::map<std::string, ir::NodeId> dev_in_access;
    for (const auto& host_name : stage_in) {
        const std::string& dev = twin.at(host_name);
        auto it = host_in_acc.find(host_name);
        const ir::NodeId host_acc =
            it != host_in_acc.end() ? it->second : st.add_access(host_name);
        const ir::NodeId dev_acc = st.add_access(dev);
        // Whole-container copy (faithful to the original transformation).
        st.add_edge(host_acc, "", dev_acc, "", ir::Memlet(host_name, full_subset(host_name)));
        dev_in_access[host_name] = dev_acc;
    }

    // Reattach: dev access --gpu_X--> entry for every read container.
    for (const BoundaryEdge& be : in_edges) {
        const std::string host_name = be.data.memlet.data;
        ir::MemletEdge data = be.data;
        data.memlet.data = twin.at(host_name);
        g.add_edge(dev_in_access.at(host_name), entry, std::move(data));
    }
    // Staged containers the kernel does not read still need an ordering
    // edge so their copy-in precedes the kernel.
    for (const auto& [host_name, dev_acc] : dev_in_access) {
        bool feeds_kernel = false;
        for (graph::EdgeId eid : g.out_edges(dev_acc))
            feeds_kernel |= g.edge(eid).dst == entry;
        if (!feeds_kernel) {
            const std::string& dev = twin.at(host_name);
            st.add_edge(dev_acc, "", entry, "", ir::Memlet(dev, full_subset(dev)));
        }
    }

    // exit --gpu_Y--> dev access --whole-container copy--> host access.
    // The whole-container copy-back is what leaks garbage in the bug
    // variant when the kernel wrote only a subset.
    for (const BoundaryEdge& be : out_edges) {
        const std::string host_name = be.data.memlet.data;
        const std::string& dev = twin.at(host_name);
        ir::MemletEdge data = be.data;
        data.memlet.data = dev;
        const ir::NodeId dev_out = st.add_access(dev);
        g.add_edge(exit, dev_out, std::move(data));
        st.add_edge(dev_out, "", be.host_acc, "", ir::Memlet(dev, full_subset(dev)));
    }
}

}  // namespace ff::xform
