#include "transforms/write_elimination.h"

#include <algorithm>

#include "interp/tasklet_lang.h"

namespace ff::xform {

using ir::DataflowNode;
using ir::NodeKind;

namespace {

/// True when the tasklet is a pure identity copy (`o = i`).
bool is_identity_tasklet(const std::string& code) {
    try {
        auto prog = interp::TaskletProgram::parse(code);
        if (prog->reads().size() != 1 || prog->writes().size() != 1) return false;
        std::string normalized;
        for (char c : code)
            if (c != ' ' && c != '\t') normalized += c;
        const std::string expect = prog->writes().begin()->first + "=" + prog->reads().begin()->first;
        return normalized == expect;
    } catch (...) {
        return false;
    }
}

/// Number of writes (in-edges of access nodes) to `data` across the SDFG,
/// excluding a specific state's copy pattern.
int count_writes(const ir::SDFG& sdfg, const std::string& data) {
    int writes = 0;
    for (ir::StateId sid : sdfg.states()) {
        const ir::State& st = sdfg.state(sid);
        for (ir::NodeId a : st.access_nodes(data))
            writes += static_cast<int>(st.graph().in_degree(a));
    }
    return writes;
}

}  // namespace

std::vector<Match> WriteElimination::find_matches(const ir::SDFG& sdfg) const {
    std::vector<Match> matches;
    for (ir::StateId sid : sdfg.states()) {
        const ir::State& st = sdfg.state(sid);
        const auto& g = st.graph();
        for (ir::NodeId entry : g.nodes()) {
            const DataflowNode& en = g.node(entry);
            if (en.kind != NodeKind::MapEntry) continue;
            if (st.parent_scope_of(entry) != graph::kInvalidNode) continue;  // top level only
            const std::set<ir::NodeId> inside = st.scope_nodes(entry);
            if (inside.size() != 1) continue;
            const ir::NodeId body = *inside.begin();
            if (g.node(body).kind != NodeKind::Tasklet) continue;
            if (!is_identity_tasklet(g.node(body).code)) continue;
            const ir::NodeId exit = st.map_exit_of(entry);

            // Source: single access node feeding the entry; target: single
            // access node fed by the exit.
            if (g.in_degree(entry) != 1 || g.out_degree(exit) != 1) continue;
            const ir::NodeId a1 = g.edge(g.in_edges(entry)[0]).src;
            const ir::NodeId a2 = g.edge(g.out_edges(exit)[0]).dst;
            if (g.node(a1).kind != NodeKind::Access || g.node(a2).kind != NodeKind::Access)
                continue;
            const std::string& d1 = g.node(a1).data;
            const std::string& d2 = g.node(a2).data;
            if (d1 == d2) continue;

            const ir::DataDesc& desc1 = sdfg.container(d1);
            const ir::DataDesc& desc2 = sdfg.container(d2);
            if (desc1.dims() != desc2.dims() || desc1.dtype != desc2.dtype) continue;
            bool same_shape = true;
            for (std::size_t i = 0; i < desc1.shape.size(); ++i)
                same_shape &= desc1.shape[i]->equals(*desc2.shape[i]);
            if (!same_shape) continue;
            // The copy must cover the whole container.
            if (!g.edge(g.out_edges(exit)[0])
                     .data.memlet.subset.equals(ir::Subset::full(desc2.shape)))
                continue;
            // d2 must have no other writers (we are removing its only def).
            if (count_writes(sdfg, d2) != 1) continue;

            if (variant_ == Variant::Correct) {
                if (!desc2.transient) continue;  // deleting a program output's def
                // Redirecting d2 readers to d1 requires d1 to be immutable
                // after the copy; conservatively require this is d1's only
                // context: d1 written at most once (its producer).
                if (count_writes(sdfg, d1) > 1) continue;
            }

            Match m;
            m.state = sid;
            m.nodes = {a1, entry, body, exit, a2};
            m.description = "eliminate copy '" + d1 + "' -> '" + d2 + "'";
            matches.push_back(std::move(m));
        }
    }
    return matches;
}

void WriteElimination::apply_impl(ir::SDFG& sdfg, const Match& match) const {
    ir::State& st = sdfg.state(match.state);
    auto& g = st.graph();
    const ir::NodeId a1 = match.nodes.at(0);
    const ir::NodeId entry = match.nodes.at(1);
    const ir::NodeId body = match.nodes.at(2);
    const ir::NodeId exit = match.nodes.at(3);
    const ir::NodeId a2 = match.nodes.at(4);
    const std::string d1 = g.node(a1).data;
    const std::string d2 = g.node(a2).data;

    // Redirect current-state readers of a2 to a1.
    for (graph::EdgeId eid : std::vector<graph::EdgeId>(g.out_edges(a2))) {
        auto edge = g.edge(eid);  // copy: removal invalidates references
        ir::MemletEdge data = edge.data;
        if (data.memlet.data == d2) data.memlet.data = d1;
        g.remove_edge(eid);
        g.add_edge(a1, edge.dst, std::move(data));
    }

    g.remove_node(body);
    g.remove_node(entry);
    g.remove_node(exit);
    g.remove_node(a2);

    if (variant_ == Variant::Correct) {
        // Program-wide rewrite of remaining uses of d2 to d1.
        for (ir::StateId sid : sdfg.states()) {
            ir::State& other = sdfg.state(sid);
            for (ir::NodeId nid : other.graph().nodes()) {
                DataflowNode& n = other.graph().node(nid);
                if (n.kind == NodeKind::Access && n.data == d2) {
                    n.data = d1;
                    n.label = d1;
                }
            }
            for (graph::EdgeId eid : other.graph().edges()) {
                auto& mem = other.graph().edge(eid).data.memlet;
                if (mem.data == d2) mem.data = d1;
            }
        }
        sdfg.remove_container(d2);
    }
    // Bug variant: other states keep their access nodes/memlets on d2, which
    // now has no writer at all.
}

}  // namespace ff::xform
