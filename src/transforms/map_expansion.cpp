#include "transforms/map_expansion.h"

namespace ff::xform {

using ir::DataflowNode;
using ir::NodeKind;

std::vector<Match> MapExpansion::find_matches(const ir::SDFG& sdfg) const {
    std::vector<Match> matches;
    for (ir::StateId sid : sdfg.states()) {
        const ir::State& st = sdfg.state(sid);
        for (ir::NodeId nid : st.graph().nodes()) {
            const DataflowNode& n = st.graph().node(nid);
            if (n.kind != NodeKind::MapEntry) continue;
            if (n.schedule != ir::Schedule::Parallel) continue;
            if (n.params.size() < 2) continue;
            // Ranges of the remaining parameters must not depend on the
            // peeled one (rectangular iteration spaces only).
            bool rectangular = true;
            for (std::size_t i = 1; i < n.map_ranges.size(); ++i) {
                std::set<std::string> syms;
                n.map_ranges[i].begin->collect_symbols(syms);
                n.map_ranges[i].end->collect_symbols(syms);
                if (syms.count(n.params[0])) rectangular = false;
            }
            if (!rectangular) continue;
            // The first parameter must appear in some scope memlet (this is
            // what makes the buggy variant's malformed scope detectable).
            bool used = false;
            for (ir::NodeId inner : st.scope_nodes(nid)) {
                for (graph::EdgeId eid : st.graph().in_edges(inner)) {
                    std::set<std::string> syms;
                    for (const auto& r : st.graph().edge(eid).data.memlet.subset.ranges) {
                        r.begin->collect_symbols(syms);
                        r.end->collect_symbols(syms);
                    }
                    used |= syms.count(n.params[0]) > 0;
                }
            }
            if (!used) continue;
            Match m;
            m.state = sid;
            m.nodes = {nid};
            m.description = "expand map '" + n.label + "' (peel '" + n.params[0] + "')";
            matches.push_back(std::move(m));
        }
    }
    return matches;
}

void MapExpansion::apply_impl(ir::SDFG& sdfg, const Match& match) const {
    ir::State& st = sdfg.state(match.state);
    auto& g = st.graph();
    const ir::NodeId inner_entry = match.nodes.at(0);
    const ir::NodeId inner_exit = st.map_exit_of(inner_entry);

    DataflowNode& entry = g.node(inner_entry);
    const std::string peeled = entry.params[0];
    const ir::Range peeled_range = entry.map_ranges[0];
    entry.params.erase(entry.params.begin());
    entry.map_ranges.erase(entry.map_ranges.begin());

    auto [outer_entry, outer_exit] = st.add_map(entry.label + "_outer", {peeled},
                                                {peeled_range}, ir::Schedule::Parallel);

    // Boundary in-edges route through the new outer entry.
    bool linked = false;
    for (graph::EdgeId eid : std::vector<graph::EdgeId>(g.in_edges(inner_entry))) {
        auto edge = g.edge(eid);
        g.remove_edge(eid);
        st.add_edge(edge.src, edge.data.src_conn, outer_entry, "", edge.data.memlet);
        st.add_edge(outer_entry, "", inner_entry, edge.data.dst_conn, edge.data.memlet);
        linked = true;
    }
    if (!linked) {
        // Input-less maps (e.g. initializers) still need the structural
        // entry-to-entry edge for scope derivation.
        ir::Memlet dep;
        for (graph::EdgeId eid : g.out_edges(inner_exit)) {
            dep = g.edge(eid).data.memlet;
            break;
        }
        st.add_edge(outer_entry, "", inner_entry, "", dep);
    }

    if (variant_ == Variant::Correct) {
        for (graph::EdgeId eid : std::vector<graph::EdgeId>(g.out_edges(inner_exit))) {
            auto edge = g.edge(eid);
            g.remove_edge(eid);
            st.add_edge(inner_exit, "", outer_exit, "", edge.data.memlet);
            st.add_edge(outer_exit, edge.data.src_conn, edge.dst, edge.data.dst_conn,
                        edge.data.memlet);
        }
    }
    // DanglingExit: the inner exit keeps writing directly to the outside and
    // the new outer exit is left unconnected — the outer scope is malformed
    // and its parameter is not visible to the body, which validation rejects.
}

}  // namespace ff::xform
