// Map fusion: merges two consecutive elementwise maps that communicate
// through a transient container, keeping the intermediate as an in-scope
// element (correct-only pass, used to broaden the NPBench audit).
//
//   map_i { T[i] = f(x[i]) } ; map_i { y[i] = g(T[i]) }
//     =>
//   map_i { T[i] = f(x[i]) ; y[i] = g(T[i]) }
#pragma once

#include "transforms/transformation.h"

namespace ff::xform {

class MapFusion : public Transformation {
public:
    std::string name() const override { return "MapFusion"; }
    std::vector<Match> find_matches(const ir::SDFG& sdfg) const override;
protected:
    void apply_impl(ir::SDFG& sdfg, const Match& match) const override;
};

}  // namespace ff::xform
