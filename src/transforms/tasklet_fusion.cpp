#include "transforms/tasklet_fusion.h"

namespace ff::xform {

using ir::DataflowNode;
using ir::NodeKind;

namespace {

/// Total number of access nodes of `data` across the whole SDFG.
int count_access_nodes(const ir::SDFG& sdfg, const std::string& data) {
    int count = 0;
    for (ir::StateId sid : sdfg.states())
        count += static_cast<int>(sdfg.state(sid).access_nodes(data).size());
    return count;
}

}  // namespace

std::vector<Match> TaskletFusion::find_matches(const ir::SDFG& sdfg) const {
    std::vector<Match> matches;
    for (ir::StateId sid : sdfg.states()) {
        const ir::State& st = sdfg.state(sid);
        const auto& g = st.graph();
        for (ir::NodeId mid : g.nodes()) {
            const DataflowNode& mnode = g.node(mid);
            if (mnode.kind != NodeKind::Access) continue;
            // Pattern: tasklet t1 -> access(tmp) -> tasklet t2.
            if (g.in_degree(mid) != 1 || g.out_degree(mid) != 1) continue;
            const auto& in_e = g.edge(g.in_edges(mid)[0]);
            const auto& out_e = g.edge(g.out_edges(mid)[0]);
            const ir::NodeId t1 = in_e.src;
            const ir::NodeId t2 = out_e.dst;
            if (g.node(t1).kind != NodeKind::Tasklet) continue;
            if (g.node(t2).kind != NodeKind::Tasklet) continue;
            if (g.out_degree(t1) != 1) continue;  // t1 feeds only tmp
            // Producer and consumer must touch the same subset.
            if (!in_e.data.memlet.subset.equals(out_e.data.memlet.subset)) continue;
            // Same scope level.
            if (st.parent_scope_of(t1) != st.parent_scope_of(t2)) continue;

            if (variant_ == Variant::Correct) {
                const ir::DataDesc& desc = sdfg.container(mnode.data);
                if (!desc.transient) continue;
                // tmp must have no other readers/writers anywhere.
                if (count_access_nodes(sdfg, mnode.data) != 1) continue;
            }
            Match m;
            m.state = sid;
            m.nodes = {t1, mid, t2};
            m.description = "fuse tasklet '" + g.node(t1).label + "' into '" +
                            g.node(t2).label + "' removing '" + mnode.data + "'";
            matches.push_back(std::move(m));
        }
    }
    return matches;
}

void TaskletFusion::apply_impl(ir::SDFG& sdfg, const Match& match) const {
    ir::State& st = sdfg.state(match.state);
    auto& g = st.graph();
    const ir::NodeId t1 = match.nodes.at(0);
    const ir::NodeId mid = match.nodes.at(1);
    const ir::NodeId t2 = match.nodes.at(2);
    const std::string tmp_data = g.node(mid).data;

    // Connector carrying t1's result and t2's use of the temporary.
    const auto& in_e = g.edge(g.in_edges(mid)[0]);
    const auto& out_e = g.edge(g.out_edges(mid)[0]);
    const std::string producer_conn = in_e.data.src_conn;
    const std::string consumer_conn = out_e.data.dst_conn;

    // Merge code: t1's inputs get an "f_" prefix to avoid collisions, t1's
    // output and t2's read of it become the local `__fused`.
    std::string t1_code = g.node(t1).code;
    std::vector<std::pair<graph::EdgeId, std::string>> rewired;  // t1 in-edge -> new conn
    for (graph::EdgeId eid : g.in_edges(t1)) {
        const std::string& conn = g.edge(eid).data.dst_conn;
        const std::string fresh = "f_" + conn;
        t1_code = rename_identifier(t1_code, conn, fresh);
        rewired.emplace_back(eid, fresh);
    }
    t1_code = rename_identifier(t1_code, producer_conn, "__fused");
    const std::string t2_code = rename_identifier(g.node(t2).code, consumer_conn, "__fused");
    g.node(t2).code = t1_code + "; " + t2_code;

    // Rewire t1's inputs into t2 under the fresh connector names.
    for (const auto& [eid, fresh] : rewired) {
        const auto& e = g.edge(eid);
        ir::MemletEdge data = e.data;
        data.dst_conn = fresh;
        g.add_edge(e.src, t2, std::move(data));
    }

    g.remove_node(t1);
    g.remove_node(mid);

    // Drop the container when it is now completely unused (correct mode
    // guarantees this; the bug variant may leave other uses behind, which
    // keep reading the now-never-written container).
    bool still_used = false;
    for (ir::StateId sid : sdfg.states())
        still_used |= !sdfg.state(sid).access_nodes(tmp_data).empty();
    if (!still_used) sdfg.remove_container(tmp_data);
}

}  // namespace ff::xform
