// Map-reduce fusion: fuses an elementwise producer map with a following
// ReduceSum into a single sequential accumulation loop, eliminating the
// intermediate buffer ("MapReduceFusion: Removes intermediate buffers for
// reductions", Table 2).
//
//   map_i { T[i] = f(x[i]) } ; S = reduce_sum(T)
//     =>
//   S = 0 ; for i { S += f(x[i]) }
//
// The bug variant deletes the intermediate container from the SDFG while a
// stale access node still references it — `generates invalid code`, caught
// by validation.
#pragma once

#include "transforms/transformation.h"

namespace ff::xform {

class MapReduceFusion : public Transformation {
public:
    enum class Variant { Correct, StaleAccessNode };

    explicit MapReduceFusion(Variant variant = Variant::Correct) : variant_(variant) {}

    std::string name() const override {
        return variant_ == Variant::Correct ? "MapReduceFusion"
                                            : "MapReduceFusion[bug:stale-access-node]";
    }
    std::vector<Match> find_matches(const ir::SDFG& sdfg) const override;
protected:
    void apply_impl(ir::SDFG& sdfg, const Match& match) const override;

private:
    Variant variant_;
};

}  // namespace ff::xform
