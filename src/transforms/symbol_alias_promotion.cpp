#include "transforms/symbol_alias_promotion.h"

namespace ff::xform {

std::vector<Match> SymbolAliasPromotion::find_matches(const ir::SDFG& sdfg) const {
    std::vector<Match> matches;
    for (graph::EdgeId eid : sdfg.cfg().edges()) {
        const ir::InterstateEdge& e = sdfg.cfg().edge(eid).data;
        for (std::size_t i = 0; i < e.assignments.size(); ++i) {
            const auto& [s2, rhs] = e.assignments[i];
            if (!rhs->is_symbol()) continue;
            const std::string s1 = rhs->symbol_name();
            if (s1 == s2) continue;
            // s2 must be assigned only here, and s1 must never be
            // reassigned (otherwise the alias is not a constant alias).
            int s2_defs = 0, s1_defs = 0;
            for (graph::EdgeId other : sdfg.cfg().edges()) {
                for (const auto& [sym_name, expr] : sdfg.cfg().edge(other).data.assignments) {
                    (void)expr;
                    if (sym_name == s2) ++s2_defs;
                    if (sym_name == s1) ++s1_defs;
                }
            }
            if (s2_defs != 1 || s1_defs != 0) continue;
            Match m;
            m.cfg_edge = eid;
            m.nodes = {static_cast<ir::NodeId>(i)};
            m.description = "promote alias '" + s2 + "' := '" + s1 + "'";
            matches.push_back(std::move(m));
        }
    }
    return matches;
}

ChangeSet SymbolAliasPromotion::affected_nodes(const ir::SDFG& sdfg, const Match& match) const {
    ChangeSet delta;
    const auto& e = sdfg.cfg().edge(match.cfg_edge);
    delta.control_flow_states.insert(e.src);
    delta.control_flow_states.insert(e.dst);
    return delta;
}

void SymbolAliasPromotion::apply_impl(ir::SDFG& sdfg, const Match& match) const {
    auto& edge = sdfg.cfg().edge(match.cfg_edge);
    const std::size_t index = static_cast<std::size_t>(match.nodes.at(0));
    if (index >= edge.data.assignments.size()) return;
    const std::string s2 = edge.data.assignments[index].first;
    const std::string s1 = edge.data.assignments[index].second->symbol_name();
    edge.data.assignments.erase(edge.data.assignments.begin() +
                                static_cast<std::ptrdiff_t>(index));

    const sym::SubstMap subst{{s2, sym::symb(s1)}};

    // Interstate-level substitution (both variants).
    for (graph::EdgeId eid : sdfg.cfg().edges()) {
        ir::InterstateEdge& e = sdfg.cfg().edge(eid).data;
        if (e.condition) e.condition = e.condition->substitute(subst);
        for (auto& [sym_name, expr] : e.assignments) {
            (void)sym_name;
            expr = expr->substitute(subst);
        }
    }

    if (variant_ == Variant::Correct) {
        // State-level substitution: memlets and map ranges.
        for (ir::StateId sid : sdfg.states()) {
            ir::State& st = sdfg.state(sid);
            for (ir::NodeId nid : st.graph().nodes()) {
                ir::DataflowNode& n = st.graph().node(nid);
                if (n.kind == ir::NodeKind::MapEntry)
                    for (auto& r : n.map_ranges) r = r.substituted(subst);
            }
            for (graph::EdgeId eid : st.graph().edges()) {
                auto& memlet = st.graph().edge(eid).data.memlet;
                memlet.subset = memlet.subset.substituted(subst);
            }
        }
    }
    // Both variants retire the symbol; the bug variant leaves state-level
    // uses of s2 behind, which validation reports as an unknown symbol.
    sdfg.remove_symbol(s2);
}

}  // namespace ff::xform
