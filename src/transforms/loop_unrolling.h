// Full loop unrolling of constant-bound sequential maps (the custom CLOUDSC
// transformation of Sec. 6.4).
//
// Correct mode enumerates the iteration values respecting the step sign.
// The bug variant computes the trip count with the positive-step formula
// `(end - begin + 1) / step` (floor semantics) — correct for ascending
// loops, but a loop `for i = 4 down to 1 step -1` yields (1-4+1)/(-1) = 2
// body instances instead of 4, exactly the failure the paper reports:
// "the transformation incorrectly unrolls the loop by only creating 2 loop
// body instances".
#pragma once

#include "transforms/transformation.h"

namespace ff::xform {

class LoopUnrolling : public Transformation {
public:
    enum class Variant { Correct, PositiveStepFormula };

    explicit LoopUnrolling(Variant variant = Variant::Correct) : variant_(variant) {}

    std::string name() const override {
        return variant_ == Variant::Correct ? "LoopUnrolling"
                                            : "LoopUnrolling[bug:positive-step-formula]";
    }
    std::vector<Match> find_matches(const ir::SDFG& sdfg) const override;
protected:
    void apply_impl(ir::SDFG& sdfg, const Match& match) const override;

private:
    Variant variant_;
};

}  // namespace ff::xform
